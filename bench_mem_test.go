package renaming_test

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"renaming"
)

// heapWatcher samples the live heap every few milliseconds while a
// whole-run benchmark executes, so the reported peak reflects the
// high-water mark mid-run (slabs at their fullest, committees at their
// largest) rather than the post-termination residue.
type heapWatcher struct {
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

func watchHeap() *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		var ms runtime.MemStats
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > w.peak.Load() {
				w.peak.Store(ms.HeapAlloc)
			}
			select {
			case <-w.stop:
				return
			case <-ticker.C:
			}
		}
	}()
	return w
}

// PeakMB stops the watcher and returns the peak sampled live heap.
func (w *heapWatcher) PeakMB() float64 {
	close(w.stop)
	<-w.done
	return float64(w.peak.Load()) / (1 << 20)
}

// BenchmarkCrashMemoryFootprint measures a whole crash-path execution —
// construction through termination — at a scale where per-node arrays
// would dominate, reporting the peak live heap alongside the allocation
// counts. This is the `make bench` memory row: BENCH_crash.json records
// peakHeap-MB and B/op per run, so a regression that reintroduces O(n)
// per-round allocations (per-node inbox slots, materialized traces)
// shows up as a step in the ledger. See docs/MEMORY.md for the scaling
// model the numbers should follow.
func BenchmarkCrashMemoryFootprint(b *testing.B) {
	for _, n := range []int{16384, 65536} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var peak float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runtime.GC()
				w := watchHeap()
				res, err := renaming.RunCrash(n, renaming.CrashSpec{
					Seed:           int64(n),
					CommitteeScale: 0.02,
					Profile:        true,
					Fault: renaming.FaultSpec{
						Kind: renaming.FaultCommitteeKiller, Budget: 64, MidSend: true,
					},
				})
				if p := w.PeakMB(); p > peak {
					peak = p
				}
				if err != nil {
					b.Fatal(err)
				}
				if !res.Unique {
					b.Fatal("run did not produce unique names")
				}
			}
			b.ReportMetric(peak, "peakHeap-MB")
		})
	}
}

// BenchmarkByzMemoryFootprint is the Byzantine-path memory row: a whole
// execution with split-world attackers at E5n scale, peak live heap and
// allocations per run into BENCH_byz.json.
func BenchmarkByzMemoryFootprint(b *testing.B) {
	for _, n := range []int{4096, 16384} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			byz, err := renaming.AdversaryLinks(n, 2)
			if err != nil {
				b.Fatal(err)
			}
			behaviors := make(map[int]renaming.Behavior, len(byz))
			for _, link := range byz {
				behaviors[link] = renaming.BehaviorSplitWorld
			}
			var peak float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runtime.GC()
				w := watchHeap()
				res, err := renaming.RunByzantine(n, renaming.ByzSpec{
					Seed:      int64(n),
					PoolProb:  16.0 / float64(n),
					Byzantine: behaviors,
					Profile:   true,
				})
				if p := w.PeakMB(); p > peak {
					peak = p
				}
				if err != nil {
					b.Fatal(err)
				}
				if res == nil {
					b.Fatal("nil result")
				}
			}
			b.ReportMetric(peak, "peakHeap-MB")
		})
	}
}
