// Faultsweep: visualizes the paper's headline property — the crash
// algorithm's message cost adapts to the number of failures the
// adversary actually inflicts, while the all-to-all baseline pays its
// quadratic price regardless.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"renaming"
)

func main() {
	const n = 512

	budgets := []int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 511}

	base, err := renaming.RunBaseline(n, renaming.BaselineSpec{
		Kind: renaming.BaselineAllToAllCrash, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("crash renaming at n=%d under the adaptive committee killer\n\n", n)
	fmt.Printf("%8s  %12s  %10s  %s\n", "f", "messages", "msgs/model", "relative to all-to-all baseline")

	var peak int64
	results := make([]*renaming.Result, 0, len(budgets))
	for _, budget := range budgets {
		res, err := renaming.RunCrash(n, renaming.CrashSpec{
			Seed:           int64(100 + budget),
			CommitteeScale: 0.01,
			Fault: renaming.FaultSpec{
				Kind: renaming.FaultCommitteeKiller, Budget: budget, MidSend: true,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Unique {
			log.Fatalf("f=%d: renaming failed", res.Crashes)
		}
		results = append(results, res)
		if res.Messages > peak {
			peak = res.Messages
		}
	}
	if base.Messages > peak {
		peak = base.Messages
	}

	logn := math.Log2(n)
	for _, res := range results {
		model := (float64(res.Crashes) + logn) * n * logn
		bar := strings.Repeat("█", int(60*res.Messages/peak))
		fmt.Printf("%8d  %12d  %10.2f  %s\n", res.Crashes, res.Messages,
			float64(res.Messages)/model, bar)
	}
	bar := strings.Repeat("█", int(60*base.Messages/peak))
	fmt.Printf("%8s  %12d  %10s  %s\n", "baseline", base.Messages, "-", bar)

	fmt.Printf("\nevery run ended with all survivors holding unique names in [1,%d].\n", n)
	fmt.Println("msgs/model stays bounded: cost lives inside the (f+log n)·n·log n")
	fmt.Println("envelope of Theorem 1.2 — the adversary cannot push it anywhere")
	fmt.Println("near the baseline's fixed quadratic bill without crashing most of")
	fmt.Println("the network (raw counts are not monotone in f: a freshly killed")
	fmt.Println("committee is silent until re-election doubles its way back).")
}
