// Cryptonet: the paper's motivating scenario — a cryptocurrency-style
// open network where participants are identified by large (hash-derived)
// identities and some fraction behaves maliciously. Renaming assigns
// compact, order-preserving identities so that subsequent protocol
// messages can address peers with log2(n) bits instead of log2(N).
package main

import (
	"fmt"
	"log"

	"renaming"
)

func main() {
	const (
		n    = 90
		bigN = 1 << 20 // identities are 20-bit digests here
		byzF = 7       // < (1/3 − ε0)·n malicious peers
	)

	ids, err := renaming.GenerateIDs(n, bigN, renaming.IDsRandom, 2026)
	if err != nil {
		log.Fatal(err)
	}

	// The malicious peers try the paper's hardest attack: announcing
	// their identities to only half the committee, so honest committee
	// members disagree on who is present.
	byz := make(map[int]renaming.Behavior, byzF)
	for i := 0; i < byzF; i++ {
		byz[5*i+2] = renaming.BehaviorSplitWorld
	}

	res, err := renaming.RunByzantine(n, renaming.ByzSpec{
		N:         bigN,
		IDs:       ids,
		Seed:      11,
		PoolProb:  20.0 / n, // small committee (paper constants need larger n)
		Byzantine: byz,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.AssumptionHolds {
		log.Fatal("committee sampled outside the guarantee envelope; pick another seed")
	}

	fmt.Printf("peers: %d honest + %d byzantine, namespace 2^20\n", n-byzF, byzF)
	fmt.Printf("strong: %v   order-preserving: %v\n", res.Unique, res.OrderPreserving)
	fmt.Printf("committee: %d members   divide-and-conquer iterations: %d\n",
		res.CommitteeSize, res.Iterations)
	fmt.Printf("rounds: %d   honest messages: %d   honest bits: %d\n\n",
		res.Rounds, res.HonestMessages, res.HonestBits)

	// The payoff: addressing cost per message before and after.
	before, after := bitsFor(bigN), bitsFor(n)
	fmt.Printf("addressing a peer before renaming: %d bits\n", before)
	fmt.Printf("addressing a peer after  renaming: %d bits (%.0f%% smaller)\n\n",
		after, 100*(1-float64(after)/float64(before)))

	fmt.Println("sample of the order-preserving mapping (honest peers):")
	printed := 0
	for link, newID := range res.NewIDByLink {
		if newID < 0 {
			continue
		}
		fmt.Printf("  %7d -> %2d\n", ids[link], newID)
		printed++
		if printed == 6 {
			break
		}
	}
}

func bitsFor(max int) int {
	bits := 0
	for v := max - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
