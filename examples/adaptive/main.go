// Adaptive: shows the repo's extension features around the paper's
// algorithms — the early-stopping option that makes the crash algorithm's
// *round* count adaptive (not just its message count), the per-node load
// profile that exposes the committee's traffic skew, and a CSV traffic
// trace for external plotting.
package main

import (
	"fmt"
	"log"
	"strings"

	"renaming"
	"renaming/internal/core"
	"renaming/internal/sim"
	"renaming/internal/trace"
)

func main() {
	const n = 256

	fmt.Println("== early stopping: rounds adapt to the failures that happened ==")
	fmt.Printf("%20s  %8s  %8s\n", "scenario", "rounds", "budget")
	for _, scenario := range []struct {
		name  string
		fault renaming.FaultSpec
	}{
		{"no failures", renaming.FaultSpec{Kind: renaming.FaultNone}},
		{"16 random crashes", renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: 16, Prob: 0.05}},
		{"killer f≤64", renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: 64, MidSend: true}},
	} {
		res, err := renaming.RunCrash(n, renaming.CrashSpec{
			Seed: 4, CommitteeScale: 0.02, EarlyStop: true, Fault: scenario.fault,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Unique {
			log.Fatalf("%s: renaming failed", scenario.name)
		}
		budget := 9*8 + 1 // 9·ceil(log2 256)+1
		fmt.Printf("%20s  %8d  %8d\n", scenario.name, res.Rounds, budget)
	}

	fmt.Println("\n== load profile: the committee carries the traffic ==")
	res, err := renaming.RunCrash(n, renaming.CrashSpec{Seed: 9, CommitteeScale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	avg := float64(res.Messages) / float64(n)
	fmt.Printf("total messages: %d   average per node: %.0f\n", res.Messages, avg)
	fmt.Printf("busiest node sent %d (%.1f× the average) — a committee member\n",
		res.MaxNodeSent, float64(res.MaxNodeSent)/avg)
	fmt.Printf("busiest node received %d\n", res.MaxNodeReceived)

	fmt.Println("\n== CSV trace of the first rounds (pipe to a plotting tool) ==")
	if err := csvTrace(64); err != nil {
		log.Fatal(err)
	}
}

// csvTrace reruns a small execution on the low-level API with a CSV
// recorder attached.
func csvTrace(n int) error {
	ids, err := renaming.GenerateIDs(n, 16*n, renaming.IDsEven, 2)
	if err != nil {
		return err
	}
	cfg := core.CrashConfig{N: 16 * n, IDs: ids, Seed: 2, CommitteeScale: 0.05, EarlyStop: true}
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = core.NewCrashNode(cfg, i)
	}
	rec := trace.NewRecorder()
	nw := sim.NewNetwork(nodes, sim.WithObserver(rec.Observe))
	if err := nw.Run(cfg.TotalRounds() + 1); err != nil {
		return err
	}
	var csv strings.Builder
	if err := rec.WriteCSV(&csv); err != nil {
		return err
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	for i, line := range lines {
		if i >= 8 {
			fmt.Printf("… %d more rows\n", len(lines)-i)
			break
		}
		fmt.Println(line)
	}
	return nil
}
