// Byzantine: drives the Byzantine-resilient algorithm through every
// implemented attack strategy using the low-level simulator API, and
// prints a round-by-round traffic timeline of one adversarial execution
// so the protocol's phases (elect → announce → fingerprint loop →
// distribute) are visible.
package main

import (
	"fmt"
	"log"
	"os"

	"renaming"
	"renaming/internal/core"
	"renaming/internal/sim"
	"renaming/internal/trace"
)

func main() {
	const n = 48

	fmt.Println("== part 1: every attack strategy against the same network ==")
	for _, attack := range []struct {
		name     string
		behavior renaming.Behavior
	}{
		{"silent (crash-like)", renaming.BehaviorSilent},
		{"split-world announcements", renaming.BehaviorSplitWorld},
		{"equivocation + fake NEW", renaming.BehaviorEquivocate},
		{"spam flood", renaming.BehaviorSpam},
	} {
		byz := map[int]renaming.Behavior{5: attack.behavior, 17: attack.behavior, 29: attack.behavior}
		res, err := renaming.RunByzantine(n, renaming.ByzSpec{
			Seed: 9, PoolProb: 14.0 / n, Byzantine: byz,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s unique=%v order=%v rounds=%d iters=%d honest msgs=%d\n",
			attack.name, res.Unique, res.OrderPreserving, res.Rounds,
			res.Iterations, res.HonestMessages)
	}

	fmt.Println("\n== part 2: traffic timeline of one split-world execution ==")
	if err := timeline(n); err != nil {
		log.Fatal(err)
	}
}

// timeline reruns a split-world attack on the low-level API with a trace
// recorder attached.
func timeline(n int) error {
	ids, err := renaming.GenerateIDs(n, 8*n, renaming.IDsEven, 1)
	if err != nil {
		return err
	}
	cfg := core.ByzConfig{N: 8 * n, IDs: ids, Seed: 9, PoolProb: 14.0 / float64(n)}
	byz := map[int]bool{5: true, 17: true, 29: true}

	simNodes := make([]sim.Node, n)
	var byzLinks []int
	honest := make([]*core.ByzNode, 0, n)
	for i := 0; i < n; i++ {
		if byz[i] {
			simNodes[i] = core.NewByzAttacker(cfg, i, core.BehaviorSplitWorld)
			byzLinks = append(byzLinks, i)
			continue
		}
		node := core.NewByzNode(cfg, i)
		honest = append(honest, node)
		simNodes[i] = node
	}

	rec := trace.NewRecorder()
	nw := sim.NewNetwork(simNodes,
		sim.WithByzantine(byzLinks),
		sim.WithObserver(rec.Observe),
	)
	if err := nw.Run(200_000); err != nil {
		return err
	}

	if err := rec.WriteTimeline(os.Stdout); err != nil {
		return err
	}
	if busiest, ok := rec.BusiestRound(); ok {
		fmt.Printf("\nbusiest round: %d with %d messages\n", busiest.Round, busiest.Messages)
	}
	decided := 0
	for _, node := range honest {
		if _, ok := node.Output(); ok {
			decided++
		}
	}
	fmt.Printf("honest nodes decided: %d/%d\n", decided, len(honest))
	return nil
}
