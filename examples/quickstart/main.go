// Quickstart: rename 64 nodes with identities scattered over a large
// namespace down to [1, 64], tolerating crash failures, in a handful of
// lines.
package main

import (
	"fmt"
	"log"

	"renaming"
)

func main() {
	const n = 64

	// Nodes get identities from a namespace of a million values.
	ids, err := renaming.GenerateIDs(n, 1_000_000, renaming.IDsRandom, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Run the crash-resilient algorithm while an adaptive adversary
	// crashes up to 16 nodes, preferring committee members.
	res, err := renaming.RunCrash(n, renaming.CrashSpec{
		N:              1_000_000,
		IDs:            ids,
		Seed:           7,
		CommitteeScale: 0.05, // small committee at this n (see DESIGN.md)
		Fault: renaming.FaultSpec{
			Kind:    renaming.FaultCommitteeKiller,
			Budget:  16,
			MidSend: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("strong renaming ok: %v   crashes survived: %d\n", res.Unique, res.Crashes)
	fmt.Printf("rounds: %d   messages: %d   bits: %d (max %d bits/message)\n\n",
		res.Rounds, res.Messages, res.Bits, res.MaxMessageBits)

	shown := 0
	for link, newID := range res.NewIDByLink {
		if newID < 0 {
			continue // crashed
		}
		fmt.Printf("  node with identity %7d  ->  new identity %2d\n", ids[link], newID)
		shown++
		if shown == 8 {
			fmt.Printf("  … and %d more\n", n-res.Crashes-shown)
			break
		}
	}
}
