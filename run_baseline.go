package renaming

import (
	"fmt"
	"math/rand"

	"renaming/internal/auth"
	"renaming/internal/baseline"
	"renaming/internal/sim"
)

// BaselineKind selects one of Table 1's comparator algorithms.
type BaselineKind int

const (
	// BaselineAllToAllCrash is crash-resilient all-to-all interval
	// halving (Okun–Barak–Gafni shape): O(log n) rounds, Θ(n² log n)
	// messages regardless of f.
	BaselineAllToAllCrash BaselineKind = iota + 1
	// BaselineCollectSort is the crash-free collect-and-sort floor:
	// 2 rounds, exactly n² messages.
	BaselineCollectSort
	// BaselineAllToAllByzantine is Byzantine all-to-all halving with
	// echo confirmation (f < n/3): Θ(n² log n) messages, Θ(n³·polylog)
	// bits via Ω(n)-bit echo messages.
	BaselineAllToAllByzantine
	// BaselineConsensusBroadcast is the classical renaming-from-
	// reliable-broadcast baseline (Dolev–Strong, t = ⌊(n−1)/3⌋): rounds
	// linear in the fault bound, Θ(n³) messages with chain-carrying
	// payloads. Byzantine links run equivocating senders (odd) or stay
	// silent (even).
	BaselineConsensusBroadcast
)

// BaselineSpec configures one baseline execution.
type BaselineSpec struct {
	Kind BaselineKind
	// N is the original namespace size; defaults to 16·n.
	N int
	// IDs are the original identities per link; generated with IDsEven
	// when nil.
	IDs []int
	// Seed drives the adversary.
	Seed int64
	// Fault configures the crash adversary (crash baselines only).
	Fault FaultSpec
	// Byzantine marks links run as attackers (Byzantine baseline only):
	// even links play silent, odd links play consistent liars.
	Byzantine []int
	// CongestLimit, when positive, flags honest messages above this many
	// bits in Result.OversizeMessages (CONGEST-model check).
	CongestLimit int
}

// RunBaseline executes one of the Table 1 comparator algorithms.
func RunBaseline(n int, spec BaselineSpec) (*Result, error) {
	if spec.N == 0 {
		spec.N = 16 * n
	}
	if spec.IDs == nil {
		ids, err := GenerateIDs(n, spec.N, IDsEven, spec.Seed)
		if err != nil {
			return nil, err
		}
		spec.IDs = ids
	}
	if len(spec.IDs) != n {
		return nil, fmt.Errorf("renaming: %d ids for %d nodes", len(spec.IDs), n)
	}
	cfg := baseline.AllToAllConfig{N: spec.N, IDs: spec.IDs}

	switch spec.Kind {
	case BaselineConsensusBroadcast:
		dsCfg := baseline.ConsensusRenameConfig{N: spec.N, IDs: spec.IDs, Seed: spec.Seed}
		authority := auth.NewAuthority(spec.Seed, n)
		// One shared verification memo: a relayed chain reaching all n
		// recipients is verified once, not n times. Reset every round.
		memo := authority.NewMemo()
		byzSet := make(map[int]bool, len(spec.Byzantine))
		for _, link := range spec.Byzantine {
			byzSet[link] = true
		}
		factory := func(i int) outputNode {
			if !byzSet[i] {
				return baseline.NewConsensusRenameNode(dsCfg, i, authority, memo)
			}
			if i%2 == 0 {
				return baseline.SilentNode{}
			}
			return baseline.NewDSEquivocator(dsCfg, i, authority)
		}
		res, err := runBaselineNodes(n, spec, byzSet, factory, dsCfg.TotalRounds()+1,
			sim.WithRoundEnd(memo.Reset))
		if err != nil {
			return nil, err
		}
		res.Byzantine = len(spec.Byzantine)
		return res, nil
	case BaselineCollectSort:
		return runBaselineNodes(n, spec, nil, func(i int) outputNode {
			return baseline.NewCollectSortNode(cfg, i)
		}, 3)
	case BaselineAllToAllByzantine:
		byzSet := make(map[int]bool, len(spec.Byzantine))
		for _, link := range spec.Byzantine {
			byzSet[link] = true
		}
		factory := func(i int) outputNode {
			if !byzSet[i] {
				return baseline.NewAllToAllByzNode(cfg, i)
			}
			if i%2 == 0 {
				return baseline.SilentNode{}
			}
			rng := rand.New(rand.NewSource(sim.DeriveSeed(spec.Seed, 0x6c696172<<8|uint64(i))))
			return baseline.NewLiarNode(cfg, i, rng)
		}
		res, err := runBaselineNodes(n, spec, byzSet, factory, baseline.TotalRoundsByz(cfg)+1)
		if err != nil {
			return nil, err
		}
		res.Byzantine = len(spec.Byzantine)
		return res, nil
	default:
		return runBaselineNodes(n, spec, nil, func(i int) outputNode {
			return baseline.NewAllToAllCrashNode(cfg, i)
		}, cfg.TotalRounds()+1)
	}
}

// outputNode is the common surface of all baseline node types.
type outputNode interface {
	sim.Node
	Output() (int, bool)
}

func runBaselineNodes(n int, spec BaselineSpec, byzSet map[int]bool, factory func(int) outputNode, maxRounds int, extra ...sim.Option) (*Result, error) {
	nodes := make([]outputNode, n)
	simNodes := make([]sim.Node, n)
	var byzLinks []int
	for i := 0; i < n; i++ {
		nodes[i] = factory(i)
		simNodes[i] = nodes[i]
		if byzSet[i] {
			byzLinks = append(byzLinks, i)
		}
	}
	opts := []sim.Option{
		sim.WithCrashAdversary(spec.Fault.build(spec.Seed)),
		sim.WithByzantine(byzLinks),
	}
	if spec.CongestLimit > 0 {
		opts = append(opts, sim.WithCongestLimit(spec.CongestLimit))
	}
	opts = append(opts, extra...)
	nw := sim.NewNetwork(simNodes, opts...)
	defer nw.Close()
	if err := nw.Run(maxRounds); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	res := &Result{NewIDByLink: make([]int, n), Crashes: nw.Crashes()}
	for i := 0; i < n; i++ {
		res.NewIDByLink[i] = -1
		if !nw.Alive(i) || byzSet[i] {
			continue
		}
		if id, ok := nodes[i].Output(); ok {
			res.NewIDByLink[i] = id
		}
	}
	fillMetrics(res, nw)
	res.fill(spec.IDs)
	res.AssumptionHolds = true
	for i := 0; i < n; i++ {
		if nw.Alive(i) && !byzSet[i] && res.NewIDByLink[i] < 0 {
			res.Unique = false
		}
	}
	return res, nil
}
