// Package renaming is a reproduction of "Robust and Scalable Renaming
// with Subquadratic Bits" (Bai, Fu, Wang, Wang, Zheng; PODC 2025): strong
// renaming algorithms for synchronous message-passing systems whose
// communication cost scales with the actual number of failures.
//
// The package exposes two algorithms on a deterministic synchronous
// network simulator:
//
//   - RunCrash executes the crash-resilient algorithm of Section 2
//     (always correct, always O(log n) rounds, O~((f+1)·n) messages);
//   - RunByzantine executes the Byzantine-resilient, order-preserving
//     algorithm of Section 3 (O~(max{f,1}) rounds, O~(f+n) messages,
//     assuming shared randomness and authenticated messages).
//
// Baseline comparators from the paper's Table 1 and the Theorem 1.4
// lower-bound experiment are exposed through RunBaseline and the
// internal/lowerbound package. Every execution is reproducible from its
// Spec (a single seed drives all randomness) and returns a Result with
// the full communication metrics the paper's complexity claims are about.
package renaming

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"renaming/internal/sim"
	"renaming/internal/trace"
)

// Result summarizes one renaming execution.
type Result struct {
	// NewIDByLink maps link index → decided new identity; -1 marks nodes
	// that crashed, are Byzantine, or did not decide.
	NewIDByLink []int
	// Unique reports whether all decided identities are distinct and lie
	// in [1, n] — the strong renaming guarantee.
	Unique bool
	// OrderPreserving reports whether the decided identities preserve
	// the relative order of the original identities.
	OrderPreserving bool
	// Crashes is the actual number of crash failures (the paper's f in
	// the crash setting).
	Crashes int
	// Byzantine is the number of Byzantine nodes (the paper's f in the
	// Byzantine setting).
	Byzantine int

	// Rounds, Messages, Bits, MaxMessageBits mirror the simulator's
	// metrics. HonestMessages/HonestBits exclude Byzantine traffic.
	Rounds         int
	Messages       int64
	Bits           int64
	HonestMessages int64
	HonestBits     int64
	MaxMessageBits int
	// MaxNodeSent and MaxNodeReceived expose the per-link load skew:
	// committee members bear Θ(n) traffic while plain nodes exchange
	// only O~(committee) messages.
	MaxNodeSent     int64
	MaxNodeReceived int64
	// OversizeMessages counts honest messages exceeding the configured
	// CONGEST per-message budget (0 when no budget was set).
	OversizeMessages int64
	// PerKind breaks the message count down by payload kind.
	PerKind map[string]int64

	// CommitteeSize is the committee view size (Byzantine algorithm) or
	// the number of nodes ever elected (crash algorithm).
	CommitteeSize int
	// Iterations is the number of divide-and-conquer iterations the
	// Byzantine committee ran (Lemma 3.10 bounds it by 4·f·log N).
	Iterations int
	// AssumptionHolds reports whether the committee composition
	// satisfied the paper's requirement (fewer than one third Byzantine
	// members); when false the run is outside the guarantee envelope.
	AssumptionHolds bool

	// RoundStats is the per-round traffic profile; populated only when
	// the spec asked for it (Profile, or a non-nil Trace writer).
	RoundStats *RoundStats
}

// RoundStats summarizes the per-round traffic profile of a run — the
// telemetry the experiment runner records so a sweep artifact carries
// the traffic shape, not just the totals. Message counts use
// sent-on-the-wire semantics: a message to an already-crashed recipient
// still counts, because the sender paid for it.
type RoundStats struct {
	// Rounds is the number of rounds the network executed, including
	// fully quiet rounds; it always equals the execution's round count.
	Rounds int `json:"rounds"`
	// BusiestRound and BusiestMessages locate the traffic peak.
	BusiestRound    int `json:"busiestRound"`
	BusiestMessages int `json:"busiestMessages"`
	// PeakBits is the largest per-round bit volume.
	PeakBits int `json:"peakBits"`
	// MeanMessages and StddevMessages describe the per-round message
	// distribution.
	MeanMessages   float64 `json:"meanMessages"`
	StddevMessages float64 `json:"stddevMessages"`
}

// fill computes Unique/OrderPreserving from the decided identities.
func (r *Result) fill(ids []int) {
	n := len(ids)
	r.Unique = true
	r.OrderPreserving = true
	type pair struct{ oldID, newID int }
	var pairs []pair
	seen := make(map[int]bool)
	for link, newID := range r.NewIDByLink {
		if newID < 0 {
			continue
		}
		if newID < 1 || newID > n || seen[newID] {
			r.Unique = false
		}
		seen[newID] = true
		pairs = append(pairs, pair{oldID: ids[link], newID: newID})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].oldID < pairs[b].oldID })
	for i := 1; i < len(pairs); i++ {
		if pairs[i].newID <= pairs[i-1].newID {
			r.OrderPreserving = false
		}
	}
}

// roundStatsFrom converts a trace recording into the Result profile.
func roundStatsFrom(rec *trace.Recorder) *RoundStats {
	s := rec.Summary()
	return &RoundStats{
		Rounds:          s.Rounds,
		BusiestRound:    s.BusiestRound,
		BusiestMessages: s.BusiestMessages,
		PeakBits:        s.PeakBits,
		MeanMessages:    s.MeanMessages,
		StddevMessages:  s.StddevMessages,
	}
}

// AdversaryLinks places f adversarial (Byzantine / corrupt) links among
// n nodes, spread by the stride 3i+1 so adversaries land in different
// thirds of the ring rather than clustering at the low indices.
//
// Unlike the naive (3i+1) mod n enumeration, placement is deduplicated:
// when the stride wraps onto an already-chosen link (which happens
// whenever n ≡ 0 (mod 3) and f > n/3, because the stride then only ever
// visits residues ≡ 1 mod 3), the remaining adversaries fill the lowest
// unused links instead of silently re-corrupting the same ones. The
// result always contains exactly f distinct links; whenever the naive
// enumeration was collision-free the two placements are identical, so
// historical sweep outputs are unchanged.
func AdversaryLinks(n, f int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("renaming: adversary placement needs n > 0, got n=%d", n)
	}
	if f < 0 || f >= n {
		return nil, fmt.Errorf("renaming: adversary count f=%d out of range [0, n) for n=%d", f, n)
	}
	links := make([]int, 0, f)
	used := make([]bool, n)
	for i := 0; i < n && len(links) < f; i++ {
		link := (3*i + 1) % n
		if !used[link] {
			used[link] = true
			links = append(links, link)
		}
	}
	// Stride exhausted (n ≡ 0 mod 3 visits only n/3 links): fill the
	// lowest unused links. f < n guarantees enough remain.
	for link := 0; len(links) < f; link++ {
		if !used[link] {
			used[link] = true
			links = append(links, link)
		}
	}
	return links, nil
}

// IDPattern selects how original identities are spread over [N].
type IDPattern int

const (
	// IDsRandom draws n distinct identities uniformly from [1, N].
	IDsRandom IDPattern = iota + 1
	// IDsEven spreads identities evenly across [1, N].
	IDsEven
	// IDsClustered packs identities into [1, n] plus one far outlier,
	// the adversarial profile for divide-and-conquer depth.
	IDsClustered
)

// GenerateIDs produces n distinct original identities in [1, bigN]
// following the pattern, deterministically in the seed.
func GenerateIDs(n, bigN int, pattern IDPattern, seed int64) ([]int, error) {
	if n <= 0 || bigN < n {
		return nil, fmt.Errorf("renaming: invalid n=%d, N=%d", n, bigN)
	}
	switch pattern {
	case IDsEven:
		ids := make([]int, n)
		gap := bigN / n
		for i := range ids {
			ids[i] = i*gap + 1
		}
		return ids, nil
	case IDsClustered:
		ids := make([]int, n)
		for i := 0; i < n-1; i++ {
			ids[i] = i + 1
		}
		ids[n-1] = bigN
		return ids, nil
	case IDsRandom:
		rng := rand.New(rand.NewSource(sim.DeriveSeed(seed, 0x696473))) // "ids"
		seen := make(map[int]bool, n)
		ids := make([]int, 0, n)
		for len(ids) < n {
			id := rng.Intn(bigN) + 1
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		return ids, nil
	default:
		return nil, errors.New("renaming: unknown id pattern")
	}
}
