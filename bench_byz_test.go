package renaming_test

import (
	"fmt"
	"testing"

	"renaming"
	"renaming/internal/core"
	"renaming/internal/sim"
)

// BenchmarkByzStepRound measures the steady-state per-round cost of the
// Byzantine-resilient algorithm's hot path — the committee loop with
// split-world attackers forcing divide-and-conquer recursion — at the
// scales the Theorem 1.3 sweeps run at. The CI bench-smoke job runs this
// at -benchtime 1x to catch Byzantine-path performance regressions.
func BenchmarkByzStepRound(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ids, err := renaming.GenerateIDs(n, 8*n, renaming.IDsEven, int64(n))
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.ByzConfig{N: 8 * n, IDs: ids, Seed: int64(n), PoolProb: 16.0 / float64(n)}
			if err := cfg.Validate(); err != nil {
				b.Fatal(err)
			}
			cfg = cfg.Precompute() // share the candidate pool across nodes, as harnesses do
			build := func() *sim.Network {
				nodes := make([]sim.Node, n)
				for i := 0; i < n; i++ {
					if i == 1 || i == 4 {
						nodes[i] = core.NewByzAttacker(cfg, i, core.BehaviorSplitWorld)
						continue
					}
					nodes[i] = core.NewByzNode(cfg, i)
				}
				return sim.NewNetwork(nodes, sim.WithByzantine([]int{1, 4}))
			}
			// Discover the run length once, so the measured loop can swap in
			// a fresh network before the protocol terminates (a halted
			// network would make StepRound trivially cheap).
			probe := build()
			if err := probe.Run(1 << 20); err != nil {
				b.Fatal(err)
			}
			total := probe.Round()
			probe.Close()
			if total < 16 {
				b.Fatalf("run too short to benchmark: %d rounds", total)
			}
			const warm = 8 // past election/aggregation, into the committee loop
			nw := build()
			for r := 0; r < warm; r++ {
				nw.StepRound()
			}
			msgs0, rounds0 := nw.Metrics().Messages, nw.Round()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if nw.Round() >= total-1 {
					b.StopTimer()
					nw.Close()
					nw = build()
					for r := 0; r < warm; r++ {
						nw.StepRound()
					}
					msgs0, rounds0 = nw.Metrics().Messages, nw.Round()
					b.StartTimer()
				}
				nw.StepRound()
			}
			b.StopTimer()
			if rounds := nw.Round() - rounds0; rounds > 0 {
				b.ReportMetric(float64(nw.Metrics().Messages-msgs0)/float64(rounds), "msgs/round")
			}
			nw.Close()
		})
	}
}
