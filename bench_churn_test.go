package renaming_test

import (
	"fmt"
	"testing"

	"renaming/internal/service"
)

// BenchmarkChurnEpoch measures the steady-state per-epoch cost of the
// long-lived renaming service — one trace draw, one one-shot crash run
// over the join batch, free-list recycling, and the commit — at the
// capacities the E11 churn experiment sweeps. The trace runs warm (the
// population hovers around capacity, so most grants are recycles),
// which is the regime a long-lived service lives in. The CI bench-smoke
// job runs this at -benchtime 1x; make bench records it into
// BENCH_churn.json.
func BenchmarkChurnEpoch(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// BigN far above the default 16·n keeps the identity stream
			// from exhausting at large -benchtime; draws stay O(batch).
			spec := service.TraceSpec{Capacity: n, BigN: 4096 * n, Seed: int64(n)}
			cfg := service.Config{Capacity: n, BigN: 4096 * n, Seed: int64(n)}
			driver, err := service.NewTraceDriver(spec)
			if err != nil {
				b.Fatal(err)
			}
			svc, err := service.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Warm the service to its steady-state population so every
			// measured epoch does real join/leave/recycle work.
			for epoch := 0; epoch < 8; epoch++ {
				joins, leaves, err := driver.NextEpoch(svc.LiveClients())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := svc.RunEpoch(joins, leaves); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				joins, leaves, err := driver.NextEpoch(svc.LiveClients())
				if err != nil {
					b.Fatal(err)
				}
				res, err := svc.RunEpoch(joins, leaves)
				if err != nil {
					b.Fatal(err)
				}
				if res.Aborted {
					b.Fatalf("epoch %d aborted: %s", res.Epoch, res.AbortReason)
				}
			}
		})
	}
}
