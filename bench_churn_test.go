package renaming_test

import (
	"fmt"
	"testing"

	"renaming/internal/service"
)

// BenchmarkChurnEpoch measures the steady-state per-epoch cost of the
// long-lived renaming service — one trace draw, one one-shot crash run
// over the join batch, free-list recycling, and the commit — at the
// capacities the E11 churn experiment sweeps. The trace runs warm (the
// population hovers around capacity, so most grants are recycles),
// which is the regime a long-lived service lives in. The CI bench-smoke
// job runs this at -benchtime 1x; make bench records it into
// BENCH_churn.json.
func BenchmarkChurnEpoch(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// BigN far above the default 16·n keeps the identity stream
			// from exhausting at large -benchtime; draws stay O(batch).
			spec := service.TraceSpec{Capacity: n, BigN: 4096 * n, Seed: int64(n)}
			cfg := service.Config{Capacity: n, BigN: 4096 * n, Seed: int64(n)}
			driver, err := service.NewTraceDriver(spec)
			if err != nil {
				b.Fatal(err)
			}
			svc, err := service.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			// Warm the service to its steady-state population so every
			// measured epoch does real join/leave/recycle work.
			for epoch := 0; epoch < 8; epoch++ {
				joins, leaves, err := driver.NextEpoch(svc.LiveClients())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := svc.RunEpoch(joins, leaves); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				joins, leaves, err := driver.NextEpoch(svc.LiveClients())
				if err != nil {
					b.Fatal(err)
				}
				res, err := svc.RunEpoch(joins, leaves)
				if err != nil {
					b.Fatal(err)
				}
				if res.Aborted {
					b.Fatalf("epoch %d aborted: %s", res.Epoch, res.AbortReason)
				}
			}
		})
	}

	// The fixedbatch rows hold the epoch workload constant (128 joins and
	// leaves per epoch, identities from a shared 2^22 namespace) and sweep
	// only the Capacity knob. Under snapshot rollback these rows scaled
	// linearly in Capacity — every epoch copied the whole owner table and
	// free-list ring; with the undo journal and the lazy live view the
	// per-epoch cost is O(batch), so the rows should stay flat from
	// cap=256 through the cap=2^20 smoke row (the 1.5x ratio gate in
	// EXPERIMENTS.md E11 reads these from BENCH_churn.json).
	const fixedBatch = 128
	for _, capacity := range []int{256, 4096, 65536, 1 << 20} {
		capacity := capacity
		b.Run(fmt.Sprintf("fixedbatch/cap=%d", capacity), func(b *testing.B) {
			spec := service.TraceSpec{
				Capacity: capacity, BigN: 1 << 22, Seed: 99,
				JoinMax: fixedBatch, LeaveMax: fixedBatch,
			}
			cfg := service.Config{Capacity: capacity, BigN: 1 << 22, Seed: 99}
			driver, err := service.NewTraceDriver(spec)
			if err != nil {
				b.Fatal(err)
			}
			svc, err := service.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			for epoch := 0; epoch < 8; epoch++ {
				joins, leaves, err := driver.NextEpoch(svc.LiveClients())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := svc.RunEpoch(joins, leaves); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				joins, leaves, err := driver.NextEpoch(svc.LiveClients())
				if err != nil {
					b.Fatal(err)
				}
				res, err := svc.RunEpoch(joins, leaves)
				if err != nil {
					b.Fatal(err)
				}
				if res.Aborted {
					b.Fatalf("epoch %d aborted: %s", res.Epoch, res.AbortReason)
				}
			}
		})
	}
}
