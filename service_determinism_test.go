package renaming_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"renaming/internal/campaign"
	"renaming/internal/service"
)

// churnGoldenFingerprint pins the complete telemetry (JSON-marshalled
// EpochResult stream) of a 50-epoch churn trace at capacity 256 under a
// generated churn adversary. It covers the whole service stack — trace
// driver, free-list recycling, per-epoch one-shot runs, fault
// schedule — so any behaviour change anywhere in the epoch pipeline
// moves it. Update it only for a deliberate behaviour change, never for
// a performance change (mirrors crashGoldenFingerprint).
const churnGoldenFingerprint = "093028e5bd5ddc780341533938730c6ad788647c9aea6382c353402e702fef15"

// churnTraceFingerprint runs the determinism workload and hashes every
// epoch's telemetry.
func churnTraceFingerprint(t *testing.T, workers int) string {
	t.Helper()
	const (
		capacity = 256
		epochs   = 50
		seed     = 1234
	)
	strat, err := campaign.Generate(campaign.GenSpec{
		Kind: campaign.GenChurn, N: capacity, Budget: 16,
		Rounds:   campaign.CrashRoundCeiling(capacity / 8),
		Epochs:   epochs,
		BatchMax: capacity / 8,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	driver, err := service.NewTraceDriver(service.TraceSpec{Capacity: capacity, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{
		Capacity: capacity, Seed: seed,
		EngineWorkers: workers,
		FaultForEpoch: strat.ChurnFault(),
	})
	if err != nil {
		t.Fatal(err)
	}

	h := sha256.New()
	enc := json.NewEncoder(h)
	for epoch := 0; epoch < epochs; epoch++ {
		joins, leaves, err := driver.NextEpoch(svc.LiveClients())
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		res, err := svc.RunEpoch(joins, leaves)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if err := enc.Encode(res); err != nil {
			t.Fatalf("epoch %d: marshal: %v", epoch, err)
		}
	}
	if svc.Recycled() == 0 {
		t.Fatal("determinism trace never recycled a name")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestServiceDeterminism runs the same 50-epoch churn trace with the
// round engine pinned to 1 worker and to 8 workers and requires both to
// match the golden fingerprint: the service's epoch pipeline is
// observationally invariant in the engine's parallelism, which is what
// makes cmd/renamed artifacts byte-comparable across -workers counts.
func TestServiceDeterminism(t *testing.T) {
	for _, workers := range []int{1, 8} {
		if got := churnTraceFingerprint(t, workers); got != churnGoldenFingerprint {
			t.Errorf("workers=%d: churn fingerprint %s, want %s", workers, got, churnGoldenFingerprint)
		}
	}
}
