// Benchmarks regenerating the paper's quantitative artifacts, one per
// table/figure of the experiment index in DESIGN.md §4. Every benchmark
// reports the domain metrics the paper's claims are about (messages,
// bits, rounds) via b.ReportMetric, so `go test -bench=. -benchmem`
// doubles as the reproduction harness at benchmark scale; cmd/benchtables
// prints the full formatted tables.
package renaming_test

import (
	"fmt"
	"runtime"
	"testing"

	"renaming"
	"renaming/internal/lowerbound"
	"renaming/internal/runner"
)

func reportCrash(b *testing.B, res *renaming.Result) {
	b.Helper()
	if !res.Unique {
		b.Fatal("renaming failed")
	}
	b.ReportMetric(float64(res.Messages), "msgs/run")
	b.ReportMetric(float64(res.Bits), "bits/run")
	b.ReportMetric(float64(res.Rounds), "rounds")
	b.ReportMetric(float64(res.Crashes), "f")
}

func reportByz(b *testing.B, res *renaming.Result) {
	b.Helper()
	if !res.Unique || !res.OrderPreserving {
		b.Fatal("renaming failed")
	}
	b.ReportMetric(float64(res.HonestMessages), "msgs/run")
	b.ReportMetric(float64(res.HonestBits), "bits/run")
	b.ReportMetric(float64(res.Rounds), "rounds")
	b.ReportMetric(float64(res.Iterations), "iters")
}

// BenchmarkTable1 is E1: one sub-benchmark per Table 1 row.
func BenchmarkTable1(b *testing.B) {
	const n = 96
	b.Run("crash-f0", func(b *testing.B) {
		var res *renaming.Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = renaming.RunCrash(n, renaming.CrashSpec{Seed: 1, CommitteeScale: 0.03})
			if err != nil {
				b.Fatal(err)
			}
		}
		reportCrash(b, res)
	})
	b.Run("crash-killer", func(b *testing.B) {
		var res *renaming.Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = renaming.RunCrash(n, renaming.CrashSpec{Seed: 2, CommitteeScale: 0.03,
				Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: n / 4, MidSend: true}})
			if err != nil {
				b.Fatal(err)
			}
		}
		reportCrash(b, res)
	})
	b.Run("baseline-alltoall", func(b *testing.B) {
		var res *renaming.Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = renaming.RunBaseline(n, renaming.BaselineSpec{Kind: renaming.BaselineAllToAllCrash, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
		}
		reportCrash(b, res)
	})
	b.Run("baseline-collectsort", func(b *testing.B) {
		var res *renaming.Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = renaming.RunBaseline(n, renaming.BaselineSpec{Kind: renaming.BaselineCollectSort, Seed: 4})
			if err != nil {
				b.Fatal(err)
			}
		}
		reportCrash(b, res)
	})
	b.Run("byzantine-f4", func(b *testing.B) {
		byz := map[int]renaming.Behavior{1: renaming.BehaviorSplitWorld, 4: renaming.BehaviorSplitWorld,
			7: renaming.BehaviorSplitWorld, 10: renaming.BehaviorSplitWorld}
		var res *renaming.Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = renaming.RunByzantine(n, renaming.ByzSpec{Seed: 5, PoolProb: 18.0 / n, Byzantine: byz})
			if err != nil {
				b.Fatal(err)
			}
		}
		reportByz(b, res)
	})
	b.Run("baseline-byzantine", func(b *testing.B) {
		var res *renaming.Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = renaming.RunBaseline(n, renaming.BaselineSpec{
				Kind: renaming.BaselineAllToAllByzantine, Seed: 6, Byzantine: []int{1, 4, 7, 10}})
			if err != nil {
				b.Fatal(err)
			}
		}
		reportCrash(b, res)
	})
	b.Run("baseline-reliable-broadcast", func(b *testing.B) {
		var res *renaming.Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = renaming.RunBaseline(n, renaming.BaselineSpec{
				Kind: renaming.BaselineConsensusBroadcast, Seed: 7, Byzantine: []int{1, 4, 7, 10}})
			if err != nil {
				b.Fatal(err)
			}
		}
		reportCrash(b, res)
	})
}

// BenchmarkCrashRounds is E2: Theorem 1.2's O(log n) round bound across n
// under the worst-case adversary.
func BenchmarkCrashRounds(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var res *renaming.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = renaming.RunCrash(n, renaming.CrashSpec{Seed: int64(n), CommitteeScale: 0.02,
					Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: n / 4, MidSend: true}})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCrash(b, res)
		})
	}
}

// BenchmarkCrashMessagesVsF is E3: the message adaptivity of Theorem 1.2.
func BenchmarkCrashMessagesVsF(b *testing.B) {
	const n = 512
	for _, f := range []int{0, 8, 64, 511} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			var res *renaming.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = renaming.RunCrash(n, renaming.CrashSpec{Seed: int64(f), CommitteeScale: 0.01,
					Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: f, MidSend: true}})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCrash(b, res)
		})
	}
}

// BenchmarkCrashVsN is E3n: quasi-linear growth of the committee
// algorithm vs quadratic growth of the baseline.
func BenchmarkCrashVsN(b *testing.B) {
	for _, n := range []int{128, 512} {
		b.Run(fmt.Sprintf("ours/n=%d", n), func(b *testing.B) {
			var res *renaming.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = renaming.RunCrash(n, renaming.CrashSpec{Seed: int64(n), CommitteeScale: 0.01,
					Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: 8, MidSend: true}})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCrash(b, res)
		})
		b.Run(fmt.Sprintf("baseline/n=%d", n), func(b *testing.B) {
			var res *renaming.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = renaming.RunBaseline(n, renaming.BaselineSpec{Kind: renaming.BaselineAllToAllCrash, Seed: int64(n)})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportCrash(b, res)
		})
	}
}

// BenchmarkCrashWorstCase is E4: the deterministic Θ(n² log n) ceiling
// with the paper's constants (committee = everyone).
func BenchmarkCrashWorstCase(b *testing.B) {
	const n = 128
	var res *renaming.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = renaming.RunCrash(n, renaming.CrashSpec{Seed: 1,
			Fault: renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: n / 2, Prob: 0.1, MidSend: true}})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCrash(b, res)
}

// BenchmarkByzantineVsF is E5: Theorem 1.3's scaling in the actual number
// of Byzantine nodes.
func BenchmarkByzantineVsF(b *testing.B) {
	const n = 60
	for _, f := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			byz := make(map[int]renaming.Behavior, f)
			for i := 0; i < f; i++ {
				byz[3*i+1] = renaming.BehaviorSplitWorld
			}
			var res *renaming.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = renaming.RunByzantine(n, renaming.ByzSpec{Seed: 42, PoolProb: 20.0 / n, Byzantine: byz})
				if err != nil {
					b.Fatal(err)
				}
			}
			if !res.AssumptionHolds {
				b.Skip("committee composition outside guarantee envelope")
			}
			reportByz(b, res)
		})
	}
}

// BenchmarkByzantineVsN is E5n: quasi-linear growth in n at fixed f.
func BenchmarkByzantineVsN(b *testing.B) {
	byz := map[int]renaming.Behavior{1: renaming.BehaviorSplitWorld, 4: renaming.BehaviorSplitWorld}
	for _, n := range []int{48, 96, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var res *renaming.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = renaming.RunByzantine(n, renaming.ByzSpec{Seed: int64(n),
					PoolProb: 16.0 / float64(n), Byzantine: byz})
				if err != nil {
					b.Fatal(err)
				}
			}
			if !res.AssumptionHolds {
				b.Skip("committee composition outside guarantee envelope")
			}
			reportByz(b, res)
		})
	}
}

// BenchmarkOrderPreservation is E6: the order-preserving guarantee under
// adversarial identity clustering.
func BenchmarkOrderPreservation(b *testing.B) {
	const n = 48
	ids, err := renaming.GenerateIDs(n, 8*n, renaming.IDsClustered, 1)
	if err != nil {
		b.Fatal(err)
	}
	byz := map[int]renaming.Behavior{2: renaming.BehaviorSplitWorld}
	var res *renaming.Result
	for i := 0; i < b.N; i++ {
		res, err = renaming.RunByzantine(n, renaming.ByzSpec{N: 8 * n, IDs: ids, Seed: 3,
			PoolProb: 16.0 / n, Byzantine: byz})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportByz(b, res)
}

// BenchmarkLowerBound is E7: the Theorem 1.4 Monte-Carlo.
func BenchmarkLowerBound(b *testing.B) {
	const n = 256
	for _, budget := range []int{n / 2, n - 16, n - 1} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = lowerbound.SuccessRate(n, budget, 2000, 1)
			}
			b.ReportMetric(rate, "success")
		})
	}
}

// BenchmarkMessageSize is E8: the O(log N) message-size bound.
func BenchmarkMessageSize(b *testing.B) {
	const n = 64
	for _, e := range []int{16, 32, 48} {
		b.Run(fmt.Sprintf("N=2^%d", e), func(b *testing.B) {
			bigN := 1 << e
			ids, err := renaming.GenerateIDs(n, bigN, renaming.IDsRandom, int64(e))
			if err != nil {
				b.Fatal(err)
			}
			var res *renaming.Result
			for i := 0; i < b.N; i++ {
				res, err = renaming.RunCrash(n, renaming.CrashSpec{N: bigN, IDs: ids, Seed: 1, CommitteeScale: 0.05})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.MaxMessageBits), "maxMsgBits")
			b.ReportMetric(float64(res.MaxMessageBits)/float64(e), "bits/log2N")
		})
	}
}

// BenchmarkAblationDoubling is A1: cost of the paper's re-election
// doubling versus the ablation (success is checked in the test suite; the
// bench compares message cost).
func BenchmarkAblationDoubling(b *testing.B) {
	const n = 128
	for _, disable := range []bool{false, true} {
		name := "doubling-on"
		if disable {
			name = "doubling-off"
		}
		b.Run(name, func(b *testing.B) {
			var res *renaming.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = renaming.RunCrash(n, renaming.CrashSpec{Seed: 5, CommitteeScale: 0.02,
					DisableReelectionDoubling: disable,
					Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller,
						Budget: n - 1, MidSend: true}})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Messages), "msgs/run")
			b.ReportMetric(boolMetric(res.Unique), "success")
		})
	}
}

// BenchmarkAblationSplitAlways is A2: fingerprint divide-and-conquer vs
// naive per-bit consensus.
func BenchmarkAblationSplitAlways(b *testing.B) {
	const n = 36
	for _, split := range []bool{false, true} {
		name := "fingerprint"
		if split {
			name = "per-bit"
		}
		b.Run(name, func(b *testing.B) {
			var res *renaming.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = renaming.RunByzantine(n, renaming.ByzSpec{N: 4 * n, Seed: 7,
					PoolProb: 12.0 / n, SplitAlways: split})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportByz(b, res)
		})
	}
}

// BenchmarkSweepWorkers measures the experiment runner's worker-pool
// speedup: the same 16-point crash sweep at 1 worker vs GOMAXPROCS.
// Results are identical at any worker count (internal/runner); only the
// wall-clock changes.
func BenchmarkSweepWorkers(b *testing.B) {
	const n = 96
	sweepPoints := func() []runner.Point {
		points := make([]runner.Point, 16)
		for i := range points {
			seed := int64(i + 1)
			points[i] = runner.Point{
				Experiment: "bench", Name: fmt.Sprintf("killer/%d", i),
				Seed: seed, FixedSeed: true,
				Run: func(seed int64) (runner.Metrics, error) {
					res, err := renaming.RunCrash(n, renaming.CrashSpec{Seed: seed, CommitteeScale: 0.02,
						Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: n / 4, MidSend: true}})
					if err != nil {
						return runner.Metrics{}, err
					}
					return runner.FromResult(res, n), nil
				},
			}
		}
		return points
	}
	counts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				recs, err := runner.Run(sweepPoints(), runner.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, rec := range recs {
					if rec.Err != "" {
						b.Fatal(rec.Err)
					}
				}
			}
		})
	}
}

func boolMetric(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}
