package renaming_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"renaming"
)

func resultHash(t *testing.T, res *renaming.Result) string {
	t.Helper()
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// TestSessionMatchesOneShot runs a sequence of crash and Byzantine
// executions — different sizes, adversaries, and worker pins, crash and
// Byzantine interleaved on the same engine — through one Session, and
// requires every result to hash identically to the session-free entry
// point. A Session is purely a performance handle: reusing the engine
// across runs (including across algorithms and shrinking n) must be
// observationally invisible.
func TestSessionMatchesOneShot(t *testing.T) {
	sess := renaming.NewSession()
	defer sess.Close()

	crashSpecs := []renaming.CrashSpec{
		{Seed: 11, CommitteeScale: 0.05, Profile: true,
			Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: 16, MidSend: true}},
		{Seed: 12, CommitteeScale: 0.05, Profile: true, EngineWorkers: 4,
			Fault: renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: 8, Prob: 0.02}},
		{Seed: 13, CommitteeScale: 0.05},
	}
	ns := []int{96, 128, 48}
	for i, spec := range crashSpecs {
		// Fresh FaultSpec per run: stateful adversaries are good for one
		// execution, so each entry point gets its own build.
		want, err := renaming.RunCrash(ns[i], spec)
		if err != nil {
			t.Fatalf("crash run %d (one-shot): %v", i, err)
		}
		got, err := sess.RunCrash(ns[i], spec)
		if err != nil {
			t.Fatalf("crash run %d (session): %v", i, err)
		}
		if resultHash(t, got) != resultHash(t, want) {
			t.Errorf("crash run %d: session result diverged from one-shot", i)
		}
	}

	byzSpec := renaming.ByzSpec{
		Seed:    21,
		Profile: true,
		Byzantine: map[int]renaming.Behavior{
			3: renaming.BehaviorSplitWorld,
			7: renaming.BehaviorRushingEquivocate,
		},
	}
	want, err := renaming.RunByzantine(32, byzSpec)
	if err != nil {
		t.Fatalf("byz (one-shot): %v", err)
	}
	got, err := sess.RunByzantine(32, byzSpec)
	if err != nil {
		t.Fatalf("byz (session): %v", err)
	}
	if resultHash(t, got) != resultHash(t, want) {
		t.Error("byz: session result diverged from one-shot")
	}

	// Nil session: every run degrades to the session-free path.
	var nilSess *renaming.Session
	defer nilSess.Close() // nil-safe
	res, err := nilSess.RunCrash(48, crashSpecs[2])
	if err != nil {
		t.Fatalf("nil-session crash run: %v", err)
	}
	if !res.Unique {
		t.Error("nil-session crash run: not unique")
	}
}
