package renaming

import "renaming/internal/sim"

// Session is a reusable execution context for the one-shot algorithms.
//
// The free functions RunCrash and RunByzantine build a fresh simulated
// network for every call — per-node routing tables, per-worker delivery
// counters, inbox slab arenas, and a freshly spawned engine worker pool —
// and tear it all down at return. That is the right shape for a single
// experiment, but callers that execute many runs back to back (the
// long-lived renaming service runs one per epoch, a parameter sweep runs
// thousands) pay that setup on every call. A Session keeps one round
// engine alive across calls instead: worker goroutines stay parked
// between runs, and slabs, counters, and scratch are reset rather than
// reallocated, so steady-state per-run overhead is proportional to the
// run itself, not to the largest network ever built.
//
// Results are bit-identical to the session-free entry points — the
// pooled-vs-fresh determinism tests pin that — so a Session is purely a
// performance handle. It is not safe for concurrent use; concurrent
// callers should hold one Session each (a busy engine degrades to a
// fresh network rather than corrupting a run).
type Session struct {
	pool *sim.Pool
}

// NewSession returns a Session with an empty engine pool. Call Close
// when done; a finalizer reclaims sessions dropped without Close, so
// leaking one costs deferred goroutine shutdown, not correctness.
func NewSession() *Session {
	return &Session{pool: sim.NewPool()}
}

// Close releases the session's engine (its parked worker goroutines and
// arenas). Idempotent and nil-safe.
func (s *Session) Close() {
	if s != nil {
		s.pool.Close()
	}
}

// enginePool returns the underlying pool; nil on a nil Session, which
// downgrades every run to the session-free path.
func (s *Session) enginePool() *sim.Pool {
	if s == nil {
		return nil
	}
	return s.pool
}

// RunCrash is RunCrash executed on the session's pooled engine.
func (s *Session) RunCrash(n int, spec CrashSpec) (*Result, error) {
	return runCrash(n, spec, s.enginePool())
}

// RunByzantine is RunByzantine executed on the session's pooled engine.
func (s *Session) RunByzantine(n int, spec ByzSpec) (*Result, error) {
	return runByzantine(n, spec, s.enginePool())
}
