package renaming_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"renaming"
)

// TestToSetMatchesEagerMulticast is the representation property test of
// the shared-multicast path: a full adversarial crash execution must
// produce byte-identical telemetry — billed messages, billed bits, and
// the JSON-marshalled Result including the per-round traffic profile —
// whether the per-phase status convergecast travels as one shared ToSet
// entry (delivered through the engine's aggregate layer and the shared
// committee plan) or as eagerly-expanded per-recipient Multicast
// messages. The committee killer with mid-send crashes drives the
// divergence machinery: partial sends force ToSet expansion through the
// crash filter, recipients with divergent committee views decline the
// intern and fall back to explicit sends, and merged per-recipient
// views take the committee's private-plan path. Billing is decoupled
// from packing; this test pins that the packing is unobservable.
func TestToSetMatchesEagerMulticast(t *testing.T) {
	for _, seed := range []int64{11, 77} {
		for _, workers := range []int{1, 8} {
			var blobs [2][]byte
			for mode, eager := range []bool{false, true} {
				res, err := renaming.RunCrash(256, renaming.CrashSpec{
					Seed:           seed,
					CommitteeScale: 0.02,
					Fault: renaming.FaultSpec{
						Kind:    renaming.FaultCommitteeKiller,
						Budget:  64,
						MidSend: true,
					},
					Profile:        true,
					EngineWorkers:  workers,
					EagerMulticast: eager,
				})
				if err != nil {
					t.Fatalf("seed=%d workers=%d eager=%v: %v", seed, workers, eager, err)
				}
				if !res.Unique {
					t.Fatalf("seed=%d workers=%d eager=%v: surviving nodes did not rename uniquely", seed, workers, eager)
				}
				blob, err := json.Marshal(res)
				if err != nil {
					t.Fatalf("seed=%d workers=%d eager=%v: marshal: %v", seed, workers, eager, err)
				}
				blobs[mode] = blob
			}
			if !bytes.Equal(blobs[0], blobs[1]) {
				t.Errorf("seed=%d workers=%d: ToSet and eager-multicast telemetry differ", seed, workers)
			}
		}
	}
}
