package renaming_test

import (
	"fmt"
	"log"

	"renaming"
)

// ExampleRunCrash renames 32 nodes under an adaptive committee-killing
// adversary and shows the guarantees the call returns.
func ExampleRunCrash() {
	res, err := renaming.RunCrash(32, renaming.CrashSpec{
		Seed: 1,
		Fault: renaming.FaultSpec{
			Kind:   renaming.FaultCommitteeKiller,
			Budget: 8,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strong:", res.Unique)
	fmt.Println("crashes:", res.Crashes)
	// Output:
	// strong: true
	// crashes: 8
}

// ExampleRunByzantine renames 24 nodes of which two are Byzantine,
// demonstrating the order-preserving guarantee.
func ExampleRunByzantine() {
	res, err := renaming.RunByzantine(24, renaming.ByzSpec{
		Seed: 3,
		Byzantine: map[int]renaming.Behavior{
			5:  renaming.BehaviorSplitWorld,
			17: renaming.BehaviorSilent,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strong:", res.Unique)
	fmt.Println("order-preserving:", res.OrderPreserving)
	// Output:
	// strong: true
	// order-preserving: true
}

// ExampleGenerateIDs draws original identities from a large namespace.
func ExampleGenerateIDs() {
	ids, err := renaming.GenerateIDs(4, 1000, renaming.IDsEven, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ids)
	// Output:
	// [1 251 501 751]
}

// ExampleRunBaseline compares against the all-to-all interval-halving
// baseline the paper improves on.
func ExampleRunBaseline() {
	ours, err := renaming.RunCrash(256, renaming.CrashSpec{Seed: 2, CommitteeScale: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	base, err := renaming.RunBaseline(256, renaming.BaselineSpec{
		Kind: renaming.BaselineAllToAllCrash, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("both strong:", ours.Unique && base.Unique)
	fmt.Println("ours cheaper:", ours.Messages < base.Messages)
	// Output:
	// both strong: true
	// ours cheaper: true
}
