package renaming_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"renaming"
)

// byzGoldenFingerprint pins the complete telemetry (JSON-marshalled
// Result, including per-round traffic profile) of one adversarial
// Byzantine execution at n = 256 with three attacker behaviours active,
// among them a rushing equivocator. Update it only for a deliberate
// behaviour change, never for a performance change: every engine or
// algorithm optimisation must reproduce this byte-for-byte.
const byzGoldenFingerprint = "da7a9623c7dd761709621943a28a9cf701931cbb8029943218bdae087bd2c171"

// TestByzantineDeterminism runs the same adversarial execution with the
// round engine pinned to 1 worker and to 8 workers and requires both to
// match the golden fingerprint. The 1-worker run exercises the
// coordinator-only fast paths (stepped-sender walks, zero-offset
// delivery); the 8-worker run exercises the sharded phases, barriers,
// and counting-sort delivery. Identical hashes prove the parallel engine
// is observationally equivalent to the sequential one on a workload with
// rushing adversaries, mid-protocol recursion, and shared broadcasts —
// the regression oracle the perf work is measured against.
func TestByzantineDeterminism(t *testing.T) {
	byz := map[int]renaming.Behavior{
		1: renaming.BehaviorSplitWorld,
		4: renaming.BehaviorEquivocate,
		9: renaming.BehaviorRushingEquivocate,
	}
	for _, workers := range []int{1, 8} {
		res, err := renaming.RunByzantine(256, renaming.ByzSpec{
			Seed:          77,
			PoolProb:      20.0 / 256,
			Byzantine:     byz,
			Profile:       true,
			EngineWorkers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Unique {
			t.Fatalf("workers=%d: honest nodes did not rename uniquely", workers)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("workers=%d: marshal: %v", workers, err)
		}
		sum := sha256.Sum256(blob)
		if got := hex.EncodeToString(sum[:]); got != byzGoldenFingerprint {
			t.Errorf("workers=%d: telemetry fingerprint %s, want %s", workers, got, byzGoldenFingerprint)
		}
	}
}
