package renaming

import (
	"fmt"
	"io"

	"renaming/internal/consensus"
	"renaming/internal/core"
	"renaming/internal/sim"
	"renaming/internal/trace"
)

// Behavior selects a Byzantine node's strategy ("Carlo" is static: the
// corrupted set and behaviours are fixed before activation).
type Behavior int

const (
	// BehaviorSilent plays dead.
	BehaviorSilent Behavior = iota + 1
	// BehaviorSplitWorld announces its identity to only half the
	// committee, diverging the identity lists.
	BehaviorSplitWorld
	// BehaviorEquivocate additionally equivocates inside every committee
	// subprotocol and fabricates early NEW messages.
	BehaviorEquivocate
	// BehaviorSpam floods everyone with garbage every round.
	BehaviorSpam
	// BehaviorMinoritySplit withholds its announcement from a sub-third
	// minority of the committee, driving the dirty-segment path.
	BehaviorMinoritySplit
	// BehaviorRushingEquivocate sees each round's honest messages before
	// sending (the rushing power of the synchronous model) and splits
	// its votes to maximize disagreement.
	BehaviorRushingEquivocate
)

func (b Behavior) core() core.ByzBehavior {
	switch b {
	case BehaviorSplitWorld:
		return core.BehaviorSplitWorld
	case BehaviorEquivocate:
		return core.BehaviorEquivocate
	case BehaviorSpam:
		return core.BehaviorSpam
	case BehaviorMinoritySplit:
		return core.BehaviorMinoritySplit
	case BehaviorRushingEquivocate:
		return core.BehaviorRushingEquivocate
	default:
		return core.BehaviorSilent
	}
}

// ByzSpec configures one execution of the Byzantine-resilient algorithm.
type ByzSpec struct {
	// N is the original namespace size; defaults to 8·n. The Byzantine
	// algorithm's divide-and-conquer works over [N], so N also bounds
	// the recursion depth log N.
	N int
	// IDs are the original identities per link; generated with IDsEven
	// when nil.
	IDs []int
	// Seed drives private randomness, the shared-randomness beacon, and
	// Byzantine behaviour.
	Seed int64
	// Epsilon is the paper's ε₀ margin (default 0.1).
	Epsilon float64
	// PoolProb overrides the paper's candidate-pool probability p₀
	// (see core.ByzConfig).
	PoolProb float64
	// Sortition switches committee election to public-hash sortition
	// (no shared randomness; see core.ElectionSortition for the weaker
	// adversary model this implies).
	Sortition bool
	// SplitAlways is the A2 ablation (see core.ByzConfig).
	SplitAlways bool
	// Byzantine maps link index → behaviour for corrupted nodes.
	Byzantine map[int]Behavior
	// Fault optionally crashes honest nodes mid-execution (mixed
	// crash+Byzantine campaigns). A Byzantine adversary subsumes
	// crashes, so crashed honest committee members count toward the
	// Theorem 1.3 hypothesis bound alongside the corrupted ones. The
	// zero value keeps the network crash-free.
	Fault FaultSpec
	// Trace, when non-nil, receives a per-round traffic timeline after
	// the run.
	Trace io.Writer
	// Profile records the per-round traffic profile into
	// Result.RoundStats without a timeline writer (used by the
	// experiment runner's telemetry records).
	Profile bool
	// CongestLimit, when positive, flags honest messages above this many
	// bits in Result.OversizeMessages (CONGEST-model check).
	CongestLimit int
	// EngineWorkers, when positive, pins the round engine's worker count
	// (sim.WithEngineWorkers). Results are bit-identical at any setting;
	// determinism tests use it to compare worker counts explicitly.
	EngineWorkers int
}

// RunByzantine executes the Byzantine-resilient renaming algorithm of
// Section 3 over n nodes and returns the outcome with full communication
// metrics. Correct nodes' results populate NewIDByLink; Byzantine links
// are marked -1.
func RunByzantine(n int, spec ByzSpec) (*Result, error) {
	return runByzantine(n, spec, nil)
}

// runByzantine is RunByzantine over an optional engine pool; see runCrash
// for the pooling contract.
func runByzantine(n int, spec ByzSpec, pool *sim.Pool) (*Result, error) {
	if spec.N == 0 {
		spec.N = 8 * n
	}
	if spec.IDs == nil {
		ids, err := GenerateIDs(n, spec.N, IDsEven, spec.Seed)
		if err != nil {
			return nil, err
		}
		spec.IDs = ids
	}
	if len(spec.IDs) != n {
		return nil, fmt.Errorf("renaming: %d ids for %d nodes", len(spec.IDs), n)
	}
	cfg := core.ByzConfig{
		N: spec.N, IDs: spec.IDs, Seed: spec.Seed,
		Epsilon: spec.Epsilon, PoolProb: spec.PoolProb,
		SplitAlways: spec.SplitAlways,
	}
	if spec.Sortition {
		cfg.Election = core.ElectionSortition
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(spec.Byzantine) > cfg.MaxByzantine() {
		return nil, fmt.Errorf("renaming: %d Byzantine nodes exceed the bound %d = (1/3−ε₀)·n",
			len(spec.Byzantine), cfg.MaxByzantine())
	}
	// Derive the candidate pool once; all n node constructors share it.
	cfg = cfg.Precompute()

	honest := make(map[int]*core.ByzNode, n)
	simNodes := make([]sim.Node, n)
	var byzLinks, rushLinks []int
	for i := 0; i < n; i++ {
		if behavior, bad := spec.Byzantine[i]; bad {
			simNodes[i] = core.NewByzAttacker(cfg, i, behavior.core())
			byzLinks = append(byzLinks, i)
			if behavior == BehaviorRushingEquivocate {
				rushLinks = append(rushLinks, i)
			}
			continue
		}
		node := core.NewByzNode(cfg, i)
		honest[i] = node
		simNodes[i] = node
	}
	opts := []sim.Option{sim.WithByzantine(byzLinks)}
	if spec.Fault.Kind != 0 || spec.Fault.Custom != nil {
		// Gated so pure-Byzantine runs keep their exact engine
		// configuration (and determinism fingerprints) from before
		// mixed-fault support existed.
		opts = append(opts, sim.WithCrashAdversary(spec.Fault.build(spec.Seed)))
	}
	if len(rushLinks) > 0 {
		opts = append(opts, sim.WithRushing(rushLinks))
	}
	if spec.EngineWorkers > 0 {
		opts = append(opts, sim.WithEngineWorkers(spec.EngineWorkers))
	}
	var recorder *trace.Recorder
	if spec.Trace != nil {
		recorder = trace.NewRecorder()
		opts = append(opts, sim.WithObserver(recorder.Observe))
	} else if spec.Profile {
		// Profile-only runs need Summary, not the per-round timeline, so
		// the streaming recorder's digest feed avoids materializing the
		// round's delivered-message slice for the observer.
		recorder = trace.NewStreamingRecorder()
		opts = append(opts, sim.WithRoundDigest(recorder.ObserveDigest))
	}
	if spec.CongestLimit > 0 {
		opts = append(opts, sim.WithCongestLimit(spec.CongestLimit))
	}
	nw := pool.Acquire(simNodes, opts...)
	defer nw.Close()
	if err := nw.Run(byzRoundBudget(cfg, len(byzLinks))); err != nil {
		return nil, fmt.Errorf("byzantine renaming: %w", err)
	}
	if recorder != nil && spec.Trace != nil {
		if err := recorder.WriteTimeline(spec.Trace); err != nil {
			return nil, fmt.Errorf("write trace: %w", err)
		}
	}

	res := &Result{
		NewIDByLink: make([]int, n),
		Byzantine:   len(byzLinks),
		Crashes:     nw.Crashes(),
	}
	if recorder != nil {
		res.RoundStats = roundStatsFrom(recorder)
	}
	byzInCommittee := 0
	for i := 0; i < n; i++ {
		res.NewIDByLink[i] = -1
		node, ok := honest[i]
		if !ok {
			continue
		}
		if id, decided := node.Output(); decided {
			res.NewIDByLink[i] = id
		}
		if node.Iterations() > res.Iterations {
			res.Iterations = node.Iterations()
		}
		if res.CommitteeSize == 0 && node.CommitteeSize() > 0 {
			res.CommitteeSize = node.CommitteeSize()
			byzInCommittee = node.ByzantineInCommittee(func(link int) bool {
				// Crashed honest members count as adversarial: a
				// Byzantine adversary can always emulate a crash, so the
				// hypothesis bound must absorb both (conservative — a
				// crash is strictly weaker than full corruption).
				_, bad := spec.Byzantine[link]
				return bad || !nw.Alive(link)
			})
		}
	}
	res.AssumptionHolds = res.CommitteeSize > 0 && 3*byzInCommittee < res.CommitteeSize
	fillMetrics(res, nw)
	res.fill(spec.IDs)
	for i := 0; i < n; i++ {
		// Crashed honest nodes are excused from deciding (same contract
		// as the crash algorithm); surviving honest nodes are not.
		if _, bad := spec.Byzantine[i]; !bad && nw.Alive(i) && res.NewIDByLink[i] < 0 {
			res.Unique = false
		}
	}
	return res, nil
}

// byzRoundBudget returns a generous round ceiling: the loop runs at most
// ~4·(f+1)·log N iterations (Lemma 3.10), each dominated by two phase-king
// executions over the committee.
func byzRoundBudget(cfg core.ByzConfig, byzCount int) int {
	n := len(cfg.IDs)
	perIter := consensus.ValidatorRounds + 2*consensus.RoundsFor(n) + consensus.ExchangeRounds + 2
	iters := 4*(byzCount+1)*(logCeil(cfg.N)+1) + 8
	if cfg.SplitAlways {
		// The ablation touches every bit: 2N−1 tree vertices.
		iters = 2*cfg.N + 8
	}
	return 3 + 2*perIter*iters
}

func logCeil(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
