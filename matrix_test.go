package renaming

import (
	"fmt"
	"testing"
)

// TestCrashMatrix sweeps the crash algorithm across network sizes,
// identity patterns, committee scales, and adversary kinds, asserting the
// strong renaming guarantee in every cell.
func TestCrashMatrix(t *testing.T) {
	sizes := []int{5, 17, 48, 100}
	patterns := []IDPattern{IDsEven, IDsRandom, IDsClustered}
	faults := []FaultSpec{
		{Kind: FaultNone},
		{Kind: FaultRandom, Budget: 10, Prob: 0.1, MidSend: true},
		{Kind: FaultCommitteeKiller, Budget: 20, MidSend: true},
		{Kind: FaultBurst, Round: 4, Nodes: []int{0, 1, 2}},
	}
	for _, n := range sizes {
		for _, pattern := range patterns {
			for fi, fault := range faults {
				name := fmt.Sprintf("n=%d/pattern=%d/fault=%d", n, pattern, fi)
				t.Run(name, func(t *testing.T) {
					ids, err := GenerateIDs(n, 20*n, pattern, int64(n))
					if err != nil {
						t.Fatal(err)
					}
					res, err := RunCrash(n, CrashSpec{
						N: 20 * n, IDs: ids, Seed: int64(n + fi),
						CommitteeScale: 0.1, Fault: fault,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !res.Unique {
						t.Fatalf("renaming failed: %+v", res)
					}
				})
			}
		}
	}
}

// TestByzantineMatrix sweeps the Byzantine algorithm across behaviours,
// identity patterns, and election modes.
func TestByzantineMatrix(t *testing.T) {
	behaviors := []Behavior{BehaviorSilent, BehaviorSplitWorld, BehaviorEquivocate,
		BehaviorSpam, BehaviorMinoritySplit, BehaviorRushingEquivocate}
	patterns := []IDPattern{IDsEven, IDsRandom}
	for _, sortition := range []bool{false, true} {
		for _, behavior := range behaviors {
			for _, pattern := range patterns {
				name := fmt.Sprintf("sortition=%v/behavior=%d/pattern=%d", sortition, behavior, pattern)
				t.Run(name, func(t *testing.T) {
					const n = 21
					ids, err := GenerateIDs(n, 8*n, pattern, 5)
					if err != nil {
						t.Fatal(err)
					}
					ran := false
					for seed := int64(0); seed < 6 && !ran; seed++ {
						res, err := RunByzantine(n, ByzSpec{
							N: 8 * n, IDs: ids, Seed: seed, Sortition: sortition,
							Byzantine: map[int]Behavior{2: behavior, 11: behavior},
						})
						if err != nil {
							t.Fatal(err)
						}
						if !res.AssumptionHolds {
							continue
						}
						ran = true
						if !res.Unique || !res.OrderPreserving {
							t.Fatalf("renaming failed: unique=%v order=%v", res.Unique, res.OrderPreserving)
						}
					}
					if !ran {
						t.Skip("no seed satisfied the committee assumption")
					}
				})
			}
		}
	}
}

// TestCollectSortNotCrashTolerant documents the baseline's limitation:
// under mid-send crashes the collect-and-sort floor can hand out
// colliding identities — the harness reports it instead of erroring.
func TestCollectSortNotCrashTolerant(t *testing.T) {
	sawFailure := false
	for seed := int64(0); seed < 30 && !sawFailure; seed++ {
		res, err := RunBaseline(24, BaselineSpec{
			Kind: BaselineCollectSort, Seed: seed,
			Fault: FaultSpec{Kind: FaultRandom, Budget: 10, Prob: 0.5, MidSend: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Unique {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Log("collect-sort survived every crash schedule tried (mid-send splits are seed-dependent)")
	}
}
