package renaming_test

import (
	"os"
	"runtime"
	"testing"

	"renaming"
	"renaming/internal/service"
)

// TestCrashMemorySmoke is the CI peak-RSS smoke gate: a whole-run crash
// execution at n=2^16 under the committee-killer adversary must stay
// under a fixed live-heap ceiling. The ceiling is calibrated ~2× above
// the measured peak of the slab-inbox engine (see docs/MEMORY.md for
// the scaling model), so it trips on a regression that reintroduces
// per-node O(n) state — per-node inbox slot arrays, materialized
// per-round traces — without flaking on allocator noise. CI runs the
// job under GOMEMLIMIT as a second, harder backstop: blowing the limit
// turns into GC thrash and a timeout instead of a green run.
//
// Gated behind RENAMING_MEMSMOKE=1 because the run takes tens of
// seconds — it is a dedicated CI job, not part of `go test ./...`.
func TestCrashMemorySmoke(t *testing.T) {
	if os.Getenv("RENAMING_MEMSMOKE") != "1" {
		t.Skip("set RENAMING_MEMSMOKE=1 to run the memory smoke gate")
	}
	const n = 1 << 16
	const ceilingMB = 4096.0 // measured peak ≈ 2.1 GB on the slab engine

	runtime.GC()
	w := watchHeap()
	res, err := renaming.RunCrash(n, renaming.CrashSpec{
		Seed:           1,
		CommitteeScale: 0.02,
		Profile:        true,
		Fault: renaming.FaultSpec{
			Kind: renaming.FaultCommitteeKiller, Budget: 64, MidSend: true,
		},
	})
	peak := w.PeakMB()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Fatal("run did not produce unique names")
	}
	t.Logf("n=%d whole run: peak live heap %.1f MB, %d rounds, %d messages",
		n, peak, res.Rounds, res.Messages)
	if peak > ceilingMB {
		t.Fatalf("peak live heap %.1f MB exceeds the %.0f MB ceiling — "+
			"per-node state is scaling again (see docs/MEMORY.md)", peak, ceilingMB)
	}
}

// TestChurnMemorySmoke is the per-epoch allocation gate for the
// long-lived service: at Capacity=2^20 with a fixed 128-client batch,
// steady-state epochs must allocate O(batch), not O(Capacity). The
// snapshot-rollback design copied the 4 MB owner table plus the 4 MB
// free-list ring every epoch (≥8 MB/epoch); the undo journal and lazy
// live view bring an epoch down to the one-shot run's own footprint.
// The 2 MB/epoch ceiling sits far above the measured steady state but
// well under one snapshot, so it trips on any reintroduced full-state
// copy. Shares the RENAMING_MEMSMOKE=1 gate and CI job with the crash
// smoke above.
func TestChurnMemorySmoke(t *testing.T) {
	if os.Getenv("RENAMING_MEMSMOKE") != "1" {
		t.Skip("set RENAMING_MEMSMOKE=1 to run the memory smoke gate")
	}
	const (
		capacity        = 1 << 20
		batch           = 128
		warmup          = 4
		measured        = 32
		ceilingPerEpoch = 2 << 20 // bytes
	)
	spec := service.TraceSpec{
		Capacity: capacity, BigN: 1 << 22, Seed: 7,
		JoinMax: batch, LeaveMax: batch,
	}
	driver, err := service.NewTraceDriver(spec)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{Capacity: capacity, BigN: 1 << 22, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	epoch := func() {
		joins, leaves, err := driver.NextEpoch(svc.LiveClients())
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.RunEpoch(joins, leaves)
		if err != nil {
			t.Fatal(err)
		}
		if res.Aborted {
			t.Fatalf("epoch %d aborted: %s", res.Epoch, res.AbortReason)
		}
	}
	for i := 0; i < warmup; i++ {
		epoch()
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < measured; i++ {
		epoch()
	}
	runtime.ReadMemStats(&after)
	perEpoch := (after.TotalAlloc - before.TotalAlloc) / measured
	t.Logf("capacity=%d batch=%d: %.1f KB allocated per epoch over %d epochs",
		capacity, batch, float64(perEpoch)/1024, measured)
	if perEpoch > ceilingPerEpoch {
		t.Fatalf("per-epoch allocation %.1f KB exceeds the %.0f KB ceiling — "+
			"epoch cost is scaling with Capacity again (snapshot rollback "+
			"alone would be ≥8 MB/epoch at this capacity)",
			float64(perEpoch)/1024, float64(ceilingPerEpoch)/1024)
	}
}
