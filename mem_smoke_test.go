package renaming_test

import (
	"os"
	"runtime"
	"testing"

	"renaming"
)

// TestCrashMemorySmoke is the CI peak-RSS smoke gate: a whole-run crash
// execution at n=2^16 under the committee-killer adversary must stay
// under a fixed live-heap ceiling. The ceiling is calibrated ~2× above
// the measured peak of the slab-inbox engine (see docs/MEMORY.md for
// the scaling model), so it trips on a regression that reintroduces
// per-node O(n) state — per-node inbox slot arrays, materialized
// per-round traces — without flaking on allocator noise. CI runs the
// job under GOMEMLIMIT as a second, harder backstop: blowing the limit
// turns into GC thrash and a timeout instead of a green run.
//
// Gated behind RENAMING_MEMSMOKE=1 because the run takes tens of
// seconds — it is a dedicated CI job, not part of `go test ./...`.
func TestCrashMemorySmoke(t *testing.T) {
	if os.Getenv("RENAMING_MEMSMOKE") != "1" {
		t.Skip("set RENAMING_MEMSMOKE=1 to run the memory smoke gate")
	}
	const n = 1 << 16
	const ceilingMB = 4096.0 // measured peak ≈ 2.1 GB on the slab engine

	runtime.GC()
	w := watchHeap()
	res, err := renaming.RunCrash(n, renaming.CrashSpec{
		Seed:           1,
		CommitteeScale: 0.02,
		Profile:        true,
		Fault: renaming.FaultSpec{
			Kind: renaming.FaultCommitteeKiller, Budget: 64, MidSend: true,
		},
	})
	peak := w.PeakMB()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Fatal("run did not produce unique names")
	}
	t.Logf("n=%d whole run: peak live heap %.1f MB, %d rounds, %d messages",
		n, peak, res.Rounds, res.Messages)
	if peak > ceilingMB {
		t.Fatalf("peak live heap %.1f MB exceeds the %.0f MB ceiling — "+
			"per-node state is scaling again (see docs/MEMORY.md)", peak, ceilingMB)
	}
}
