package adversary

import (
	"testing"

	"renaming/internal/sim"
)

// filterChoices materializes a mid-send filter's per-recipient verdicts
// so two filters can be compared for byte-identical behaviour.
func filterChoices(t *testing.T, f sim.SendFilter, n int) []bool {
	t.Helper()
	if f == nil {
		t.Fatal("expected a mid-send filter, got nil")
	}
	out := make([]bool, n)
	for to := 0; to < n; to++ {
		out[to] = f(to)
	}
	return out
}

// orderFor runs one round of the schedule and returns the single crash
// order it issued for the given round.
func orderFor(t *testing.T, sched *EventSchedule, view sim.View) sim.CrashOrder {
	t.Helper()
	orders := sched.Crashes(view)
	if len(orders) != 1 {
		t.Fatalf("round %d issued %d orders, want 1", view.Round, len(orders))
	}
	return orders[0]
}

// TestMidSendFilterStableUnderEventRemoval is the regression test for
// the per-event filter identity bug: a later event's delivery filter
// must be byte-identical after an earlier event is removed — exactly
// the operation ddmin shrinking performs. Pre-Salt, filters were keyed
// by slice index, so removing event 0 silently reshuffled event 1's
// coin flips.
func TestMidSendFilterStableUnderEventRemoval(t *testing.T) {
	const n = 64
	salted := Event{Round: 1, Node: 2, MidSend: true, Salt: 0xfeedface}
	full := &EventSchedule{Seed: 11, Events: []Event{{Round: 0, Node: 1}, salted}}
	dropped := &EventSchedule{Seed: 11, Events: []Event{salted}}

	view := viewFor(n, 1, nil)
	want := filterChoices(t, orderFor(t, full, view).Filter, n)
	got := filterChoices(t, orderFor(t, dropped, view).Filter, n)
	for to := range want {
		if want[to] != got[to] {
			t.Fatalf("recipient %d: filter verdict changed from %v to %v after removing an earlier event",
				to, want[to], got[to])
		}
	}
}

// TestMidSendFilterLegacyIndexFallback: events without a Salt (legacy
// pre-Salt artifacts) must keep the historical index-keyed stream, so
// old reproducers replay bit-identically.
func TestMidSendFilterLegacyIndexFallback(t *testing.T) {
	const n, seed = 32, int64(7)
	sched := &EventSchedule{Seed: seed, Events: []Event{
		{Round: 0, Node: 1, MidSend: true},
		{Round: 1, Node: 2, MidSend: true},
	}}
	got := filterChoices(t, orderFor(t, sched, viewFor(n, 1, nil)).Filter, n)
	// The legacy stream for slice index 1, reproduced from first
	// principles.
	want := filterChoices(t, randomHalfFilter(sim.NewRand(seed, scheduleLabel^uint64(1)<<8)), n)
	for to := range want {
		if want[to] != got[to] {
			t.Fatalf("recipient %d: legacy filter diverged from the index-keyed stream", to)
		}
	}
}

// TestEventScheduleTargetedClaimsPerRound: committee-targeted events of
// the same round resolve to distinct members (lowest alive index first,
// earlier events claiming before later ones), and the claimed set
// resets between rounds.
func TestEventScheduleTargetedClaimsPerRound(t *testing.T) {
	committee := map[int]bool{3: true, 5: true, 8: true}
	sched := &EventSchedule{Seed: 1, Events: []Event{
		{Round: 0, Node: 3},               // explicit crash claims 3 first
		{Round: 0, TargetCommittee: true}, // must skip claimed 3 → 5
		{Round: 0, TargetCommittee: true}, // → 8
		{Round: 1, TargetCommittee: true}, // fresh round, fresh claims
	}}
	orders := sched.Crashes(viewFor(12, 0, committee))
	if len(orders) != 3 {
		t.Fatalf("round 0 issued %d orders, want 3: %+v", len(orders), orders)
	}
	if orders[0].Node != 3 || orders[1].Node != 5 || orders[2].Node != 8 {
		t.Fatalf("round 0 targets = %d,%d,%d, want 3,5,8",
			orders[0].Node, orders[1].Node, orders[2].Node)
	}
	// Round 1: members 3/5/8 are now dead; only 9 is committee-visible.
	view := viewFor(12, 1, map[int]bool{9: true})
	for _, dead := range []int{3, 5, 8} {
		view.Alive[dead] = false
	}
	orders = sched.Crashes(view)
	if len(orders) != 1 || orders[0].Node != 9 {
		t.Fatalf("round 1 orders = %+v, want one crash of node 9", orders)
	}
	if sched.Used() != 4 {
		t.Fatalf("Used() = %d, want 4", sched.Used())
	}
}

// TestEventScheduleDeadTargetNotUsed: events whose explicit target is
// already dead are skipped and cost no budget — the paper's f counts
// crashes actually inflicted.
func TestEventScheduleDeadTargetNotUsed(t *testing.T) {
	sched := &EventSchedule{Seed: 1, Events: []Event{{Round: 0, Node: 4}}}
	view := viewFor(8, 0, nil)
	view.Alive[4] = false
	if orders := sched.Crashes(view); len(orders) != 0 {
		t.Fatalf("dead target produced orders: %+v", orders)
	}
	if sched.Used() != 0 {
		t.Fatalf("Used() = %d after a skipped event, want 0", sched.Used())
	}
}

// TestEventScheduleNoCommitteeVisibleSkip: a committee-targeted event
// is skipped (not spent) when no committee member is visible — whether
// the committee is empty or the harness installed no Peek hook at all.
func TestEventScheduleNoCommitteeVisibleSkip(t *testing.T) {
	sched := &EventSchedule{Seed: 1, Events: []Event{{Round: 0, TargetCommittee: true}}}
	if orders := sched.Crashes(viewFor(8, 0, nil)); len(orders) != 0 {
		t.Fatalf("empty committee produced orders: %+v", orders)
	}
	noPeek := &EventSchedule{Seed: 1, Events: []Event{{Round: 0, TargetCommittee: true}}}
	view := viewFor(8, 0, map[int]bool{2: true})
	view.Peek = nil
	if orders := noPeek.Crashes(view); len(orders) != 0 {
		t.Fatalf("nil Peek produced orders: %+v", orders)
	}
	if sched.Used() != 0 || noPeek.Used() != 0 {
		t.Fatalf("Used() = %d/%d after skipped events, want 0/0", sched.Used(), noPeek.Used())
	}
}
