package adversary

import (
	"renaming/internal/sim"
)

// scheduleLabel is the DeriveSeed stream label for per-event mid-send
// filters ("schd").
const scheduleLabel uint64 = 0x73636864

// Event is one planned crash in a replayable schedule. Unlike the
// adaptive strategies above, an event list is plain data: it can be
// serialized into a campaign artifact, shrunk to a minimal reproducer,
// and replayed bit-identically on any worker count.
type Event struct {
	// Round is the 0-based round the crash lands in.
	Round int `json:"round"`
	// Node is the link to crash. Ignored when TargetCommittee is set.
	Node int `json:"node"`
	// TargetCommittee redirects the event at execution time to the
	// lowest-indexed alive committee member (via the Peek hook) that no
	// earlier event of the same round already claimed — the schedulable
	// form of the committee-killer's adaptivity. The event is skipped
	// when no committee member is visible that round.
	TargetCommittee bool `json:"targetCommittee,omitempty"`
	// MidSend crashes the node mid-send: each of its round-r messages is
	// delivered independently with probability 1/2, drawn from the
	// schedule seed and the event's position (never from shared state),
	// so dropping other events does not reshuffle this event's filter.
	MidSend bool `json:"midSend,omitempty"`
}

// EventSchedule executes a concrete crash schedule. It implements
// sim.CrashAdversary; an instance is good for one execution.
type EventSchedule struct {
	// Events is the schedule; events may appear in any order.
	Events []Event
	// Seed drives the mid-send delivery filters.
	Seed int64

	used int
}

var _ sim.CrashAdversary = (*EventSchedule)(nil)

// Crashes implements sim.CrashAdversary: it issues the orders whose
// events land in the current round, resolving committee targets against
// the live view. Events aimed at already-dead nodes are skipped and do
// not count as spent crashes.
func (a *EventSchedule) Crashes(view sim.View) []sim.CrashOrder {
	var orders []sim.CrashOrder
	claimed := make(map[int]bool)
	for idx, ev := range a.Events {
		if ev.Round != view.Round {
			continue
		}
		node := ev.Node
		if ev.TargetCommittee {
			node = -1
			if view.Peek != nil {
				for cand, alive := range view.Alive {
					if !alive || claimed[cand] {
						continue
					}
					info, ok := view.Peek(cand).(CommitteeInfo)
					if ok && info.IsCommitteeMember() {
						node = cand
						break
					}
				}
			}
			if node < 0 {
				continue
			}
		}
		if node < 0 || node >= len(view.Alive) || !view.Alive[node] || claimed[node] {
			continue
		}
		claimed[node] = true
		a.used++
		order := sim.CrashOrder{Node: node}
		if ev.MidSend {
			order.Filter = randomHalfFilter(sim.NewRand(a.Seed, scheduleLabel^uint64(idx)<<8))
		}
		orders = append(orders, order)
	}
	return orders
}

// Used returns the number of crashes actually issued (the paper's f):
// events that found their target dead, or found no committee member,
// cost nothing.
func (a *EventSchedule) Used() int { return a.used }
