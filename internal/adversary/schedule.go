package adversary

import (
	"renaming/internal/sim"
)

// scheduleLabel is the legacy DeriveSeed stream label for per-event
// mid-send filters ("schd"), keyed by slice index. It survives only as
// the fallback for pre-Salt artifacts; salted events use saltLabel.
const scheduleLabel uint64 = 0x73636864

// saltLabel is the DeriveSeed stream label for salted mid-send filters
// ("salt"): mixed with the event's own Salt, never with its position,
// so the filter is a stable property of the event itself.
const saltLabel uint64 = 0x73616c74

// Event is one planned crash in a replayable schedule. Unlike the
// adaptive strategies above, an event list is plain data: it can be
// serialized into a campaign artifact, shrunk to a minimal reproducer,
// and replayed bit-identically on any worker count.
type Event struct {
	// Round is the 0-based round the crash lands in.
	Round int `json:"round"`
	// Node is the link to crash. Ignored when TargetCommittee is set.
	Node int `json:"node"`
	// TargetCommittee redirects the event at execution time to the
	// lowest-indexed alive committee member (via the Peek hook) that no
	// earlier event of the same round already claimed — the schedulable
	// form of the committee-killer's adaptivity. The event is skipped
	// when no committee member is visible that round.
	TargetCommittee bool `json:"targetCommittee,omitempty"`
	// MidSend crashes the node mid-send: each of its round-r messages is
	// delivered independently with probability 1/2, drawn from the
	// schedule seed and the event's Salt (never from shared state or the
	// event's position), so dropping, reordering, or mutating other
	// events does not reshuffle this event's filter — the property ddmin
	// shrinking and search-guided mutation both rely on.
	MidSend bool `json:"midSend,omitempty"`
	// Salt is the event's stable filter identity, assigned once at
	// generation time and carried through every later mutation or
	// shrink. Zero marks a legacy (pre-Salt) event, whose filter falls
	// back to the old slice-index seeding so historical artifacts
	// replay bit-identically.
	Salt uint64 `json:"salt,omitempty"`
}

// EventSchedule executes a concrete crash schedule. It implements
// sim.CrashAdversary; an instance is good for one execution.
type EventSchedule struct {
	// Events is the schedule; events may appear in any order.
	Events []Event
	// Seed drives the mid-send delivery filters.
	Seed int64

	used int
}

var _ sim.CrashAdversary = (*EventSchedule)(nil)

// Crashes implements sim.CrashAdversary: it issues the orders whose
// events land in the current round, resolving committee targets against
// the live view. Events aimed at already-dead nodes are skipped and do
// not count as spent crashes.
func (a *EventSchedule) Crashes(view sim.View) []sim.CrashOrder {
	var orders []sim.CrashOrder
	claimed := make(map[int]bool)
	for idx, ev := range a.Events {
		if ev.Round != view.Round {
			continue
		}
		node := ev.Node
		if ev.TargetCommittee {
			node = -1
			if view.Peek != nil {
				for cand, alive := range view.Alive {
					if !alive || claimed[cand] {
						continue
					}
					info, ok := view.Peek(cand).(CommitteeInfo)
					if ok && info.IsCommitteeMember() {
						node = cand
						break
					}
				}
			}
			if node < 0 {
				continue
			}
		}
		if node < 0 || node >= len(view.Alive) || !view.Alive[node] || claimed[node] {
			continue
		}
		claimed[node] = true
		a.used++
		order := sim.CrashOrder{Node: node}
		if ev.MidSend {
			label := saltLabel ^ ev.Salt
			if ev.Salt == 0 {
				// Legacy pre-Salt event: reproduce the historical
				// index-keyed stream so old artifacts replay unchanged.
				label = scheduleLabel ^ uint64(idx)<<8
			}
			order.Filter = randomHalfFilter(sim.NewRand(a.Seed, label))
		}
		orders = append(orders, order)
	}
	return orders
}

// Used returns the number of crashes actually issued (the paper's f):
// events that found their target dead, or found no committee member,
// cost nothing.
func (a *EventSchedule) Used() int { return a.used }
