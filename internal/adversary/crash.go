// Package adversary implements the paper's failure models: the adaptive
// crash adversary "Eve" of Section 2 (strategies that observe execution
// state each round and may crash nodes even mid-send) and helpers for the
// static Byzantine adversary "Carlo" of Section 3 (choosing the corrupted
// set before activation; Byzantine node *behaviour* lives next to the
// protocol it attacks, in internal/core).
package adversary

import (
	"math/rand"

	"renaming/internal/sim"
)

// CommitteeInfo is the adaptive adversary's window into protocol state.
// Protocol nodes expose it through the network's Peek hook; any node
// state type that implements it can be targeted by the committee killer.
type CommitteeInfo interface {
	// IsCommitteeMember reports whether the node currently has
	// elected = true.
	IsCommitteeMember() bool
}

// RandomCrashes crashes up to Budget alive nodes, each alive node failing
// independently with probability Prob per round. With MidSendProb > 0 a
// crash happens mid-send, delivering each outgoing message independently
// with probability 1/2, exercising the paper's partial-send semantics.
type RandomCrashes struct {
	Budget      int
	Prob        float64
	MidSendProb float64
	Rand        *rand.Rand

	used int
}

var _ sim.CrashAdversary = (*RandomCrashes)(nil)

// Crashes implements sim.CrashAdversary.
func (a *RandomCrashes) Crashes(view sim.View) []sim.CrashOrder {
	var orders []sim.CrashOrder
	for node, alive := range view.Alive {
		if !alive || a.used >= a.Budget {
			continue
		}
		if a.Rand.Float64() >= a.Prob {
			continue
		}
		a.used++
		order := sim.CrashOrder{Node: node}
		if a.Rand.Float64() < a.MidSendProb {
			order.Filter = randomHalfFilter(a.Rand)
		}
		orders = append(orders, order)
	}
	return orders
}

// Used returns the number of crashes issued so far (the paper's f).
func (a *RandomCrashes) Used() int { return a.used }

// BurstCrash crashes the listed nodes at the given round, all before
// sending. It models a correlated failure (rack loss, partition death).
type BurstCrash struct {
	Round int
	Nodes []int
}

var _ sim.CrashAdversary = (*BurstCrash)(nil)

// Crashes implements sim.CrashAdversary.
func (a *BurstCrash) Crashes(view sim.View) []sim.CrashOrder {
	if view.Round != a.Round {
		return nil
	}
	orders := make([]sim.CrashOrder, 0, len(a.Nodes))
	for _, node := range a.Nodes {
		orders = append(orders, sim.CrashOrder{Node: node})
	}
	return orders
}

// CommitteeKiller is the paper's worst-case adaptive strategy: every
// Interval rounds it inspects node state through the Peek hook and
// crashes every current committee member, up to its budget. This forces
// the protocol through its committee re-election path and makes the
// message complexity scale with f. With MidSend set, half of a victim's
// final messages still leak out, maximizing response inconsistency.
type CommitteeKiller struct {
	Budget   int
	Interval int // kill every Interval-th round; 0 means every round
	MidSend  bool
	Rand     *rand.Rand

	used int
}

var _ sim.CrashAdversary = (*CommitteeKiller)(nil)

// Crashes implements sim.CrashAdversary.
func (a *CommitteeKiller) Crashes(view sim.View) []sim.CrashOrder {
	if view.Peek == nil {
		return nil
	}
	if a.Interval > 1 && view.Round%a.Interval != a.Interval-1 {
		return nil
	}
	var orders []sim.CrashOrder
	for node, alive := range view.Alive {
		if !alive || a.used >= a.Budget {
			continue
		}
		info, ok := view.Peek(node).(CommitteeInfo)
		if !ok || !info.IsCommitteeMember() {
			continue
		}
		a.used++
		order := sim.CrashOrder{Node: node}
		if a.MidSend && a.Rand != nil {
			order.Filter = randomHalfFilter(a.Rand)
		}
		orders = append(orders, order)
	}
	return orders
}

// Used returns the number of crashes issued so far (the paper's f).
func (a *CommitteeKiller) Used() int { return a.used }

// Scheduled crashes exactly per an explicit (round → orders) table,
// giving tests full control over failure timing.
type Scheduled struct {
	Orders map[int][]sim.CrashOrder
}

var _ sim.CrashAdversary = (*Scheduled)(nil)

// Crashes implements sim.CrashAdversary.
func (a *Scheduled) Crashes(view sim.View) []sim.CrashOrder {
	return a.Orders[view.Round]
}

// randomHalfFilter returns a SendFilter delivering each message with
// probability 1/2, decided once per recipient for determinism.
func randomHalfFilter(rng *rand.Rand) sim.SendFilter {
	decided := make(map[int]bool)
	choice := make(map[int]bool)
	return func(to int) bool {
		if !decided[to] {
			decided[to] = true
			choice[to] = rng.Intn(2) == 0
		}
		return choice[to]
	}
}
