package adversary

import (
	"math/rand"
	"testing"

	"renaming/internal/sim"
)

type fakeInfo struct{ committee bool }

func (f fakeInfo) IsCommitteeMember() bool { return f.committee }

func viewFor(n, round int, committee map[int]bool) sim.View {
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	return sim.View{
		Round: round,
		Alive: alive,
		Peek:  func(node int) any { return fakeInfo{committee: committee[node]} },
	}
}

func TestRandomCrashesBudget(t *testing.T) {
	adv := &RandomCrashes{Budget: 5, Prob: 1, Rand: rand.New(rand.NewSource(1))}
	total := 0
	for round := 0; round < 10; round++ {
		total += len(adv.Crashes(viewFor(20, round, nil)))
	}
	if total != 5 || adv.Used() != 5 {
		t.Fatalf("crashed %d (used %d), want budget 5", total, adv.Used())
	}
}

func TestRandomCrashesMidSendFilters(t *testing.T) {
	adv := &RandomCrashes{Budget: 50, Prob: 1, MidSendProb: 1, Rand: rand.New(rand.NewSource(2))}
	orders := adv.Crashes(viewFor(50, 0, nil))
	withFilter := 0
	for _, o := range orders {
		if o.Filter != nil {
			withFilter++
			// A filter must be deterministic per recipient.
			if o.Filter(3) != o.Filter(3) {
				t.Fatal("filter not deterministic")
			}
		}
	}
	if withFilter != len(orders) {
		t.Fatalf("only %d/%d orders have filters with MidSendProb=1", withFilter, len(orders))
	}
}

func TestBurstCrash(t *testing.T) {
	adv := &BurstCrash{Round: 3, Nodes: []int{1, 2, 5}}
	if got := adv.Crashes(viewFor(10, 2, nil)); got != nil {
		t.Fatalf("fired early: %v", got)
	}
	got := adv.Crashes(viewFor(10, 3, nil))
	if len(got) != 3 || got[0].Node != 1 || got[2].Node != 5 {
		t.Fatalf("burst = %v", got)
	}
}

func TestCommitteeKillerTargetsCommittee(t *testing.T) {
	committee := map[int]bool{2: true, 7: true, 9: true}
	adv := &CommitteeKiller{Budget: 2, Rand: rand.New(rand.NewSource(3))}
	orders := adv.Crashes(viewFor(12, 0, committee))
	if len(orders) != 2 {
		t.Fatalf("killed %d, want budget 2", len(orders))
	}
	for _, o := range orders {
		if !committee[o.Node] {
			t.Fatalf("killed non-member %d", o.Node)
		}
	}
	if adv.Used() != 2 {
		t.Fatalf("used = %d", adv.Used())
	}
	// Budget exhausted: nothing more.
	if got := adv.Crashes(viewFor(12, 1, committee)); len(got) != 0 {
		t.Fatalf("killed past the budget: %v", got)
	}
}

func TestCommitteeKillerInterval(t *testing.T) {
	committee := map[int]bool{0: true, 1: true, 2: true, 3: true}
	adv := &CommitteeKiller{Budget: 100, Interval: 3, Rand: rand.New(rand.NewSource(4))}
	if got := adv.Crashes(viewFor(4, 0, committee)); len(got) != 0 {
		t.Fatal("fired off-cadence")
	}
	if got := adv.Crashes(viewFor(4, 2, committee)); len(got) != 4 {
		t.Fatalf("killed %d at the cadence round", len(got))
	}
}

func TestCommitteeKillerNeedsPeek(t *testing.T) {
	adv := &CommitteeKiller{Budget: 10, Rand: rand.New(rand.NewSource(5))}
	view := viewFor(5, 0, map[int]bool{0: true})
	view.Peek = nil
	if got := adv.Crashes(view); got != nil {
		t.Fatal("killed without visibility")
	}
}

func TestScheduled(t *testing.T) {
	adv := &Scheduled{Orders: map[int][]sim.CrashOrder{2: {{Node: 4}}}}
	if got := adv.Crashes(viewFor(8, 1, nil)); got != nil {
		t.Fatal("fired early")
	}
	if got := adv.Crashes(viewFor(8, 2, nil)); len(got) != 1 || got[0].Node != 4 {
		t.Fatalf("got %v", got)
	}
}
