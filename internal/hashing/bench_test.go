package hashing

import (
	"math/rand"
	"testing"
)

func BenchmarkSum(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, words := range []int{1, 16, 256} {
		input := make([]uint64, words)
		for i := range input {
			input[i] = rng.Uint64()
		}
		h := NewHasher(rng.Uint64())
		b.Run(sizeName(words), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(words * 8))
			for i := 0; i < b.N; i++ {
				_ = h.Sum(input)
			}
		})
	}
}

func sizeName(words int) string {
	switch words {
	case 1:
		return "1word"
	case 16:
		return "16words"
	default:
		return "256words"
	}
}

func BenchmarkMulMod(b *testing.B) {
	b.ReportAllocs()
	x := uint64(0x123456789abcdef)
	for i := 0; i < b.N; i++ {
		x = mulMod(x, 0x2545F4914F6CDD1D&mersenne61)
	}
	sink = x
}

var sink uint64
