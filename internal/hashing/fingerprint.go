// Package hashing implements the shared-randomness hash family of Fact
// 3.2: fingerprints whose pairwise collision probability is polynomially
// small and that can be constructed from O(log U) shared random bits. We
// use polynomial (Rabin-style) fingerprints over the Mersenne prime field
// GF(2^61 − 1): a segment w_0, w_1, …, w_k of 64-bit words (each split
// into two field elements) is mapped to Σ w_i·x^i mod p for a random
// evaluation point x derived from the shared seed. Two distinct segments
// of m words collide with probability at most 2m/p < 2m/2^60.
package hashing

// mersenne61 is the Mersenne prime 2^61 − 1.
const mersenne61 = (1 << 61) - 1

// Fingerprint is an O(log N)-bit digest of a bit-vector segment.
type Fingerprint uint64

// Hasher evaluates the polynomial fingerprint at a fixed random point.
// Distinct Hashers (distinct seeds) are independent members of the family;
// the Byzantine algorithm draws a fresh one per divide-and-conquer
// iteration from the shared-randomness beacon.
type Hasher struct {
	point uint64 // evaluation point in [1, p-1]
}

// NewHasher constructs a Hasher from 64 shared random bits. The seed is
// folded into a nonzero field element.
func NewHasher(seed uint64) Hasher {
	point := mod61(seed)
	if point == 0 {
		point = 1
	}
	return Hasher{point: point}
}

// Sum fingerprints a word slice. Equal slices always produce equal
// fingerprints; unequal slices of m words collide with probability
// ≤ 2(m+1)/2^61 over the Hasher's random point.
func (h Hasher) Sum(words []uint64) Fingerprint {
	// Horner evaluation over the split halves of each word so every
	// coefficient fits the field.
	acc := uint64(1) // length-prefix-like constant guards against trailing-zero ambiguity
	for _, w := range words {
		lo := w & ((1 << 32) - 1)
		hi := w >> 32
		acc = addMod(mulMod(acc, h.point), lo)
		acc = addMod(mulMod(acc, h.point), hi)
	}
	// Bind the length explicitly: segments of different word counts with
	// matching prefixes must not collide deterministically.
	acc = addMod(mulMod(acc, h.point), uint64(len(words)))
	return Fingerprint(acc)
}

// Bits returns the size of a fingerprint in bits (61-bit field element).
func (Fingerprint) Bits() int { return 61 }

func mod61(x uint64) uint64 {
	x = (x & mersenne61) + (x >> 61)
	if x >= mersenne61 {
		x -= mersenne61
	}
	return x
}

func addMod(a, b uint64) uint64 {
	s := a + b
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// mulMod multiplies two field elements using 128-bit arithmetic emulated
// with 64-bit halves, then reduces modulo 2^61 − 1.
func mulMod(a, b uint64) uint64 {
	aHi, aLo := a>>32, a&((1<<32)-1)
	bHi, bLo := b>>32, b&((1<<32)-1)

	// a*b = aHi*bHi*2^64 + (aHi*bLo + aLo*bHi)*2^32 + aLo*bLo
	hh := aHi * bHi
	hl := aHi * bLo
	lh := aLo * bHi
	ll := aLo * bLo

	// mid = hl + lh may overflow into a 65th bit; track the carry.
	mid := hl + lh
	var midCarry uint64
	if mid < hl {
		midCarry = 1
	}

	// Assemble the 128-bit product into (hi, lo).
	lo := ll + (mid << 32)
	var loCarry uint64
	if lo < ll {
		loCarry = 1
	}
	hi := hh + (mid >> 32) + (midCarry << 32) + loCarry

	// Reduce modulo 2^61 − 1: x mod p = (x & p) + (x >> 61) folded.
	// 128-bit value = hi*2^64 + lo; 2^64 ≡ 2^3 (mod p).
	part := mod61(lo) + mod61(hi*8)
	return mod61(part)
}
