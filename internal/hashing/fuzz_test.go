package hashing

import (
	"encoding/binary"
	"testing"
)

// FuzzFlipSensitivity checks, on arbitrary inputs, that flipping one bit
// always changes the fingerprint and that hashing is deterministic.
func FuzzFlipSensitivity(f *testing.F) {
	f.Add(uint64(1), []byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(3))
	f.Add(uint64(0xdead), []byte{}, uint16(0))
	f.Add(^uint64(0), make([]byte, 64), uint16(511))
	f.Fuzz(func(t *testing.T, seed uint64, data []byte, idxRaw uint16) {
		words := bytesToWords(data)
		if len(words) == 0 {
			words = []uint64{0}
		}
		if len(words) > 16 {
			words = words[:16]
		}
		h := NewHasher(seed)
		base := h.Sum(words)
		if h.Sum(words) != base {
			t.Fatal("not deterministic")
		}
		idx := int(idxRaw) % (len(words) * 64)
		flipped := append([]uint64(nil), words...)
		flipped[idx/64] ^= 1 << uint(idx%64)
		if h.Sum(flipped) == base {
			t.Fatalf("bit flip at %d not detected (seed %d)", idx, seed)
		}
	})
}

func bytesToWords(data []byte) []uint64 {
	words := make([]uint64, 0, (len(data)+7)/8)
	for len(data) >= 8 {
		words = append(words, binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
	}
	if len(data) > 0 {
		var buf [8]byte
		copy(buf[:], data)
		words = append(words, binary.LittleEndian.Uint64(buf[:]))
	}
	return words
}
