package hashing

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	h := NewHasher(12345)
	words := []uint64{1, 2, 3, ^uint64(0)}
	if h.Sum(words) != h.Sum(words) {
		t.Fatal("hash not deterministic")
	}
	h2 := NewHasher(12345)
	if h.Sum(words) != h2.Sum(words) {
		t.Fatal("equal seeds disagree")
	}
}

func TestLengthBinding(t *testing.T) {
	h := NewHasher(7)
	a := []uint64{5, 0}
	b := []uint64{5}
	if h.Sum(a) == h.Sum(b) {
		t.Fatal("trailing zero word collides with shorter input")
	}
	if h.Sum(nil) == h.Sum([]uint64{0}) {
		t.Fatal("empty vs single-zero collide")
	}
}

func TestSeedsDiffer(t *testing.T) {
	words := []uint64{0xdeadbeef, 42}
	same := 0
	for seed := uint64(1); seed <= 50; seed++ {
		if NewHasher(seed).Sum(words) == NewHasher(seed+1).Sum(words) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/50 adjacent seeds collide — seeds not independent", same)
	}
}

func TestCollisionRate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	h := NewHasher(rng.Uint64())
	seen := make(map[Fingerprint][]uint64)
	const trials = 20000
	for i := 0; i < trials; i++ {
		words := make([]uint64, 1+rng.Intn(4))
		for j := range words {
			words[j] = rng.Uint64()
		}
		fp := h.Sum(words)
		if prev, ok := seen[fp]; ok && !equalWords(prev, words) {
			t.Fatalf("collision between %v and %v", prev, words)
		}
		seen[fp] = append([]uint64(nil), words...)
	}
}

func equalWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuickSingleBitFlip: flipping any single bit changes the
// fingerprint — the exact property the identity-list consensus relies on
// (a committee member missing one announcement must be detected).
func TestQuickSingleBitFlip(t *testing.T) {
	prop := func(seed uint64, raw []uint64, idxRaw uint16) bool {
		if len(raw) == 0 {
			raw = []uint64{0}
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		h := NewHasher(seed)
		idx := int(idxRaw) % (len(raw) * 64)
		flipped := append([]uint64(nil), raw...)
		flipped[idx/64] ^= 1 << uint(idx%64)
		return h.Sum(raw) != h.Sum(flipped)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMulModAgainstBigInt cross-checks the 128-bit modular
// multiplication against math/big.
func TestQuickMulModAgainstBigInt(t *testing.T) {
	p := new(big.Int).SetUint64(mersenne61)
	prop := func(aRaw, bRaw uint64) bool {
		a, b := mod61(aRaw), mod61(bRaw)
		got := mulMod(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return got == want.Uint64()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestModAddHelpers(t *testing.T) {
	if mod61(mersenne61) != 0 {
		t.Fatal("mod61(p) != 0")
	}
	if mod61(mersenne61+5) != 5 {
		t.Fatal("mod61 wrap wrong")
	}
	if addMod(mersenne61-1, 1) != 0 {
		t.Fatal("addMod wrap wrong")
	}
	if got := (Fingerprint(0)).Bits(); got != 61 {
		t.Fatalf("Bits = %d", got)
	}
}
