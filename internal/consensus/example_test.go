package consensus_test

import (
	"fmt"

	"renaming/internal/consensus"
)

// ExamplePhaseKing drives three committee members to agreement by
// stepping their machines in synchronous lockstep.
func ExamplePhaseKing() {
	members := []int{0, 1, 2}
	machines := make(map[int]*consensus.PhaseKing, len(members))
	inputs := map[int]bool{0: true, 1: true, 2: false}
	for _, self := range members {
		machines[self] = consensus.NewPhaseKing(self, members, inputs[self])
	}

	pending := make(map[int][]consensus.Msg)
	for {
		done := true
		next := make(map[int][]consensus.Msg)
		for self, m := range machines {
			if m.Done() {
				continue
			}
			done = false
			for _, out := range m.Step(pending[self]) {
				next[out.To] = append(next[out.To], out)
			}
		}
		if done {
			break
		}
		pending = next
	}

	a, _ := machines[0].Output()
	b, _ := machines[1].Output()
	c, _ := machines[2].Output()
	fmt.Println("agreement:", a == b && b == c)
	// Output:
	// agreement: true
}

// ExampleValidator shows the weak validator's unanimity guarantee.
func ExampleValidator() {
	members := []int{0, 1}
	in := consensus.Value{Hi: 7, Lo: 3}
	va0 := consensus.NewValidator(0, members, in)
	va1 := consensus.NewValidator(1, members, in)

	pending := make(map[int][]consensus.Msg)
	for !va0.Done() || !va1.Done() {
		next := make(map[int][]consensus.Msg)
		for self, va := range map[int]*consensus.Validator{0: va0, 1: va1} {
			for _, out := range va.Step(pending[self]) {
				next[out.To] = append(next[out.To], out)
			}
		}
		pending = next
	}

	same, out, _ := va0.Output()
	fmt.Println("same:", same, "value:", out == in)
	// Output:
	// same: true value: true
}
