package consensus

// Exchange is the trivial one-shot broadcast-and-collect machine used for
// the diff report of Section 3.1: every member broadcasts one value to
// the committee and collects everybody else's. It takes two synchronous
// rounds (send, then receive).
type Exchange struct {
	self    int
	members []int
	val     Value

	round int
	votes map[int]Value
	done  bool
}

var _ Machine = (*Exchange)(nil)

// NewExchange creates an exchange instance for the member at link index
// self broadcasting val to the given committee view.
func NewExchange(self int, members []int, val Value) *Exchange {
	return &Exchange{self: self, members: sortedMembers(members), val: val}
}

// ExchangeRounds is the number of synchronous rounds an Exchange needs.
const ExchangeRounds = 2

// Done reports whether the collection finished.
func (ex *Exchange) Done() bool { return ex.done }

// Votes returns the collected values per member link, valid once Done.
// At most one value per committee member is kept; non-members are
// ignored.
func (ex *Exchange) Votes() map[int]Value {
	if !ex.done {
		return nil
	}
	return ex.votes
}

// Step implements Machine.
func (ex *Exchange) Step(in []Msg) []Msg {
	if ex.done {
		return nil
	}
	if ex.round == 0 {
		ex.round = 1
		out := make([]Msg, 0, len(ex.members))
		for _, to := range ex.members {
			out = append(out, Msg{From: ex.self, To: to, Val: ex.val})
		}
		return out
	}
	ex.votes = collectInto(nil, in, ex.members)
	ex.done = true
	return nil
}
