package consensus

import (
	"math/rand"
	"testing"
)

// driver runs a set of machines (correct members) plus a Byzantine
// injector in synchronous lockstep: messages produced in round r are
// delivered in round r+1.
type driver struct {
	machines map[int]Machine
	inject   func(round int) []Msg
	pending  map[int][]Msg
}

func newDriver(machines map[int]Machine, inject func(round int) []Msg) *driver {
	if inject == nil {
		inject = func(int) []Msg { return nil }
	}
	return &driver{machines: machines, inject: inject, pending: make(map[int][]Msg)}
}

// run steps all machines until every one reports Done, or the round
// budget runs out (returns false).
func (d *driver) run(maxRounds int) bool {
	for round := 0; round < maxRounds; round++ {
		allDone := true
		for _, m := range d.machines {
			if !m.Done() {
				allDone = false
			}
		}
		if allDone {
			return true
		}
		next := make(map[int][]Msg)
		for self, m := range d.machines {
			if m.Done() {
				continue
			}
			for _, out := range m.Step(d.pending[self]) {
				next[out.To] = append(next[out.To], out)
			}
		}
		for _, msg := range d.inject(round) {
			next[msg.To] = append(next[msg.To], msg)
		}
		d.pending = next
	}
	for _, m := range d.machines {
		if !m.Done() {
			return false
		}
	}
	return true
}

// buildCommittee returns member links [0, m) with the last byz of them
// treated as Byzantine (no machine; messages injected separately).
func buildCommittee(m, byz int) (members []int, correct []int, byzantine []int) {
	for i := 0; i < m; i++ {
		members = append(members, i)
	}
	correct = members[:m-byz]
	byzantine = members[m-byz:]
	return members, correct, byzantine
}

func TestPhaseKingUnanimity(t *testing.T) {
	for _, m := range []int{1, 2, 4, 7, 10} {
		for _, input := range []bool{false, true} {
			members, correct, _ := buildCommittee(m, 0)
			machines := make(map[int]Machine, len(correct))
			pks := make(map[int]*PhaseKing, len(correct))
			for _, self := range correct {
				pk := NewPhaseKing(self, members, input)
				machines[self] = pk
				pks[self] = pk
			}
			if !newDriver(machines, nil).run(1000) {
				t.Fatalf("m=%d: did not terminate", m)
			}
			for self, pk := range pks {
				out, ok := pk.Output()
				if !ok || out != input {
					t.Fatalf("m=%d member %d: output %v, want %v", m, self, out, input)
				}
			}
		}
	}
}

// byzInjector sends equivocating random bits from every Byzantine member
// to every committee member each round, plus a lying king tiebreak.
func byzInjector(byzantine, members []int, rng *rand.Rand) func(int) []Msg {
	return func(round int) []Msg {
		var out []Msg
		for _, from := range byzantine {
			for _, to := range members {
				out = append(out, Msg{From: from, To: to, Val: Bit(rng.Intn(2) == 0)})
			}
		}
		return out
	}
}

func TestPhaseKingAgreementUnderByzantine(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := 7 + rng.Intn(12)
		byz := rng.Intn(m/3 + 1)
		if 3*byz >= m {
			byz = (m - 1) / 3
		}
		members, correct, byzantine := buildCommittee(m, byz)
		machines := make(map[int]Machine)
		pks := make(map[int]*PhaseKing)
		unanimous := true
		first := rng.Intn(2) == 0
		for i, self := range correct {
			input := rng.Intn(2) == 0
			if i == 0 {
				input = first
			} else if input != first {
				unanimous = false
			}
			pk := NewPhaseKing(self, members, input)
			machines[self] = pk
			pks[self] = pk
		}
		if !newDriver(machines, byzInjector(byzantine, members, rng)).run(5000) {
			t.Fatalf("seed=%d: did not terminate", seed)
		}
		var ref bool
		for i, self := range correct {
			out, ok := pks[self].Output()
			if !ok {
				t.Fatalf("seed=%d: member %d no output", seed, self)
			}
			if i == 0 {
				ref = out
				continue
			}
			if out != ref {
				t.Fatalf("seed=%d (m=%d byz=%d): agreement violated", seed, m, byz)
			}
		}
		if unanimous && ref != first {
			t.Fatalf("seed=%d: validity violated (unanimous %v → %v)", seed, first, ref)
		}
	}
}

func TestValidatorUnanimity(t *testing.T) {
	members, correct, byzantine := buildCommittee(10, 3)
	in := Value{Hi: 42, Lo: 7}
	machines := make(map[int]Machine)
	vas := make(map[int]*Validator)
	for _, self := range correct {
		va := NewValidator(self, members, in)
		machines[self] = va
		vas[self] = va
	}
	rng := rand.New(rand.NewSource(1))
	if !newDriver(machines, byzInjector(byzantine, members, rng)).run(10) {
		t.Fatal("did not terminate")
	}
	for self, va := range vas {
		same, out, ok := va.Output()
		if !ok || !same || out != in {
			t.Fatalf("member %d: got same=%v out=%v, want same=true out=%v", self, same, out, in)
		}
	}
}

// TestValidatorWeakAgreement: whenever any correct member outputs same=1
// for value v, every correct member outputs v.
func TestValidatorWeakAgreement(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := 7 + rng.Intn(10)
		byz := rng.Intn((m-1)/3 + 1)
		members, correct, byzantine := buildCommittee(m, byz)
		machines := make(map[int]Machine)
		vas := make(map[int]*Validator)
		inputs := make(map[int]Value)
		// Two camps of inputs with random sizes.
		a, b := Value{Hi: 1}, Value{Hi: 2}
		for _, self := range correct {
			in := a
			if rng.Intn(2) == 0 {
				in = b
			}
			inputs[self] = in
			va := NewValidator(self, members, in)
			machines[self] = va
			vas[self] = va
		}
		if !newDriver(machines, byzInjector(byzantine, members, rng)).run(10) {
			t.Fatalf("seed=%d: did not terminate", seed)
		}
		var graded []Value
		for _, va := range vas {
			if same, out, _ := va.Output(); same {
				graded = append(graded, out)
			}
		}
		if len(graded) == 0 {
			continue
		}
		want := graded[0]
		for self, va := range vas {
			_, out, _ := va.Output()
			if out != want {
				t.Fatalf("seed=%d: weak agreement violated: member %d out=%v want=%v", seed, self, out, want)
			}
		}
		// Strong validity: the graded value must be some correct input.
		seen := false
		for _, in := range inputs {
			if in == want {
				seen = true
			}
		}
		if !seen {
			t.Fatalf("seed=%d: graded value %v is no correct input", seed, want)
		}
	}
}

func TestExchangeCollectsOncePerSender(t *testing.T) {
	members, correct, byzantine := buildCommittee(6, 2)
	machines := make(map[int]Machine)
	exs := make(map[int]*Exchange)
	for _, self := range correct {
		ex := NewExchange(self, members, Value{Lo: uint64(self)})
		machines[self] = ex
		exs[self] = ex
	}
	inject := func(round int) []Msg {
		var out []Msg
		for _, from := range byzantine {
			for _, to := range members {
				// Duplicate spam: only the first per sender may count.
				out = append(out, Msg{From: from, To: to, Val: Value{Lo: 100}})
				out = append(out, Msg{From: from, To: to, Val: Value{Lo: 200}})
			}
		}
		// Non-member spam must be ignored entirely.
		out = append(out, Msg{From: 99, To: 0, Val: Value{Lo: 999}})
		return out
	}
	if !newDriver(machines, inject).run(5) {
		t.Fatal("did not terminate")
	}
	for self, ex := range exs {
		votes := ex.Votes()
		for _, other := range correct {
			v, ok := votes[other]
			if !ok || v.Lo != uint64(other) {
				t.Fatalf("member %d: missing/wrong vote from %d: %+v", self, other, votes)
			}
		}
		if _, ok := votes[99]; ok {
			t.Fatalf("member %d accepted non-member vote", self)
		}
		for _, from := range byzantine {
			if v, ok := votes[from]; ok && v.Lo != 100 {
				t.Fatalf("member %d kept non-first duplicate from %d", self, from)
			}
		}
	}
}

func TestValueOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		less bool
	}{
		{Value{0, 1}, Value{0, 2}, true},
		{Value{1, 0}, Value{0, 9}, false},
		{Value{1, 1}, Value{1, 1}, false},
		{Value{0, 0}, Value{1, 0}, true},
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.less {
			t.Errorf("Less(%v,%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if !Bit(true).AsBit() || Bit(false).AsBit() {
		t.Error("Bit round-trip broken")
	}
}

func TestByzThreshold(t *testing.T) {
	// t = ceil(m/3) − 1: the largest count strictly below m/3.
	for m := 1; m < 100; m++ {
		tt := byzThreshold(m)
		if 3*tt >= m {
			t.Fatalf("m=%d: threshold %d not < m/3", m, tt)
		}
		if 3*(tt+1) < m {
			t.Fatalf("m=%d: threshold %d not maximal", m, tt)
		}
	}
}

func TestRoundsForMatchesMachine(t *testing.T) {
	for _, m := range []int{1, 2, 3, 8, 21} {
		members, _, _ := buildCommittee(m, 0)
		pk := NewPhaseKing(0, members, true)
		if got, want := pk.Rounds(), RoundsFor(m); got != want {
			t.Fatalf("m=%d: Rounds()=%d, RoundsFor=%d", m, got, want)
		}
		steps := 0
		var in []Msg
		for !pk.Done() {
			pk.Step(in)
			steps++
			if steps > 10000 {
				t.Fatal("runaway")
			}
		}
		if steps != pk.Rounds() {
			t.Fatalf("m=%d: took %d steps, Rounds()=%d", m, steps, pk.Rounds())
		}
	}
}

// TestPhaseKingUnderRushingSplit pits phase king against a *rushing*
// Byzantine member: each round it observes every honest message first,
// then sends the minority value to one half of the committee and the
// majority to the other — the strongest single-member vote split. With
// fewer than one third Byzantine, agreement and validity must survive.
func TestPhaseKingUnderRushingSplit(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := 7 + rng.Intn(9)
		byz := (m - 1) / 3
		members, correct, byzantine := buildCommittee(m, byz)
		machines := make(map[int]Machine)
		pks := make(map[int]*PhaseKing)
		unanimous := true
		first := rng.Intn(2) == 0
		for i, self := range correct {
			input := rng.Intn(2) == 0
			if i == 0 {
				input = first
			} else if input != first {
				unanimous = false
			}
			pk := NewPhaseKing(self, members, input)
			machines[self] = pk
			pks[self] = pk
		}

		pending := make(map[int][]Msg)
		for round := 0; round < 5000; round++ {
			allDone := true
			next := make(map[int][]Msg)
			var thisRound []Msg
			for self, mch := range machines {
				if mch.Done() {
					continue
				}
				allDone = false
				for _, out := range mch.Step(pending[self]) {
					next[out.To] = append(next[out.To], out)
					thisRound = append(thisRound, out)
				}
			}
			if allDone {
				break
			}
			// The rushing members observe thisRound before voting.
			c0, c1 := 0, 0
			for _, msg := range thisRound {
				if msg.Val.AsBit() {
					c1++
				} else {
					c0++
				}
			}
			minority := Bit(c1 < c0)
			majority := Bit(c1 >= c0)
			for _, from := range byzantine {
				for idx, to := range members {
					val := majority
					if idx < len(members)/2 {
						val = minority
					}
					next[to] = append(next[to], Msg{From: from, To: to, Val: val})
				}
			}
			pending = next
		}

		var ref bool
		for i, self := range correct {
			out, ok := pks[self].Output()
			if !ok {
				t.Fatalf("seed=%d: member %d undecided", seed, self)
			}
			if i == 0 {
				ref = out
			} else if out != ref {
				t.Fatalf("seed=%d (m=%d byz=%d): rushing split broke agreement", seed, m, byz)
			}
		}
		if unanimous && ref != first {
			t.Fatalf("seed=%d: rushing split broke validity", seed)
		}
	}
}

// TestValidatorNoQuorumKeepsOwnInput: with correct inputs split evenly
// and no echoes reaching a strong quorum, every member falls back to its
// own input with same=0.
func TestValidatorNoQuorumKeepsOwnInput(t *testing.T) {
	members, correct, _ := buildCommittee(4, 0)
	machines := make(map[int]Machine)
	vas := make(map[int]*Validator)
	inputs := map[int]Value{0: {Hi: 1}, 1: {Hi: 1}, 2: {Hi: 2}, 3: {Hi: 2}}
	for _, self := range correct {
		va := NewValidator(self, members, inputs[self])
		machines[self] = va
		vas[self] = va
	}
	if !newDriver(machines, nil).run(10) {
		t.Fatal("did not terminate")
	}
	for self, va := range vas {
		same, out, _ := va.Output()
		if same {
			t.Fatalf("member %d graded same=1 on a 2-2 split", self)
		}
		if out != inputs[self] {
			t.Fatalf("member %d output %v, want own input %v", self, out, inputs[self])
		}
	}
}
