package consensus

import "sort"

// sortedMembers returns members in ascending order. When the input is
// already sorted — the common case: committees are built sorted and the
// same backing slice is shared across all n machines — it is returned
// as-is with no copy. Callers must treat the result as immutable.
func sortedMembers(members []int) []int {
	if sort.IntsAreSorted(members) {
		return members
	}
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	return sorted
}

// memberOf reports whether link occurs in the sorted members slice.
func memberOf(sorted []int, link int) bool {
	i := sort.SearchInts(sorted, link)
	return i < len(sorted) && sorted[i] == link
}

// voteSet collects at most one vote per committee member without a map:
// a vote lands at the sender's position in the sorted member list, and an
// epoch stamp marks which entries belong to the current collection, so
// clearing between phases is O(1) and the steady state allocates nothing.
type voteSet struct {
	members []int // sorted committee view (shared, not owned)
	vals    []Value
	stamp   []int
	epoch   int
}

func (vs *voteSet) init(members []int) {
	vs.members = members
	vs.vals = make([]Value, len(members))
	vs.stamp = make([]int, len(members))
}

// collect starts a fresh tally from the round's inbox, keeping the first
// message per member and ignoring senders outside the view (a Byzantine
// non-member cannot vote) — the same filter collectInto applies.
func (vs *voteSet) collect(in []Msg) {
	vs.epoch++
	for _, m := range in {
		i := sort.SearchInts(vs.members, m.From)
		if i == len(vs.members) || vs.members[i] != m.From {
			continue
		}
		if vs.stamp[i] == vs.epoch {
			continue // first message per sender counts
		}
		vs.stamp[i] = vs.epoch
		vs.vals[i] = m.Val
	}
}

// countBits tallies the binary votes (after AsBit normalization).
func (vs *voteSet) countBits() (zeros, ones int) {
	for i := range vs.members {
		if vs.stamp[i] != vs.epoch {
			continue
		}
		if vs.vals[i].AsBit() {
			ones++
		} else {
			zeros++
		}
	}
	return zeros, ones
}

// countVotes returns the most frequent vote (ties broken by Less), its
// multiplicity, and the total number of votes — the same verdict
// countVotes computes for a map, via O(m²) pairwise comparison instead
// of a hash map, which wins for committee-sized m.
func (vs *voteSet) countVotes() (best Value, bestCount, total int) {
	first := true
	for i := range vs.members {
		if vs.stamp[i] != vs.epoch {
			continue
		}
		total++
		v := vs.vals[i]
		dup := false
		for j := 0; j < i; j++ {
			if vs.stamp[j] == vs.epoch && vs.vals[j] == v {
				dup = true // already counted at its first occurrence
				break
			}
		}
		if dup {
			continue
		}
		c := 1
		for j := i + 1; j < len(vs.members); j++ {
			if vs.stamp[j] == vs.epoch && vs.vals[j] == v {
				c++
			}
		}
		if first || c > bestCount || (c == bestCount && Less(v, best)) {
			best, bestCount = v, c
			first = false
		}
	}
	return best, bestCount, total
}
