package consensus

import (
	"testing"
)

// countingDriver is a driver that also counts protocol messages, used to
// verify the message-complexity claims of Lemmas 3.3 and 3.4.
type countingDriver struct {
	*driver
	messages int
}

func newCountingDriver(machines map[int]Machine) *countingDriver {
	return &countingDriver{driver: newDriver(machines, nil)}
}

func (d *countingDriver) run(maxRounds int) bool {
	for round := 0; round < maxRounds; round++ {
		allDone := true
		for _, m := range d.machines {
			if !m.Done() {
				allDone = false
			}
		}
		if allDone {
			return true
		}
		next := make(map[int][]Msg)
		for self, m := range d.machines {
			if m.Done() {
				continue
			}
			for _, out := range m.Step(d.pending[self]) {
				d.messages++
				next[out.To] = append(next[out.To], out)
			}
		}
		d.pending = next
	}
	for _, m := range d.machines {
		if !m.Done() {
			return false
		}
	}
	return true
}

// TestPhaseKingMessageComplexity: Lemma 3.4 allows O(ĉg³) messages; the
// implementation sends exactly (1 vote broadcast per member per phase)
// plus one king tiebreak per phase: phases·(m² + m) ≤ m³.
func TestPhaseKingMessageComplexity(t *testing.T) {
	for _, m := range []int{4, 9, 16, 25} {
		members, correct, _ := buildCommittee(m, 0)
		machines := make(map[int]Machine, m)
		for _, self := range correct {
			machines[self] = NewPhaseKing(self, members, self%2 == 0)
		}
		d := newCountingDriver(machines)
		if !d.run(10 * m) {
			t.Fatalf("m=%d: did not terminate", m)
		}
		phases := m/2 + 1
		want := phases * (m*m + m)
		if d.messages != want {
			t.Fatalf("m=%d: %d messages, want exactly %d", m, d.messages, want)
		}
		if d.messages > m*m*m+2*m*m {
			t.Fatalf("m=%d: %d messages exceed the O(m³) envelope", m, d.messages)
		}
	}
}

// TestValidatorMessageComplexity: Lemma 3.3 allows O(ĉg²) messages; the
// implementation sends at most two broadcasts per member: ≤ 2m².
func TestValidatorMessageComplexity(t *testing.T) {
	for _, m := range []int{4, 10, 20} {
		members, correct, _ := buildCommittee(m, 0)
		machines := make(map[int]Machine, m)
		for _, self := range correct {
			machines[self] = NewValidator(self, members, Value{Hi: 9})
		}
		d := newCountingDriver(machines)
		if !d.run(ValidatorRounds + 1) {
			t.Fatalf("m=%d: did not terminate", m)
		}
		if d.messages > 2*m*m {
			t.Fatalf("m=%d: %d messages exceed 2m²", m, d.messages)
		}
		if d.messages != 2*m*m {
			t.Fatalf("m=%d: %d messages, want 2m² (all echo on unanimity)", m, d.messages)
		}
	}
}

// TestDSMessageComplexity: with an honest sender, every member except the
// sender (which already accepted its own value) relays exactly once, so
// one instance costs m + (m−1)·m messages regardless of t — the n
// parallel instances of the baseline give its Θ(n³) total.
func TestDSMessageComplexity(t *testing.T) {
	m, tb := 8, 2
	_, machines := dsSetup(m, tb, 0, 42, allLinks(m))
	count := 0
	pending := make(map[int][]DSMsg)
	for round := 0; round < tb+3; round++ {
		next := make(map[int][]DSMsg)
		for self, ds := range machines {
			if ds.Done() {
				continue
			}
			for _, r := range ds.Step(pending[self]) {
				for _, to := range ds.participants {
					count++
					next[to] = append(next[to], DSMsg{
						Instance: 0, From: self, To: to,
						Value: r.Value, Chain: r.Chain,
					})
				}
			}
		}
		pending = next
	}
	want := m + (m-1)*m
	if count != want {
		t.Fatalf("%d messages, want %d", count, want)
	}
}
