package consensus

// PhaseKing is the binary consensus of Lemma 3.4, implemented as the
// classical phase-king protocol over the committee. Each phase takes two
// rounds:
//
//	round A: every member broadcasts its current bit to the committee;
//	round B: the phase's king broadcasts its majority bit as a tiebreak.
//
// A member keeps its own majority when it saw a strong quorum of at least
// m − t matching votes, and otherwise adopts the king's bit. With fewer
// than one third Byzantine members per view, one phase with a correct
// king forces agreement, and validity (unanimous correct inputs survive)
// holds in every phase. Running ⌊m/2⌋ + 1 phases guarantees a correct
// king because Byzantine members are fewer than half the committee
// (|B| < c_g/2 ≤ |G|/2, Lemma 3.5).
type PhaseKing struct {
	self    int
	members []int
	kings   []int
	cur     Value

	phase int
	sub   int     // 0 = about to send votes, 1 = vote inbox + king send, 2 = king inbox
	votes voteSet // collection scratch, cleared and reused per phase
	out   []Msg   // broadcast scratch, valid until the next Step
	done  bool
}

var _ Machine = (*PhaseKing)(nil)

// NewPhaseKing creates a consensus instance for the member at link index
// self with the given binary input. members is the (shared) committee
// view as link indices; the king schedule is the sorted member list, so
// all correct members agree on it.
func NewPhaseKing(self int, members []int, input bool) *PhaseKing {
	sorted := sortedMembers(members)
	phases := len(sorted)/2 + 1
	kings := make([]int, 0, phases)
	for i := 0; i < phases; i++ {
		kings = append(kings, sorted[i%len(sorted)])
	}
	pk := &PhaseKing{
		self:    self,
		members: sorted,
		kings:   kings,
		cur:     Bit(input),
	}
	pk.votes.init(sorted)
	return pk
}

// Reset rewinds the machine to round zero with a new input, reusing the
// member view, king schedule, and all collection scratch. Equivalent to
// NewPhaseKing(self, members, input) for the same committee: stale votes
// carry an old epoch stamp, so they are invisible to the fresh tally.
// Drivers running several consensus instances in sequence over one
// committee use it to avoid re-allocating the machine each time.
func (pk *PhaseKing) Reset(input bool) {
	pk.cur = Bit(input)
	pk.phase = 0
	pk.sub = 0
	pk.done = false
}

// Rounds returns the total number of synchronous rounds the protocol
// needs: two per king phase plus the final decision step.
func (pk *PhaseKing) Rounds() int { return 2*len(pk.kings) + 1 }

// RoundsFor returns the rounds a PhaseKing over m members needs, without
// constructing one. Drivers use it to keep silent nodes in lockstep.
func RoundsFor(m int) int { return 2*(m/2+1) + 1 }

// Done reports whether the protocol has decided.
func (pk *PhaseKing) Done() bool { return pk.done }

// Output returns the decided bit once Done.
func (pk *PhaseKing) Output() (bool, bool) {
	if !pk.done {
		return false, false
	}
	return pk.cur.AsBit(), true
}

// Step advances the protocol by one synchronous round.
func (pk *PhaseKing) Step(in []Msg) []Msg {
	if pk.done {
		return nil
	}
	switch pk.sub {
	case 0:
		// Send round-A votes.
		pk.sub = 1
		return pk.broadcast(pk.cur)
	case 1:
		// Round-A inbox arrives; tally and, if king, send the tiebreak.
		pk.votes.collect(in)
		pk.sub = 2
		if pk.kings[pk.phase] == pk.self {
			maj, _, _ := pk.majority()
			return pk.broadcast(maj)
		}
		return nil
	default:
		// Round-B inbox arrives; apply the king rule and, unless this
		// was the last phase, immediately send the next phase's votes
		// so phases pipeline at two rounds each.
		maj, cnt, _ := pk.majority()
		m := len(pk.members)
		if cnt >= m-byzThreshold(m) {
			pk.cur = maj
		} else {
			pk.cur = pk.kingValue(in)
		}
		pk.phase++
		if pk.phase == len(pk.kings) {
			pk.done = true
			return nil
		}
		pk.sub = 1
		return pk.broadcast(pk.cur)
	}
}

func (pk *PhaseKing) majority() (Value, int, int) {
	c0, c1 := pk.votes.countBits()
	if c1 > c0 {
		return Bit(true), c1, c0 + c1
	}
	return Bit(false), c0, c0 + c1
}

func (pk *PhaseKing) kingValue(in []Msg) Value {
	king := pk.kings[pk.phase]
	for _, m := range in {
		if m.From == king {
			return normalizeBit(m.Val)
		}
	}
	// Silent or crashed-equivalent king: deterministic default.
	return Bit(false)
}

func (pk *PhaseKing) broadcast(v Value) []Msg {
	out := pk.out[:0]
	for _, to := range pk.members {
		out = append(out, Msg{From: pk.self, To: to, Val: v})
	}
	pk.out = out
	return out
}

// collectInto keeps at most one vote per committee member, ignoring
// messages from outside the view (a Byzantine non-member cannot vote).
// votes is cleared and reused (allocated when nil), so a long-lived
// machine tallies every phase into one scratch map instead of a fresh
// allocation; membership is a binary search on the sorted member list.
func collectInto(votes map[int]Value, in []Msg, members []int) map[int]Value {
	if votes == nil {
		votes = make(map[int]Value, len(members))
	} else {
		clear(votes)
	}
	for _, m := range in {
		if !memberOf(members, m.From) {
			continue
		}
		if _, dup := votes[m.From]; dup {
			continue // first message per sender counts
		}
		votes[m.From] = m.Val
	}
	return votes
}

// normalizeBit maps any value a Byzantine king may send onto {0,1} so the
// decision stays within the binary domain (validity requires outputs to
// be some correct input only when correct inputs are unanimous; the
// binary domain keeps outputs well-formed regardless).
func normalizeBit(v Value) Value { return Bit(v.AsBit()) }
