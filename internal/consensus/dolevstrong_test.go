package consensus

import (
	"testing"

	"renaming/internal/auth"
)

// dsDriver steps DSBroadcast machines in lockstep with an injector for
// Byzantine traffic.
type dsDriver struct {
	machines map[int]*DSBroadcast
	inject   func(round int) []DSMsg
	pending  map[int][]DSMsg
}

func newDSDriver(machines map[int]*DSBroadcast, inject func(int) []DSMsg) *dsDriver {
	if inject == nil {
		inject = func(int) []DSMsg { return nil }
	}
	return &dsDriver{machines: machines, inject: inject, pending: make(map[int][]DSMsg)}
}

func (d *dsDriver) run(maxRounds int) bool {
	for round := 0; round < maxRounds; round++ {
		allDone := true
		next := make(map[int][]DSMsg)
		for self, m := range d.machines {
			if m.Done() {
				continue
			}
			allDone = false
			for _, r := range m.Step(d.pending[self]) {
				// Fan each relay out to every participant, as the
				// harness's shared broadcast does.
				for _, to := range m.participants {
					next[to] = append(next[to], DSMsg{
						Instance: m.instance, From: self, To: to,
						Value: r.Value, Chain: r.Chain,
					})
				}
			}
		}
		if allDone {
			return true
		}
		for _, msg := range d.inject(round) {
			next[msg.To] = append(next[msg.To], msg)
		}
		d.pending = next
	}
	for _, m := range d.machines {
		if !m.Done() {
			return false
		}
	}
	return true
}

func dsSetup(n, t, sender int, input uint64, correct []int) (*auth.Authority, map[int]*DSBroadcast) {
	authority := auth.NewAuthority(11, n)
	participants := make([]int, n)
	for i := range participants {
		participants[i] = i
	}
	machines := make(map[int]*DSBroadcast, len(correct))
	for _, self := range correct {
		machines[self] = NewDSBroadcast(0, self, participants, sender, t,
			authority, authority.Signer(self), input)
	}
	return authority, machines
}

func allLinks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestDSHonestSenderDelivers(t *testing.T) {
	n, tb := 7, 2
	_, machines := dsSetup(n, tb, 3, 99, allLinks(n))
	if !newDSDriver(machines, nil).run(tb + 3) {
		t.Fatal("did not terminate")
	}
	for self, m := range machines {
		v, ok := m.Output()
		if !ok || v != 99 {
			t.Fatalf("member %d: output %d,%v", self, v, ok)
		}
	}
}

func TestDSSilentSenderYieldsBottom(t *testing.T) {
	n, tb := 6, 1
	correct := []int{0, 1, 2, 4, 5} // sender 3 is Byzantine-silent
	_, machines := dsSetup(n, tb, 3, 0, correct)
	if !newDSDriver(machines, nil).run(tb + 3) {
		t.Fatal("did not terminate")
	}
	for self, m := range machines {
		if _, ok := m.Output(); ok {
			t.Fatalf("member %d extracted a value from a silent sender", self)
		}
	}
}

// TestDSEquivocatingSenderAgreement: a Byzantine sender signing two
// values to disjoint halves must leave every correct member with the
// same output (⊥, since both values spread through relays).
func TestDSEquivocatingSenderAgreement(t *testing.T) {
	n, tb, sender := 9, 2, 4
	correct := []int{0, 1, 2, 3, 5, 6, 7, 8}
	authority, machines := dsSetup(n, tb, sender, 0, correct)
	signer := authority.Signer(sender)
	inject := func(round int) []DSMsg {
		if round != 0 {
			return nil
		}
		var out []DSMsg
		for to := 0; to < n; to++ {
			value := uint64(100)
			if to >= n/2 {
				value = 200
			}
			digest := auth.Digest(0, value)
			out = append(out, DSMsg{Instance: 0, From: sender, To: to, Value: value,
				Chain: []Endorsement{{Node: sender, Sig: signer.Sign(digest)}}})
		}
		return out
	}
	if !newDSDriver(machines, inject).run(tb + 3) {
		t.Fatal("did not terminate")
	}
	for self, m := range machines {
		if _, ok := m.Output(); ok {
			t.Fatalf("member %d output a value despite equivocation", self)
		}
	}
}

// TestDSForgedChainsRejected: chains with a forged signature, a wrong
// sender head, duplicate signers, or the wrong length never get accepted.
func TestDSForgedChainsRejected(t *testing.T) {
	n, tb, sender := 5, 1, 0
	correct := []int{1, 2, 3, 4}
	authority, machines := dsSetup(n, tb, sender, 0, correct)
	byzSigner := authority.Signer(0) // the Byzantine sender's own key
	inject := func(round int) []DSMsg {
		if round != 0 {
			return nil
		}
		digest := auth.Digest(0, uint64(77))
		good := Endorsement{Node: sender, Sig: byzSigner.Sign(digest)}
		var out []DSMsg
		for to := 1; to < n; to++ {
			// Forged signature bits.
			out = append(out, DSMsg{Instance: 0, From: sender, To: to, Value: 77,
				Chain: []Endorsement{{Node: sender, Sig: good.Sig ^ 1}}})
			// Wrong head: claims node 1 is the sender.
			out = append(out, DSMsg{Instance: 0, From: sender, To: to, Value: 77,
				Chain: []Endorsement{{Node: 1, Sig: byzSigner.Sign(digest)}}})
			// Wrong chain length for round 1.
			out = append(out, DSMsg{Instance: 0, From: sender, To: to, Value: 77,
				Chain: []Endorsement{good, good}})
		}
		return out
	}
	if !newDSDriver(machines, inject).run(tb + 3) {
		t.Fatal("did not terminate")
	}
	for self, m := range machines {
		if _, ok := m.Output(); ok {
			t.Fatalf("member %d accepted a forged broadcast", self)
		}
	}
}

func TestDSRounds(t *testing.T) {
	_, machines := dsSetup(4, 1, 0, 5, allLinks(4))
	ds := machines[0]
	if ds.Rounds() != 3 {
		t.Fatalf("Rounds = %d", ds.Rounds())
	}
}

func TestDSMsgBits(t *testing.T) {
	m := DSMsg{Chain: make([]Endorsement, 3)}
	if got := m.Bits(20, 6); got != 20+3*(6+auth.SignatureBits) {
		t.Fatalf("Bits = %d", got)
	}
}
