package consensus

import (
	"sort"
	"testing"
)

func TestSortedMembersAlreadySortedIsZeroCopy(t *testing.T) {
	members := []int{1, 4, 9, 12}
	got := sortedMembers(members)
	if &got[0] != &members[0] {
		t.Fatal("sorted input should be returned without copying")
	}
}

func TestSortedMembersSortsCopy(t *testing.T) {
	members := []int{9, 1, 12, 4}
	got := sortedMembers(members)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("not sorted: %v", got)
	}
	if members[0] != 9 {
		t.Fatal("input mutated")
	}
	if len(got) == len(members) && &got[0] == &members[0] {
		t.Fatal("unsorted input must be copied")
	}
}

func TestMemberOf(t *testing.T) {
	members := []int{2, 5, 7}
	for _, link := range members {
		if !memberOf(members, link) {
			t.Fatalf("memberOf(%d) = false", link)
		}
	}
	for _, link := range []int{-1, 0, 3, 6, 8, 100} {
		if memberOf(members, link) {
			t.Fatalf("memberOf(%d) = true", link)
		}
	}
	if memberOf(nil, 0) {
		t.Fatal("memberOf on empty slice")
	}
}
