package consensus

import (
	"sort"

	"renaming/internal/auth"
)

// Dolev–Strong authenticated broadcast: the classical tool the paper's
// related work builds renaming on ("early results rely on consensus and
// reliable broadcast, with round complexity growing linearly in the
// maximum number of faults"). With transferable signatures it achieves
// broadcast (agreement on the sender's value, or on ⊥ for an equivocating
// sender) against any number of Byzantine nodes in t+1 rounds, where t is
// the assumed fault bound.
//
// A value circulates with a signature chain: the sender's signature
// first, then one per relayer. A member accepts a value seen in round r
// only when its chain carries r valid signatures from distinct nodes
// starting with the sender; on first acceptance it appends its own
// signature and relays. After t+1 rounds a member outputs the unique
// accepted value, or ⊥ when it accepted zero or several.

// Endorsement is one link in a signature chain.
type Endorsement struct {
	Node int
	Sig  auth.Signature
}

// DSMsg is one Dolev–Strong relay message: a value and its chain. The
// Instance field routes messages when many broadcasts run in parallel
// (one per sender, as in the consensus-based renaming baseline).
type DSMsg struct {
	Instance int
	From     int
	To       int
	Value    uint64
	Chain    []Endorsement
}

// Bits returns the accounted payload size: the value plus the chain
// (node index + signature per endorsement). Chains of up to t+1 links
// are what make the classical protocols' messages large.
func (m DSMsg) Bits(valueBits, nodeBits int) int {
	return valueBits + len(m.Chain)*(nodeBits+auth.SignatureBits)
}

// DSBroadcast is one member's state in one broadcast instance.
type DSBroadcast struct {
	instance     int
	self         int
	participants []int
	sender       int
	t            int
	authority    *auth.Authority
	signer       auth.Signer

	input    uint64 // meaningful for the sender only
	isSender bool

	round    int
	accepted map[uint64]bool
	relayQ   []DSMsg
	done     bool
}

// NewDSBroadcast creates the instance for the member at link self.
// sender is the broadcasting link; input is used when self == sender.
func NewDSBroadcast(instance, self int, participants []int, sender, t int,
	authority *auth.Authority, signer auth.Signer, input uint64) *DSBroadcast {
	sorted := append([]int(nil), participants...)
	sort.Ints(sorted)
	return &DSBroadcast{
		instance:     instance,
		self:         self,
		participants: sorted,
		sender:       sender,
		t:            t,
		authority:    authority,
		signer:       signer,
		input:        input,
		isSender:     self == sender,
		accepted:     make(map[uint64]bool),
	}
}

// Rounds returns the protocol length: t+1 relay rounds plus the final
// decision step.
func (ds *DSBroadcast) Rounds() int { return ds.t + 2 }

// Done reports completion.
func (ds *DSBroadcast) Done() bool { return ds.done }

// Output returns the agreed value; ok=false means ⊥ (the sender was
// faulty, detected consistently by every correct member).
func (ds *DSBroadcast) Output() (uint64, bool) {
	if len(ds.accepted) != 1 {
		return 0, false
	}
	for v := range ds.accepted {
		return v, true
	}
	return 0, false
}

// Step consumes this round's instance messages and returns the relays to
// send. Round 0 is the sender's initial broadcast.
func (ds *DSBroadcast) Step(in []DSMsg) []DSMsg {
	if ds.done {
		return nil
	}
	defer func() { ds.round++ }()

	if ds.round == 0 {
		if !ds.isSender {
			return nil
		}
		ds.accepted[ds.input] = true
		digest := ds.digest(ds.input, nil)
		chain := []Endorsement{{Node: ds.self, Sig: ds.signer.Sign(digest)}}
		return ds.fanOut(ds.input, chain)
	}

	// Rounds 1..t+1 accept chains of exactly ds.round signatures.
	var out []DSMsg
	for _, msg := range in {
		if msg.Instance != ds.instance || ds.accepted[msg.Value] {
			continue
		}
		if !ds.validChain(msg.Value, msg.Chain, ds.round) {
			continue
		}
		ds.accepted[msg.Value] = true
		if len(ds.accepted) > 2 {
			continue // two accepted values already prove sender faulty
		}
		if ds.round <= ds.t {
			digest := ds.digest(msg.Value, msg.Chain)
			chain := append(append([]Endorsement(nil), msg.Chain...),
				Endorsement{Node: ds.self, Sig: ds.signer.Sign(digest)})
			out = append(out, ds.fanOut(msg.Value, chain)...)
		}
	}
	if ds.round == ds.t+1 {
		ds.done = true
	}
	return out
}

// validChain checks a chain of the expected length: distinct signers, the
// sender first, every signature valid over the incremental digest.
func (ds *DSBroadcast) validChain(value uint64, chain []Endorsement, wantLen int) bool {
	if len(chain) != wantLen || len(chain) == 0 || chain[0].Node != ds.sender {
		return false
	}
	seen := make(map[int]bool, len(chain))
	for i, e := range chain {
		if seen[e.Node] {
			return false
		}
		seen[e.Node] = true
		digest := ds.digest(value, chain[:i])
		if !ds.authority.Verify(e.Node, digest, e.Sig) {
			return false
		}
	}
	return true
}

// digest binds the instance, the value, and the chain prefix, so a
// signature cannot be replayed into another instance or position.
func (ds *DSBroadcast) digest(value uint64, prefix []Endorsement) uint64 {
	parts := make([]uint64, 0, 2+2*len(prefix))
	parts = append(parts, uint64(ds.instance), value)
	for _, e := range prefix {
		parts = append(parts, uint64(e.Node), uint64(e.Sig))
	}
	return auth.Digest(parts...)
}

func (ds *DSBroadcast) fanOut(value uint64, chain []Endorsement) []DSMsg {
	out := make([]DSMsg, 0, len(ds.participants))
	for _, to := range ds.participants {
		out = append(out, DSMsg{
			Instance: ds.instance, From: ds.self, To: to,
			Value: value, Chain: chain,
		})
	}
	return out
}
