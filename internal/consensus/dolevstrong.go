package consensus

import (
	"renaming/internal/auth"
)

// Dolev–Strong authenticated broadcast: the classical tool the paper's
// related work builds renaming on ("early results rely on consensus and
// reliable broadcast, with round complexity growing linearly in the
// maximum number of faults"). With transferable signatures it achieves
// broadcast (agreement on the sender's value, or on ⊥ for an equivocating
// sender) against any number of Byzantine nodes in t+1 rounds, where t is
// the assumed fault bound.
//
// A value circulates with a signature chain: the sender's signature
// first, then one per relayer. A member accepts a value seen in round r
// only when its chain carries r valid signatures from distinct nodes
// starting with the sender; on first acceptance it appends its own
// signature and relays. After t+1 rounds a member outputs the unique
// accepted value, or ⊥ when it accepted zero or several.

// Endorsement is one link in a signature chain.
type Endorsement struct {
	Node int
	Sig  auth.Signature
}

// DSMsg is one Dolev–Strong relay message: a value and its chain. The
// Instance field routes messages when many broadcasts run in parallel
// (one per sender, as in the consensus-based renaming baseline).
type DSMsg struct {
	Instance int
	From     int
	To       int
	Value    uint64
	Chain    []Endorsement
}

// Bits returns the accounted payload size: the value plus the chain
// (node index + signature per endorsement). Chains of up to t+1 links
// are what make the classical protocols' messages large.
func (m DSMsg) Bits(valueBits, nodeBits int) int {
	return valueBits + len(m.Chain)*(nodeBits+auth.SignatureBits)
}

// DSRelay is one accepted value with its extended signature chain, ready
// to relay. Step returns relays instead of per-recipient messages: every
// participant receives the identical payload, so the caller fans a relay
// out as one shared broadcast (sim.ToAll) rather than materialising
// len(participants) copies.
type DSRelay struct {
	Value uint64
	Chain []Endorsement
}

// DSBroadcast is one member's state in one broadcast instance.
type DSBroadcast struct {
	instance     int
	self         int
	participants []int
	sender       int
	t            int
	verifier     auth.Verifier
	signer       auth.Signer

	input    uint64 // meaningful for the sender only
	isSender bool

	round    int
	accepted map[uint64]bool
	done     bool

	// chainAcc is the digest accumulator of the last chain VerifyChain
	// accepted, i.e. the digest this member's own endorsement signs.
	chainAcc uint64
	// seenEpoch/epoch implement per-call signer dedup without a map:
	// seenEpoch[node] == epoch means node already signed in this chain.
	seenEpoch []int
	epoch     int
}

// NewDSBroadcast creates the instance for the member at link self.
// sender is the broadcasting link; input is used when self == sender.
// verifier is typically the auth.Authority itself, or an auth.Memo when
// many members verify the same relayed chains.
func NewDSBroadcast(instance, self int, participants []int, sender, t int,
	verifier auth.Verifier, signer auth.Signer, input uint64) *DSBroadcast {
	return &DSBroadcast{
		instance:     instance,
		self:         self,
		participants: sortedMembers(participants),
		sender:       sender,
		t:            t,
		verifier:     verifier,
		signer:       signer,
		input:        input,
		isSender:     self == sender,
		accepted:     make(map[uint64]bool),
	}
}

// Rounds returns the protocol length: t+1 relay rounds plus the final
// decision step.
func (ds *DSBroadcast) Rounds() int { return ds.t + 2 }

// Done reports completion.
func (ds *DSBroadcast) Done() bool { return ds.done }

// Output returns the agreed value; ok=false means ⊥ (the sender was
// faulty, detected consistently by every correct member).
func (ds *DSBroadcast) Output() (uint64, bool) {
	if len(ds.accepted) != 1 {
		return 0, false
	}
	for v := range ds.accepted {
		return v, true
	}
	return 0, false
}

// Step consumes this round's instance messages and returns the relays to
// send (each relay goes to every participant). Round 0 is the sender's
// initial broadcast.
func (ds *DSBroadcast) Step(in []DSMsg) []DSRelay {
	if ds.done {
		return nil
	}
	defer func() { ds.round++ }()

	if ds.round == 0 {
		if !ds.isSender {
			return nil
		}
		ds.accepted[ds.input] = true
		ds.chainAcc = auth.DigestFold(auth.DigestFold(auth.DigestInit,
			uint64(ds.instance)), ds.input)
		chain := []Endorsement{{Node: ds.self, Sig: ds.signer.Sign(ds.chainAcc)}}
		return []DSRelay{{Value: ds.input, Chain: chain}}
	}

	// Rounds 1..t+1 accept chains of exactly ds.round signatures.
	var out []DSRelay
	for _, msg := range in {
		if msg.Instance != ds.instance || ds.accepted[msg.Value] {
			continue
		}
		if len(msg.Chain) != ds.round || !ds.VerifyChain(msg.Value, msg.Chain) {
			continue
		}
		ds.accepted[msg.Value] = true
		if len(ds.accepted) > 2 {
			continue // two accepted values already prove sender faulty
		}
		if ds.round <= ds.t {
			chain := append(append([]Endorsement(nil), msg.Chain...),
				Endorsement{Node: ds.self, Sig: ds.signer.Sign(ds.chainAcc)})
			out = append(out, DSRelay{Value: msg.Value, Chain: chain})
		}
	}
	if ds.round == ds.t+1 {
		ds.done = true
	}
	return out
}

// VerifyChain checks a signature chain in one incremental pass: the
// sender first, all signers distinct, every signature valid over the
// running prefix digest (which binds instance, value, and position, so a
// signature cannot be replayed into another instance or slot). It costs
// O(len(chain)) digest folds instead of the O(len(chain)²) of re-hashing
// every prefix from scratch. On success the final accumulator is cached
// so Step signs its own endorsement without re-folding the chain.
func (ds *DSBroadcast) VerifyChain(value uint64, chain []Endorsement) bool {
	if len(chain) == 0 || chain[0].Node != ds.sender {
		return false
	}
	ds.epoch++
	acc := auth.DigestFold(auth.DigestFold(auth.DigestInit,
		uint64(ds.instance)), value)
	for _, e := range chain {
		if e.Node < 0 {
			return false
		}
		// Verify before the distinctness bookkeeping: a forged
		// endorsement with an out-of-range Node index fails here without
		// ever growing the scratch, which keeps seenEpoch bounded by the
		// verifier's node range rather than attacker-chosen indices.
		if !ds.verifier.Verify(e.Node, acc, e.Sig) {
			return false
		}
		if e.Node >= len(ds.seenEpoch) {
			ds.seenEpoch = append(ds.seenEpoch,
				make([]int, e.Node+1-len(ds.seenEpoch))...)
		}
		if ds.seenEpoch[e.Node] == ds.epoch {
			return false
		}
		ds.seenEpoch[e.Node] = ds.epoch
		acc = auth.DigestFold(auth.DigestFold(acc, uint64(e.Node)), uint64(e.Sig))
	}
	ds.chainAcc = acc
	return true
}
