package consensus

// Validator is the weak validator of Lemma 3.3, implemented as two-round
// graded consensus on O(log N)-bit values:
//
//	round 1: every member broadcasts its input value;
//	round 2: every member broadcasts the value it saw at least m − t
//	         times in round 1 (or stays silent when no such value exists);
//	decide:  a value echoed at least m − t times yields ⟨same=1, value⟩,
//	         a value echoed at least t + 1 times yields ⟨same=0, value⟩,
//	         otherwise the member keeps its own input with same=0.
//
// Properties (with t < m/3 Byzantine per view):
//
//   - strong validity: the output equals some correct member's input —
//     an echo count of t+1 contains a correct echo, which required m−t
//     round-1 votes, of which at least m−2t > t came from correct members;
//   - unanimity: if all correct members share input v, every correct
//     member outputs ⟨1, v⟩;
//   - weak agreement: if any correct member outputs same=1 for value v,
//     every correct member outputs v (possibly with same=0), because
//     correct members can collectively echo at most one value and the
//     m−t echoes seen by the grading member include more than t correct
//     ones visible to everybody.
type Validator struct {
	self    int
	members []int
	in      Value

	round    int
	votes    voteSet // collection scratch, cleared and reused
	out      []Msg   // broadcast scratch, valid until the next Step
	done     bool
	outSame  bool
	outValue Value
}

var _ Machine = (*Validator)(nil)

// NewValidator creates a validator instance for the member at link index
// self with the given input. members is the shared committee view as
// link indices.
func NewValidator(self int, members []int, input Value) *Validator {
	va := &Validator{self: self, members: sortedMembers(members), in: input}
	va.votes.init(va.members)
	return va
}

// Reset rewinds the machine to round zero with a new input, reusing the
// member view and collection scratch — equivalent to NewValidator over
// the same committee (see PhaseKing.Reset).
func (va *Validator) Reset(input Value) {
	va.in = input
	va.round = 0
	va.done = false
	va.outSame = false
	va.outValue = Value{}
}

// ValidatorRounds is the number of synchronous rounds a Validator needs.
const ValidatorRounds = 3

// Done reports whether the protocol has produced its output.
func (va *Validator) Done() bool { return va.done }

// Output returns ⟨same, value⟩ once Done.
func (va *Validator) Output() (same bool, val Value, ok bool) {
	if !va.done {
		return false, Value{}, false
	}
	return va.outSame, va.outValue, true
}

// Step advances the protocol by one synchronous round.
func (va *Validator) Step(in []Msg) []Msg {
	if va.done {
		return nil
	}
	m := len(va.members)
	t := byzThreshold(m)
	switch va.round {
	case 0:
		va.round = 1
		return va.broadcast(va.in)
	case 1:
		// Round-1 votes arrive; echo a strong-quorum value if one exists.
		va.votes.collect(in)
		best, cnt, _ := va.votes.countVotes()
		va.round = 2
		if cnt >= m-t {
			return va.broadcast(best)
		}
		return nil
	default:
		// Echoes arrive; grade.
		va.votes.collect(in)
		best, cnt, _ := va.votes.countVotes()
		switch {
		case cnt >= m-t:
			va.outSame, va.outValue = true, best
		case cnt >= t+1:
			va.outSame, va.outValue = false, best
		default:
			va.outSame, va.outValue = false, va.in
		}
		va.done = true
		return nil
	}
}

func (va *Validator) broadcast(v Value) []Msg {
	out := va.out[:0]
	for _, to := range va.members {
		out = append(out, Msg{From: va.self, To: to, Val: v})
	}
	va.out = out
	return out
}
