// Package consensus implements the two committee subprotocols the
// Byzantine-resilient renaming algorithm composes (Section 3.3):
//
//   - Consensus (Lemma 3.4): classical binary consensus, instantiated as
//     phase king with rotating kings drawn from the shared committee
//     order. Tolerates strictly fewer than one third Byzantine members in
//     every correct view.
//   - Validator (Lemma 3.3): the weak validator inspired by Lenzen and
//     Sheikholeslami, instantiated as two-round graded consensus on
//     O(log N)-bit values. It provides strong validity (the output is
//     some correct member's input) and weak agreement (a member that
//     outputs same=1 is guaranteed every correct member holds the same
//     output value).
//
// Both protocols are transport-agnostic step machines: the renaming node
// drives them one synchronous round at a time and wraps their messages
// into simulator payloads. As discussed in DESIGN.md, the reproduction
// instantiates them under the common-view assumption of Lemmas 3.3/3.4
// (G ⊆ ∩ C_v): all correct members share the member list and therefore a
// king schedule, while Byzantine members retain full power to equivocate,
// lie, or stay silent inside the protocols.
package consensus

// Value is a small fixed-width value (up to 128 bits, enough for a
// fingerprint–counter pair) carried through the subprotocols. Values are
// ordered lexicographically for deterministic tie-breaking.
type Value struct {
	Hi uint64
	Lo uint64
}

// Bit wraps a binary value.
func Bit(b bool) Value {
	if b {
		return Value{Lo: 1}
	}
	return Value{}
}

// AsBit interprets the value as a binary flag (nonzero = true).
func (v Value) AsBit() bool { return v.Hi != 0 || v.Lo != 0 }

// Less orders values lexicographically (Hi, then Lo).
func Less(a, b Value) bool {
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.Lo < b.Lo
}

// Msg is one point-to-point protocol message. From and To are link
// indices in the underlying network; From is trustworthy because the
// simulator models authenticated channels.
type Msg struct {
	From int
	To   int
	Val  Value
}

// Machine is a step-driven subprotocol. The driver calls Step once per
// synchronous round, passing the protocol messages delivered this round;
// the first call receives no input. Step returns the messages to send
// this round; the returned slice is only valid until the next Step call
// (machines reuse their broadcast scratch), so drivers must copy what
// they retain. After Done reports true, Step must not be called again.
type Machine interface {
	Step(in []Msg) (out []Msg)
	Done() bool
}

// byzThreshold returns t = ceil(m/3) − 1, the maximum number of Byzantine
// members tolerated in a view of size m. The committee guarantees of
// Lemma 3.5 (|B| < c_g/2 ≤ |G|/2) imply the Byzantine fraction of every
// correct view is strictly below one third, hence at most t.
func byzThreshold(m int) int {
	return (m+2)/3 - 1
}

func countVotes(votes map[int]Value) (best Value, bestCount, total int) {
	counts := make(map[Value]int, len(votes))
	for _, v := range votes {
		counts[v]++
	}
	first := true
	for v, c := range counts {
		total += c
		if first || c > bestCount || (c == bestCount && Less(v, best)) {
			best, bestCount = v, c
			first = false
		}
	}
	return best, bestCount, total
}
