package bitvec

import (
	"math/rand"
	"testing"
)

func benchVector(n, ones int) *Vector {
	rng := rand.New(rand.NewSource(1))
	v := New(n)
	for i := 0; i < ones; i++ {
		v.Set(rng.Intn(n) + 1)
	}
	return v
}

func BenchmarkRank(b *testing.B) {
	v := benchVector(1<<16, 1<<12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.Rank(i%(1<<16) + 1)
	}
}

func BenchmarkCountRange(b *testing.B) {
	v := benchVector(1<<16, 1<<12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lo := i%(1<<15) + 1
		_ = v.CountRange(lo, lo+1<<14)
	}
}

func BenchmarkSegmentWords(b *testing.B) {
	v := benchVector(1<<16, 1<<12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.SegmentWords(1, 1<<12)
	}
}
