// Package bitvec provides the two bit-level structures the algorithms
// need: length-N bit vectors and a little-endian bit-packing codec.
//
// # Identity lists (Vector)
//
// The Byzantine-resilient algorithm manipulates length-N "identity
// lists": committee member v keeps L_v ∈ {0,1}^N with L_v[i] = 1 iff it
// received identity i, and needs rank queries (new identity = number of
// ones before a position), range popcounts, and per-segment fingerprint
// input. Positions are 1-based to match the paper's namespace
// [N] = {1, …, N}.
//
// # Wire codec (Writer / Reader)
//
// Writer and Reader bit-pack wire payloads for the high-volume message
// kinds (status, response, NEW): fields are appended at explicit bit
// widths into little-endian uint64 words and read back in the same
// order. The codec is allocation-free when the caller supplies
// persistent scratch (NewWriter(scratch[:0]) with scratch held in a
// struct field — a loop-local array escapes), and it panics on
// programmer error (oversized value, width outside [0, 64], read past
// the end) rather than returning errors: codecs run on the per-message
// hot path and their domains are precomputed per run.
//
// Packing is an implementation concern only — billed Bits() of a packed
// payload must equal the struct it replaces, so paper accounting and
// golden fingerprints are unchanged by codec adoption (the codec
// round-trip tests in internal/core pin exactly this).
package bitvec
