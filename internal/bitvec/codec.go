package bitvec

import "fmt"

// Writer packs a sequence of fixed-width unsigned fields at bit
// granularity, little-endian within and across 64-bit words — the
// encoder half of the wire codecs that turn multi-word payload structs
// into a couple of machine words (see internal/core's packed payloads).
//
// The zero Writer is empty and ready for use. Words are appended to the
// scratch slice passed to NewWriter, so a caller that hands in a
// stack-backed slice (e.g. arr[:0] over a local [2]uint64) encodes
// without allocating.
type Writer struct {
	words []uint64
	bits  int
}

// NewWriter returns a Writer appending to scratch (truncated to length
// zero). Pass nil to let the Writer allocate as it grows.
func NewWriter(scratch []uint64) Writer {
	return Writer{words: scratch[:0]}
}

// Append packs the low width bits of value after the fields already
// written. Width must be in [0, 64] and value must fit: packing is for
// known-domain fields, so an oversized value is a caller bug, not data.
func (w *Writer) Append(value uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitvec: field width %d out of range [0,64]", width))
	}
	if width < 64 && value>>uint(width) != 0 {
		panic(fmt.Sprintf("bitvec: value %d does not fit in %d bits", value, width))
	}
	if width == 0 {
		return
	}
	off := uint(w.bits % 64)
	if off == 0 {
		w.words = append(w.words, value)
	} else {
		w.words[len(w.words)-1] |= value << off
		if int(off)+width > 64 {
			w.words = append(w.words, value>>(64-off))
		}
	}
	w.bits += width
}

// AppendBool packs a single bit.
func (w *Writer) AppendBool(b bool) {
	if b {
		w.Append(1, 1)
	} else {
		w.Append(0, 1)
	}
}

// Bits returns the number of bits written so far.
func (w *Writer) Bits() int { return w.bits }

// Words returns the packed words. The slice aliases the Writer's
// buffer; the final word's unused high bits are zero.
func (w *Writer) Words() []uint64 { return w.words }

// Reader unpacks fields written by Writer, in the same order and with
// the same widths. The zero Reader reads from an empty buffer.
type Reader struct {
	words []uint64
	bits  int
}

// NewReader returns a Reader over packed words.
func NewReader(words []uint64) Reader {
	return Reader{words: words}
}

// Take unpacks the next width bits as an unsigned value. Width must be
// in [0, 64]; reading past the packed words panics (an index error),
// which — like Append's range panics — turns codec drift into a loud
// failure instead of silent corruption.
func (r *Reader) Take(width int) uint64 {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitvec: field width %d out of range [0,64]", width))
	}
	if width == 0 {
		return 0
	}
	idx, off := r.bits/64, uint(r.bits%64)
	v := r.words[idx] >> off
	if int(off)+width > 64 {
		v |= r.words[idx+1] << (64 - off)
	}
	if width < 64 {
		v &= 1<<uint(width) - 1
	}
	r.bits += width
	return v
}

// TakeBool unpacks a single bit.
func (r *Reader) TakeBool() bool { return r.Take(1) != 0 }

// Bits returns the number of bits consumed so far.
func (r *Reader) Bits() int { return r.bits }
