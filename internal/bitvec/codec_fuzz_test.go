package bitvec

import (
	"encoding/binary"
	"testing"
)

// FuzzCodecRoundTrip drives Writer/Reader with a byte-encoded field
// sequence: each 9-byte record is (width, value) with the value masked
// to the width. The decoded fields must equal the encoded ones — the
// identity property the packed payload codecs depend on. Seeds cover
// word-boundary splits, width 0/64 extremes, and flag bits.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{17, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{64, 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef, 60, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0, 0, 63, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55})
	f.Fuzz(func(t *testing.T, data []byte) {
		var widths []int
		var values []uint64
		for i := 0; i+9 <= len(data); i += 9 {
			width := int(data[i]) % 65
			value := binary.LittleEndian.Uint64(data[i+1 : i+9])
			if width < 64 {
				value &= 1<<uint(width) - 1
			}
			widths = append(widths, width)
			values = append(values, value)
		}
		w := NewWriter(nil)
		total := 0
		for i := range widths {
			w.Append(values[i], widths[i])
			total += widths[i]
		}
		if w.Bits() != total {
			t.Fatalf("wrote %d bits, want %d", w.Bits(), total)
		}
		r := NewReader(w.Words())
		for i := range widths {
			if got := r.Take(widths[i]); got != values[i] {
				t.Fatalf("field %d (width %d): got %#x want %#x", i, widths[i], got, values[i])
			}
		}
	})
}
