package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	v := New(130)
	for _, pos := range []int{1, 64, 65, 128, 130} {
		if v.Get(pos) {
			t.Fatalf("fresh vector has bit %d", pos)
		}
		v.Set(pos)
		if !v.Get(pos) {
			t.Fatalf("Set(%d) lost", pos)
		}
	}
	if v.Count() != 5 {
		t.Fatalf("Count = %d", v.Count())
	}
	v.Clear(64)
	if v.Get(64) || v.Count() != 4 {
		t.Fatal("Clear failed")
	}
}

func TestRankAndOnes(t *testing.T) {
	v := New(100)
	for _, pos := range []int{3, 10, 50, 99} {
		v.Set(pos)
	}
	cases := []struct{ pos, rank int }{
		{1, 0}, {3, 0}, {4, 1}, {10, 1}, {11, 2}, {50, 2}, {51, 3}, {99, 3}, {100, 4},
	}
	for _, c := range cases {
		if got := v.Rank(c.pos); got != c.rank {
			t.Errorf("Rank(%d) = %d, want %d", c.pos, got, c.rank)
		}
	}
	ones := v.Ones()
	want := []int{3, 10, 50, 99}
	if len(ones) != len(want) {
		t.Fatalf("Ones = %v", ones)
	}
	for i := range want {
		if ones[i] != want[i] {
			t.Fatalf("Ones = %v", ones)
		}
	}
	or := v.OnesRange(10, 50)
	if len(or) != 2 || or[0] != 10 || or[1] != 50 {
		t.Fatalf("OnesRange = %v", or)
	}
}

func TestCountRangeAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := New(300)
	ref := make([]bool, 301)
	for i := 0; i < 120; i++ {
		pos := rng.Intn(300) + 1
		v.Set(pos)
		ref[pos] = true
	}
	for trial := 0; trial < 500; trial++ {
		lo := rng.Intn(300) + 1
		hi := lo + rng.Intn(300-lo+1)
		want := 0
		for p := lo; p <= hi; p++ {
			if ref[p] {
				want++
			}
		}
		if got := v.CountRange(lo, hi); got != want {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
}

func TestSegmentWordsNormalized(t *testing.T) {
	// Equal segments at different offsets must produce equal words.
	a, b := New(200), New(200)
	pattern := []int{1, 3, 4, 8, 63, 64, 65, 70}
	for _, off := range pattern {
		a.Set(10 + off)
		b.Set(97 + off)
	}
	wa := a.SegmentWords(11, 11+70)
	wb := b.SegmentWords(98, 98+70)
	if len(wa) != len(wb) {
		t.Fatalf("lengths differ: %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("word %d differs: %x vs %x", i, wa[i], wb[i])
		}
	}
}

func TestReplaceRange(t *testing.T) {
	v := New(64)
	for p := 1; p <= 64; p++ {
		v.Set(p)
	}
	v.ReplaceRange(10, 30, 5)
	if got := v.CountRange(10, 30); got != 5 {
		t.Fatalf("segment count = %d", got)
	}
	if v.Count() != 64-21+5 {
		t.Fatalf("total = %d", v.Count())
	}
	// Bits outside the range untouched.
	if !v.Get(9) || !v.Get(31) {
		t.Fatal("neighbours clobbered")
	}
}

func TestEqualRangeAndClone(t *testing.T) {
	a := New(80)
	a.Set(7)
	a.Set(64)
	b := a.Clone()
	if !a.EqualRange(b, 1, 80) {
		t.Fatal("clone differs")
	}
	b.Set(40)
	if a.EqualRange(b, 1, 80) {
		t.Fatal("EqualRange missed a difference")
	}
	if a.EqualRange(b, 41, 80) != true {
		t.Fatal("EqualRange range restriction broken")
	}
}

func TestPanicsOutOfRange(t *testing.T) {
	v := New(10)
	for _, fn := range []func(){
		func() { v.Get(0) },
		func() { v.Set(11) },
		func() { v.Rank(-1) },
		func() { v.ReplaceRange(1, 5, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestQuickRankCount: Rank(pos) + bit(pos..) identities against a naive
// reference model under random operations.
func TestQuickRankCount(t *testing.T) {
	prop := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		v := New(n)
		ref := make([]bool, n+1)
		ops := int(opsRaw)
		for i := 0; i < ops; i++ {
			pos := rng.Intn(n) + 1
			if rng.Intn(2) == 0 {
				v.Set(pos)
				ref[pos] = true
			} else {
				v.Clear(pos)
				ref[pos] = false
			}
		}
		total := 0
		for pos := 1; pos <= n; pos++ {
			if v.Rank(pos) != total {
				return false
			}
			if ref[pos] {
				total++
			}
			if v.Get(pos) != ref[pos] {
				return false
			}
		}
		return v.Count() == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
