package bitvec

import "testing"

// FuzzOperations replays a byte-encoded operation sequence against a
// naive boolean-slice reference model. Each byte encodes an operation
// (set / clear / replace-range) and its position; after the sequence,
// every rank, count, and segment query must match the model.
func FuzzOperations(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0xc3})
	f.Add([]byte{0xff, 0x01, 0x80})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const n = 97
		v := New(n)
		ref := make([]bool, n+1)
		for i := 0; i+1 < len(ops); i += 2 {
			pos := int(ops[i])%n + 1
			switch ops[i+1] % 3 {
			case 0:
				v.Set(pos)
				ref[pos] = true
			case 1:
				v.Clear(pos)
				ref[pos] = false
			default:
				hi := pos + int(ops[i+1]/3)%(n-pos+1)
				ones := int(ops[i+1]) % (hi - pos + 2)
				v.ReplaceRange(pos, hi, ones)
				for p := pos; p <= hi; p++ {
					ref[p] = ones > 0
					if ones > 0 {
						ones--
					}
				}
			}
		}
		total := 0
		for pos := 1; pos <= n; pos++ {
			if v.Get(pos) != ref[pos] {
				t.Fatalf("bit %d: got %v want %v", pos, v.Get(pos), ref[pos])
			}
			if got := v.Rank(pos); got != total {
				t.Fatalf("rank(%d): got %d want %d", pos, got, total)
			}
			if ref[pos] {
				total++
			}
		}
		if v.Count() != total {
			t.Fatalf("count: got %d want %d", v.Count(), total)
		}
		mid := n / 2
		lo := 0
		for p := 1; p <= mid; p++ {
			if ref[p] {
				lo++
			}
		}
		if got := v.CountRange(1, mid); got != lo {
			t.Fatalf("countRange(1,%d): got %d want %d", mid, got, lo)
		}
	})
}
