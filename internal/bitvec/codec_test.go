package bitvec

import (
	"math/rand"
	"testing"
)

// TestCodecRoundTrip is the property test behind every packed payload:
// for random field sequences, encode→decode is the identity, the bit
// count is the sum of widths, and the word count is the minimum.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		nFields := 1 + rng.Intn(8)
		widths := make([]int, nFields)
		values := make([]uint64, nFields)
		total := 0
		for i := range widths {
			widths[i] = rng.Intn(65)
			if widths[i] == 64 {
				values[i] = rng.Uint64()
			} else {
				values[i] = rng.Uint64() & (1<<uint(widths[i]) - 1)
			}
			total += widths[i]
		}
		w := NewWriter(nil)
		for i := range widths {
			w.Append(values[i], widths[i])
		}
		if w.Bits() != total {
			t.Fatalf("trial %d: wrote %d bits, want %d", trial, w.Bits(), total)
		}
		if got, want := len(w.Words()), (total+63)/64; got != want {
			t.Fatalf("trial %d: %d words for %d bits, want %d", trial, got, total, want)
		}
		r := NewReader(w.Words())
		for i := range widths {
			if got := r.Take(widths[i]); got != values[i] {
				t.Fatalf("trial %d field %d (width %d): got %#x want %#x",
					trial, i, widths[i], got, values[i])
			}
		}
		if r.Bits() != total {
			t.Fatalf("trial %d: read %d bits, want %d", trial, r.Bits(), total)
		}
	}
}

// TestCodecKnownLayout pins the little-endian bit layout so encoded
// words are a stable wire format, not an implementation accident.
func TestCodecKnownLayout(t *testing.T) {
	var arr [2]uint64
	w := NewWriter(arr[:0])
	w.Append(0b101, 3) // bits 0..2
	w.Append(0xff, 8)  // bits 3..10
	w.AppendBool(true) // bit 11
	w.Append(1, 60)    // bits 12..71, crosses the word boundary
	if w.Bits() != 72 {
		t.Fatalf("bits = %d, want 72", w.Bits())
	}
	words := w.Words()
	if want := uint64(0b101 | 0xff<<3 | 1<<11 | 1<<12); words[0] != want {
		t.Fatalf("word 0 = %#x, want %#x", words[0], want)
	}
	if words[1] != 0 {
		t.Fatalf("word 1 = %#x, want 0 (value 1 fits below the boundary)", words[1])
	}

	w = NewWriter(arr[:0])
	w.Append(1<<59|1, 60) // bit 59 lands in word 0, spill after next field
	w.Append(0x1f, 10)    // bits 60..69: splits 4/6 across the boundary
	words = w.Words()
	if want := uint64(1<<59 | 1 | 0xf<<60); words[0] != want {
		t.Fatalf("split word 0 = %#x, want %#x", words[0], want)
	}
	if want := uint64(0x1f >> 4); words[1] != want {
		t.Fatalf("split word 1 = %#x, want %#x", words[1], want)
	}
	r := NewReader(words)
	if got := r.Take(60); got != 1<<59|1 {
		t.Fatalf("take(60) = %#x", got)
	}
	if got := r.Take(10); got != 0x1f {
		t.Fatalf("take(10) = %#x", got)
	}
}

// TestCodecZeroWidthAndBool covers the degenerate widths the payload
// codecs rely on (flag bits, width-0 fields for empty domains).
func TestCodecZeroWidthAndBool(t *testing.T) {
	w := NewWriter(nil)
	w.Append(0, 0)
	w.AppendBool(false)
	w.Append(0, 0)
	w.AppendBool(true)
	if w.Bits() != 2 {
		t.Fatalf("bits = %d, want 2", w.Bits())
	}
	r := NewReader(w.Words())
	if r.Take(0) != 0 {
		t.Fatal("take(0) != 0")
	}
	if r.TakeBool() {
		t.Fatal("first bool should be false")
	}
	if !r.TakeBool() {
		t.Fatal("second bool should be true")
	}
}

// TestCodecPanics locks the loud-failure contract: oversized values and
// out-of-range widths panic instead of truncating.
func TestCodecPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("oversized value", func() {
		w := NewWriter(nil)
		w.Append(4, 2)
	})
	mustPanic("width 65", func() {
		w := NewWriter(nil)
		w.Append(0, 65)
	})
	mustPanic("negative width", func() {
		r := NewReader([]uint64{0})
		r.Take(-1)
	})
	mustPanic("read past end", func() {
		r := NewReader(nil)
		r.Take(1)
	})
}

// BenchmarkCodecEncode measures one packed-status-shaped encode. With a
// persistent scratch array — how the payload codecs hold theirs, as a
// struct field reused across encodes — it must not allocate.
func BenchmarkCodecEncode(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	var arr [2]uint64
	for i := 0; i < b.N; i++ {
		w := NewWriter(arr[:0])
		w.Append(uint64(i)&0xffff, 17)
		w.Append(uint64(i)&0x3ff, 11)
		w.Append(uint64(i)&0x3ff, 11)
		w.Append(uint64(i)&0xf, 5)
		w.Append(uint64(i)&0xf, 5)
		w.AppendBool(i&1 == 0)
		sink += w.Words()[0]
	}
	_ = sink
}
