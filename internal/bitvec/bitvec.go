package bitvec

import (
	"fmt"
	"math/bits"
)

// Vector is a fixed-length bit vector over positions 1..N.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector over positions 1..n.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns N, the number of addressable positions.
func (v *Vector) Len() int { return v.n }

func (v *Vector) check(pos int) {
	if pos < 1 || pos > v.n {
		panic(fmt.Sprintf("bitvec: position %d out of range [1,%d]", pos, v.n))
	}
}

// Set sets position pos to 1.
func (v *Vector) Set(pos int) {
	v.check(pos)
	v.words[(pos-1)/64] |= 1 << uint((pos-1)%64)
}

// Clear sets position pos to 0.
func (v *Vector) Clear(pos int) {
	v.check(pos)
	v.words[(pos-1)/64] &^= 1 << uint((pos-1)%64)
}

// Get reports whether position pos is 1.
func (v *Vector) Get(pos int) bool {
	v.check(pos)
	return v.words[(pos-1)/64]&(1<<uint((pos-1)%64)) != 0
}

// Count returns the total number of ones.
func (v *Vector) Count() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// CountRange returns the number of ones in positions [lo, hi] inclusive.
func (v *Vector) CountRange(lo, hi int) int {
	if lo > hi {
		return 0
	}
	v.check(lo)
	v.check(hi)
	total := 0
	loIdx, hiIdx := (lo-1)/64, (hi-1)/64
	loOff, hiOff := uint((lo-1)%64), uint((hi-1)%64)
	if loIdx == hiIdx {
		mask := maskRange(loOff, hiOff)
		return bits.OnesCount64(v.words[loIdx] & mask)
	}
	total += bits.OnesCount64(v.words[loIdx] &^ ((1 << loOff) - 1))
	for i := loIdx + 1; i < hiIdx; i++ {
		total += bits.OnesCount64(v.words[i])
	}
	total += bits.OnesCount64(v.words[hiIdx] & maskThrough(hiOff))
	return total
}

// Rank returns the number of ones strictly before position pos — exactly
// the paper's "number of 1s in L_v that occur before position ID(u)",
// which (plus one) is the new identity assigned to the node at pos.
func (v *Vector) Rank(pos int) int {
	v.check(pos)
	if pos == 1 {
		return 0
	}
	return v.CountRange(1, pos-1)
}

// Ones returns the positions of all ones in ascending order.
func (v *Vector) Ones() []int {
	out := make([]int, 0, v.Count())
	for i, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*64+b+1)
			w &= w - 1
		}
	}
	return out
}

// OnesRange returns the positions of ones within [lo, hi] in ascending order.
func (v *Vector) OnesRange(lo, hi int) []int {
	if lo > hi {
		return nil
	}
	v.check(lo)
	v.check(hi)
	out := []int{}
	for _, pos := range v.Ones() {
		if pos < lo {
			continue
		}
		if pos > hi {
			break
		}
		out = append(out, pos)
	}
	return out
}

// SegmentWords returns the bits of positions [lo, hi] packed little-endian
// into fresh words, normalized so that equal segments at different offsets
// produce equal word slices — the input the fingerprint hash consumes.
func (v *Vector) SegmentWords(lo, hi int) []uint64 {
	if lo > hi {
		return nil
	}
	v.check(lo)
	v.check(hi)
	length := hi - lo + 1
	out := make([]uint64, (length+63)/64)
	for i := 0; i < length; i++ {
		if v.Get(lo + i) {
			out[i/64] |= 1 << uint(i%64)
		}
	}
	return out
}

// ReplaceRange overwrites positions [lo, hi] so that the segment contains
// exactly ones 1-bits, placed at the lowest positions of the range. This
// implements the paper's "replace L_v[l..r] with an arbitrary binary
// string that contains exactly cnt' ones" for dirty segments.
func (v *Vector) ReplaceRange(lo, hi, ones int) {
	if lo > hi {
		if ones != 0 {
			panic("bitvec: ReplaceRange with ones on empty range")
		}
		return
	}
	v.check(lo)
	v.check(hi)
	if ones < 0 || ones > hi-lo+1 {
		panic(fmt.Sprintf("bitvec: ReplaceRange ones=%d out of range for [%d,%d]", ones, lo, hi))
	}
	for pos := lo; pos <= hi; pos++ {
		if ones > 0 {
			v.Set(pos)
			ones--
		} else {
			v.Clear(pos)
		}
	}
}

// EqualRange reports whether v and other agree on every position of
// [lo, hi]. Both vectors must have the same length.
func (v *Vector) EqualRange(other *Vector, lo, hi int) bool {
	if v.n != other.n {
		panic("bitvec: EqualRange on vectors of different length")
	}
	for pos := lo; pos <= hi; pos++ {
		if v.Get(pos) != other.Get(pos) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	out := New(v.n)
	copy(out.words, v.words)
	return out
}

func maskRange(lo, hi uint) uint64 {
	return maskThrough(hi) &^ ((1 << lo) - 1)
}

func maskThrough(hi uint) uint64 {
	if hi == 63 {
		return ^uint64(0)
	}
	return (1 << (hi + 1)) - 1
}
