// Package profiling wires the standard pprof collectors into the
// command-line harnesses. The sweep and campaign drivers are the
// processes whose hot paths matter (the round engine, the Byzantine
// committee loop), so their binaries expose -cpuprofile/-memprofile
// directly instead of routing every investigation through go test
// (docs/OBSERVABILITY.md describes the workflow).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges a heap profile at
// memPath; either path may be empty to disable that collector. The
// returned stop function must run exactly once, at process exit on the
// success path: it stops the CPU profile and captures the heap snapshot
// (after a forced GC, so live objects — pooled scratch, inbox buffers —
// dominate over garbage).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("write heap profile: %w", err)
		}
		return f.Close()
	}, nil
}
