// Package auth models the message-authentication assumption of Section 3
// (and the PKI discussion of Section 3.2): every node can sign messages
// so that no other node can forge its signatures, and anyone can verify.
//
// The simulation uses keyed fingerprints as MAC-style signatures with a
// trusted verification oracle: an Authority issues one private Signer per
// node and verifies signatures by recomputation. Byzantine node code only
// ever receives its *own* Signer, so within the simulation it cannot
// produce a valid signature for an honest node — exactly the
// unforgeability a digital-signature scheme provides in a deployment.
// Signatures here are transferable (anyone holding one can relay it),
// which is the property authenticated broadcast protocols such as
// Dolev–Strong rely on.
package auth

import (
	"sync"

	"renaming/internal/sim"
)

// Signature is a MAC-style tag over a digest.
type Signature uint64

// SignatureBits is the accounted size of one signature (λ = 64).
const SignatureBits = 64

// Authority is the trusted key registry. Its secrets never leave the
// package; protocol code interacts through Signer values and Verify.
type Authority struct {
	secrets []uint64
}

// NewAuthority creates keys for n nodes, derived from the run seed.
func NewAuthority(seed int64, n int) *Authority {
	secrets := make([]uint64, n)
	for i := range secrets {
		secrets[i] = uint64(sim.DeriveSeed(seed, 0x617574688<<8|uint64(i))) // "auth"
	}
	return &Authority{secrets: secrets}
}

// Signer returns node's private signing handle. Harnesses must hand each
// node only its own Signer.
func (a *Authority) Signer(node int) Signer {
	return Signer{node: node, secret: a.secrets[node]}
}

// Verify reports whether sig is node's signature over digest.
func (a *Authority) Verify(node int, digest uint64, sig Signature) bool {
	if node < 0 || node >= len(a.secrets) {
		return false
	}
	return mac(a.secrets[node], digest) == sig
}

// Verifier abstracts signature verification so protocol code can run
// against either the Authority directly or a memoizing view of it.
type Verifier interface {
	Verify(node int, digest uint64, sig Signature) bool
}

var (
	_ Verifier = (*Authority)(nil)
	_ Verifier = (*Memo)(nil)
)

// Memo is a verification cache in front of the Authority: a signature
// chain relayed to all n recipients is verified once, not n times.
// Entries are only ever computed by the Memo itself against the trusted
// Authority — there is no insertion API — so Byzantine node code holding
// a Memo can query but never poison it. Verification is a pure function
// of (node, digest, sig), which keeps shared use across nodes sound.
//
// Memo is safe for concurrent use: nodes step in parallel inside the
// round engine. Reset between rounds (sim.WithRoundEnd) bounds the cache
// to one round's working set.
type Memo struct {
	authority *Authority

	mu    sync.RWMutex
	cache map[memoKey]bool
}

type memoKey struct {
	node   int
	digest uint64
	sig    Signature
}

// NewMemo returns an empty verification memo over the authority.
func (a *Authority) NewMemo() *Memo {
	return &Memo{authority: a, cache: make(map[memoKey]bool)}
}

// Verify implements Verifier, caching the authority's verdict.
func (m *Memo) Verify(node int, digest uint64, sig Signature) bool {
	key := memoKey{node: node, digest: digest, sig: sig}
	m.mu.RLock()
	v, ok := m.cache[key]
	m.mu.RUnlock()
	if ok {
		return v
	}
	v = m.authority.Verify(node, digest, sig)
	m.mu.Lock()
	m.cache[key] = v
	m.mu.Unlock()
	return v
}

// Reset discards all cached verdicts.
func (m *Memo) Reset() {
	m.mu.Lock()
	clear(m.cache)
	m.mu.Unlock()
}

// Len returns the number of cached verdicts (for tests and telemetry).
func (m *Memo) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.cache)
}

// Signer signs digests on behalf of one node.
type Signer struct {
	node   int
	secret uint64
}

// Node returns the link index the signer signs for.
func (s Signer) Node() int { return s.node }

// Sign produces the node's signature over digest.
func (s Signer) Sign(digest uint64) Signature {
	return mac(s.secret, digest)
}

// DigestInit is the initial accumulator of Digest. Together with
// DigestFold it exposes the digest's sequential structure, so verifiers
// of signature chains can keep one running accumulator instead of
// re-hashing every prefix from scratch.
const DigestInit uint64 = 0x64696765 // "dige"

// DigestFold extends a running digest with one part. Digest(parts...)
// equals folding DigestInit over parts in order.
func DigestFold(acc, part uint64) uint64 {
	return sim.SplitMix64(acc ^ part)
}

// Digest folds message fields into a single value for signing. The
// mixing is collision-resistant enough for simulation purposes (the
// adversary in scope manipulates protocols, not the hash).
func Digest(parts ...uint64) uint64 {
	acc := DigestInit
	for _, p := range parts {
		acc = DigestFold(acc, p)
	}
	return acc
}

func mac(secret, digest uint64) Signature {
	return Signature(sim.SplitMix64(sim.SplitMix64(secret) ^ digest))
}
