// Package auth models the message-authentication assumption of Section 3
// (and the PKI discussion of Section 3.2): every node can sign messages
// so that no other node can forge its signatures, and anyone can verify.
//
// The simulation uses keyed fingerprints as MAC-style signatures with a
// trusted verification oracle: an Authority issues one private Signer per
// node and verifies signatures by recomputation. Byzantine node code only
// ever receives its *own* Signer, so within the simulation it cannot
// produce a valid signature for an honest node — exactly the
// unforgeability a digital-signature scheme provides in a deployment.
// Signatures here are transferable (anyone holding one can relay it),
// which is the property authenticated broadcast protocols such as
// Dolev–Strong rely on.
package auth

import "renaming/internal/sim"

// Signature is a MAC-style tag over a digest.
type Signature uint64

// SignatureBits is the accounted size of one signature (λ = 64).
const SignatureBits = 64

// Authority is the trusted key registry. Its secrets never leave the
// package; protocol code interacts through Signer values and Verify.
type Authority struct {
	secrets []uint64
}

// NewAuthority creates keys for n nodes, derived from the run seed.
func NewAuthority(seed int64, n int) *Authority {
	secrets := make([]uint64, n)
	for i := range secrets {
		secrets[i] = uint64(sim.DeriveSeed(seed, 0x617574688<<8|uint64(i))) // "auth"
	}
	return &Authority{secrets: secrets}
}

// Signer returns node's private signing handle. Harnesses must hand each
// node only its own Signer.
func (a *Authority) Signer(node int) Signer {
	return Signer{node: node, secret: a.secrets[node]}
}

// Verify reports whether sig is node's signature over digest.
func (a *Authority) Verify(node int, digest uint64, sig Signature) bool {
	if node < 0 || node >= len(a.secrets) {
		return false
	}
	return mac(a.secrets[node], digest) == sig
}

// Signer signs digests on behalf of one node.
type Signer struct {
	node   int
	secret uint64
}

// Node returns the link index the signer signs for.
func (s Signer) Node() int { return s.node }

// Sign produces the node's signature over digest.
func (s Signer) Sign(digest uint64) Signature {
	return mac(s.secret, digest)
}

// Digest folds message fields into a single value for signing. The
// mixing is collision-resistant enough for simulation purposes (the
// adversary in scope manipulates protocols, not the hash).
func Digest(parts ...uint64) uint64 {
	acc := uint64(0x64696765) // "dige"
	for _, p := range parts {
		acc = sim.SplitMix64(acc ^ p)
	}
	return acc
}

func mac(secret, digest uint64) Signature {
	return Signature(sim.SplitMix64(sim.SplitMix64(secret) ^ digest))
}
