package auth

import "testing"

func TestSignVerify(t *testing.T) {
	a := NewAuthority(1, 5)
	digest := Digest(1, 2, 3)
	sig := a.Signer(2).Sign(digest)
	if !a.Verify(2, digest, sig) {
		t.Fatal("own signature rejected")
	}
	if a.Verify(3, digest, sig) {
		t.Fatal("signature verified for the wrong node")
	}
	if a.Verify(2, Digest(1, 2, 4), sig) {
		t.Fatal("signature verified for a different digest")
	}
	if a.Verify(-1, digest, sig) || a.Verify(5, digest, sig) {
		t.Fatal("out-of-range node verified")
	}
}

func TestUnforgeability(t *testing.T) {
	a := NewAuthority(7, 4)
	digest := Digest(42)
	// A Byzantine node holding its own signer cannot produce node 0's
	// signature: exhaustively try its own over related digests.
	byz := a.Signer(3)
	for _, d := range []uint64{digest, digest ^ 1, 0, ^uint64(0)} {
		if a.Verify(0, digest, byz.Sign(d)) {
			t.Fatal("forged signature accepted")
		}
	}
}

func TestDeterministicAcrossAuthorities(t *testing.T) {
	a1, a2 := NewAuthority(9, 3), NewAuthority(9, 3)
	d := Digest(5, 6)
	if a1.Signer(1).Sign(d) != a2.Signer(1).Sign(d) {
		t.Fatal("same seed produced different keys")
	}
	b := NewAuthority(10, 3)
	if a1.Signer(1).Sign(d) == b.Signer(1).Sign(d) {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestDigestSensitivity(t *testing.T) {
	if Digest(1, 2) == Digest(2, 1) {
		t.Fatal("digest ignores order")
	}
	if Digest(1) == Digest(1, 0) {
		t.Fatal("digest ignores length")
	}
	if got := Digest(); got == 0 {
		t.Fatal("empty digest degenerate")
	}
}

func TestSignerNode(t *testing.T) {
	if got := NewAuthority(1, 3).Signer(2).Node(); got != 2 {
		t.Fatalf("Node() = %d", got)
	}
}
