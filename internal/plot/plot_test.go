package plot

import (
	"math"
	"strings"
	"testing"
)

func demoChart() Chart {
	return Chart{
		Title: "messages vs n", XLabel: "n", YLabel: "messages",
		LogX: true, LogY: true,
		Series: []Series{
			{Name: "ours", Xs: []float64{128, 256, 512}, Ys: []float64{1e5, 2e5, 8e5}},
			{Name: "baseline", Xs: []float64{128, 256, 512}, Ys: []float64{1.4e5, 6e5, 2.8e6}},
		},
	}
}

func TestWriteSVGStructure(t *testing.T) {
	var b strings.Builder
	if err := demoChart().WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	for _, want := range []string{
		"<svg", "</svg>", "messages vs n",
		"polyline", "#2a78d6", "#1baf7a", // fixed categorical slot order
		">ours<", ">baseline<", // direct labels + legend
		"stroke-width=\"2\"", // thin lines
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Exactly one y-axis: rotated label occurs once.
	if got := strings.Count(svg, "rotate(-90"); got != 1 {
		t.Fatalf("rotated y labels = %d, want 1", got)
	}
	// Direct label + legend for 2 series: each name appears twice.
	if got := strings.Count(svg, ">ours<"); got != 2 {
		t.Fatalf("ours labels = %d, want 2 (direct + legend)", got)
	}
}

func TestWriteSVGSingleSeriesNoLegend(t *testing.T) {
	c := Chart{Title: "t", Series: []Series{{Name: "only", Xs: []float64{1, 2}, Ys: []float64{3, 4}}}}
	var b strings.Builder
	if err := c.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	// One series: direct label only, no legend duplicate.
	if got := strings.Count(b.String(), ">only<"); got != 1 {
		t.Fatalf("labels = %d, want 1", got)
	}
}

func TestWriteSVGErrors(t *testing.T) {
	var b strings.Builder
	if err := (Chart{}).WriteSVG(&b); err == nil {
		t.Fatal("empty chart accepted")
	}
	bad := Chart{LogY: true, Series: []Series{{Name: "x", Xs: []float64{1}, Ys: []float64{0}}}}
	if err := bad.WriteSVG(&b); err == nil {
		t.Fatal("non-positive log value accepted")
	}
	mismatch := Chart{Series: []Series{{Name: "x", Xs: []float64{1, 2}, Ys: []float64{1}}}}
	if err := mismatch.WriteSVG(&b); err == nil {
		t.Fatal("length mismatch accepted")
	}
	many := Chart{Series: make([]Series, 7)}
	for i := range many.Series {
		many.Series[i] = Series{Name: "s", Xs: []float64{1}, Ys: []float64{1}}
	}
	if err := many.WriteSVG(&b); err == nil {
		t.Fatal("7 series accepted beyond the 6 slots")
	}
}

func TestTicksLinear(t *testing.T) {
	out := ticks(0, 97, false)
	if len(out) < 4 || len(out) > 9 {
		t.Fatalf("tick count %d: %v", len(out), out)
	}
	if out[0] > 0 || out[len(out)-1] < 97 {
		t.Fatalf("ticks do not span the data: %v", out)
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatalf("ticks not increasing: %v", out)
		}
	}
}

func TestTicksLog(t *testing.T) {
	out := ticks(130, 54000, true)
	want := []float64{100, 1000, 10000, 100000}
	if len(out) != len(want) {
		t.Fatalf("log ticks %v", out)
	}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Fatalf("log ticks %v", out)
		}
	}
}

func TestTickLabel(t *testing.T) {
	cases := map[float64]string{
		0: "0", 5: "5", 1500: "1.5k", 64000: "64k",
		2_500_000: "2.5M", 3e9: "3G", 0.25: "0.25",
	}
	for v, want := range cases {
		if got := tickLabel(v); got != want {
			t.Errorf("tickLabel(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestNiceNum(t *testing.T) {
	if niceNum(97, false) != 100 || niceNum(0.23, true) != 0.2 {
		t.Fatalf("niceNum wrong: %v %v", niceNum(97, false), niceNum(0.23, true))
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatalf("escape = %q", got)
	}
}
