// Package plot renders the experiment harness's sweep results as static
// SVG line charts — the "figures" of the reproduction. The visual rules
// follow the repository's data-viz conventions: a single y-axis, thin
// 2px lines with ≥8px markers, a recessive grid, categorical colors in a
// fixed validated order (worst adjacent CVD ΔE 73.6 on the light
// surface; the aqua slot sits below 3:1 contrast so every series is also
// direct-labeled), and all text in text tokens rather than series colors.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one line of a chart.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// Chart is a single-axis line chart, optionally log-scaled.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []Series
}

// Validated categorical slots (fixed order, never cycled) and text/surface
// tokens from the reference palette.
var (
	seriesColors = []string{"#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948"}

	surface       = "#fcfcfb"
	textPrimary   = "#0b0b0b"
	textSecondary = "#52514e"
	gridColor     = "#e8e8e6"
	axisColor     = "#d0cfcc"
)

// Geometry constants.
const (
	width   = 760
	height  = 440
	marginL = 78
	marginR = 170
	marginT = 52
	marginB = 56
)

// WriteSVG renders the chart.
func (c Chart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	if len(c.Series) > len(seriesColors) {
		return fmt.Errorf("plot: %d series exceed the %d categorical slots — fold into fewer series",
			len(c.Series), len(seriesColors))
	}
	xMin, xMax, yMin, yMax, err := c.extent()
	if err != nil {
		return err
	}
	xt := ticks(xMin, xMax, c.LogX)
	yt := ticks(yMin, yMax, c.LogY)
	if len(xt) > 0 {
		xMin, xMax = math.Min(xMin, xt[0]), math.Max(xMax, xt[len(xt)-1])
	}
	if len(yt) > 0 {
		yMin, yMax = math.Min(yMin, yt[0]), math.Max(yMax, yt[len(yt)-1])
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", width, height, surface)
	fmt.Fprintf(&b, `<text x="%d" y="28" font-size="15" font-weight="600" fill="%s">%s</text>`+"\n",
		marginL, textPrimary, escape(c.Title))

	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	sx := func(x float64) float64 {
		return marginL + float64(plotW)*frac(x, xMin, xMax, c.LogX)
	}
	sy := func(y float64) float64 {
		return float64(marginT+plotH) - float64(plotH)*frac(y, yMin, yMax, c.LogY)
	}

	// Recessive grid + y ticks.
	for _, v := range yt {
		y := sy(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			marginL, y, marginL+plotW, y, gridColor)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			marginL-8, y+4, textSecondary, tickLabel(v))
	}
	// x ticks.
	for _, v := range xt {
		x := sx(v)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
			x, marginT+plotH, x, marginT+plotH+5, axisColor)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
			x, marginT+plotH+19, textSecondary, tickLabel(v))
	}
	// Axis lines.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH, axisColor)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH, axisColor)
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" fill="%s" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-14, textSecondary, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="18" y="%d" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 18 %d)">%s</text>`+"\n",
		marginT+plotH/2, textSecondary, marginT+plotH/2, escape(c.YLabel))

	// Series: 2px lines, 8px markers, direct end labels in text ink.
	// Label rows are nudged apart when series end at (nearly) the same
	// point, so coinciding lines stay readable.
	labelYs := make([]float64, 0, len(c.Series))
	for si, s := range c.Series {
		color := seriesColors[si]
		var points []string
		for i := range s.Xs {
			points = append(points, fmt.Sprintf("%.1f,%.1f", sx(s.Xs[i]), sy(s.Ys[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`+"\n",
			strings.Join(points, " "), color)
		for i := range s.Xs {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s" stroke="%s" stroke-width="2"/>`+"\n",
				sx(s.Xs[i]), sy(s.Ys[i]), color, surface)
		}
		// Direct label at the last point (relief rule for low-contrast slots).
		lastX, lastY := sx(s.Xs[len(s.Xs)-1]), sy(s.Ys[len(s.Ys)-1])
		labelY := lastY
		for collides(labelY, labelYs) {
			labelY += 14
		}
		labelYs = append(labelYs, labelY)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`+"\n", lastX+10, labelY, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`+"\n",
			lastX+18, labelY+4, textPrimary, escape(s.Name))
	}

	// Legend (always present for ≥2 series; a single series is named by
	// its direct label and the title).
	if len(c.Series) >= 2 {
		lx, ly := marginL+plotW+14, marginT+6
		for si, s := range c.Series {
			y := ly + si*20
			fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="4" fill="%s"/>`+"\n", lx, y, seriesColors[si])
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`+"\n",
				lx+10, y+4, textPrimary, escape(s.Name))
		}
	}

	b.WriteString("</svg>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

// collides reports whether y lands within one label height of any
// already-placed label.
func collides(y float64, placed []float64) bool {
	for _, p := range placed {
		if math.Abs(y-p) < 13 {
			return true
		}
	}
	return false
}

// extent computes the data bounds, validating log-scale positivity.
func (c Chart) extent() (xMin, xMax, yMin, yMax float64, err error) {
	first := true
	for _, s := range c.Series {
		if len(s.Xs) != len(s.Ys) || len(s.Xs) == 0 {
			return 0, 0, 0, 0, fmt.Errorf("plot: series %q has %d xs and %d ys", s.Name, len(s.Xs), len(s.Ys))
		}
		for i := range s.Xs {
			x, y := s.Xs[i], s.Ys[i]
			if (c.LogX && x <= 0) || (c.LogY && y <= 0) {
				return 0, 0, 0, 0, fmt.Errorf("plot: series %q has non-positive value on a log axis", s.Name)
			}
			if first {
				xMin, xMax, yMin, yMax = x, x, y, y
				first = false
				continue
			}
			xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
			yMin, yMax = math.Min(yMin, y), math.Max(yMax, y)
		}
	}
	if !c.LogY && yMin > 0 {
		yMin = 0 // bars-at-zero instinct: anchor linear magnitude axes at 0
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	return xMin, xMax, yMin, yMax, nil
}

// frac maps v into [0,1] within [lo,hi], linearly or logarithmically.
func frac(v, lo, hi float64, log bool) float64 {
	if log {
		return (math.Log10(v) - math.Log10(lo)) / (math.Log10(hi) - math.Log10(lo))
	}
	return (v - lo) / (hi - lo)
}

// ticks produces 4–8 "nice" tick values spanning [lo, hi].
func ticks(lo, hi float64, log bool) []float64 {
	if log {
		var out []float64
		for e := math.Floor(math.Log10(lo)); e <= math.Ceil(math.Log10(hi)); e++ {
			out = append(out, math.Pow(10, e))
		}
		return out
	}
	span := niceNum(hi-lo, false)
	step := niceNum(span/5, true)
	start := math.Floor(lo/step) * step
	end := math.Ceil(hi/step) * step
	var out []float64
	for v := start; v <= end+step/2; v += step {
		out = append(out, v)
	}
	return out
}

// niceNum rounds x to a "nice" value (1, 2, or 5 times a power of 10).
func niceNum(x float64, round bool) float64 {
	exp := math.Floor(math.Log10(x))
	f := x / math.Pow(10, exp)
	var nf float64
	if round {
		switch {
		case f < 1.5:
			nf = 1
		case f < 3:
			nf = 2
		case f < 7:
			nf = 5
		default:
			nf = 10
		}
	} else {
		switch {
		case f <= 1:
			nf = 1
		case f <= 2:
			nf = 2
		case f <= 5:
			nf = 5
		default:
			nf = 10
		}
	}
	return nf * math.Pow(10, exp)
}

// tickLabel formats a tick value compactly (1.2M, 64k, 0.5).
func tickLabel(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return trimZero(v/1e9) + "G"
	case av >= 1e6:
		return trimZero(v/1e6) + "M"
	case av >= 1e3:
		return trimZero(v/1e3) + "k"
	case av == 0:
		return "0"
	case av < 1:
		return fmt.Sprintf("%.2g", v)
	default:
		return trimZero(v)
	}
}

func trimZero(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	return strings.TrimSuffix(s, ".0")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
