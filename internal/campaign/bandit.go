package campaign

import "math"

// ucb1 is a deterministic UCB1 bandit over generator families: the
// search allocates execution budget to the family whose strategies have
// earned the highest mean reward plus an exploration bonus. Every
// unpulled arm is tried before any exploitation, and all ties break
// toward the lowest index, so the pull sequence is a pure function of
// the reward sequence — a load-bearing property for the search's
// bit-identical-at-any-worker-count guarantee.
type ucb1 struct {
	pulls []int
	sums  []float64
	total int
}

func newUCB1(arms int) *ucb1 {
	return &ucb1{pulls: make([]int, arms), sums: make([]float64, arms)}
}

// PickBatch plans k pulls for one synchronized generation. Rewards only
// arrive after the whole batch is evaluated, so each pick charges a
// virtual pull: the exploration bonus shrinks for arms already chosen
// in this batch and the batch spreads instead of collapsing onto the
// current leader (the standard batched-UCB trick).
func (b *ucb1) PickBatch(k int) []int {
	virtual := append([]int(nil), b.pulls...)
	total := b.total
	arms := make([]int, 0, k)
	for len(arms) < k {
		arm := -1
		for i, p := range virtual {
			if p == 0 {
				arm = i
				break
			}
		}
		if arm < 0 {
			bestScore := math.Inf(-1)
			for i := range virtual {
				mean := 0.0
				if b.pulls[i] > 0 {
					mean = b.sums[i] / float64(b.pulls[i])
				}
				score := mean + math.Sqrt(2*math.Log(float64(total))/float64(virtual[i]))
				if score > bestScore {
					arm, bestScore = i, score
				}
			}
		}
		arms = append(arms, arm)
		virtual[arm]++
		total++
	}
	return arms
}

// Reward records one pull's outcome; r is clamped into [0, 1].
func (b *ucb1) Reward(arm int, r float64) {
	if arm < 0 || arm >= len(b.pulls) {
		return
	}
	r = math.Min(1, math.Max(0, r))
	b.pulls[arm]++
	b.total++
	b.sums[arm] += r
}

// Mean returns the arm's mean reward (0 when unpulled) — reporting only.
func (b *ucb1) Mean(arm int) float64 {
	if b.pulls[arm] == 0 {
		return 0
	}
	return b.sums[arm] / float64(b.pulls[arm])
}
