package campaign

import (
	"fmt"
	"math"
	"sort"

	"renaming"
	"renaming/internal/adversary"
	"renaming/internal/runner"
	"renaming/internal/sim"
)

// DeriveSeed stream labels for the search: per-generation planning
// ("spln"), fresh strategy draws ("sfrs").
const (
	searchPlanLabel uint64 = 0x73706c6e
	searchGenLabel  uint64 = 0x73667273
)

// Objective names the search fitness — what makes an adversary strategy
// "good" from the adversary's point of view.
type Objective string

const (
	// ObjectiveRounds maximizes the execution's round count: the search
	// hunts for killer schedules that push the algorithm toward its
	// deterministic round ceiling.
	ObjectiveRounds Objective = "rounds"
	// ObjectiveEnvelope maximizes the per-execution honest-message
	// envelope ratio honestMessages / (EnvelopeConstant·(f+log n)·n·log n):
	// the search hunts for strategies that stress the Theorem 1.2
	// message envelope.
	ObjectiveEnvelope Objective = "envelope"
)

// SearchSpec configures one fitness-guided adversary search. Where a
// campaign samples strategies independently, a search spends the same
// execution budget adaptively: a UCB1 bandit allocates fresh draws
// across generator families, elite strategies are greedily mutated
// (move/add/drop/retarget/toggle-midsend), and every few generations a
// coordinate-descent pass locally optimizes the best schedule's crash
// rounds. Execution i evaluates at Spec.ExecSeed(i) — the exact seed
// stream a sampling campaign with the same master seed consumes — so a
// search/sampling comparison differs only in which strategies the
// budget is spent on, and the search stays bit-identical at any worker
// count (seeds are fixed by global execution index before scheduling).
type SearchSpec struct {
	// Base is the campaign configuration every candidate is evaluated
	// under (algo, sizes, fault budget, oracle, workers, sinks).
	// Base.Executions and Base.Generator are ignored: BudgetExecs bounds
	// the search and the bandit spans all families for the algo.
	Base Spec
	// Objective selects the fitness; default ObjectiveRounds.
	Objective Objective
	// BudgetExecs is the total number of executions the search may
	// spend — the resource a search/sampling comparison equalizes.
	BudgetExecs int
	// PopSize is the number of candidates evaluated per generation
	// (default 16).
	PopSize int
	// EliteSize is the elite pool carried between generations as
	// mutation parents (default 4).
	EliteSize int
}

// Candidate is one evaluated strategy.
type Candidate struct {
	// Strategy is the replayable strategy (shrinkable via the shared
	// ddmin path when it violates an invariant).
	Strategy Strategy `json:"strategy"`
	// Fitness is the objective value at the search's evaluation seed.
	Fitness float64 `json:"fitness"`
	// Metrics is the evaluation's full telemetry.
	Metrics runner.Metrics `json:"metrics"`
	// Gen and Exec locate the evaluation (generation index, global
	// execution index).
	Gen  int `json:"gen"`
	Exec int `json:"exec"`
	// Op records how the candidate was produced: "fresh", "mutate", or
	// "descent".
	Op string `json:"op"`
}

// GenerationStat summarizes one generation.
type GenerationStat struct {
	Gen   int     `json:"gen"`
	Kind  string  `json:"kind"` // "explore" | "descent"
	Execs int     `json:"execs"`
	Best  float64 `json:"best"`
	Mean  float64 `json:"mean"`
}

// ArmStat reports one generator family's bandit allocation.
type ArmStat struct {
	Kind  GeneratorKind `json:"kind"`
	Pulls int           `json:"pulls"`
	Mean  float64       `json:"mean"`
}

// SearchOutcome is a completed search.
type SearchOutcome struct {
	// Base is the normalized evaluation spec (Executions pinned to 1;
	// pass it to Shrink for any of the violations below).
	Base Spec
	// Objective is the resolved objective.
	Objective Objective
	// Best is the highest-fitness candidate (earliest on ties).
	Best Candidate
	// ExecsUsed is the number of executions actually spent (≤ budget).
	ExecsUsed int
	// Generations summarizes the trajectory, in order.
	Generations []GenerationStat
	// Arms is the final bandit state per generator family.
	Arms []ArmStat
	// Violations are oracle breaches found along the way, in evaluation
	// order — a search doubles as a guided bug hunt.
	Violations []Violation
}

// descentEvery is the cadence of coordinate-descent generations: every
// fourth generation refines the incumbent instead of exploring.
const descentEvery = 4

// planned is one not-yet-evaluated candidate.
type planned struct {
	strat Strategy
	op    string
}

// Search runs the fitness-guided adversary search. Determinism
// contract: the outcome — and any JSONL telemetry written through
// Base.Sinks (with volatile fields omitted) — is bit-identical at any
// Base.Workers setting, because planning and reduction are sequential,
// evaluation fans out through the runner's in-order pool at one fixed
// seed, and the bandit/elite updates consume records in point order.
func Search(spec SearchSpec) (*SearchOutcome, error) {
	base := spec.Base
	base.Executions = 1
	base.Generator = ""
	base, err := base.withDefaults()
	if err != nil {
		return nil, err
	}
	if spec.BudgetExecs <= 0 {
		return nil, fmt.Errorf("campaign: search needs a positive execution budget, got %d", spec.BudgetExecs)
	}
	if spec.PopSize <= 0 {
		spec.PopSize = 16
	}
	if spec.EliteSize <= 0 {
		spec.EliteSize = 4
	}
	switch spec.Objective {
	case "":
		spec.Objective = ObjectiveRounds
	case ObjectiveRounds, ObjectiveEnvelope:
	default:
		return nil, fmt.Errorf("campaign: unknown objective %q", spec.Objective)
	}

	arms := CrashGenerators()
	if base.Algo == AlgoByzantine {
		arms = ByzGenerators()
	}
	armIndex := make(map[GeneratorKind]int, len(arms))
	for i, kind := range arms {
		armIndex[kind] = i
	}
	bandit := newUCB1(len(arms))

	out := &SearchOutcome{Base: base, Objective: spec.Objective}
	out.Best.Fitness = math.Inf(-1)
	var elites []Candidate
	fresh := 0

	for gen := 0; out.ExecsUsed < spec.BudgetExecs; gen++ {
		want := spec.PopSize
		if left := spec.BudgetExecs - out.ExecsUsed; want > left {
			want = left
		}
		rng := sim.NewRand(base.Seed, searchPlanLabel^uint64(gen)<<8)

		kind := "explore"
		var plan []planned
		if gen%descentEvery == descentEvery-1 && !math.IsInf(out.Best.Fitness, -1) {
			kind = "descent"
			plan = planDescent(out.Best.Strategy, base.genSpec(), want)
			if len(plan) == 0 {
				// No crash coordinate to descend on (e.g. the incumbent
				// is the empty schedule): exploit instead — re-evaluate
				// the incumbent at this generation's fresh execution
				// seeds, sharpening the max over its seed distribution.
				for len(plan) < want {
					plan = append(plan, planned{strat: out.Best.Strategy, op: "exploit"})
				}
			}
		}
		for len(plan) < want {
			if len(elites) > 0 && rng.Intn(2) == 0 {
				parent := elites[rng.Intn(len(elites))]
				gs := base.genSpec()
				gs.Kind = parent.Strategy.Generator
				plan = append(plan, planned{
					strat: mutateStrategy(parent.Strategy, gs, rng),
					op:    "mutate",
				})
				continue
			}
			// Fresh draws for the remaining slots come as one bandit
			// batch so the family allocation is planned against the
			// rewards known so far.
			for _, arm := range bandit.PickBatch(want - len(plan)) {
				gs := base.genSpec()
				gs.Kind = arms[arm]
				seed := sim.DeriveSeed(base.Seed, searchGenLabel^uint64(fresh)<<8)
				fresh++
				strat, err := Generate(gs, seed)
				if err != nil {
					return nil, err
				}
				plan = append(plan, planned{strat: strat, op: "fresh"})
			}
		}

		cands, viols, err := evaluate(base, spec.Objective, plan, gen, out.ExecsUsed)
		if err != nil {
			return nil, err
		}
		out.Violations = append(out.Violations, viols...)

		// Sequential reduction in evaluation order: bandit rewards,
		// elite pool, incumbent. Ties keep the earliest candidate.
		stat := GenerationStat{Gen: gen, Kind: kind, Execs: len(cands), Best: math.Inf(-1)}
		for _, c := range cands {
			if arm, ok := armIndex[c.Strategy.Generator]; ok {
				bandit.Reward(arm, normalizeReward(base, spec.Objective, c.Fitness))
			}
			if c.Fitness > out.Best.Fitness {
				out.Best = c
			}
			if c.Fitness > stat.Best {
				stat.Best = c.Fitness
			}
			stat.Mean += c.Fitness / float64(len(cands))
		}
		elites = topElites(elites, cands, spec.EliteSize)
		out.Generations = append(out.Generations, stat)
		out.ExecsUsed += len(cands)
	}

	for i, kindArm := range arms {
		out.Arms = append(out.Arms, ArmStat{Kind: kindArm, Pulls: bandit.pulls[i], Mean: bandit.Mean(i)})
	}
	return out, nil
}

// planDescent emits coordinate-descent neighbours of the incumbent:
// each crash event's round shifted by ±1 (clamped to the round span),
// one coordinate at a time, truncated to the generation's budget.
func planDescent(best Strategy, gs GenSpec, want int) []planned {
	rounds := gs.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	var plan []planned
	for i := range best.Schedule {
		for _, delta := range []int{-1, 1} {
			r := best.Schedule[i].Round + delta
			if r < 0 || r >= rounds || len(plan) >= want {
				continue
			}
			variant := best
			variant.Schedule = append([]adversary.Event(nil), best.Schedule...)
			variant.Schedule[i].Round = r
			plan = append(plan, planned{strat: variant, op: "descent"})
		}
	}
	return plan
}

// evaluate fans the planned candidates across the runner pool — each
// at its global execution's deterministic seed — and scores them in
// point order.
func evaluate(base Spec, obj Objective, plan []planned, gen, execBase int) ([]Candidate, []Violation, error) {
	violations := make([][]Violation, len(plan))
	points := make([]runner.Point, len(plan))
	for j := range plan {
		j := j
		strat := plan[j].strat
		points[j] = runner.Point{
			Experiment: "campaign-search",
			Name:       fmt.Sprintf("%s/%s/gen=%d/cand=%d", base.Algo, strat.Generator, gen, j),
			Seed:       base.ExecSeed(execBase + j),
			FixedSeed:  true,
			Params: map[string]string{
				"algo": string(base.Algo), "gen": string(strat.Generator),
				"n": fmt.Sprint(base.N), "N": fmt.Sprint(base.BigN),
				"budget": fmt.Sprint(base.Budget),
				"search": "1", "generation": fmt.Sprint(gen),
				"op": plan[j].op, "exec": fmt.Sprint(execBase + j),
			},
			Run: func(seed int64) (runner.Metrics, error) {
				ids, err := renaming.GenerateIDs(base.N, base.BigN, renaming.IDsEven, seed)
				if err != nil {
					return runner.Metrics{}, err
				}
				res, err := replayStrategy(base, strat, seed, ids)
				if err != nil {
					return runner.Metrics{}, err
				}
				viols := base.Oracle.Check(base.N, ids, res)
				for vi := range viols {
					viols[vi].Exec = execBase + j
					viols[vi].Seed = seed
					viols[vi].Strategy = strat
				}
				violations[j] = viols
				m := runner.FromResult(res, base.N)
				m.Violations = Codes(viols)
				return m, nil
			},
		}
	}
	records, err := runner.Run(points, runner.Options{Workers: base.Workers, Sinks: base.Sinks})
	if err != nil {
		return nil, nil, err
	}
	cands := make([]Candidate, len(records))
	var allViols []Violation
	for j, rec := range records {
		if rec.Err != "" {
			return nil, nil, fmt.Errorf("campaign: search gen %d cand %d: %s", gen, j, rec.Err)
		}
		cands[j] = Candidate{
			Strategy: plan[j].strat,
			Fitness:  Fitness(base, obj, rec.Metrics),
			Metrics:  rec.Metrics,
			Gen:      gen,
			Exec:     execBase + j,
			Op:       plan[j].op,
		}
		allViols = append(allViols, violations[j]...)
	}
	return cands, allViols, nil
}

// Fitness scores one execution's telemetry under the objective. It is
// exported so a plain sampling campaign can be scored with the same
// yardstick (the search-vs-sampling comparison of EXPERIMENTS.md E10).
func Fitness(spec Spec, obj Objective, m runner.Metrics) float64 {
	if obj == ObjectiveEnvelope {
		n := float64(spec.N)
		logn := math.Log2(math.Max(2, n))
		f := float64(m.Crashes + m.Byzantine)
		return float64(m.HonestMessages) / (EnvelopeConstant * (f + logn) * n * logn)
	}
	return float64(m.Rounds)
}

// BestFitness scores every record and returns the maximum — the
// sampling baseline's best under the search's yardstick.
func BestFitness(spec Spec, obj Objective, records []runner.Record) float64 {
	best := math.Inf(-1)
	for _, rec := range records {
		if f := Fitness(spec, obj, rec.Metrics); f > best {
			best = f
		}
	}
	return best
}

// normalizeReward maps a fitness into the bandit's [0, 1] reward scale:
// rounds against the oracle's round ceiling, envelope ratios clamped
// (both envelopes are exactly the "1.0 = at the theorem bound" scale).
func normalizeReward(spec Spec, obj Objective, fitness float64) float64 {
	if obj == ObjectiveRounds {
		if ceil := spec.Oracle.Expect.RoundCeiling; ceil > 0 {
			return fitness / float64(ceil)
		}
		// No round ceiling (e.g. a custom oracle): squash monotonically.
		return 1 - 1/(1+math.Max(0, fitness))
	}
	return fitness
}

// topElites merges the previous elite pool with a generation's
// candidates and keeps the EliteSize best; the stable sort keeps
// earlier candidates ahead on fitness ties, so the pool is
// deterministic in evaluation order.
func topElites(elites, cands []Candidate, size int) []Candidate {
	pool := append(append([]Candidate(nil), elites...), cands...)
	sort.SliceStable(pool, func(a, b int) bool { return pool[a].Fitness > pool[b].Fitness })
	if len(pool) > size {
		pool = pool[:size]
	}
	return pool
}
