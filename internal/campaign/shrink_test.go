package campaign

import (
	"os"
	"path/filepath"
	"testing"

	"renaming/internal/adversary"
)

// TestShrinkScheduleToPlantedCore plants a violation predicate — the
// "uniqueness breach" reproduces iff the schedule still crashes both
// node 3 and node 7 — inside a 16-event schedule and checks the
// shrinker reduces it to exactly the two-event core with grounded
// attributes.
func TestShrinkScheduleToPlantedCore(t *testing.T) {
	strat, err := Generate(GenSpec{Kind: GenMixed, N: 64, Budget: 16, Rounds: 30}, 12345)
	if err != nil {
		t.Fatal(err)
	}
	// Ensure the core events are present regardless of what the
	// generator drew.
	strat.Schedule = append(strat.Schedule,
		adversary.Event{Round: 9, Node: 3, MidSend: true},
		adversary.Event{Round: 17, Node: 7, MidSend: true},
	)
	fails := func(s Strategy) (bool, error) {
		has := map[int]bool{}
		for _, ev := range s.Schedule {
			has[ev.Node] = true
		}
		return has[3] && has[7], nil
	}
	shrunk, err := ShrinkSchedule(strat, fails)
	if err != nil {
		t.Fatal(err)
	}
	if len(shrunk.Schedule) != 2 {
		t.Fatalf("want 2-event core, got %d: %+v", len(shrunk.Schedule), shrunk.Schedule)
	}
	core := map[int]bool{}
	for _, ev := range shrunk.Schedule {
		core[ev.Node] = true
		// Attribute simplification must have grounded both fields: the
		// predicate is insensitive to them.
		if ev.MidSend || ev.Round != 0 {
			t.Fatalf("event not simplified: %+v", ev)
		}
	}
	if !core[3] || !core[7] {
		t.Fatalf("core lost the planted nodes: %+v", shrunk.Schedule)
	}
	// The shrunk strategy still fails — the shrinker's contract.
	still, _ := fails(shrunk)
	if !still {
		t.Fatal("shrunk strategy no longer fails")
	}
}

// TestShrinkByzantineToPlantedCore: same idea over a corruption set.
func TestShrinkByzantineToPlantedCore(t *testing.T) {
	strat := Strategy{Generator: GenByzUniform, Byzantine: []ByzAssignment{
		{Link: 1, Behavior: "silent"}, {Link: 4, Behavior: "equivocate"},
		{Link: 6, Behavior: "spam"}, {Link: 9, Behavior: "splitworld"},
		{Link: 12, Behavior: "silent"}, {Link: 15, Behavior: "minoritysplit"},
	}}
	fails := func(s Strategy) (bool, error) {
		for _, a := range s.Byzantine {
			if a.Link == 9 {
				return true, nil
			}
		}
		return false, nil
	}
	shrunk, err := ShrinkByzantine(strat, fails)
	if err != nil {
		t.Fatal(err)
	}
	if len(shrunk.Byzantine) != 1 || shrunk.Byzantine[0].Link != 9 {
		t.Fatalf("want single corruption of link 9, got %+v", shrunk.Byzantine)
	}
}

// TestBrokenOracleDetectShrinkReplay is the end-to-end fixture demanded
// by the issue: a deliberately broken oracle (round ceiling 1 — every
// execution violates it) must produce detections, shrink to a
// replayable artifact, survive a save/load roundtrip, and replay.
func TestBrokenOracleDetectShrinkReplay(t *testing.T) {
	broken := CrashExpectation(32)
	broken.RoundCeiling = 1 // impossible: the algorithm needs Θ(log n) rounds
	spec := Spec{
		Algo: AlgoCrash, N: 32, Executions: 5, Seed: 77,
		Budget: BudgetDefault,
		Oracle: &Oracle{Expect: broken},
	}
	out, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 5 {
		t.Fatalf("broken oracle should flag every execution: got %d of 5", len(out.Violations))
	}
	v := out.Violations[0]
	if v.Invariant != InvRoundCeiling {
		t.Fatalf("want %s, got %s", InvRoundCeiling, v.Invariant)
	}

	artifact, err := Shrink(out.Spec, v)
	if err != nil {
		t.Fatal(err)
	}
	// The breach does not depend on the schedule at all, so the shrinker
	// must reduce it to the empty schedule — the minimal reproducer.
	if len(artifact.Strategy.Schedule) != 0 {
		t.Fatalf("want empty shrunk schedule, got %+v", artifact.Strategy.Schedule)
	}

	path := filepath.Join(t.TempDir(), "repro.json")
	if err := SaveArtifact(artifact, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed != v.Seed || loaded.Invariant != InvRoundCeiling || loaded.N != 32 {
		t.Fatalf("artifact roundtrip lost fields: %+v", loaded)
	}

	res, viols, err := loaded.Replay()
	if err != nil {
		t.Fatal(err)
	}
	// Replay uses the *correct* default oracle, so no violation recurs —
	// but the recorded breach must still be visible in the result.
	if len(viols) != 0 {
		t.Fatalf("default oracle flagged a correct run: %+v", viols)
	}
	if res.Rounds <= 1 {
		t.Fatalf("replayed run took %d rounds; the recorded breach (rounds > 1) vanished", res.Rounds)
	}
	if !res.Unique {
		t.Fatal("replayed run lost uniqueness")
	}
}

// TestArtifactVersionAndLegacyReplay: new artifacts carry the current
// format version; a pre-versioning artifact — no version field, salt-
// less mid-send events — still loads and replays (the schedule falls
// back to the historical index-keyed filter stream), and an artifact
// from a future format is rejected instead of being misread.
func TestArtifactVersionAndLegacyReplay(t *testing.T) {
	broken := CrashExpectation(32)
	broken.RoundCeiling = 1
	out, err := Run(Spec{
		Algo: AlgoCrash, N: 32, Executions: 1, Seed: 77,
		Budget: BudgetDefault, Oracle: &Oracle{Expect: broken},
	})
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := Shrink(out.Spec, out.Violations[0])
	if err != nil {
		t.Fatal(err)
	}
	if artifact.Version != ArtifactVersion {
		t.Fatalf("new artifact has version %d, want %d", artifact.Version, ArtifactVersion)
	}

	dir := t.TempDir()
	legacy := filepath.Join(dir, "legacy.json")
	// A hand-rolled pre-Salt artifact: note the mid-send events carry no
	// "salt" key — exactly what older releases wrote.
	if err := os.WriteFile(legacy, []byte(`{
		"algo": "crash", "n": 32, "N": 512, "seed": 99,
		"invariant": "round-ceiling", "detail": "legacy fixture",
		"strategy": {
			"generator": "trickle",
			"schedule": [
				{"round": 2, "node": 5, "midSend": true},
				{"round": 6, "node": 11, "midSend": true}
			],
			"scheduleSeed": 1234
		}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Version != 0 {
		t.Fatalf("legacy artifact reports version %d, want 0", loaded.Version)
	}
	for _, ev := range loaded.Strategy.Schedule {
		if ev.Salt != 0 {
			t.Fatalf("legacy event grew a salt: %+v", ev)
		}
	}
	res, viols, err := loaded.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Fatalf("legacy replay violated the oracle: %+v", viols)
	}
	if !res.Unique || res.Crashes != 2 {
		t.Fatalf("legacy replay wrong: unique=%v crashes=%d, want true/2", res.Unique, res.Crashes)
	}

	future := filepath.Join(dir, "future.json")
	if err := os.WriteFile(future, []byte(`{"version": 99, "algo": "crash", "n": 32, "N": 512, "seed": 1, "invariant": "uniqueness", "strategy": {"generator": "mixed"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArtifact(future); err == nil {
		t.Fatal("future-format artifact accepted")
	}
}

// TestShrinkRefusesNonReproducing: a violation that does not reproduce
// under its own (seed, strategy) must be rejected, not "shrunk".
func TestShrinkRefusesNonReproducing(t *testing.T) {
	spec := Spec{Algo: AlgoCrash, N: 32, Executions: 1, Seed: 1, Budget: BudgetDefault}
	norm, err := spec.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	fake := Violation{
		Exec: 0, Seed: norm.ExecSeed(0),
		Invariant: InvUniqueness, Detail: "fabricated",
		Strategy: Strategy{Generator: GenMixed},
	}
	if _, err := Shrink(norm, fake); err == nil {
		t.Fatal("expected refusal for a non-reproducing violation")
	}
}

// TestShrinkChurnToPlantedCore: the churn shrinker reduces an
// epoch-keyed event list to a planted two-event core, grounds the
// surviving events' round/mid-send attributes, and never moves an
// event across epochs.
func TestShrinkChurnToPlantedCore(t *testing.T) {
	strat, err := Generate(GenSpec{
		Kind: GenChurn, N: 64, Budget: 14, Rounds: 30, Epochs: 10, BatchMax: 8,
	}, 4242)
	if err != nil {
		t.Fatal(err)
	}
	strat.Churn = append(strat.Churn,
		ChurnEvent{Epoch: 3, Event: adversary.Event{Round: 9, Node: 2, MidSend: true}},
		ChurnEvent{Epoch: 7, Event: adversary.Event{Round: 17, Node: 5, MidSend: true}},
	)
	fails := func(s Strategy) (bool, error) {
		has := map[int]bool{}
		for _, ev := range s.Churn {
			has[ev.Epoch] = true
		}
		return has[3] && has[7], nil
	}
	shrunk, err := ShrinkChurn(strat, fails)
	if err != nil {
		t.Fatal(err)
	}
	if len(shrunk.Churn) != 2 {
		t.Fatalf("want 2-event core, got %d: %+v", len(shrunk.Churn), shrunk.Churn)
	}
	core := map[int]bool{}
	for _, ev := range shrunk.Churn {
		core[ev.Epoch] = true
		if ev.MidSend || ev.Round != 0 {
			t.Fatalf("event not simplified: %+v", ev)
		}
	}
	if !core[3] || !core[7] {
		t.Fatalf("core lost the planted epochs: %+v", shrunk.Churn)
	}
	if still, _ := fails(shrunk); !still {
		t.Fatal("shrunk strategy no longer fails")
	}
}

// TestServiceArtifactRoundtripReplay: a hand-built service artifact —
// churn strategy plus epoch count — survives save/load and replays the
// whole trace through the service oracle, returning trace-aggregate
// metrics and zero violations (the service is correct).
func TestServiceArtifactRoundtripReplay(t *testing.T) {
	strat, err := Generate(GenSpec{
		Kind: GenChurn, N: 32, Budget: 8,
		Rounds: CrashRoundCeiling(8), Epochs: 12, BatchMax: 8,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	artifact := &ReproArtifact{
		Version: ArtifactVersion,
		Algo:    AlgoService, N: 32, BigN: 512, Seed: 5, Epochs: 12,
		Invariant: InvUniqueness, Detail: "fixture", Strategy: strat,
	}
	path := filepath.Join(t.TempDir(), "service.json")
	if err := SaveArtifact(artifact, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Epochs != 12 || loaded.Algo != AlgoService {
		t.Fatalf("artifact roundtrip lost fields: %+v", loaded)
	}
	res, viols, err := loaded.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Fatalf("service replay flagged a correct trace: %+v", viols)
	}
	if res == nil || !res.Unique {
		t.Fatalf("service replay lost uniqueness: %+v", res)
	}
	if res.Rounds <= 0 || res.Messages <= 0 {
		t.Fatalf("service replay returned empty aggregate metrics: %+v", res)
	}
}
