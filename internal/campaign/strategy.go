// Package campaign is the randomized adversary-campaign engine: it
// generates seeded adversary strategies (crash schedules, Byzantine
// placements and behaviours), fans thousands of executions across the
// internal/runner worker pool, checks every execution against an
// invariant oracle derived from the paper's theorems, reduces campaigns
// to tail statistics (max/p50/p95/p99 with bootstrap CIs) compared
// against the theorem envelopes, and shrinks violating strategies to
// minimal replayable reproducers.
//
// Where the experiment suite (internal/experiments) measures one
// hand-written adversary per sweep point, a campaign samples the
// *distribution* of adversary strategies whose tail the paper's
// with-high-probability claims are actually about. See docs/CAMPAIGNS.md.
package campaign

import (
	"fmt"
	"math/rand"
	"sort"

	"renaming"
	"renaming/internal/adversary"
	"renaming/internal/sim"
)

// stratLabel is the DeriveSeed stream label for strategy generation
// ("strt").
const stratLabel uint64 = 0x73747274

// GeneratorKind names a strategy-generation distribution.
type GeneratorKind string

const (
	// GenEarlyBurst packs all crashes into the first few rounds — the
	// correlated-failure profile (rack loss at startup).
	GenEarlyBurst GeneratorKind = "early-burst"
	// GenTrickle spreads crashes uniformly over the whole execution —
	// one or a few per phase, the paper's per-phase attrition profile.
	GenTrickle GeneratorKind = "trickle"
	// GenTargeted aims every crash at a current committee member
	// (resolved at execution time via the Peek hook) — the schedulable
	// form of the committee-killer adaptivity.
	GenTargeted GeneratorKind = "targeted"
	// GenMixed draws each crash independently from the three profiles
	// above — the broadest crash-strategy distribution.
	GenMixed GeneratorKind = "mixed"

	// GenByzUniform corrupts a random subset with behaviours drawn
	// uniformly from the full zoo (silence, equivocation, value-skew,
	// spam).
	GenByzUniform GeneratorKind = "byz-uniform"
	// GenByzSkew favours the value-skew behaviours (split-world,
	// minority-split) that attack the identity-agreement path.
	GenByzSkew GeneratorKind = "byz-skew"
	// GenByzSilent corrupts nodes into pure silence — the crash-like
	// Byzantine floor.
	GenByzSilent GeneratorKind = "byz-silent"
	// GenMixedFault splits the budget between Byzantine corruptions and
	// crash events in one execution — the fault model the Section 3
	// assumptions actually face (a Byzantine adversary subsumes crashes,
	// so both must count toward its hypothesis bound).
	GenMixedFault GeneratorKind = "mixed-fault"

	// GenChurn spreads crash events across the *epochs* of a long-lived
	// service execution (AlgoService): each event names an epoch, a
	// round within that epoch's one-shot run, and a link within the
	// epoch's join batch — so one strategy attacks the service across
	// epoch boundaries, which no single one-shot schedule can express.
	GenChurn GeneratorKind = "churn"
)

// CrashGenerators lists the crash-schedule generator kinds.
func CrashGenerators() []GeneratorKind {
	return []GeneratorKind{GenEarlyBurst, GenTrickle, GenTargeted, GenMixed}
}

// ByzGenerators lists the Byzantine-strategy generator kinds (including
// the mixed crash+Byzantine family, which runs under AlgoByzantine).
func ByzGenerators() []GeneratorKind {
	return []GeneratorKind{GenByzUniform, GenByzSkew, GenByzSilent, GenMixedFault}
}

// IsByz reports whether the kind generates Byzantine strategies.
func (g GeneratorKind) IsByz() bool {
	switch g {
	case GenByzUniform, GenByzSkew, GenByzSilent, GenMixedFault:
		return true
	}
	return false
}

// ChurnGenerators lists the service-churn generator kinds.
func ChurnGenerators() []GeneratorKind {
	return []GeneratorKind{GenChurn}
}

// ChurnEvent is one planned crash inside a long-lived service
// execution: the embedded adversary.Event (round, node, mid-send
// filter, salt) scoped to one epoch's one-shot run. Node addresses a
// link of that epoch's join batch; events whose node lands outside the
// batch are skipped at execution time, same as events aimed at dead
// nodes.
type ChurnEvent struct {
	Epoch int `json:"epoch"`
	adversary.Event
}

// ByzAssignment corrupts one link with one behaviour (by name, so the
// artifact is self-describing JSON).
type ByzAssignment struct {
	Link     int    `json:"link"`
	Behavior string `json:"behavior"`
}

// Strategy is one concrete, replayable adversary strategy: either a
// crash schedule or a Byzantine placement/behaviour assignment. It is
// plain data — serializable into artifacts, shrinkable, and replayable
// bit-identically.
type Strategy struct {
	// Generator records which distribution produced the strategy.
	Generator GeneratorKind `json:"generator"`
	// Schedule is the crash-event list (crash strategies).
	Schedule []adversary.Event `json:"schedule,omitempty"`
	// ScheduleSeed drives the schedule's mid-send delivery filters.
	ScheduleSeed int64 `json:"scheduleSeed,omitempty"`
	// Byzantine is the corruption assignment (Byzantine strategies).
	Byzantine []ByzAssignment `json:"byzantine,omitempty"`
	// Churn is the epoch-keyed crash-event list (service strategies);
	// ScheduleSeed drives its mid-send filters too.
	Churn []ChurnEvent `json:"churn,omitempty"`
}

// Fault wraps the crash schedule as a renaming.FaultSpec carrying a
// fresh adversary instance (stateful — one execution only).
func (s Strategy) Fault() renaming.FaultSpec {
	return renaming.FaultSpec{
		Kind:   renaming.FaultNone,
		Custom: &adversary.EventSchedule{Events: s.Schedule, Seed: s.ScheduleSeed},
	}
}

// ChurnFault returns the per-epoch fault hook a service Config takes:
// each call builds a fresh EventSchedule (stateful — one execution
// only) over the strategy's events for that epoch. Salted filters make
// every event's mid-send behaviour independent of its position, so the
// same ChurnEvent filters identically whichever epoch subset it lands
// in.
func (s Strategy) ChurnFault() func(epoch, batch int) renaming.FaultSpec {
	return func(epoch, batch int) renaming.FaultSpec {
		var events []adversary.Event
		for _, ev := range s.Churn {
			if ev.Epoch == epoch {
				events = append(events, ev.Event)
			}
		}
		if len(events) == 0 {
			return renaming.FaultSpec{}
		}
		return renaming.FaultSpec{
			Kind:   renaming.FaultNone,
			Custom: &adversary.EventSchedule{Events: events, Seed: s.ScheduleSeed},
		}
	}
}

// ByzMap converts the assignment list into the map RunByzantine takes.
func (s Strategy) ByzMap() (map[int]renaming.Behavior, error) {
	set := make(map[int]renaming.Behavior, len(s.Byzantine))
	for _, a := range s.Byzantine {
		b, err := ParseBehavior(a.Behavior)
		if err != nil {
			return nil, err
		}
		set[a.Link] = b
	}
	return set, nil
}

// behaviorNames maps behaviour names to renaming behaviours; the names
// match cmd/renamesim's -behavior flag.
var behaviorNames = map[string]renaming.Behavior{
	"silent":        renaming.BehaviorSilent,
	"splitworld":    renaming.BehaviorSplitWorld,
	"minoritysplit": renaming.BehaviorMinoritySplit,
	"equivocate":    renaming.BehaviorEquivocate,
	"rushing":       renaming.BehaviorRushingEquivocate,
	"spam":          renaming.BehaviorSpam,
}

// ParseBehavior resolves a behaviour name to its renaming constant.
func ParseBehavior(name string) (renaming.Behavior, error) {
	b, ok := behaviorNames[name]
	if !ok {
		return 0, fmt.Errorf("campaign: unknown behavior %q", name)
	}
	return b, nil
}

// GenSpec parameterizes strategy generation.
type GenSpec struct {
	// Kind selects the distribution.
	Kind GeneratorKind
	// N is the network size.
	N int
	// Budget caps the adversary: max crashes (crash kinds) or max
	// Byzantine nodes (byz kinds). The actual count is drawn from
	// [0, Budget] (crash) or [1, Budget] (byz) per strategy.
	Budget int
	// Rounds is the round span crash events are placed in (the
	// algorithm's round ceiling; for churn strategies, the per-epoch
	// one-shot ceiling).
	Rounds int
	// Epochs is the epoch span churn events are placed in (GenChurn).
	Epochs int
	// BatchMax is the largest join batch a churn trace draws; churn
	// event nodes are placed in [0, BatchMax) (GenChurn).
	BatchMax int
}

// Generate draws one strategy from the distribution, deterministically
// in the seed. Distinct seeds give independent strategies; the same
// seed always reproduces the same strategy.
func Generate(spec GenSpec, seed int64) (Strategy, error) {
	if spec.N <= 0 {
		return Strategy{}, fmt.Errorf("campaign: generate needs n > 0, got %d", spec.N)
	}
	if spec.Budget < 0 || spec.Budget >= spec.N {
		return Strategy{}, fmt.Errorf("campaign: budget %d out of range [0, n) for n=%d", spec.Budget, spec.N)
	}
	rng := sim.NewRand(seed, stratLabel)
	if spec.Kind == GenMixedFault {
		return generateMixedFault(spec, seed, rng)
	}
	if spec.Kind == GenChurn {
		return generateChurn(spec, seed, rng)
	}
	if spec.Kind.IsByz() {
		return generateByz(spec, rng)
	}
	return generateCrash(spec, seed, rng)
}

// nonzeroSalt draws an event's stable filter identity. Zero is reserved
// as the legacy "pre-Salt" marker, so redraw on the (2⁻⁶⁴) collision.
func nonzeroSalt(rng *rand.Rand) uint64 {
	for {
		if s := rng.Uint64(); s != 0 {
			return s
		}
	}
}

func generateCrash(spec GenSpec, seed int64, rng *rand.Rand) (Strategy, error) {
	rounds := spec.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	count := 0
	if spec.Budget > 0 {
		count = rng.Intn(spec.Budget + 1)
	}
	strat := Strategy{Generator: spec.Kind, ScheduleSeed: sim.DeriveSeed(seed, stratLabel<<1)}
	nodes := rng.Perm(spec.N)[:min(count, spec.N)]
	for i := 0; i < count; i++ {
		kind := spec.Kind
		if kind == GenMixed {
			kind = []GeneratorKind{GenEarlyBurst, GenTrickle, GenTargeted}[rng.Intn(3)]
		}
		ev := adversary.Event{Node: nodes[i], MidSend: rng.Intn(2) == 0, Salt: nonzeroSalt(rng)}
		switch kind {
		case GenEarlyBurst:
			ev.Round = rng.Intn(min(4, rounds))
		case GenTrickle:
			ev.Round = rng.Intn(rounds)
		case GenTargeted:
			ev.Round = rng.Intn(rounds)
			ev.TargetCommittee = true
		default:
			return Strategy{}, fmt.Errorf("campaign: unknown crash generator %q", spec.Kind)
		}
		strat.Schedule = append(strat.Schedule, ev)
	}
	// Sort by round (stable on the drawn order) so schedules read
	// chronologically in artifacts; execution order is round-driven
	// either way.
	sort.SliceStable(strat.Schedule, func(a, b int) bool {
		return strat.Schedule[a].Round < strat.Schedule[b].Round
	})
	return strat, nil
}

// generateChurn draws an epoch-keyed crash-event list for a long-lived
// service execution: up to Budget events, each landing in a uniform
// epoch, a uniform round of that epoch's one-shot run, and a uniform
// link of the (worst-case) join batch. A quarter of the events target
// the epoch's current committee instead of a fixed link — the
// cross-epoch form of the committee-killer adaptivity. Events whose
// link exceeds the epoch's actual batch simply never fire, matching
// the EventSchedule contract for dead targets.
func generateChurn(spec GenSpec, seed int64, rng *rand.Rand) (Strategy, error) {
	epochs := max(1, spec.Epochs)
	rounds := max(1, spec.Rounds)
	batch := max(1, spec.BatchMax)
	strat := Strategy{Generator: GenChurn, ScheduleSeed: sim.DeriveSeed(seed, stratLabel<<1)}
	count := 0
	if spec.Budget > 0 {
		count = rng.Intn(spec.Budget + 1)
	}
	for i := 0; i < count; i++ {
		ev := ChurnEvent{
			Epoch: rng.Intn(epochs),
			Event: adversary.Event{
				Round:   rng.Intn(rounds),
				Node:    rng.Intn(batch),
				MidSend: rng.Intn(2) == 0,
				Salt:    nonzeroSalt(rng),
			},
		}
		if rng.Intn(4) == 0 {
			ev.TargetCommittee = true
		}
		strat.Churn = append(strat.Churn, ev)
	}
	sort.SliceStable(strat.Churn, func(a, b int) bool {
		if strat.Churn[a].Epoch != strat.Churn[b].Epoch {
			return strat.Churn[a].Epoch < strat.Churn[b].Epoch
		}
		return strat.Churn[a].Round < strat.Churn[b].Round
	})
	return strat, nil
}

// byzSkewWeights favour the value-skew behaviours; byzUniformPool is
// the full zoo. BehaviorRushingEquivocate is excluded from generation:
// rushing changes the engine's scheduling mode, which would make
// campaign wall-clock bimodal for reasons unrelated to the strategy
// distribution (it remains reachable via cmd/renamesim -behavior).
var (
	byzUniformPool = []string{"silent", "splitworld", "minoritysplit", "equivocate", "spam"}
	byzSkewPool    = []string{"splitworld", "splitworld", "minoritysplit", "minoritysplit", "equivocate"}
)

func generateByz(spec GenSpec, rng *rand.Rand) (Strategy, error) {
	if spec.Budget == 0 {
		return Strategy{Generator: spec.Kind}, nil
	}
	count := 1 + rng.Intn(spec.Budget)
	links := rng.Perm(spec.N)[:count]
	sort.Ints(links)
	strat := Strategy{Generator: spec.Kind}
	for _, link := range links {
		var behavior string
		switch spec.Kind {
		case GenByzUniform:
			behavior = byzUniformPool[rng.Intn(len(byzUniformPool))]
		case GenByzSkew:
			behavior = byzSkewPool[rng.Intn(len(byzSkewPool))]
		case GenByzSilent:
			behavior = "silent"
		default:
			return Strategy{}, fmt.Errorf("campaign: unknown byz generator %q", spec.Kind)
		}
		strat.Byzantine = append(strat.Byzantine, ByzAssignment{Link: link, Behavior: behavior})
	}
	return strat, nil
}

// generateMixedFault splits the Budget between Byzantine corruptions
// and crash events on disjoint links: at least one corruption (else the
// strategy degenerates to a crash campaign under the wrong algo), the
// rest of the drawn total becomes mid-execution crashes of honest
// nodes. Targeted-committee events are excluded — the Byzantine
// engine's committees are resolved by the candidate-pool election, not
// the crash Peek hook.
func generateMixedFault(spec GenSpec, seed int64, rng *rand.Rand) (Strategy, error) {
	strat := Strategy{Generator: GenMixedFault, ScheduleSeed: sim.DeriveSeed(seed, stratLabel<<1)}
	if spec.Budget == 0 {
		return strat, nil
	}
	rounds := spec.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	total := 1 + rng.Intn(spec.Budget)
	byzCount := 1
	if total > 1 {
		byzCount += rng.Intn(total)
	}
	links := rng.Perm(spec.N)[:total]
	byzLinks := append([]int(nil), links[:byzCount]...)
	sort.Ints(byzLinks)
	for _, link := range byzLinks {
		strat.Byzantine = append(strat.Byzantine, ByzAssignment{
			Link: link, Behavior: byzUniformPool[rng.Intn(len(byzUniformPool))],
		})
	}
	for _, node := range links[byzCount:] {
		strat.Schedule = append(strat.Schedule, adversary.Event{
			Round:   rng.Intn(rounds),
			Node:    node,
			MidSend: rng.Intn(2) == 0,
			Salt:    nonzeroSalt(rng),
		})
	}
	sort.SliceStable(strat.Schedule, func(a, b int) bool {
		return strat.Schedule[a].Round < strat.Schedule[b].Round
	})
	return strat, nil
}
