package campaign

import (
	"fmt"

	"renaming"
	"renaming/internal/runner"
	"renaming/internal/service"
	"renaming/internal/sim"
)

// execLabel is the DeriveSeed stream label for per-execution seeds
// ("camp").
const execLabel uint64 = 0x63616d70

// Algo names the system under test.
type Algo string

const (
	// AlgoCrash is the paper's crash-resilient algorithm (Section 2).
	AlgoCrash Algo = "crash"
	// AlgoByzantine is the paper's Byzantine algorithm (Section 3).
	AlgoByzantine Algo = "byzantine"
	// AlgoBaselineA2A is the all-to-all interval-halving crash baseline —
	// it faces the exact same generated schedules as AlgoCrash, so
	// campaigns compare algorithms under identical adversaries.
	AlgoBaselineA2A Algo = "baseline-a2a"
	// AlgoService is the long-lived renaming service
	// (internal/service): each execution drives a seeded join/leave
	// trace for Spec.Epochs epochs against a GenChurn strategy, with
	// every epoch re-checked by the ServiceOracle. N is the service
	// capacity; Budget caps the strategy's total crash events across
	// the whole trace.
	AlgoService Algo = "service"
)

// Spec configures one campaign: Executions independent runs of Algo at
// size N, each against a fresh strategy drawn from Generator.
type Spec struct {
	// Algo is the system under test.
	Algo Algo
	// N is the network size.
	N int
	// BigN is the original namespace size; defaults to 16·N (crash,
	// baseline) or 8·N (Byzantine), matching the Run* defaults.
	BigN int
	// Executions is the number of randomized executions.
	Executions int
	// Seed is the campaign master seed: every execution seed, strategy,
	// and bootstrap resample derives from it.
	Seed int64
	// Generator selects the strategy distribution; it must match the
	// algo (crash generators for crash/baseline, byz-* for Byzantine).
	Generator GeneratorKind
	// Budget caps the adversary per execution (crashes or Byzantine
	// nodes). BudgetDefault (-1) selects the default — N/4 (crash) or
	// the Byzantine assumption bound; 0 is an explicit zero-fault
	// campaign (the oracle's fault-free envelope check).
	Budget int
	// CommitteeScale is passed through to the crash algorithm; defaults
	// to 0.02 (the experiment suite's scaled committee).
	CommitteeScale float64
	// PoolProb is passed through to the Byzantine algorithm; defaults
	// to 20/N (the E5 pool).
	PoolProb float64
	// EarlyStop enables the crash algorithm's early-stopping extension.
	EarlyStop bool
	// Epochs is the trace length per execution (AlgoService only);
	// defaults to 24.
	Epochs int
	// Workers caps concurrent executions; <=0 means GOMAXPROCS. The
	// campaign artifact is byte-identical at any worker count.
	Workers int
	// Sinks receive one telemetry record per execution, in order.
	Sinks []runner.Sink
	// Oracle checks every execution; nil installs the theorem-derived
	// default for Algo (CrashExpectation / ByzantineExpectation).
	Oracle *Oracle
}

// BudgetDefault is the Spec.Budget sentinel selecting the default
// adversary budget. An explicit 0 means a zero-fault campaign — the two
// were previously conflated, making fault-free campaigns unexpressible.
const BudgetDefault = -1

// Normalized returns the spec with every default applied — the exact
// configuration Run would execute — or the validation error.
func (s Spec) Normalized() (Spec, error) { return s.withDefaults() }

// withDefaults normalizes the spec.
func (s Spec) withDefaults() (Spec, error) {
	if s.N <= 0 {
		return s, fmt.Errorf("campaign: n must be positive, got %d", s.N)
	}
	if s.Executions <= 0 {
		return s, fmt.Errorf("campaign: executions must be positive, got %d", s.Executions)
	}
	if s.Algo == "" {
		s.Algo = AlgoCrash
	}
	if s.Generator == "" {
		switch s.Algo {
		case AlgoByzantine:
			s.Generator = GenByzUniform
		case AlgoService:
			s.Generator = GenChurn
		default:
			s.Generator = GenMixed
		}
	}
	if s.Generator.IsByz() != (s.Algo == AlgoByzantine) {
		return s, fmt.Errorf("campaign: generator %q does not match algo %q", s.Generator, s.Algo)
	}
	if (s.Generator == GenChurn) != (s.Algo == AlgoService) {
		return s, fmt.Errorf("campaign: generator %q does not match algo %q", s.Generator, s.Algo)
	}
	if s.Epochs == 0 {
		s.Epochs = 24
	}
	if s.Epochs < 0 {
		return s, fmt.Errorf("campaign: epochs must be positive, got %d", s.Epochs)
	}
	if s.BigN == 0 {
		if s.Algo == AlgoByzantine {
			s.BigN = 8 * s.N
		} else {
			s.BigN = 16 * s.N
		}
	}
	if s.Budget == BudgetDefault {
		if s.Algo == AlgoByzantine {
			// Stay inside the Theorem 1.3 hypothesis f < (1/3−ε₀)·n with
			// the default ε₀ = 0.1, so the oracle's gated checks engage.
			s.Budget = max(1, int(float64(s.N)*(1.0/3-0.1))-1)
		} else {
			s.Budget = s.N / 4
		}
	}
	if s.Budget < 0 || s.Budget >= s.N {
		return s, fmt.Errorf("campaign: budget %d out of range [0, n) for n=%d (use BudgetDefault = -1 for the default)", s.Budget, s.N)
	}
	if s.CommitteeScale == 0 {
		s.CommitteeScale = 0.02
	}
	if s.PoolProb == 0 {
		s.PoolProb = 20.0 / float64(s.N)
	}
	if s.Oracle == nil {
		o := s.defaultOracle()
		s.Oracle = &o
	}
	return s, nil
}

func (s Spec) defaultOracle() Oracle {
	switch s.Algo {
	case AlgoByzantine:
		return Oracle{Expect: ByzantineExpectation(s.BigN, s.Budget)}
	case AlgoService:
		// Service executions are checked per epoch by a fresh
		// ServiceOracle instead of the one-shot expectation; the spec
		// oracle stays empty so its whole-trace envelopes never fire.
		return Oracle{}
	case AlgoBaselineA2A:
		// The baseline is strong and O(log n)-round but pays Θ(n²·log n)
		// messages by design, so only correctness and the cap apply; the
		// cap uses the same constant as ours (it sits near ratio 1.2).
		return Oracle{Expect: Expectation{
			RequireUnique:     true,
			MessageCeiling:    CrashMessageCeiling(s.N),
			CheckMessageFloor: true,
		}}
	default:
		return Oracle{Expect: CrashExpectation(s.N)}
	}
}

// ExecSeed returns the deterministic seed of execution i: fixed before
// any worker starts, never influenced by scheduling.
func (s Spec) ExecSeed(i int) int64 {
	return sim.DeriveSeed(s.Seed, execLabel^uint64(i)<<8)
}

// genSpec is the generation envelope for one execution.
func (s Spec) genSpec() GenSpec {
	if s.Algo == AlgoService {
		// Churn events live inside per-epoch one-shot runs over join
		// batches of at most joinMax links, across Spec.Epochs epochs.
		return GenSpec{
			Kind:     s.Generator,
			N:        s.N,
			Budget:   s.Budget,
			Rounds:   CrashRoundCeiling(s.serviceJoinMax()),
			Epochs:   s.Epochs,
			BatchMax: s.serviceJoinMax(),
		}
	}
	return GenSpec{
		Kind:   s.Generator,
		N:      s.N,
		Budget: s.Budget,
		Rounds: CrashRoundCeiling(s.N),
	}
}

// serviceJoinMax is the per-epoch join cap of a service execution's
// trace — the TraceSpec default for capacity N.
func (s Spec) serviceJoinMax() int { return max(1, s.N/8) }

// Outcome is a completed campaign.
type Outcome struct {
	// Spec is the normalized spec the campaign ran with.
	Spec Spec
	// Records holds one runner record per execution, in execution order;
	// Metrics.Violations carries each execution's oracle verdict codes.
	Records []runner.Record
	// Violations are the structured oracle breaches across the whole
	// campaign, in execution order, each with its replayable strategy.
	Violations []Violation
	// Tails are the campaign's tail statistics vs the theorem envelopes.
	Tails []Tail
}

// Run executes the campaign: Executions independent (config × strategy)
// runs fanned across the runner worker pool, each checked by the
// oracle, reduced to tail statistics. Execution failures (as opposed to
// invariant violations) abort the campaign.
func Run(spec Spec) (*Outcome, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	// Per-execution violation slots: each index is written by exactly
	// one worker and runner.Run establishes the happens-before edge
	// before returning.
	violations := make([][]Violation, spec.Executions)

	points := make([]runner.Point, spec.Executions)
	for i := 0; i < spec.Executions; i++ {
		i := i
		points[i] = runner.Point{
			Experiment: "campaign",
			Name:       fmt.Sprintf("%s/%s/exec=%d", spec.Algo, spec.Generator, i),
			Seed:       spec.ExecSeed(i),
			FixedSeed:  true,
			Params: map[string]string{
				"algo": string(spec.Algo), "gen": string(spec.Generator),
				"n": fmt.Sprint(spec.N), "N": fmt.Sprint(spec.BigN),
				"budget": fmt.Sprint(spec.Budget), "exec": fmt.Sprint(i),
			},
			Run: func(seed int64) (runner.Metrics, error) {
				var (
					strat Strategy
					m     runner.Metrics
					viols []Violation
					err   error
				)
				if spec.Algo == AlgoService {
					strat, m, viols, err = executeServiceOnce(spec, seed)
					if err != nil {
						return runner.Metrics{}, err
					}
				} else {
					var res *renaming.Result
					var ids []int
					strat, res, ids, err = executeOnce(spec, seed)
					if err != nil {
						return runner.Metrics{}, err
					}
					viols = spec.Oracle.Check(spec.N, ids, res)
					m = runner.FromResult(res, spec.N)
				}
				for vi := range viols {
					viols[vi].Exec = i
					viols[vi].Seed = seed
					viols[vi].Strategy = strat
				}
				violations[i] = viols
				m.Violations = Codes(viols)
				return m, nil
			},
		}
	}
	records, err := runner.Run(points, runner.Options{Workers: spec.Workers, Sinks: spec.Sinks})
	if err != nil {
		return nil, err
	}
	for _, rec := range records {
		if rec.Err != "" {
			return nil, fmt.Errorf("campaign: exec %d (seed %d): %s", rec.Index, rec.Seed, rec.Err)
		}
	}
	out := &Outcome{Spec: spec, Records: records}
	for _, vs := range violations {
		out.Violations = append(out.Violations, vs...)
	}
	out.Tails = Tails(spec, records)
	return out, nil
}

// executeOnce generates the strategy for seed and runs one execution of
// the configured algorithm against it, returning the strategy, the
// result, and the original identities (for the oracle's order check).
func executeOnce(spec Spec, seed int64) (Strategy, *renaming.Result, []int, error) {
	strat, err := Generate(spec.genSpec(), seed)
	if err != nil {
		return Strategy{}, nil, nil, err
	}
	ids, err := renaming.GenerateIDs(spec.N, spec.BigN, renaming.IDsEven, seed)
	if err != nil {
		return Strategy{}, nil, nil, err
	}
	res, err := replayStrategy(spec, strat, seed, ids)
	if err != nil {
		return Strategy{}, nil, nil, err
	}
	return strat, res, ids, nil
}

// executeServiceOnce generates a churn strategy for seed and drives one
// long-lived service execution against it: Spec.Epochs epochs of a
// seeded join/leave trace over a capacity-N namespace, every epoch
// re-checked by a fresh ServiceOracle. The returned metrics aggregate
// the whole trace (sums over epochs; service population counters in
// Extra); the violations are epoch-keyed.
func executeServiceOnce(spec Spec, seed int64) (Strategy, runner.Metrics, []Violation, error) {
	strat, err := Generate(spec.genSpec(), seed)
	if err != nil {
		return Strategy{}, runner.Metrics{}, nil, err
	}
	m, viols, err := replayServiceStrategy(spec, strat, seed)
	return strat, m, viols, err
}

// replayServiceStrategy runs one service execution against an explicit
// churn strategy — the shared path between campaign execution and
// replay.
func replayServiceStrategy(spec Spec, strat Strategy, seed int64) (runner.Metrics, []Violation, error) {
	driver, err := service.NewTraceDriver(service.TraceSpec{
		Capacity: spec.N, BigN: spec.BigN, Seed: seed,
	})
	if err != nil {
		return runner.Metrics{}, nil, err
	}
	svc, err := service.New(service.Config{
		Capacity: spec.N, BigN: spec.BigN, Seed: seed,
		CommitteeScale: spec.CommitteeScale,
		FaultForEpoch:  strat.ChurnFault(),
	})
	if err != nil {
		return runner.Metrics{}, nil, err
	}
	// Campaigns build one service per execution; Close each so pooled
	// one-shot engines don't pile up waiting on finalizers.
	defer svc.Close()
	oracle := NewServiceOracle(spec.N, service.CoreCrash)
	m := runner.Metrics{Unique: true, OrderPreserving: true, AssumptionHolds: true}
	var viols []Violation
	var joined, failed, released, recycled, aborted, peakLive int
	for e := 0; e < spec.Epochs; e++ {
		joins, leaves, err := driver.NextEpoch(svc.LiveClients())
		if err != nil {
			return runner.Metrics{}, nil, err
		}
		er, err := svc.RunEpoch(joins, leaves)
		if err != nil {
			return runner.Metrics{}, nil, err
		}
		viols = append(viols, oracle.CheckEpoch(er)...)
		m.Rounds += er.Rounds
		m.Messages += er.Messages
		m.Bits += er.Bits
		m.HonestMessages += er.HonestMessages
		m.HonestBits += er.HonestBits
		m.Crashes += er.Crashes
		joined += er.Joined
		failed += er.FailedJoins
		released += len(er.Released)
		recycled += er.Recycled
		if er.Aborted {
			aborted++
		}
		peakLive = er.PeakLive
	}
	for _, v := range viols {
		switch v.Invariant {
		case InvOrder:
			m.OrderPreserving = false
		default:
			m.Unique = false
		}
	}
	m.Extra = map[string]float64{
		"epochs":        float64(spec.Epochs),
		"joined":        float64(joined),
		"failedJoins":   float64(failed),
		"released":      float64(released),
		"recycled":      float64(recycled),
		"abortedEpochs": float64(aborted),
		"peakLive":      float64(peakLive),
		"live":          float64(svc.Live()),
	}
	return m, viols, nil
}

// replayStrategy runs one execution of spec's algorithm against an
// explicit strategy — the shared path between campaign execution and
// artifact replay.
func replayStrategy(spec Spec, strat Strategy, seed int64, ids []int) (*renaming.Result, error) {
	switch spec.Algo {
	case AlgoByzantine:
		byz, err := strat.ByzMap()
		if err != nil {
			return nil, err
		}
		bspec := renaming.ByzSpec{
			N: spec.BigN, IDs: ids, Seed: seed,
			PoolProb: spec.PoolProb, Byzantine: byz, Profile: true,
		}
		if len(strat.Schedule) > 0 {
			// Mixed-fault strategies crash honest nodes too; the zero
			// value keeps pure-Byzantine executions on the exact
			// pre-mixed-fault engine configuration.
			bspec.Fault = strat.Fault()
		}
		return renaming.RunByzantine(spec.N, bspec)
	case AlgoBaselineA2A:
		return renaming.RunBaseline(spec.N, renaming.BaselineSpec{
			Kind: renaming.BaselineAllToAllCrash,
			N:    spec.BigN, IDs: ids, Seed: seed, Fault: strat.Fault(),
		})
	default:
		return renaming.RunCrash(spec.N, renaming.CrashSpec{
			N: spec.BigN, IDs: ids, Seed: seed,
			CommitteeScale: spec.CommitteeScale, EarlyStop: spec.EarlyStop,
			Fault: strat.Fault(), Profile: true,
		})
	}
}
