package campaign

import (
	"fmt"

	"renaming"
	"renaming/internal/runner"
	"renaming/internal/sim"
)

// execLabel is the DeriveSeed stream label for per-execution seeds
// ("camp").
const execLabel uint64 = 0x63616d70

// Algo names the system under test.
type Algo string

const (
	// AlgoCrash is the paper's crash-resilient algorithm (Section 2).
	AlgoCrash Algo = "crash"
	// AlgoByzantine is the paper's Byzantine algorithm (Section 3).
	AlgoByzantine Algo = "byzantine"
	// AlgoBaselineA2A is the all-to-all interval-halving crash baseline —
	// it faces the exact same generated schedules as AlgoCrash, so
	// campaigns compare algorithms under identical adversaries.
	AlgoBaselineA2A Algo = "baseline-a2a"
)

// Spec configures one campaign: Executions independent runs of Algo at
// size N, each against a fresh strategy drawn from Generator.
type Spec struct {
	// Algo is the system under test.
	Algo Algo
	// N is the network size.
	N int
	// BigN is the original namespace size; defaults to 16·N (crash,
	// baseline) or 8·N (Byzantine), matching the Run* defaults.
	BigN int
	// Executions is the number of randomized executions.
	Executions int
	// Seed is the campaign master seed: every execution seed, strategy,
	// and bootstrap resample derives from it.
	Seed int64
	// Generator selects the strategy distribution; it must match the
	// algo (crash generators for crash/baseline, byz-* for Byzantine).
	Generator GeneratorKind
	// Budget caps the adversary per execution (crashes or Byzantine
	// nodes). BudgetDefault (-1) selects the default — N/4 (crash) or
	// the Byzantine assumption bound; 0 is an explicit zero-fault
	// campaign (the oracle's fault-free envelope check).
	Budget int
	// CommitteeScale is passed through to the crash algorithm; defaults
	// to 0.02 (the experiment suite's scaled committee).
	CommitteeScale float64
	// PoolProb is passed through to the Byzantine algorithm; defaults
	// to 20/N (the E5 pool).
	PoolProb float64
	// EarlyStop enables the crash algorithm's early-stopping extension.
	EarlyStop bool
	// Workers caps concurrent executions; <=0 means GOMAXPROCS. The
	// campaign artifact is byte-identical at any worker count.
	Workers int
	// Sinks receive one telemetry record per execution, in order.
	Sinks []runner.Sink
	// Oracle checks every execution; nil installs the theorem-derived
	// default for Algo (CrashExpectation / ByzantineExpectation).
	Oracle *Oracle
}

// BudgetDefault is the Spec.Budget sentinel selecting the default
// adversary budget. An explicit 0 means a zero-fault campaign — the two
// were previously conflated, making fault-free campaigns unexpressible.
const BudgetDefault = -1

// Normalized returns the spec with every default applied — the exact
// configuration Run would execute — or the validation error.
func (s Spec) Normalized() (Spec, error) { return s.withDefaults() }

// withDefaults normalizes the spec.
func (s Spec) withDefaults() (Spec, error) {
	if s.N <= 0 {
		return s, fmt.Errorf("campaign: n must be positive, got %d", s.N)
	}
	if s.Executions <= 0 {
		return s, fmt.Errorf("campaign: executions must be positive, got %d", s.Executions)
	}
	if s.Algo == "" {
		s.Algo = AlgoCrash
	}
	if s.Generator == "" {
		if s.Algo == AlgoByzantine {
			s.Generator = GenByzUniform
		} else {
			s.Generator = GenMixed
		}
	}
	if s.Generator.IsByz() != (s.Algo == AlgoByzantine) {
		return s, fmt.Errorf("campaign: generator %q does not match algo %q", s.Generator, s.Algo)
	}
	if s.BigN == 0 {
		if s.Algo == AlgoByzantine {
			s.BigN = 8 * s.N
		} else {
			s.BigN = 16 * s.N
		}
	}
	if s.Budget == BudgetDefault {
		if s.Algo == AlgoByzantine {
			// Stay inside the Theorem 1.3 hypothesis f < (1/3−ε₀)·n with
			// the default ε₀ = 0.1, so the oracle's gated checks engage.
			s.Budget = max(1, int(float64(s.N)*(1.0/3-0.1))-1)
		} else {
			s.Budget = s.N / 4
		}
	}
	if s.Budget < 0 || s.Budget >= s.N {
		return s, fmt.Errorf("campaign: budget %d out of range [0, n) for n=%d (use BudgetDefault = -1 for the default)", s.Budget, s.N)
	}
	if s.CommitteeScale == 0 {
		s.CommitteeScale = 0.02
	}
	if s.PoolProb == 0 {
		s.PoolProb = 20.0 / float64(s.N)
	}
	if s.Oracle == nil {
		o := s.defaultOracle()
		s.Oracle = &o
	}
	return s, nil
}

func (s Spec) defaultOracle() Oracle {
	switch s.Algo {
	case AlgoByzantine:
		return Oracle{Expect: ByzantineExpectation(s.BigN, s.Budget)}
	case AlgoBaselineA2A:
		// The baseline is strong and O(log n)-round but pays Θ(n²·log n)
		// messages by design, so only correctness and the cap apply; the
		// cap uses the same constant as ours (it sits near ratio 1.2).
		return Oracle{Expect: Expectation{
			RequireUnique:     true,
			MessageCeiling:    CrashMessageCeiling(s.N),
			CheckMessageFloor: true,
		}}
	default:
		return Oracle{Expect: CrashExpectation(s.N)}
	}
}

// ExecSeed returns the deterministic seed of execution i: fixed before
// any worker starts, never influenced by scheduling.
func (s Spec) ExecSeed(i int) int64 {
	return sim.DeriveSeed(s.Seed, execLabel^uint64(i)<<8)
}

// genSpec is the generation envelope for one execution.
func (s Spec) genSpec() GenSpec {
	return GenSpec{
		Kind:   s.Generator,
		N:      s.N,
		Budget: s.Budget,
		Rounds: CrashRoundCeiling(s.N),
	}
}

// Outcome is a completed campaign.
type Outcome struct {
	// Spec is the normalized spec the campaign ran with.
	Spec Spec
	// Records holds one runner record per execution, in execution order;
	// Metrics.Violations carries each execution's oracle verdict codes.
	Records []runner.Record
	// Violations are the structured oracle breaches across the whole
	// campaign, in execution order, each with its replayable strategy.
	Violations []Violation
	// Tails are the campaign's tail statistics vs the theorem envelopes.
	Tails []Tail
}

// Run executes the campaign: Executions independent (config × strategy)
// runs fanned across the runner worker pool, each checked by the
// oracle, reduced to tail statistics. Execution failures (as opposed to
// invariant violations) abort the campaign.
func Run(spec Spec) (*Outcome, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	// Per-execution violation slots: each index is written by exactly
	// one worker and runner.Run establishes the happens-before edge
	// before returning.
	violations := make([][]Violation, spec.Executions)

	points := make([]runner.Point, spec.Executions)
	for i := 0; i < spec.Executions; i++ {
		i := i
		points[i] = runner.Point{
			Experiment: "campaign",
			Name:       fmt.Sprintf("%s/%s/exec=%d", spec.Algo, spec.Generator, i),
			Seed:       spec.ExecSeed(i),
			FixedSeed:  true,
			Params: map[string]string{
				"algo": string(spec.Algo), "gen": string(spec.Generator),
				"n": fmt.Sprint(spec.N), "N": fmt.Sprint(spec.BigN),
				"budget": fmt.Sprint(spec.Budget), "exec": fmt.Sprint(i),
			},
			Run: func(seed int64) (runner.Metrics, error) {
				strat, res, ids, err := executeOnce(spec, seed)
				if err != nil {
					return runner.Metrics{}, err
				}
				viols := spec.Oracle.Check(spec.N, ids, res)
				for vi := range viols {
					viols[vi].Exec = i
					viols[vi].Seed = seed
					viols[vi].Strategy = strat
				}
				violations[i] = viols
				m := runner.FromResult(res, spec.N)
				m.Violations = Codes(viols)
				return m, nil
			},
		}
	}
	records, err := runner.Run(points, runner.Options{Workers: spec.Workers, Sinks: spec.Sinks})
	if err != nil {
		return nil, err
	}
	for _, rec := range records {
		if rec.Err != "" {
			return nil, fmt.Errorf("campaign: exec %d (seed %d): %s", rec.Index, rec.Seed, rec.Err)
		}
	}
	out := &Outcome{Spec: spec, Records: records}
	for _, vs := range violations {
		out.Violations = append(out.Violations, vs...)
	}
	out.Tails = Tails(spec, records)
	return out, nil
}

// executeOnce generates the strategy for seed and runs one execution of
// the configured algorithm against it, returning the strategy, the
// result, and the original identities (for the oracle's order check).
func executeOnce(spec Spec, seed int64) (Strategy, *renaming.Result, []int, error) {
	strat, err := Generate(spec.genSpec(), seed)
	if err != nil {
		return Strategy{}, nil, nil, err
	}
	ids, err := renaming.GenerateIDs(spec.N, spec.BigN, renaming.IDsEven, seed)
	if err != nil {
		return Strategy{}, nil, nil, err
	}
	res, err := replayStrategy(spec, strat, seed, ids)
	if err != nil {
		return Strategy{}, nil, nil, err
	}
	return strat, res, ids, nil
}

// replayStrategy runs one execution of spec's algorithm against an
// explicit strategy — the shared path between campaign execution and
// artifact replay.
func replayStrategy(spec Spec, strat Strategy, seed int64, ids []int) (*renaming.Result, error) {
	switch spec.Algo {
	case AlgoByzantine:
		byz, err := strat.ByzMap()
		if err != nil {
			return nil, err
		}
		bspec := renaming.ByzSpec{
			N: spec.BigN, IDs: ids, Seed: seed,
			PoolProb: spec.PoolProb, Byzantine: byz, Profile: true,
		}
		if len(strat.Schedule) > 0 {
			// Mixed-fault strategies crash honest nodes too; the zero
			// value keeps pure-Byzantine executions on the exact
			// pre-mixed-fault engine configuration.
			bspec.Fault = strat.Fault()
		}
		return renaming.RunByzantine(spec.N, bspec)
	case AlgoBaselineA2A:
		return renaming.RunBaseline(spec.N, renaming.BaselineSpec{
			Kind: renaming.BaselineAllToAllCrash,
			N:    spec.BigN, IDs: ids, Seed: seed, Fault: strat.Fault(),
		})
	default:
		return renaming.RunCrash(spec.N, renaming.CrashSpec{
			N: spec.BigN, IDs: ids, Seed: seed,
			CommitteeScale: spec.CommitteeScale, EarlyStop: spec.EarlyStop,
			Fault: strat.Fault(), Profile: true,
		})
	}
}
