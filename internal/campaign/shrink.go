package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"renaming"
	"renaming/internal/adversary"
)

// Fails reports whether a candidate strategy still reproduces the
// failure being minimized. It must be deterministic.
type Fails func(strat Strategy) (bool, error)

// ddmin greedily minimizes items while keep(items) stays true: it
// repeatedly tries removing chunks, halving the chunk size from
// len(items)/2 down to single elements, restarting whenever a removal
// sticks. The classic delta-debugging reduction, specialized to
// "remove-only" (the schedules being shrunk have no recombination
// structure). A failure that persists on the empty list shrinks all
// the way to it — e.g. a broken-oracle fixture that flags every run.
func ddmin[T any](items []T, keep func([]T) (bool, error)) ([]T, error) {
	current := append([]T(nil), items...)
	chunk := len(current) / 2
	if chunk < 1 {
		chunk = 1
	}
	for len(current) > 0 {
		removedAny := false
		for start := 0; start < len(current); {
			end := start + chunk
			if end > len(current) {
				end = len(current)
			}
			candidate := make([]T, 0, len(current)-(end-start))
			candidate = append(candidate, current[:start]...)
			candidate = append(candidate, current[end:]...)
			ok, err := keep(candidate)
			if err != nil {
				return nil, err
			}
			if ok {
				current = candidate
				removedAny = true
				// Do not advance start: the slice shifted left.
			} else {
				start = end
			}
		}
		if !removedAny {
			if chunk == 1 {
				break
			}
			chunk /= 2
		}
	}
	return current, nil
}

// ShrinkSchedule minimizes a crash schedule with respect to fails:
// first delta-debugs the event list down to a locally minimal subset,
// then simplifies surviving events (drops mid-send filters, grounds
// rounds to 0) where the failure persists. The result still fails.
func ShrinkSchedule(strat Strategy, fails Fails) (Strategy, error) {
	withSchedule := func(events []adversary.Event) Strategy {
		s := strat
		s.Schedule = events
		return s
	}
	events, err := ddmin(strat.Schedule, func(candidate []adversary.Event) (bool, error) {
		return fails(withSchedule(candidate))
	})
	if err != nil {
		return Strategy{}, err
	}
	// Attribute simplification: each surviving event is reduced
	// field-by-field when the reduction preserves the failure.
	for i := range events {
		for _, simplify := range []func(*adversary.Event){
			func(ev *adversary.Event) { ev.MidSend = false },
			func(ev *adversary.Event) { ev.Round = 0 },
		} {
			candidate := append([]adversary.Event(nil), events...)
			simplify(&candidate[i])
			if candidate[i] == events[i] {
				continue
			}
			ok, err := fails(withSchedule(candidate))
			if err != nil {
				return Strategy{}, err
			}
			if ok {
				events = candidate
			}
		}
	}
	return withSchedule(events), nil
}

// ShrinkChurn minimizes an epoch-keyed churn schedule with respect to
// fails: delta-debugs the event list, then simplifies surviving events
// (drops mid-send filters, grounds rounds to 0) where the failure
// persists. The epoch key is never touched — moving an event across
// epochs would change which one-shot run it lands in, i.e. produce a
// different strategy rather than a smaller one.
func ShrinkChurn(strat Strategy, fails Fails) (Strategy, error) {
	withChurn := func(events []ChurnEvent) Strategy {
		s := strat
		s.Churn = events
		return s
	}
	events, err := ddmin(strat.Churn, func(candidate []ChurnEvent) (bool, error) {
		return fails(withChurn(candidate))
	})
	if err != nil {
		return Strategy{}, err
	}
	for i := range events {
		for _, simplify := range []func(*ChurnEvent){
			func(ev *ChurnEvent) { ev.MidSend = false },
			func(ev *ChurnEvent) { ev.Round = 0 },
		} {
			candidate := append([]ChurnEvent(nil), events...)
			simplify(&candidate[i])
			if candidate[i] == events[i] {
				continue
			}
			ok, err := fails(withChurn(candidate))
			if err != nil {
				return Strategy{}, err
			}
			if ok {
				events = candidate
			}
		}
	}
	return withChurn(events), nil
}

// ShrinkByzantine minimizes a Byzantine assignment with respect to
// fails by delta-debugging the corruption list.
func ShrinkByzantine(strat Strategy, fails Fails) (Strategy, error) {
	assignments, err := ddmin(strat.Byzantine, func(candidate []ByzAssignment) (bool, error) {
		s := strat
		s.Byzantine = candidate
		return fails(s)
	})
	if err != nil {
		return Strategy{}, err
	}
	strat.Byzantine = assignments
	return strat, nil
}

// ArtifactVersion is the current replayable-artifact format. Version 2
// added the per-event salt (the stable mid-send filter identity of
// adversary.Event.Salt); an absent or ≤ 1 version marks a legacy
// artifact whose saltless events replay through the historical
// index-keyed filter stream, bit-identically to the release that wrote
// them.
const ArtifactVersion = 2

// ReproArtifact is a minimal, replayable reproducer for one violation:
// everything needed to re-execute the offending run from scratch.
type ReproArtifact struct {
	// Version is the artifact format version (see ArtifactVersion);
	// zero in artifacts written before versioning existed.
	Version int `json:"version,omitempty"`
	// Algo, N, BigN, Seed, CommitteeScale, PoolProb reconstruct the
	// execution configuration.
	Algo           Algo    `json:"algo"`
	N              int     `json:"n"`
	BigN           int     `json:"N"`
	Seed           int64   `json:"seed"`
	CommitteeScale float64 `json:"committeeScale,omitempty"`
	PoolProb       float64 `json:"poolProb,omitempty"`
	EarlyStop      bool    `json:"earlyStop,omitempty"`
	// Epochs is the service-trace length (AlgoService artifacts only).
	Epochs int `json:"epochs,omitempty"`
	// Invariant and Detail describe the violation being reproduced.
	Invariant string `json:"invariant"`
	Detail    string `json:"detail,omitempty"`
	// Strategy is the (shrunk) adversary strategy.
	Strategy Strategy `json:"strategy"`
}

// Shrink minimizes the violating strategy of v under spec and returns a
// replayable artifact. The failure predicate is "replaying the strategy
// still violates the same invariant under the campaign's oracle" —
// shrinking never drifts onto a different failure. Crash/baseline
// strategies shrink their schedules; Byzantine strategies their
// corruption sets.
func Shrink(spec Spec, v Violation) (*ReproArtifact, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	fails := func(strat Strategy) (bool, error) {
		return violates(spec, strat, v.Seed, v.Invariant)
	}
	// The reported strategy must fail its own predicate; a mismatch
	// means the violation is not deterministic in (seed, strategy) and
	// shrinking would minimize noise.
	still, err := fails(v.Strategy)
	if err != nil {
		return nil, err
	}
	if !still {
		return nil, fmt.Errorf("campaign: violation %q at exec %d does not reproduce — refusing to shrink", v.Invariant, v.Exec)
	}
	var shrunk Strategy
	if spec.Algo == AlgoByzantine {
		shrunk, err = ShrinkByzantine(v.Strategy, fails)
		if err == nil && len(shrunk.Schedule) > 0 {
			// Mixed-fault strategies carry a crash schedule too; shrink
			// it after the corruption set so the final artifact is
			// locally minimal in both lists.
			shrunk, err = ShrinkSchedule(shrunk, fails)
		}
	} else if spec.Algo == AlgoService {
		shrunk, err = ShrinkChurn(v.Strategy, fails)
	} else {
		shrunk, err = ShrinkSchedule(v.Strategy, fails)
	}
	if err != nil {
		return nil, err
	}
	a := &ReproArtifact{
		Version: ArtifactVersion,
		Algo:    spec.Algo, N: spec.N, BigN: spec.BigN, Seed: v.Seed,
		CommitteeScale: spec.CommitteeScale, PoolProb: spec.PoolProb,
		EarlyStop: spec.EarlyStop,
		Invariant: v.Invariant, Detail: v.Detail, Strategy: shrunk,
	}
	if spec.Algo == AlgoService {
		a.Epochs = spec.Epochs
	}
	return a, nil
}

// violates replays strat at seed under spec and reports whether the
// oracle still flags the given invariant.
func violates(spec Spec, strat Strategy, seed int64, invariant string) (bool, error) {
	if spec.Algo == AlgoService {
		_, viols, err := replayServiceStrategy(spec, strat, seed)
		if err != nil {
			return false, err
		}
		for _, found := range viols {
			if found.Invariant == invariant {
				return true, nil
			}
		}
		return false, nil
	}
	ids, err := renaming.GenerateIDs(spec.N, spec.BigN, renaming.IDsEven, seed)
	if err != nil {
		return false, err
	}
	res, err := replayStrategy(spec, strat, seed, ids)
	if err != nil {
		return false, err
	}
	for _, found := range spec.Oracle.Check(spec.N, ids, res) {
		if found.Invariant == invariant {
			return true, nil
		}
	}
	return false, nil
}

// Replay re-executes the artifact and rechecks it against the oracle
// (the artifact's violation should reappear unless the underlying bug
// has been fixed). The artifact's own expectation is the theorem
// default for its algo.
func (a *ReproArtifact) Replay() (*renaming.Result, []Violation, error) {
	spec, err := a.Spec().withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if spec.Algo == AlgoService {
		// A service artifact replays the whole churn trace; the
		// returned Result carries the trace-aggregate metrics (there
		// is no single one-shot execution to hand back).
		m, viols, err := replayServiceStrategy(spec, a.Strategy, a.Seed)
		if err != nil {
			return nil, nil, err
		}
		for i := range viols {
			viols[i].Seed = a.Seed
			viols[i].Strategy = a.Strategy
		}
		res := &renaming.Result{
			Unique: m.Unique, OrderPreserving: m.OrderPreserving,
			Crashes: m.Crashes, Rounds: m.Rounds,
			Messages: m.Messages, Bits: m.Bits,
			HonestMessages: m.HonestMessages, HonestBits: m.HonestBits,
		}
		return res, viols, nil
	}
	ids, err := renaming.GenerateIDs(spec.N, spec.BigN, renaming.IDsEven, a.Seed)
	if err != nil {
		return nil, nil, err
	}
	res, err := replayStrategy(spec, a.Strategy, a.Seed, ids)
	if err != nil {
		return nil, nil, err
	}
	viols := spec.Oracle.Check(spec.N, ids, res)
	for i := range viols {
		viols[i].Seed = a.Seed
		viols[i].Strategy = a.Strategy
	}
	return res, viols, nil
}

// Spec reconstructs a single-execution campaign spec from the artifact.
func (a *ReproArtifact) Spec() Spec {
	return Spec{
		Algo: a.Algo, N: a.N, BigN: a.BigN, Executions: 1, Seed: a.Seed,
		Generator:      a.Strategy.Generator,
		Budget:         BudgetDefault,
		CommitteeScale: a.CommitteeScale, PoolProb: a.PoolProb,
		EarlyStop: a.EarlyStop,
		Epochs:    a.Epochs,
	}
}

// Encode writes the artifact as indented JSON.
func (a *ReproArtifact) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// SaveArtifact writes the artifact to path.
func SaveArtifact(a *ReproArtifact, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadArtifact reads a replayable artifact from path.
func LoadArtifact(path string) (*ReproArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a ReproArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("campaign: artifact %s: %w", path, err)
	}
	if a.N <= 0 {
		return nil, fmt.Errorf("campaign: artifact %s: missing n", path)
	}
	if a.Version > ArtifactVersion {
		return nil, fmt.Errorf("campaign: artifact %s: format version %d is newer than this build's %d", path, a.Version, ArtifactVersion)
	}
	return &a, nil
}
