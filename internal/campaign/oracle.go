package campaign

import (
	"fmt"
	"sort"
	"sync"

	"renaming"
)

// Invariant codes, stable strings recorded in telemetry and artifacts.
const (
	// InvUniqueness: two correct nodes decided the same new name, or the
	// run's own Unique verdict disagrees with the oracle's recomputation.
	InvUniqueness = "uniqueness"
	// InvNamespace: a decided name lies outside the tight target
	// namespace [1, n] (strong renaming).
	InvNamespace = "namespace"
	// InvUndecided: a correct, surviving node failed to decide.
	InvUndecided = "undecided"
	// InvOrder: decided names do not preserve the order of original
	// identities (Theorem 1.3's order-preservation guarantee).
	InvOrder = "order"
	// InvRoundCeiling: the execution exceeded the deterministic round
	// bound (Theorem 1.2: 9·⌈log₂ n⌉+1 rounds in this simulator's
	// 3-rounds-per-phase schedule).
	InvRoundCeiling = "round-ceiling"
	// InvMessageCeiling: honest messages exceeded the deterministic
	// Θ(n²·log n) cap (Theorem 1.2), with the repo's measured worst-case
	// constant (EXPERIMENTS.md E4).
	InvMessageCeiling = "message-ceiling"
	// InvMessageFloor: honest messages fell below the Ω(n) lower bound
	// of Theorem 1.4 (n − f survivors must all communicate).
	InvMessageFloor = "message-floor"
	// InvIterationCeiling: the Byzantine divide-and-conquer ran more
	// iterations than Lemma 3.10 allows.
	InvIterationCeiling = "iteration-ceiling"

	// InvRecycle: the long-lived service handed out a name that was
	// still live (double allocation) or released a name it never
	// granted to that client.
	InvRecycle = "recycle"
	// InvConservation: live names plus free names stopped summing to the
	// service capacity, or an epoch's join accounting does not add up —
	// a name leaked or was duplicated somewhere.
	InvConservation = "conservation"
	// InvRollback: an aborted epoch left a visible state change behind
	// (the checkpoint rollback contract).
	InvRollback = "rollback"
)

// Violation is one invariant breach, carrying everything needed to
// reproduce it: the execution's seed and its full strategy.
type Violation struct {
	// Exec is the execution index within the campaign.
	Exec int `json:"exec"`
	// Seed is the execution seed; replaying it with the strategy
	// reproduces the violation bit-for-bit.
	Seed int64 `json:"seed"`
	// Epoch keys service violations to the epoch they surfaced in
	// (always 0 for one-shot campaigns).
	Epoch int `json:"epoch,omitempty"`
	// Invariant is one of the Inv* codes.
	Invariant string `json:"invariant"`
	// Detail is a human-readable account of the breach.
	Detail string `json:"detail"`
	// Strategy is the replayable adversary strategy.
	Strategy Strategy `json:"strategy"`
}

// Expectation is the envelope an execution is checked against. The zero
// value checks nothing; use CrashExpectation / ByzantineExpectation for
// the theorem-derived defaults.
type Expectation struct {
	// RequireUnique demands strong renaming: distinct names in [1, n]
	// and every correct survivor decided.
	RequireUnique bool
	// RequireOrder demands order preservation (Theorem 1.3).
	RequireOrder bool
	// OnlyWhenAssumptionHolds gates RequireUnique/RequireOrder on the
	// run staying inside its theorem's hypothesis (Byzantine committee
	// composition) — outside it the theorems promise nothing.
	OnlyWhenAssumptionHolds bool
	// RoundCeiling bounds the execution's rounds; 0 disables.
	RoundCeiling int
	// MessageCeiling bounds honest messages; 0 disables.
	MessageCeiling int64
	// CheckMessageFloor enables the Theorem 1.4 Ω(n) check: honest
	// messages ≥ number of surviving correct nodes.
	CheckMessageFloor bool
	// IterationCeiling bounds the Byzantine divide-and-conquer
	// iterations (Lemma 3.10); 0 disables.
	IterationCeiling int
}

// log2Ceil returns ⌈log₂ n⌉ (0 for n ≤ 1).
func log2Ceil(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// CrashRoundCeiling is Theorem 1.2's deterministic round bound in this
// simulator's schedule: 9·⌈log₂ n⌉ + 1 (three rounds per phase,
// 3·⌈log₂ n⌉ phases, one response round) — the bound EXPERIMENTS.md E2
// measures the algorithm sitting exactly on.
func CrashRoundCeiling(n int) int { return 9*log2Ceil(n) + 1 }

// CrashMessageCeiling is the deterministic Θ(n²·log n) cap with the
// repo's measured worst-case constant 9 (EXPERIMENTS.md E4: paper
// constants, committee = everyone; scaled committees stay below 1.5).
func CrashMessageCeiling(n int) int64 {
	return int64(9 * float64(n) * float64(n) * float64(max(1, log2Ceil(n))))
}

// CrashExpectation is the Theorem 1.2 + 1.4 envelope for the crash
// algorithm: always unique, always within the deterministic round and
// message ceilings, never below the Ω(n) message floor. The crash
// algorithm carries no order guarantee (Table 1 "-").
func CrashExpectation(n int) Expectation {
	return Expectation{
		RequireUnique:     true,
		RoundCeiling:      CrashRoundCeiling(n),
		MessageCeiling:    CrashMessageCeiling(n),
		CheckMessageFloor: true,
	}
}

// ByzIterationCeiling is Lemma 3.10's divide-and-conquer bound with the
// implementation's slack for the f=0 bootstrap: 4·(f+1)·(⌈log₂ N⌉+1)+8,
// matching the round budget RunByzantine provisions.
func ByzIterationCeiling(bigN, f int) int {
	return 4*(f+1)*(log2Ceil(bigN)+1) + 8
}

// ByzantineExpectation is the Theorem 1.3 envelope: unique AND
// order-preserving whenever the committee assumption holds, iterations
// within Lemma 3.10.
func ByzantineExpectation(bigN, f int) Expectation {
	return Expectation{
		RequireUnique:           true,
		RequireOrder:            true,
		OnlyWhenAssumptionHolds: true,
		IterationCeiling:        ByzIterationCeiling(bigN, f),
	}
}

// Oracle checks executions against an expectation. The zero Oracle
// checks nothing.
type Oracle struct {
	Expect Expectation
}

// oracleScratch is the per-Check recomputation scratch, pooled because
// the campaign driver calls Check concurrently from its runner workers:
// an epoch-stamped decided-name table (no per-execution map fill/clear)
// plus the order-recheck pair buffer. A 500-execution campaign reuses a
// handful of these instead of allocating n-entry maps 500 times.
type oracleScratch struct {
	seenLink  []int32 // newID in [0, n] → first/latest link, epoch-gated
	seenStamp []uint32
	epoch     uint32
	overflow  map[int]int // decided names outside [0, n] (violations only)
	pairs     []orderPair
}

var oracleScratchPool = sync.Pool{New: func() any { return new(oracleScratch) }}

// reset prepares the scratch for one execution over target namespace
// [1, n]; bumping the epoch invalidates every previous stamp in O(1).
func (s *oracleScratch) reset(n int) {
	if cap(s.seenLink) < n+1 {
		s.seenLink = make([]int32, n+1)
		s.seenStamp = make([]uint32, n+1)
		s.epoch = 0
	}
	s.seenLink = s.seenLink[:n+1]
	s.seenStamp = s.seenStamp[:n+1]
	s.epoch++
	if s.epoch == 0 { // stamp wrap: old entries would look current
		clear(s.seenStamp)
		s.epoch = 1
	}
	if s.overflow != nil {
		clear(s.overflow)
	}
}

// record notes that link decided newID and returns the previously
// recorded link for the same name (dup=true), overwriting it — exactly
// the semantics of the map this replaces, including names outside the
// namespace (tracked in the overflow map so duplicate out-of-range
// decisions still surface as uniqueness breaches).
func (s *oracleScratch) record(newID, link int) (prev int, dup bool) {
	if newID >= 0 && newID < len(s.seenLink) {
		if s.seenStamp[newID] == s.epoch {
			prev = int(s.seenLink[newID])
			s.seenLink[newID] = int32(link)
			return prev, true
		}
		s.seenStamp[newID] = s.epoch
		s.seenLink[newID] = int32(link)
		return 0, false
	}
	if s.overflow == nil {
		s.overflow = make(map[int]int)
	}
	prev, dup = s.overflow[newID]
	s.overflow[newID] = link
	return prev, dup
}

// Check verifies one execution result against the expectation and
// returns the violations found (Invariant and Detail populated; the
// campaign driver fills Exec/Seed/Strategy). ids are the original
// identities per link, needed to recheck order preservation
// independently of the result's own verdict.
func (o Oracle) Check(n int, ids []int, res *renaming.Result) []Violation {
	var out []Violation
	add := func(invariant, format string, args ...any) {
		out = append(out, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}
	guaranteed := !o.Expect.OnlyWhenAssumptionHolds || res.AssumptionHolds

	scratch := oracleScratchPool.Get().(*oracleScratch)
	defer oracleScratchPool.Put(scratch)

	if o.Expect.RequireUnique && guaranteed {
		// Recompute distinctness and namespace tightness from the raw
		// decisions instead of trusting res.Unique; then cross-check the
		// two verdicts so a bookkeeping bug in either layer surfaces.
		scratch.reset(n)
		recomputedUnique := true
		decided := 0
		for link, newID := range res.NewIDByLink {
			if newID < 0 {
				continue
			}
			decided++
			if newID < 1 || newID > n {
				recomputedUnique = false
				add(InvNamespace, "link %d decided %d outside [1, %d]", link, newID, n)
			}
			if prev, dup := scratch.record(newID, link); dup {
				recomputedUnique = false
				add(InvUniqueness, "links %d and %d both decided %d", prev, link, newID)
			}
		}
		faulty := res.Crashes + res.Byzantine
		if decided < n-faulty {
			recomputedUnique = false
			add(InvUndecided, "%d of %d correct surviving nodes decided", decided, n-faulty)
		}
		if recomputedUnique != res.Unique {
			add(InvUniqueness, "result reports unique=%v but oracle recomputed %v", res.Unique, recomputedUnique)
		}
	}
	if o.Expect.RequireOrder && guaranteed {
		var bad string
		var breached bool
		scratch.pairs, bad, breached = orderBreach(ids, res.NewIDByLink, scratch.pairs)
		if breached {
			add(InvOrder, "%s", bad)
		}
	}
	if c := o.Expect.RoundCeiling; c > 0 && res.Rounds > c {
		add(InvRoundCeiling, "rounds %d exceed the deterministic bound %d", res.Rounds, c)
	}
	if c := o.Expect.MessageCeiling; c > 0 && res.HonestMessages > c {
		add(InvMessageCeiling, "honest messages %d exceed the Θ(n²·log n) cap %d", res.HonestMessages, c)
	}
	if o.Expect.CheckMessageFloor {
		floor := int64(n - res.Crashes - res.Byzantine)
		if res.HonestMessages < floor {
			add(InvMessageFloor, "honest messages %d below the Ω(n) floor %d (Theorem 1.4)", res.HonestMessages, floor)
		}
	}
	if c := o.Expect.IterationCeiling; c > 0 && res.Iterations > c {
		add(InvIterationCeiling, "iterations %d exceed the Lemma 3.10 bound %d", res.Iterations, c)
	}
	return out
}

// orderPair is one decided link in the order recheck.
type orderPair struct{ link, oldID, newID int }

// orderBreach independently rechecks order preservation over the
// decided links: sorted by original identity, new names must strictly
// increase. pairs is caller-owned scratch, returned with any growth so
// it can be reused across executions.
func orderBreach(ids []int, newIDs []int, pairs []orderPair) ([]orderPair, string, bool) {
	if len(ids) != len(newIDs) {
		return pairs, fmt.Sprintf("oracle: %d ids for %d links", len(ids), len(newIDs)), true
	}
	pairs = pairs[:0]
	for link, newID := range newIDs {
		if newID >= 0 {
			pairs = append(pairs, orderPair{link: link, oldID: ids[link], newID: newID})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].oldID < pairs[b].oldID })
	for i := 1; i < len(pairs); i++ {
		a, b := pairs[i-1], pairs[i]
		if b.newID <= a.newID {
			return pairs, fmt.Sprintf("links %d (old %d → new %d) and %d (old %d → new %d) swap order",
				a.link, a.oldID, a.newID, b.link, b.oldID, b.newID), true
		}
	}
	return pairs, "", false
}

// Codes compresses violations to their invariant codes (deduplicated,
// first-occurrence order) — the short form recorded in runner metrics.
func Codes(violations []Violation) []string {
	var codes []string
	seen := make(map[string]bool)
	for _, v := range violations {
		if !seen[v.Invariant] {
			seen[v.Invariant] = true
			codes = append(codes, v.Invariant)
		}
	}
	return codes
}
