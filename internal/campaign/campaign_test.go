package campaign

import (
	"bytes"
	"testing"

	"renaming/internal/runner"
)

// TestCampaignDeterministicAcrossWorkers is the satellite determinism
// check: a fixed-seed campaign must produce byte-identical JSONL
// telemetry at 1 and 8 workers (per-execution seeds are fixed before
// scheduling and the sink flushes in point order).
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	jsonl := func(workers int) []byte {
		var buf bytes.Buffer
		_, err := Run(Spec{
			Algo: AlgoCrash, N: 32, Executions: 12, Seed: 42,
			Budget:  BudgetDefault,
			Workers: workers,
			Sinks:   []runner.Sink{&runner.JSONLSink{W: &buf, OmitVolatile: true}},
		})
		if err != nil {
			t.Fatalf("campaign (workers=%d): %v", workers, err)
		}
		return buf.Bytes()
	}
	one := jsonl(1)
	eight := jsonl(8)
	if len(one) == 0 {
		t.Fatal("campaign emitted no telemetry")
	}
	if !bytes.Equal(one, eight) {
		t.Fatalf("JSONL differs between workers=1 (%d bytes) and workers=8 (%d bytes)", len(one), len(eight))
	}
}

// TestCampaignCrashNoViolations: the paper's crash algorithm must
// survive a randomized mixed campaign with zero oracle violations.
func TestCampaignCrashNoViolations(t *testing.T) {
	out, err := Run(Spec{Algo: AlgoCrash, N: 48, Executions: 25, Seed: 3, Budget: BudgetDefault})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("crash campaign produced %d violations; first: %+v", len(out.Violations), out.Violations[0])
	}
	if len(out.Records) != 25 {
		t.Fatalf("want 25 records, got %d", len(out.Records))
	}
	for _, tail := range out.Tails {
		if tail.Count != 25 {
			t.Fatalf("tail %s aggregated %d executions, want 25", tail.Metric, tail.Count)
		}
		if !tail.WithinEnvelope {
			t.Fatalf("tail %s outside envelope: max %.3f > %.3f", tail.Metric, tail.Max, tail.Envelope)
		}
		if tail.P50 > tail.P95 || tail.P95 > tail.P99 || tail.P99 > tail.Max {
			t.Fatalf("tail %s quantiles not monotone: %+v", tail.Metric, tail)
		}
	}
}

// TestCampaignByzantineNoViolations: same for the Byzantine algorithm
// under uniformly drawn corruption sets inside the assumption bound.
func TestCampaignByzantineNoViolations(t *testing.T) {
	out, err := Run(Spec{Algo: AlgoByzantine, N: 24, Executions: 8, Seed: 5, Budget: BudgetDefault})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("byzantine campaign produced %d violations; first: %+v", len(out.Violations), out.Violations[0])
	}
}

// TestCampaignBaselineSameSchedules: the baseline algo must accept the
// same generated crash schedules (shared replay path).
func TestCampaignBaselineSameSchedules(t *testing.T) {
	out, err := Run(Spec{Algo: AlgoBaselineA2A, N: 32, Executions: 6, Seed: 9, Budget: BudgetDefault})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("baseline campaign produced %d violations; first: %+v", len(out.Violations), out.Violations[0])
	}
}

// TestGenerateDeterministicAndValid: strategies are a pure function of
// (spec, seed) and respect the generation envelope.
func TestGenerateDeterministicAndValid(t *testing.T) {
	for _, kind := range []GeneratorKind{GenEarlyBurst, GenTrickle, GenTargeted, GenMixed} {
		spec := GenSpec{Kind: kind, N: 64, Budget: 16, Rounds: CrashRoundCeiling(64)}
		for seed := int64(0); seed < 20; seed++ {
			a, err := Generate(spec, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", kind, seed, err)
			}
			b, _ := Generate(spec, seed)
			if len(a.Schedule) != len(b.Schedule) || a.ScheduleSeed != b.ScheduleSeed {
				t.Fatalf("%s seed %d: generation not deterministic", kind, seed)
			}
			for i := range a.Schedule {
				if a.Schedule[i] != b.Schedule[i] {
					t.Fatalf("%s seed %d: event %d differs between generations", kind, seed, i)
				}
			}
			if len(a.Schedule) > spec.Budget {
				t.Fatalf("%s seed %d: %d events exceed budget %d", kind, seed, len(a.Schedule), spec.Budget)
			}
			nodes := make(map[int]bool)
			for i, ev := range a.Schedule {
				if ev.Node < 0 || ev.Node >= spec.N {
					t.Fatalf("%s seed %d: node %d out of range", kind, seed, ev.Node)
				}
				if nodes[ev.Node] {
					t.Fatalf("%s seed %d: node %d crashed twice", kind, seed, ev.Node)
				}
				nodes[ev.Node] = true
				if ev.Round < 0 || ev.Round >= spec.Rounds {
					t.Fatalf("%s seed %d: round %d out of [0,%d)", kind, seed, ev.Round, spec.Rounds)
				}
				if i > 0 && a.Schedule[i-1].Round > ev.Round {
					t.Fatalf("%s seed %d: schedule not sorted by round", kind, seed)
				}
			}
		}
	}
	for _, kind := range []GeneratorKind{GenByzUniform, GenByzSkew, GenByzSilent} {
		spec := GenSpec{Kind: kind, N: 64, Budget: 10}
		for seed := int64(0); seed < 20; seed++ {
			strat, err := Generate(spec, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", kind, seed, err)
			}
			if len(strat.Byzantine) == 0 || len(strat.Byzantine) > spec.Budget {
				t.Fatalf("%s seed %d: %d corruptions outside (0,%d]", kind, seed, len(strat.Byzantine), spec.Budget)
			}
			if _, err := strat.ByzMap(); err != nil {
				t.Fatalf("%s seed %d: %v", kind, seed, err)
			}
		}
	}
}

// TestGenerateMixedFault: the mixed crash+Byzantine family draws both
// lists from one budget on disjoint links, always corrupts at least one
// node, and salts every crash event.
func TestGenerateMixedFault(t *testing.T) {
	spec := GenSpec{Kind: GenMixedFault, N: 64, Budget: 12, Rounds: CrashRoundCeiling(64)}
	sawCrash := false
	for seed := int64(0); seed < 30; seed++ {
		a, err := Generate(spec, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, _ := Generate(spec, seed)
		if len(a.Byzantine) != len(b.Byzantine) || len(a.Schedule) != len(b.Schedule) {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
		total := len(a.Byzantine) + len(a.Schedule)
		if len(a.Byzantine) < 1 || total > spec.Budget {
			t.Fatalf("seed %d: %d byz + %d crashes outside (0,%d]", seed, len(a.Byzantine), len(a.Schedule), spec.Budget)
		}
		links := make(map[int]bool)
		for _, asn := range a.Byzantine {
			if links[asn.Link] {
				t.Fatalf("seed %d: link %d assigned twice", seed, asn.Link)
			}
			links[asn.Link] = true
		}
		for _, ev := range a.Schedule {
			sawCrash = true
			if links[ev.Node] {
				t.Fatalf("seed %d: node %d both Byzantine and crashed", seed, ev.Node)
			}
			links[ev.Node] = true
			if ev.Salt == 0 {
				t.Fatalf("seed %d: crash event missing its salt", seed)
			}
			if ev.TargetCommittee {
				t.Fatalf("seed %d: mixed-fault must not emit targeted-committee events", seed)
			}
		}
		if _, err := a.ByzMap(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if !sawCrash {
		t.Fatal("no seed produced a crash event; the mix never exercises the crash path")
	}
}

// TestCampaignMixedFaultNoViolations: the Byzantine algorithm must
// survive simultaneous corruptions and honest-node crashes — crashed
// committee members count toward the assumption bound, crashed honest
// nodes are excused from deciding.
func TestCampaignMixedFaultNoViolations(t *testing.T) {
	out, err := Run(Spec{
		Algo: AlgoByzantine, N: 24, Executions: 8, Seed: 11,
		Generator: GenMixedFault, Budget: BudgetDefault,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("mixed-fault campaign produced %d violations; first: %+v", len(out.Violations), out.Violations[0])
	}
	sawCrash := false
	for _, rec := range out.Records {
		if rec.Metrics.Crashes > 0 {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatal("no execution crashed a node; the campaign never exercised the mixed path")
	}
}

// TestCampaignZeroFaultBudget: an explicit Budget of 0 is a zero-fault
// campaign (previously impossible — 0 was conflated with "unset"): the
// normalized budget stays 0 and every execution runs failure-free.
func TestCampaignZeroFaultBudget(t *testing.T) {
	out, err := Run(Spec{Algo: AlgoCrash, N: 32, Executions: 4, Seed: 7, Budget: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Spec.Budget != 0 {
		t.Fatalf("normalized budget = %d, want the explicit 0", out.Spec.Budget)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("zero-fault campaign violated the oracle: %+v", out.Violations[0])
	}
	for _, rec := range out.Records {
		if rec.Metrics.Crashes != 0 {
			t.Fatalf("exec %d crashed %d nodes under a zero budget", rec.Index, rec.Metrics.Crashes)
		}
	}
}

// TestSpecValidation rejects mismatched generator/algo pairs and bad
// sizes.
func TestSpecValidation(t *testing.T) {
	cases := []Spec{
		{Algo: AlgoCrash, N: 0, Executions: 1},
		{Algo: AlgoCrash, N: 32, Executions: 0},
		{Algo: AlgoCrash, N: 32, Executions: 1, Generator: GenByzUniform},
		{Algo: AlgoByzantine, N: 32, Executions: 1, Generator: GenMixed},
		{Algo: AlgoCrash, N: 32, Executions: 1, Budget: 32},
		{Algo: AlgoCrash, N: 32, Executions: 1, Budget: -2},
	}
	for i, spec := range cases {
		if _, err := spec.withDefaults(); err == nil {
			t.Fatalf("case %d: expected validation error for %+v", i, spec)
		}
	}
}
