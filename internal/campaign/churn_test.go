package campaign

import (
	"bytes"
	"reflect"
	"testing"

	"renaming/internal/adversary"
	"renaming/internal/runner"
	"renaming/internal/service"
)

func TestGenerateChurnDeterministicAndBounded(t *testing.T) {
	spec := GenSpec{Kind: GenChurn, N: 64, Budget: 12, Rounds: 40, Epochs: 20, BatchMax: 8}
	a, err := Generate(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (spec, seed) generated different churn strategies")
	}
	if a.Generator != GenChurn {
		t.Fatalf("generator %q, want %q", a.Generator, GenChurn)
	}
	if len(a.Churn) > spec.Budget {
		t.Fatalf("%d churn events exceed budget %d", len(a.Churn), spec.Budget)
	}
	for i, ev := range a.Churn {
		if ev.Epoch < 0 || ev.Epoch >= spec.Epochs {
			t.Errorf("event %d: epoch %d outside [0, %d)", i, ev.Epoch, spec.Epochs)
		}
		if ev.Node < 0 || ev.Node >= spec.BatchMax {
			t.Errorf("event %d: node %d outside [0, %d)", i, ev.Node, spec.BatchMax)
		}
		if ev.Round < 0 || ev.Round >= spec.Rounds {
			t.Errorf("event %d: round %d outside [0, %d)", i, ev.Round, spec.Rounds)
		}
		if i > 0 {
			prev := a.Churn[i-1]
			if ev.Epoch < prev.Epoch || (ev.Epoch == prev.Epoch && ev.Round < prev.Round) {
				t.Errorf("events %d and %d out of (epoch, round) order", i-1, i)
			}
		}
	}
}

func TestChurnFaultScopesEventsToEpochs(t *testing.T) {
	strat := Strategy{
		Generator:    GenChurn,
		ScheduleSeed: 99,
		Churn: []ChurnEvent{
			{Epoch: 0, Event: adversary.Event{Round: 1, Node: 0, Salt: 1}},
			{Epoch: 2, Event: adversary.Event{Round: 3, Node: 1, Salt: 2}},
			{Epoch: 2, Event: adversary.Event{Round: 5, Node: 2, Salt: 3}},
		},
	}
	fault := strat.ChurnFault()
	for epoch, wantEvents := range map[int]int{0: 1, 1: 0, 2: 2, 3: 0} {
		spec := fault(epoch, 8)
		if wantEvents == 0 {
			// Fault-free epochs carry no custom adversary at all.
			if spec.Custom != nil {
				t.Errorf("epoch %d: expected empty fault spec, got %+v", epoch, spec)
			}
			continue
		}
		sched, ok := spec.Custom.(*adversary.EventSchedule)
		if !ok {
			t.Fatalf("epoch %d: fault spec carries %T, want *adversary.EventSchedule", epoch, spec.Custom)
		}
		if len(sched.Events) != wantEvents {
			t.Errorf("epoch %d: %d events scheduled, want %d", epoch, len(sched.Events), wantEvents)
		}
		if sched.Seed != strat.ScheduleSeed {
			t.Errorf("epoch %d: schedule seed %d, want %d", epoch, sched.Seed, strat.ScheduleSeed)
		}
	}
}

// TestServiceCampaignSmoke runs a small churn campaign end-to-end and
// requires a clean oracle plus service-specific telemetry in the
// records and tails.
func TestServiceCampaignSmoke(t *testing.T) {
	out, err := Run(Spec{
		Algo: AlgoService, N: 32, Executions: 8, Epochs: 40,
		Budget: 8, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("service campaign flagged %d violations: %+v", len(out.Violations), out.Violations[0])
	}
	if len(out.Records) != 8 {
		t.Fatalf("%d records, want 8", len(out.Records))
	}
	var joined, recycled float64
	for _, rec := range out.Records {
		if rec.Err != "" {
			t.Fatalf("execution %d failed: %s", rec.Index, rec.Err)
		}
		if rec.Metrics.Extra["epochs"] != 40 {
			t.Fatalf("execution %d ran %v epochs, want 40", rec.Index, rec.Metrics.Extra["epochs"])
		}
		joined += rec.Metrics.Extra["joined"]
		recycled += rec.Metrics.Extra["recycled"]
	}
	if joined == 0 {
		t.Error("no client ever joined across the campaign")
	}
	if recycled == 0 {
		t.Error("no name was ever recycled across the campaign")
	}
	metrics := make(map[string]bool)
	for _, tail := range out.Tails {
		metrics[tail.Metric] = true
	}
	if !metrics["recycled"] || !metrics["abortedEpochs"] {
		t.Errorf("service tails missing recycled/abortedEpochs: %v", metrics)
	}
}

// TestServiceCampaignDeterministicAcrossWorkers mirrors the one-shot
// campaign determinism check for the churn path.
func TestServiceCampaignDeterministicAcrossWorkers(t *testing.T) {
	jsonl := func(workers int) []byte {
		var buf bytes.Buffer
		_, err := Run(Spec{
			Algo: AlgoService, N: 32, Executions: 6, Epochs: 8,
			Budget: 6, Seed: 23, Workers: workers,
			Sinks: []runner.Sink{&runner.JSONLSink{W: &buf, OmitVolatile: true}},
		})
		if err != nil {
			t.Fatalf("campaign (workers=%d): %v", workers, err)
		}
		return buf.Bytes()
	}
	one := jsonl(1)
	eight := jsonl(8)
	if len(one) == 0 {
		t.Fatal("campaign produced no JSONL output")
	}
	if !bytes.Equal(one, eight) {
		t.Fatal("service campaign JSONL differs between 1 and 8 workers")
	}
}

func TestSpecRejectsMismatchedChurnPairing(t *testing.T) {
	if _, err := Run(Spec{Algo: AlgoCrash, N: 32, Executions: 1, Generator: GenChurn}); err == nil {
		t.Error("churn generator with a one-shot algo was accepted")
	}
	if _, err := Run(Spec{Algo: AlgoService, N: 32, Executions: 1, Generator: GenMixed}); err == nil {
		t.Error("one-shot generator with the service algo was accepted")
	}
}

// TestServiceOracleFlagsDoctoredEpochs feeds hand-corrupted epoch
// results to the oracle and requires each tampering to surface as the
// right invariant code.
func TestServiceOracleFlagsDoctoredEpochs(t *testing.T) {
	base := func() *service.EpochResult {
		return &service.EpochResult{
			Epoch: 0, JoinsRequested: 2, Joined: 2,
			Assignments: []service.Assignment{
				{Client: 10, Name: 1, Rank: 1},
				{Client: 20, Name: 2, Rank: 2},
			},
			Live: 2, FreeNames: 6, PeakLive: 2,
			Unique: true, AssumptionHolds: true,
		}
	}
	has := func(viols []Violation, invariant string) bool {
		for _, v := range viols {
			if v.Invariant == invariant {
				return true
			}
		}
		return false
	}

	t.Run("clean", func(t *testing.T) {
		if viols := NewServiceOracle(8, service.CoreCrash).CheckEpoch(base()); len(viols) != 0 {
			t.Fatalf("clean epoch flagged: %+v", viols)
		}
	})
	t.Run("duplicate rank", func(t *testing.T) {
		er := base()
		er.Assignments[1].Rank = 1
		if viols := NewServiceOracle(8, service.CoreCrash).CheckEpoch(er); !has(viols, InvUniqueness) {
			t.Fatalf("duplicate rank not flagged: %+v", viols)
		}
	})
	t.Run("name outside namespace", func(t *testing.T) {
		er := base()
		er.Assignments[0].Name = 9
		if viols := NewServiceOracle(8, service.CoreCrash).CheckEpoch(er); !has(viols, InvNamespace) {
			t.Fatalf("out-of-range name not flagged: %+v", viols)
		}
	})
	t.Run("double grant of a live name", func(t *testing.T) {
		o := NewServiceOracle(8, service.CoreCrash)
		if viols := o.CheckEpoch(base()); len(viols) != 0 {
			t.Fatalf("setup epoch flagged: %+v", viols)
		}
		er := &service.EpochResult{
			Epoch: 1, JoinsRequested: 1, Joined: 1,
			Assignments: []service.Assignment{{Client: 30, Name: 1, Rank: 1}},
			Live:        3, FreeNames: 5, PeakLive: 3,
			Unique: true, AssumptionHolds: true,
		}
		if viols := o.CheckEpoch(er); !has(viols, InvRecycle) {
			t.Fatalf("double grant not flagged: %+v", viols)
		}
	})
	t.Run("release of unowned name", func(t *testing.T) {
		er := base()
		er.LeavesRequested = 1
		er.Released = []service.Release{{Client: 99, Name: 5}}
		if viols := NewServiceOracle(8, service.CoreCrash).CheckEpoch(er); !has(viols, InvRecycle) {
			t.Fatalf("bogus release not flagged: %+v", viols)
		}
	})
	t.Run("conservation breach", func(t *testing.T) {
		er := base()
		er.FreeNames = 7
		if viols := NewServiceOracle(8, service.CoreCrash).CheckEpoch(er); !has(viols, InvConservation) {
			t.Fatalf("live+free ≠ capacity not flagged: %+v", viols)
		}
	})
	t.Run("aborted epoch with deltas", func(t *testing.T) {
		er := base()
		er.Aborted = true
		er.Live = 0
		er.FreeNames = 8
		if viols := NewServiceOracle(8, service.CoreCrash).CheckEpoch(er); !has(viols, InvRollback) {
			t.Fatalf("dirty abort not flagged: %+v", viols)
		}
	})
	t.Run("round ceiling", func(t *testing.T) {
		er := base()
		er.Rounds = 1000
		if viols := NewServiceOracle(8, service.CoreCrash).CheckEpoch(er); !has(viols, InvRoundCeiling) {
			t.Fatalf("round blow-up not flagged: %+v", viols)
		}
	})
	t.Run("order swap under the byzantine core", func(t *testing.T) {
		er := base()
		er.Assignments = []service.Assignment{
			{Client: 20, Name: 1, Rank: 1},
			{Client: 10, Name: 2, Rank: 2},
		}
		viols := NewServiceOracle(8, service.CoreByzantine).CheckEpoch(er)
		if !has(viols, InvOrder) {
			t.Fatalf("order swap not flagged: %+v", viols)
		}
		if crash := NewServiceOracle(8, service.CoreCrash).CheckEpoch(er); has(crash, InvOrder) {
			t.Fatalf("crash core flagged order (carries no order guarantee): %+v", crash)
		}
	})
}
