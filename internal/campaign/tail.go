package campaign

import (
	"math"

	"renaming/internal/runner"
	"renaming/internal/sim"
	"renaming/internal/stats"
)

// bootLabel is the DeriveSeed stream label for bootstrap resampling
// ("boot").
const bootLabel uint64 = 0x626f6f74

// bootResamples is the bootstrap resample count for the p99 CI.
const bootResamples = 500

// EnvelopeConstant is the w.h.p. message-envelope constant for
// Theorem 1.2: an execution with f actual crashes is "inside the
// envelope" while honest messages ≤ EnvelopeConstant·(f+log n)·n·log n.
// Randomized mixed-generator campaigns measured the worst per-execution
// ratio at ≈42 (n=64), ≈57 (n=128), ≈56 (n=256) and ≈41 (n=1024) —
// flat-to-decreasing in n, confirming the asymptotics; 128 gives the
// observed worst ≈2.2× headroom while still catching a blow-up of the
// O((f+log n)·n·log n) shape itself.
const EnvelopeConstant = 128

// Tail is the tail summary of one campaign metric: nearest-rank
// quantiles, the maximum, a seeded bootstrap CI for the p99, and the
// theorem envelope the tail is compared against (0 = no envelope).
type Tail struct {
	Metric string  `json:"metric"`
	Count  int     `json:"count"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
	// P99CI is a 95% percentile-bootstrap confidence interval for the
	// p99, seeded from the campaign seed.
	P99CI stats.CI `json:"p99CI"`
	// Envelope is the theorem bound this metric is checked against;
	// 0 means the metric carries no envelope (reported for scale only).
	Envelope float64 `json:"envelope,omitempty"`
	// WithinEnvelope is Max ≤ Envelope (trivially true without one):
	// with the *maximum* inside the envelope, every quantile is too.
	WithinEnvelope bool `json:"withinEnvelope"`
}

// Tails reduces a campaign's records to tail statistics per metric. The
// metrics and their envelopes:
//
//   - rounds vs the deterministic round ceiling (crash algo),
//   - honestMessages vs the w.h.p. model EnvelopeConstant·(f+log n)·n·log n
//     evaluated at each execution's own f (reported as envelopeRatio ≤ 1),
//   - honestBits, crashes/byzantine: scale only, no envelope.
func Tails(spec Spec, records []runner.Record) []Tail {
	n := float64(spec.N)
	logn := math.Log2(math.Max(2, n))
	var rounds, msgs, bits, faults, iters, ratios []float64
	var recycled, aborted []float64
	for _, rec := range records {
		m := rec.Metrics
		rounds = append(rounds, float64(m.Rounds))
		msgs = append(msgs, float64(m.HonestMessages))
		bits = append(bits, float64(m.HonestBits))
		f := float64(m.Crashes + m.Byzantine)
		faults = append(faults, f)
		iters = append(iters, float64(m.Iterations))
		model := EnvelopeConstant * (f + logn) * n * logn
		ratios = append(ratios, float64(m.HonestMessages)/model)
		recycled = append(recycled, m.Extra["recycled"])
		aborted = append(aborted, m.Extra["abortedEpochs"])
	}

	tails := []Tail{
		tailOf("rounds", rounds, float64(spec.Oracle.Expect.RoundCeiling), spec.Seed),
		tailOf("honestMessages", msgs, float64(spec.Oracle.Expect.MessageCeiling), spec.Seed),
		tailOf("honestBits", bits, 0, spec.Seed),
		tailOf("faults", faults, float64(spec.Budget), spec.Seed),
	}
	if spec.Algo == AlgoService {
		// Service executions sum many per-epoch one-shot runs, so the
		// single-run envelopes do not apply; recycling and abort counts
		// are the service-specific tails instead (scale only).
		tails = append(tails,
			tailOf("recycled", recycled, 0, spec.Seed),
			tailOf("abortedEpochs", aborted, 0, spec.Seed))
	} else if spec.Algo == AlgoByzantine {
		// Lemma 3.10's divide-and-conquer iteration bound is the
		// Theorem 1.3 time envelope.
		tails = append(tails, tailOf("iterations", iters,
			float64(spec.Oracle.Expect.IterationCeiling), spec.Seed))
	} else {
		// The w.h.p. envelope of Theorem 1.2 is per-execution (it depends
		// on each run's own f), so it is aggregated as a ratio: ≤ 1 means
		// inside the envelope.
		tails = append(tails, tailOf("envelopeRatio", ratios, 1, spec.Seed))
	}
	return tails
}

func tailOf(metric string, xs []float64, envelope float64, seed int64) Tail {
	t := Tail{
		Metric:   metric,
		Count:    len(xs),
		P50:      stats.Quantile(xs, 0.50),
		P95:      stats.Quantile(xs, 0.95),
		P99:      stats.Quantile(xs, 0.99),
		Max:      stats.Quantile(xs, 1),
		Envelope: envelope,
	}
	t.P99CI = stats.BootstrapQuantileCI(xs, 0.99, 0.95, bootResamples,
		sim.DeriveSeed(seed, bootLabel^labelOf(metric)))
	t.WithinEnvelope = envelope <= 0 || t.Max <= envelope
	return t
}

// labelOf derives a distinct bootstrap stream label per metric name so
// two metrics never share resampling randomness.
func labelOf(metric string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(metric); i++ {
		h ^= uint64(metric[i])
		h *= 1099511628211
	}
	return h
}
