package campaign

import (
	"testing"

	"renaming"
)

// res builds a synthetic result for oracle unit tests: n nodes, given
// decisions, everything else healthy.
func res(newIDs []int, mutate ...func(*renaming.Result)) *renaming.Result {
	r := &renaming.Result{
		NewIDByLink:    newIDs,
		Unique:         true,
		Rounds:         10,
		HonestMessages: int64(len(newIDs)) * 10,
	}
	for _, m := range mutate {
		m(r)
	}
	return r
}

func invariants(vs []Violation) map[string]bool {
	out := map[string]bool{}
	for _, v := range vs {
		out[v.Invariant] = true
	}
	return out
}

func TestOracleCleanRunPasses(t *testing.T) {
	o := Oracle{Expect: CrashExpectation(4)}
	ids := []int{10, 20, 30, 40}
	if vs := o.Check(4, ids, res([]int{1, 2, 3, 4})); len(vs) != 0 {
		t.Fatalf("clean run flagged: %+v", vs)
	}
}

func TestOracleDetectsDuplicate(t *testing.T) {
	o := Oracle{Expect: CrashExpectation(4)}
	vs := o.Check(4, []int{10, 20, 30, 40}, res([]int{1, 2, 2, 4}))
	got := invariants(vs)
	// Both the duplicate itself and the disagreement with the result's
	// own unique=true verdict surface as uniqueness violations.
	if !got[InvUniqueness] {
		t.Fatalf("duplicate not flagged: %+v", vs)
	}
}

func TestOracleDetectsNamespaceBreach(t *testing.T) {
	o := Oracle{Expect: CrashExpectation(4)}
	vs := o.Check(4, []int{10, 20, 30, 40}, res([]int{1, 2, 3, 9}))
	if !invariants(vs)[InvNamespace] {
		t.Fatalf("out-of-range name not flagged: %+v", vs)
	}
}

func TestOracleDetectsUndecidedSurvivor(t *testing.T) {
	o := Oracle{Expect: CrashExpectation(4)}
	// No crashes, but link 2 never decided.
	vs := o.Check(4, []int{10, 20, 30, 40}, res([]int{1, 2, -1, 4}))
	if !invariants(vs)[InvUndecided] {
		t.Fatalf("undecided survivor not flagged: %+v", vs)
	}
	// With one crash the same decision vector is fine.
	crashed := res([]int{1, 2, -1, 4}, func(r *renaming.Result) { r.Crashes = 1 })
	if vs := o.Check(4, []int{10, 20, 30, 40}, crashed); len(vs) != 0 {
		t.Fatalf("crashed node's hole flagged: %+v", vs)
	}
}

func TestOracleDetectsOrderBreach(t *testing.T) {
	o := Oracle{Expect: ByzantineExpectation(64, 0)}
	// ids ascending but names 2,1 swap the first two.
	vs := o.Check(4, []int{10, 20, 30, 40},
		res([]int{2, 1, 3, 4}, func(r *renaming.Result) {
			r.AssumptionHolds = true
			r.OrderPreserving = true // the oracle must not trust this
			r.Unique = true
		}))
	if !invariants(vs)[InvOrder] {
		t.Fatalf("order swap not flagged: %+v", vs)
	}
}

func TestOracleGatesOnAssumption(t *testing.T) {
	o := Oracle{Expect: ByzantineExpectation(64, 0)}
	// Outside the assumption the theorem promises nothing: a duplicate
	// must not be flagged.
	vs := o.Check(4, []int{10, 20, 30, 40},
		res([]int{1, 1, 3, 4}, func(r *renaming.Result) { r.AssumptionHolds = false }))
	if got := invariants(vs); got[InvUniqueness] || got[InvOrder] {
		t.Fatalf("gated checks ran outside the assumption: %+v", vs)
	}
}

func TestOracleDetectsCeilingsAndFloor(t *testing.T) {
	expect := CrashExpectation(4)
	o := Oracle{Expect: expect}
	over := res([]int{1, 2, 3, 4}, func(r *renaming.Result) {
		r.Rounds = expect.RoundCeiling + 1
		r.HonestMessages = expect.MessageCeiling + 1
	})
	got := invariants(o.Check(4, []int{10, 20, 30, 40}, over))
	if !got[InvRoundCeiling] || !got[InvMessageCeiling] {
		t.Fatalf("ceiling breaches not flagged: %+v", got)
	}
	starved := res([]int{1, 2, 3, 4}, func(r *renaming.Result) { r.HonestMessages = 2 })
	if !invariants(o.Check(4, []int{10, 20, 30, 40}, starved))[InvMessageFloor] {
		t.Fatal("Ω(n) floor breach not flagged")
	}
}

func TestOracleDetectsIterationCeiling(t *testing.T) {
	o := Oracle{Expect: ByzantineExpectation(64, 2)}
	over := res([]int{1, 2, 3, 4}, func(r *renaming.Result) {
		r.AssumptionHolds = true
		r.Iterations = o.Expect.IterationCeiling + 1
	})
	if !invariants(o.Check(4, []int{10, 20, 30, 40}, over))[InvIterationCeiling] {
		t.Fatal("iteration ceiling breach not flagged")
	}
}

func TestCeilingFormulas(t *testing.T) {
	if got := CrashRoundCeiling(64); got != 9*6+1 {
		t.Fatalf("CrashRoundCeiling(64) = %d, want 55", got)
	}
	if got := CrashRoundCeiling(1024); got != 9*10+1 {
		t.Fatalf("CrashRoundCeiling(1024) = %d, want 91", got)
	}
	if got := ByzIterationCeiling(256, 3); got != 4*4*(8+1)+8 {
		t.Fatalf("ByzIterationCeiling(256,3) = %d, want %d", got, 4*4*9+8)
	}
}

func TestCodesDedup(t *testing.T) {
	codes := Codes([]Violation{
		{Invariant: InvUniqueness}, {Invariant: InvNamespace},
		{Invariant: InvUniqueness},
	})
	if len(codes) != 2 || codes[0] != InvUniqueness || codes[1] != InvNamespace {
		t.Fatalf("codes = %v", codes)
	}
}
