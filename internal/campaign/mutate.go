package campaign

import (
	"math/rand"
	"sort"

	"renaming/internal/adversary"
)

// mutateStrategy returns a copy of strat with one local edit applied —
// the greedy-mutation step of the adversary search. The operator pool:
//
//   - move: shift one crash event's round by ±1,
//   - add: crash one more node (fresh salt, so existing events' mid-send
//     filters are untouched — the property the Salt field exists for),
//   - drop: remove one crash event,
//   - retarget: move an event to an uncrashed node, or flip its
//     targeted-committee flag (crash generators only; the Byzantine
//     engine's committees are not Peek-resolvable),
//   - toggle-midsend: flip one event's mid-send marker,
//   - behavior / corrupt / uncorrupt: Byzantine-list edits for the
//     byz-* and mixed-fault families.
//
// Every choice is drawn from rng, so a fixed rng stream makes the
// mutation chain deterministic. Budget and node-disjointness are
// preserved; an inapplicable operator falls through to another pick.
func mutateStrategy(strat Strategy, spec GenSpec, rng *rand.Rand) Strategy {
	out := strat
	out.Schedule = append([]adversary.Event(nil), strat.Schedule...)
	out.Byzantine = append([]ByzAssignment(nil), strat.Byzantine...)
	rounds := spec.Rounds
	if rounds <= 0 {
		rounds = 1
	}

	var ops []func() bool
	if len(out.Schedule) > 0 {
		ops = append(ops,
			func() bool { // move
				i := rng.Intn(len(out.Schedule))
				r := out.Schedule[i].Round + 1 - 2*rng.Intn(2)
				if r < 0 || r >= rounds {
					return false
				}
				out.Schedule[i].Round = r
				return true
			},
			func() bool { // drop
				i := rng.Intn(len(out.Schedule))
				out.Schedule = append(out.Schedule[:i], out.Schedule[i+1:]...)
				return true
			},
			func() bool { // toggle-midsend
				i := rng.Intn(len(out.Schedule))
				out.Schedule[i].MidSend = !out.Schedule[i].MidSend
				return true
			},
			func() bool { // retarget: new node, or committee flag
				i := rng.Intn(len(out.Schedule))
				if !spec.Kind.IsByz() && rng.Intn(2) == 0 {
					out.Schedule[i].TargetCommittee = !out.Schedule[i].TargetCommittee
					return true
				}
				node, ok := freeLink(&out, spec.N, rng)
				if !ok {
					return false
				}
				out.Schedule[i].Node = node
				return true
			},
		)
	}
	if len(out.Schedule)+len(out.Byzantine) < spec.Budget {
		ops = append(ops, func() bool { // add
			node, ok := freeLink(&out, spec.N, rng)
			if !ok {
				return false
			}
			out.Schedule = append(out.Schedule, adversary.Event{
				Round:   rng.Intn(rounds),
				Node:    node,
				MidSend: rng.Intn(2) == 0,
				Salt:    nonzeroSalt(rng),
			})
			return true
		})
	}
	if spec.Kind.IsByz() {
		if len(out.Byzantine) > 0 {
			ops = append(ops, func() bool { // behavior swap
				i := rng.Intn(len(out.Byzantine))
				out.Byzantine[i].Behavior = byzUniformPool[rng.Intn(len(byzUniformPool))]
				return true
			})
		}
		if len(out.Byzantine) > 1 {
			ops = append(ops, func() bool { // uncorrupt (keep ≥ 1)
				i := rng.Intn(len(out.Byzantine))
				out.Byzantine = append(out.Byzantine[:i], out.Byzantine[i+1:]...)
				return true
			})
		}
		if len(out.Schedule)+len(out.Byzantine) < spec.Budget {
			ops = append(ops, func() bool { // corrupt
				link, ok := freeLink(&out, spec.N, rng)
				if !ok {
					return false
				}
				out.Byzantine = append(out.Byzantine, ByzAssignment{
					Link: link, Behavior: byzUniformPool[rng.Intn(len(byzUniformPool))],
				})
				return true
			})
		}
	}
	if len(ops) == 0 {
		return out
	}
	for attempt := 0; attempt < 8; attempt++ {
		if ops[rng.Intn(len(ops))]() {
			break
		}
	}
	sort.SliceStable(out.Schedule, func(a, b int) bool {
		return out.Schedule[a].Round < out.Schedule[b].Round
	})
	sort.SliceStable(out.Byzantine, func(a, b int) bool {
		return out.Byzantine[a].Link < out.Byzantine[b].Link
	})
	return out
}

// freeLink draws a link untouched by the strategy (not crashed, not
// corrupted), scanning from a random start for determinism without
// rejection-sampling an unbounded number of rng draws.
func freeLink(strat *Strategy, n int, rng *rand.Rand) (int, bool) {
	used := make(map[int]bool, len(strat.Schedule)+len(strat.Byzantine))
	for _, ev := range strat.Schedule {
		used[ev.Node] = true
	}
	for _, a := range strat.Byzantine {
		used[a.Link] = true
	}
	start := rng.Intn(n)
	for off := 0; off < n; off++ {
		link := (start + off) % n
		if !used[link] {
			return link, true
		}
	}
	return 0, false
}
