package campaign

import (
	"bytes"
	"math/rand"
	"testing"

	"renaming/internal/runner"
	"renaming/internal/sim"
)

// TestSearchDeterministicAcrossWorkers: a full search run — planning,
// bandit allocation, mutation, descent, evaluation — must produce
// byte-identical JSONL telemetry and an identical outcome at 1 and 8
// workers. This is the satellite determinism gate for the search path.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]byte, *SearchOutcome) {
		var buf bytes.Buffer
		out, err := Search(SearchSpec{
			Base: Spec{
				Algo: AlgoCrash, N: 32, Seed: 42, Budget: BudgetDefault,
				Workers: workers,
				Sinks:   []runner.Sink{&runner.JSONLSink{W: &buf, OmitVolatile: true}},
			},
			Objective:   ObjectiveRounds,
			BudgetExecs: 40,
			PopSize:     8,
		})
		if err != nil {
			t.Fatalf("search (workers=%d): %v", workers, err)
		}
		return buf.Bytes(), out
	}
	oneJSONL, one := run(1)
	eightJSONL, eight := run(8)
	if len(oneJSONL) == 0 {
		t.Fatal("search emitted no telemetry")
	}
	if !bytes.Equal(oneJSONL, eightJSONL) {
		t.Fatalf("search JSONL differs between workers=1 (%d bytes) and workers=8 (%d bytes)",
			len(oneJSONL), len(eightJSONL))
	}
	if one.Best.Fitness != eight.Best.Fitness || one.Best.Exec != eight.Best.Exec {
		t.Fatalf("best candidate differs across workers: %+v vs %+v", one.Best, eight.Best)
	}
	if one.ExecsUsed != 40 || eight.ExecsUsed != 40 {
		t.Fatalf("budget not exhausted exactly: %d and %d execs, want 40", one.ExecsUsed, eight.ExecsUsed)
	}
}

// TestSearchBeatsSampling: under an equal execution budget and the same
// master seed, the guided search's best fitness must be at least the
// pure-sampling campaign's best (scored with the same yardstick). The
// comparison is fully deterministic, so this is a regression gate on
// the search actually searching, not a statistical claim.
func TestSearchBeatsSampling(t *testing.T) {
	const budget = 120
	base := Spec{Algo: AlgoCrash, N: 64, Seed: 7, Budget: BudgetDefault}

	// The envelope objective discriminates between strategies (rounds
	// are deterministic for the crash algorithm without early-stop), so
	// it is the one a search must actually win on.
	searched, err := Search(SearchSpec{Base: base, Objective: ObjectiveEnvelope, BudgetExecs: budget})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Run(Spec{
		Algo: base.Algo, N: base.N, Seed: base.Seed, Budget: base.Budget,
		Executions: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	samplingBest := BestFitness(sampled.Spec, ObjectiveEnvelope, sampled.Records)
	if searched.Best.Fitness < samplingBest {
		t.Fatalf("search best %.3f < sampling best %.3f under equal budget %d",
			searched.Best.Fitness, samplingBest, budget)
	}
	if searched.ExecsUsed != budget {
		t.Fatalf("search spent %d execs, want %d", searched.ExecsUsed, budget)
	}
	if len(searched.Violations) != 0 {
		t.Fatalf("search found %d oracle violations; first: %+v", len(searched.Violations), searched.Violations[0])
	}
}

// TestSearchByzantineObjectiveEnvelope: the search runs under the
// Byzantine algorithm with the envelope objective, spanning the byz-*
// and mixed-fault families without oracle violations.
func TestSearchByzantineObjectiveEnvelope(t *testing.T) {
	out, err := Search(SearchSpec{
		Base:        Spec{Algo: AlgoByzantine, N: 24, Seed: 5, Budget: BudgetDefault},
		Objective:   ObjectiveEnvelope,
		BudgetExecs: 12,
		PopSize:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("byzantine search found %d violations; first: %+v", len(out.Violations), out.Violations[0])
	}
	if out.Best.Fitness <= 0 {
		t.Fatalf("envelope fitness %.4f not positive", out.Best.Fitness)
	}
	pulls := 0
	for _, arm := range out.Arms {
		pulls += arm.Pulls
	}
	if pulls == 0 {
		t.Fatal("bandit recorded no pulls")
	}
}

// TestSearchRejectsBadSpecs: objective and budget validation.
func TestSearchRejectsBadSpecs(t *testing.T) {
	base := Spec{Algo: AlgoCrash, N: 32, Seed: 1, Budget: BudgetDefault}
	if _, err := Search(SearchSpec{Base: base, BudgetExecs: 0}); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := Search(SearchSpec{Base: base, BudgetExecs: 8, Objective: "latency"}); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

// TestMutateStrategyInvariants: mutations preserve the generation
// envelope — budget, node-disjointness, round range, sortedness, and
// nonzero salts on added events — across a long deterministic chain.
func TestMutateStrategyInvariants(t *testing.T) {
	spec := GenSpec{Kind: GenMixed, N: 32, Budget: 8, Rounds: CrashRoundCeiling(32)}
	strat, err := Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 200; step++ {
		strat = mutateStrategy(strat, spec, rng)
		if len(strat.Schedule) > spec.Budget {
			t.Fatalf("step %d: %d events exceed budget %d", step, len(strat.Schedule), spec.Budget)
		}
		seen := make(map[int]bool)
		for i, ev := range strat.Schedule {
			if ev.Node < 0 || ev.Node >= spec.N || seen[ev.Node] {
				t.Fatalf("step %d: bad or duplicate node %d", step, ev.Node)
			}
			seen[ev.Node] = true
			if ev.Round < 0 || ev.Round >= spec.Rounds {
				t.Fatalf("step %d: round %d out of range", step, ev.Round)
			}
			if ev.Salt == 0 {
				t.Fatalf("step %d: event %d lost its salt", step, i)
			}
			if i > 0 && strat.Schedule[i-1].Round > ev.Round {
				t.Fatalf("step %d: schedule unsorted", step)
			}
		}
	}

	// Byzantine side: the corruption list never empties and never
	// exceeds the budget jointly with the crash list.
	bspec := GenSpec{Kind: GenMixedFault, N: 32, Budget: 6, Rounds: CrashRoundCeiling(32)}
	bstrat, err := Generate(bspec, 4)
	if err != nil {
		t.Fatal(err)
	}
	brng := rand.New(rand.NewSource(100))
	for step := 0; step < 200; step++ {
		bstrat = mutateStrategy(bstrat, bspec, brng)
		if len(bstrat.Byzantine) < 1 {
			t.Fatalf("step %d: corruption list emptied", step)
		}
		if len(bstrat.Byzantine)+len(bstrat.Schedule) > bspec.Budget {
			t.Fatalf("step %d: joint budget exceeded", step)
		}
		if _, err := bstrat.ByzMap(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for _, ev := range bstrat.Schedule {
			if ev.TargetCommittee {
				t.Fatalf("step %d: byz-side mutation produced a targeted event", step)
			}
		}
	}
}

// TestMutateDeterministic: the same rng stream reproduces the same
// mutation chain.
func TestMutateDeterministic(t *testing.T) {
	spec := GenSpec{Kind: GenTrickle, N: 32, Budget: 8, Rounds: CrashRoundCeiling(32)}
	strat, err := Generate(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	chain := func() Strategy {
		s := strat
		rng := sim.NewRand(11, 0xdead)
		for i := 0; i < 50; i++ {
			s = mutateStrategy(s, spec, rng)
		}
		return s
	}
	a, b := chain(), chain()
	if len(a.Schedule) != len(b.Schedule) {
		t.Fatalf("chain lengths differ: %d vs %d", len(a.Schedule), len(b.Schedule))
	}
	for i := range a.Schedule {
		if a.Schedule[i] != b.Schedule[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Schedule[i], b.Schedule[i])
		}
	}
}
