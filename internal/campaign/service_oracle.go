package campaign

import (
	"fmt"
	"sort"

	"renaming/internal/service"
)

// ServiceOracle re-checks the long-lived renaming service's invariants
// epoch by epoch, independently of the service's own bookkeeping: it
// maintains a shadow name-ownership table built purely from the
// committed deltas each EpochResult reports, and flags any epoch whose
// deltas or population counters disagree with it. One oracle checks one
// service execution; epochs must be fed in order.
//
// Checks per epoch (docs/SERVICE.md):
//
//   - recycle safety: a granted name must be free in the shadow table, a
//     released name must be owned by the releasing client (InvRecycle);
//   - tightness: granted names lie in [1, Capacity] and ranks in
//     [1, batch] (InvNamespace), ranks are distinct (InvUniqueness);
//   - conservation: shadow live = reported live, live + free = Capacity,
//     and the join accounting adds up (InvConservation);
//   - rollback: an aborted epoch reports no deltas and an unchanged
//     population (InvRollback);
//   - per-epoch round ceiling: the inner one-shot run stays within
//     RoundCeiling(batch) (InvRoundCeiling), by default the crash
//     algorithm's deterministic 9·⌈log₂ batch⌉+1 bound;
//   - per-epoch order (CheckOrder, Byzantine core): within a join
//     batch, ranks sorted by original identity strictly increase
//     (InvOrder).
type ServiceOracle struct {
	// Capacity is the service namespace size.
	Capacity int
	// CheckOrder enables the per-epoch rank-order invariant (the
	// Byzantine core's Theorem 1.3 guarantee; the crash core carries no
	// order guarantee, matching Table 1).
	CheckOrder bool
	// RoundCeiling maps a join-batch size to the inner one-shot round
	// bound; nil disables the check.
	RoundCeiling func(batch int) int

	owner map[int]int // shadow: name → client
}

// NewServiceOracle returns the oracle for a service over [1, capacity]
// running the given core: the crash core gets the deterministic
// Theorem 1.2 round ceiling, the Byzantine core gets the per-epoch
// order check (its round budget depends on the realized faults, so no
// fixed per-batch ceiling applies).
func NewServiceOracle(capacity int, core service.Core) *ServiceOracle {
	o := &ServiceOracle{Capacity: capacity, owner: make(map[int]int)}
	if core == service.CoreByzantine {
		o.CheckOrder = true
	} else {
		o.RoundCeiling = CrashRoundCeiling
	}
	return o
}

// CheckEpoch folds one epoch result into the shadow state and returns
// the violations found (Epoch, Invariant, Detail populated; the
// campaign driver fills Exec/Seed/Strategy).
func (o *ServiceOracle) CheckEpoch(er *service.EpochResult) []Violation {
	if o.owner == nil {
		o.owner = make(map[int]int)
	}
	var out []Violation
	add := func(invariant, format string, args ...any) {
		out = append(out, Violation{Epoch: er.Epoch, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}

	if er.Aborted {
		// Rollback contract: nothing committed, population unchanged.
		if len(er.Assignments) > 0 || len(er.Released) > 0 {
			add(InvRollback, "aborted epoch reports %d assignments and %d releases", len(er.Assignments), len(er.Released))
		}
		if er.Joined != 0 || er.FailedJoins != 0 {
			add(InvRollback, "aborted epoch reports joined=%d failedJoins=%d", er.Joined, er.FailedJoins)
		}
		if er.Live != len(o.owner) {
			add(InvRollback, "aborted epoch reports live=%d, shadow has %d", er.Live, len(o.owner))
		}
	} else {
		for _, rel := range er.Released {
			if have, live := o.owner[rel.Name]; !live || have != rel.Client {
				add(InvRecycle, "client %d released name %d it does not own (shadow owner %d, live=%v)", rel.Client, rel.Name, have, live)
				continue
			}
			delete(o.owner, rel.Name)
		}
		ranks := make(map[int]int, len(er.Assignments))
		for _, a := range er.Assignments {
			if a.Name < 1 || a.Name > o.Capacity {
				add(InvNamespace, "epoch granted name %d outside [1, %d]", a.Name, o.Capacity)
			}
			if a.Rank < 1 || a.Rank > er.JoinsRequested {
				add(InvNamespace, "client %d got rank %d outside [1, batch=%d]", a.Client, a.Rank, er.JoinsRequested)
			}
			if prev, dup := ranks[a.Rank]; dup {
				add(InvUniqueness, "clients %d and %d both got rank %d", prev, a.Client, a.Rank)
			}
			ranks[a.Rank] = a.Client
			if holder, live := o.owner[a.Name]; live {
				add(InvRecycle, "name %d granted to client %d while still owned by client %d", a.Name, a.Client, holder)
				continue
			}
			o.owner[a.Name] = a.Client
		}
		if er.Joined != len(er.Assignments) {
			add(InvConservation, "epoch reports %d joins but %d assignments", er.Joined, len(er.Assignments))
		}
		if er.Joined+er.FailedJoins != er.JoinsRequested {
			add(InvConservation, "joined %d + failed %d ≠ requested %d", er.Joined, er.FailedJoins, er.JoinsRequested)
		}
		if len(er.Released) != er.LeavesRequested {
			add(InvConservation, "epoch reports %d releases for %d leave requests", len(er.Released), er.LeavesRequested)
		}
		if o.CheckOrder {
			byClient := append([]service.Assignment(nil), er.Assignments...)
			sort.Slice(byClient, func(a, b int) bool { return byClient[a].Client < byClient[b].Client })
			for i := 1; i < len(byClient); i++ {
				if byClient[i].Rank <= byClient[i-1].Rank {
					add(InvOrder, "clients %d (rank %d) and %d (rank %d) swap order within the batch",
						byClient[i-1].Client, byClient[i-1].Rank, byClient[i].Client, byClient[i].Rank)
				}
			}
		}
	}

	if er.Live != len(o.owner) {
		add(InvConservation, "epoch reports live=%d, shadow has %d names owned", er.Live, len(o.owner))
	}
	if er.Live+er.FreeNames != o.Capacity {
		add(InvConservation, "live %d + free %d ≠ capacity %d", er.Live, er.FreeNames, o.Capacity)
	}
	if er.PeakLive > o.Capacity {
		add(InvNamespace, "peak live population %d exceeds capacity %d", er.PeakLive, o.Capacity)
	}
	if o.RoundCeiling != nil && er.JoinsRequested > 0 {
		if c := o.RoundCeiling(er.JoinsRequested); er.Rounds > c {
			add(InvRoundCeiling, "epoch one-shot ran %d rounds over a batch of %d (bound %d)", er.Rounds, er.JoinsRequested, c)
		}
	}
	return out
}

// LiveNames returns the shadow table's live name count (test hook).
func (o *ServiceOracle) LiveNames() int { return len(o.owner) }
