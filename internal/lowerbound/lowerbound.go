// Package lowerbound implements the empirical side of Theorem 1.4: any
// randomized strong renaming algorithm that succeeds with probability at
// least 3/4 must send Ω(n) messages in expectation, even with shared
// randomness and authenticated channels.
//
// The paper proves this through the *anonymous renaming* reduction: if an
// algorithm sends few messages, some nodes must pick their new identity
// without ever communicating. Anonymous nodes with identical programs and
// shared (public) randomness can only differentiate through their private
// coins, so two silent nodes pick identical names with non-trivial
// probability — a birthday-style collision.
//
// This package simulates the strongest possible budgeted strategy: a
// coordinator spends its message budget handing out distinct names to as
// many nodes as it can reach (one message per reached node — the
// information-theoretic best), while every unreached node draws its name
// i.i.d. uniformly from the remaining slots (the optimal symmetric
// strategy for anonymous, non-communicating nodes). Measuring the success
// probability as a function of the budget reproduces the theorem's shape:
// success ≥ 3/4 forces the budget to grow linearly in n.
package lowerbound

import (
	"math/rand"

	"renaming/internal/sim"
)

// Trial runs one budgeted anonymous renaming attempt over n nodes: budget
// nodes receive distinct coordinator-assigned names, the remaining
// k = n − budget nodes draw i.i.d. uniform names from the k leftover
// slots. It reports whether all n names ended up distinct.
func Trial(n, budget int, rng *rand.Rand) bool {
	if budget >= n-1 {
		// With n−1 or more messages the coordinator reaches everyone
		// that needs reaching; the last node takes the last slot.
		return true
	}
	if budget < 0 {
		budget = 0
	}
	k := n - budget // uncoordinated nodes, k leftover slots
	seen := make([]bool, k)
	for i := 0; i < k; i++ {
		slot := rng.Intn(k)
		if seen[slot] {
			return false
		}
		seen[slot] = true
	}
	return true
}

// SuccessRate estimates the success probability of the budgeted strategy
// by Monte-Carlo over the given number of trials.
func SuccessRate(n, budget, trials int, seed int64) float64 {
	rng := sim.NewRand(seed, 0x6c6f776572) // "lower"
	successes := 0
	for i := 0; i < trials; i++ {
		if Trial(n, budget, rng) {
			successes++
		}
	}
	return float64(successes) / float64(trials)
}

// MinBudgetFor searches for the smallest budget whose Monte-Carlo success
// rate reaches the target probability (e.g. the theorem's 3/4). The
// success rate is monotone in the budget, so a linear scan from above
// suffices; the scan walks down from n−1 until the rate drops below the
// target, then reports the previous budget.
func MinBudgetFor(n int, target float64, trials int, seed int64) int {
	last := n - 1
	for budget := n - 1; budget >= 0; budget-- {
		if SuccessRate(n, budget, trials, seed) < target {
			return last
		}
		last = budget
	}
	return last
}

// CollisionProbabilityTwoSilent returns the analytical collision
// probability of the theorem's core step: two anonymous nodes that never
// communicate and must each pick a name out of the same k free slots
// collide with probability exactly 1/k — non-trivial whenever the
// namespace is tight (strong renaming forces k ≤ n).
func CollisionProbabilityTwoSilent(k int) float64 {
	if k <= 0 {
		return 1
	}
	return 1 / float64(k)
}
