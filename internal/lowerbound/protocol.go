package lowerbound

import (
	"math/rand"

	"renaming/internal/sim"
)

// This file runs the Theorem 1.4 experiment *on the wire*: a family of
// budgeted anonymous renaming protocols executes on the same simulator
// the main algorithms use, so the measured messages are real network
// messages rather than an analytical budget.
//
// The protocol family: every anonymous node privately flips a coin with
// probability prob and, on success, asks the allocator port for a name;
// the allocator hands out 1, 2, 3, … in arrival order (ties broken by
// port, which an anonymous node cannot influence). Nodes that stayed
// silent pick a uniformly random name from the upper part of the
// namespace they hope the allocator never reached. This is the strongest
// shape a sub-linear-message strategy can take — and exactly the
// situation the paper's proof forces: some nodes must choose without
// communicating, and those choices collide with birthday probability.

// ReqPayload asks the allocator for a name.
type ReqPayload struct{}

// Kind implements sim.Payload.
func (ReqPayload) Kind() string { return "lb-req" }

// Bits implements sim.Payload.
func (ReqPayload) Bits() int { return 1 }

// GrantPayload carries an allocated name.
type GrantPayload struct {
	Name       int
	SizeSmallN int
}

// Kind implements sim.Payload.
func (GrantPayload) Kind() string { return "lb-grant" }

// Bits implements sim.Payload.
func (p GrantPayload) Bits() int {
	bits := 1
	for v := p.SizeSmallN; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// anonNode is one anonymous participant. Port 0 doubles as the
// allocator (anonymity forbids electing one by identity; a port-0
// convention is the weakest symmetry breaking the model allows and only
// *helps* the budgeted strategy, making the lower bound stronger).
type anonNode struct {
	idx, n int
	rng    *rand.Rand
	prob   float64

	requested bool
	nextName  int // allocator state
	name      int
	decided   bool
	halted    bool
}

var _ sim.Node = (*anonNode)(nil)

func (a *anonNode) Output() (int, bool) { return a.name, a.decided }
func (a *anonNode) Halted() bool        { return a.halted }

func (a *anonNode) Step(round int, inbox []sim.Message) sim.Outbox {
	switch round {
	case 0:
		a.requested = a.rng.Float64() < a.prob
		if a.requested {
			return sim.Outbox{{From: a.idx, To: 0, Payload: ReqPayload{}}}
		}
		return nil
	case 1:
		// Allocator grants names in arrival (port) order.
		if a.idx != 0 {
			return nil
		}
		var out sim.Outbox
		for _, msg := range inbox {
			if _, ok := msg.Payload.(ReqPayload); !ok {
				continue
			}
			a.nextName++
			out = append(out, sim.Message{From: a.idx, To: msg.From, Payload: GrantPayload{
				Name: a.nextName, SizeSmallN: a.n,
			}})
		}
		return out
	default:
		for _, msg := range inbox {
			if g, ok := msg.Payload.(GrantPayload); ok {
				a.name = g.Name
				a.decided = true
			}
		}
		if !a.decided {
			// Never contacted anyone: pick blind, i.i.d. uniform.
			a.name = a.rng.Intn(a.n) + 1
			a.decided = true
		}
		a.halted = true
		return nil
	}
}

// ProtocolOutcome is one on-the-wire anonymous renaming execution.
type ProtocolOutcome struct {
	Success  bool
	Messages int64
	Bits     int64
}

// RunProtocol executes the budgeted anonymous protocol over n nodes with
// per-node request probability prob, and reports whether all names came
// out distinct along with the real message cost.
func RunProtocol(n int, prob float64, seed int64) (ProtocolOutcome, error) {
	nodes := make([]*anonNode, n)
	simNodes := make([]sim.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = &anonNode{
			idx: i, n: n, prob: prob,
			rng: sim.NewRand(seed, 0x616e6f6e<<8|uint64(i)), // "anon"
		}
		simNodes[i] = nodes[i]
	}
	nw := sim.NewNetwork(simNodes)
	defer nw.Close()
	if err := nw.Run(4); err != nil {
		return ProtocolOutcome{}, err
	}
	seen := make(map[int]bool, n)
	success := true
	for _, node := range nodes {
		name, ok := node.Output()
		if !ok || name < 1 || name > n || seen[name] {
			success = false
			break
		}
		seen[name] = true
	}
	m := nw.Metrics()
	return ProtocolOutcome{Success: success, Messages: m.Messages, Bits: m.Bits}, nil
}

// ProtocolSuccessRate estimates the on-the-wire success probability and
// mean message cost across trials.
func ProtocolSuccessRate(n int, prob float64, trials int, seed int64) (rate float64, meanMsgs float64, err error) {
	successes := 0
	var msgs int64
	for i := 0; i < trials; i++ {
		out, rerr := RunProtocol(n, prob, seed+int64(i)*7919)
		if rerr != nil {
			return 0, 0, rerr
		}
		if out.Success {
			successes++
		}
		msgs += out.Messages
	}
	return float64(successes) / float64(trials), float64(msgs) / float64(trials), nil
}
