package lowerbound

import (
	"math"
	"testing"

	"renaming/internal/sim"
)

func TestTrialEdges(t *testing.T) {
	rng := sim.NewRand(1, 1)
	if !Trial(10, 9, rng) || !Trial(10, 100, rng) {
		t.Fatal("full budget must always succeed")
	}
	// budget 0 over n=2: two nodes pick from 2 slots iid: succeeds only
	// when they differ (probability 1/2).
	succ := 0
	for i := 0; i < 10000; i++ {
		if Trial(2, 0, rng) {
			succ++
		}
	}
	if succ < 4500 || succ > 5500 {
		t.Fatalf("n=2 budget=0 success %d/10000, want ~5000", succ)
	}
}

func TestSuccessRateMonotoneInBudget(t *testing.T) {
	n := 64
	prev := -1.0
	for _, budget := range []int{0, 16, 32, 48, 56, 60, 62, 63} {
		rate := SuccessRate(n, budget, 3000, 7)
		if rate < prev-0.05 { // Monte-Carlo slack
			t.Fatalf("success rate dropped: budget %d rate %.3f < prev %.3f", budget, rate, prev)
		}
		prev = rate
	}
}

func TestSuccessMatchesBirthdayAsymptotics(t *testing.T) {
	// With k uncoordinated nodes the success probability is k!/k^k ≈
	// e^{-k}·√(2πk)·(1+o(1)); for k ≥ 16 it is already below 1%.
	rate := SuccessRate(1000, 1000-16, 5000, 3)
	want := factorialOverPow(16)
	if math.Abs(rate-want) > 0.02 {
		t.Fatalf("rate %.4f, analytic %.4f", rate, want)
	}
}

func factorialOverPow(k int) float64 {
	v := 1.0
	for i := 1; i <= k; i++ {
		v *= float64(i) / float64(k)
	}
	return v
}

func TestMinBudgetForLinearInN(t *testing.T) {
	for _, n := range []int{32, 128, 512} {
		min := MinBudgetFor(n, 0.75, 1500, int64(n))
		// Theorem 1.4's shape: a constant fraction of n is required.
		if float64(min) < 0.9*float64(n) {
			t.Fatalf("n=%d: min budget %d unexpectedly small", n, min)
		}
		if min > n-1 {
			t.Fatalf("n=%d: min budget %d exceeds n−1", n, min)
		}
	}
}

func TestCollisionProbabilityTwoSilent(t *testing.T) {
	if got := CollisionProbabilityTwoSilent(4); got != 0.25 {
		t.Fatalf("got %f", got)
	}
	if got := CollisionProbabilityTwoSilent(0); got != 1 {
		t.Fatalf("k=0: got %f", got)
	}
}

func TestRunProtocolFullBudgetSucceeds(t *testing.T) {
	// prob 1: everyone requests; names are exactly a permutation of the
	// arrival order → always distinct.
	for seed := int64(0); seed < 5; seed++ {
		out, err := RunProtocol(32, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Success {
			t.Fatalf("seed %d: full-budget protocol failed", seed)
		}
		// n requests + n grants.
		if out.Messages != 64 {
			t.Fatalf("messages = %d, want 64", out.Messages)
		}
	}
}

func TestProtocolSuccessDropsWithBudget(t *testing.T) {
	n := 64
	full, _, err := ProtocolSuccessRate(n, 1, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full != 1 {
		t.Fatalf("full budget rate %f", full)
	}
	half, halfMsgs, err := ProtocolSuccessRate(n, 0.5, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if half > 0.05 {
		t.Fatalf("half budget success %f — should collapse (birthday)", half)
	}
	if halfMsgs >= float64(2*n) || halfMsgs <= 0 {
		t.Fatalf("half budget mean messages %f implausible", halfMsgs)
	}
}

func TestProtocolMatchesAnalyticalShape(t *testing.T) {
	// The on-the-wire protocol and the analytical Trial agree on the
	// big picture: ~n messages needed for success ≥ 3/4.
	n := 48
	rate, msgs, err := ProtocolSuccessRate(n, 0.95, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	// ~5% of nodes pick blind: with k≈2.4 silent nodes expected, success
	// is non-trivial but clearly below 3/4.
	if rate >= 0.75 {
		t.Fatalf("rate %f at 0.95 budget — too easy, model broken", rate)
	}
	if msgs >= float64(2*n) {
		t.Fatalf("messages %f at 0.95 budget", msgs)
	}
}
