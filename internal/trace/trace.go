// Package trace records per-round communication summaries of an
// execution, for debugging protocol schedules and for the examples'
// narrative output. A full Recorder (NewRecorder) retains one
// RoundSummary per round and is fed through sim.WithObserver; a
// streaming Recorder (NewStreamingRecorder) retains only the compact
// per-round series Summary needs — 8 bytes per round plus online
// maxima, never a per-message or per-node structure — and is fed
// through sim.WithRoundDigest, which is the right shape for the
// million-node sweeps (see docs/MEMORY.md).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"renaming/internal/sim"
	"renaming/internal/stats"
)

// RoundSummary aggregates one round's sent-on-the-wire traffic: every
// message a sender paid for this round, including messages addressed to
// already-crashed recipients (the recipient being dead does not refund
// the sender's communication cost).
type RoundSummary struct {
	Round    int
	Messages int
	Bits     int
	ByKind   map[string]int
}

// Recorder accumulates round summaries. Every executed round produces
// one summary — fully quiet rounds (no traffic) included — so a
// recording's round count always equals the network's round count.
type Recorder struct {
	rounds []RoundSummary

	// Streaming mode: only the per-round message series (the exact
	// float64 values full-mode Summary would derive, so the two modes
	// produce bit-identical statistics) plus online maxima. Rounds(),
	// BusiestRound(), and the timeline/CSV writers need the retained
	// summaries and are unavailable in this mode.
	streaming       bool
	msgs            []float64
	busiestRound    int
	busiestMessages int
	peakBits        int
}

// NewRecorder returns an empty recorder retaining full per-round
// summaries (timeline and CSV capable).
func NewRecorder() *Recorder { return &Recorder{} }

// NewStreamingRecorder returns a recorder that never materializes
// per-round summaries: it keeps one float64 per round and online
// maxima, enough for Summary and nothing else. Feed it through
// sim.WithRoundDigest.
func NewStreamingRecorder() *Recorder { return &Recorder{streaming: true} }

// Observe is the sim.WithObserver callback.
func (r *Recorder) Observe(round int, delivered []sim.Message) {
	summary := RoundSummary{Round: round, ByKind: make(map[string]int)}
	for _, msg := range delivered {
		summary.Messages++
		summary.Bits += msg.Payload.Bits()
		summary.ByKind[msg.Payload.Kind()]++
	}
	r.rounds = append(r.rounds, summary)
}

// ObserveDigest is the sim.WithRoundDigest callback. In streaming mode
// it folds the digest into the compact series; in full mode it
// materializes the same RoundSummary Observe would have built (the
// digest carries identical totals).
func (r *Recorder) ObserveDigest(d sim.RoundDigest) {
	if !r.streaming {
		summary := RoundSummary{Round: d.Round, Messages: int(d.Messages), Bits: int(d.Bits), ByKind: make(map[string]int, len(d.PerKind))}
		for k, v := range d.PerKind {
			summary.ByKind[k] = int(v)
		}
		r.rounds = append(r.rounds, summary)
		return
	}
	if len(r.msgs) == 0 {
		r.busiestRound = d.Round
	}
	if int(d.Messages) > r.busiestMessages {
		r.busiestMessages = int(d.Messages)
		r.busiestRound = d.Round
	}
	if int(d.Bits) > r.peakBits {
		r.peakBits = int(d.Bits)
	}
	r.msgs = append(r.msgs, float64(d.Messages))
}

// Rounds returns the recorded summaries in round order.
func (r *Recorder) Rounds() []RoundSummary {
	out := make([]RoundSummary, len(r.rounds))
	copy(out, r.rounds)
	return out
}

// BusiestRound returns the round with the most messages, or ok=false when
// nothing was recorded.
func (r *Recorder) BusiestRound() (RoundSummary, bool) {
	if len(r.rounds) == 0 {
		return RoundSummary{}, false
	}
	best := r.rounds[0]
	for _, s := range r.rounds[1:] {
		if s.Messages > best.Messages {
			best = s
		}
	}
	return best, true
}

// Summary condenses a recording into the per-round traffic profile the
// experiment runner embeds in its telemetry records: round count,
// busiest round, and the mean/stddev message volume per round. Rounds
// counts every executed round (quiet ones included) and the message
// statistics use sent-on-the-wire semantics, as documented on Recorder.
type Summary struct {
	Rounds          int
	BusiestRound    int
	BusiestMessages int
	PeakBits        int
	MeanMessages    float64
	StddevMessages  float64
}

// Summary computes the recording's traffic profile.
func (r *Recorder) Summary() Summary {
	if r.streaming {
		if len(r.msgs) == 0 {
			return Summary{}
		}
		out := Summary{
			Rounds:          len(r.msgs),
			BusiestRound:    r.busiestRound,
			BusiestMessages: r.busiestMessages,
			PeakBits:        r.peakBits,
		}
		sum := stats.Summarize(r.msgs)
		out.MeanMessages = sum.Mean
		out.StddevMessages = sum.Stddev
		return out
	}
	if len(r.rounds) == 0 {
		return Summary{}
	}
	msgs := make([]float64, len(r.rounds))
	out := Summary{Rounds: len(r.rounds), BusiestRound: r.rounds[0].Round}
	for i, s := range r.rounds {
		msgs[i] = float64(s.Messages)
		if s.Messages > out.BusiestMessages {
			out.BusiestMessages = s.Messages
			out.BusiestRound = s.Round
		}
		if s.Bits > out.PeakBits {
			out.PeakBits = s.Bits
		}
	}
	sum := stats.Summarize(msgs)
	out.MeanMessages = sum.Mean
	out.StddevMessages = sum.Stddev
	return out
}

// WriteTimeline renders a compact per-round table to w, eliding quiet
// stretches of identical traffic shape.
func (r *Recorder) WriteTimeline(w io.Writer) error {
	var lastShape string
	elided := 0
	flush := func() error {
		if elided > 0 {
			if _, err := fmt.Fprintf(w, "  … %d more rounds with the same shape\n", elided); err != nil {
				return err
			}
			elided = 0
		}
		return nil
	}
	for _, s := range r.rounds {
		shape := shapeOf(s)
		if shape == lastShape {
			elided++
			continue
		}
		if err := flush(); err != nil {
			return err
		}
		lastShape = shape
		if _, err := fmt.Fprintf(w, "round %4d: %6d msgs %8d bits  %s\n",
			s.Round, s.Messages, s.Bits, shape); err != nil {
			return err
		}
	}
	return flush()
}

func shapeOf(s RoundSummary) string {
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s×%d", k, s.ByKind[k]))
	}
	if len(parts) == 0 {
		return "(quiet)"
	}
	return strings.Join(parts, " ")
}

// WriteCSV dumps the per-round summaries as CSV (round, messages, bits,
// then one column per payload kind seen anywhere in the trace) for
// external plotting.
func (r *Recorder) WriteCSV(w io.Writer) error {
	kindSet := make(map[string]bool)
	for _, s := range r.rounds {
		for k := range s.ByKind {
			kindSet[k] = true
		}
	}
	kinds := make([]string, 0, len(kindSet))
	for k := range kindSet {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)

	header := append([]string{"round", "messages", "bits"}, kinds...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, s := range r.rounds {
		row := make([]string, 0, len(header))
		row = append(row, fmt.Sprint(s.Round), fmt.Sprint(s.Messages), fmt.Sprint(s.Bits))
		for _, k := range kinds {
			row = append(row, fmt.Sprint(s.ByKind[k]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
