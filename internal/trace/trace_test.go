package trace

import (
	"strings"
	"testing"

	"renaming/internal/sim"
)

type tp struct{ kind string }

func (p tp) Kind() string { return p.kind }
func (tp) Bits() int      { return 4 }

func msgs(kinds ...string) []sim.Message {
	out := make([]sim.Message, len(kinds))
	for i, k := range kinds {
		out[i] = sim.Message{Payload: tp{kind: k}}
	}
	return out
}

func TestRecorderSummaries(t *testing.T) {
	r := NewRecorder()
	r.Observe(0, msgs("a", "a", "b"))
	r.Observe(1, nil)
	r.Observe(2, msgs("b"))
	rounds := r.Rounds()
	if len(rounds) != 3 {
		t.Fatalf("rounds = %d", len(rounds))
	}
	if rounds[0].Messages != 3 || rounds[0].Bits != 12 || rounds[0].ByKind["a"] != 2 {
		t.Fatalf("round 0 = %+v", rounds[0])
	}
	busiest, ok := r.BusiestRound()
	if !ok || busiest.Round != 0 {
		t.Fatalf("busiest = %+v", busiest)
	}
}

// loudNode sends one message per round to a fixed peer for the first
// sendFor rounds, then goes quiet (without halting).
type loudNode struct{ peer, sendFor int }

func (l *loudNode) Step(round int, inbox []sim.Message) sim.Outbox {
	if round < l.sendFor {
		return sim.Outbox{{To: l.peer, Payload: tp{kind: "a"}}}
	}
	return nil
}
func (l *loudNode) Output() (int, bool) { return 0, false }
func (l *loudNode) Halted() bool        { return false }

type quietNode struct{}

func (quietNode) Step(int, []sim.Message) sim.Outbox { return nil }
func (quietNode) Output() (int, bool)                { return 0, false }
func (quietNode) Halted() bool                       { return false }

// crashAt crashes one node before it sends in a given round.
type crashAt struct{ node, round int }

func (c crashAt) Crashes(v sim.View) []sim.CrashOrder {
	if v.Round == c.round {
		return []sim.CrashOrder{{Node: c.node}}
	}
	return nil
}

// TestSentOnTheWireSemantics pins the documented recording contract
// against the real engine: every executed round is recorded — fully
// quiet rounds included, so Summary().Rounds equals the network's round
// count — and a message addressed to an already-crashed recipient still
// counts, because the sender paid for it.
func TestSentOnTheWireSemantics(t *testing.T) {
	r := NewRecorder()
	nodes := []sim.Node{&loudNode{peer: 1, sendFor: 2}, quietNode{}}
	nw := sim.NewNetwork(nodes,
		sim.WithCrashAdversary(crashAt{node: 1, round: 0}),
		sim.WithObserver(r.Observe))
	defer nw.Close()
	for i := 0; i < 4; i++ {
		nw.StepRound()
	}
	rounds := r.Rounds()
	if len(rounds) != 4 || r.Summary().Rounds != 4 || nw.Round() != 4 {
		t.Fatalf("recorded %d rounds, summary %d, network %d — want all 4",
			len(rounds), r.Summary().Rounds, nw.Round())
	}
	// Node 1 is dead from round 0, yet both of node 0's messages to it
	// were put on the wire and must appear in the trace and the metrics.
	if rounds[0].Messages != 1 || rounds[1].Messages != 1 {
		t.Fatalf("messages to a crashed recipient dropped from the trace: %+v", rounds[:2])
	}
	if rounds[2].Messages != 0 || rounds[3].Messages != 0 {
		t.Fatalf("quiet rounds recorded traffic: %+v", rounds[2:])
	}
	if nw.Metrics().Messages != 2 {
		t.Fatalf("metrics counted %d messages, want 2 (sender pays)", nw.Metrics().Messages)
	}
}

func TestBusiestEmpty(t *testing.T) {
	if _, ok := NewRecorder().BusiestRound(); ok {
		t.Fatal("empty recorder reported a busiest round")
	}
}

func TestTimelineElidesRepeats(t *testing.T) {
	r := NewRecorder()
	r.Observe(0, msgs("x"))
	for round := 1; round < 6; round++ {
		r.Observe(round, msgs("y", "y"))
	}
	r.Observe(6, nil)
	var b strings.Builder
	if err := r.WriteTimeline(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "x×1") || !strings.Contains(out, "y×2") {
		t.Fatalf("timeline missing shapes:\n%s", out)
	}
	if !strings.Contains(out, "4 more rounds") {
		t.Fatalf("timeline did not elide repeats:\n%s", out)
	}
	if !strings.Contains(out, "(quiet)") {
		t.Fatalf("quiet round missing:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Observe(0, msgs("a", "b"))
	r.Observe(1, msgs("b"))
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), b.String())
	}
	if lines[0] != "round,messages,bits,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,2,8,1,1" || lines[2] != "1,1,4,0,1" {
		t.Fatalf("rows = %q, %q", lines[1], lines[2])
	}
}

// TestStreamingSummaryParity runs the same execution through a full
// observer-fed recorder and a streaming digest-fed recorder and demands
// identical Summary values — including the float statistics, which both
// modes must derive from the same per-round series.
func TestStreamingSummaryParity(t *testing.T) {
	run := func(rec *Recorder, opt sim.Option) {
		nodes := []sim.Node{&loudNode{peer: 1, sendFor: 3}, &loudNode{peer: 0, sendFor: 1}, quietNode{}}
		nw := sim.NewNetwork(nodes, opt)
		defer nw.Close()
		for i := 0; i < 5; i++ {
			nw.StepRound()
		}
	}
	full := NewRecorder()
	run(full, sim.WithObserver(full.Observe))
	stream := NewStreamingRecorder()
	run(stream, sim.WithRoundDigest(stream.ObserveDigest))
	if full.Summary() != stream.Summary() {
		t.Fatalf("streaming summary %+v != full summary %+v", stream.Summary(), full.Summary())
	}
	if stream.Summary() == (Summary{}) {
		t.Fatal("parity run recorded nothing")
	}
}

// TestObserveDigestFullMode checks that a full-mode recorder fed by
// digests materializes the same rounds Observe would have.
func TestObserveDigestFullMode(t *testing.T) {
	byObserve := NewRecorder()
	byObserve.Observe(0, msgs("a", "a", "b"))
	byObserve.Observe(1, nil)

	byDigest := NewRecorder()
	perKind := map[string]int64{"a": 2, "b": 1}
	byDigest.ObserveDigest(sim.RoundDigest{Round: 0, Messages: 3, Bits: 12, PerKind: perKind})
	clear(perKind) // the engine reuses the map between rounds
	byDigest.ObserveDigest(sim.RoundDigest{Round: 1, PerKind: perKind})

	a, b := byObserve.Rounds(), byDigest.Rounds()
	if len(a) != len(b) {
		t.Fatalf("round counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Round != b[i].Round || a[i].Messages != b[i].Messages || a[i].Bits != b[i].Bits {
			t.Fatalf("round %d differs: %+v vs %+v", i, a[i], b[i])
		}
		for k, v := range a[i].ByKind {
			if b[i].ByKind[k] != v {
				t.Fatalf("round %d kind %q: %d vs %d", i, k, b[i].ByKind[k], v)
			}
		}
	}
	if byObserve.Summary() != byDigest.Summary() {
		t.Fatalf("summaries differ: %+v vs %+v", byObserve.Summary(), byDigest.Summary())
	}
}

// TestStreamingEmpty pins the zero-value behavior of streaming mode.
func TestStreamingEmpty(t *testing.T) {
	if s := NewStreamingRecorder().Summary(); s != (Summary{}) {
		t.Fatalf("empty streaming summary = %+v", s)
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder()
	if s := r.Summary(); s != (Summary{}) {
		t.Fatalf("empty recorder summary = %+v", s)
	}
	r.Observe(0, msgs("a", "a"))
	r.Observe(1, nil)
	r.Observe(2, msgs("b", "b", "b", "b"))
	s := r.Summary()
	if s.Rounds != 3 || s.BusiestRound != 2 || s.BusiestMessages != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.PeakBits != 16 {
		t.Fatalf("peak bits = %d", s.PeakBits)
	}
	if s.MeanMessages != 2 {
		t.Fatalf("mean = %v", s.MeanMessages)
	}
	if s.StddevMessages <= 0 {
		t.Fatalf("stddev = %v", s.StddevMessages)
	}
}
