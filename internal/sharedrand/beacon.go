// Package sharedrand models the shared random bits the Byzantine-resilient
// algorithm assumes (Section 3): every correct node, given the same beacon
// seed, derives the identical committee candidate pool over the original
// namespace [N] and the identical per-iteration hash seeds. Byzantine
// nodes see the same bits — shared randomness is public — which the
// algorithm's analysis already accounts for (the adversary is static, so
// it cannot corrupt nodes after seeing the pool).
package sharedrand

import (
	"math/rand"
	"sort"

	"renaming/internal/sim"
)

// Beacon deterministically expands one seed into the shared random
// objects the algorithm consumes.
type Beacon struct {
	seed int64
}

// NewBeacon returns a beacon for the given shared seed.
func NewBeacon(seed int64) *Beacon { return &Beacon{seed: seed} }

const (
	labelPool      = 0x706f6f6c // "pool"
	labelHashSeeds = 0x68617368 // "hash"
)

// CandidatePool returns the sorted identities of [N] that joined the
// committee candidate pool, each independently with probability p. All
// correct nodes call this with identical arguments and obtain the
// identical pool.
func (b *Beacon) CandidatePool(bigN int, p float64) []int {
	rng := rand.New(rand.NewSource(sim.DeriveSeed(b.seed, labelPool)))
	if p >= 1 {
		pool := make([]int, bigN)
		for i := range pool {
			pool[i] = i + 1
		}
		return pool
	}
	if p <= 0 {
		return nil
	}
	var pool []int
	for id := 1; id <= bigN; id++ {
		if rng.Float64() < p {
			pool = append(pool, id)
		}
	}
	sort.Ints(pool)
	return pool
}

// HashSeed returns the shared 64-bit hash seed for divide-and-conquer
// iteration iter over segment [lo, hi]. Using the segment coordinates in
// the label lets all correct members hash the same segment with the same
// function while different segments get independent functions.
func (b *Beacon) HashSeed(iter, lo, hi int) uint64 {
	label := uint64(labelHashSeeds)
	label = sim.SplitMix64(label ^ uint64(iter))
	label = sim.SplitMix64(label ^ uint64(lo))
	label = sim.SplitMix64(label ^ uint64(hi))
	return uint64(sim.DeriveSeed(b.seed, label))
}
