package sharedrand

import "testing"

func TestPoolDeterministic(t *testing.T) {
	a := NewBeacon(42).CandidatePool(1000, 0.1)
	b := NewBeacon(42).CandidatePool(1000, 0.1)
	if len(a) != len(b) {
		t.Fatalf("pool sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pools diverge at %d", i)
		}
	}
}

func TestPoolSeedsDiffer(t *testing.T) {
	a := NewBeacon(1).CandidatePool(1000, 0.1)
	b := NewBeacon(2).CandidatePool(1000, 0.1)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different beacon seeds produced identical pools")
	}
}

func TestPoolEdgeProbabilities(t *testing.T) {
	if got := NewBeacon(3).CandidatePool(50, 0); got != nil {
		t.Fatalf("p=0 pool = %v", got)
	}
	full := NewBeacon(3).CandidatePool(50, 1)
	if len(full) != 50 || full[0] != 1 || full[49] != 50 {
		t.Fatalf("p=1 pool = %v", full)
	}
}

func TestPoolSortedInRangeAndSized(t *testing.T) {
	pool := NewBeacon(9).CandidatePool(10000, 0.05)
	for i, id := range pool {
		if id < 1 || id > 10000 {
			t.Fatalf("id %d out of range", id)
		}
		if i > 0 && pool[i-1] >= id {
			t.Fatal("pool not strictly increasing")
		}
	}
	// Binomial(10000, 0.05): expect ~500, allow wide slack.
	if len(pool) < 350 || len(pool) > 650 {
		t.Fatalf("pool size %d implausible for p=0.05", len(pool))
	}
}

func TestHashSeedsDistinct(t *testing.T) {
	b := NewBeacon(7)
	seen := make(map[uint64]bool)
	for iter := 0; iter < 4; iter++ {
		for lo := 1; lo <= 8; lo++ {
			for hi := lo; hi <= 8; hi++ {
				s := b.HashSeed(iter, lo, hi)
				if seen[s] {
					t.Fatalf("seed collision at (%d,%d,%d)", iter, lo, hi)
				}
				seen[s] = true
			}
		}
	}
	if b.HashSeed(0, 1, 8) != NewBeacon(7).HashSeed(0, 1, 8) {
		t.Fatal("hash seed not deterministic")
	}
}
