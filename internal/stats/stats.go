// Package stats provides the small statistical toolkit the experiment
// harness uses to turn raw sweep measurements into the quantities the
// paper's asymptotic claims are about: least-squares fits on log-log
// scales (empirical growth exponents), summary statistics, and simple
// confidence heuristics.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrTooFewPoints is returned when a fit needs more data.
var ErrTooFewPoints = errors.New("stats: need at least two points")

// Fit is a least-squares line y = Slope·x + Intercept with goodness R².
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits y = a·x + b by ordinary least squares.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return Fit{}, ErrTooFewPoints
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, errors.New("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// PowerLawExponent fits y = c·x^α on positive data by regressing
// log y on log x and returns α (the empirical growth exponent) with R².
// A sweep of message counts against n with α ≈ 1 is quasi-linear growth,
// α ≈ 2 quadratic — exactly the separation E3n/E5n demonstrate.
func PowerLawExponent(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, errors.New("stats: length mismatch")
	}
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx = append(lx, math.Log(xs[i]))
		ly = append(ly, math.Log(ys[i]))
	}
	return LinearFit(lx, ly)
}

// Summary holds basic descriptive statistics.
type Summary struct {
	Count  int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		s.Stddev += (x - s.Mean) * (x - s.Mean)
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(s.Stddev / float64(len(xs)-1))
	} else {
		s.Stddev = 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Quantile returns the q-quantile of xs by the nearest-rank convention:
// the smallest element x such that at least ceil(q·len(xs)) elements are
// ≤ x. q is clamped to [0, 1]; q=0 yields the minimum, q=1 the maximum.
// Nearest-rank never interpolates, so a reported p99 is always a value
// that actually occurred — the right convention for tail envelopes,
// where an invented between-samples value would understate the worst
// observed execution. NaN on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile over already-sorted data (the bootstrap
// resamples call it in a loop).
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// CI is a two-sided confidence interval for a statistic.
type CI struct {
	Lo, Hi float64
}

// BootstrapQuantileCI estimates a percentile-method confidence interval
// for the q-quantile of xs by seeded nonparametric bootstrap: resamples
// draws of len(xs) with replacement, the q-quantile of each, and the
// (α/2, 1−α/2) quantiles of those estimates at confidence conf (e.g.
// 0.95). Deterministic in the seed. NaN bounds on empty input or
// resamples < 1.
func BootstrapQuantileCI(xs []float64, q, conf float64, resamples int, seed int64) CI {
	return bootstrapCI(xs, conf, resamples, seed, func(sorted []float64) float64 {
		return quantileSorted(sorted, q)
	})
}

// BootstrapMeanCI is BootstrapQuantileCI for the mean.
func BootstrapMeanCI(xs []float64, conf float64, resamples int, seed int64) CI {
	return bootstrapCI(xs, conf, resamples, seed, func(sorted []float64) float64 {
		sum := 0.0
		for _, x := range sorted {
			sum += x
		}
		return sum / float64(len(sorted))
	})
}

func bootstrapCI(xs []float64, conf float64, resamples int, seed int64,
	stat func(sorted []float64) float64) CI {
	if len(xs) == 0 || resamples < 1 {
		return CI{Lo: math.NaN(), Hi: math.NaN()}
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	rng := rand.New(rand.NewSource(seed))
	estimates := make([]float64, resamples)
	resample := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range resample {
			resample[i] = xs[rng.Intn(len(xs))]
		}
		sort.Float64s(resample)
		estimates[r] = stat(resample)
	}
	sort.Float64s(estimates)
	alpha := (1 - conf) / 2
	return CI{
		Lo: quantileSorted(estimates, alpha),
		Hi: quantileSorted(estimates, 1-alpha),
	}
}

// GeometricMeanRatio returns the geometric mean of ys[i]/xs[i] — a
// robust "constant factor" estimate for bounded-ratio claims like
// messages / model.
func GeometricMeanRatio(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	count := 0
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		sum += math.Log(ys[i] / xs[i])
		count++
	}
	if count == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(count))
}
