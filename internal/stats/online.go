package stats

import "math"

// Online accumulates count/mean/variance/min/max in O(1) memory using
// Welford's algorithm, for telemetry paths that must never materialize
// a per-observation array (the million-node sweeps feed one value per
// round or per node through it). Mean and Stddev match Summarize on the
// same series up to floating-point associativity; when bit-identical
// statistics against the retained-array path are required (golden
// fingerprints), keep using Summarize.
type Online struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Observe folds one value into the accumulator.
func (o *Online) Observe(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// Count returns the number of observations.
func (o *Online) Count() int { return o.n }

// Sum returns the running total (mean × count).
func (o *Online) Sum() float64 { return o.mean * float64(o.n) }

// Mean returns the running mean, or 0 with no observations.
func (o *Online) Mean() float64 { return o.mean }

// Stddev returns the sample standard deviation (n−1 denominator,
// matching Summarize), or 0 with fewer than two observations.
func (o *Online) Stddev() float64 {
	if o.n < 2 {
		return 0
	}
	return math.Sqrt(o.m2 / float64(o.n-1))
}

// Min returns the smallest observation, or NaN with none.
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.min
}

// Max returns the largest observation, or NaN with none.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.max
}

// OnlineQuantile estimates a single q-quantile in O(1) memory with the
// P² algorithm (Jain & Chlamtac 1985): five markers track the running
// min, the q/2, q, and (1+q)/2 quantile estimates, and the max,
// adjusted per observation by parabolic interpolation. The estimate
// converges to the true quantile as observations accumulate but is
// approximate — use Quantile when the series fits in memory and an
// exactly-occurred value is required (tail envelopes).
type OnlineQuantile struct {
	q       float64
	n       int
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	dwant   [5]float64 // desired-position increments per observation
	initial [5]float64 // first five observations, pre-sort
}

// NewOnlineQuantile returns an estimator for the q-quantile, q clamped
// to [0, 1].
func NewOnlineQuantile(q float64) *OnlineQuantile {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	o := &OnlineQuantile{q: q}
	o.dwant = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return o
}

// Observe folds one value into the estimator.
func (o *OnlineQuantile) Observe(x float64) {
	if o.n < 5 {
		o.initial[o.n] = x
		o.n++
		if o.n == 5 {
			// Sort the first five observations into the marker heights.
			h := o.initial
			for i := 1; i < 5; i++ {
				for j := i; j > 0 && h[j-1] > h[j]; j-- {
					h[j-1], h[j] = h[j], h[j-1]
				}
			}
			o.heights = h
			o.pos = [5]float64{1, 2, 3, 4, 5}
			o.want = [5]float64{1, 1 + 2*o.q, 1 + 4*o.q, 3 + 2*o.q, 5}
		}
		return
	}
	o.n++

	// Find the cell k with heights[k] ≤ x < heights[k+1], extending the
	// extreme markers when x falls outside them.
	var k int
	switch {
	case x < o.heights[0]:
		o.heights[0] = x
		k = 0
	case x >= o.heights[4]:
		o.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < o.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		o.pos[i]++
	}
	for i := range o.want {
		o.want[i] += o.dwant[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := o.want[i] - o.pos[i]
		if (d >= 1 && o.pos[i+1]-o.pos[i] > 1) || (d <= -1 && o.pos[i-1]-o.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := o.parabolic(i, sign)
			if o.heights[i-1] < h && h < o.heights[i+1] {
				o.heights[i] = h
			} else {
				o.heights[i] = o.linear(i, sign)
			}
			o.pos[i] += sign
		}
	}
}

func (o *OnlineQuantile) parabolic(i int, d float64) float64 {
	return o.heights[i] + d/(o.pos[i+1]-o.pos[i-1])*
		((o.pos[i]-o.pos[i-1]+d)*(o.heights[i+1]-o.heights[i])/(o.pos[i+1]-o.pos[i])+
			(o.pos[i+1]-o.pos[i]-d)*(o.heights[i]-o.heights[i-1])/(o.pos[i]-o.pos[i-1]))
}

func (o *OnlineQuantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return o.heights[i] + d*(o.heights[j]-o.heights[i])/(o.pos[j]-o.pos[i])
}

// Count returns the number of observations.
func (o *OnlineQuantile) Count() int { return o.n }

// Estimate returns the current quantile estimate. With fewer than five
// observations it falls back to the exact nearest-rank quantile of what
// has been seen; NaN with none.
func (o *OnlineQuantile) Estimate() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	if o.n < 5 {
		seen := append([]float64(nil), o.initial[:o.n]...)
		for i := 1; i < len(seen); i++ {
			for j := i; j > 0 && seen[j-1] > seen[j]; j-- {
				seen[j-1], seen[j] = seen[j], seen[j-1]
			}
		}
		return quantileSorted(seen, o.q)
	}
	return o.heights[2]
}
