package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestOnlineMatchesSummarize cross-checks the O(1)-memory accumulator
// against the retained-array Summarize on random series.
func TestOnlineMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		xs := make([]float64, n)
		var o Online
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
			o.Observe(xs[i])
		}
		want := Summarize(xs)
		if o.Count() != want.Count {
			t.Fatalf("trial %d: count %d != %d", trial, o.Count(), want.Count)
		}
		if o.Min() != want.Min || o.Max() != want.Max {
			t.Fatalf("trial %d: min/max (%v,%v) != (%v,%v)", trial, o.Min(), o.Max(), want.Min, want.Max)
		}
		if math.Abs(o.Mean()-want.Mean) > 1e-9*math.Abs(want.Mean)+1e-12 {
			t.Fatalf("trial %d: mean %v != %v", trial, o.Mean(), want.Mean)
		}
		if math.Abs(o.Stddev()-want.Stddev) > 1e-8*want.Stddev+1e-9 {
			t.Fatalf("trial %d: stddev %v != %v", trial, o.Stddev(), want.Stddev)
		}
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Count() != 0 || o.Mean() != 0 || o.Stddev() != 0 || o.Sum() != 0 {
		t.Fatalf("zero-value accumulator not zero: %+v", o)
	}
	if !math.IsNaN(o.Min()) || !math.IsNaN(o.Max()) {
		t.Fatal("empty min/max should be NaN")
	}
	o.Observe(7)
	if o.Count() != 1 || o.Mean() != 7 || o.Stddev() != 0 || o.Min() != 7 || o.Max() != 7 || o.Sum() != 7 {
		t.Fatalf("single observation: %+v", o)
	}
}

// TestOnlineQuantileConverges checks the P² estimate lands within a
// few percent of the exact quantile on large random series from
// several distributions.
func TestOnlineQuantileConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	draws := []struct {
		name string
		gen  func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() }},
		{"normal", func() float64 { return rng.NormFloat64() }},
		{"exponential", func() float64 { return rng.ExpFloat64() }},
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		for _, d := range draws {
			est := NewOnlineQuantile(q)
			xs := make([]float64, 50000)
			for i := range xs {
				xs[i] = d.gen()
				est.Observe(xs[i])
			}
			exact := Quantile(xs, q)
			spread := Quantile(xs, 1) - Quantile(xs, 0)
			if math.Abs(est.Estimate()-exact) > 0.02*spread {
				t.Errorf("%s q=%v: P² estimate %v vs exact %v (spread %v)",
					d.name, q, est.Estimate(), exact, spread)
			}
		}
	}
}

func TestOnlineQuantileSmall(t *testing.T) {
	est := NewOnlineQuantile(0.5)
	if !math.IsNaN(est.Estimate()) {
		t.Fatal("empty estimator should report NaN")
	}
	for _, x := range []float64{5, 1, 3} {
		est.Observe(x)
	}
	// Fewer than five observations: exact nearest-rank fallback.
	if got := est.Estimate(); got != 3 {
		t.Fatalf("median of {5,1,3} = %v, want 3", got)
	}
	if est.Count() != 3 {
		t.Fatalf("count = %d", est.Count())
	}
}

// TestOnlineQuantileExtremes: the q=0/q=1 interior marker converges to
// the extremes only asymptotically (interpolated, not tracked), so the
// check is a tight tolerance rather than equality.
func TestOnlineQuantileExtremes(t *testing.T) {
	lo, hi := NewOnlineQuantile(0), NewOnlineQuantile(1)
	for i := 0; i < 1000; i++ {
		x := float64(i%97) - 48
		lo.Observe(x)
		hi.Observe(x)
	}
	if math.Abs(lo.Estimate()-(-48)) > 0.1 {
		t.Fatalf("q=0 estimate %v, want ≈ min -48", lo.Estimate())
	}
	if math.Abs(hi.Estimate()-48) > 0.1 {
		t.Fatalf("q=1 estimate %v, want ≈ max 48", hi.Estimate())
	}
}
