package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-9 || math.Abs(fit.Intercept-3) > 1e-9 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Fatalf("R² = %f", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected too-few-points error")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("expected degenerate error")
	}
}

func TestPowerLawExponent(t *testing.T) {
	var xs, ys []float64
	for _, n := range []float64{64, 128, 256, 512, 1024} {
		xs = append(xs, n)
		ys = append(ys, 7*n*n) // quadratic
	}
	fit, err := PowerLawExponent(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-6 {
		t.Fatalf("exponent = %f, want 2", fit.Slope)
	}
	// Zero/negative points are skipped, not fatal.
	fit, err = PowerLawExponent([]float64{0, 2, 4, 8}, []float64{1, 10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-1) > 1e-6 {
		t.Fatalf("exponent = %f, want 1", fit.Slope)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	odd := Summarize([]float64{9, 1, 5})
	if odd.Median != 5 {
		t.Fatalf("median = %f", odd.Median)
	}
	if got := Summarize(nil); got.Count != 0 {
		t.Fatalf("empty = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.Stddev != 0 {
		t.Fatalf("single-point stddev = %f", one.Stddev)
	}
}

func TestGeometricMeanRatio(t *testing.T) {
	got := GeometricMeanRatio([]float64{1, 2, 4}, []float64{3, 6, 12})
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("ratio = %f", got)
	}
	if !math.IsNaN(GeometricMeanRatio(nil, nil)) {
		t.Fatal("empty input should be NaN")
	}
	if !math.IsNaN(GeometricMeanRatio([]float64{0}, []float64{0})) {
		t.Fatal("all-nonpositive input should be NaN")
	}
}

// TestQuickFitRecoversLine: LinearFit recovers arbitrary lines exactly on
// noise-free data.
func TestQuickFitRecoversLine(t *testing.T) {
	prop := func(slopeRaw, interceptRaw int16) bool {
		slope := float64(slopeRaw) / 64
		intercept := float64(interceptRaw) / 64
		xs := []float64{-3, -1, 0, 2, 5, 11}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + intercept
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-slope) < 1e-6 && math.Abs(fit.Intercept-intercept) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
