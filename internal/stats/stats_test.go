package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-9 || math.Abs(fit.Intercept-3) > 1e-9 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Fatalf("R² = %f", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected too-few-points error")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("expected degenerate error")
	}
}

func TestPowerLawExponent(t *testing.T) {
	var xs, ys []float64
	for _, n := range []float64{64, 128, 256, 512, 1024} {
		xs = append(xs, n)
		ys = append(ys, 7*n*n) // quadratic
	}
	fit, err := PowerLawExponent(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-6 {
		t.Fatalf("exponent = %f, want 2", fit.Slope)
	}
	// Zero/negative points are skipped, not fatal.
	fit, err = PowerLawExponent([]float64{0, 2, 4, 8}, []float64{1, 10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-1) > 1e-6 {
		t.Fatalf("exponent = %f, want 1", fit.Slope)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	odd := Summarize([]float64{9, 1, 5})
	if odd.Median != 5 {
		t.Fatalf("median = %f", odd.Median)
	}
	if got := Summarize(nil); got.Count != 0 {
		t.Fatalf("empty = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.Stddev != 0 {
		t.Fatalf("single-point stddev = %f", one.Stddev)
	}
}

func TestGeometricMeanRatio(t *testing.T) {
	got := GeometricMeanRatio([]float64{1, 2, 4}, []float64{3, 6, 12})
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("ratio = %f", got)
	}
	if !math.IsNaN(GeometricMeanRatio(nil, nil)) {
		t.Fatal("empty input should be NaN")
	}
	if !math.IsNaN(GeometricMeanRatio([]float64{0}, []float64{0})) {
		t.Fatal("all-nonpositive input should be NaN")
	}
}

func TestQuantileNearestRank(t *testing.T) {
	xs := []float64{40, 10, 20, 30} // sorted: 10 20 30 40
	cases := []struct {
		name string
		q    float64
		want float64
	}{
		{"min", 0, 10},
		{"below-min-clamped", -0.5, 10},
		{"p25-rank1", 0.25, 10},
		{"p50-rank2", 0.5, 20},
		{"p51-rank3", 0.51, 30},
		{"p75-rank3", 0.75, 30},
		{"p99-rank4", 0.99, 40},
		{"max", 1, 40},
		{"above-max-clamped", 1.5, 40},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty input should be NaN")
	}
	// Nearest-rank never interpolates: every result is an element of xs.
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := Quantile(xs, q)
		found := false
		for _, x := range xs {
			if got == x {
				found = true
			}
		}
		if !found {
			t.Fatalf("Quantile(%f) = %v not an element", q, got)
		}
	}
}

func TestBootstrapCIs(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
	}
	ci := BootstrapQuantileCI(xs, 0.5, 0.95, 400, 7)
	if ci.Lo > 99.5 || ci.Hi < 99.5 {
		t.Fatalf("median CI [%v, %v] excludes the true median 99.5", ci.Lo, ci.Hi)
	}
	if ci.Lo < 0 || ci.Hi > 199 {
		t.Fatalf("CI [%v, %v] outside data range", ci.Lo, ci.Hi)
	}
	mean := BootstrapMeanCI(xs, 0.95, 400, 7)
	if mean.Lo > 99.5 || mean.Hi < 99.5 {
		t.Fatalf("mean CI [%v, %v] excludes the true mean 99.5", mean.Lo, mean.Hi)
	}
	// Deterministic in the seed; different seeds resample differently.
	again := BootstrapQuantileCI(xs, 0.5, 0.95, 400, 7)
	if ci != again {
		t.Fatalf("same seed gave %v then %v", ci, again)
	}
	other := BootstrapQuantileCI(xs, 0.5, 0.95, 400, 8)
	if ci == other {
		t.Fatal("different seeds gave identical CIs (suspicious)")
	}
	empty := BootstrapQuantileCI(nil, 0.5, 0.95, 100, 1)
	if !math.IsNaN(empty.Lo) || !math.IsNaN(empty.Hi) {
		t.Fatalf("empty input CI = %v, want NaNs", empty)
	}
}

// TestQuickFitRecoversLine: LinearFit recovers arbitrary lines exactly on
// noise-free data.
func TestQuickFitRecoversLine(t *testing.T) {
	prop := func(slopeRaw, interceptRaw int16) bool {
		slope := float64(slopeRaw) / 64
		intercept := float64(interceptRaw) / 64
		xs := []float64{-3, -1, 0, 2, 5, 11}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + intercept
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-slope) < 1e-6 && math.Abs(fit.Intercept-intercept) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
