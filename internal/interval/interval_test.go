package interval

import (
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	iv := New(3, 10)
	if iv.Size() != 8 || iv.Unit() {
		t.Fatalf("size/unit wrong: %v", iv)
	}
	if got := iv.Bot(); got != New(3, 6) {
		t.Fatalf("Bot = %v", got)
	}
	if got := iv.Top(); got != New(7, 10) {
		t.Fatalf("Top = %v", got)
	}
	if v, ok := New(5, 5).Value(); !ok || v != 5 {
		t.Fatalf("Value = %d,%v", v, ok)
	}
	if _, ok := iv.Value(); ok {
		t.Fatal("non-unit interval reported a value")
	}
	if iv.String() != "[3,10]" {
		t.Fatalf("String = %s", iv.String())
	}
}

func TestContainsOverlaps(t *testing.T) {
	a, b, c := New(1, 8), New(3, 5), New(9, 12)
	if !a.Contains(b) || b.Contains(a) {
		t.Fatal("Contains wrong")
	}
	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Fatal("Overlaps wrong")
	}
	if !a.ContainsValue(8) || a.ContainsValue(9) {
		t.Fatal("ContainsValue wrong")
	}
}

func TestDepth(t *testing.T) {
	root := Full(10) // [1,10] → [1,5],[6,10] → [1,3],[4,5],[6,8],[9,10] …
	cases := []struct {
		iv    Interval
		depth int
		ok    bool
	}{
		{Full(10), 0, true},
		{New(1, 5), 1, true},
		{New(6, 10), 1, true},
		{New(1, 3), 2, true},
		{New(9, 10), 2, true},
		{New(2, 4), 0, false}, // straddles a midpoint: not a tree vertex
		{New(1, 10), 0, true},
	}
	for _, c := range cases {
		depth, ok := c.iv.Depth(root)
		if ok != c.ok || (ok && depth != c.depth) {
			t.Errorf("Depth(%v) = %d,%v; want %d,%v", c.iv, depth, ok, c.depth, c.ok)
		}
		if c.iv.InTree(root) != c.ok {
			t.Errorf("InTree(%v) = %v", c.iv, !c.ok)
		}
	}
}

func TestLess(t *testing.T) {
	if !Less(New(1, 4), New(2, 3)) || Less(New(2, 3), New(1, 4)) {
		t.Fatal("Less by Lo wrong")
	}
	if !Less(New(1, 3), New(1, 4)) {
		t.Fatal("Less by Hi wrong")
	}
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(5, 4)
}

func TestBotPanicsOnUnit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3, 3).Bot()
}

// TestQuickHalvingPartition: for any interval, Bot and Top partition it.
func TestQuickHalvingPartition(t *testing.T) {
	prop := func(loRaw, sizeRaw uint16) bool {
		lo := int(loRaw%1000) + 1
		size := int(sizeRaw%1000) + 2
		iv := New(lo, lo+size-1)
		bot, top := iv.Bot(), iv.Top()
		if bot.Hi+1 != top.Lo || bot.Lo != iv.Lo || top.Hi != iv.Hi {
			return false
		}
		if bot.Size()+top.Size() != iv.Size() {
			return false
		}
		// bot gets the ceiling half per the paper's floor((l+r)/2) split:
		// |bot| − |top| ∈ {0, 1}.
		diff := bot.Size() - top.Size()
		return diff == 0 || diff == 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLevelSizes: at every depth of the halving tree, interval sizes
// differ by at most one — the property behind the frozen-unit frontier
// argument in core.
func TestQuickLevelSizes(t *testing.T) {
	prop := func(nRaw uint16) bool {
		n := int(nRaw%500) + 1
		level := []Interval{Full(n)}
		for len(level) > 0 {
			min, max := level[0].Size(), level[0].Size()
			for _, iv := range level {
				if iv.Size() < min {
					min = iv.Size()
				}
				if iv.Size() > max {
					max = iv.Size()
				}
			}
			if max-min > 1 {
				return false
			}
			var next []Interval
			for _, iv := range level {
				if !iv.Unit() {
					next = append(next, iv.Bot(), iv.Top())
				}
			}
			level = next
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDepthRoundTrip: every vertex reached by halving reports its
// construction depth.
func TestQuickDepthRoundTrip(t *testing.T) {
	prop := func(nRaw uint16, path uint32) bool {
		n := int(nRaw%2000) + 1
		root := Full(n)
		iv := root
		depth := 0
		for !iv.Unit() {
			if path&1 == 0 {
				iv = iv.Bot()
			} else {
				iv = iv.Top()
			}
			path >>= 1
			depth++
			got, ok := iv.Depth(root)
			if !ok || got != depth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
