package interval_test

import (
	"fmt"

	"renaming/internal/interval"
)

// Example walks the halving tree the crash algorithm descends: the root
// [1,n] splits into bot/top until every interval is a unit holding one
// new identity.
func Example() {
	iv := interval.Full(10)
	fmt.Println(iv, "size", iv.Size())
	fmt.Println(iv.Bot(), iv.Top())
	leaf := iv.Bot().Top().Bot() // [1,5] → [4,5] → [4,4]
	depth, _ := leaf.Depth(iv)
	fmt.Println(leaf, "unit:", leaf.Unit(), "depth:", depth)
	// Output:
	// [1,10] size 10
	// [1,5] [6,10]
	// [4,4] unit: true depth: 3
}
