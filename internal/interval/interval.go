// Package interval implements the interval algebra of Section 2: closed
// integer intervals [Lo, Hi] arranged in the binary halving tree rooted at
// [1, n]. A vertex labelled I = [l, r] with more than one integer has a
// left child bot(I) = [l, floor((l+r)/2)] and a right child
// top(I) = [floor((l+r)/2)+1, r]. The crash-resilient renaming algorithm
// walks nodes down this tree until every interval has size one.
package interval

import (
	"fmt"
	"strconv"
)

// Interval is a closed integer interval [Lo, Hi] with Lo <= Hi.
// The zero value is the (invalid) empty interval [0, 0]; construct
// intervals with New or Full.
type Interval struct {
	Lo int
	Hi int
}

// New returns the interval [lo, hi]. It panics if lo > hi, which would be
// a programming error: the halving tree never produces empty intervals.
func New(lo, hi int) Interval {
	if lo > hi {
		panic(fmt.Sprintf("interval: invalid [%d,%d]", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// Full returns the tree root [1, n].
func Full(n int) Interval { return New(1, n) }

// Size returns the number of integers in the interval.
func (iv Interval) Size() int { return iv.Hi - iv.Lo + 1 }

// Unit reports whether the interval contains exactly one integer, i.e.
// the owning node has determined its new identity.
func (iv Interval) Unit() bool { return iv.Lo == iv.Hi }

// Value returns the single integer of a unit interval. ok is false when
// the interval still spans more than one value.
func (iv Interval) Value() (v int, ok bool) {
	if !iv.Unit() {
		return 0, false
	}
	return iv.Lo, true
}

// Bot returns bot(I) = [l, floor((l+r)/2)], the left child in the tree.
// It panics on unit intervals, which are leaves.
func (iv Interval) Bot() Interval {
	if iv.Unit() {
		panic("interval: Bot of unit interval")
	}
	return Interval{Lo: iv.Lo, Hi: (iv.Lo + iv.Hi) / 2}
}

// Top returns top(I) = [floor((l+r)/2)+1, r], the right child in the tree.
// It panics on unit intervals, which are leaves.
func (iv Interval) Top() Interval {
	if iv.Unit() {
		panic("interval: Top of unit interval")
	}
	return Interval{Lo: (iv.Lo+iv.Hi)/2 + 1, Hi: iv.Hi}
}

// Contains reports whether other ⊆ iv.
func (iv Interval) Contains(other Interval) bool {
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// ContainsValue reports whether v ∈ iv.
func (iv Interval) ContainsValue(v int) bool { return iv.Lo <= v && v <= iv.Hi }

// Overlaps reports whether the two intervals share at least one integer.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Depth returns the depth of iv in the halving tree rooted at root, or
// ok=false when iv is not a vertex of that tree. The root has depth 0.
func (iv Interval) Depth(root Interval) (depth int, ok bool) {
	cur := root
	for {
		if cur == iv {
			return depth, true
		}
		if cur.Unit() || !cur.Contains(iv) {
			return 0, false
		}
		if cur.Bot().Contains(iv) {
			cur = cur.Bot()
		} else if cur.Top().Contains(iv) {
			cur = cur.Top()
		} else {
			// iv straddles the midpoint: not a tree vertex.
			return 0, false
		}
		depth++
	}
}

// InTree reports whether iv is a vertex of the halving tree rooted at root.
func (iv Interval) InTree(root Interval) bool {
	_, ok := iv.Depth(root)
	return ok
}

// String renders "[lo,hi]".
func (iv Interval) String() string {
	return "[" + strconv.Itoa(iv.Lo) + "," + strconv.Itoa(iv.Hi) + "]"
}

// Less orders intervals by left endpoint, then by right endpoint; the
// crash algorithm's NodeAction sorts responses by min(I) ascending.
func Less(a, b Interval) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	return a.Hi < b.Hi
}
