package core

import (
	"fmt"
	"math/rand"
	"sort"

	"renaming/internal/interval"
	"renaming/internal/sim"
)

// CrashConfig parameterizes the crash-resilient renaming algorithm.
type CrashConfig struct {
	// N is the size of the original namespace [N].
	N int
	// IDs maps link index → original identity; identities are unique
	// values in [1, N].
	IDs []int
	// Seed drives every random choice of the execution.
	Seed int64
	// CommitteeScale multiplies the paper's election constant 256. The
	// paper's constant makes the election probability exceed 1 for
	// laptop-scale n (collapsing the committee to everyone); scaling it
	// down lets experiments exercise genuinely small committees. The
	// default 0 means 1.0, i.e. the paper's constant.
	CommitteeScale float64
	// DisableReelectionDoubling is the A1 ablation: after a committee
	// wipe, nodes re-elect with the *initial* probability instead of
	// doubling it. Without doubling the adversary can keep wiping
	// committees at constant per-phase cost, so the algorithm loses the
	// resource-competitive property (and may run out of phases).
	DisableReelectionDoubling bool
	// EarlyStop enables the early-stopping extension: a committee member
	// that sees only unit intervals in a phase flags Done in its
	// responses, and nodes halt on the first Done they receive. Safety
	// is unaffected (a unit interval never changes), and in failure-free
	// runs the round count drops from 9·ceil(log2 n) to roughly
	// 3·(ceil(log2 n)+2) — the adaptive-time behaviour of the
	// resource-competitive renaming line of work.
	EarlyStop bool
}

func (cfg CrashConfig) scale() float64 {
	if cfg.CommitteeScale <= 0 {
		return 1
	}
	return cfg.CommitteeScale
}

// Validate checks the configuration.
func (cfg CrashConfig) Validate() error {
	n := len(cfg.IDs)
	if n == 0 {
		return fmt.Errorf("core: no nodes configured")
	}
	if cfg.N < n {
		return fmt.Errorf("core: namespace N=%d smaller than n=%d", cfg.N, n)
	}
	seen := make(map[int]bool, n)
	for i, id := range cfg.IDs {
		if id < 1 || id > cfg.N {
			return fmt.Errorf("core: node %d has identity %d outside [1,%d]", i, id, cfg.N)
		}
		if seen[id] {
			return fmt.Errorf("core: duplicate identity %d", id)
		}
		seen[id] = true
	}
	return nil
}

// Phases returns the paper's phase count 3·ceil(log2 n).
func (cfg CrashConfig) Phases() int { return 3 * log2Ceil(len(cfg.IDs)) }

// TotalRounds returns the number of synchronous rounds a full execution
// takes: three per phase plus the final response-processing round.
func (cfg CrashConfig) TotalRounds() int {
	if cfg.Phases() == 0 {
		return 0
	}
	return 3*cfg.Phases() + 1
}

// CrashPeek is the adversary-visible snapshot of a crash node's state; it
// satisfies the adversary package's CommitteeInfo interface.
type CrashPeek struct {
	Elected bool
	P       int
	D       int
	Decided bool
}

// IsCommitteeMember reports whether the node currently has elected=true.
func (s CrashPeek) IsCommitteeMember() bool { return s.Elected }

// CrashNode is one participant of the crash-resilient algorithm
// (Figures 1–3). Each phase spans three synchronous rounds:
//
//	round 3k   — NodeAction on the previous phase's responses, then
//	             committee members broadcast their Notify announcement;
//	round 3k+1 — nodes that received announcements send their Status to
//	             every active committee member;
//	round 3k+2 — committee members run CommitteeAction on the received
//	             statuses and send per-node Response decisions.
//
// Responses sent in round 3k+2 are delivered in round 3(k+1), which is
// where the next NodeAction runs — matching the paper's "end of phase"
// processing.
type CrashNode struct {
	idx int // link index
	id  int // original identity in [1, N]
	n   int
	cfg CrashConfig
	rng *rand.Rand

	iv          interval.Interval
	p           int
	d           int
	elected     bool
	everElected bool

	phases  int
	halted  bool
	decided bool

	// committeeLinks holds, during rounds 3k+1 and 3k+2, the links that
	// announced committee membership this phase.
	committeeLinks []int
}

var _ sim.Node = (*CrashNode)(nil)

// NewCrashNode constructs the node at link index idx. The initial
// self-election with probability 256·log n/n (Figure 1 line 2) happens
// here, at activation time.
func NewCrashNode(cfg CrashConfig, idx int) *CrashNode {
	n := len(cfg.IDs)
	node := &CrashNode{
		idx:    idx,
		id:     cfg.IDs[idx],
		n:      n,
		cfg:    cfg,
		rng:    sim.NewRand(cfg.Seed, 0x6372617368<<16|uint64(idx)), // "crash" stream
		iv:     interval.Full(n),
		phases: cfg.Phases(),
	}
	if node.phases == 0 {
		// n == 1: the interval [1,1] is already a unit; nothing to do.
		node.halted = true
		node.decided = true
		return node
	}
	node.elected = node.rng.Float64() < node.electProb(0)
	node.everElected = node.elected
	return node
}

// electProb returns min(1, 256·2^p·log2(n)·scale / n).
func (node *CrashNode) electProb(p int) float64 {
	logn := float64(log2Ceil(node.n))
	prob := 256 * float64(uint64(1)<<uint(min(p, 62))) * logn * node.cfg.scale() / float64(node.n)
	if prob > 1 {
		return 1
	}
	return prob
}

// Peek exposes the adversary-visible state snapshot.
func (node *CrashNode) Peek() CrashPeek {
	return CrashPeek{Elected: node.elected, P: node.p, D: node.d, Decided: node.iv.Unit()}
}

// Output returns the node's new identity once its interval is a unit.
func (node *CrashNode) Output() (int, bool) {
	if v, ok := node.iv.Value(); ok && node.decided {
		return v, true
	}
	return 0, false
}

// Halted implements sim.Node.
func (node *CrashNode) Halted() bool { return node.halted }

// Elected reports whether the node is currently a committee member.
func (node *CrashNode) Elected() bool { return node.elected }

// EverElected reports whether the node was a committee member at any
// point — the quantity Lemma 2.6 bounds by O(min{2^p·log n, n}).
func (node *CrashNode) EverElected() bool { return node.everElected }

// State returns (interval, depth, probability exponent) for invariant
// checks in tests.
func (node *CrashNode) State() (interval.Interval, int, int) { return node.iv, node.d, node.p }

// Step implements sim.Node.
func (node *CrashNode) Step(round int, inbox []sim.Message) sim.Outbox {
	if node.halted {
		return nil
	}
	switch round % 3 {
	case 0:
		node.nodeAction(round, inbox)
		if node.halted {
			return nil
		}
		if node.elected {
			return sim.Broadcast(node.idx, node.n, NotifyPayload{})
		}
		return nil
	case 1:
		node.committeeLinks = node.committeeLinks[:0]
		for _, msg := range inbox {
			if _, ok := msg.Payload.(NotifyPayload); ok {
				node.committeeLinks = append(node.committeeLinks, msg.From)
			}
		}
		status := StatusPayload{
			ID: node.id, I: node.iv, D: node.d, P: node.p,
			SizeN: node.cfg.N, SizeSmallN: node.n,
		}
		return sim.Multicast(node.idx, node.committeeLinks, status)
	default:
		if !node.elected {
			return nil
		}
		return node.committeeAction(inbox)
	}
}

// statusMsg pairs a received status with its sender link.
type statusMsg struct {
	link int
	s    StatusPayload
}

// committeeAction implements Figure 2. The committee member halves the
// intervals of exactly the minimum-depth statuses; deeper statuses are
// echoed unchanged (with the member's fresher p), which keeps all nodes
// at most one depth level apart.
func (node *CrashNode) committeeAction(inbox []sim.Message) sim.Outbox {
	var statuses []statusMsg
	for _, msg := range inbox {
		if s, ok := msg.Payload.(StatusPayload); ok {
			statuses = append(statuses, statusMsg{link: msg.From, s: s})
		}
	}
	if len(statuses) == 0 {
		return nil
	}

	// Figure 1 line 10: adopt the maximum received p.
	for _, m := range statuses {
		if m.s.P > node.p {
			node.p = m.s.P
		}
	}

	// d~ = minimum depth among received statuses.
	minDepth := statuses[0].s.D
	for _, m := range statuses {
		if m.s.D < minDepth {
			minDepth = m.s.D
		}
	}

	allUnit := true
	for _, m := range statuses {
		if !m.s.I.Unit() {
			allUnit = false
			break
		}
	}

	out := make(sim.Outbox, 0, len(statuses))
	for _, m := range statuses {
		w := m.s
		resp := ResponsePayload{ID: w.ID, SizeN: node.cfg.N, SizeSmallN: node.n,
			Done: node.cfg.EarlyStop && allUnit}
		switch {
		case w.D != minDepth:
			// Deeper than the frontier: echo unchanged (Figure 2 line 11).
			resp.I, resp.D = w.I, w.D
		case w.I.Unit():
			// A node whose interval already shrank to a unit sits at the
			// frontier only when every interval at this depth has size at
			// most two (level sizes differ by at most one). Halving a
			// unit interval is undefined; echo it with incremented depth
			// so the frontier can move on. The recipient ignores the
			// response anyway (NodeAction only updates when |I_v| > 1).
			resp.I, resp.D = w.I, w.D+1
		default:
			// The halving rule of Figure 2 lines 4–9.
			var ids []int       // ID_(u,w): identities choosing exactly I_w
			var subBotCount int // |B_(u,w)|: identities inside bot(I_w)
			bot := w.I.Bot()
			for _, o := range statuses {
				if o.s.I == w.I {
					ids = append(ids, o.s.ID)
				}
				if bot.Contains(o.s.I) {
					subBotCount++
				}
			}
			sort.Ints(ids)
			rank := sort.SearchInts(ids, w.ID) + 1
			if subBotCount+rank <= bot.Size() {
				resp.I, resp.D = bot, w.D+1
			} else {
				resp.I, resp.D = w.I.Top(), w.D+1
			}
		}
		resp.P = node.p
		out = append(out, sim.Message{From: node.idx, To: m.link, Payload: resp})
	}
	return out
}

// nodeAction implements Figure 3, run on the responses delivered at the
// start of round 3k (sent by the committee in round 3k−1).
func (node *CrashNode) nodeAction(round int, inbox []sim.Message) {
	if round == 0 {
		return // no previous phase
	}
	var responses []ResponsePayload
	for _, msg := range inbox {
		if r, ok := msg.Payload.(ResponsePayload); ok {
			responses = append(responses, r)
		}
	}

	if len(responses) == 0 {
		// Figure 3 lines 1–3: the whole committee crashed this phase.
		if !node.cfg.DisableReelectionDoubling {
			node.p++
		}
		if !node.elected && node.rng.Float64() < node.electProb(node.p) {
			node.elected = true
			node.everElected = true
		}
	} else {
		// Figure 3 lines 5–12: adopt the deepest (then leftmost)
		// decision, then catch up on p.
		sort.SliceStable(responses, func(a, b int) bool {
			if responses[a].D != responses[b].D {
				return responses[a].D > responses[b].D
			}
			return interval.Less(responses[a].I, responses[b].I)
		})
		first := responses[0]
		if !node.iv.Unit() {
			node.d = first.D
			node.iv = first.I
		}
		maxP := node.p
		for _, r := range responses {
			if r.P > maxP {
				maxP = r.P
			}
		}
		if maxP > node.p {
			node.p = maxP
			if !node.elected && node.rng.Float64() < node.electProb(node.p) {
				node.elected = true
				node.everElected = true
			}
		}
		if node.cfg.EarlyStop {
			for _, r := range responses {
				if r.Done && node.iv.Unit() {
					node.halted = true
					node.decided = true
					return
				}
			}
		}
	}

	if round >= 3*node.phases {
		node.halted = true
		node.decided = node.iv.Unit()
	}
}
