package core

import (
	"fmt"
	"sort"
	"sync"

	"renaming/internal/interval"
	"renaming/internal/sim"
)

// CrashConfig parameterizes the crash-resilient renaming algorithm.
type CrashConfig struct {
	// N is the size of the original namespace [N].
	N int
	// IDs maps link index → original identity; identities are unique
	// values in [1, N].
	IDs []int
	// Seed drives every random choice of the execution.
	Seed int64
	// CommitteeScale multiplies the paper's election constant 256. The
	// paper's constant makes the election probability exceed 1 for
	// laptop-scale n (collapsing the committee to everyone); scaling it
	// down lets experiments exercise genuinely small committees. The
	// default 0 means 1.0, i.e. the paper's constant.
	CommitteeScale float64
	// DisableReelectionDoubling is the A1 ablation: after a committee
	// wipe, nodes re-elect with the *initial* probability instead of
	// doubling it. Without doubling the adversary can keep wiping
	// committees at constant per-phase cost, so the algorithm loses the
	// resource-competitive property (and may run out of phases).
	DisableReelectionDoubling bool
	// EarlyStop enables the early-stopping extension: a committee member
	// that sees only unit intervals in a phase flags Done in its
	// responses, and nodes halt on the first Done they receive. Safety
	// is unaffected (a unit interval never changes), and in failure-free
	// runs the round count drops from 9·ceil(log2 n) to roughly
	// 3·(ceil(log2 n)+2) — the adaptive-time behaviour of the
	// resource-competitive renaming line of work.
	EarlyStop bool
}

func (cfg CrashConfig) scale() float64 {
	if cfg.CommitteeScale <= 0 {
		return 1
	}
	return cfg.CommitteeScale
}

// Validate checks the configuration.
func (cfg CrashConfig) Validate() error {
	n := len(cfg.IDs)
	if n == 0 {
		return fmt.Errorf("core: no nodes configured")
	}
	if cfg.N < n {
		return fmt.Errorf("core: namespace N=%d smaller than n=%d", cfg.N, n)
	}
	seen := make(map[int]bool, n)
	for i, id := range cfg.IDs {
		if id < 1 || id > cfg.N {
			return fmt.Errorf("core: node %d has identity %d outside [1,%d]", i, id, cfg.N)
		}
		if seen[id] {
			return fmt.Errorf("core: duplicate identity %d", id)
		}
		seen[id] = true
	}
	return nil
}

// Phases returns the paper's phase count 3·ceil(log2 n).
func (cfg CrashConfig) Phases() int { return 3 * log2Ceil(len(cfg.IDs)) }

// TotalRounds returns the number of synchronous rounds a full execution
// takes: three per phase plus the final response-processing round.
func (cfg CrashConfig) TotalRounds() int {
	if cfg.Phases() == 0 {
		return 0
	}
	return 3*cfg.Phases() + 1
}

// CrashPeek is the adversary-visible snapshot of a crash node's state; it
// satisfies the adversary package's CommitteeInfo interface.
type CrashPeek struct {
	Elected bool
	P       int
	D       int
	Decided bool
}

// IsCommitteeMember reports whether the node currently has elected=true.
func (s CrashPeek) IsCommitteeMember() bool { return s.Elected }

// CrashNode is one participant of the crash-resilient algorithm
// (Figures 1–3). Each phase spans three synchronous rounds:
//
//	round 3k   — NodeAction on the previous phase's responses, then
//	             committee members broadcast their Notify announcement;
//	round 3k+1 — nodes that received announcements send their Status to
//	             every active committee member;
//	round 3k+2 — committee members run CommitteeAction on the received
//	             statuses and send per-node Response decisions.
//
// Responses sent in round 3k+2 are delivered in round 3(k+1), which is
// where the next NodeAction runs — matching the paper's "end of phase"
// processing.
type CrashNode struct {
	idx int // link index
	id  int // original identity in [1, N]
	n   int
	cfg CrashConfig
	// rng replays the node's private randomness stream lazily: the crash
	// algorithm draws only at activation and on committee wipes /
	// p-adoptions, so 16 bytes of (seed, counter) state replace the ~5 KiB
	// resident generator a *rand.Rand would pin per node — the difference
	// between ~5 GiB and ~16 MiB of generator state at n = 2^20.
	rng sim.LazyRand

	iv          interval.Interval
	p           int
	d           int
	elected     bool
	everElected bool

	phases  int
	halted  bool
	decided bool

	// committeeLinks holds, during rounds 3k+1 and 3k+2, the links that
	// announced committee membership this phase.
	committeeLinks []int

	// sets is the engine's interned-set registry (sim.SetUser), letting
	// the per-phase status multicast travel as one shared ToSet entry
	// when this node's committee view matches the phase's canonical set;
	// nil (or a declined intern) falls back to an explicit Multicast.
	sets *sim.Sets
	// agg is the run-wide shared committee aggregate (one object for all
	// nodes, obtained through the registry's scratch slot); nil when
	// shared multicasts are disabled.
	agg *committeeAggregate

	// Reusable scratch, all owned by this node and safe under the
	// engine's one-round buffer slack: an outbox or payload written in
	// round r is copied/delivered within round r and read by recipients
	// in round r+1, while the owner rewrites it no earlier than round
	// r+3 (the next occurrence of the same schedule slot).
	outBuf    sim.Outbox    // outbox reused across every round
	statusBox StatusPayload // the one status box multicast each phase
	respBuf   []ResponsePayload

	// codec and the packed arenas mirror statusBox/respBuf in the
	// bit-packed wire representation (see crashCodec): the same one-round
	// slack contract, a quarter the bytes per in-flight payload.
	codec           crashCodec
	packedStatusBox PackedStatus
	packedRespBuf   []PackedResponse

	// plan is the node's private committee computation, used when this
	// member's inbox is not the shared aggregate view (eager-multicast
	// ablation, or a mid-send filter gave it a per-recipient merged view).
	plan committeePlan
}

var _ sim.Node = (*CrashNode)(nil)
var _ sim.ScheduleQuiescent = (*CrashNode)(nil)
var _ sim.SetUser = (*CrashNode)(nil)

// UseSets implements sim.SetUser: the engine hands the node its
// interned-set registry at setup (nil disables shared multicasts). All
// nodes of a run share one committeeAggregate through the registry's
// scratch slot, so a committee round's inbox-pure work is computed once
// for the whole committee.
func (node *CrashNode) UseSets(s *sim.Sets) {
	node.sets = s
	node.agg = nil
	if s != nil {
		node.agg = s.Scratch(func() any { return new(committeeAggregate) }).(*committeeAggregate)
	}
}

// NewCrashNode constructs the node at link index idx. The initial
// self-election with probability 256·log n/n (Figure 1 line 2) happens
// here, at activation time.
func NewCrashNode(cfg CrashConfig, idx int) *CrashNode {
	n := len(cfg.IDs)
	node := &CrashNode{
		idx:    idx,
		id:     cfg.IDs[idx],
		n:      n,
		cfg:    cfg,
		rng:    sim.NewLazyRand(cfg.Seed, 0x6372617368<<16|uint64(idx)), // "crash" stream
		iv:     interval.Full(n),
		phases: cfg.Phases(),
		codec:  newCrashCodec(cfg),
	}
	if node.phases == 0 {
		// n == 1: the interval [1,1] is already a unit; nothing to do.
		node.halted = true
		node.decided = true
		return node
	}
	node.elected = node.rng.Float64() < node.electProb(0)
	node.everElected = node.elected
	return node
}

// electProb returns min(1, 256·2^p·log2(n)·scale / n).
func (node *CrashNode) electProb(p int) float64 {
	logn := float64(log2Ceil(node.n))
	prob := 256 * float64(uint64(1)<<uint(min(p, 62))) * logn * node.cfg.scale() / float64(node.n)
	if prob > 1 {
		return 1
	}
	return prob
}

// Peek exposes the adversary-visible state snapshot.
func (node *CrashNode) Peek() CrashPeek {
	return CrashPeek{Elected: node.elected, P: node.p, D: node.d, Decided: node.iv.Unit()}
}

// Output returns the node's new identity once its interval is a unit.
func (node *CrashNode) Output() (int, bool) {
	if v, ok := node.iv.Value(); ok && node.decided {
		return v, true
	}
	return 0, false
}

// Halted implements sim.Node.
func (node *CrashNode) Halted() bool { return node.halted }

// Elected reports whether the node is currently a committee member.
func (node *CrashNode) Elected() bool { return node.elected }

// EverElected reports whether the node was a committee member at any
// point — the quantity Lemma 2.6 bounds by O(min{2^p·log n, n}).
func (node *CrashNode) EverElected() bool { return node.everElected }

// State returns (interval, depth, probability exponent) for invariant
// checks in tests.
func (node *CrashNode) State() (interval.Interval, int, int) { return node.iv, node.d, node.p }

// QuiescentAt implements sim.ScheduleQuiescent: an empty inbox is a
// pure no-op in the send-status round (nothing announced, nothing to
// report) and in the committee round (no statuses to decide on), so the
// engine may elide those Step calls for the ~n idle nodes each phase.
// It is NOT a no-op at the start of a phase (round 3k): an empty inbox
// there is the committee-wipe signal of Figure 3 lines 1–3, which
// doubles p and draws re-election randomness, and elected nodes
// broadcast their Notify announcement in that round regardless of the
// inbox.
func (node *CrashNode) QuiescentAt(round int) bool {
	return node.halted || round%3 != 0
}

// Step implements sim.Node.
func (node *CrashNode) Step(round int, inbox []sim.Message) sim.Outbox {
	if node.halted {
		return nil
	}
	switch round % 3 {
	case 0:
		node.nodeAction(round, inbox)
		if node.halted {
			return nil
		}
		if node.elected {
			// Shared-broadcast representation: stored once, billed as n
			// wire messages (sim.ToAll), reusing the node's outbox buffer.
			node.outBuf = append(node.outBuf[:0],
				sim.Message{From: node.idx, To: sim.ToAll, Payload: NotifyPayload{}})
			return node.outBuf
		}
		return nil
	case 1:
		node.committeeLinks = node.committeeLinks[:0]
		for _, msg := range inbox {
			if _, ok := msg.Payload.(NotifyPayload); ok {
				node.committeeLinks = append(node.committeeLinks, msg.From)
			}
		}
		// One status box per phase, shared by every copy of the
		// multicast; recipients read it next round, long before the
		// next rewrite two rounds later. The box is bit-packed when the
		// codec's two-word layout fits the namespace.
		status := StatusPayload{
			ID: node.id, I: node.iv, D: node.d, P: node.p,
			SizeN: node.cfg.N, SizeSmallN: node.n,
		}
		var payload sim.Payload
		if node.codec.packed {
			node.packedStatusBox = node.codec.encodeStatus(status)
			payload = &node.packedStatusBox
		} else {
			node.statusBox = status
			payload = &node.statusBox
		}
		out := node.outBuf[:0]
		// Shared-multicast representation: when this node's committee view
		// matches the phase's canonical set (it always does in failure-free
		// phases — every node derives it from the same Notify broadcasts),
		// a single ToSet entry replaces the K explicit headers. It is
		// billed as K wire messages and delivered through the engine's
		// shared-aggregate layer, so the convergecast costs O(n + K)
		// engine work instead of O(n·K). Nodes whose view diverged — a
		// committee member crashed mid-Notify and the filter dropped some
		// copies — fall back to the explicit Multicast below.
		if node.sets != nil && len(node.committeeLinks) > 0 {
			if id, ok := node.sets.InternPhase(uint64(round/3), node.committeeLinks); ok {
				out = append(out, sim.Message{From: node.idx, To: sim.ToSet(id), Payload: payload})
				node.outBuf = out
				return out
			}
		}
		for _, link := range node.committeeLinks {
			out = append(out, sim.Message{From: node.idx, To: link, Payload: payload})
		}
		node.outBuf = out
		return out
	default:
		if !node.elected {
			return nil
		}
		return node.committeeAction(round, inbox)
	}
}

// statusMsg pairs a received status with its sender link. The pointer
// stays valid for the whole committee round: senders rewrite their
// status box no earlier than the next send-status round.
type statusMsg struct {
	link int
	s    *StatusPayload
}

// ivGroup aggregates the statuses that chose one distinct interval, so
// rank and sub-interval counts are computed once per distinct interval
// instead of once per status (the baseline applyPhase's grouping,
// applied to the committee hot loop).
type ivGroup struct {
	iv     interval.Interval
	count  int32 // statuses with exactly this interval
	start  int32 // offset of this group's ID bucket in idBuf
	filled int32 // bucket fill cursor
	hasMin bool  // some status at the frontier depth chose this interval
}

// committeePlan is the inbox-pure part of one committee round: the
// decoded statuses, the grouped halving quantities of Figure 2, and the
// resulting per-status response decisions — everything except the
// member's own p stamp and the message headers. Those inputs are a pure
// function of the delivered statuses, so when every committee member is
// bound to the same shared status aggregate one plan serves all K of
// them (see committeeAggregate).
type committeePlan struct {
	statusDec []StatusPayload // decoded packed statuses (pointer-stable arena)
	statuses  []statusMsg     // collected status pointers, inbox order
	groups    []ivGroup       // distinct intervals
	groupIdx  []int32         // per status → group index
	idBuf     []int           // per-group sorted ID buckets
	groupOf   map[interval.Interval]int32
	botAcc    map[interval.Interval]int

	// Outputs: respBase[j] is the response for statuses[j] with P left
	// zero (stamped per member at emit time), addressed to links[j].
	respBase []ResponsePayload
	links    []int32
	// maxP is the maximum p carried by any status (Figure 1 line 10);
	// each member adopts max(own p, maxP).
	maxP int
}

// compute fills the plan from a committee round's inbox. It implements
// Figure 2: the member halves the intervals of exactly the
// minimum-depth statuses; deeper statuses are echoed unchanged, which
// keeps all nodes at most one depth level apart.
//
// The per-status work of the halving rule — collecting and sorting the
// identities that chose the same interval, and counting the identities
// inside bot(I) — is shared across every status with the same interval:
// IDs are bucketed and sorted once per distinct interval, and the
// bot(I) occupancy of every needed interval is accumulated along one
// root-to-interval walk of the halving tree per distinct interval
// (tree vertices are nested or disjoint, so the intervals contained in
// bot(I) are exactly those whose root path passes through it). That
// turns the old O(K²) pass over K statuses into O(K log K + G log n)
// for G distinct intervals, with all scratch reused across rounds —
// the change that makes the n = 65536 sweeps feasible. Results are
// byte-identical: rank and count are the same quantities, computed
// grouped.
func (pl *committeePlan) compute(codec *crashCodec, cfg CrashConfig, n int, inbox []sim.Message) {
	statuses := pl.statuses[:0]
	// Packed statuses are decoded into a pre-sized arena so the pointers
	// collected into statuses stay valid (no growth reallocations).
	if cap(pl.statusDec) < len(inbox) {
		pl.statusDec = make([]StatusPayload, 0, len(inbox))
	}
	dec := pl.statusDec[:0]
	for _, msg := range inbox {
		switch s := msg.Payload.(type) {
		case *PackedStatus:
			dec = dec[:len(dec)+1]
			codec.decodeStatus(s, &dec[len(dec)-1])
			statuses = append(statuses, statusMsg{link: msg.From, s: &dec[len(dec)-1]})
		case *StatusPayload:
			statuses = append(statuses, statusMsg{link: msg.From, s: s})
		}
	}
	pl.statusDec = dec
	pl.statuses = statuses
	pl.respBase = pl.respBase[:0]
	pl.links = pl.links[:0]
	pl.maxP = 0
	if len(statuses) == 0 {
		return
	}

	// One pass: the maximum received p (Figure 1 line 10), the frontier
	// depth d~ = min d, and the early-stop condition.
	minDepth := statuses[0].s.D
	allUnit := true
	for _, m := range statuses {
		if m.s.P > pl.maxP {
			pl.maxP = m.s.P
		}
		if m.s.D < minDepth {
			minDepth = m.s.D
		}
		if !m.s.I.Unit() {
			allUnit = false
		}
	}

	// Group statuses by distinct interval.
	if pl.groupOf == nil {
		pl.groupOf = make(map[interval.Interval]int32)
	}
	clear(pl.groupOf)
	groups := pl.groups[:0]
	groupIdx := pl.groupIdx[:0]
	for _, m := range statuses {
		gi, ok := pl.groupOf[m.s.I]
		if !ok {
			gi = int32(len(groups))
			groups = append(groups, ivGroup{iv: m.s.I})
			pl.groupOf[m.s.I] = gi
		}
		g := &groups[gi]
		g.count++
		if m.s.D == minDepth {
			g.hasMin = true
		}
		groupIdx = append(groupIdx, gi)
	}
	pl.groups = groups
	pl.groupIdx = groupIdx

	// Bucket the IDs per group and sort the buckets that the halving
	// rule will rank against (frontier depth, non-unit interval).
	if cap(pl.idBuf) < len(statuses) {
		pl.idBuf = make([]int, len(statuses))
	}
	idBuf := pl.idBuf[:len(statuses)]
	var off int32
	for i := range groups {
		groups[i].start = off
		groups[i].filled = off
		off += groups[i].count
	}
	for j, m := range statuses {
		g := &groups[groupIdx[j]]
		idBuf[g.filled] = m.s.ID
		g.filled++
	}
	for i := range groups {
		g := &groups[i]
		if g.hasMin && !g.iv.Unit() {
			sort.Ints(idBuf[g.start : g.start+g.count])
		}
	}

	// Accumulate |B_(u,w)| = #statuses inside bot(I) for every distinct
	// frontier interval I, by walking each group's root path once.
	if pl.botAcc == nil {
		pl.botAcc = make(map[interval.Interval]int)
	}
	botAcc := pl.botAcc
	clear(botAcc)
	needBot := false
	for i := range groups {
		g := &groups[i]
		if g.hasMin && !g.iv.Unit() {
			botAcc[g.iv.Bot()] = 0
			needBot = true
		}
	}
	if needBot {
		root := interval.Full(n)
		nonTree := false
	walk:
		for i := range groups {
			g := &groups[i]
			cur := root
			for {
				if c, ok := botAcc[cur]; ok {
					botAcc[cur] = c + int(g.count)
				}
				if cur == g.iv || cur.Unit() {
					break
				}
				if b := cur.Bot(); b.Contains(g.iv) {
					cur = b
					continue
				}
				if t := cur.Top(); t.Contains(g.iv) {
					cur = t
					continue
				}
				// g.iv is not a vertex of the halving tree — impossible
				// for statuses produced by this algorithm, but fall back
				// to the exact quadratic count rather than miscount.
				nonTree = true
				break walk
			}
		}
		if nonTree {
			for k := range botAcc {
				botAcc[k] = 0
			}
			for i := range groups {
				g := &groups[i]
				for k := range botAcc {
					if k.Contains(g.iv) {
						botAcc[k] += int(g.count)
					}
				}
			}
		}
	}

	// Decide one response per status, in inbox order, leaving P zero for
	// the member to stamp at emit time.
	early := cfg.EarlyStop && allUnit
	for j, m := range statuses {
		w := m.s
		resp := ResponsePayload{ID: w.ID, SizeN: cfg.N, SizeSmallN: n, Done: early}
		switch {
		case w.D != minDepth:
			// Deeper than the frontier: echo unchanged (Figure 2 line 11).
			resp.I, resp.D = w.I, w.D
		case w.I.Unit():
			// A node whose interval already shrank to a unit sits at the
			// frontier only when every interval at this depth has size at
			// most two (level sizes differ by at most one). Halving a
			// unit interval is undefined; echo it with incremented depth
			// so the frontier can move on. The recipient ignores the
			// response anyway (NodeAction only updates when |I_v| > 1).
			resp.I, resp.D = w.I, w.D+1
		default:
			// The halving rule of Figure 2 lines 4–9, over the grouped
			// quantities: rank of ID(w) among the identities that chose
			// I_w, plus the occupancy of bot(I_w).
			g := &groups[groupIdx[j]]
			bucket := idBuf[g.start : g.start+g.count]
			rank := sort.SearchInts(bucket, w.ID) + 1
			bot := w.I.Bot()
			if botAcc[bot]+rank <= bot.Size() {
				resp.I, resp.D = bot, w.D+1
			} else {
				resp.I, resp.D = w.I.Top(), w.D+1
			}
		}
		pl.respBase = append(pl.respBase, resp)
		pl.links = append(pl.links, int32(m.link))
	}
}

// committeeAggregate is the run-wide shared committee computation, one
// object for all nodes of a run (distributed through sim.Sets.Scratch).
// In a committee round every member receives the same n statuses; when
// the engine bound them all to one shared aggregate view the inbox
// slice identity is shared too, and the first member to step computes
// the plan once for everyone. It also carries a shared response arena:
// the first member to stamp encodes the responses with its adopted p,
// and every member whose p matches (the common case — they all adopt
// the same maximum) reuses the same payload boxes, so a recipient sees
// K responses carrying one box and decodes it once. Members whose p or
// inbox diverged fall back to private encoding — the per-recipient
// delta path.
type committeeAggregate struct {
	mu    sync.Mutex
	round int
	key   *sim.Message // &inbox[0]: identity of the shared bound view
	n     int
	valid bool
	plan  committeePlan

	encoded   bool
	encP      int // p stamped into the shared arena
	packedBuf []PackedResponse
	respBuf   []ResponsePayload
}

// committeeAction implements Figure 2 for one member. The inbox-pure
// plan is computed by committeePlan.compute — through the shared
// aggregate when this member's inbox is the shared bound view (all
// entries keep the sender's ToSet sentinel), privately otherwise.
func (node *CrashNode) committeeAction(round int, inbox []sim.Message) sim.Outbox {
	if len(inbox) == 0 {
		return nil
	}
	// A delivered inbox whose To is still a shared sentinel is the
	// engine's zero-copy bound view — identical (same backing array) for
	// every member of the set. Per-recipient merged or individual views
	// carry To == own link and take the private path.
	if node.agg != nil && inbox[0].To < 0 {
		return node.committeeShared(round, inbox)
	}
	pl := &node.plan
	pl.compute(&node.codec, node.cfg, node.n, inbox)
	if len(pl.respBase) == 0 {
		return nil
	}
	if pl.maxP > node.p {
		node.p = pl.maxP
	}
	return node.emitResponses(pl)
}

// committeeShared runs the member's committee round over the shared
// aggregate: plan computed once per (round, view), responses encoded
// once for the common adopted p, headers built per member.
func (node *CrashNode) committeeShared(round int, inbox []sim.Message) sim.Outbox {
	agg := node.agg
	agg.mu.Lock()
	if !agg.valid || agg.round != round || agg.key != &inbox[0] || agg.n != len(inbox) {
		agg.round, agg.key, agg.n = round, &inbox[0], len(inbox)
		agg.plan.compute(&node.codec, node.cfg, node.n, inbox)
		agg.encoded = false
		agg.valid = true
	}
	pl := &agg.plan
	if len(pl.respBase) == 0 {
		agg.mu.Unlock()
		return nil
	}
	if pl.maxP > node.p {
		node.p = pl.maxP
	}
	if !agg.encoded {
		// First member to stamp encodes the shared arena with its p. All
		// members adopt max(own p, maxP), so in the common uniform-p case
		// everyone reuses these boxes.
		agg.encP = node.p
		if node.codec.packed {
			if cap(agg.packedBuf) < len(pl.respBase) {
				agg.packedBuf = make([]PackedResponse, len(pl.respBase))
			}
			buf := agg.packedBuf[:len(pl.respBase)]
			for j, resp := range pl.respBase {
				resp.P = node.p
				buf[j] = node.codec.encodeResponse(resp)
			}
			agg.packedBuf = buf
		} else {
			if cap(agg.respBuf) < len(pl.respBase) {
				agg.respBuf = make([]ResponsePayload, len(pl.respBase))
			}
			buf := agg.respBuf[:len(pl.respBase)]
			for j, resp := range pl.respBase {
				resp.P = node.p
				buf[j] = resp
			}
			agg.respBuf = buf
		}
		agg.encoded = true
	}
	reuse := agg.encP == node.p
	agg.mu.Unlock()
	// Past this point the plan and arena are immutable for the rest of
	// the round (the next rewrite is the next committee round, three
	// engine barriers away), so headers are built outside the lock.
	if !reuse {
		// This member adopted a different p than the stamping member —
		// encode a private arena (the rare per-member delta).
		return node.emitResponses(pl)
	}
	out := node.outBuf[:0]
	if node.codec.packed {
		for j := range pl.respBase {
			out = append(out, sim.Message{From: node.idx, To: int(pl.links[j]), Payload: &agg.packedBuf[j]})
		}
	} else {
		for j := range pl.respBase {
			out = append(out, sim.Message{From: node.idx, To: int(pl.links[j]), Payload: &agg.respBuf[j]})
		}
	}
	node.outBuf = out
	return out
}

// emitResponses stamps the member's p into the plan's response
// decisions and encodes them into the node-owned arena (packed when the
// codec layout fits); recipients read the boxes next round, before the
// next committee round rewrites them.
func (node *CrashNode) emitResponses(pl *committeePlan) sim.Outbox {
	out := node.outBuf[:0]
	if node.codec.packed {
		if cap(node.packedRespBuf) < len(pl.respBase) {
			node.packedRespBuf = make([]PackedResponse, len(pl.respBase))
		}
		packedBuf := node.packedRespBuf[:len(pl.respBase)]
		for j, resp := range pl.respBase {
			resp.P = node.p
			packedBuf[j] = node.codec.encodeResponse(resp)
			out = append(out, sim.Message{From: node.idx, To: int(pl.links[j]), Payload: &packedBuf[j]})
		}
		node.packedRespBuf = packedBuf
	} else {
		if cap(node.respBuf) < len(pl.respBase) {
			node.respBuf = make([]ResponsePayload, len(pl.respBase))
		}
		respBuf := node.respBuf[:len(pl.respBase)]
		for j, resp := range pl.respBase {
			resp.P = node.p
			respBuf[j] = resp
			out = append(out, sim.Message{From: node.idx, To: int(pl.links[j]), Payload: &respBuf[j]})
		}
		node.respBuf = respBuf
	}
	node.outBuf = out
	return out
}

// nodeAction implements Figure 3, run on the responses delivered at the
// start of round 3k (sent by the committee in round 3k−1).
func (node *CrashNode) nodeAction(round int, inbox []sim.Message) {
	if round == 0 {
		return // no previous phase
	}
	// One pass over the inbox: the response the old stable sort put
	// first is the minimum under (D descending, then interval Less) with
	// earliest-arrival tie-breaking — tracked directly, along with the
	// maximum received p and the early-stop flag, without materialising
	// or reordering a responses slice.
	var best ResponsePayload
	haveBest := false
	maxP := node.p
	sawDone := false
	// Committee members that reused the shared response arena all sent
	// this node the same payload box; decode it once.
	var lastPacked *PackedResponse
	var lastDec ResponsePayload
	for _, msg := range inbox {
		var r ResponsePayload
		switch p := msg.Payload.(type) {
		case *PackedResponse:
			if p == lastPacked {
				r = lastDec
			} else {
				node.codec.decodeResponse(p, &r)
				lastPacked, lastDec = p, r
			}
		case *ResponsePayload:
			r = *p
		default:
			continue
		}
		if !haveBest || r.D > best.D || (r.D == best.D && interval.Less(r.I, best.I)) {
			best = r
			haveBest = true
		}
		if r.P > maxP {
			maxP = r.P
		}
		if r.Done {
			sawDone = true
		}
	}

	if !haveBest {
		// Figure 3 lines 1–3: the whole committee crashed this phase.
		if !node.cfg.DisableReelectionDoubling {
			node.p++
		}
		if !node.elected && node.rng.Float64() < node.electProb(node.p) {
			node.elected = true
			node.everElected = true
		}
	} else {
		// Figure 3 lines 5–12: adopt the deepest (then leftmost)
		// decision, then catch up on p.
		if !node.iv.Unit() {
			node.d = best.D
			node.iv = best.I
		}
		if maxP > node.p {
			node.p = maxP
			if !node.elected && node.rng.Float64() < node.electProb(node.p) {
				node.elected = true
				node.everElected = true
			}
		}
		if node.cfg.EarlyStop && sawDone && node.iv.Unit() {
			node.halted = true
			node.decided = true
			return
		}
	}

	if round >= 3*node.phases {
		node.halted = true
		node.decided = node.iv.Unit()
	}
}
