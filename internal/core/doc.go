// Package core implements the paper's two strong renaming algorithms and
// the Byzantine node behaviours used to attack the second one.
//
// # Crash-resilient renaming (Section 2, Figures 1–3)
//
// CrashNode runs 3·⌈log₂ n⌉ phases of three synchronous rounds each:
//
//	round 1  committee members broadcast a Notify announcement;
//	round 2  every node reports ⟨ID, I, d, p⟩ to each announcing member;
//	round 3  members run CommitteeAction: they compute the minimum depth
//	         d̃ among the reports, halve exactly the depth-d̃ intervals by
//	         the identity-rank rule (bot if |B| + rank ≤ |bot(I)|, top
//	         otherwise), and echo deeper reports unchanged. Nodes process
//	         the responses at the start of the next phase (NodeAction).
//
// A node that hears no response concludes the whole committee crashed:
// it increments its probability exponent p and re-elects itself with
// probability 256·2^p·log n / n — the doubling that forces the adversary
// to spend exponentially more crashes per committee wipe and makes the
// message bill scale with the actual number of failures f. The invariants
// behind correctness (interval occupancy ≤ interval size, p-gap ≤ 1,
// progress every two phases) are checked as tests in this package.
//
// Two extensions are provided as options: EarlyStop (the committee flags
// a Done bit once every reported interval is a unit, making the round
// count adaptive) and DisableReelectionDoubling (the A1 ablation).
//
// # Byzantine-resilient renaming (Section 3)
//
// ByzNode proceeds through four phases:
//
//	elect       identities sampled into the shared candidate pool (or
//	            selected by public-hash sortition) announce themselves;
//	aggregate   every node sends its identity to the committee, giving
//	            each member an N-bit identity list L;
//	loop        the committee agrees on L by fingerprint divide-and-
//	            conquer: Validator on ⟨hash(segment), popcount⟩, Consensus
//	            on the validator's same flag, a diff-report exchange,
//	            Consensus on the amplified diff flag; disagreement splits
//	            the segment and recurses (O(f·log N) iterations, Lemma
//	            3.10), while members whose segment lost the vote mark it
//	            dirty, rewrite it to the agreed popcount, and abstain from
//	            distributing inside it;
//	distribute  members send each directly-known node its rank in the
//	            agreed list; nodes decide on the plurality of a two-thirds
//	            quorum of NEW messages.
//
// New identities are ranks in a list every correct member agrees on, so
// the renaming is strong and order-preserving (Lemma 3.12).
//
// ByzAttacker implements the static adversary's strategies: silent,
// split-world (announce to half the committee — drives recursion),
// minority-split (withhold from a sub-third — drives the dirty path),
// equivocate (conflicting subprotocol values plus fabricated NEW
// messages), and spam. The committee views of correct nodes are
// instantiated under the common-view assumption of Lemmas 3.3/3.4; see
// DESIGN.md §2 for the modelling note.
package core
