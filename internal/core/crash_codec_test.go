package core

import (
	"math/rand"
	"testing"

	"renaming/internal/interval"
)

// randomCrashCfg draws a CrashConfig shell (sizes only) for codec tests.
func randomCrashCfg(rng *rand.Rand) CrashConfig {
	n := 1 << (1 + rng.Intn(16)) // 2 .. 65536
	return CrashConfig{N: n * (1 + rng.Intn(8)), IDs: make([]int, n)}
}

// TestCrashCodecRoundTrip is the codec-vs-struct property test: for
// random configurations and random in-domain payloads, encode→decode is
// the identity and the packed payload bills exactly the same Bits() as
// the struct it replaces — the invariant that keeps golden fingerprints
// byte-identical under packing.
func TestCrashCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		cfg := randomCrashCfg(rng)
		n := len(cfg.IDs)
		c := newCrashCodec(cfg)
		if !c.packed {
			t.Fatalf("trial %d: codec unexpectedly unpacked for N=%d n=%d", trial, cfg.N, n)
		}
		lo := 1 + rng.Intn(n)
		hi := lo + rng.Intn(n-lo+1)
		s := StatusPayload{
			ID:    1 + rng.Intn(cfg.N),
			I:     interval.New(lo, hi),
			D:     rng.Intn(cfg.TotalRounds() + 1),
			P:     rng.Intn(cfg.TotalRounds() + 1),
			SizeN: cfg.N, SizeSmallN: n,
		}
		ps := c.encodeStatus(s)
		if ps.Bits() != s.Bits() {
			t.Fatalf("trial %d: packed status bills %d bits, struct bills %d", trial, ps.Bits(), s.Bits())
		}
		var back StatusPayload
		c.decodeStatus(&ps, &back)
		if back != s {
			t.Fatalf("trial %d: status round-trip %+v != %+v", trial, back, s)
		}

		r := ResponsePayload{
			ID: s.ID, I: s.I, D: s.D, P: s.P, Done: rng.Intn(2) == 0,
			SizeN: cfg.N, SizeSmallN: n,
		}
		pr := c.encodeResponse(r)
		if pr.Bits() != r.Bits() {
			t.Fatalf("trial %d: packed response bills %d bits, struct bills %d", trial, pr.Bits(), r.Bits())
		}
		var rback ResponsePayload
		c.decodeResponse(&pr, &rback)
		if rback != r {
			t.Fatalf("trial %d: response round-trip %+v != %+v", trial, rback, r)
		}
	}
}

// TestCrashCodecKinds pins the wire kinds: metrics bucket packed and
// unpacked payloads identically.
func TestCrashCodecKinds(t *testing.T) {
	if (PackedStatus{}).Kind() != (StatusPayload{}).Kind() {
		t.Fatal("packed status kind differs from struct kind")
	}
	if (PackedResponse{}).Kind() != (ResponsePayload{}).Kind() {
		t.Fatal("packed response kind differs from struct kind")
	}
	if (PackedNew{}).Kind() != (NewPayload{}).Kind() {
		t.Fatal("packed new kind differs from struct kind")
	}
}

// TestByzCodecRoundTrip checks the NEW codec against the struct: the
// round-trip is the identity (including identities above n, which
// Byzantine-inflated ranks can produce) and billing matches the struct.
func TestByzCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 1 << (1 + rng.Intn(16))
		bigN := n * (1 + rng.Intn(8))
		c := newByzCodec(n, bigN)
		p := NewPayload{SizeSmallN: n}
		if rng.Intn(4) == 0 {
			p.Null = true
		} else {
			p.NewID = 1 + rng.Intn(bigN)
		}
		pn := c.encodeNew(p)
		if pn.Bits() != p.Bits() {
			t.Fatalf("trial %d: packed new bills %d bits, struct bills %d", trial, pn.Bits(), p.Bits())
		}
		var back NewPayload
		c.decodeNew(&pn, &back)
		if back != p {
			t.Fatalf("trial %d: new round-trip %+v != %+v", trial, back, p)
		}
	}
}

// FuzzCrashCodecRoundTrip fuzzes the response codec (the wider of the
// two layouts) over configuration and field bytes. Any in-domain
// payload that fails to round-trip, or bills differently packed, fails.
func FuzzCrashCodecRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(7), uint16(3), uint16(9), uint8(1), uint8(1), false)
	f.Add(uint8(16), uint8(7), uint16(65535), uint16(1), uint16(65535), uint8(200), uint8(0), true)
	f.Add(uint8(1), uint8(0), uint16(0), uint16(0), uint16(0), uint8(0), uint8(0), false)
	f.Fuzz(func(t *testing.T, logn, nMul uint8, id, lo, span uint16, d, p uint8, done bool) {
		n := 1 << (1 + int(logn)%16)
		cfg := CrashConfig{N: n * (1 + int(nMul)%8), IDs: make([]int, n)}
		c := newCrashCodec(cfg)
		if !c.packed {
			t.Skip("layout wider than two words")
		}
		loV := 1 + int(lo)%n
		hiV := loV + int(span)%(n-loV+1)
		r := ResponsePayload{
			ID:    1 + int(id)%cfg.N,
			I:     interval.New(loV, hiV),
			D:     int(d) % (cfg.TotalRounds() + 1),
			P:     int(p) % (cfg.TotalRounds() + 1),
			Done:  done,
			SizeN: cfg.N, SizeSmallN: n,
		}
		pr := c.encodeResponse(r)
		if pr.Bits() != r.Bits() {
			t.Fatalf("packed bills %d, struct bills %d", pr.Bits(), r.Bits())
		}
		var back ResponsePayload
		c.decodeResponse(&pr, &back)
		if back != r {
			t.Fatalf("round-trip %+v != %+v", back, r)
		}
	})
}
