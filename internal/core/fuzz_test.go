package core

import (
	"testing"

	"renaming/internal/sim"
)

// fuzzCrashAdversary decodes an arbitrary byte string into a crash
// schedule: every 3-byte group (round, node, mode) crashes one node at
// one round, with mode selecting clean vs mid-send partial delivery with
// a byte-derived recipient mask. This explores crash timings no
// hand-written strategy covers.
type fuzzCrashAdversary struct {
	orders map[int][]sim.CrashOrder
	budget int
}

func decodeCrashSchedule(data []byte, n, rounds int) *fuzzCrashAdversary {
	adv := &fuzzCrashAdversary{orders: make(map[int][]sim.CrashOrder), budget: n - 1}
	issued := 0
	for i := 0; i+2 < len(data) && issued < n-1; i += 3 {
		round := int(data[i]) % rounds
		node := int(data[i+1]) % n
		mode := data[i+2]
		order := sim.CrashOrder{Node: node}
		if mode%2 == 1 {
			mask := mode
			order.Filter = func(to int) bool { return (to+int(mask))%3 != 0 }
		}
		adv.orders[round] = append(adv.orders[round], order)
		issued++
	}
	return adv
}

// Crashes implements sim.CrashAdversary, enforcing the n−1 budget across
// duplicated orders (the network ignores repeats on dead nodes anyway).
func (a *fuzzCrashAdversary) Crashes(view sim.View) []sim.CrashOrder {
	return a.orders[view.Round]
}

// FuzzCrashRenaming runs the full crash algorithm against byte-decoded
// adversary schedules and asserts the strong renaming guarantee: every
// surviving node decides, identities are unique and within [1, n], and
// the round bound holds.
func FuzzCrashRenaming(f *testing.F) {
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{9, 9, 1, 9, 8, 1, 9, 7, 1, 9, 6, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 24
		cfg := seqConfig(n, 4*n, 77)
		cfg.CommitteeScale = 0.08
		// The first byte also steers the optional extension knobs so the
		// fuzzer covers the early-stop and no-doubling paths.
		if len(data) > 0 {
			cfg.EarlyStop = data[0]&1 == 1
			cfg.DisableReelectionDoubling = data[0]&2 == 2
		}
		adv := decodeCrashSchedule(data, n, cfg.TotalRounds())

		nodes := make([]*CrashNode, n)
		simNodes := make([]sim.Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = NewCrashNode(cfg, i)
			simNodes[i] = nodes[i]
		}
		nw := sim.NewNetwork(simNodes,
			sim.WithCrashAdversary(adv),
			sim.WithPeek(func(i int) any { return nodes[i].Peek() }),
		)
		if err := nw.Run(cfg.TotalRounds() + 1); err != nil {
			t.Fatalf("run: %v", err)
		}
		if nw.AliveCount() == 0 {
			return // schedule killed everyone; vacuous
		}
		seen := make(map[int]int)
		for i, node := range nodes {
			if !nw.Alive(i) {
				continue
			}
			id, ok := node.Output()
			if !ok {
				if cfg.DisableReelectionDoubling {
					return // the ablation is allowed to starve (see A1)
				}
				t.Fatalf("alive node %d undecided (schedule %v)", i, data)
			}
			if id < 1 || id > n {
				t.Fatalf("node %d got id %d", i, id)
			}
			if prev, dup := seen[id]; dup {
				t.Fatalf("nodes %d and %d share id %d", prev, i, id)
			}
			seen[id] = i
		}
	})
}

// FuzzByzantineRenaming runs the Byzantine algorithm against byte-decoded
// corruption patterns (which links are Byzantine and with which
// behaviour) and asserts uniqueness + order preservation whenever the
// committee assumption holds.
func FuzzByzantineRenaming(f *testing.F) {
	f.Add([]byte{1, 1}, int64(3))
	f.Add([]byte{3, 2, 9, 4, 15, 1}, int64(5))
	f.Add([]byte{}, int64(0))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		const n = 18
		cfg := byzConfig(n, 6*n, seed, 0)
		maxByz := cfg.MaxByzantine()
		byz := make(map[int]ByzBehavior)
		for i := 0; i+1 < len(data) && len(byz) < maxByz; i += 2 {
			link := int(data[i]) % n
			behavior := ByzBehavior(int(data[i+1])%6) + BehaviorSilent
			byz[link] = behavior
		}
		run := buildByzRun(t, cfg, byz)
		run.execute(t)
		if !run.assumptionHolds() {
			return
		}
		run.checkStrongOrderPreserving(t)
		run.checkPartitions(t)
	})
}
