package core

import (
	"testing"
)

// TestLemma310IterationBound: the divide-and-conquer loop terminates
// within 4·f·log N iterations (one when f = 0).
func TestLemma310IterationBound(t *testing.T) {
	n := 30
	for _, f := range []int{0, 1, 3, 6} {
		cfg := byzConfig(n, 8*n, 9, 0)
		byz := make(map[int]ByzBehavior, f)
		for i := 0; i < f; i++ {
			byz[4*i+1] = BehaviorSplitWorld
		}
		run := buildByzRun(t, cfg, byz)
		run.execute(t)
		if !run.assumptionHolds() {
			continue
		}
		iters := 0
		for _, link := range run.correct {
			if it := run.honest[link].Iterations(); it > iters {
				iters = it
			}
		}
		bound := 4 * f * (log2Ceil(cfg.N) + 1)
		if f == 0 {
			bound = 1
		}
		if iters > bound {
			t.Fatalf("f=%d: %d iterations exceed 4·f·logN = %d", f, iters, bound)
		}
	}
}

// TestFact36ListSemantics: after an execution, every correct committee
// member's agreed list contains every correct node's identity outside
// dirty segments, and the total ones never exceed n.
func TestFact36ListSemantics(t *testing.T) {
	n := 24
	cfg := byzConfig(n, 6*n, 21, 0)
	byz := map[int]ByzBehavior{2: BehaviorSplitWorld, 13: BehaviorSplitWorld}
	run := buildByzRun(t, cfg, byz)
	run.execute(t)
	if !run.assumptionHolds() {
		t.Skip("committee composition outside guarantee envelope")
	}
	run.checkStrongOrderPreserving(t)
	for _, link := range run.correct {
		node := run.honest[link]
		if !node.Elected() {
			continue
		}
		if got := node.list.Count(); got > n {
			t.Fatalf("member %d list has %d ones > n=%d", link, got, n)
		}
		for _, other := range run.correct {
			id := cfg.IDs[other]
			if node.inDirty(id) {
				continue
			}
			if !node.list.Get(id) {
				t.Fatalf("member %d lost correct identity %d outside dirty segments", link, id)
			}
		}
	}
}

// TestByzDirtyMembersAbstain: a member whose segment was replaced must
// not distribute identities within it; with split-world attackers there
// must exist at least one dirty segment somewhere (the attack works) and
// still a clean majority per segment (the algorithm works).
func TestByzDirtyMembersAbstain(t *testing.T) {
	n := 24
	cfg := byzConfig(n, 8*n, 33, 0)
	byz := map[int]ByzBehavior{1: BehaviorSplitWorld, 7: BehaviorSplitWorld}
	run := buildByzRun(t, cfg, byz)
	run.execute(t)
	if !run.assumptionHolds() {
		t.Skip("committee composition outside guarantee envelope")
	}
	run.checkStrongOrderPreserving(t)

	dirtyCounts := make(map[string]int)
	members := 0
	for _, link := range run.correct {
		node := run.honest[link]
		if !node.Elected() {
			continue
		}
		members++
		for _, seg := range node.DirtySegments() {
			dirtyCounts[seg.String()]++
		}
	}
	for seg, count := range dirtyCounts {
		if 2*count >= members {
			t.Fatalf("segment %s dirty at %d/%d members — clean majority lost", seg, count, members)
		}
	}
}

// TestByzDeterminism: two runs with identical specs are bit-identical.
func TestByzDeterminism(t *testing.T) {
	run := func() (int64, int64, []int) {
		cfg := byzConfig(20, 160, 77, 0)
		byz := map[int]ByzBehavior{3: BehaviorEquivocate, 11: BehaviorSplitWorld}
		r := buildByzRun(t, cfg, byz)
		r.execute(t)
		m := r.nw.Metrics()
		ids := make([]int, 0, len(r.correct))
		for _, link := range r.correct {
			id, _ := r.honest[link].Output()
			ids = append(ids, id)
		}
		return m.Messages, m.Bits, ids
	}
	m1, b1, ids1 := run()
	m2, b2, ids2 := run()
	if m1 != m2 || b1 != b2 {
		t.Fatalf("metrics differ: (%d,%d) vs (%d,%d)", m1, b1, m2, b2)
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
}

// TestByzSplitAlwaysAblation: the A2 ablation still renames correctly but
// pays ~2N iterations.
func TestByzSplitAlwaysAblation(t *testing.T) {
	n := 16
	cfg := byzConfig(n, 64, 5, 0)
	cfg.SplitAlways = true
	run := buildByzRun(t, cfg, nil)
	run.execute(t)
	run.checkStrongOrderPreserving(t)
	iters := 0
	for _, link := range run.correct {
		if it := run.honest[link].Iterations(); it > iters {
			iters = it
		}
	}
	if iters != 2*cfg.N-1 {
		t.Fatalf("split-always iterations = %d, want 2N−1 = %d", iters, 2*cfg.N-1)
	}
}

// TestByzPoolMembershipEnforced: a node outside the candidate pool cannot
// join the committee even if it claims to (the ELECT is rejected).
func TestByzPoolMembershipEnforced(t *testing.T) {
	n := 20
	cfg := byzConfig(n, 4*n, 3, 0.3) // sparse pool: most nodes excluded
	run := buildByzRun(t, cfg, nil)
	run.execute(t)
	pool := cfg.Pool()
	inPool := make(map[int]bool, len(pool))
	for _, id := range pool {
		inPool[id] = true
	}
	for _, link := range run.correct {
		node := run.honest[link]
		for _, m := range node.committee {
			if !inPool[m.id] {
				t.Fatalf("non-pool identity %d in committee view", m.id)
			}
		}
		if node.Elected() != inPool[cfg.IDs[link]] {
			t.Fatalf("node %d elected=%v but pool=%v", link, node.Elected(), inPool[cfg.IDs[link]])
		}
	}
}

// TestByzMinoritySplitDrivesDirtyPath: when a Byzantine node withholds
// its announcement from only a sub-third minority, the segment consensus
// succeeds and the deprived members must mark segments dirty, rewrite
// them to the agreed popcount, and abstain — while renaming stays unique
// and order-preserving.
func TestByzMinoritySplitDrivesDirtyPath(t *testing.T) {
	sawDirty := false
	for seed := int64(0); seed < 8 && !sawDirty; seed++ {
		cfg := byzConfig(24, 192, seed, 0)
		byz := map[int]ByzBehavior{1: BehaviorMinoritySplit, 13: BehaviorMinoritySplit}
		run := buildByzRun(t, cfg, byz)
		run.execute(t)
		if !run.assumptionHolds() {
			continue
		}
		run.checkStrongOrderPreserving(t)
		run.checkPartitions(t)
		for _, link := range run.correct {
			node := run.honest[link]
			if len(node.DirtySegments()) == 0 {
				continue
			}
			sawDirty = true
			// A dirty member's rewritten segment must hold the agreed
			// popcount — total ones still ≤ n.
			if node.list.Count() > len(cfg.IDs) {
				t.Fatalf("dirty member %d list count %d > n", link, node.list.Count())
			}
		}
	}
	if !sawDirty {
		t.Fatal("minority split never produced a dirty segment — the dirty path is untested")
	}
}

// TestByzSortitionElection: the sortition mode elects a committee without
// consuming shared randomness — the pool is seed-independent — and the
// algorithm still renames correctly.
func TestByzSortitionElection(t *testing.T) {
	n := 24
	base := byzConfig(n, 8*n, 3, 0.25)
	base.Election = ElectionSortition
	other := base
	other.Seed = 999 // pool must not depend on the seed
	poolA, poolB := base.Pool(), other.Pool()
	if len(poolA) != len(poolB) {
		t.Fatalf("sortition pool depends on the seed: %d vs %d", len(poolA), len(poolB))
	}
	for i := range poolA {
		if poolA[i] != poolB[i] {
			t.Fatal("sortition pool depends on the seed")
		}
	}
	shared := byzConfig(n, 8*n, 3, 0.25)
	sharedPool := shared.Pool()
	if len(sharedPool) == len(poolA) {
		same := true
		for i := range poolA {
			if sharedPool[i] != poolA[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("sortition pool identical to the beacon pool — mode not applied")
		}
	}

	found := false
	for seed := int64(0); seed < 8 && !found; seed++ {
		cfg := byzConfig(n, 8*n, seed, 0.25)
		cfg.Election = ElectionSortition
		byz := map[int]ByzBehavior{2: BehaviorSplitWorld}
		run := buildByzRun(t, cfg, byz)
		run.execute(t)
		if !run.assumptionHolds() {
			continue
		}
		found = true
		run.checkStrongOrderPreserving(t)
	}
	if !found {
		t.Fatal("no sortition run satisfied the committee assumption")
	}
}

// TestByzTinyNetworks exercises the degenerate sizes (single node, pairs)
// where committee machinery must still terminate.
func TestByzTinyNetworks(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		cfg := byzConfig(n, 4*n+2, int64(n), 0)
		run := buildByzRun(t, cfg, nil)
		run.execute(t)
		run.checkStrongOrderPreserving(t)
	}
}
