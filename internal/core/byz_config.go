package core

import (
	"fmt"
	"math"

	"renaming/internal/sharedrand"
	"renaming/internal/sim"
)

// ElectionMode selects how the committee candidate pool over [N] is
// drawn.
type ElectionMode int

const (
	// ElectionSharedPool draws the pool from the shared-randomness
	// beacon — the paper's assumption: the static adversary corrupts
	// nodes before the shared bits are revealed, so it cannot target the
	// committee.
	ElectionSharedPool ElectionMode = iota
	// ElectionSortition implements the Section 3.2 discussion of
	// dropping the shared-randomness assumption: an identity is a
	// candidate iff its public hash falls below the pool probability
	// cutoff (cryptographic sortition). No shared bits are needed — the
	// pool is a deterministic public function of [N] — but the guarantee
	// weakens: the adversary must be oblivious to the identity
	// assignment, because a corruptor who chooses identities after
	// seeing the hash function could pack the pool.
	ElectionSortition
)

// sortitionSalt is the public constant of the sortition hash. Being
// public is the point: no shared randomness is consumed.
const sortitionSalt = 0x736f7274697469 // "sortiti"

// ByzConfig parameterizes the Byzantine-resilient renaming algorithm.
type ByzConfig struct {
	// N is the size of the original namespace [N].
	N int
	// IDs maps link index → original identity, unique values in [1, N].
	IDs []int
	// Seed drives both the private randomness and (via a derived label)
	// the shared-randomness beacon; Byzantine nodes see the beacon too,
	// exactly as in the paper (shared random bits are public).
	Seed int64
	// Epsilon is the paper's ε₀ (resilience margin); the Byzantine bound
	// is f < (1/3 − ε₀)·n. Defaults to 0.1 when zero.
	Epsilon float64
	// PoolProb overrides the paper's p₀ = 8·log n/((1−3ε₀)·ε₀²·n) for
	// the candidate-pool sampling over [N]. The paper's constant exceeds
	// 1 at laptop scale, making everybody a committee member; scaling it
	// down lets experiments exercise small committees. 0 keeps the
	// paper's formula (clamped to 1).
	PoolProb float64
	// Election selects the committee-election mechanism (shared-
	// randomness pool by default, public-hash sortition as the
	// Section 3.2 alternative).
	Election ElectionMode
	// SplitAlways is the A2 ablation: skip the fingerprint consensus
	// entirely and recurse straight down to single-bit segments, running
	// binary consensus on each of the N bits — the naive alternative the
	// divide-and-conquer replaces. Expect Θ(N) iterations instead of
	// O(f·log N).
	SplitAlways bool

	// pre carries state derived once per config (see Precompute). The
	// zero value is valid: constructors compute it on demand.
	pre *byzPrecomputed
}

// byzPrecomputed is derived state shared by every node built from one
// config, so an n-node network pays the O(N) pool derivation once
// instead of n times.
type byzPrecomputed struct {
	pool    []int
	poolSet []bool // poolSet[id] reports id ∈ pool, sized N+1
}

// Precompute returns a copy of cfg carrying the shared candidate pool
// and its membership bitset. Calling it is optional — constructors fall
// back to deriving the state per node — but harnesses building many
// nodes from one config should call it once up front.
func (cfg ByzConfig) Precompute() ByzConfig {
	if cfg.pre != nil {
		return cfg
	}
	pool := cfg.Pool()
	poolSet := make([]bool, cfg.N+1)
	for _, id := range pool {
		if id >= 1 && id <= cfg.N {
			poolSet[id] = true
		}
	}
	cfg.pre = &byzPrecomputed{pool: pool, poolSet: poolSet}
	return cfg
}

func (cfg ByzConfig) eps() float64 {
	if cfg.Epsilon <= 0 || cfg.Epsilon >= 1.0/3 {
		return 0.1
	}
	return cfg.Epsilon
}

// poolProb returns the probability with which each identity of [N] joins
// the shared candidate pool.
func (cfg ByzConfig) poolProb() float64 {
	if cfg.PoolProb > 0 {
		return math.Min(1, cfg.PoolProb)
	}
	n := float64(len(cfg.IDs))
	eps := cfg.eps()
	p := 8 * math.Log2(math.Max(2, n)) / ((1 - 3*eps) * eps * eps * n)
	return math.Min(1, p)
}

// MaxByzantine returns the largest Byzantine count the configuration
// tolerates: the largest f with f < (1/3 − ε₀)·n.
func (cfg ByzConfig) MaxByzantine() int {
	n := float64(len(cfg.IDs))
	bound := (1.0/3 - cfg.eps()) * n
	f := int(math.Ceil(bound)) - 1
	if f < 0 {
		f = 0
	}
	return f
}

// Validate checks the configuration.
func (cfg ByzConfig) Validate() error {
	n := len(cfg.IDs)
	if n == 0 {
		return fmt.Errorf("core: no nodes configured")
	}
	if cfg.N < n {
		return fmt.Errorf("core: namespace N=%d smaller than n=%d", cfg.N, n)
	}
	seen := make(map[int]bool, n)
	for i, id := range cfg.IDs {
		if id < 1 || id > cfg.N {
			return fmt.Errorf("core: node %d has identity %d outside [1,%d]", i, id, cfg.N)
		}
		if seen[id] {
			return fmt.Errorf("core: duplicate identity %d", id)
		}
		seen[id] = true
	}
	return nil
}

// Beacon returns the execution's shared-randomness beacon.
func (cfg ByzConfig) Beacon() *sharedrand.Beacon {
	return sharedrand.NewBeacon(sim.DeriveSeed(cfg.Seed, 0x626561636f6e)) // "beacon"
}

// Pool returns the candidate pool over [N]: shared-randomness sampling
// by default, public-hash sortition when Election selects it. Either way
// every correct node computes the identical pool.
func (cfg ByzConfig) Pool() []int {
	p := cfg.poolProb()
	if cfg.Election != ElectionSortition {
		return cfg.Beacon().CandidatePool(cfg.N, p)
	}
	cutoff := uint64(p * float64(math.MaxUint64))
	if p >= 1 {
		cutoff = math.MaxUint64
	}
	var pool []int
	for id := 1; id <= cfg.N; id++ {
		if sim.SplitMix64(sortitionSalt^uint64(id)) < cutoff {
			pool = append(pool, id)
		}
	}
	return pool
}

// VerifyIdentity models message authentication: it reports whether the
// node on the given link really owns the claimed identity (in a deployed
// system this is a signature check against a certificate chain). Honest
// logic must use it only for verification, never for discovery.
func (cfg ByzConfig) VerifyIdentity(link, claimedID int) bool {
	return link >= 0 && link < len(cfg.IDs) && cfg.IDs[link] == claimedID
}
