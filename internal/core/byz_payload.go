package core

import (
	"renaming/internal/consensus"
	"renaming/internal/sim"
)

// Payload kinds of the Byzantine-resilient algorithm.
const (
	KindElect    = "elect"    // committee-membership announcement
	KindAnnounce = "announce" // original-identity announcement to the committee
	KindSub      = "sub"      // Validator/Consensus/diff subprotocol traffic
	KindNew      = "new"      // new-identity distribution
)

// ElectPayload announces that the (authenticated) sender's identity is in
// the shared candidate pool. It carries the identity so receivers can
// check pool membership and verify the authentication binding.
type ElectPayload struct {
	ID    int
	SizeN int
}

var _ sim.Payload = ElectPayload{}

// Kind implements sim.Payload.
func (ElectPayload) Kind() string { return KindElect }

// Bits implements sim.Payload.
func (p ElectPayload) Bits() int { return bitsFor(p.SizeN) }

// AnnouncePayload carries a node's original identity to a committee
// member during aggregation.
type AnnouncePayload struct {
	ID    int
	SizeN int
}

var _ sim.Payload = AnnouncePayload{}

// Kind implements sim.Payload.
func (AnnouncePayload) Kind() string { return KindAnnounce }

// Bits implements sim.Payload.
func (p AnnouncePayload) Bits() int { return bitsFor(p.SizeN) }

// SubPayload wraps one committee subprotocol message (Validator vote or
// echo, phase-king vote or tiebreak, diff report). PC is the sender's
// subprotocol round counter; correct members advance in lockstep, so
// receivers accept exactly the messages tagged with the expected counter
// and discard stale or replayed Byzantine traffic.
type SubPayload struct {
	PC  int
	Val consensus.Value

	// ValueBits is the semantic width of Val for bit accounting: a
	// fingerprint–counter pair costs 61 + ceil(log2 n) bits, a binary
	// vote costs 1 bit.
	ValueBits int
	// PCBits is the width of the round counter.
	PCBits int
}

var _ sim.Payload = SubPayload{}

// Kind implements sim.Payload.
func (SubPayload) Kind() string { return KindSub }

// Bits implements sim.Payload.
func (p SubPayload) Bits() int { return p.ValueBits + p.PCBits }

// NewPayload distributes a node's new identity. Null marks that the
// sender's copy of the recipient's segment was dirty, so it abstains.
type NewPayload struct {
	NewID      int
	Null       bool
	SizeSmallN int
}

var _ sim.Payload = NewPayload{}

// Kind implements sim.Payload.
func (NewPayload) Kind() string { return KindNew }

// Bits implements sim.Payload.
func (p NewPayload) Bits() int { return bitsFor(p.SizeSmallN) + 1 }
