package core

import (
	"math/rand"
	"sort"

	"renaming/internal/consensus"
	"renaming/internal/sim"
)

// ByzBehavior selects how a Byzantine node misbehaves. The adversary
// "Carlo" is static: the corrupted set and each node's behaviour are
// fixed before activation (Section 1).
type ByzBehavior int

const (
	// BehaviorSilent never sends anything — the Byzantine simulation of
	// a crash failure.
	BehaviorSilent ByzBehavior = iota + 1
	// BehaviorSplitWorld announces its identity to only half of the
	// committee, the paper's central attack: correct committee members
	// end up with diverging identity lists, forcing the fingerprint
	// divide-and-conquer to isolate the difference.
	BehaviorSplitWorld
	// BehaviorEquivocate is BehaviorSplitWorld plus active subprotocol
	// interference: it joins the committee when sampled, sends
	// conflicting random values to different members in every
	// subprotocol round, reports random diffs, and fabricates early NEW
	// messages to lure nodes into deciding on fake identities.
	BehaviorEquivocate
	// BehaviorSpam floods every node with correctly-tagged garbage
	// subprotocol messages and fake NEW messages every round.
	BehaviorSpam
	// BehaviorMinoritySplit withholds its identity announcement from a
	// sub-third minority of the committee. Unlike the half/half split,
	// the majority still reaches validator agreement, so the segment
	// consensus *succeeds* and the deprived minority must take the dirty
	// path: rewrite the segment to the agreed popcount and abstain from
	// distributing identities inside it.
	BehaviorMinoritySplit
	// BehaviorRushingEquivocate exploits the rushing power of the
	// synchronous model (run it under sim.WithRushing): each round it
	// inspects the honest subprotocol messages of the *current* round
	// before speaking and sends the least common value to one half of
	// the committee and the most common to the other — the strongest
	// vote-splitting pressure a single Byzantine member can apply to the
	// phase-king and validator thresholds.
	BehaviorRushingEquivocate
)

// ByzAttacker is a Byzantine node driven by a fixed behaviour. It knows
// everything a node may know: the shared randomness (public), its own
// identity, and the committee membership it observes.
type ByzAttacker struct {
	idx      int
	id       int
	n        int
	cfg      ByzConfig
	behavior ByzBehavior
	rng      *rand.Rand

	poolSet     []bool // shared pool-membership bitset, indexed by identity
	memberLinks []int
	inPool      bool
	spamTargets []int      // all links, precomputed for BehaviorSpam
	outBuf      sim.Outbox // attack-round scratch, valid until next Step
}

var _ sim.Node = (*ByzAttacker)(nil)

// NewByzAttacker constructs a Byzantine node at link idx with the given
// behaviour. Like NewByzNode, a Precomputed cfg shares the candidate-
// pool bitset across nodes.
func NewByzAttacker(cfg ByzConfig, idx int, behavior ByzBehavior) *ByzAttacker {
	cfg = cfg.Precompute()
	a := &ByzAttacker{
		idx:      idx,
		id:       cfg.IDs[idx],
		n:        len(cfg.IDs),
		cfg:      cfg,
		behavior: behavior,
		rng:      sim.NewRand(cfg.Seed, 0x62797a<<20|uint64(idx)), // "byz" stream
		poolSet:  cfg.pre.poolSet,
		inPool:   false,
	}
	if behavior == BehaviorSpam {
		a.spamTargets = make([]int, a.n)
		for i := range a.spamTargets {
			a.spamTargets[i] = i
		}
	}
	return a
}

// pooled reports whether the identity is in the candidate pool, bounds-
// checked because ELECT payloads from the wire carry arbitrary values.
func (a *ByzAttacker) pooled(id int) bool {
	return id >= 1 && id < len(a.poolSet) && a.poolSet[id]
}

// Output implements sim.Node; an attacker never decides.
func (a *ByzAttacker) Output() (int, bool) { return 0, false }

// Halted implements sim.Node. Attackers report halted so the network can
// stop as soon as every correct node finished; they still get stepped (and
// can keep attacking) until then.
func (a *ByzAttacker) Halted() bool { return true }

// Quiescent implements sim.Quiescent for the silent behaviour only: a
// silent attacker returns nil at every round without touching state or
// randomness. Every other behaviour acts (or consumes randomness) even
// on an empty inbox, so it must be stepped.
func (a *ByzAttacker) Quiescent() bool { return a.behavior == BehaviorSilent }

// Step implements sim.Node.
func (a *ByzAttacker) Step(round int, inbox []sim.Message) sim.Outbox {
	if a.behavior == BehaviorSilent {
		return nil
	}
	switch round {
	case 0:
		// Announce committee candidacy like an honest node would: the
		// attacker wants to be inside the committee.
		if a.pooled(a.id) {
			a.inPool = true
			return sim.Broadcast(a.idx, a.n, ElectPayload{ID: a.id, SizeN: a.cfg.N})
		}
		return nil
	case 1:
		a.learnCommittee(inbox)
		return a.splitAnnounce()
	default:
		return a.attackRound(round, inbox)
	}
}

func (a *ByzAttacker) learnCommittee(inbox []sim.Message) {
	for _, msg := range inbox {
		e, ok := msg.Payload.(ElectPayload)
		if !ok || !a.pooled(e.ID) || !a.cfg.VerifyIdentity(msg.From, e.ID) {
			continue
		}
		a.memberLinks = append(a.memberLinks, msg.From)
	}
	sort.Ints(a.memberLinks)
}

// splitAnnounce sends the identity announcement to a behaviour-dependent
// subset of the committee (sorted by link): the first half for the
// half/half split (maximizing identity-list divergence and forcing
// recursion), or all but a sub-third minority for the minority split
// (forcing the dirty path).
func (a *ByzAttacker) splitAnnounce() sim.Outbox {
	targets := a.memberLinks
	switch {
	case len(a.memberLinks) <= 1:
	case a.behavior == BehaviorMinoritySplit:
		skip := (len(a.memberLinks) + 3) / 4 // < 1/3: agreement still reached
		targets = a.memberLinks[skip:]
	default:
		targets = a.memberLinks[:len(a.memberLinks)/2]
	}
	return sim.Multicast(a.idx, targets, AnnouncePayload{ID: a.id, SizeN: a.cfg.N})
}

// attackRound emits the behaviour's per-round interference. Subprotocol
// messages are tagged with the counter value honest members use in this
// round (pc = round − 2), so they pass the receivers' freshness filter.
// The helpers append into a.outBuf, reset here and valid until the next
// Step call.
func (a *ByzAttacker) attackRound(round int, inbox []sim.Message) sim.Outbox {
	a.outBuf = a.outBuf[:0]
	switch a.behavior {
	case BehaviorRushingEquivocate:
		if !a.inPool {
			return nil
		}
		a.rushSplit(round, inbox)
	case BehaviorEquivocate:
		if a.inPool {
			a.equivocateSub(round, a.memberLinks)
		}
		a.fakeNew(round)
	case BehaviorSpam:
		a.equivocateSub(round, a.spamTargets)
		for _, to := range a.spamTargets {
			a.outBuf = append(a.outBuf, sim.Message{From: a.idx, To: to, Payload: NewPayload{
				NewID: a.rng.Intn(a.n) + 1, SizeSmallN: a.n,
			}})
		}
	default:
		return nil
	}
	return a.outBuf
}

// rushSplit reads the previewed current-round honest votes (tagged with
// this round's counter) and sends the least common value to the first
// half of the committee and the most common to the rest.
func (a *ByzAttacker) rushSplit(round int, inbox []sim.Message) {
	pc := round - 2
	counts := make(map[consensus.Value]int)
	for _, msg := range inbox {
		s, ok := msg.Payload.(SubPayload)
		if !ok || s.PC != pc {
			continue
		}
		counts[s.Val]++
	}
	if len(counts) == 0 {
		return
	}
	var most, least consensus.Value
	mostC, leastC := -1, 1<<30
	for v, c := range counts {
		if c > mostC || (c == mostC && consensus.Less(v, most)) {
			most, mostC = v, c
		}
		if c < leastC || (c == leastC && consensus.Less(v, least)) {
			least, leastC = v, c
		}
	}
	valueBits := 61 + bitsFor(a.n)
	for idx, to := range a.memberLinks {
		val := most
		if idx < len(a.memberLinks)/2 {
			val = least
		}
		a.outBuf = append(a.outBuf, sim.Message{From: a.idx, To: to, Payload: SubPayload{
			PC: pc, Val: val, ValueBits: valueBits, PCBits: bitsFor(pc + 1),
		}})
	}
}

// equivocateSub sends a different random subprotocol value to each target
// (payloads genuinely differ per recipient, so there is nothing to share;
// only the outbox slice is pooled).
func (a *ByzAttacker) equivocateSub(round int, targets []int) {
	pc := round - 2
	valueBits := 61 + bitsFor(a.n)
	for _, to := range targets {
		val := consensus.Value{Hi: a.rng.Uint64() >> 3, Lo: uint64(a.rng.Intn(a.n + 1))}
		if a.rng.Intn(2) == 0 {
			val = consensus.Bit(a.rng.Intn(2) == 0) // plausible binary vote
		}
		a.outBuf = append(a.outBuf, sim.Message{From: a.idx, To: to, Payload: SubPayload{
			PC: pc, Val: val, ValueBits: valueBits, PCBits: bitsFor(pc + 1),
		}})
	}
}

// fakeNew occasionally sends fabricated NEW messages to random nodes,
// probing the decision threshold.
func (a *ByzAttacker) fakeNew(round int) {
	if round%3 != 0 {
		return
	}
	for k := 0; k < 4; k++ {
		to := a.rng.Intn(a.n)
		a.outBuf = append(a.outBuf, sim.Message{From: a.idx, To: to, Payload: NewPayload{
			NewID: a.rng.Intn(a.n) + 1, SizeSmallN: a.n,
		}})
	}
}
