package core

import (
	"math/rand"
	"sort"

	"renaming/internal/consensus"
	"renaming/internal/sim"
)

// ByzBehavior selects how a Byzantine node misbehaves. The adversary
// "Carlo" is static: the corrupted set and each node's behaviour are
// fixed before activation (Section 1).
type ByzBehavior int

const (
	// BehaviorSilent never sends anything — the Byzantine simulation of
	// a crash failure.
	BehaviorSilent ByzBehavior = iota + 1
	// BehaviorSplitWorld announces its identity to only half of the
	// committee, the paper's central attack: correct committee members
	// end up with diverging identity lists, forcing the fingerprint
	// divide-and-conquer to isolate the difference.
	BehaviorSplitWorld
	// BehaviorEquivocate is BehaviorSplitWorld plus active subprotocol
	// interference: it joins the committee when sampled, sends
	// conflicting random values to different members in every
	// subprotocol round, reports random diffs, and fabricates early NEW
	// messages to lure nodes into deciding on fake identities.
	BehaviorEquivocate
	// BehaviorSpam floods every node with correctly-tagged garbage
	// subprotocol messages and fake NEW messages every round.
	BehaviorSpam
	// BehaviorMinoritySplit withholds its identity announcement from a
	// sub-third minority of the committee. Unlike the half/half split,
	// the majority still reaches validator agreement, so the segment
	// consensus *succeeds* and the deprived minority must take the dirty
	// path: rewrite the segment to the agreed popcount and abstain from
	// distributing identities inside it.
	BehaviorMinoritySplit
	// BehaviorRushingEquivocate exploits the rushing power of the
	// synchronous model (run it under sim.WithRushing): each round it
	// inspects the honest subprotocol messages of the *current* round
	// before speaking and sends the least common value to one half of
	// the committee and the most common to the other — the strongest
	// vote-splitting pressure a single Byzantine member can apply to the
	// phase-king and validator thresholds.
	BehaviorRushingEquivocate
)

// ByzAttacker is a Byzantine node driven by a fixed behaviour. It knows
// everything a node may know: the shared randomness (public), its own
// identity, and the committee membership it observes.
type ByzAttacker struct {
	idx      int
	id       int
	n        int
	cfg      ByzConfig
	behavior ByzBehavior
	rng      *rand.Rand

	poolSet     map[int]bool
	memberLinks []int
	inPool      bool
}

var _ sim.Node = (*ByzAttacker)(nil)

// NewByzAttacker constructs a Byzantine node at link idx with the given
// behaviour.
func NewByzAttacker(cfg ByzConfig, idx int, behavior ByzBehavior) *ByzAttacker {
	pool := cfg.Pool()
	poolSet := make(map[int]bool, len(pool))
	for _, id := range pool {
		poolSet[id] = true
	}
	return &ByzAttacker{
		idx:      idx,
		id:       cfg.IDs[idx],
		n:        len(cfg.IDs),
		cfg:      cfg,
		behavior: behavior,
		rng:      sim.NewRand(cfg.Seed, 0x62797a<<20|uint64(idx)), // "byz" stream
		poolSet:  poolSet,
		inPool:   false,
	}
}

// Output implements sim.Node; an attacker never decides.
func (a *ByzAttacker) Output() (int, bool) { return 0, false }

// Halted implements sim.Node. Attackers report halted so the network can
// stop as soon as every correct node finished; they still get stepped (and
// can keep attacking) until then.
func (a *ByzAttacker) Halted() bool { return true }

// Step implements sim.Node.
func (a *ByzAttacker) Step(round int, inbox []sim.Message) sim.Outbox {
	if a.behavior == BehaviorSilent {
		return nil
	}
	switch round {
	case 0:
		// Announce committee candidacy like an honest node would: the
		// attacker wants to be inside the committee.
		if a.poolSet[a.id] {
			a.inPool = true
			return sim.Broadcast(a.idx, a.n, ElectPayload{ID: a.id, SizeN: a.cfg.N})
		}
		return nil
	case 1:
		a.learnCommittee(inbox)
		return a.splitAnnounce()
	default:
		return a.attackRound(round, inbox)
	}
}

func (a *ByzAttacker) learnCommittee(inbox []sim.Message) {
	for _, msg := range inbox {
		e, ok := msg.Payload.(ElectPayload)
		if !ok || !a.poolSet[e.ID] || !a.cfg.VerifyIdentity(msg.From, e.ID) {
			continue
		}
		a.memberLinks = append(a.memberLinks, msg.From)
	}
	sort.Ints(a.memberLinks)
}

// splitAnnounce sends the identity announcement to a behaviour-dependent
// subset of the committee (sorted by link): the first half for the
// half/half split (maximizing identity-list divergence and forcing
// recursion), or all but a sub-third minority for the minority split
// (forcing the dirty path).
func (a *ByzAttacker) splitAnnounce() sim.Outbox {
	targets := a.memberLinks
	switch {
	case len(a.memberLinks) <= 1:
	case a.behavior == BehaviorMinoritySplit:
		skip := (len(a.memberLinks) + 3) / 4 // < 1/3: agreement still reached
		targets = a.memberLinks[skip:]
	default:
		targets = a.memberLinks[:len(a.memberLinks)/2]
	}
	return sim.Multicast(a.idx, targets, AnnouncePayload{ID: a.id, SizeN: a.cfg.N})
}

// attackRound emits the behaviour's per-round interference. Subprotocol
// messages are tagged with the counter value honest members use in this
// round (pc = round − 2), so they pass the receivers' freshness filter.
func (a *ByzAttacker) attackRound(round int, inbox []sim.Message) sim.Outbox {
	switch a.behavior {
	case BehaviorRushingEquivocate:
		if !a.inPool {
			return nil
		}
		return a.rushSplit(round, inbox)
	case BehaviorEquivocate:
		if !a.inPool {
			return a.fakeNew(round)
		}
		out := a.equivocateSub(round, a.memberLinks)
		out = append(out, a.fakeNew(round)...)
		return out
	case BehaviorSpam:
		targets := make([]int, a.n)
		for i := range targets {
			targets[i] = i
		}
		out := a.equivocateSub(round, targets)
		for _, to := range targets {
			out = append(out, sim.Message{From: a.idx, To: to, Payload: NewPayload{
				NewID: a.rng.Intn(a.n) + 1, SizeSmallN: a.n,
			}})
		}
		return out
	default:
		return nil
	}
}

// rushSplit reads the previewed current-round honest votes (tagged with
// this round's counter) and sends the least common value to the first
// half of the committee and the most common to the rest.
func (a *ByzAttacker) rushSplit(round int, inbox []sim.Message) sim.Outbox {
	pc := round - 2
	counts := make(map[consensus.Value]int)
	for _, msg := range inbox {
		s, ok := msg.Payload.(SubPayload)
		if !ok || s.PC != pc {
			continue
		}
		counts[s.Val]++
	}
	if len(counts) == 0 {
		return nil
	}
	var most, least consensus.Value
	mostC, leastC := -1, 1<<30
	for v, c := range counts {
		if c > mostC || (c == mostC && consensus.Less(v, most)) {
			most, mostC = v, c
		}
		if c < leastC || (c == leastC && consensus.Less(v, least)) {
			least, leastC = v, c
		}
	}
	valueBits := 61 + bitsFor(a.n)
	out := make(sim.Outbox, 0, len(a.memberLinks))
	for idx, to := range a.memberLinks {
		val := most
		if idx < len(a.memberLinks)/2 {
			val = least
		}
		out = append(out, sim.Message{From: a.idx, To: to, Payload: SubPayload{
			PC: pc, Val: val, ValueBits: valueBits, PCBits: bitsFor(pc + 1),
		}})
	}
	return out
}

// equivocateSub sends a different random subprotocol value to each target.
func (a *ByzAttacker) equivocateSub(round int, targets []int) sim.Outbox {
	pc := round - 2
	valueBits := 61 + bitsFor(a.n)
	out := make(sim.Outbox, 0, len(targets))
	for _, to := range targets {
		val := consensus.Value{Hi: a.rng.Uint64() >> 3, Lo: uint64(a.rng.Intn(a.n + 1))}
		if a.rng.Intn(2) == 0 {
			val = consensus.Bit(a.rng.Intn(2) == 0) // plausible binary vote
		}
		out = append(out, sim.Message{From: a.idx, To: to, Payload: SubPayload{
			PC: pc, Val: val, ValueBits: valueBits, PCBits: bitsFor(pc + 1),
		}})
	}
	return out
}

// fakeNew occasionally sends fabricated NEW messages to random nodes,
// probing the decision threshold.
func (a *ByzAttacker) fakeNew(round int) sim.Outbox {
	if round%3 != 0 {
		return nil
	}
	out := make(sim.Outbox, 0, 4)
	for k := 0; k < 4; k++ {
		to := a.rng.Intn(a.n)
		out = append(out, sim.Message{From: a.idx, To: to, Payload: NewPayload{
			NewID: a.rng.Intn(a.n) + 1, SizeSmallN: a.n,
		}})
	}
	return out
}
