package core

import (
	"sort"

	"renaming/internal/bitvec"
	"renaming/internal/consensus"
	"renaming/internal/hashing"
	"renaming/internal/interval"
	"renaming/internal/sharedrand"
	"renaming/internal/sim"
)

// byzPhase tracks a correct node's position in the protocol schedule.
type byzPhase int

const (
	phElect     byzPhase = iota + 1 // round 0: candidates announce
	phAggregate                     // round 1: everyone announces its identity
	phLoop                          // round 2+: committee divide-and-conquer
	phWait                          // non-members / post-distribution: wait for NEW
)

// loopStage tracks which subprotocol the committee is currently running
// for the segment on top of the stack.
type loopStage int

const (
	stageUnitConsensus loopStage = iota + 1 // single-bit segment: Consensus on the bit
	stageValidator                          // Validator on ⟨fingerprint, count⟩
	stageSameConsensus                      // Consensus on the validator's same flag
	stageDiffExchange                       // one-round diff report
	stageDiffConsensus                      // Consensus on the amplified diff flag
)

// member is one committee member in a node's view.
type member struct {
	id   int
	link int
}

// ByzNode is a correct participant of the Byzantine-resilient renaming
// algorithm (Section 3.1): committee election via the shared candidate
// pool, identity aggregation into an N-bit list, fingerprint-based
// divide-and-conquer consensus on the list, and majority-voted new
// identity distribution.
type ByzNode struct {
	idx int
	id  int
	n   int
	cfg ByzConfig

	poolSet []bool // shared pool-membership bitset, indexed by identity
	elected bool

	// Committee view, identical across correct nodes (G ⊆ ∩Cv with the
	// all-or-nothing announcement simplification documented in DESIGN.md).
	// Membership tests binary-search memberLinks (sorted ascending): a
	// per-node Θ(n) bool set would make the whole run Θ(n²) memory —
	// ~4 GiB at n = 65536 — for a set that holds O(polylog n) links.
	committee   []member
	memberLinks []int

	// Committee-member state.
	list      *bitvec.Vector
	knownLink map[int]int // id → link for identities heard directly
	stack     []interval.Interval
	processed []interval.Interval
	dirty     []interval.Interval
	stage     loopStage
	machine   consensus.Machine
	pc        int
	cur       interval.Interval
	curVal    consensus.Value // my ⟨fingerprint, count⟩ for cur
	agreedVal consensus.Value // validator output ⟨s', cnt'⟩
	diffBit   bool
	loopDone  bool
	// iterations counts divide-and-conquer iterations (segments
	// processed), the quantity Lemma 3.10 bounds by 4·f·log N.
	iterations int

	// Decision state (all correct nodes). votesDirty gates tryDecide to
	// rounds where newVotes actually changed — its verdict is a pure
	// function of newVotes, so re-evaluating an unchanged set is waste.
	phase      byzPhase
	newVotes   map[int]NewPayload
	votesDirty bool
	newID      int
	decided    bool
	halted     bool

	// Per-round scratch, reused across Step calls: the subprotocol inbox
	// and the outbox every helper appends into (valid until next Step).
	subIn  []consensus.Msg
	outBuf sim.Outbox

	// Pooled subprotocol machines: committee membership is fixed after
	// election and the loop runs its machines strictly in sequence, so
	// one PhaseKing and one Validator (reset per use) serve every
	// instance without re-allocating their member views and tallies.
	pkScratch *consensus.PhaseKing
	vaScratch *consensus.Validator
	beacon    *sharedrand.Beacon // cached: the beacon is a stateless seed

	// boxed caches the last interface-boxed subprotocol payload across
	// rounds: a member's vote usually repeats between phases, and the
	// boxed value is immutable, so re-sending the same box skips the
	// per-broadcast heap allocation.
	boxed    sim.Payload
	boxedKey SubPayload

	// newBuf is the distribution arena: one PackedNew per known identity,
	// sent by pointer so the |knownLink| NEW messages of a committee
	// member share the arena instead of boxing a struct each (see
	// byzCodec).
	newBuf []PackedNew
}

var _ sim.Node = (*ByzNode)(nil)

// NewByzNode constructs the correct node at link index idx. Passing a
// cfg that went through Precompute shares the candidate-pool bitset
// across all nodes; otherwise it is derived here.
func NewByzNode(cfg ByzConfig, idx int) *ByzNode {
	cfg = cfg.Precompute()
	return &ByzNode{
		idx:      idx,
		id:       cfg.IDs[idx],
		n:        len(cfg.IDs),
		cfg:      cfg,
		poolSet:  cfg.pre.poolSet,
		phase:    phElect,
		newVotes: make(map[int]NewPayload),
	}
}

// inPool reports whether the identity is in the candidate pool. Bounds-
// checked because Byzantine ELECT payloads carry arbitrary identities.
func (node *ByzNode) inPool(id int) bool {
	return id >= 1 && id < len(node.poolSet) && node.poolSet[id]
}

// Output returns the node's new identity once decided.
func (node *ByzNode) Output() (int, bool) {
	if !node.decided {
		return 0, false
	}
	return node.newID, true
}

// Halted implements sim.Node.
func (node *ByzNode) Halted() bool { return node.halted }

// Quiescent implements sim.Quiescent: a halted node, or a waiting node
// with no undigested NEW votes, does nothing on an empty inbox — the
// phWait branch of Step only reads the inbox and the votesDirty flag,
// never the round number or any randomness — so the engine may elide
// the call. Committee members (phLoop) drive subprotocol counters every
// round and are never quiescent.
func (node *ByzNode) Quiescent() bool {
	return node.halted || (node.phase == phWait && !node.votesDirty)
}

// Elected reports whether the node is a committee member.
func (node *ByzNode) Elected() bool { return node.elected }

// CommitteeSize returns the size of the node's committee view.
func (node *ByzNode) CommitteeSize() int { return len(node.committee) }

// Iterations returns the number of divide-and-conquer iterations the
// committee ran (0 for non-members), the quantity bounded by Lemma 3.10.
func (node *ByzNode) Iterations() int { return node.iterations }

// Partition returns the processed segments (the paper's Ĵ) for invariant
// checks: across correct members they must be identical and partition
// [1, N] (Lemma 3.8).
func (node *ByzNode) Partition() []interval.Interval {
	out := make([]interval.Interval, len(node.processed))
	copy(out, node.processed)
	return out
}

// ByzantineInCommittee counts committee-view members whose link the
// predicate classifies as Byzantine — used by harnesses to check the
// committee-composition assumption of Lemma 3.5.
func (node *ByzNode) ByzantineInCommittee(isByz func(link int) bool) int {
	count := 0
	for _, m := range node.committee {
		if isByz(m.link) {
			count++
		}
	}
	return count
}

// DirtySegments returns the segments the member marked dirty.
func (node *ByzNode) DirtySegments() []interval.Interval {
	out := make([]interval.Interval, len(node.dirty))
	copy(out, node.dirty)
	return out
}

// Step implements sim.Node.
func (node *ByzNode) Step(round int, inbox []sim.Message) sim.Outbox {
	if node.halted {
		return nil
	}
	switch node.phase {
	case phElect:
		return node.stepElect()
	case phAggregate:
		return node.stepAggregate(inbox)
	case phLoop:
		node.absorbNew(inbox)
		return node.stepLoop(inbox)
	default:
		node.absorbNew(inbox)
		if node.votesDirty {
			node.tryDecide()
		}
		return nil
	}
}

// stepElect is round 0: pool members announce ELECT to everyone.
func (node *ByzNode) stepElect() sim.Outbox {
	node.phase = phAggregate
	if !node.inPool(node.id) {
		return nil
	}
	node.elected = true
	return sim.Broadcast(node.idx, node.n, ElectPayload{ID: node.id, SizeN: node.cfg.N})
}

// stepAggregate is round 1: build the committee view from authenticated
// ELECT messages, then send the own identity to every committee member.
func (node *ByzNode) stepAggregate(inbox []sim.Message) sim.Outbox {
	for _, msg := range inbox {
		e, ok := msg.Payload.(ElectPayload)
		if !ok {
			continue
		}
		// Accept only pool members whose authentication binding checks
		// out; a Byzantine node cannot claim a foreign identity.
		if !node.inPool(e.ID) || !node.cfg.VerifyIdentity(msg.From, e.ID) {
			continue
		}
		node.committee = append(node.committee, member{id: e.ID, link: msg.From})
	}
	sort.Slice(node.committee, func(a, b int) bool { return node.committee[a].id < node.committee[b].id })
	node.committee = dedupMembers(node.committee)
	node.memberLinks = make([]int, 0, len(node.committee))
	for _, m := range node.committee {
		node.memberLinks = append(node.memberLinks, m.link)
	}
	sort.Ints(node.memberLinks)

	if node.elected {
		node.phase = phLoop
		node.list = bitvec.New(node.cfg.N)
		node.knownLink = make(map[int]int)
		node.stack = []interval.Interval{interval.Full(node.cfg.N)}
	} else {
		node.phase = phWait
	}

	announce := AnnouncePayload{ID: node.id, SizeN: node.cfg.N}
	return sim.Multicast(node.idx, node.memberLinks, announce)
}

// stepLoop drives the committee member through aggregation (its first
// loop round) and the divide-and-conquer subprotocols. All helpers below
// append into node.outBuf, which is reset here and valid until the next
// Step call.
func (node *ByzNode) stepLoop(inbox []sim.Message) sim.Outbox {
	node.outBuf = node.outBuf[:0]
	if node.machine == nil && !node.loopDone {
		// First loop round (round 2): absorb the identity announcements
		// into the list, then start on the full segment.
		for _, msg := range inbox {
			a, ok := msg.Payload.(AnnouncePayload)
			if !ok {
				continue
			}
			if !node.cfg.VerifyIdentity(msg.From, a.ID) {
				continue
			}
			node.list.Set(a.ID)
			node.knownLink[a.ID] = msg.From
		}
		node.startSegment()
		node.pc++
		return node.outBuf
	}

	// Subprotocol round: feed the machine the messages tagged with the
	// previous counter value.
	expected := node.pc - 1
	subIn := node.subIn[:0]
	for _, msg := range inbox {
		s, ok := msg.Payload.(SubPayload)
		if !ok || s.PC != expected {
			continue
		}
		subIn = append(subIn, consensus.Msg{From: msg.From, To: node.idx, Val: s.Val})
	}
	node.subIn = subIn
	if node.machine != nil {
		node.wrapSub(node.machine.Step(subIn))
		if node.machine.Done() {
			node.advance()
		}
	}
	node.pc++
	return node.outBuf
}

// startSegment pops the next pending segment and starts its first
// subprotocol, appending the wrapped first-round messages to outBuf.
// When the stack is empty the loop is over and distribution happens
// immediately.
func (node *ByzNode) startSegment() {
	if len(node.stack) == 0 {
		node.loopDone = true
		node.machine = nil
		node.distribute()
		node.phase = phWait
		return
	}
	node.iterations++
	node.cur = node.stack[len(node.stack)-1]
	node.stack = node.stack[:len(node.stack)-1]

	if node.cfg.SplitAlways && !node.cur.Unit() {
		// A2 ablation: no fingerprinting, recurse immediately.
		node.split()
		return
	}
	if node.cur.Unit() {
		bit := node.list.Get(node.cur.Lo)
		node.stage = stageUnitConsensus
		node.machine = node.phaseKing(bit)
	} else {
		if node.beacon == nil {
			node.beacon = node.cfg.Beacon()
		}
		seed := node.beacon.HashSeed(0, node.cur.Lo, node.cur.Hi)
		fp := hashing.NewHasher(seed).Sum(node.list.SegmentWords(node.cur.Lo, node.cur.Hi))
		cnt := node.list.CountRange(node.cur.Lo, node.cur.Hi)
		node.curVal = consensus.Value{Hi: uint64(fp), Lo: uint64(cnt)}
		node.stage = stageValidator
		node.machine = node.validator(node.curVal)
	}
	node.wrapSub(node.machine.Step(nil))
}

// phaseKing returns the node's pooled PhaseKing rewound to a fresh run
// with the given input; the first call constructs it over the (fixed)
// committee view.
func (node *ByzNode) phaseKing(input bool) *consensus.PhaseKing {
	if node.pkScratch == nil {
		node.pkScratch = consensus.NewPhaseKing(node.idx, node.memberLinks, input)
	} else {
		node.pkScratch.Reset(input)
	}
	return node.pkScratch
}

// validator returns the node's pooled Validator, likewise rewound.
func (node *ByzNode) validator(input consensus.Value) *consensus.Validator {
	if node.vaScratch == nil {
		node.vaScratch = consensus.NewValidator(node.idx, node.memberLinks, input)
	} else {
		node.vaScratch.Reset(input)
	}
	return node.vaScratch
}

// advance reacts to the current machine finishing: it applies the
// machine's output to the protocol state and starts the next machine (or
// segment), appending any first-round messages of the successor to
// outBuf.
func (node *ByzNode) advance() {
	switch node.stage {
	case stageUnitConsensus:
		pk := node.machine.(*consensus.PhaseKing)
		bit, _ := pk.Output()
		if bit {
			node.list.Set(node.cur.Lo)
		} else {
			node.list.Clear(node.cur.Lo)
		}
		node.processed = append(node.processed, node.cur)
		node.startSegment()

	case stageValidator:
		va := node.machine.(*consensus.Validator)
		same, out, _ := va.Output()
		node.agreedVal = out
		node.stage = stageSameConsensus
		node.machine = node.phaseKing(same)
		node.wrapSub(node.machine.Step(nil))

	case stageSameConsensus:
		pk := node.machine.(*consensus.PhaseKing)
		same, _ := pk.Output()
		if !same {
			node.split()
			return
		}
		node.diffBit = node.curVal != node.agreedVal
		node.stage = stageDiffExchange
		node.machine = consensus.NewExchange(node.idx, node.memberLinks, consensus.Bit(node.diffBit))
		node.wrapSub(node.machine.Step(nil))

	case stageDiffExchange:
		ex := node.machine.(*consensus.Exchange)
		reports := 0
		for _, v := range ex.Votes() {
			if v.AsBit() {
				reports++
			}
		}
		diffPrime := node.diffBit
		if reports >= node.diffThreshold() {
			diffPrime = true
		}
		node.stage = stageDiffConsensus
		node.machine = node.phaseKing(diffPrime)
		node.wrapSub(node.machine.Step(nil))

	default: // stageDiffConsensus
		pk := node.machine.(*consensus.PhaseKing)
		diff, _ := pk.Output()
		if diff {
			node.split()
			return
		}
		// Success: the committee agreed on ⟨s', cnt'⟩ and a majority of
		// correct members holds the matching segment.
		if node.curVal != node.agreedVal {
			node.dirty = append(node.dirty, node.cur)
			cnt := int(node.agreedVal.Lo)
			if cnt < 0 || cnt > node.cur.Size() {
				cnt = node.cur.Size()
			}
			node.list.ReplaceRange(node.cur.Lo, node.cur.Hi, cnt)
		}
		node.processed = append(node.processed, node.cur)
		node.startSegment()
	}
}

// split divides the current segment in half and recurses (bottom half
// first), the paper's divide-and-conquer step.
func (node *ByzNode) split() {
	node.stack = append(node.stack, node.cur.Top(), node.cur.Bot())
	node.startSegment()
}

// diffThreshold is the "many diff reports" cutoff: with fewer than one
// third Byzantine members per view, ⌈|C|/3⌉ reports guarantee at least
// one correct reporter, while all-correct-consistent segments can never
// reach it.
func (node *ByzNode) diffThreshold() int {
	return (len(node.memberLinks) + 2) / 3
}

// wrapSub converts consensus messages into simulator payloads tagged
// with the current subprotocol counter, appending them to outBuf (the
// consensus machine's slice is scratch, so the copy happens here).
// Messages carrying the payload last boxed — the norm, since the
// machines broadcast one value to the whole committee and votes repeat
// across phases — share that box: SubPayload is immutable once built,
// so recipients can safely alias it across recipients and rounds, and
// the per-broadcast interface allocation disappears.
func (node *ByzNode) wrapSub(msgs []consensus.Msg) {
	if len(msgs) == 0 {
		return
	}
	valueBits := 61 + bitsFor(len(node.cfg.IDs))
	pcBits := bitsFor(node.pc + 1)
	for _, m := range msgs {
		p := SubPayload{
			PC: node.pc, Val: m.Val,
			ValueBits: valueBits, PCBits: pcBits,
		}
		if node.boxed == nil || p != node.boxedKey {
			node.boxed = p
			node.boxedKey = p
		}
		node.outBuf = append(node.outBuf, sim.Message{
			From:    node.idx,
			To:      m.To,
			Payload: node.boxed,
		})
	}
}

// distribute appends the NEW messages (Section 3.1, "Distribute new
// identities") to outBuf: for every identity the member heard directly,
// the rank in the agreed list if the identity's segment is clean, an
// abstention otherwise.
func (node *ByzNode) distribute() {
	codec := newByzCodec(node.n, node.cfg.N)
	// Pre-size the arena: pointers into it must stay valid, so it cannot
	// grow while messages reference it.
	if cap(node.newBuf) < len(node.knownLink) {
		node.newBuf = make([]PackedNew, 0, len(node.knownLink))
	}
	buf := node.newBuf[:0]
	for id, link := range node.knownLink {
		payload := NewPayload{SizeSmallN: node.n}
		if node.list.Get(id) && !node.inDirty(id) {
			payload.NewID = node.list.Rank(id) + 1
		} else {
			payload.Null = true
		}
		buf = append(buf, codec.encodeNew(payload))
		node.outBuf = append(node.outBuf, sim.Message{From: node.idx, To: link, Payload: &buf[len(buf)-1]})
	}
	node.newBuf = buf
}

func (node *ByzNode) inDirty(id int) bool {
	for _, seg := range node.dirty {
		if seg.ContainsValue(id) {
			return true
		}
	}
	return false
}

// absorbNew accumulates NEW messages from committee members (one per
// sender; only committee links count). Correct members send the packed
// form; Byzantine strategies may fabricate unpacked NewPayloads, so
// both are accepted.
func (node *ByzNode) absorbNew(inbox []sim.Message) {
	for _, msg := range inbox {
		var p NewPayload
		switch v := msg.Payload.(type) {
		case *PackedNew:
			newByzCodec(node.n, node.cfg.N).decodeNew(v, &p)
		case NewPayload:
			p = v
		default:
			continue
		}
		if !node.isMemberLink(msg.From) {
			continue
		}
		if _, dup := node.newVotes[msg.From]; dup {
			continue
		}
		node.newVotes[msg.From] = p
		node.votesDirty = true
	}
}

func (node *ByzNode) isMemberLink(link int) bool {
	i := sort.SearchInts(node.memberLinks, link)
	return i < len(node.memberLinks) && node.memberLinks[i] == link
}

// tryDecide decides once a strong quorum of committee members responded:
// Byzantine members alone (< |C|/3) can never reach the threshold, and
// once the genuine distribution round arrives, the correct members
// (≥ |C| − t) push the count over it. The plurality non-null value wins;
// clean correct members (> |C|/3 of them, Lemma 3.11) outnumber any value
// Byzantine members fabricate.
func (node *ByzNode) tryDecide() {
	node.votesDirty = false
	if node.decided {
		node.halted = true
		return
	}
	m := len(node.memberLinks)
	if m == 0 {
		return
	}
	t := (m+2)/3 - 1
	if len(node.newVotes) < m-t {
		return
	}
	counts := make(map[int]int)
	for _, v := range node.newVotes {
		if !v.Null {
			counts[v.NewID]++
		}
	}
	best, bestCount := 0, 0
	for id, c := range counts {
		if c > bestCount || (c == bestCount && id < best) {
			best, bestCount = id, c
		}
	}
	if bestCount == 0 {
		return
	}
	node.newID = best
	node.decided = true
	node.halted = true
}

func dedupMembers(ms []member) []member {
	out := ms[:0]
	var last member
	for i, m := range ms {
		if i > 0 && m.id == last.id {
			continue
		}
		out = append(out, m)
		last = m
	}
	return out
}
