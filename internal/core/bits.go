package core

import "math/bits"

// bitsFor returns the number of bits needed to encode a value in
// [0, maxValue], at least 1. Payload sizes are derived from the actual
// field domains so the simulator's bit complexity matches the paper's
// accounting (identities cost ceil(log2 N) bits, interval endpoints
// ceil(log2 n) bits, depths and probability exponents O(log log n) bits).
func bitsFor(maxValue int) int {
	if maxValue <= 0 {
		return 1
	}
	return bits.Len(uint(maxValue))
}

// log2Ceil returns ceil(log2 n) for n >= 1.
func log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
