package core

import (
	"renaming/internal/interval"
	"renaming/internal/sim"
)

// Payload kinds of the crash-resilient algorithm.
const (
	KindNotify   = "notify"   // round 1: committee membership announcement
	KindStatus   = "status"   // round 2: ⟨ID(v), I_v, d_v, p_v⟩ to the committee
	KindResponse = "response" // round 3: committee decision per node
)

// NotifyPayload is the round-1 committee announcement. It carries no
// fields — the (authenticated) sender link identifies the committee
// member — so it costs a single bit.
type NotifyPayload struct{}

var _ sim.Payload = NotifyPayload{}

// Kind implements sim.Payload.
func (NotifyPayload) Kind() string { return KindNotify }

// Bits implements sim.Payload.
func (NotifyPayload) Bits() int { return 1 }

// StatusPayload is the round-2 message ⟨ID(v), I_v, d_v, p_v⟩ a node
// sends to every active committee member.
type StatusPayload struct {
	ID int
	I  interval.Interval
	D  int
	P  int

	// SizeN and SizeSmallN capture the namespace sizes so Bits can
	// account field widths faithfully.
	SizeN      int
	SizeSmallN int
}

var _ sim.Payload = StatusPayload{}

// Kind implements sim.Payload.
func (StatusPayload) Kind() string { return KindStatus }

// Bits implements sim.Payload.
func (p StatusPayload) Bits() int {
	// ID ∈ [N]; interval endpoints ∈ [n]; d ≤ ceil(log2 n)+1;
	// p ≤ ceil(log2 n)+1 (once p reaches log2 n everyone is elected).
	logn := log2Ceil(p.SizeSmallN)
	return bitsFor(p.SizeN) + 2*bitsFor(p.SizeSmallN) + 2*bitsFor(logn+1)
}

// ResponsePayload is the round-3 committee decision ⟨ID(w), I, d, p⟩ sent
// back to node w. Done is the early-stopping extension's signal (one
// extra bit): the committee member saw only unit intervals this phase,
// so every alive node has determined its identity and may halt.
type ResponsePayload struct {
	ID   int
	I    interval.Interval
	D    int
	P    int
	Done bool

	SizeN      int
	SizeSmallN int
}

var _ sim.Payload = ResponsePayload{}

// Kind implements sim.Payload.
func (ResponsePayload) Kind() string { return KindResponse }

// Bits implements sim.Payload.
func (p ResponsePayload) Bits() int {
	logn := log2Ceil(p.SizeSmallN)
	return bitsFor(p.SizeN) + 2*bitsFor(p.SizeSmallN) + 2*bitsFor(logn+1) + 1
}
