package core

import (
	"renaming/internal/bitvec"
	"renaming/internal/interval"
	"renaming/internal/sim"
)

// crashCodec bit-packs the crash algorithm's two high-volume payloads —
// status and response — into two machine words each, replacing the 64-
// and 72-byte structs that otherwise sit in every in-flight message and
// response arena. Packing is decoupled from billing: Bits() keeps the
// paper's field-width accounting (ID over [N], endpoints over [n],
// counters over [log n + 1]) verbatim, while the packed layout uses
// widths wide enough for every value the implementation can actually
// produce (d and p advance at most once per phase, so both fit under
// TotalRounds). Notify needs no codec: it is already a zero-size struct
// billed at one bit.
//
// Every node derives the codec from the shared CrashConfig, so widths
// agree across the run without ever being put on the wire.
type crashCodec struct {
	idBits int // ID ∈ [1, N]
	ivBits int // interval endpoints ∈ [1, n]
	pcBits int // d and p counters, bounded by the phase budget

	// statusBits / responseBits are the billed Bits() of the unpacked
	// payloads — constant per run, precomputed once.
	statusBits   uint16
	responseBits uint16

	// packed is false when the fields don't fit the two-word layout
	// (astronomical N); nodes then fall back to the unpacked structs.
	packed bool

	sizeN, sizeSmallN int
	scratch           [2]uint64 // Writer backing, reused across encodes
}

func newCrashCodec(cfg CrashConfig) crashCodec {
	n := len(cfg.IDs)
	logn := log2Ceil(n)
	c := crashCodec{
		idBits:     bitsFor(cfg.N),
		ivBits:     bitsFor(n),
		pcBits:     bitsFor(cfg.TotalRounds() + 1),
		sizeN:      cfg.N,
		sizeSmallN: n,
	}
	c.statusBits = uint16(bitsFor(cfg.N) + 2*bitsFor(n) + 2*bitsFor(logn+1))
	c.responseBits = c.statusBits + 1 // Done flag
	total := c.idBits + 2*c.ivBits + 2*c.pcBits + 1
	c.packed = total <= 128
	return c
}

// PackedStatus is the wire form of StatusPayload: the same five fields
// bit-packed into two words. Bits() reports the *billed* width of the
// unpacked payload, so metrics — and hence golden fingerprints — are
// unchanged by packing.
type PackedStatus struct {
	w0, w1 uint64
	bits   uint16
}

var _ sim.Payload = PackedStatus{}

// Kind implements sim.Payload.
func (PackedStatus) Kind() string { return KindStatus }

// Bits implements sim.Payload.
func (p PackedStatus) Bits() int { return int(p.bits) }

// PackedResponse is the wire form of ResponsePayload (PackedStatus plus
// the early-stop Done flag).
type PackedResponse struct {
	w0, w1 uint64
	bits   uint16
}

var _ sim.Payload = PackedResponse{}

// Kind implements sim.Payload.
func (PackedResponse) Kind() string { return KindResponse }

// Bits implements sim.Payload.
func (p PackedResponse) Bits() int { return int(p.bits) }

func (c *crashCodec) encodeStatus(s StatusPayload) PackedStatus {
	w := bitvec.NewWriter(c.scratch[:0])
	w.Append(uint64(s.ID), c.idBits)
	w.Append(uint64(s.I.Lo), c.ivBits)
	w.Append(uint64(s.I.Hi), c.ivBits)
	w.Append(uint64(s.D), c.pcBits)
	w.Append(uint64(s.P), c.pcBits)
	words := w.Words()
	out := PackedStatus{w0: words[0], bits: c.statusBits}
	if len(words) > 1 {
		out.w1 = words[1]
	}
	return out
}

func (c *crashCodec) decodeStatus(p *PackedStatus, out *StatusPayload) {
	words := [2]uint64{p.w0, p.w1}
	r := bitvec.NewReader(words[:])
	out.ID = int(r.Take(c.idBits))
	out.I = interval.Interval{Lo: int(r.Take(c.ivBits)), Hi: int(r.Take(c.ivBits))}
	out.D = int(r.Take(c.pcBits))
	out.P = int(r.Take(c.pcBits))
	out.SizeN = c.sizeN
	out.SizeSmallN = c.sizeSmallN
}

func (c *crashCodec) encodeResponse(s ResponsePayload) PackedResponse {
	w := bitvec.NewWriter(c.scratch[:0])
	w.Append(uint64(s.ID), c.idBits)
	w.Append(uint64(s.I.Lo), c.ivBits)
	w.Append(uint64(s.I.Hi), c.ivBits)
	w.Append(uint64(s.D), c.pcBits)
	w.Append(uint64(s.P), c.pcBits)
	w.AppendBool(s.Done)
	words := w.Words()
	out := PackedResponse{w0: words[0], bits: c.responseBits}
	if len(words) > 1 {
		out.w1 = words[1]
	}
	return out
}

func (c *crashCodec) decodeResponse(p *PackedResponse, out *ResponsePayload) {
	words := [2]uint64{p.w0, p.w1}
	r := bitvec.NewReader(words[:])
	out.ID = int(r.Take(c.idBits))
	out.I = interval.Interval{Lo: int(r.Take(c.ivBits)), Hi: int(r.Take(c.ivBits))}
	out.D = int(r.Take(c.pcBits))
	out.P = int(r.Take(c.pcBits))
	out.Done = r.TakeBool()
	out.SizeN = c.sizeN
	out.SizeSmallN = c.sizeSmallN
}
