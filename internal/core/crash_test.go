package core

import (
	"math/rand"
	"testing"

	"renaming/internal/adversary"
	"renaming/internal/interval"
	"renaming/internal/sim"
)

// buildCrashRun wires n crash nodes into a network with the given
// adversary and returns both.
func buildCrashRun(t *testing.T, cfg CrashConfig, adv sim.CrashAdversary) (*sim.Network, []*CrashNode) {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	n := len(cfg.IDs)
	nodes := make([]*CrashNode, n)
	simNodes := make([]sim.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = NewCrashNode(cfg, i)
		simNodes[i] = nodes[i]
	}
	opts := []sim.Option{sim.WithPeek(func(i int) any { return nodes[i].Peek() })}
	if adv != nil {
		opts = append(opts, sim.WithCrashAdversary(adv))
	}
	return sim.NewNetwork(simNodes, opts...), nodes
}

// runCrash executes a full crash-renaming execution and fails the test on
// round-limit violations.
func runCrash(t *testing.T, cfg CrashConfig, adv sim.CrashAdversary) (*sim.Network, []*CrashNode) {
	t.Helper()
	nw, nodes := buildCrashRun(t, cfg, adv)
	if err := nw.Run(cfg.TotalRounds() + 1); err != nil {
		t.Fatalf("run: %v", err)
	}
	return nw, nodes
}

// checkUnique asserts that every surviving node decided a distinct new
// identity in [1, n] — the strong renaming guarantee.
func checkUnique(t *testing.T, nw *sim.Network, nodes []*CrashNode) {
	t.Helper()
	n := len(nodes)
	seen := make(map[int]int)
	for i, node := range nodes {
		if !nw.Alive(i) {
			continue
		}
		newID, ok := node.Output()
		if !ok {
			iv, d, p := node.State()
			t.Fatalf("alive node %d (id %d) undecided: I=%v d=%d p=%d", i, node.id, iv, d, p)
		}
		if newID < 1 || newID > n {
			t.Fatalf("node %d got new id %d outside [1,%d]", i, newID, n)
		}
		if prev, dup := seen[newID]; dup {
			t.Fatalf("nodes %d and %d both got new id %d", prev, i, newID)
		}
		seen[newID] = i
	}
}

func seqConfig(n, bigN int, seed int64) CrashConfig {
	ids := make([]int, n)
	gap := bigN / n
	for i := range ids {
		ids[i] = i*gap + 1
	}
	return CrashConfig{N: bigN, IDs: ids, Seed: seed}
}

func TestCrashNoFailuresSmall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 64} {
		cfg := seqConfig(n, 16*n+5, int64(n))
		nw, nodes := runCrash(t, cfg, nil)
		checkUnique(t, nw, nodes)
		if got := nw.Crashes(); got != 0 {
			t.Fatalf("n=%d: unexpected crashes %d", n, got)
		}
	}
}

func TestCrashRandomFailures(t *testing.T) {
	for _, n := range []int{8, 32, 64} {
		for seed := int64(0); seed < 5; seed++ {
			cfg := seqConfig(n, 8*n, seed)
			adv := &adversary.RandomCrashes{
				Budget: n - 1, Prob: 0.05, MidSendProb: 0.5,
				Rand: rand.New(rand.NewSource(seed + 99)),
			}
			nw, nodes := runCrash(t, cfg, adv)
			checkUnique(t, nw, nodes)
		}
	}
}

func TestCrashCommitteeKiller(t *testing.T) {
	for _, n := range []int{16, 64} {
		for seed := int64(0); seed < 3; seed++ {
			cfg := seqConfig(n, 4*n, seed)
			adv := &adversary.CommitteeKiller{
				Budget: n - 1, MidSend: true,
				Rand: rand.New(rand.NewSource(seed)),
			}
			nw, nodes := runCrash(t, cfg, adv)
			checkUnique(t, nw, nodes)
			if nw.AliveCount() == 0 {
				t.Fatalf("n=%d: adversary crashed everyone (budget bug)", n)
			}
		}
	}
}

// TestCrashIntervalOccupancy checks Lemma 2.3: at the end of the run, at
// most |I| nodes chose intervals inside any node's interval I.
func TestCrashIntervalOccupancy(t *testing.T) {
	cfg := seqConfig(48, 500, 7)
	adv := &adversary.RandomCrashes{Budget: 20, Prob: 0.08, Rand: rand.New(rand.NewSource(3))}
	nw, nodes := runCrash(t, cfg, adv)
	var ivs []interval.Interval
	for i, node := range nodes {
		if nw.Alive(i) {
			iv, _, _ := node.State()
			ivs = append(ivs, iv)
		}
	}
	for _, outer := range ivs {
		inside := 0
		for _, inner := range ivs {
			if outer.Contains(inner) {
				inside++
			}
		}
		if inside > outer.Size() {
			t.Fatalf("interval %v holds %d > %d nodes", outer, inside, outer.Size())
		}
	}
}

// TestCrashSmallCommittee scales the election constant down so that the
// committee is genuinely small (the paper's constant 256 makes the
// probability exceed 1 at laptop scale), exercising the re-election and
// conflict-resolution paths.
func TestCrashSmallCommittee(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		for seed := int64(0); seed < 4; seed++ {
			cfg := seqConfig(n, 4*n, seed)
			cfg.CommitteeScale = 0.05
			adv := &adversary.CommitteeKiller{
				Budget: n / 2, MidSend: true, Rand: rand.New(rand.NewSource(seed * 31)),
			}
			nw, nodes := runCrash(t, cfg, adv)
			checkUnique(t, nw, nodes)
		}
	}
}

// TestCrashDeterminism verifies that two executions with the same seed
// are metric-identical.
func TestCrashDeterminism(t *testing.T) {
	run := func() (int64, int64, int) {
		cfg := seqConfig(64, 512, 42)
		cfg.CommitteeScale = 0.1
		adv := &adversary.RandomCrashes{Budget: 30, Prob: 0.1, MidSendProb: 0.3,
			Rand: rand.New(rand.NewSource(5))}
		nw, nodes := runCrash(t, cfg, adv)
		checkUnique(t, nw, nodes)
		m := nw.Metrics()
		return m.Messages, m.Bits, nw.Crashes()
	}
	m1, b1, f1 := run()
	m2, b2, f2 := run()
	if m1 != m2 || b1 != b2 || f1 != f2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", m1, b1, f1, m2, b2, f2)
	}
}
