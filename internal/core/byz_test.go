package core

import (
	"sort"
	"testing"

	"renaming/internal/consensus"
	"renaming/internal/sim"
)

// byzRun wires a mixed honest/Byzantine population and runs it to
// completion.
type byzRun struct {
	cfg     ByzConfig
	nw      *sim.Network
	honest  map[int]*ByzNode // link → node
	byzSet  map[int]bool
	correct []int // links of correct nodes
}

// buildByzRun makes nodes at the links listed in byz Byzantine with the
// given behaviour, everyone else honest.
func buildByzRun(t *testing.T, cfg ByzConfig, byz map[int]ByzBehavior) *byzRun {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	n := len(cfg.IDs)
	run := &byzRun{cfg: cfg, honest: make(map[int]*ByzNode), byzSet: make(map[int]bool)}
	simNodes := make([]sim.Node, n)
	var byzLinks, rushLinks []int
	for i := 0; i < n; i++ {
		if behavior, bad := byz[i]; bad {
			simNodes[i] = NewByzAttacker(cfg, i, behavior)
			run.byzSet[i] = true
			byzLinks = append(byzLinks, i)
			if behavior == BehaviorRushingEquivocate {
				rushLinks = append(rushLinks, i)
			}
			continue
		}
		node := NewByzNode(cfg, i)
		run.honest[i] = node
		run.correct = append(run.correct, i)
		simNodes[i] = node
	}
	run.nw = sim.NewNetwork(simNodes, sim.WithByzantine(byzLinks), sim.WithRushing(rushLinks))
	return run
}

// maxRounds estimates a generous round budget from the committee size.
func (run *byzRun) maxRounds() int {
	n := len(run.cfg.IDs)
	committee := n // worst case everyone
	perIter := consensus.ValidatorRounds + 2*consensus.RoundsFor(committee) + consensus.ExchangeRounds + 2
	iters := 4*(len(run.byzSet)+1)*(log2Ceil(run.cfg.N)+1) + 8
	return 3 + 2*perIter*iters
}

func (run *byzRun) execute(t *testing.T) {
	t.Helper()
	if err := run.nw.Run(run.maxRounds()); err != nil {
		for _, link := range run.correct {
			node := run.honest[link]
			if _, ok := node.Output(); !ok {
				t.Logf("correct node %d undecided: phase committee=%d votes=%d",
					link, node.CommitteeSize(), len(node.newVotes))
			}
		}
		t.Fatalf("run: %v (round %d)", err, run.nw.Round())
	}
}

// assumptionHolds reports whether the committee composition satisfies the
// paper's requirement (Byzantine members strictly below one third of the
// committee view) — runs violating it are outside the algorithm's
// guarantee envelope.
func (run *byzRun) assumptionHolds() bool {
	if len(run.correct) == 0 {
		return false
	}
	anyCorrect := run.honest[run.correct[0]]
	if anyCorrect.CommitteeSize() == 0 {
		return false
	}
	byzInCommittee := 0
	for _, m := range anyCorrect.committee {
		if run.byzSet[m.link] {
			byzInCommittee++
		}
	}
	return 3*byzInCommittee < anyCorrect.CommitteeSize()
}

// checkStrongOrderPreserving asserts uniqueness, range, and order
// preservation over the correct nodes.
func (run *byzRun) checkStrongOrderPreserving(t *testing.T) {
	t.Helper()
	n := len(run.cfg.IDs)
	type pair struct{ oldID, newID int }
	var pairs []pair
	seen := make(map[int]int)
	for _, link := range run.correct {
		node := run.honest[link]
		newID, ok := node.Output()
		if !ok {
			t.Fatalf("correct node %d (id %d) undecided", link, run.cfg.IDs[link])
		}
		if newID < 1 || newID > n {
			t.Fatalf("node %d new id %d outside [1,%d]", link, newID, n)
		}
		if prev, dup := seen[newID]; dup {
			t.Fatalf("nodes %d and %d share new id %d", prev, link, newID)
		}
		seen[newID] = link
		pairs = append(pairs, pair{oldID: run.cfg.IDs[link], newID: newID})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].oldID < pairs[b].oldID })
	for i := 1; i < len(pairs); i++ {
		if pairs[i].newID <= pairs[i-1].newID {
			t.Fatalf("order violated: old %d→%d but old %d→%d",
				pairs[i-1].oldID, pairs[i-1].newID, pairs[i].oldID, pairs[i].newID)
		}
	}
}

// checkPartitions asserts Lemma 3.8: all correct committee members
// processed the identical segment partition of [1, N].
func (run *byzRun) checkPartitions(t *testing.T) {
	t.Helper()
	var reference []string
	for _, link := range run.correct {
		node := run.honest[link]
		if !node.Elected() {
			continue
		}
		var segs []string
		total := 0
		for _, seg := range node.Partition() {
			segs = append(segs, seg.String())
			total += seg.Size()
		}
		sort.Strings(segs)
		if total != run.cfg.N {
			t.Fatalf("member %d partition covers %d ≠ N=%d", link, total, run.cfg.N)
		}
		if reference == nil {
			reference = segs
			continue
		}
		if len(segs) != len(reference) {
			t.Fatalf("member %d partition size %d ≠ %d", link, len(segs), len(reference))
		}
		for i := range segs {
			if segs[i] != reference[i] {
				t.Fatalf("member %d partition differs at %d: %s vs %s", link, i, segs[i], reference[i])
			}
		}
	}
}

func byzConfig(n, bigN int, seed int64, poolProb float64) ByzConfig {
	ids := make([]int, n)
	gap := bigN / n
	for i := range ids {
		ids[i] = i*gap + 1
	}
	return ByzConfig{N: bigN, IDs: ids, Seed: seed, PoolProb: poolProb}
}

func TestByzNoFaults(t *testing.T) {
	for _, n := range []int{4, 8, 16, 33} {
		cfg := byzConfig(n, 4*n, int64(n), 0) // paper constants: everyone on committee
		run := buildByzRun(t, cfg, nil)
		run.execute(t)
		run.checkStrongOrderPreserving(t)
		run.checkPartitions(t)
	}
}

func TestByzSilentFaults(t *testing.T) {
	n := 24
	cfg := byzConfig(n, 6*n, 3, 0)
	byz := map[int]ByzBehavior{2: BehaviorSilent, 9: BehaviorSilent, 17: BehaviorSilent}
	run := buildByzRun(t, cfg, byz)
	run.execute(t)
	if !run.assumptionHolds() {
		t.Skip("committee composition outside guarantee envelope")
	}
	run.checkStrongOrderPreserving(t)
	run.checkPartitions(t)
}

func TestByzSplitWorld(t *testing.T) {
	n := 24
	for seed := int64(0); seed < 4; seed++ {
		cfg := byzConfig(n, 8*n, seed, 0)
		byz := map[int]ByzBehavior{1: BehaviorSplitWorld, 7: BehaviorSplitWorld, 13: BehaviorSplitWorld}
		run := buildByzRun(t, cfg, byz)
		run.execute(t)
		if !run.assumptionHolds() {
			continue
		}
		run.checkStrongOrderPreserving(t)
		run.checkPartitions(t)
	}
}

func TestByzEquivocators(t *testing.T) {
	n := 24
	for seed := int64(0); seed < 4; seed++ {
		cfg := byzConfig(n, 8*n, seed, 0)
		byz := map[int]ByzBehavior{3: BehaviorEquivocate, 11: BehaviorEquivocate}
		run := buildByzRun(t, cfg, byz)
		run.execute(t)
		if !run.assumptionHolds() {
			continue
		}
		run.checkStrongOrderPreserving(t)
		run.checkPartitions(t)
	}
}

func TestByzSpammer(t *testing.T) {
	n := 16
	cfg := byzConfig(n, 4*n, 5, 0)
	byz := map[int]ByzBehavior{4: BehaviorSpam}
	run := buildByzRun(t, cfg, byz)
	run.execute(t)
	if !run.assumptionHolds() {
		t.Skip("committee composition outside guarantee envelope")
	}
	run.checkStrongOrderPreserving(t)
	run.checkPartitions(t)
}

// TestByzSmallCommittee uses a pool-probability override so the committee
// is a strict subset of the nodes, exercising the member/non-member
// asymmetry and the NEW quorum logic.
func TestByzSmallCommittee(t *testing.T) {
	n := 48
	found := false
	for seed := int64(0); seed < 8; seed++ {
		cfg := byzConfig(n, 4*n, seed, 0.15)
		byz := map[int]ByzBehavior{5: BehaviorSplitWorld, 19: BehaviorEquivocate}
		run := buildByzRun(t, cfg, byz)
		run.execute(t)
		if !run.assumptionHolds() {
			continue
		}
		found = true
		run.checkStrongOrderPreserving(t)
		run.checkPartitions(t)
	}
	if !found {
		t.Fatal("no seed produced a committee satisfying the assumption")
	}
}
