package core
