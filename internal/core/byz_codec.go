package core

import (
	"renaming/internal/bitvec"
	"renaming/internal/sim"
)

// byzCodec bit-packs the Byzantine algorithm's NEW distribution payload
// — the one whose volume scales with committee size × n — into a single
// word. As with crashCodec, billing is untouched: Bits() keeps the
// unpacked payload's bitsFor(n)+1 accounting. The other kinds need no
// codec: elect/announce are one-shot rounds, and SubPayload broadcasts
// reuse one boxed value per vote (see wrapSub), so neither contributes
// per-message state that scales with the run.
//
// Correct nodes send *PackedNew from a per-distribution arena; Byzantine
// attacker strategies keep fabricating value NewPayloads, and absorbNew
// accepts both forms.
type byzCodec struct {
	// idBits spans [0, N], not [0, n]: a rank over the length-N list can
	// exceed n when Byzantine members inflate dirty-segment counts (the
	// recipient's own segment being clean does not bound the ranks below
	// it), and the packed width must hold every value the implementation
	// can produce. Billing stays at the honest bitsFor(n)+1.
	idBits     int
	bits       uint8 // billed Bits() of the unpacked payload
	sizeSmallN int
}

func newByzCodec(n, bigN int) byzCodec {
	return byzCodec{idBits: bitsFor(bigN), bits: uint8(bitsFor(n) + 1), sizeSmallN: n}
}

// PackedNew is the wire form of NewPayload: identity and null flag in
// one word, billed exactly like the struct it replaces.
type PackedNew struct {
	w    uint64
	bits uint8
}

var _ sim.Payload = PackedNew{}

// Kind implements sim.Payload.
func (PackedNew) Kind() string { return KindNew }

// Bits implements sim.Payload.
func (p PackedNew) Bits() int { return int(p.bits) }

func (c byzCodec) encodeNew(p NewPayload) PackedNew {
	var scratch [1]uint64
	w := bitvec.NewWriter(scratch[:0])
	w.Append(uint64(p.NewID), c.idBits)
	w.AppendBool(p.Null)
	return PackedNew{w: w.Words()[0], bits: c.bits}
}

func (c byzCodec) decodeNew(p *PackedNew, out *NewPayload) {
	words := [1]uint64{p.w}
	r := bitvec.NewReader(words[:])
	out.NewID = int(r.Take(c.idBits))
	out.Null = r.TakeBool()
	out.SizeSmallN = c.sizeSmallN
}
