package core

import (
	"math/rand"
	"testing"

	"renaming/internal/adversary"
	"renaming/internal/sim"
)

// phaseSnapshot captures (d̃, p̃, p̂) over alive nodes plus the per-node
// intervals, taken right after a NodeAction round.
type phaseSnapshot struct {
	minD, minP, maxP int
	anyUndecided     bool
}

func snapshot(nw *sim.Network, nodes []*CrashNode) phaseSnapshot {
	s := phaseSnapshot{minD: 1 << 30, minP: 1 << 30, maxP: -1}
	for i, node := range nodes {
		if !nw.Alive(i) {
			continue
		}
		iv, d, p := node.State()
		if !iv.Unit() {
			s.anyUndecided = true
			if d < s.minD {
				s.minD = d
			}
		}
		if p < s.minP {
			s.minP = p
		}
		if p > s.maxP {
			s.maxP = p
		}
	}
	return s
}

// stepPhases drives a crash execution phase by phase, calling check after
// every completed phase (i.e. after the NodeAction of the next phase's
// first round has run).
func stepPhases(t *testing.T, cfg CrashConfig, adv sim.CrashAdversary, check func(phase int, s phaseSnapshot)) {
	t.Helper()
	nw, nodes := buildCrashRun(t, cfg, adv)
	total := cfg.TotalRounds()
	for round := 0; round < total; round++ {
		nw.StepRound()
		// NodeAction for phase k runs in round 3(k+1); after stepping
		// that round, phase k is fully processed.
		if round%3 == 0 && round > 0 {
			check(round/3-1, snapshot(nw, nodes))
		}
	}
	checkUnique(t, nw, nodes)
}

// TestLemma25PGapAtMostOne: at every phase end, max p − min p ≤ 1 over
// alive nodes.
func TestLemma25PGapAtMostOne(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cfg := seqConfig(96, 800, seed)
		cfg.CommitteeScale = 0.03
		adv := &adversary.CommitteeKiller{
			Budget: 70, MidSend: true, Rand: rand.New(rand.NewSource(seed)),
		}
		stepPhases(t, cfg, adv, func(phase int, s phaseSnapshot) {
			if s.maxP >= 0 && s.maxP-s.minP > 1 {
				t.Fatalf("seed=%d phase=%d: p gap %d−%d > 1", seed, phase, s.maxP, s.minP)
			}
		})
	}
}

// TestLemma22And24Progress: every two phases, either the minimum depth of
// undecided nodes or the minimum p increases.
func TestLemma22And24Progress(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cfg := seqConfig(64, 600, seed)
		cfg.CommitteeScale = 0.03
		adv := &adversary.CommitteeKiller{
			Budget: 40, MidSend: true, Rand: rand.New(rand.NewSource(seed + 50)),
		}
		var history []phaseSnapshot
		stepPhases(t, cfg, adv, func(phase int, s phaseSnapshot) {
			history = append(history, s)
			if len(history) < 3 {
				return
			}
			prev := history[len(history)-3]
			if !prev.anyUndecided || !s.anyUndecided {
				return // depth frontier no longer defined once all decided
			}
			if s.minD < prev.minD {
				t.Fatalf("seed=%d phase=%d: min depth regressed %d→%d", seed, phase, prev.minD, s.minD)
			}
			if s.minD == prev.minD && s.minP <= prev.minP {
				t.Fatalf("seed=%d phase=%d: no progress over two phases (d=%d, p %d→%d)",
					seed, phase, s.minD, prev.minP, s.minP)
			}
		})
	}
}

// TestLemma23OccupancyEveryPhase: the interval-occupancy invariant holds
// at every phase end, not just at termination.
func TestLemma23OccupancyEveryPhase(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cfg := seqConfig(48, 400, seed)
		cfg.CommitteeScale = 0.05
		adv := &adversary.RandomCrashes{
			Budget: 30, Prob: 0.12, MidSendProb: 0.6,
			Rand: rand.New(rand.NewSource(seed + 7)),
		}
		nw, nodes := buildCrashRun(t, cfg, adv)
		total := cfg.TotalRounds()
		for round := 0; round < total; round++ {
			nw.StepRound()
			if round%3 != 0 || round == 0 {
				continue
			}
			for i, outerNode := range nodes {
				if !nw.Alive(i) {
					continue
				}
				outer, _, _ := outerNode.State()
				inside := 0
				for j, innerNode := range nodes {
					if !nw.Alive(j) {
						continue
					}
					inner, _, _ := innerNode.State()
					if outer.Contains(inner) {
						inside++
					}
				}
				if inside > outer.Size() {
					t.Fatalf("seed=%d round=%d: %v holds %d > %d nodes",
						seed, round, outer, inside, outer.Size())
				}
			}
		}
		checkUnique(t, nw, nodes)
	}
}

// TestCrashAblationDoublingOff: with re-election doubling disabled and a
// relentless committee killer, node election probability never rises, so
// the run frequently exhausts its phases undecided — the property the
// doubling exists to prevent. We only require that the ablation is
// observably weaker than the paper's variant across seeds.
func TestCrashAblationDoublingOff(t *testing.T) {
	failuresOn, failuresOff := 0, 0
	for seed := int64(0); seed < 12; seed++ {
		for _, disable := range []bool{false, true} {
			cfg := seqConfig(128, 1200, seed)
			cfg.CommitteeScale = 0.02
			cfg.DisableReelectionDoubling = disable
			adv := &adversary.CommitteeKiller{
				Budget: 127, MidSend: true, Rand: rand.New(rand.NewSource(seed * 3)),
			}
			nw, nodes := buildCrashRun(t, cfg, adv)
			if err := nw.Run(cfg.TotalRounds() + 1); err != nil {
				t.Fatal(err)
			}
			failed := false
			for i, node := range nodes {
				if !nw.Alive(i) {
					continue
				}
				if _, ok := node.Output(); !ok {
					failed = true
				}
			}
			if failed {
				if disable {
					failuresOff++
				} else {
					failuresOn++
				}
			}
		}
	}
	if failuresOn > failuresOff {
		t.Fatalf("ablation outperformed the paper's design: on=%d off=%d failures", failuresOn, failuresOff)
	}
	t.Logf("undecided runs: doubling on %d/12, doubling off %d/12", failuresOn, failuresOff)
}

// TestCrashMessageCeiling: the deterministic Θ(n² log n) ceiling of
// Theorem 1.2 with an explicit constant.
func TestCrashMessageCeiling(t *testing.T) {
	n := 128
	for seed := int64(0); seed < 4; seed++ {
		cfg := seqConfig(n, 1024, seed)
		// Paper constants: committee = everyone → the true worst case.
		adv := &adversary.RandomCrashes{Budget: n / 2, Prob: 0.1, Rand: rand.New(rand.NewSource(seed))}
		nw, nodes := runCrash(t, cfg, adv)
		checkUnique(t, nw, nodes)
		logn := log2Ceil(n)
		ceiling := int64(10) * int64(n) * int64(n) * int64(logn)
		if nw.Metrics().Messages > ceiling {
			t.Fatalf("seed=%d: %d messages exceed 10·n²·log n = %d", seed, nw.Metrics().Messages, ceiling)
		}
	}
}

// TestCrashEarlyStop: the early-stopping extension halts well before the
// full phase budget in failure-free runs and stays correct under the
// committee killer.
func TestCrashEarlyStop(t *testing.T) {
	cfg := seqConfig(128, 1024, 3)
	cfg.EarlyStop = true
	nw, nodes := runCrash(t, cfg, nil)
	checkUnique(t, nw, nodes)
	full := cfg.TotalRounds()
	if nw.Round() >= full {
		t.Fatalf("early stop did not engage: %d rounds (budget %d)", nw.Round(), full)
	}
	if nw.Round() > 3*(log2Ceil(128)+3) {
		t.Fatalf("early stop too slow: %d rounds", nw.Round())
	}

	for seed := int64(0); seed < 4; seed++ {
		cfg := seqConfig(96, 800, seed)
		cfg.EarlyStop = true
		cfg.CommitteeScale = 0.05
		adv := &adversary.CommitteeKiller{Budget: 60, MidSend: true,
			Rand: rand.New(rand.NewSource(seed))}
		nw, nodes := runCrash(t, cfg, adv)
		checkUnique(t, nw, nodes)
	}
}

// TestLemma26CommitteeCount: the number of nodes ever elected stays
// within O(2^p̂·log n) — the committee-size bound behind the message
// complexity. We allow a generous constant (the paper's is 3·512).
func TestLemma26CommitteeCount(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n := 192
		cfg := seqConfig(n, 1600, seed)
		cfg.CommitteeScale = 0.02
		adv := &adversary.CommitteeKiller{
			Budget: n - 1, MidSend: true, Rand: rand.New(rand.NewSource(seed + 11)),
		}
		nw, nodes := runCrash(t, cfg, adv)
		checkUnique(t, nw, nodes)
		maxP, ever := 0, 0
		for _, node := range nodes {
			_, _, p := node.State()
			if p > maxP {
				maxP = p
			}
			if node.EverElected() {
				ever++
			}
		}
		logn := float64(log2Ceil(n))
		bound := 3 * 512 * cfg.CommitteeScale * float64(uint64(1)<<uint(maxP)) * logn
		if bound > float64(n) {
			bound = float64(n)
		}
		if float64(ever) > bound {
			t.Fatalf("seed=%d: %d nodes ever elected exceed bound %.0f (p̂=%d)", seed, ever, bound, maxP)
		}
	}
}
