package sim

import (
	"fmt"
	"runtime"
	"sort"
)

// engine is the round engine behind Network: a persistent, sharded worker
// pool that steps nodes in-place and routes messages through reusable
// per-node inboxes. It is built for the scaling sweeps (n = 16384/32768):
// the per-round cost is O(messages) with near-zero allocations, no
// per-node goroutines, and no sorting.
//
// A round runs in four phases, each executed shard-parallel behind a
// barrier:
//
//	step     every shard steps its alive (non-rushing) nodes in-place;
//	         the coordinator then steps rushing nodes (wave 2) and
//	         evaluates mid-send crash filters sequentially, so stateful
//	         filters consume shared randomness in the exact order the
//	         sequential engine did;
//	count    every shard walks its nodes' outboxes, bumping a per-worker
//	         × per-recipient counter and accumulating metrics into a
//	         per-shard accumulator (lock-free: shards touch disjoint
//	         cells);
//	deliver  every shard turns the counters for *its recipients* into
//	         exclusive prefix offsets and carves this round's inbox views
//	         out of the shard's slab — a counting sort by sender,
//	         exploiting that worker w's senders all precede worker w+1's;
//	scatter  every shard writes its surviving messages into the
//	         recipients' inboxes at the precomputed offsets.
//
// Because offsets are assigned in (worker, sender, emission) order, every
// inbox comes out sorted by sender link with per-sender emission order
// preserved — byte-identical to the previous engine's append-then-stable-
// sort delivery, at every worker count.
//
// Inbox storage is slab-allocated (see inboxSlab): per round and worker,
// one arena holds every incoming message of the shard's recipients, and
// the per-recipient tables hold views into it. Two slabs per worker
// alternate by round parity — round r's views are read during round r+1
// while round r+1 fills the other slab — and reuse is generation-stamped:
// a recipient's view is only meaningful when its stamp matches the
// current fill, so idle recipients are never touched during delivery and
// their (stale) views are simply never read. docs/MEMORY.md documents
// the resulting memory model.
type engine struct {
	nodes   []Node
	quiet   []Quiescent         // nodes[i] as Quiescent, nil if not implemented
	quietAt []ScheduleQuiescent // nodes[i] as ScheduleQuiescent, nil if not implemented
	alive   []bool
	adv     CrashAdversary
	metrics *Metrics
	peek    func(node int) any

	// crashedAt remembers the round each node crashed in, -1 if alive.
	crashedAt []int
	byzantine []bool
	rushing   []bool
	rushList  []int // indices with rushing set, ascending (frozen at setup)
	round     int
	observer  func(round int, delivered []Message)
	digest    func(RoundDigest)
	// digestKinds is the reused per-round kind map passed (by reference)
	// inside RoundDigest; consumers must not retain it across calls.
	digestKinds map[string]int64

	// Worker pool. workers is the resolved shard count P; worker 0 is the
	// coordinator (the StepRound caller), workers 1..P-1 are long-lived
	// goroutines parked on their cmd channel between phases. spawned
	// counts the goroutines actually started; a pooled engine reused at a
	// larger n spawns only the delta.
	reqWorkers int // WithEngineWorkers override; 0 = GOMAXPROCS
	workers    int
	shardLo    []int
	shardHi    []int
	spawned    int
	closed     bool
	cmd        []chan int
	ack        chan struct{}
	panics     []any

	// Adaptive collapse: rounds with little traffic run on the
	// coordinator alone (active = 1), skipping the four barrier
	// handshakes whose wakeup latency dwarfs the actual work at small
	// scales — the committee loop of the Byzantine algorithm moves a few
	// hundred messages per round, ~microseconds of routing. Heavy rounds
	// (all-to-all baselines, announce/distribute fan-outs, the 16384+
	// sweeps) still fan out across the pool. Results are bit-identical at
	// every worker count, so flipping per round is unobservable; an
	// explicit WithEngineWorkers pin disables the collapse so tests can
	// exercise a chosen path. lastMsgs (messages counted in the previous
	// round) is the traffic predictor.
	adaptive bool
	active   int
	lastMsgs int64

	// stepped lists the senders that acted this round, ascending, and
	// prevStepped the round before — coordinator-only rounds use them to
	// reset and walk only those entries instead of scanning all n nodes
	// in every phase. Ascending order matters: scatter assigns inbox
	// slots in sender order.
	stepped     []int
	prevStepped []int
	mergeBuf    []int
	prevFull    bool // last round ran parallel: acted/outs need a full reset

	// Per-round state, all reused across rounds. The inbox tables hold
	// views into the parity-alternating slabs; a view is only meaningful
	// when its generation stamp matches the round that filled it (see
	// inboxOf), so entries of idle recipients go stale instead of being
	// reset.
	inboxes [][]Message // delivered this round, per recipient (slab views)
	nextInb [][]Message // being filled for next round (slab views)
	inbGen  []uint32    // per recipient: fill stamp of inboxes[i]
	nextGen []uint32    // per recipient: fill stamp of nextInb[i]
	slabs   [2][]inboxSlab
	outs    []Outbox  // per sender: this round's outbox (nil if idle)
	acted   []bool    // per sender: stepped this round
	counts  [][]int32 // per worker × recipient: count, then offset
	shards  []metricShard

	// recip lists the recipients with incoming traffic this round,
	// discovery-ordered, and prevRecip the round before — the delivery
	// analogue of stepped/prevStepped: coordinator-only rounds reset and
	// walk only those counter cells instead of scanning all n recipients.
	recip      []int
	prevRecip  []int
	countsFull bool // last round ran parallel: counts[0] needs a full reset

	aliveView   []bool
	filters     map[int]SendFilter
	filterOrder []int
	keepFor     map[int][]bool // per filtered sender: per-message verdict
	keepPool    [][]bool
	previews    map[int][]Message
	rushInbox   []Message
	delivered   []Message

	// expandBufs pools the explicit outboxes that mid-send crash filtering
	// expands shared entries (ToAll, ToSet) into (keep verdicts are
	// indexed per wire message). Buffers are reclaimed at the next
	// evalFilters call, after phaseStep has dropped all outbox references.
	expandBufs [][]Message
	expandUsed int
	roundEnd   []func() // coordinator hooks run at the end of every round

	// Shared-aggregate delivery (ToAll broadcasts and ToSet multicasts).
	// A sender whose round outbox is exactly one unfiltered shared entry
	// is recorded in its worker's sharedRecs instead of the per-recipient
	// counters; planShared (coordinator, between count and deliver) carves
	// one aggregate segment per distinct shared target out of the parity
	// aggregate slab and precomputes per-worker scatter cursors, so the
	// segment comes out in global sender order. Recipients whose only
	// traffic is a single segment are *bound* to it zero-copy (boundGen
	// marks them — their view still carries the sender's To sentinel);
	// recipients with several sources are merged into per-worker merge
	// slabs by the phMerge phase. See docs/MEMORY.md.
	sets           *Sets
	eagerMulticast bool
	sharedRecs     [][]sharedRec // per worker: pure-shared senders, ascending
	sharedCur      [][]int32     // per worker × active set: scatter cursor
	actSets        []actSet      // this round's distinct shared targets
	aggSlabs       [2]inboxSlab  // aggregate segments, by round parity
	aggBuf         []Message     // this round's aggregate slab fill
	aggActive      bool
	srcSet         []int32   // per recipient: actSets index of its named source
	srcGen         []uint32  // stamp for srcSet
	boundGen       []uint32  // per recipient: stamp when nextInb[i] is a raw segment
	clsGen         []uint32  // per recipient: classification-done stamp
	mergeList      [][]int32 // per worker: recipients needing a k-way merge
	mergeSlabs     [2][]inboxSlab
	wexpand        []expandPool // per worker: mixed-outbox expansion buffers
}

// sharedRec records one pure-shared sender for the scatter cursors:
// target is the set id, or -1 for ToAll.
type sharedRec struct {
	from   int32
	target int32
}

// actSet is one distinct shared target active this round: its aggregate
// segment (a sender-ordered view into the aggregate slab) and layout.
type actSet struct {
	id    int // set id, -1 for ToAll
	start int
	total int
	seg   []Message
}

// expandPool is one worker's buffer pool for expanding mixed outboxes
// (shared entries alongside others) into explicit messages during the
// count phase; buffers are reclaimed at the worker's next count phase,
// after the round's outbox references are gone.
type expandPool struct {
	bufs [][]Message
	used int
}

// Phase identifiers dispatched to the worker pool.
const (
	phStep = iota
	phCount
	phDeliver
	phScatter
	phMerge
)

// inboxSlab is one worker's per-parity message arena: each round the
// deliver phase carves every recipient view of the worker's shard out of
// a single contiguous buffer, instead of growing (and retaining) one
// slice per recipient. fills counts refills, for MemStats.
type inboxSlab struct {
	buf   []Message
	fills uint32
}

// fill returns a buffer of exactly total messages, growing the arena
// with 25% headroom when capacity is short. The previous contents are
// garbage by construction: views carved two rounds ago are dead (their
// round has been fully consumed), and any still-recorded view of them
// fails its generation check before it can be read.
func (s *inboxSlab) fill(total int) []Message {
	if cap(s.buf) < total {
		s.buf = make([]Message, total+total/4)
	}
	s.fills++
	return s.buf[:total]
}

func newEngine(nodes []Node) *engine {
	e := &engine{}
	e.reset(nodes)
	return e
}

// growSpan returns s resized to length n, reusing capacity when possible.
// Surviving contents are unspecified: callers reinitialize every entry
// they will read (reset does exactly that).
func growSpan[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// reset (re)initializes every per-run field for an execution over nodes,
// reusing prior allocations — per-node tables, inbox slabs, counters,
// metrics, worker goroutines — when their capacity suffices. A pooled
// engine (see Pool) runs reset + option application + finishSetup per
// lease, and the resulting observable state is exactly a fresh engine's:
// the pooled-vs-fresh determinism tests pin bit-identical output.
func (e *engine) reset(nodes []Node) {
	n := len(nodes)
	e.nodes = nodes
	e.quiet = growSpan(e.quiet, n)
	e.quietAt = growSpan(e.quietAt, n)
	e.alive = growSpan(e.alive, n)
	e.crashedAt = growSpan(e.crashedAt, n)
	e.byzantine = growSpan(e.byzantine, n)
	e.rushing = growSpan(e.rushing, n)
	e.inboxes = growSpan(e.inboxes, n)
	e.nextInb = growSpan(e.nextInb, n)
	e.inbGen = growSpan(e.inbGen, n)
	e.nextGen = growSpan(e.nextGen, n)
	e.outs = growSpan(e.outs, n)
	e.acted = growSpan(e.acted, n)
	e.aliveView = growSpan(e.aliveView, n)
	e.srcSet = growSpan(e.srcSet, n)
	e.srcGen = growSpan(e.srcGen, n)
	e.boundGen = growSpan(e.boundGen, n)
	e.clsGen = growSpan(e.clsGen, n)
	for i := 0; i < n; i++ {
		e.alive[i] = true
		e.crashedAt[i] = -1
		e.byzantine[i] = false
		e.rushing[i] = false
		// Generation stamps must be zeroed AND the views dropped: a stale
		// stamp equal to uint32(round) at round 0 would let inboxOf hand a
		// previous run's slab view to a fresh node.
		e.inboxes[i], e.nextInb[i] = nil, nil
		e.inbGen[i], e.nextGen[i] = 0, 0
		// The aggregate stamps share the zeroed-means-never convention
		// (round stamps start at 1), so cross-run staleness is impossible.
		e.srcGen[i], e.boundGen[i], e.clsGen[i] = 0, 0, 0
		e.outs[i] = nil
		e.acted[i] = false
		e.quiet[i], e.quietAt[i] = nil, nil
		if q, ok := nodes[i].(Quiescent); ok {
			e.quiet[i] = q
		}
		if q, ok := nodes[i].(ScheduleQuiescent); ok {
			e.quietAt[i] = q
		}
	}
	e.adv = NoCrashes{}
	e.peek = nil
	if e.metrics == nil {
		e.metrics = NewMetrics()
	} else {
		e.metrics.reset()
	}
	e.metrics.sizeFor(n)
	e.rushList = e.rushList[:0]
	e.round = 0
	e.observer = nil
	e.digest = nil
	e.roundEnd = e.roundEnd[:0]
	e.reqWorkers = 0
	e.stepped, e.prevStepped = e.stepped[:0], e.prevStepped[:0]
	e.mergeBuf = e.mergeBuf[:0]
	e.prevFull, e.countsFull = true, true
	e.recip, e.prevRecip = e.recip[:0], e.prevRecip[:0]
	if e.filters == nil {
		e.filters = make(map[int]SendFilter)
	} else {
		clear(e.filters)
	}
	e.filterOrder = e.filterOrder[:0]
	if e.keepFor == nil {
		e.keepFor = make(map[int][]bool)
	} else {
		for node, keep := range e.keepFor {
			delete(e.keepFor, node)
			e.keepPool = append(e.keepPool, keep[:0])
		}
	}
	e.previews = nil
	e.rushInbox = e.rushInbox[:0]
	e.delivered = e.delivered[:0]
	e.expandUsed = 0
	e.eagerMulticast = false
	e.aggActive = false
	e.actSets = e.actSets[:0]
	for w := range e.sharedRecs {
		e.sharedRecs[w] = e.sharedRecs[w][:0]
	}
	for w := range e.mergeList {
		e.mergeList[w] = e.mergeList[w][:0]
	}
	// lastMsgs seeds the adaptive collapse predictor; a fresh engine
	// starts at 0, so a reused one must too or the first round's
	// active-worker choice (and nothing else — results are identical
	// either way, but keep reuse exactly fresh) could differ.
	e.lastMsgs = 0
}

// finishSetup resolves the worker count and shard layout after options
// have been applied. Workers are spawned lazily on the first StepRound;
// a reused engine keeps already-spawned goroutines parked on their cmd
// channels and only ever spawns the delta.
func (e *engine) finishSetup() {
	n := len(e.nodes)
	p := e.reqWorkers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	e.workers = p
	e.shardLo = growSpan(e.shardLo, p)
	e.shardHi = growSpan(e.shardHi, p)
	base, rem := n/p, n%p
	lo := 0
	for w := 0; w < p; w++ {
		size := base
		if w < rem {
			size++
		}
		e.shardLo[w], e.shardHi[w] = lo, lo+size
		lo += size
	}
	// Per-worker structures only grow, preserving existing buffers; the
	// counter contents are garbage after reuse, which is safe because
	// countsFull forces a full reset on the first coordinator-only round
	// and parallel phaseCount zeroes its shard every round.
	for len(e.counts) < p {
		e.counts = append(e.counts, nil)
	}
	for w := 0; w < p; w++ {
		e.counts[w] = growSpan(e.counts[w], n)
	}
	for par := range e.slabs {
		for len(e.slabs[par]) < p {
			e.slabs[par] = append(e.slabs[par], inboxSlab{})
		}
		for len(e.mergeSlabs[par]) < p {
			e.mergeSlabs[par] = append(e.mergeSlabs[par], inboxSlab{})
		}
	}
	for len(e.shards) < p {
		e.shards = append(e.shards, metricShard{})
		e.shards[len(e.shards)-1].init()
	}
	for len(e.sharedRecs) < p {
		e.sharedRecs = append(e.sharedRecs, nil)
	}
	for len(e.sharedCur) < p {
		e.sharedCur = append(e.sharedCur, nil)
	}
	for len(e.mergeList) < p {
		e.mergeList = append(e.mergeList, nil)
	}
	for len(e.wexpand) < p {
		e.wexpand = append(e.wexpand, expandPool{})
	}
	// Attach (or detach, under WithEagerMulticast) the interned-set
	// registry on every node that shares multicasts through it. The
	// registry is per-run: a pooled lease re-clears it here.
	if e.sets == nil {
		e.sets = &Sets{}
	}
	e.sets.reset(n)
	reg := e.sets
	if e.eagerMulticast {
		reg = nil
	}
	for _, nd := range e.nodes {
		if su, ok := nd.(SetUser); ok {
			su.UseSets(reg)
		}
	}
	for i, r := range e.rushing {
		if r {
			e.rushList = append(e.rushList, i)
		}
	}
	if len(e.rushList) > 0 {
		e.previews = make(map[int][]Message, len(e.rushList))
	}
	e.adaptive = e.reqWorkers <= 0 && e.workers > 1
	e.active = e.workers
}

// adaptiveSpill is the work estimate (node passes + routed messages,
// weighted toward messages) above which a round is worth fanning across
// the pool; below it the four barrier handshakes cost more than the
// round itself. Calibrated on the Byzantine committee loop at n = 1024
// (~175 msgs/round: sequential wins 2×) against the all-to-all baselines
// (n² msgs/round: the pool wins).
const adaptiveSpill = 8192

func (e *engine) ensureWorkers() {
	if e.workers-1 <= e.spawned {
		return
	}
	for len(e.cmd) < e.workers {
		e.cmd = append(e.cmd, nil)
	}
	for len(e.panics) < e.workers {
		e.panics = append(e.panics, nil)
	}
	if cap(e.ack) < e.workers {
		e.ack = make(chan struct{}, e.workers)
	}
	for w := e.spawned + 1; w < e.workers; w++ {
		e.cmd[w] = make(chan int)
		go e.workerLoop(w)
	}
	e.spawned = e.workers - 1
}

func (e *engine) workerLoop(w int) {
	for ph := range e.cmd[w] {
		e.runShard(w, ph)
	}
}

func (e *engine) runShard(w, ph int) {
	defer func() {
		if r := recover(); r != nil {
			e.panics[w] = r
		}
		e.ack <- struct{}{}
	}()
	e.phase(w, ph)
}

// runPhase fans one phase across the pool; the coordinator works shard 0
// itself. Worker panics (e.g. a node sending to an invalid link) are
// re-raised here so they surface on the StepRound caller as before.
func (e *engine) runPhase(ph int) {
	if e.active == 1 {
		// Coordinator-only round: worker 0 spans every node in one shard.
		e.phaseSpan(0, ph, 0, len(e.nodes))
		return
	}
	for w := 1; w < e.workers; w++ {
		e.cmd[w] <- ph
	}
	e.phase(0, ph)
	for w := 1; w < e.workers; w++ {
		<-e.ack
	}
	for w := 1; w < e.workers; w++ {
		if p := e.panics[w]; p != nil {
			e.panics[w] = nil
			panic(p)
		}
	}
}

func (e *engine) phase(w, ph int) {
	e.phaseSpan(w, ph, e.shardLo[w], e.shardHi[w])
}

func (e *engine) phaseSpan(w, ph, lo, hi int) {
	switch ph {
	case phStep:
		e.phaseStep(lo, hi)
	case phCount:
		e.phaseCount(w, lo, hi)
	case phDeliver:
		e.phaseDeliver(w, lo, hi)
	case phScatter:
		e.phaseScatter(w, lo, hi)
	case phMerge:
		e.phaseMerge(w)
	}
}

// close releases the worker pool. Idempotent; installed as a finalizer on
// the Network handle so undisposed networks don't leak goroutines.
func (e *engine) close() {
	if e.closed {
		return
	}
	e.closed = true
	for w := 1; w < len(e.cmd); w++ {
		if e.cmd[w] != nil {
			close(e.cmd[w])
		}
	}
}

// shouldStep reports whether node i executes this round: alive, or
// crashed mid-send this round (its output will be filtered).
func (e *engine) shouldStep(i int) bool {
	if e.alive[i] {
		return true
	}
	if e.crashedAt[i] != e.round {
		return false
	}
	_, midSend := e.filters[i]
	return midSend
}

// StepRound executes exactly one synchronous round:
//
//  1. the adversary may crash nodes (optionally mid-send),
//  2. every stepping node receives its inbox (messages sent last round,
//     sorted by sender) and produces an outbox, shards in parallel,
//  3. outboxes are filtered for mid-send crashes, counted, and routed
//     into the (reused) inboxes delivered at the start of the next round.
func (e *engine) StepRound() {
	n := len(e.nodes)

	// The adversary moves first, on the coordinator: its randomness (and
	// any stateful mid-send filters it installs) must be consumed in a
	// deterministic order regardless of the worker count.
	copy(e.aliveView, e.alive)
	view := View{Round: e.round, Alive: e.aliveView, Inbox: e.inboxOf, Peek: e.peek}
	clear(e.filters)
	for _, order := range e.adv.Crashes(view) {
		if order.Node < 0 || order.Node >= n || !e.alive[order.Node] {
			continue
		}
		e.alive[order.Node] = false
		e.crashedAt[order.Node] = e.round
		if order.Filter != nil {
			e.filters[order.Node] = order.Filter
		}
	}

	if e.adaptive {
		if int64(n)+3*e.lastMsgs >= adaptiveSpill {
			e.active = e.workers
		} else {
			e.active = 1
		}
	}
	if e.active > 1 {
		e.ensureWorkers()
	}
	e.runPhase(phStep)
	if len(e.rushList) > 0 {
		e.stepRushers()
	}
	if len(e.filters) > 0 {
		e.evalFilters()
	}
	e.runPhase(phCount)
	e.planShared()
	e.runPhase(phDeliver)
	e.runPhase(phScatter)
	if e.aggActive {
		for w := 0; w < e.active; w++ {
			if len(e.mergeList[w]) > 0 {
				e.runPhase(phMerge)
				break
			}
		}
	}
	e.foldMetrics()
	if e.digest != nil {
		e.emitDigest()
	}

	if e.observer != nil {
		e.delivered = e.delivered[:0]
		gen := uint32(e.round) + 1
		for i := range e.nextInb {
			if e.nextGen[i] != gen {
				continue
			}
			if e.boundGen[i] == gen {
				// Zero-copy bound view: its entries carry the sender's
				// shared To sentinel, so rewrite To while copying into the
				// observer stream — byte-identical to explicit delivery.
				for _, m := range e.nextInb[i] {
					m.To = i
					e.delivered = append(e.delivered, m)
				}
				continue
			}
			e.delivered = append(e.delivered, e.nextInb[i]...)
		}
		e.observer(e.round, e.delivered)
	}
	for _, fn := range e.roundEnd {
		fn()
	}
	if e.active == 1 {
		// This round's acted senders (and traffic recipients) are the
		// entries the next coordinator-only round must reset.
		e.stepped, e.prevStepped = e.prevStepped[:0], e.stepped
		e.recip, e.prevRecip = e.prevRecip[:0], e.recip
	} else {
		// A parallel round steps nodes (and dirties counters) without
		// recording them; force the next coordinator-only round to do one
		// full reset scan.
		e.prevFull = true
		e.countsFull = true
	}
	e.inboxes, e.nextInb = e.nextInb, e.inboxes
	e.inbGen, e.nextGen = e.nextGen, e.inbGen
	e.round++
	e.metrics.Rounds = e.round
}

// inboxOf returns node i's inbox for the current round, or nil when the
// node received nothing this round: the slab view recorded in inboxes[i]
// is only meaningful while its generation stamp matches the round that
// filled it.
func (e *engine) inboxOf(i int) []Message {
	if e.inbGen[i] != uint32(e.round) {
		return nil
	}
	return e.inboxes[i]
}

// emitDigest rolls the just-folded (still fresh) shard accumulators into
// a RoundDigest for the WithRoundDigest callback. digestKinds is reused
// every round, so the callback must not retain the map.
func (e *engine) emitDigest() {
	if e.digestKinds == nil {
		e.digestKinds = make(map[string]int64)
	}
	clear(e.digestKinds)
	d := RoundDigest{Round: e.round, PerKind: e.digestKinds}
	for w := 0; w < e.active; w++ {
		sh := &e.shards[w]
		d.Messages += sh.messages
		d.Bits += sh.bits
		for k, v := range sh.perKind {
			e.digestKinds[k] += v
		}
	}
	e.digest(d)
}

// phaseStep — wave 1: every non-rushing stepping node in the shard steps
// against its inbox. Nodes only touch their own state, so shards are
// independent; the engine does not retain the returned outbox past the
// round, so nodes may reuse their outbox buffers.
func (e *engine) phaseStep(lo, hi int) {
	if e.active == 1 {
		// Coordinator-only round: clear only last round's acted entries,
		// then record this round's acted senders so the count and scatter
		// phases can walk just those instead of scanning all n slots.
		if e.prevFull {
			for i := lo; i < hi; i++ {
				e.outs[i] = nil
				e.acted[i] = false
			}
			e.prevFull = false
		} else {
			for _, i := range e.prevStepped {
				e.outs[i] = nil
				e.acted[i] = false
			}
		}
		e.stepped = e.stepped[:0]
		for i := lo; i < hi; i++ {
			if e.rushing[i] || !e.shouldStep(i) {
				continue
			}
			inb := e.inboxOf(i)
			if len(inb) == 0 && e.idleVouched(i) {
				continue
			}
			e.acted[i] = true
			e.outs[i] = e.nodes[i].Step(e.round, inb)
			e.stepped = append(e.stepped, i)
		}
		return
	}
	for i := lo; i < hi; i++ {
		e.outs[i] = nil
		e.acted[i] = false
		if e.rushing[i] || !e.shouldStep(i) {
			continue
		}
		inb := e.inboxOf(i)
		if len(inb) == 0 && e.idleVouched(i) {
			// The node vouches that this call would be a pure no-op (see
			// Quiescent); eliding it is observationally identical. acted
			// stays false, which downstream phases treat as "empty outbox".
			continue
		}
		e.acted[i] = true
		e.outs[i] = e.nodes[i].Step(e.round, inb)
	}
}

// idleVouched reports that node i vouches — through either quiescence
// contract — that a Step call with an empty inbox this round would be a
// pure no-op. The decision is a function of the node's own state and
// the round number only, so it is identical at every worker count.
func (e *engine) idleVouched(i int) bool {
	if q := e.quiet[i]; q != nil && q.Quiescent() {
		return true
	}
	if q := e.quietAt[i]; q != nil && q.QuiescentAt(e.round) {
		return true
	}
	return false
}

// stepRushers — wave 2, on the coordinator: rushing nodes step with a
// preview of the messages honest nodes addressed to them in the *current*
// round appended to their inbox. Rushing nodes do not preview each other.
// Previews respect mid-send crash filters, and filter calls happen here —
// before the count phase — in ascending sender order, exactly as the
// sequential engine made them.
func (e *engine) stepRushers() {
	n := len(e.nodes)
	for k, v := range e.previews {
		e.previews[k] = v[:0]
	}
	for i := 0; i < n; i++ {
		if !e.acted[i] {
			continue
		}
		filter := e.filters[i]
		for _, msg := range e.outs[i] {
			if msg.To == ToAll {
				// A shared broadcast reaches every rushing node; expanding
				// ascending over rushList matches the explicit broadcast's
				// to = 0..n-1 visit order (and its filter-call order).
				for _, r := range e.rushList {
					if filter != nil && !filter(r) {
						continue
					}
					e.previews[r] = append(e.previews[r], Message{From: i, To: r, Payload: msg.Payload})
				}
				continue
			}
			if msg.To <= toSetBase {
				// Shared multicast: members are ascending, matching the
				// explicit Multicast's emission (and filter-call) order.
				for _, m := range e.sets.membersOf(toSetID(msg.To)) {
					r := int(m)
					if !e.rushing[r] {
						continue
					}
					if filter != nil && !filter(r) {
						continue
					}
					e.previews[r] = append(e.previews[r], Message{From: i, To: r, Payload: msg.Payload})
				}
				continue
			}
			if msg.To < 0 || msg.To >= n || !e.rushing[msg.To] {
				continue
			}
			if filter != nil && !filter(msg.To) {
				continue
			}
			msg.From = i
			e.previews[msg.To] = append(e.previews[msg.To], msg)
		}
	}
	for _, r := range e.rushList {
		if !e.shouldStep(r) {
			continue
		}
		inbox := e.inboxOf(r)
		if preview := e.previews[r]; len(preview) > 0 {
			// Previews were appended in ascending sender order, so the
			// combined inbox stays sorted by sender.
			e.rushInbox = append(append(e.rushInbox[:0], inbox...), preview...)
			inbox = e.rushInbox
		}
		e.acted[r] = true
		e.outs[r] = e.nodes[r].Step(e.round, inbox)
	}
	if e.active == 1 {
		// Merge the acted rushers into the stepped list, preserving the
		// ascending sender order the scatter phase relies on. Rushing
		// nodes are skipped by phaseStep, so there are no duplicates.
		e.mergeBuf = e.mergeBuf[:0]
		s := e.stepped
		j := 0
		for _, r := range e.rushList {
			if !e.acted[r] {
				continue
			}
			for j < len(s) && s[j] < r {
				e.mergeBuf = append(e.mergeBuf, s[j])
				j++
			}
			e.mergeBuf = append(e.mergeBuf, r)
		}
		e.mergeBuf = append(e.mergeBuf, s[j:]...)
		e.stepped, e.mergeBuf = e.mergeBuf, e.stepped
	}
}

// evalFilters records, for every mid-send crasher, which of its messages
// survive. Filters may share a memoizing rng (adversary.randomHalfFilter),
// so they are evaluated once, sequentially, in ascending (sender, message)
// order — the order the sequential engine called them in — and the parallel
// phases consume the recorded verdicts instead of re-invoking the filter.
func (e *engine) evalFilters() {
	n := len(e.nodes)
	e.filterOrder = e.filterOrder[:0]
	for node := range e.filters {
		e.filterOrder = append(e.filterOrder, node)
	}
	sort.Ints(e.filterOrder)
	for node, keep := range e.keepFor {
		delete(e.keepFor, node)
		e.keepPool = append(e.keepPool, keep[:0])
	}
	e.expandUsed = 0
	for _, s := range e.filterOrder {
		if !e.acted[s] {
			continue
		}
		filter := e.filters[s]
		orig := e.outs[s]
		out := e.expandShared(s)
		var keep []bool
		if k := len(e.keepPool); k > 0 {
			keep = e.keepPool[k-1]
			e.keepPool = e.keepPool[:k-1]
		}
		allKept := true
		for k := range out {
			to := out[k].To
			if to < 0 || to >= n {
				panic(fmt.Sprintf("sim: node %d sent to invalid link %d", s, to))
			}
			v := filter(to)
			allKept = allKept && v
			keep = append(keep, v)
		}
		if allKept && len(orig) != len(out) {
			// The filter kept every wire message, so the expansion changed
			// nothing observable: restore the shared representation and
			// drop the verdicts, letting the sender rejoin the aggregate
			// path. Only senders whose filter actually diverged pay for
			// per-recipient deltas.
			e.outs[s] = orig
			e.keepPool = append(e.keepPool, keep[:0])
			e.expandUsed--
			continue
		}
		e.keepFor[s] = keep
	}
}

// expandShared rewrites sender s's outbox with every shared entry (ToAll
// broadcast, ToSet multicast) expanded into explicit per-recipient
// messages, so the mid-send keep verdicts index one wire message each —
// exactly the sequence the explicit representation produced. Runs on the
// coordinator only, for the (rare) senders crashing mid-send; buffers
// come from a pool reclaimed once the round's outboxes are dropped.
func (e *engine) expandShared(s int) Outbox {
	out := e.outs[s]
	shared := false
	for k := range out {
		if out[k].To < 0 {
			shared = true
			break
		}
	}
	if !shared {
		return out
	}
	var buf []Message
	if e.expandUsed < len(e.expandBufs) {
		buf = e.expandBufs[e.expandUsed][:0]
	} else {
		e.expandBufs = append(e.expandBufs, nil)
	}
	buf = e.appendExpanded(buf, out)
	e.expandBufs[e.expandUsed] = buf
	e.expandUsed++
	e.outs[s] = buf
	return buf
}

// appendExpanded appends out to buf with every shared entry expanded into
// explicit per-recipient messages, in the exact order the eager
// representation would have emitted them: ToAll ascending over all links,
// ToSet ascending over the set's members.
func (e *engine) appendExpanded(buf []Message, out Outbox) []Message {
	n := len(e.nodes)
	for _, msg := range out {
		switch {
		case msg.To == ToAll:
			for to := 0; to < n; to++ {
				buf = append(buf, Message{From: msg.From, To: to, Payload: msg.Payload})
			}
		case msg.To <= toSetBase:
			sid := toSetID(msg.To)
			if !e.sets.valid(sid) {
				panic(fmt.Sprintf("sim: message addressed to unknown set %d", sid))
			}
			for _, m := range e.sets.membersOf(sid) {
				buf = append(buf, Message{From: msg.From, To: int(m), Payload: msg.Payload})
			}
		default:
			buf = append(buf, msg)
		}
	}
	return buf
}

// phaseCount walks the shard's outboxes, counting surviving messages per
// recipient and accumulating communication metrics into the shard's
// accumulator. PerNodeSent cells belong to this shard's senders, so the
// writes are race-free without locks.
func (e *engine) phaseCount(w, lo, hi int) {
	counts := e.counts[w]
	sh := &e.shards[w]
	anyFilters := len(e.filters) > 0
	e.sharedRecs[w] = e.sharedRecs[w][:0]
	e.wexpand[w].used = 0
	if e.active == 1 {
		// Coordinator-only round: reset only the counter cells the
		// previous round dirtied (its traffic recipients — scatter left
		// its write cursors there), then walk just the senders that
		// acted, recording this round's recipients as it counts.
		if e.countsFull {
			for i := range counts {
				counts[i] = 0
			}
			e.countsFull = false
		} else {
			for _, to := range e.prevRecip {
				counts[to] = 0
			}
		}
		e.recip = e.recip[:0]
		sh.reset()
		for _, i := range e.stepped {
			e.countSender(w, sh, counts, i, anyFilters, true)
		}
		return
	}
	for i := range counts {
		counts[i] = 0
	}
	sh.reset()
	for i := lo; i < hi; i++ {
		if !e.acted[i] {
			continue
		}
		e.countSender(w, sh, counts, i, anyFilters, false)
	}
}

// countSender counts one acted sender's surviving messages into counts
// and the shard accumulator — the phaseCount per-sender body, shared by
// the sharded scan and the coordinator-only stepped walk. With track set
// (coordinator-only rounds), every recipient is appended to e.recip the
// first time its counter leaves zero, so the deliver phase can walk just
// the recipients with traffic.
//
// A sender whose outbox is exactly one unfiltered shared entry (ToAll or
// ToSet) takes the aggregate path: one addN bills the full fan-out, the
// per-recipient counters stay untouched, and the sender joins the
// worker's sharedRecs for planShared/scatterShared. An outbox that mixes
// shared entries with anything else is expanded into explicit messages
// first (worker-local buffers), preserving its emission order exactly —
// shared targets never reach the explicit loop below.
func (e *engine) countSender(w int, sh *metricShard, counts []int32, i int, anyFilters, track bool) {
	out := e.outs[i]
	if len(out) == 0 {
		return
	}
	n := len(e.nodes)
	limit := e.metrics.CongestLimit
	var keep []bool
	if anyFilters {
		keep = e.keepFor[i]
	}
	honest := !e.byzantine[i]
	if keep == nil && len(out) == 1 && out[0].To < 0 {
		msg := &out[0]
		fan, tgt := n, int32(ToAll)
		if msg.To <= toSetBase {
			sid := toSetID(msg.To)
			if !e.sets.valid(sid) {
				panic(fmt.Sprintf("sim: node %d sent to unknown set %d", i, sid))
			}
			fan, tgt = len(e.sets.membersOf(sid)), int32(sid)
		}
		// One entry, fan wire messages: Kind/Bits are evaluated once
		// (payloads are immutable in flight), and addN accounts exactly
		// as fan consecutive adds would.
		sh.addN(msg.Payload.Kind(), msg.Payload.Bits(), int64(fan), honest, limit)
		e.metrics.PerNodeSent[i] += int64(fan)
		e.sharedRecs[w] = append(e.sharedRecs[w], sharedRec{from: int32(i), target: tgt})
		return
	}
	for k := range out {
		if out[k].To < 0 {
			// Mixed outbox (shared entries alongside others, or several
			// shared entries): expand to explicit messages so delivery
			// order within the sender is preserved verbatim.
			out = e.expandMixed(w, i, out)
			break
		}
	}
	var sent int64
	for k := range out {
		if keep != nil && !keep[k] {
			// Crashed mid-send: this message was never put on the
			// wire, so it costs nothing and arrives nowhere.
			continue
		}
		msg := &out[k]
		if msg.To < 0 || msg.To >= n {
			panic(fmt.Sprintf("sim: node %d sent to invalid link %d", i, msg.To))
		}
		if track && counts[msg.To] == 0 {
			e.recip = append(e.recip, msg.To)
		}
		counts[msg.To]++
		sent++
		sh.add(msg.Payload.Kind(), msg.Payload.Bits(), honest, limit)
	}
	e.metrics.PerNodeSent[i] += sent
}

// expandMixed replaces sender i's mixed outbox with its explicit
// expansion from worker w's buffer pool; the same worker reads the
// rewritten outbox again in its scatter phase.
func (e *engine) expandMixed(w, i int, out Outbox) Outbox {
	p := &e.wexpand[w]
	var buf []Message
	if p.used < len(p.bufs) {
		buf = p.bufs[p.used][:0]
	} else {
		p.bufs = append(p.bufs, nil)
	}
	buf = e.appendExpanded(buf, out)
	p.bufs[p.used] = buf
	p.used++
	e.outs[i] = buf
	return buf
}

// planShared runs on the coordinator between the count and deliver
// phases: it discovers this round's distinct shared targets, carves one
// aggregate segment per target out of the parity aggregate slab, and
// seeds per-worker scatter cursors so that each segment is filled in
// global sender order (workers ascending, senders ascending within each
// worker — the same order the counting sort assigns explicit slots in).
// Cost: O(shared senders + targets × workers); rounds without shared
// traffic pay one boolean scan over the active workers.
func (e *engine) planShared() {
	e.actSets = e.actSets[:0]
	e.aggActive = false
	any := false
	for w := 0; w < e.active; w++ {
		if len(e.sharedRecs[w]) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	e.aggActive = true
	for w := 0; w < e.active; w++ {
		for _, r := range e.sharedRecs[w] {
			if e.actIdx(r.target) < 0 {
				e.actSets = append(e.actSets, actSet{id: int(r.target)})
			}
		}
	}
	na := len(e.actSets)
	for w := 0; w < e.active; w++ {
		cur := growSpan(e.sharedCur[w], na)
		for i := 0; i < na; i++ {
			cur[i] = 0
		}
		for _, r := range e.sharedRecs[w] {
			cur[e.actIdx(r.target)]++
		}
		e.sharedCur[w] = cur
	}
	// Exclusive prefix over (target, worker): cursors become absolute
	// write offsets into the aggregate slab.
	off := 0
	for i := range e.actSets {
		a := &e.actSets[i]
		t := int32(0)
		for w := 0; w < e.active; w++ {
			c := e.sharedCur[w][i]
			e.sharedCur[w][i] = int32(off) + t
			t += c
		}
		a.start, a.total = off, int(t)
		off += int(t)
	}
	e.aggBuf = e.aggSlabs[e.round&1].fill(off)
	for i := range e.actSets {
		a := &e.actSets[i]
		a.seg = e.aggBuf[a.start : a.start+a.total : a.start+a.total]
	}
}

// actIdx returns the actSets index of target, or -1. Linear: a round has
// a handful of distinct shared targets at most.
func (e *engine) actIdx(target int32) int {
	for i := range e.actSets {
		if e.actSets[i].id == int(target) {
			return i
		}
	}
	return -1
}

// scatterShared writes worker w's pure-shared senders into the aggregate
// segments at the planned cursors, stamping the true sender. Workers
// write disjoint cursor ranges, and walking sharedRecs in order keeps
// every segment in global sender order.
func (e *engine) scatterShared(w int) {
	recs := e.sharedRecs[w]
	if len(recs) == 0 {
		return
	}
	cur := e.sharedCur[w]
	for _, r := range recs {
		idx := e.actIdx(r.target)
		pos := cur[idx]
		cur[idx] = pos + 1
		msg := e.outs[r.from][0]
		msg.From = int(r.from)
		e.aggBuf[pos] = msg
	}
}

// deliverShared classifies the recipients of this round's aggregate
// segments, after the individual views have been carved. A recipient
// whose only traffic is a single segment is bound to it zero-copy
// (boundGen marks the view as still carrying the sender's To sentinel);
// a recipient with several sources — an individual view, or more than
// one segment — is queued on the worker's merge list for phaseMerge.
// The coordinator-only path calls this with the full [0, n) span.
func (e *engine) deliverShared(w, lo, hi int, stamp uint32) {
	ml := e.mergeList[w][:0]
	toAllIdx := -1
	for idx := range e.actSets {
		a := &e.actSets[idx]
		if a.id == ToAll {
			toAllIdx = idx
			continue
		}
		// Mark this worker's members of the named set; a second named
		// source for the same recipient degrades it to "multiple".
		members := e.sets.membersOf(a.id)
		for j := lowerBound(members, lo); j < len(members) && int(members[j]) < hi; j++ {
			to := int(members[j])
			if e.srcGen[to] == stamp {
				e.srcSet[to] = -2
			} else {
				e.srcGen[to] = stamp
				e.srcSet[to] = int32(idx)
			}
		}
	}
	if toAllIdx >= 0 {
		// Every recipient has the ToAll segment as a source.
		for to := lo; to < hi; to++ {
			ml = e.classifyShared(to, stamp, toAllIdx, ml)
		}
	} else {
		// Only members of an active named set can have a shared source;
		// walk those, classifying each recipient once.
		for idx := range e.actSets {
			members := e.sets.membersOf(e.actSets[idx].id)
			for j := lowerBound(members, lo); j < len(members) && int(members[j]) < hi; j++ {
				to := int(members[j])
				if e.clsGen[to] == stamp {
					continue
				}
				e.clsGen[to] = stamp
				ml = e.classifyShared(to, stamp, -1, ml)
			}
		}
	}
	e.mergeList[w] = ml
}

// classifyShared resolves recipient to's delivery for an aggregate-active
// round: bind (zero-copy shared view), keep the individual view as-is, or
// queue for merge. Aggregate receive counts are credited here; individual
// counts were credited when the view was carved.
func (e *engine) classifyShared(to int, stamp uint32, toAllIdx int, ml []int32) []int32 {
	namedIdx, multi := -1, false
	if e.srcGen[to] == stamp {
		if e.srcSet[to] == -2 {
			multi = true
		} else {
			namedIdx = int(e.srcSet[to])
		}
	}
	var recv int64
	sources := 0
	if toAllIdx >= 0 {
		sources++
		recv += int64(e.actSets[toAllIdx].total)
	}
	if multi {
		sources += 2
		for idx := range e.actSets {
			a := &e.actSets[idx]
			if a.id != ToAll && containsMember(e.sets.membersOf(a.id), to) {
				recv += int64(a.total)
			}
		}
	} else if namedIdx >= 0 {
		sources++
		recv += int64(e.actSets[namedIdx].total)
	}
	if sources == 0 {
		return ml
	}
	e.metrics.PerNodeReceived[to] += recv
	if sources == 1 && e.nextGen[to] != stamp {
		idx := toAllIdx
		if idx < 0 {
			idx = namedIdx
		}
		e.nextInb[to] = e.actSets[idx].seg
		e.nextGen[to] = stamp
		e.boundGen[to] = stamp
		return ml
	}
	return append(ml, int32(to))
}

// phaseMerge materializes the inboxes of recipients with several
// delivery sources: the individual view and every covering aggregate
// segment are k-way merged by sender into the worker's merge slab, with
// To rewritten to the recipient during the copy. Sources are
// sender-disjoint (a sender's round outbox is either one shared entry or
// all-explicit), so the merge by leading From reproduces the explicit
// representation's (sender, emission) delivery order exactly.
func (e *engine) phaseMerge(w int) {
	ml := e.mergeList[w]
	if len(ml) == 0 {
		return
	}
	stamp := uint32(e.round) + 1
	var total int
	for _, to32 := range ml {
		to := int(to32)
		if e.nextGen[to] == stamp {
			total += len(e.nextInb[to])
		}
		total += e.aggLenFor(to)
	}
	slab := &e.mergeSlabs[e.round&1][w]
	buf := slab.fill(total)
	off := 0
	var srcs [][]Message
	for _, to32 := range ml {
		to := int(to32)
		srcs = srcs[:0]
		if e.nextGen[to] == stamp {
			srcs = append(srcs, e.nextInb[to])
		}
		for idx := range e.actSets {
			a := &e.actSets[idx]
			if a.total == 0 {
				continue
			}
			if a.id == ToAll || containsMember(e.sets.membersOf(a.id), to) {
				srcs = append(srcs, a.seg)
			}
		}
		cnt := 0
		for _, s := range srcs {
			cnt += len(s)
		}
		view := buf[off : off : off+cnt]
		for len(view) < cnt {
			best := -1
			for si := range srcs {
				if len(srcs[si]) == 0 {
					continue
				}
				if best < 0 || srcs[si][0].From < srcs[best][0].From {
					best = si
				}
			}
			msg := srcs[best][0]
			msg.To = to
			view = append(view, msg)
			srcs[best] = srcs[best][1:]
		}
		e.nextInb[to] = view
		e.nextGen[to] = stamp
		off += cnt
	}
}

// aggLenFor sums the lengths of the aggregate segments covering
// recipient to this round.
func (e *engine) aggLenFor(to int) int {
	var total int
	for idx := range e.actSets {
		a := &e.actSets[idx]
		if a.total == 0 {
			continue
		}
		if a.id == ToAll || containsMember(e.sets.membersOf(a.id), to) {
			total += a.total
		}
	}
	return total
}

// phaseDeliver turns the per-worker counters for this shard's *recipients*
// into exclusive prefix offsets — the counting sort's allocation step —
// and carves this round's inbox views out of the shard's parity slab.
// Worker w's senders all precede worker w+1's, so within each view the
// offset order is global sender order; the order of views *within* the
// slab (recipient discovery order on sparse rounds) is immaterial.
// Recipients without traffic are never touched: their table entry keeps
// a stale view that inboxOf's generation check filters out.
func (e *engine) phaseDeliver(w, lo, hi int) {
	slab := &e.slabs[e.round&1][w]
	stamp := uint32(e.round) + 1
	if e.active == 1 {
		// Coordinator-only round: every recipient with traffic is on the
		// recip list, and with one worker every in-view offset starts at
		// zero — resetting the counter to zero doubles as the prefix pass.
		counts := e.counts[0]
		var total int
		for _, to := range e.recip {
			total += int(counts[to])
		}
		buf := slab.fill(total)
		off := 0
		for _, to := range e.recip {
			cnt := int(counts[to])
			counts[to] = 0
			e.metrics.PerNodeReceived[to] += int64(cnt)
			e.nextInb[to] = buf[off : off+cnt : off+cnt]
			e.nextGen[to] = stamp
			off += cnt
		}
		if e.aggActive {
			e.deliverShared(0, 0, len(e.nodes), stamp)
		}
		return
	}
	// Pass 1: size the shard's slab without disturbing the counters.
	var total int
	for to := lo; to < hi; to++ {
		for x := 0; x < e.active; x++ {
			total += int(e.counts[x][to])
		}
	}
	buf := slab.fill(total)
	// Pass 2: exclusive prefix offsets per recipient (view-relative) and
	// view assignment at the running slab offset.
	off := 0
	for to := lo; to < hi; to++ {
		var sum int32
		for x := 0; x < e.active; x++ {
			c := e.counts[x][to]
			e.counts[x][to] = sum
			sum += c
		}
		if sum == 0 {
			continue
		}
		e.metrics.PerNodeReceived[to] += int64(sum)
		e.nextInb[to] = buf[off : off+int(sum) : off+int(sum)]
		e.nextGen[to] = stamp
		off += int(sum)
	}
	if e.aggActive {
		e.deliverShared(w, lo, hi, stamp)
	}
}

// phaseScatter places the shard's surviving messages at their precomputed
// inbox offsets, stamping the true sender (authenticated channels).
// Distinct workers write disjoint ranges of each inbox.
func (e *engine) phaseScatter(w, lo, hi int) {
	counts := e.counts[w]
	anyFilters := len(e.filters) > 0
	if e.aggActive {
		e.scatterShared(w)
	}
	if e.active == 1 {
		// Coordinator-only round: walk just the senders that acted. The
		// stepped list is ascending, so offsets are still assigned in
		// global sender order.
		for _, i := range e.stepped {
			e.scatterSender(counts, i, anyFilters)
		}
		return
	}
	for i := lo; i < hi; i++ {
		if !e.acted[i] {
			continue
		}
		e.scatterSender(counts, i, anyFilters)
	}
}

// scatterSender places one acted sender's surviving messages at their
// precomputed inbox offsets — the phaseScatter per-sender body, shared by
// the sharded scan and the coordinator-only stepped walk. Shared senders
// are skipped: scatterShared already placed their single entry in an
// aggregate segment, and mixed outboxes were expanded during the count
// phase, so no shared target ever reaches the per-message loop.
func (e *engine) scatterSender(counts []int32, i int, anyFilters bool) {
	out := e.outs[i]
	if len(out) == 1 && out[0].To < 0 {
		return
	}
	var keep []bool
	if anyFilters {
		keep = e.keepFor[i]
	}
	for k := range out {
		if keep != nil && !keep[k] {
			continue
		}
		msg := out[k]
		msg.From = i
		pos := counts[msg.To]
		counts[msg.To] = pos + 1
		e.nextInb[msg.To][pos] = msg
	}
}

// foldMetrics merges the per-shard accumulators into the public Metrics
// at the round barrier. Every merge is commutative integer arithmetic, so
// the fold is identical at every worker count.
func (e *engine) foldMetrics() {
	m := e.metrics
	var roundMsgs int64
	// Only the shards that ran this round hold fresh accumulators; the
	// rest were folded (and will be reset) the next time they run.
	for w := 0; w < e.active; w++ {
		sh := &e.shards[w]
		sh.flushRun()
		roundMsgs += sh.messages
		m.Messages += sh.messages
		m.Bits += sh.bits
		m.HonestMessages += sh.honestMessages
		m.HonestBits += sh.honestBits
		m.OversizeMessages += sh.oversize
		if sh.maxMessageBits > m.MaxMessageBits {
			m.MaxMessageBits = sh.maxMessageBits
		}
		for k, v := range sh.perKind {
			m.PerKind[k] += v
		}
		for k, v := range sh.perKindBits {
			m.PerKindBits[k] += v
		}
	}
	e.lastMsgs = roundMsgs
}
