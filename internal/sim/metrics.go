package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Metrics accumulates the communication-complexity measures the paper
// reports: total messages, total bits, rounds executed, and the largest
// single message observed (to validate the O(log N) message-size claim).
// Counting happens single-threaded between round barriers, so Metrics
// needs no locking.
type Metrics struct {
	// Messages is the total number of messages sent. A message to a
	// crashed recipient still counts: the sender paid for it.
	Messages int64
	// Bits is the total payload bits across all sent messages.
	Bits int64
	// Rounds is the number of rounds the network executed.
	Rounds int
	// MaxMessageBits is the largest single payload observed.
	MaxMessageBits int
	// PerKind breaks Messages down by payload kind.
	PerKind map[string]int64
	// PerKindBits breaks Bits down by payload kind.
	PerKindBits map[string]int64
	// HonestMessages and HonestBits exclude traffic sent by nodes the
	// harness marked Byzantine, so experiment counts match the paper's
	// accounting of what the *algorithm* sends.
	HonestMessages int64
	HonestBits     int64
	// PerNodeSent and PerNodeReceived break the message count down per
	// link, exposing the load skew between committee members and plain
	// nodes.
	PerNodeSent     []int64
	PerNodeReceived []int64
	// CongestLimit, when positive, is the per-message bit budget of the
	// CONGEST model; OversizeMessages counts messages exceeding it. The
	// paper's algorithms stay at zero for N = poly(n); the prior-work
	// baselines with Ω(n)-bit messages do not.
	CongestLimit     int
	OversizeMessages int64
}

// NewMetrics returns an empty metrics accumulator.
func NewMetrics() *Metrics {
	return &Metrics{
		PerKind:     make(map[string]int64),
		PerKindBits: make(map[string]int64),
	}
}

func (m *Metrics) record(msg Message, honest bool) {
	bits := msg.Payload.Bits()
	kind := msg.Payload.Kind()
	m.Messages++
	m.Bits += int64(bits)
	if msg.From >= 0 && msg.From < len(m.PerNodeSent) {
		m.PerNodeSent[msg.From]++
	}
	if msg.To >= 0 && msg.To < len(m.PerNodeReceived) {
		m.PerNodeReceived[msg.To]++
	}
	if honest {
		m.HonestMessages++
		m.HonestBits += int64(bits)
		if bits > m.MaxMessageBits {
			m.MaxMessageBits = bits
		}
		if m.CongestLimit > 0 && bits > m.CongestLimit {
			m.OversizeMessages++
		}
	}
	m.PerKind[kind]++
	m.PerKindBits[kind] += int64(bits)
}

// sizeFor allocates the per-node counters once the network size is known.
func (m *Metrics) sizeFor(n int) {
	m.PerNodeSent = make([]int64, n)
	m.PerNodeReceived = make([]int64, n)
}

// MaxNodeSent returns the largest per-link send count.
func (m *Metrics) MaxNodeSent() int64 {
	var max int64
	for _, v := range m.PerNodeSent {
		if v > max {
			max = v
		}
	}
	return max
}

// MaxNodeReceived returns the largest per-link receive count.
func (m *Metrics) MaxNodeReceived() int64 {
	var max int64
	for _, v := range m.PerNodeReceived {
		if v > max {
			max = v
		}
	}
	return max
}

// Kinds returns the observed payload kinds in lexical order.
func (m *Metrics) Kinds() []string {
	kinds := make([]string, 0, len(m.PerKind))
	for k := range m.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// String renders a compact human-readable summary.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d messages=%d bits=%d maxMsgBits=%d",
		m.Rounds, m.Messages, m.Bits, m.MaxMessageBits)
	for _, k := range m.Kinds() {
		fmt.Fprintf(&b, " %s=%d", k, m.PerKind[k])
	}
	return b.String()
}
