package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Metrics accumulates the communication-complexity measures the paper
// reports: total messages, total bits, rounds executed, and the largest
// single message observed (to validate the O(log N) message-size claim).
// During a round each engine shard counts into its own metricShard; the
// shards are folded into Metrics at the round barrier, so Metrics needs
// no locking and every fold (commutative integer sums and maxima) is
// identical at any worker count.
type Metrics struct {
	// Messages is the total number of messages sent. A message to a
	// crashed recipient still counts: the sender paid for it.
	Messages int64
	// Bits is the total payload bits across all sent messages.
	Bits int64
	// Rounds is the number of rounds the network executed.
	Rounds int
	// MaxMessageBits is the largest single payload observed.
	MaxMessageBits int
	// PerKind breaks Messages down by payload kind.
	PerKind map[string]int64
	// PerKindBits breaks Bits down by payload kind.
	PerKindBits map[string]int64
	// HonestMessages and HonestBits exclude traffic sent by nodes the
	// harness marked Byzantine, so experiment counts match the paper's
	// accounting of what the *algorithm* sends.
	HonestMessages int64
	HonestBits     int64
	// PerNodeSent and PerNodeReceived break the message count down per
	// link, exposing the load skew between committee members and plain
	// nodes.
	PerNodeSent     []int64
	PerNodeReceived []int64
	// CongestLimit, when positive, is the per-message bit budget of the
	// CONGEST model; OversizeMessages counts messages exceeding it. The
	// paper's algorithms stay at zero for N = poly(n); the prior-work
	// baselines with Ω(n)-bit messages do not.
	CongestLimit     int
	OversizeMessages int64
}

// NewMetrics returns an empty metrics accumulator.
func NewMetrics() *Metrics {
	return &Metrics{
		PerKind:     make(map[string]int64),
		PerKindBits: make(map[string]int64),
	}
}

// metricShard is one engine worker's per-round accumulator. The hot path
// (add) touches only shard-local state — no locks, no shared cache lines —
// and the per-kind maps are fed through a run-length cache because
// protocols overwhelmingly emit runs of the same payload kind.
type metricShard struct {
	messages       int64
	bits           int64
	honestMessages int64
	honestBits     int64
	oversize       int64
	maxMessageBits int
	perKind        map[string]int64
	perKindBits    map[string]int64

	// Run-length cache for the per-kind maps: consecutive messages of one
	// kind accumulate in runCount/runBits and hit the map once per run.
	runKind  string
	runCount int64
	runBits  int64
}

func (s *metricShard) init() {
	s.perKind = make(map[string]int64)
	s.perKindBits = make(map[string]int64)
}

// reset clears the shard for a new round (after the previous fold).
func (s *metricShard) reset() {
	s.messages = 0
	s.bits = 0
	s.honestMessages = 0
	s.honestBits = 0
	s.oversize = 0
	s.maxMessageBits = 0
	clear(s.perKind)
	clear(s.perKindBits)
	s.runKind = ""
	s.runCount = 0
	s.runBits = 0
}

// add records one on-the-wire message. Semantics mirror the sequential
// engine's accounting: totals include Byzantine senders, while the
// honest-only aggregates (and the CONGEST/size checks, which measure the
// algorithm rather than the adversary) require honest == true.
func (s *metricShard) add(kind string, bits int, honest bool, limit int) {
	s.messages++
	s.bits += int64(bits)
	if honest {
		s.honestMessages++
		s.honestBits += int64(bits)
		if bits > s.maxMessageBits {
			s.maxMessageBits = bits
		}
		if limit > 0 && bits > limit {
			s.oversize++
		}
	}
	if kind != s.runKind {
		s.flushRun()
		s.runKind = kind
	}
	s.runCount++
	s.runBits += int64(bits)
}

// addN records count identical on-the-wire messages — the shared-broadcast
// fast path, where one ToAll outbox entry becomes count wire messages of
// the same kind and size. Exactly equivalent to count consecutive add
// calls, including the run-length cache interaction.
func (s *metricShard) addN(kind string, bits int, count int64, honest bool, limit int) {
	s.messages += count
	s.bits += int64(bits) * count
	if honest {
		s.honestMessages += count
		s.honestBits += int64(bits) * count
		if bits > s.maxMessageBits {
			s.maxMessageBits = bits
		}
		if limit > 0 && bits > limit {
			s.oversize += count
		}
	}
	if kind != s.runKind {
		s.flushRun()
		s.runKind = kind
	}
	s.runCount += count
	s.runBits += int64(bits) * count
}

// flushRun spills the run-length cache into the per-kind maps.
func (s *metricShard) flushRun() {
	if s.runCount != 0 {
		s.perKind[s.runKind] += s.runCount
		s.perKindBits[s.runKind] += s.runBits
		s.runCount = 0
		s.runBits = 0
	}
}

// reset returns the accumulator to its just-constructed state, keeping
// map and slice capacity for reuse (pooled engines call it per lease).
func (m *Metrics) reset() {
	m.Messages = 0
	m.Bits = 0
	m.Rounds = 0
	m.MaxMessageBits = 0
	clear(m.PerKind)
	clear(m.PerKindBits)
	m.HonestMessages = 0
	m.HonestBits = 0
	m.CongestLimit = 0
	m.OversizeMessages = 0
}

// sizeFor allocates (or re-zeroes) the per-node counters once the
// network size is known.
func (m *Metrics) sizeFor(n int) {
	if cap(m.PerNodeSent) < n || cap(m.PerNodeReceived) < n {
		m.PerNodeSent = make([]int64, n)
		m.PerNodeReceived = make([]int64, n)
		return
	}
	m.PerNodeSent = m.PerNodeSent[:n]
	m.PerNodeReceived = m.PerNodeReceived[:n]
	for i := range m.PerNodeSent {
		m.PerNodeSent[i] = 0
		m.PerNodeReceived[i] = 0
	}
}

// MaxNodeSent returns the largest per-link send count.
func (m *Metrics) MaxNodeSent() int64 {
	var max int64
	for _, v := range m.PerNodeSent {
		if v > max {
			max = v
		}
	}
	return max
}

// MaxNodeReceived returns the largest per-link receive count.
func (m *Metrics) MaxNodeReceived() int64 {
	var max int64
	for _, v := range m.PerNodeReceived {
		if v > max {
			max = v
		}
	}
	return max
}

// Kinds returns the observed payload kinds in lexical order.
func (m *Metrics) Kinds() []string {
	kinds := make([]string, 0, len(m.PerKind))
	for k := range m.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// String renders a compact human-readable summary.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d messages=%d bits=%d maxMsgBits=%d",
		m.Rounds, m.Messages, m.Bits, m.MaxMessageBits)
	for _, k := range m.Kinds() {
		fmt.Fprintf(&b, " %s=%d", k, m.PerKind[k])
	}
	return b.String()
}
