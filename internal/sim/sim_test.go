package sim

import (
	"testing"
)

// pingPayload is a trivial test payload.
type pingPayload struct{ size int }

func (pingPayload) Kind() string { return "ping" }
func (p pingPayload) Bits() int  { return p.size }

// echoNode broadcasts pings in rounds 0..sendFor and records everything
// it receives.
type echoNode struct {
	idx, n   int
	rounds   int
	received []Message
	sendFor  int // last round in which the node still sends
}

func (e *echoNode) Step(round int, inbox []Message) Outbox {
	e.received = append(e.received, inbox...)
	e.rounds++
	if round <= e.sendFor {
		return Broadcast(e.idx, e.n, pingPayload{size: 8})
	}
	return nil
}
func (e *echoNode) Output() (int, bool) { return 0, false }
func (e *echoNode) Halted() bool        { return e.rounds > e.sendFor+1 }

func buildEcho(n, sendFor int) ([]*echoNode, []Node) {
	nodes := make([]*echoNode, n)
	simNodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &echoNode{idx: i, n: n, sendFor: sendFor}
		simNodes[i] = nodes[i]
	}
	return nodes, simNodes
}

func TestDeliveryNextRoundSorted(t *testing.T) {
	nodes, simNodes := buildEcho(5, 0)
	nw := NewNetwork(simNodes)
	nw.StepRound()
	for _, node := range nodes {
		if len(node.received) != 0 {
			t.Fatal("messages delivered in the sending round")
		}
	}
	nw.StepRound()
	for i, node := range nodes {
		if len(node.received) != 5 {
			t.Fatalf("node %d received %d", i, len(node.received))
		}
		for j, msg := range node.received {
			if msg.From != j {
				t.Fatalf("inbox not sorted by sender: %v", node.received)
			}
			// Delivered To is unspecified: a recipient bound zero-copy to a
			// shared aggregate sees the sender's sentinel. Anything other
			// than the recipient's own link or a shared sentinel is a
			// routing bug.
			if msg.To != i && msg.To >= 0 {
				t.Fatalf("misrouted message %+v for node %d", msg, i)
			}
		}
	}
}

func TestMetricsAccounting(t *testing.T) {
	_, simNodes := buildEcho(4, 1)
	nw := NewNetwork(simNodes)
	if err := nw.Run(10); err != nil {
		t.Fatal(err)
	}
	m := nw.Metrics()
	// 2 sending rounds × 4 nodes × 4 recipients.
	if m.Messages != 32 || m.HonestMessages != 32 {
		t.Fatalf("messages = %d/%d", m.Messages, m.HonestMessages)
	}
	if m.Bits != 32*8 {
		t.Fatalf("bits = %d", m.Bits)
	}
	if m.MaxMessageBits != 8 {
		t.Fatalf("max = %d", m.MaxMessageBits)
	}
	if m.PerKind["ping"] != 32 {
		t.Fatalf("perKind = %v", m.PerKind)
	}
	if len(m.Kinds()) != 1 || m.Kinds()[0] != "ping" {
		t.Fatalf("kinds = %v", m.Kinds())
	}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestByzantineMetricsExcluded(t *testing.T) {
	_, simNodes := buildEcho(4, 0)
	nw := NewNetwork(simNodes, WithByzantine([]int{1, 3}))
	nw.StepRound()
	m := nw.Metrics()
	if m.Messages != 16 {
		t.Fatalf("messages = %d", m.Messages)
	}
	if m.HonestMessages != 8 {
		t.Fatalf("honest = %d", m.HonestMessages)
	}
}

func TestCrashBeforeSend(t *testing.T) {
	nodes, simNodes := buildEcho(3, 2)
	adv := &Scheduled{orders: map[int][]CrashOrder{0: {{Node: 1}}}}
	nw := NewNetwork(simNodes, WithCrashAdversary(adv))
	nw.StepRound()
	nw.StepRound()
	if nw.Alive(1) {
		t.Fatal("node 1 should be dead")
	}
	if nw.Crashes() != 1 || nw.CrashedAt(1) != 0 {
		t.Fatalf("crash bookkeeping wrong: f=%d at=%d", nw.Crashes(), nw.CrashedAt(1))
	}
	// Node 1 crashed before sending round 0: others got 2 messages.
	for i := 0; i < 3; i++ {
		if i == 1 {
			continue
		}
		if len(nodes[i].received) != 2 {
			t.Fatalf("node %d received %d, want 2", i, len(nodes[i].received))
		}
	}
}

func TestCrashMidSendFilter(t *testing.T) {
	nodes, simNodes := buildEcho(4, 2)
	// Node 2 crashes mid-send in round 0, reaching only node 0.
	adv := &Scheduled{orders: map[int][]CrashOrder{
		0: {{Node: 2, Filter: func(to int) bool { return to == 0 }}},
	}}
	nw := NewNetwork(simNodes, WithCrashAdversary(adv))
	nw.StepRound()
	nw.StepRound()
	counts := map[int]int{}
	for i, node := range nodes {
		for _, msg := range node.received {
			if msg.From == 2 {
				counts[i]++
			}
		}
	}
	if counts[0] != 1 || counts[1] != 0 || counts[3] != 0 {
		t.Fatalf("mid-send filter leaked: %v", counts)
	}
	// The filtered messages never hit the wire: round 0 counts
	// 3 alive × 4 + 1 partial = 13, round 1 adds 3 × 4 = 12.
	if nw.Metrics().Messages != 25 {
		t.Fatalf("messages = %d, want 25", nw.Metrics().Messages)
	}
}

// Scheduled is a local test adversary (the adversary package would be an
// import cycle here).
type Scheduled struct {
	orders map[int][]CrashOrder
}

func (s *Scheduled) Crashes(view View) []CrashOrder { return s.orders[view.Round] }

func TestRunStopsWhenHalted(t *testing.T) {
	_, simNodes := buildEcho(2, 0)
	nw := NewNetwork(simNodes)
	if err := nw.Run(100); err != nil {
		t.Fatal(err)
	}
	if nw.Round() >= 100 {
		t.Fatal("did not stop early")
	}
}

func TestRunRoundLimit(t *testing.T) {
	// sendFor beyond the limit → never halts.
	_, simNodes := buildEcho(2, 1000)
	nw := NewNetwork(simNodes)
	if err := nw.Run(5); err != ErrRoundLimit {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}

func TestObserver(t *testing.T) {
	_, simNodes := buildEcho(3, 0)
	var observed []int
	nw := NewNetwork(simNodes, WithObserver(func(round int, delivered []Message) {
		observed = append(observed, len(delivered))
	}))
	if err := nw.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(observed) == 0 || observed[0] != 9 {
		t.Fatalf("observed = %v", observed)
	}
}

func TestInvalidLinkPanics(t *testing.T) {
	bad := &badNode{}
	nw := NewNetwork([]Node{bad})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid link")
		}
	}()
	nw.StepRound()
}

type badNode struct{}

func (*badNode) Step(int, []Message) Outbox {
	return Outbox{{To: 99, Payload: pingPayload{size: 1}}}
}
func (*badNode) Output() (int, bool) { return 0, false }
func (*badNode) Halted() bool        { return false }

func TestDeriveSeedStreamsDiffer(t *testing.T) {
	seen := make(map[int64]bool)
	for label := uint64(0); label < 100; label++ {
		s := DeriveSeed(42, label)
		if seen[s] {
			t.Fatalf("label %d repeats a seed", label)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 5) == DeriveSeed(2, 5) {
		t.Fatal("different run seeds collide")
	}
	if NewRand(1, 7).Uint64() != NewRand(1, 7).Uint64() {
		t.Fatal("NewRand not deterministic")
	}
}

func TestBroadcastMulticast(t *testing.T) {
	out := Broadcast(2, 4, pingPayload{size: 1})
	if len(out) != 1 || out[0].To != ToAll || out[0].From != 2 {
		t.Fatalf("broadcast not a shared ToAll entry: %v", out)
	}
	out = Multicast(0, []int{1, 3}, pingPayload{size: 1})
	if len(out) != 2 || out[0].To != 1 || out[1].To != 3 {
		t.Fatalf("multicast %v", out)
	}
}

func TestPerNodeLoad(t *testing.T) {
	_, simNodes := buildEcho(3, 0)
	nw := NewNetwork(simNodes)
	nw.StepRound()
	m := nw.Metrics()
	for i := 0; i < 3; i++ {
		if m.PerNodeSent[i] != 3 || m.PerNodeReceived[i] != 3 {
			t.Fatalf("node %d load sent=%d recv=%d", i, m.PerNodeSent[i], m.PerNodeReceived[i])
		}
	}
	if m.MaxNodeSent() != 3 || m.MaxNodeReceived() != 3 {
		t.Fatalf("max load %d/%d", m.MaxNodeSent(), m.MaxNodeReceived())
	}
}

func TestCongestLimit(t *testing.T) {
	_, simNodes := buildEcho(2, 0) // pings of 8 bits
	nw := NewNetwork(simNodes, WithCongestLimit(4))
	nw.StepRound()
	if got := nw.Metrics().OversizeMessages; got != 4 {
		t.Fatalf("oversize = %d, want 4", got)
	}
	_, simNodes = buildEcho(2, 0)
	nw = NewNetwork(simNodes, WithCongestLimit(16))
	nw.StepRound()
	if got := nw.Metrics().OversizeMessages; got != 0 {
		t.Fatalf("oversize = %d, want 0", got)
	}
}

// previewNode records whether it saw current-round messages.
type previewNode struct {
	idx, n  int
	inboxes [][]Message
}

func (p *previewNode) Step(round int, inbox []Message) Outbox {
	cp := append([]Message(nil), inbox...)
	p.inboxes = append(p.inboxes, cp)
	return Broadcast(p.idx, p.n, pingPayload{size: 2})
}
func (p *previewNode) Output() (int, bool) { return 0, false }
func (p *previewNode) Halted() bool        { return true }

func TestRushingPreview(t *testing.T) {
	honest := &previewNode{idx: 0, n: 2}
	rusher := &previewNode{idx: 1, n: 2}
	nw := NewNetwork([]Node{honest, rusher}, WithRushing([]int{1}), WithByzantine([]int{1}))
	nw.StepRound()
	// Round 0: the honest node's broadcast is previewed by the rusher in
	// the same round.
	if got := len(rusher.inboxes[0]); got != 1 {
		t.Fatalf("rusher preview = %d messages, want 1", got)
	}
	if rusher.inboxes[0][0].From != 0 {
		t.Fatalf("preview from %d", rusher.inboxes[0][0].From)
	}
	// The honest node saw nothing in round 0.
	if got := len(honest.inboxes[0]); got != 0 {
		t.Fatalf("honest inbox = %d messages in round 0", got)
	}
	nw.StepRound()
	// Round 1: honest receives both round-0 messages; rusher receives
	// them too, plus the preview of honest's round-1 broadcast.
	if got := len(honest.inboxes[1]); got != 2 {
		t.Fatalf("honest round-1 inbox = %d", got)
	}
	if got := len(rusher.inboxes[1]); got != 3 {
		t.Fatalf("rusher round-1 inbox = %d (2 delivered + 1 preview)", got)
	}
}
