// Package sim implements the synchronous message-passing substrate the
// paper's algorithms run on: a fully connected network of n nodes that
// exchange messages in lockstep rounds, an adaptive crash adversary that
// can kill nodes even mid-send, and metrics that account messages, bits,
// and rounds exactly as the paper's complexity statements do.
//
// Within a round all alive nodes step concurrently (one goroutine each)
// behind a barrier; determinism is preserved because each node only
// touches its own state and every inbox is sorted by sender before
// delivery.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrRoundLimit is returned by Network.Run when the round budget is
// exhausted before every alive node halted.
var ErrRoundLimit = errors.New("sim: round limit exceeded before all nodes halted")

// Network drives a set of nodes through synchronous rounds.
type Network struct {
	nodes   []Node
	alive   []bool
	adv     CrashAdversary
	metrics *Metrics
	inboxes [][]Message
	peek    func(node int) any

	// crashed remembers the round each node crashed in, -1 if alive.
	crashedAt []int
	byzantine []bool
	rushing   []bool
	round     int
	observer  func(round int, delivered []Message)
}

// Option configures a Network.
type Option func(*Network)

// WithCrashAdversary installs the adaptive crash adversary consulted at
// the start of every round.
func WithCrashAdversary(adv CrashAdversary) Option {
	return func(nw *Network) { nw.adv = adv }
}

// WithByzantine marks the given link indices as Byzantine so metrics can
// separate honest traffic (the algorithm's cost) from adversarial noise.
func WithByzantine(links []int) Option {
	return func(nw *Network) {
		for _, i := range links {
			if i >= 0 && i < len(nw.byzantine) {
				nw.byzantine[i] = true
			}
		}
	}
}

// WithPeek installs a state exporter that the adversary's View.Peek
// forwards to, giving adaptive adversaries visibility into node state.
func WithPeek(peek func(node int) any) Option {
	return func(nw *Network) { nw.peek = peek }
}

// WithRushing marks links as *rushing* adversaries: each round they step
// after every other node and their inbox additionally contains a preview
// of the messages honest nodes addressed to them in the *current* round —
// the standard synchronous-model power of a Byzantine node that waits for
// everyone else before speaking. Rushing nodes do not preview each other.
func WithRushing(links []int) Option {
	return func(nw *Network) {
		for _, i := range links {
			if i >= 0 && i < len(nw.rushing) {
				nw.rushing[i] = true
			}
		}
	}
}

// WithCongestLimit installs a CONGEST-model bit budget: honest messages
// larger than bits are counted in Metrics.OversizeMessages (they are
// still delivered — the simulator reports violations rather than
// truncating protocol state).
func WithCongestLimit(bits int) Option {
	return func(nw *Network) { nw.metrics.CongestLimit = bits }
}

// WithObserver installs a per-round callback invoked with the messages
// that were put on the wire this round (post crash filtering), for
// tracing and debugging. The slice must not be retained.
func WithObserver(observer func(round int, delivered []Message)) Option {
	return func(nw *Network) { nw.observer = observer }
}

// NewNetwork creates a network over the given nodes. Node i is reachable
// on link i from every node, matching the paper's complete-network model.
func NewNetwork(nodes []Node, opts ...Option) *Network {
	n := len(nodes)
	nw := &Network{
		nodes:     nodes,
		alive:     make([]bool, n),
		adv:       NoCrashes{},
		metrics:   NewMetrics(),
		inboxes:   make([][]Message, n),
		crashedAt: make([]int, n),
		byzantine: make([]bool, n),
		rushing:   make([]bool, n),
	}
	for i := range nw.alive {
		nw.alive[i] = true
		nw.crashedAt[i] = -1
	}
	nw.metrics.sizeFor(n)
	for _, opt := range opts {
		opt(nw)
	}
	return nw
}

// Metrics exposes the accumulated communication metrics.
func (nw *Network) Metrics() *Metrics { return nw.metrics }

// Alive reports whether node i is alive.
func (nw *Network) Alive(i int) bool { return nw.alive[i] }

// AliveCount returns the number of alive nodes.
func (nw *Network) AliveCount() int {
	count := 0
	for _, a := range nw.alive {
		if a {
			count++
		}
	}
	return count
}

// Crashes returns the number of nodes crashed so far — the paper's f, the
// *actual* number of failures during execution.
func (nw *Network) Crashes() int { return len(nw.alive) - nw.AliveCount() }

// CrashedAt returns the round node i crashed in, or -1 if it is alive.
func (nw *Network) CrashedAt(i int) int { return nw.crashedAt[i] }

// Round returns the number of rounds executed so far.
func (nw *Network) Round() int { return nw.round }

// StepRound executes exactly one synchronous round:
//
//  1. the adversary may crash nodes (optionally mid-send),
//  2. every alive node receives its inbox (messages sent last round,
//     sorted by sender) and produces an outbox, all nodes in parallel,
//  3. outboxes are filtered for mid-send crashes, counted, and queued
//     for delivery at the start of the next round.
func (nw *Network) StepRound() {
	n := len(nw.nodes)
	view := View{Round: nw.round, Alive: nw.cloneAlive(), Inboxes: nw.inboxes, Peek: nw.peek}
	filters := make(map[int]SendFilter)
	for _, order := range nw.adv.Crashes(view) {
		if order.Node < 0 || order.Node >= n || !nw.alive[order.Node] {
			continue
		}
		nw.alive[order.Node] = false
		nw.crashedAt[order.Node] = nw.round
		if order.Filter != nil {
			filters[order.Node] = order.Filter
		}
	}

	// Select the nodes that execute this round: all alive nodes, plus
	// mid-send crashers (whose output will be filtered).
	stepping := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if nw.alive[i] {
			stepping = append(stepping, i)
			continue
		}
		if _, midSend := filters[i]; midSend && nw.crashedAt[i] == nw.round {
			stepping = append(stepping, i)
		}
	}

	// Wave 1: every non-rushing node steps concurrently.
	outs := make([]Outbox, n)
	var wg sync.WaitGroup
	var rushers []int
	for _, i := range stepping {
		if nw.rushing[i] {
			rushers = append(rushers, i)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = nw.nodes[i].Step(nw.round, nw.inboxes[i])
		}(i)
	}
	wg.Wait()

	// Wave 2: rushing nodes step with a preview of this round's honest
	// messages addressed to them appended to their inbox.
	if len(rushers) > 0 {
		previews := make(map[int][]Message)
		for _, i := range stepping {
			if nw.rushing[i] {
				continue
			}
			filter := filters[i]
			for _, msg := range outs[i] {
				if msg.To < 0 || msg.To >= n || !nw.rushing[msg.To] {
					continue
				}
				if filter != nil && !filter(msg.To) {
					continue
				}
				msg.From = i
				previews[msg.To] = append(previews[msg.To], msg)
			}
		}
		for _, i := range rushers {
			preview := previews[i]
			sort.SliceStable(preview, func(a, b int) bool { return preview[a].From < preview[b].From })
			inbox := append(append([]Message(nil), nw.inboxes[i]...), preview...)
			outs[i] = nw.nodes[i].Step(nw.round, inbox)
		}
	}

	next := make([][]Message, n)
	for _, i := range stepping {
		filter := filters[i]
		for _, msg := range outs[i] {
			if msg.To < 0 || msg.To >= n {
				panic(fmt.Sprintf("sim: node %d sent to invalid link %d", i, msg.To))
			}
			if filter != nil && !filter(msg.To) {
				// Crashed mid-send: this message was never put on
				// the wire, so it costs nothing and arrives nowhere.
				continue
			}
			// Stamp the true sender: authenticated channels.
			msg.From = i
			nw.metrics.record(msg, !nw.byzantine[i])
			next[msg.To] = append(next[msg.To], msg)
		}
	}
	for i := range next {
		sort.SliceStable(next[i], func(a, b int) bool { return next[i][a].From < next[i][b].From })
	}
	if nw.observer != nil {
		var delivered []Message
		for i := range next {
			delivered = append(delivered, next[i]...)
		}
		nw.observer(nw.round, delivered)
	}
	nw.inboxes = next
	nw.round++
	nw.metrics.Rounds = nw.round
}

// Run executes rounds until every alive node reports Halted, or until
// maxRounds have executed, in which case it returns ErrRoundLimit.
func (nw *Network) Run(maxRounds int) error {
	for nw.round < maxRounds {
		if nw.allHalted() {
			return nil
		}
		nw.StepRound()
	}
	if nw.allHalted() {
		return nil
	}
	return ErrRoundLimit
}

func (nw *Network) allHalted() bool {
	for i, node := range nw.nodes {
		if nw.alive[i] && !node.Halted() {
			return false
		}
	}
	return true
}

func (nw *Network) cloneAlive() []bool {
	alive := make([]bool, len(nw.alive))
	copy(alive, nw.alive)
	return alive
}
