package sim

import (
	"errors"
	"runtime"
	"unsafe"
)

// ErrRoundLimit is returned by Network.Run when the round budget is
// exhausted before every alive node halted.
var ErrRoundLimit = errors.New("sim: round limit exceeded before all nodes halted")

// Network drives a set of nodes through synchronous rounds. It is a
// handle over the round engine; Close releases the engine's worker pool
// (a finalizer covers handles that are dropped without Close, so leaking
// one costs deferred goroutines, not correctness).
type Network struct {
	*engine

	// pool, when non-nil, is the Pool this handle's engine is leased
	// from: Close returns the lease instead of killing the workers.
	// released makes that hand-back once-only per handle, so a late
	// finalizer cannot un-lease an engine a newer handle holds.
	pool     *Pool
	released bool
}

// Option configures a Network.
type Option func(*engine)

// WithCrashAdversary installs the adaptive crash adversary consulted at
// the start of every round.
func WithCrashAdversary(adv CrashAdversary) Option {
	return func(e *engine) { e.adv = adv }
}

// WithByzantine marks the given link indices as Byzantine so metrics can
// separate honest traffic (the algorithm's cost) from adversarial noise.
func WithByzantine(links []int) Option {
	return func(e *engine) {
		for _, i := range links {
			if i >= 0 && i < len(e.byzantine) {
				e.byzantine[i] = true
			}
		}
	}
}

// WithPeek installs a state exporter that the adversary's View.Peek
// forwards to, giving adaptive adversaries visibility into node state.
func WithPeek(peek func(node int) any) Option {
	return func(e *engine) { e.peek = peek }
}

// WithRushing marks links as *rushing* adversaries: each round they step
// after every other node and their inbox additionally contains a preview
// of the messages honest nodes addressed to them in the *current* round —
// the standard synchronous-model power of a Byzantine node that waits for
// everyone else before speaking. Rushing nodes do not preview each other.
func WithRushing(links []int) Option {
	return func(e *engine) {
		for _, i := range links {
			if i >= 0 && i < len(e.rushing) {
				e.rushing[i] = true
			}
		}
	}
}

// WithCongestLimit installs a CONGEST-model bit budget: honest messages
// larger than bits are counted in Metrics.OversizeMessages (they are
// still delivered — the simulator reports violations rather than
// truncating protocol state).
func WithCongestLimit(bits int) Option {
	return func(e *engine) { e.metrics.CongestLimit = bits }
}

// WithObserver installs a per-round callback invoked with the messages
// that were put on the wire this round (post crash filtering), for
// tracing and debugging. The slice is reused between rounds and must not
// be retained.
func WithObserver(observer func(round int, delivered []Message)) Option {
	return func(e *engine) { e.observer = observer }
}

// RoundDigest is the rolled-up communication summary of one round, as
// handed to a WithRoundDigest callback: totals only, never per-node
// arrays, so streaming consumers stay O(1) in n.
type RoundDigest struct {
	// Round is the 0-based round the digest describes.
	Round int
	// Messages and Bits are the wire totals of the round (all senders,
	// honest and Byzantine), matching the per-round deltas of
	// Metrics.Messages and Metrics.Bits.
	Messages int64
	Bits     int64
	// PerKind counts the round's messages by payload kind. The map is
	// reused between rounds: read it during the callback, do not retain.
	PerKind map[string]int64
}

// WithRoundDigest installs a per-round callback invoked with the round's
// rolled-up communication summary, after metrics are folded. Unlike
// WithObserver it never materializes the round's delivered messages into
// one flat slice, so it is the telemetry hook of choice at large n; see
// docs/MEMORY.md.
func WithRoundDigest(fn func(RoundDigest)) Option {
	return func(e *engine) { e.digest = fn }
}

// WithRoundEnd registers a hook invoked on the coordinator at the end of
// every round, after delivery and metric folding. Hooks run sequentially
// in registration order and never concurrently with node steps — the
// natural place to reset per-round caches such as auth.Memo.
func WithRoundEnd(fn func()) Option {
	return func(e *engine) { e.roundEnd = append(e.roundEnd, fn) }
}

// WithEagerMulticast disables the interned-set shared-multicast path:
// nodes implementing SetUser get a nil registry and therefore emit
// explicit per-recipient Multicast messages instead of ToSet entries.
// Billing, delivered content and delivery order are identical either way
// — the property tests pin exactly that — so this is a testing and
// ablation knob, never a semantics knob.
func WithEagerMulticast() Option {
	return func(e *engine) { e.eagerMulticast = true }
}

// WithEngineWorkers pins the engine's worker count (shards) instead of
// the GOMAXPROCS default. Results are bit-identical at every setting —
// the determinism tests exercise exactly that — so this is a performance
// and testing knob, never a semantics knob.
func WithEngineWorkers(p int) Option {
	return func(e *engine) { e.reqWorkers = p }
}

// NewNetwork creates a network over the given nodes. Node i is reachable
// on link i from every node, matching the paper's complete-network model.
//
// The returned Network owns a worker pool; call Close when done with it.
func NewNetwork(nodes []Node, opts ...Option) *Network {
	e := newEngine(nodes)
	for _, opt := range opts {
		opt(e)
	}
	e.finishSetup()
	nw := &Network{engine: e}
	// Workers reference only the inner engine, so a dropped handle stays
	// collectable and the finalizer reclaims the pool.
	runtime.SetFinalizer(nw, (*Network).Close)
	return nw
}

// Close releases the engine: a pooled handle returns its lease to the
// Pool (workers stay parked for the next Acquire), a standalone handle
// shuts its worker pool down. Idempotent; the Network must not be
// stepped afterwards.
func (nw *Network) Close() {
	if nw.pool != nil {
		if !nw.released {
			nw.released = true
			nw.pool.release()
		}
		return
	}
	nw.engine.close()
}

// Metrics exposes the accumulated communication metrics.
func (nw *Network) Metrics() *Metrics { return nw.metrics }

// EngineMemStats reports the engine's inbox-slab footprint, for memory
// benchmarks and the docs/MEMORY.md walkthrough.
type EngineMemStats struct {
	// InboxSlabBytes is the total capacity, in bytes, of the engine's
	// message arenas (both parities, all workers).
	InboxSlabBytes int64
	// InboxSlabFills counts slab refills across the run — one per
	// (round, worker-with-traffic) pair.
	InboxSlabFills int64
}

// MemStats returns the engine's current inbox-slab footprint, summed
// over the per-worker individual slabs, the shared-aggregate slabs, and
// the merge slabs (both parities each).
func (nw *Network) MemStats() EngineMemStats {
	var ms EngineMemStats
	msgSize := int64(unsafe.Sizeof(Message{}))
	for par := range nw.slabs {
		for w := range nw.slabs[par] {
			s := &nw.slabs[par][w]
			ms.InboxSlabBytes += int64(cap(s.buf)) * msgSize
			ms.InboxSlabFills += int64(s.fills)
		}
		for w := range nw.mergeSlabs[par] {
			s := &nw.mergeSlabs[par][w]
			ms.InboxSlabBytes += int64(cap(s.buf)) * msgSize
			ms.InboxSlabFills += int64(s.fills)
		}
		s := &nw.aggSlabs[par]
		ms.InboxSlabBytes += int64(cap(s.buf)) * msgSize
		ms.InboxSlabFills += int64(s.fills)
	}
	return ms
}

// Alive reports whether node i is alive.
func (nw *Network) Alive(i int) bool { return nw.alive[i] }

// AliveCount returns the number of alive nodes.
func (nw *Network) AliveCount() int {
	count := 0
	for _, a := range nw.alive {
		if a {
			count++
		}
	}
	return count
}

// Crashes returns the number of nodes crashed so far — the paper's f, the
// *actual* number of failures during execution.
func (nw *Network) Crashes() int { return len(nw.alive) - nw.AliveCount() }

// CrashedAt returns the round node i crashed in, or -1 if it is alive.
func (nw *Network) CrashedAt(i int) int { return nw.crashedAt[i] }

// Round returns the number of rounds executed so far.
func (nw *Network) Round() int { return nw.round }

// Run executes rounds until every alive node reports Halted, or until
// maxRounds have executed, in which case it returns ErrRoundLimit.
func (nw *Network) Run(maxRounds int) error {
	for nw.round < maxRounds {
		if nw.allHalted() {
			return nil
		}
		nw.StepRound()
	}
	if nw.allHalted() {
		return nil
	}
	return ErrRoundLimit
}

func (nw *Network) allHalted() bool {
	for i, node := range nw.nodes {
		if nw.alive[i] && !node.Halted() {
			return false
		}
	}
	return true
}
