package sim

// Payload is the algorithm-specific content of a message. Implementations
// report their encoded size in bits so the simulator can account bit
// complexity honestly: an identifier from the original namespace [N] costs
// ceil(log2 N) bits, an interval endpoint in [n] costs ceil(log2 n) bits,
// and so on.
type Payload interface {
	// Kind returns a short stable name for the message type, used for
	// per-kind metric breakdowns.
	Kind() string
	// Bits returns the encoded payload size in bits.
	Bits() int
}

// ToAll is the shared-broadcast sentinel recipient: a single outbox entry
// with To == ToAll fans out to every link in the network inside the
// engine's counting-sort delivery. The payload is stored once by the
// sender; metrics still account one wire message per recipient.
const ToAll = -1

// toSetBase anchors the ToSet encoding: To == toSetBase-id addresses the
// interned recipient set id (see Sets). ToAll keeps -1, so every To < 0
// is a shared target and every To >= 0 an explicit link.
const toSetBase = -2

// ToSet encodes interned set id (from Sets.InternPhase) as a Message.To
// recipient: a single outbox entry with To == ToSet(id) is a shared
// multicast to every member of the set, billed as |set| wire messages and
// delivered through the engine's shared-aggregate layer. Like ToAll, the
// payload is stored once regardless of fan-out.
func ToSet(id int) int { return toSetBase - id }

// toSetID decodes a ToSet recipient back to its set id; only meaningful
// when to <= toSetBase.
func toSetID(to int) int { return toSetBase - to }

// Message is a single point-to-point message in the synchronous network.
// The From field is stamped by the network itself, which models message
// authentication: a Byzantine node cannot spoof another node's identity.
type Message struct {
	// From is the link index of the sender, stamped by the network.
	From int
	// To is the link index of the recipient, or a shared target (ToAll,
	// or ToSet(id) for an interned recipient set) fanned out at delivery.
	// In a *delivered* inbox, To is unspecified: a recipient bound
	// zero-copy to a shared aggregate sees the sender's sentinel, so
	// nodes must identify themselves by their own link index, never by
	// reading To. (From is always the true sender.)
	To int
	// Payload is the message content.
	Payload Payload
}

// Outbox is the set of messages a node emits in one round.
type Outbox []Message

// Broadcast emits p to every link in [0, n), the paper's "send via n
// links" primitive (this includes the sender's own link, as in the
// paper's complete-network model). n must be the network size; the
// returned outbox holds a single ToAll entry that the engine fans out at
// delivery, so a broadcast costs O(1) sender-side memory while still
// being metered as n point-to-point messages on the wire.
func Broadcast(from, n int, p Payload) Outbox {
	_ = n // fan-out width is the network size, resolved by the engine
	return Outbox{{From: from, To: ToAll, Payload: p}}
}

// Multicast appends one message carrying p to each listed recipient. The
// payload itself is shared across the entries; only the fixed-size
// headers are materialized per recipient, which is cheap at the
// committee-sized fan-outs Multicast is used for.
func Multicast(from int, to []int, p Payload) Outbox {
	out := make(Outbox, 0, len(to))
	for _, t := range to {
		out = append(out, Message{From: from, To: t, Payload: p})
	}
	return out
}
