package sim

// Payload is the algorithm-specific content of a message. Implementations
// report their encoded size in bits so the simulator can account bit
// complexity honestly: an identifier from the original namespace [N] costs
// ceil(log2 N) bits, an interval endpoint in [n] costs ceil(log2 n) bits,
// and so on.
type Payload interface {
	// Kind returns a short stable name for the message type, used for
	// per-kind metric breakdowns.
	Kind() string
	// Bits returns the encoded payload size in bits.
	Bits() int
}

// Message is a single point-to-point message in the synchronous network.
// The From field is stamped by the network itself, which models message
// authentication: a Byzantine node cannot spoof another node's identity.
type Message struct {
	// From is the link index of the sender, stamped by the network.
	From int
	// To is the link index of the recipient.
	To int
	// Payload is the message content.
	Payload Payload
}

// Outbox is the set of messages a node emits in one round.
type Outbox []Message

// Broadcast appends one message carrying p to every link in [0, n), the
// paper's "send via n links" primitive (this includes the sender's own
// link, as in the paper's complete-network model).
func Broadcast(from, n int, p Payload) Outbox {
	out := make(Outbox, 0, n)
	for to := 0; to < n; to++ {
		out = append(out, Message{From: from, To: to, Payload: p})
	}
	return out
}

// Multicast appends one message carrying p to each listed recipient.
func Multicast(from int, to []int, p Payload) Outbox {
	out := make(Outbox, 0, len(to))
	for _, t := range to {
		out = append(out, Message{From: from, To: t, Payload: p})
	}
	return out
}
