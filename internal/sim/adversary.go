package sim

// View is the adversary's window into the execution. The crash adversary
// of Section 1 ("Eve") is adaptive: it may use the full execution history
// up to the current moment to decide which nodes crash. The view exposes
// liveness, the current round, and read-only access to node state via the
// Peek callback installed by the harness.
//
// The Alive slice and the messages returned by Inbox are scratch buffers
// the engine reuses between rounds: inspect them during Crashes, do not
// retain them.
type View struct {
	// Round is the round about to execute (0-based).
	Round int
	// Alive reports, per link index, whether the node is still alive at
	// the start of the round.
	Alive []bool
	// Inbox returns the messages about to be delivered to a node this
	// round; an adaptive adversary may inspect (but not alter) them. An
	// accessor rather than a slice-of-slices: inbox views live in
	// generation-stamped slabs, and the accessor is what filters out
	// stale views of recipients that received nothing this round. May be
	// nil when constructed by hand in tests.
	Inbox func(node int) []Message
	// Peek returns an algorithm-specific snapshot of a node's state
	// (e.g. whether it is currently a committee member). It may be nil
	// when the harness installs no state exporter.
	Peek func(node int) any
}

// SendFilter decides, for a node crashed mid-send, which of its outgoing
// messages in the crash round still get delivered. The paper explicitly
// allows a node to crash "even in the middle of sending a message", so a
// crashed sender may reach an arbitrary subset of its recipients.
type SendFilter func(to int) bool

// CrashOrder instructs the network to crash one node in the current round.
type CrashOrder struct {
	// Node is the link index of the node to crash.
	Node int
	// Filter selects which of the node's round-r messages are still
	// delivered. A nil filter crashes the node before it sends anything
	// (the node's Step is not even executed this round).
	Filter SendFilter
}

// CrashAdversary is the adaptive crash adversary interface. Crashes is
// consulted at the start of every round, before any node steps.
type CrashAdversary interface {
	Crashes(view View) []CrashOrder
}

// NoCrashes is a CrashAdversary that never crashes anyone.
type NoCrashes struct{}

var _ CrashAdversary = NoCrashes{}

// Crashes implements CrashAdversary.
func (NoCrashes) Crashes(View) []CrashOrder { return nil }
