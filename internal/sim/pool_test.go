package sim

import (
	"fmt"
	"testing"
)

// poolCrasher is a deterministic adversary: it crashes one node per round
// for the first few rounds, exercising the crashedAt/alive reset paths on
// engine reuse. Stateful, so every execution builds a fresh value.
type poolCrasher struct{ budget int }

func (c *poolCrasher) Crashes(v View) []CrashOrder {
	if c.budget == 0 || v.Round >= len(v.Alive) {
		return nil
	}
	c.budget--
	return []CrashOrder{{Node: (v.Round*3 + 1) % len(v.Alive)}}
}

// runFingerprint executes one echo run over nw and digests everything an
// execution observably produces: every delivered message, final liveness,
// and the folded metrics.
func runFingerprint(t *testing.T, nw *Network, nodes []*echoNode, rounds int) string {
	t.Helper()
	defer nw.Close()
	if err := nw.Run(rounds); err != nil {
		t.Fatal(err)
	}
	out := ""
	for i, node := range nodes {
		out += fmt.Sprintf("node%d alive=%v recv=%v\n", i, nw.Alive(i), node.received)
	}
	return out + nw.Metrics().String()
}

// TestPoolMatchesFreshNetwork leases one pooled engine through a sequence
// of executions with varying sizes and worker counts — including a shrink
// after a larger run — and requires each to be identical to the same
// execution on a fresh Network. This is the reuse contract: reset +
// finishSetup must leave no observable trace of the previous run.
func TestPoolMatchesFreshNetwork(t *testing.T) {
	shapes := []struct {
		n, sendFor, workers, crashes int
	}{
		{n: 24, sendFor: 2, workers: 0, crashes: 3},
		{n: 64, sendFor: 3, workers: 4, crashes: 5},
		{n: 8, sendFor: 1, workers: 0, crashes: 0}, // shrink after a larger run
		{n: 64, sendFor: 3, workers: 1, crashes: 5},
		{n: 40, sendFor: 2, workers: 8, crashes: 0},
	}
	pool := NewPool()
	defer pool.Close()
	for _, sh := range shapes {
		opts := func() []Option {
			var o []Option
			if sh.workers > 0 {
				o = append(o, WithEngineWorkers(sh.workers))
			}
			if sh.crashes > 0 {
				o = append(o, WithCrashAdversary(&poolCrasher{budget: sh.crashes}))
			}
			return o
		}
		freshNodes, freshSim := buildEcho(sh.n, sh.sendFor)
		want := runFingerprint(t, NewNetwork(freshSim, opts()...), freshNodes, sh.sendFor+3)
		poolNodes, poolSim := buildEcho(sh.n, sh.sendFor)
		got := runFingerprint(t, pool.Acquire(poolSim, opts()...), poolNodes, sh.sendFor+3)
		if got != want {
			t.Fatalf("pooled run diverged from fresh run at shape %+v:\npooled:\n%s\nfresh:\n%s", sh, got, want)
		}
	}
}

// TestPoolLeaseFallback: acquiring while the engine is leased must not
// corrupt the outstanding lease — the second Acquire degrades to a fresh
// engine and both executions produce correct results.
func TestPoolLeaseFallback(t *testing.T) {
	pool := NewPool()
	defer pool.Close()

	nodesA, simA := buildEcho(6, 1)
	nwA := pool.Acquire(simA)
	nodesB, simB := buildEcho(6, 1)
	nwB := pool.Acquire(simB) // pool busy: falls back to a fresh engine
	if nwB.pool != nil {
		t.Fatal("second Acquire during a lease should not be pool-backed")
	}
	if err := nwA.Run(4); err != nil {
		t.Fatal(err)
	}
	if err := nwB.Run(4); err != nil {
		t.Fatal(err)
	}
	for i := range nodesA {
		if len(nodesA[i].received) != 12 || len(nodesB[i].received) != 12 {
			t.Fatalf("node %d received %d/%d, want 12/12",
				i, len(nodesA[i].received), len(nodesB[i].received))
		}
	}
	nwA.Close()
	nwB.Close()

	// The lease is back: the next Acquire reuses the pooled engine.
	_, simC := buildEcho(4, 0)
	nwC := pool.Acquire(simC)
	if nwC.pool == nil {
		t.Fatal("Acquire after release should be pool-backed")
	}
	nwC.Close()

	// Close is idempotent and a double Close must not un-lease a newer
	// handle's engine.
	nwC.Close()
	_, simD := buildEcho(4, 0)
	nwD := pool.Acquire(simD)
	nwC.Close() // stale handle: must be a no-op for nwD's lease
	if pool.leased != true {
		t.Fatal("stale handle Close released a newer lease")
	}
	nwD.Close()
	if pool.leased {
		t.Fatal("lease not returned")
	}
}

// TestPoolClosedFallsBack: a closed (or nil) pool still serves correct
// fresh networks.
func TestPoolClosedFallsBack(t *testing.T) {
	pool := NewPool()
	pool.Close()
	pool.Close() // idempotent
	nodes, simNodes := buildEcho(5, 0)
	nw := pool.Acquire(simNodes)
	if nw.pool != nil {
		t.Fatal("closed pool must hand out standalone networks")
	}
	if err := nw.Run(3); err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		if len(nodes[i].received) != 5 {
			t.Fatalf("node %d received %d, want 5", i, len(nodes[i].received))
		}
	}
	nw.Close()

	var nilPool *Pool
	nilPool.Close() // nil-safe
	_, simNodes2 := buildEcho(3, 0)
	nw2 := nilPool.Acquire(simNodes2)
	if err := nw2.Run(3); err != nil {
		t.Fatal(err)
	}
	nw2.Close()
}
