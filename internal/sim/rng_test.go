package sim

import "testing"

// TestLazyRandMatchesNewRand locks the LazyRand contract: the Float64
// stream is bit-identical to NewRand's for the same (seed, label), at
// every draw position, across many labels.
func TestLazyRandMatchesNewRand(t *testing.T) {
	for _, label := range []uint64{0, 1, 0x6372617368 << 16, 0x6372617368<<16 | 12345, ^uint64(0)} {
		ref := NewRand(42, label)
		lazy := NewLazyRand(42, label)
		for i := 0; i < 50; i++ {
			want := ref.Float64()
			got := lazy.Float64()
			if got != want {
				t.Fatalf("label %#x draw %d: LazyRand %v != NewRand %v", label, i, got, want)
			}
		}
	}
}

// TestLazyRandInterleaved checks that independent LazyRand values sharing
// the pooled scratch source do not perturb each other: interleaved draws
// from two streams match two independent reference generators.
func TestLazyRandInterleaved(t *testing.T) {
	refA, refB := NewRand(7, 100), NewRand(7, 200)
	lazyA, lazyB := NewLazyRand(7, 100), NewLazyRand(7, 200)
	for i := 0; i < 30; i++ {
		if got, want := lazyA.Float64(), refA.Float64(); got != want {
			t.Fatalf("stream A draw %d: %v != %v", i, got, want)
		}
		if i%3 == 0 {
			if got, want := lazyB.Float64(), refB.Float64(); got != want {
				t.Fatalf("stream B draw %d: %v != %v", i, got, want)
			}
		}
	}
}
