// Package sim implements the synchronous message-passing substrate the
// paper's algorithms run on: a fully connected network of n nodes that
// exchange messages in lockstep rounds, an adaptive crash adversary that
// can kill nodes even mid-send, and metrics that account messages, bits,
// and rounds exactly as the paper's complexity statements do.
//
// # Round engine
//
// Within a round, a persistent pool of workers steps contiguous node
// shards behind a barrier and routes messages through slab-backed
// per-node inbox views (a counting sort by sender). Low-traffic rounds
// adaptively collapse onto the coordinator, where barrier handshakes
// would cost more than the round's work; heavy rounds fan out across
// the pool. Either way the observable execution is identical.
//
// # Contracts the packages above rely on
//
// Shared-multicast billing: a message addressed to ToAll (broadcast) or
// ToSet (multicast to a set interned via Sets.InternPhase) is billed as
// fan-out wire messages (sent-on-the-wire semantics — a crashed
// recipient still costs the sender, as in the paper's model) but the
// payload is stored once: recipients covered by exactly one shared
// source are bound zero-copy to a shared aggregate segment, and the
// rest receive a per-recipient merge. Expansion to individual copies
// happens only under mid-send crash filters and rushing previews, in
// ascending-member order — byte-identical to eager emission (the
// WithEagerMulticast ablation pins this). Payload implementations must
// therefore be read-only after Send. Delivered To is unspecified (a
// bound view keeps the sender's sentinel); nodes identify themselves by
// their own link index, and From is always the true sender.
//
// Quiescence: a node implementing Quiescent (or registered through
// ScheduleQuiescent) vouches that, on rounds where it reports quiescent
// and its inbox is empty, Step would send nothing and change no state.
// The engine then skips the node entirely — per-round work is
// proportional to acted senders and delivered messages, not to n. The
// contract is one-sided: the engine may still step a quiescent node
// (e.g. when it has mail), so the vouch must be sound, not tight.
//
// Determinism at any worker count: every adversary decision — including
// stateful mid-send crash filters — is evaluated sequentially on the
// coordinator, nodes touch only their own state inside Step, and inbox
// views are delivered sorted by sender. Two runs with equal seeds are
// bit-identical at -workers=1 and -workers=8; the root package's
// determinism tests lock golden fingerprints at both.
//
// # Memory model
//
// Inboxes are views into two alternating per-worker slabs (round parity
// r&1) with generation stamps deciding view validity, so idle nodes
// hold no buffers and the engine's footprint tracks messages in flight,
// not n times the historical maximum. A view delivered in round r is
// valid during round r only; payload boxes written in round r may be
// reused no earlier than round r+2. Network.MemStats reports slab
// footprint; docs/MEMORY.md documents the full lifecycle and the
// scaling model.
package sim
