package sim

import (
	"fmt"
	"sync"
)

// Sets is the engine's registry of interned recipient sets — the targets
// of ToSet shared multicasts. A set is a strictly ascending list of link
// indices; interning it once lets every sender that addresses the same
// recipients store a single outbox entry (billed as |set| wire messages)
// which the engine delivers as one shared aggregate segment instead of
// |set| copies per sender.
//
// Interning is keyed: InternPhase stores at most one canonical set per
// key (first caller wins), and later callers whose membership differs —
// typically because a mid-send crash filter dropped some of the
// announcements they derived the set from — are told to fall back to an
// explicit Multicast. That keeps the registry O(#keys), bounds the
// per-round number of aggregate segments, and makes "per-recipient
// deltas only where the filter actually diverged" the natural outcome.
//
// The registry is attached to nodes implementing SetUser at setup and
// cleared per run (pooled engines re-clear it per lease). InternPhase is
// safe for concurrent use — nodes intern during the parallel step phase;
// every other engine access happens after the phase barrier.
type Sets struct {
	mu      sync.RWMutex
	n       int
	lists   [][]int32
	byKey   map[uint64]int32
	scratch any
}

// SetUser is implemented by nodes that emit ToSet shared multicasts. The
// engine calls UseSets during setup with its registry, or with nil when
// shared multicasts are disabled (WithEagerMulticast) — nodes must fall
// back to an explicit Multicast when the registry is nil or InternPhase
// declines.
type SetUser interface {
	UseSets(s *Sets)
}

// reset clears the registry for a run over n nodes, keeping capacity.
// The scratch slot is dropped so a pooled engine's next lease cannot see
// a stale aggregate keyed on recycled slab memory.
func (s *Sets) reset(n int) {
	s.n = n
	s.lists = s.lists[:0]
	if s.byKey == nil {
		s.byKey = make(map[uint64]int32)
	} else {
		clear(s.byKey)
	}
	s.scratch = nil
}

// Scratch returns the registry's run-wide shared scratch slot, creating
// it with mk on first use. SetUser nodes use it to share derived state
// across the whole node population — e.g. the crash path's convergecast
// aggregate, computed once per committee round by whichever member
// steps first and consumed by the rest (see core.committeeAggregate).
// Safe for concurrent use; cleared at run reset.
func (s *Sets) Scratch(mk func() any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scratch == nil {
		s.scratch = mk()
	}
	return s.scratch
}

// InternPhase interns members under key and returns the set id to embed
// via ToSet. The first caller per key stores the canonical membership (a
// copy — the argument is not retained); every later caller is compared
// against it and receives ok == false on any difference, in which case
// it must send an explicit Multicast instead. Members must be strictly
// ascending link indices; an empty slice is never interned.
func (s *Sets) InternPhase(key uint64, members []int) (int, bool) {
	if len(members) == 0 {
		return 0, false
	}
	s.mu.RLock()
	if id, ok := s.byKey[key]; ok {
		canon := s.lists[id]
		s.mu.RUnlock()
		return int(id), membersEqual(canon, members)
	}
	s.mu.RUnlock()
	s.mu.Lock()
	if id, ok := s.byKey[key]; ok {
		canon := s.lists[id]
		s.mu.Unlock()
		return int(id), membersEqual(canon, members)
	}
	prev := -1
	list := make([]int32, len(members))
	for i, m := range members {
		if m < 0 || m >= s.n {
			s.mu.Unlock()
			panic(fmt.Sprintf("sim: ToSet member %d outside [0,%d)", m, s.n))
		}
		if m <= prev {
			s.mu.Unlock()
			panic(fmt.Sprintf("sim: ToSet members must be strictly ascending (got %d after %d)", m, prev))
		}
		prev = m
		list[i] = int32(m)
	}
	id := int32(len(s.lists))
	s.lists = append(s.lists, list)
	s.byKey[key] = id
	s.mu.Unlock()
	return int(id), true
}

// membersOf returns the canonical membership of set id, ascending. The
// engine calls it only between phase barriers, never concurrently with
// InternPhase.
func (s *Sets) membersOf(id int) []int32 {
	return s.lists[id]
}

// valid reports whether id names an interned set.
func (s *Sets) valid(id int) bool {
	return s != nil && id >= 0 && id < len(s.lists)
}

func membersEqual(canon []int32, members []int) bool {
	if len(canon) != len(members) {
		return false
	}
	for i, m := range members {
		if int(canon[i]) != m {
			return false
		}
	}
	return true
}

// containsMember reports whether the ascending list holds link to.
func containsMember(list []int32, to int) bool {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(list[mid]) < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(list) && int(list[lo]) == to
}

// lowerBound returns the first index of the ascending list with value
// >= to — the start of a worker's member range.
func lowerBound(list []int32, to int) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(list[mid]) < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
