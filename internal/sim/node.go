package sim

// Node is a participant in the synchronous message-passing network.
//
// The execution model matches Section 1 of the paper: all nodes are
// activated simultaneously and proceed in lockstep rounds. In round r a
// node first receives every message that was sent to it in round r-1
// (its inbox), then sends its own messages for round r. The network calls
// Step once per round with the inbox sorted by sender link; Step must only
// touch the node's own state, because all alive nodes step concurrently.
type Node interface {
	// Step executes one synchronous round and returns the messages the
	// node sends this round. round counts from 0.
	//
	// Buffer ownership, both directions: the inbox slice is reused by the
	// engine between rounds, so a node that needs messages later must
	// copy the Message values out; symmetrically, the engine does not
	// retain the returned Outbox past the round, so a node may reuse one
	// outbox buffer across rounds to avoid per-round allocation.
	Step(round int, inbox []Message) Outbox

	// Output returns the node's decided new identity. ok is false while
	// the node is still undecided. A decided node may keep participating
	// (e.g. committee members keep serving other nodes after deciding).
	Output() (id int, ok bool)

	// Halted reports that the node will never send another message, so
	// the network can stop early once every alive node has halted.
	Halted() bool
}

// Quiescent is an optional Node extension for large sweeps. A node whose
// *current* state guarantees that a Step call with an EMPTY inbox would
// be a pure no-op — no state change, no output, no randomness consumed,
// the round number ignored — reports true, and the engine elides the
// call entirely that round. Eliding such a call is observationally
// identical to making it (it could only have returned an empty outbox),
// so telemetry is bit-identical; the interface merely lets a node
// vouch for that, since the engine cannot prove it. Nodes whose idle
// rounds have side effects (round counters, timers, randomness) must
// not implement it, or must return false in those states.
type Quiescent interface {
	Quiescent() bool
}

// ScheduleQuiescent is the round-aware variant of Quiescent for
// protocols built on a fixed round schedule, where whether an empty
// inbox is meaningful depends on the position within the schedule. The
// crash-renaming node is the motivating case: an empty inbox in a
// send-status or committee round is provably a no-op (nothing to
// report, nothing to decide), but an empty inbox at the start of a
// phase is the committee-wipe signal that doubles the re-election
// probability — a state change plus a random draw, which must never be
// elided. QuiescentAt(round) reports that a Step call at exactly that
// round with an EMPTY inbox would be a pure no-op, under the same
// obligations as Quiescent; the engine asks with the round it is about
// to execute. A node may implement either interface or both (elision
// happens if either vouches).
type ScheduleQuiescent interface {
	QuiescentAt(round int) bool
}
