package sim

// Node is a participant in the synchronous message-passing network.
//
// The execution model matches Section 1 of the paper: all nodes are
// activated simultaneously and proceed in lockstep rounds. In round r a
// node first receives every message that was sent to it in round r-1
// (its inbox), then sends its own messages for round r. The network calls
// Step once per round with the inbox sorted by sender link; Step must only
// touch the node's own state, because all alive nodes step concurrently.
type Node interface {
	// Step executes one synchronous round and returns the messages the
	// node sends this round. round counts from 0.
	//
	// Buffer ownership, both directions: the inbox slice is reused by the
	// engine between rounds, so a node that needs messages later must
	// copy the Message values out; symmetrically, the engine does not
	// retain the returned Outbox past the round, so a node may reuse one
	// outbox buffer across rounds to avoid per-round allocation.
	Step(round int, inbox []Message) Outbox

	// Output returns the node's decided new identity. ok is false while
	// the node is still undecided. A decided node may keep participating
	// (e.g. committee members keep serving other nodes after deciding).
	Output() (id int, ok bool)

	// Halted reports that the node will never send another message, so
	// the network can stop early once every alive node has halted.
	Halted() bool
}

// Quiescent is an optional Node extension for large sweeps. A node whose
// *current* state guarantees that a Step call with an EMPTY inbox would
// be a pure no-op — no state change, no output, no randomness consumed,
// the round number ignored — reports true, and the engine elides the
// call entirely that round. Eliding such a call is observationally
// identical to making it (it could only have returned an empty outbox),
// so telemetry is bit-identical; the interface merely lets a node
// vouch for that, since the engine cannot prove it. Nodes whose idle
// rounds have side effects (round counters, timers, randomness) must
// not implement it, or must return false in those states.
type Quiescent interface {
	Quiescent() bool
}
