package sim

import "testing"

// BenchmarkRound measures the simulator's per-round cost at an all-to-all
// communication load — the framework overhead underneath every
// experiment.
func BenchmarkRound(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(nName(n), func(b *testing.B) {
			nodes := make([]Node, n)
			for i := range nodes {
				nodes[i] = &chatterNode{idx: i, n: n}
			}
			nw := NewNetwork(nodes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nw.StepRound()
			}
			b.ReportMetric(float64(nw.Metrics().Messages)/float64(b.N), "msgs/round")
		})
	}
}

func nName(n int) string {
	if n == 64 {
		return "n=64"
	}
	return "n=256"
}

// chatterNode broadcasts every round forever.
type chatterNode struct{ idx, n int }

func (c *chatterNode) Step(round int, inbox []Message) Outbox {
	return Broadcast(c.idx, c.n, pingPayload{size: 32})
}
func (c *chatterNode) Output() (int, bool) { return 0, false }
func (c *chatterNode) Halted() bool        { return false }
