package sim

import (
	"fmt"
	"testing"
)

// BenchmarkStepRound measures the engine's per-round cost — the framework
// overhead underneath every experiment — across the two traffic shapes
// the algorithms produce: "dense" is the all-to-all load of the
// baselines (Θ(n²) messages per round), "sparse" is the committee-style
// load of the paper's algorithms (Θ(n·log n) messages per round). The CI
// smoke job runs this at -benchtime 1x to catch engine regressions.
func BenchmarkStepRound(b *testing.B) {
	dense := []int{64, 256, 1024, 4096}
	sparse := []int{1024, 4096, 32768}
	for _, n := range dense {
		n := n
		b.Run(fmt.Sprintf("dense/n=%d", n), func(b *testing.B) {
			benchRounds(b, chatterNodes(n))
		})
	}
	for _, n := range sparse {
		n := n
		b.Run(fmt.Sprintf("sparse/n=%d", n), func(b *testing.B) {
			benchRounds(b, sparseNodes(n))
		})
	}
}

func benchRounds(b *testing.B, nodes []Node) {
	nw := NewNetwork(nodes)
	defer nw.Close()
	// Warm two rounds so both halves of the engine's double-buffered
	// inboxes have grown to steady-state capacity — after that, the
	// allocation counter sees only genuine per-round costs.
	nw.StepRound()
	nw.StepRound()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.StepRound()
	}
	b.ReportMetric(float64(nw.Metrics().Messages)/float64(nw.Round()), "msgs/round")
}

func chatterNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &chatterNode{idx: i, n: n}
	}
	return nodes
}

// chatterNode broadcasts every round forever, reusing its outbox buffer
// (the engine does not retain outboxes past the round — see Node).
type chatterNode struct {
	idx, n int
	out    Outbox
}

func (c *chatterNode) Step(round int, inbox []Message) Outbox {
	if c.out == nil {
		c.out = Broadcast(c.idx, c.n, pingPayload{size: 32})
	}
	return c.out
}
func (c *chatterNode) Output() (int, bool) { return 0, false }
func (c *chatterNode) Halted() bool        { return false }

func sparseNodes(n int) []Node {
	fanout := 1
	for v := n - 1; v > 0; v >>= 1 {
		fanout++
	}
	fanout *= 2 // ~2·log2 n peers, the committee-style load
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &sparseNode{idx: i, n: n, fanout: fanout}
	}
	return nodes
}

// sparseNode multicasts to a deterministic stride of ~2·log2 n peers,
// reusing its outbox buffer across rounds.
type sparseNode struct {
	idx, n, fanout int
	out            Outbox
}

func (s *sparseNode) Step(round int, inbox []Message) Outbox {
	if s.out == nil {
		s.out = make(Outbox, 0, s.fanout)
		for k := 0; k < s.fanout; k++ {
			to := (s.idx + 1 + k*(s.n/s.fanout+1)) % s.n
			s.out = append(s.out, Message{From: s.idx, To: to, Payload: pingPayload{size: 32}})
		}
	}
	return s.out
}
func (s *sparseNode) Output() (int, bool) { return 0, false }
func (s *sparseNode) Halted() bool        { return false }
