package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
)

// pongPayload is a second payload kind so the per-kind run-length cache
// sees kind transitions.
type pongPayload struct{ size int }

func (pongPayload) Kind() string { return "pong" }
func (p pongPayload) Bits() int  { return p.size }

// detNode is a deterministic chaotic node: its state is a hash of every
// inbox it has seen, and its outbox (recipients, sizes, kinds) is a pure
// function of that state. Any deviation in delivery order, filtering, or
// preview content diverges the state hash and cascades.
type detNode struct {
	idx, n int
	state  uint64
}

func (d *detNode) Step(round int, inbox []Message) Outbox {
	h := d.state*1099511628211 + uint64(round)
	for _, msg := range inbox {
		h = (h ^ uint64(msg.From)) * 1099511628211
		h = (h ^ uint64(msg.Payload.Bits())) * 1099511628211
	}
	d.state = h
	var out Outbox
	fan := int(h%5) + 1
	for k := 0; k < fan; k++ {
		to := int((h >> (4 * k)) % uint64(d.n))
		size := int((h>>(3*k))%40) + 1
		if k%2 == 0 {
			out = append(out, Message{To: to, Payload: pingPayload{size: size}})
		} else {
			out = append(out, Message{To: to, Payload: pongPayload{size: size}})
		}
	}
	return out
}
func (d *detNode) Output() (int, bool) { return int(d.state), true }
func (d *detNode) Halted() bool        { return false }

// sharedRNGAdversary crashes two nodes per round in rounds 2..9, giving
// the first a mid-send filter that memoizes per-recipient coin flips from
// a *shared* rng — the statefulness pattern of adversary.randomHalfFilter
// that forces filter evaluation into a deterministic sequential order.
type sharedRNGAdversary struct{ rng *rand.Rand }

func (a *sharedRNGAdversary) Crashes(v View) []CrashOrder {
	if v.Round < 2 || v.Round > 9 {
		return nil
	}
	var orders []CrashOrder
	for i := 0; len(orders) < 2 && i < len(v.Alive); i++ {
		idx := (v.Round*7 + i*13) % len(v.Alive)
		if !v.Alive[idx] {
			continue
		}
		order := CrashOrder{Node: idx}
		if len(orders) == 0 {
			decided := make(map[int]bool)
			rng := a.rng
			order.Filter = func(to int) bool {
				if v, ok := decided[to]; ok {
					return v
				}
				keep := rng.Intn(2) == 0
				decided[to] = keep
				return keep
			}
		}
		orders = append(orders, order)
	}
	return orders
}

// runDetScenario executes a fixed adversarial scenario (crashes with
// shared-rng mid-send filters, Byzantine and rushing links, a CONGEST
// budget, an observer) at the given engine worker count and returns a
// fingerprint of everything observable: the per-round wire stream, final
// node states, crash schedule, and every metric.
func runDetScenario(t *testing.T, workers int) string {
	t.Helper()
	const n = 48
	nodes := make([]*detNode, n)
	simNodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &detNode{idx: i, n: n, state: uint64(i) + 1}
		simNodes[i] = nodes[i]
	}
	wire := fnv.New64a()
	nw := NewNetwork(simNodes,
		WithCrashAdversary(&sharedRNGAdversary{rng: rand.New(rand.NewSource(42))}),
		WithByzantine([]int{3, 17, 31}),
		WithRushing([]int{3, 17}),
		WithCongestLimit(24),
		WithEngineWorkers(workers),
		WithObserver(func(round int, delivered []Message) {
			fmt.Fprintf(wire, "r%d:", round)
			for _, msg := range delivered {
				fmt.Fprintf(wire, "%d>%d/%s/%d;", msg.From, msg.To, msg.Payload.Kind(), msg.Payload.Bits())
			}
		}))
	defer nw.Close()
	for r := 0; r < 16; r++ {
		nw.StepRound()
	}
	m := nw.Metrics()
	fp := fmt.Sprintf("wire=%x %s honest=%d/%d oversize=%d sent=%v recv=%v",
		wire.Sum64(), m, m.HonestMessages, m.HonestBits, m.OversizeMessages,
		m.PerNodeSent, m.PerNodeReceived)
	for i := range nodes {
		fp += fmt.Sprintf(" s%d=%x@%d", i, nodes[i].state, nw.CrashedAt(i))
	}
	return fp
}

// TestEngineDeterministicAcrossWorkers is the tentpole safety net: the
// sharded engine must produce bit-identical executions at every worker
// count, including stateful mid-send crash filters, rushing previews,
// and the full metrics fold.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	want := runDetScenario(t, 1)
	for _, p := range []int{2, 3, 5, 8, 64} {
		if got := runDetScenario(t, p); got != want {
			t.Fatalf("workers=%d diverged from workers=1:\n got %s\nwant %s", p, got, want)
		}
	}
}

// TestEngineWorkerClamp checks that worker counts beyond n (or absurd
// values) clamp to a full shard cover: every node belongs to exactly one
// shard and the simulation still runs.
func TestEngineWorkerClamp(t *testing.T) {
	_, simNodes := buildEcho(3, 0)
	nw := NewNetwork(simNodes, WithEngineWorkers(16))
	defer nw.Close()
	if nw.workers != 3 {
		t.Fatalf("workers = %d, want clamp to n = 3", nw.workers)
	}
	covered := 0
	for w := 0; w < nw.workers; w++ {
		covered += nw.shardHi[w] - nw.shardLo[w]
	}
	if covered != 3 {
		t.Fatalf("shards cover %d nodes, want 3", covered)
	}
	nw.StepRound()
	nw.StepRound()
	if nw.Metrics().Messages != 9 {
		t.Fatalf("messages = %d, want 9", nw.Metrics().Messages)
	}
}

// TestCloseIdempotent checks that Close can be called repeatedly (defer +
// finalizer both run) without panicking or deadlocking.
func TestCloseIdempotent(t *testing.T) {
	_, simNodes := buildEcho(4, 0)
	nw := NewNetwork(simNodes, WithEngineWorkers(2))
	nw.StepRound()
	nw.Close()
	nw.Close()
}

// TestInvalidLinkPanicsParallel mirrors TestInvalidLinkPanics at a
// multi-worker count: a worker-shard panic must propagate to the
// StepRound caller, not kill the process from a bare goroutine.
func TestInvalidLinkPanicsParallel(t *testing.T) {
	nodes := []Node{&badNode{}, &badNode{}, &badNode{}, &badNode{}}
	nw := NewNetwork(nodes, WithEngineWorkers(4))
	defer nw.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid link")
		}
	}()
	nw.StepRound()
}
