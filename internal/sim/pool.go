package sim

import "runtime"

// Pool owns one reusable round engine. Building a Network is cheap in
// principle, but every NewNetwork call re-allocates the per-node tables,
// per-worker counters, and inbox slab arenas, and spawns a fresh worker
// pool — for callers that run many short executions back to back (the
// long-lived renaming service runs one per epoch), that setup dominates
// the run itself. Acquire leases the pooled engine instead: reset wipes
// the per-run state but keeps every allocation and every parked worker
// goroutine, so steady-state executions reuse them all.
//
// The lease contract is strictly serial: one outstanding Network per
// Pool. Acquire while the engine is leased (or after Close, or on a nil
// Pool) degrades gracefully to a fresh NewNetwork, so correctness never
// depends on disciplined Release — only reuse does. Pooled executions
// are bit-identical to fresh ones; the pooled-vs-fresh determinism test
// pins that.
type Pool struct {
	eng    *engine
	leased bool
	closed bool
}

// NewPool returns an empty pool. Call Close to release the engine's
// worker goroutines; a finalizer covers pools dropped without Close.
func NewPool() *Pool {
	p := &Pool{}
	runtime.SetFinalizer(p, (*Pool).Close)
	return p
}

// Acquire returns a Network over nodes, backed by the pooled engine when
// it is free and by a fresh one otherwise (nil pool, closed pool, or an
// earlier lease still outstanding). Closing the returned Network returns
// the engine to the pool instead of killing its workers.
func (p *Pool) Acquire(nodes []Node, opts ...Option) *Network {
	if p == nil || p.closed || p.leased {
		return NewNetwork(nodes, opts...)
	}
	if p.eng == nil {
		p.eng = &engine{}
	}
	e := p.eng
	e.reset(nodes)
	for _, opt := range opts {
		opt(e)
	}
	e.finishSetup()
	p.leased = true
	// The pool pointer lives on the Network handle, not the engine:
	// worker goroutines reference the engine, and an engine→pool edge
	// would keep the Pool reachable forever, so its finalizer could
	// never reclaim the workers.
	nw := &Network{engine: e, pool: p}
	runtime.SetFinalizer(nw, (*Network).Close)
	return nw
}

// release returns the engine to the pool; called by Network.Close. If
// the pool was closed while the lease was outstanding, the engine's
// workers are torn down now instead.
func (p *Pool) release() {
	p.leased = false
	if p.closed && p.eng != nil {
		p.eng.close()
	}
}

// Close shuts down the pooled engine's worker goroutines. Idempotent and
// nil-safe. An outstanding lease keeps working: its engine is torn down
// when that Network is closed (or collected) rather than immediately.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	if !p.leased && p.eng != nil {
		p.eng.close()
	}
	runtime.SetFinalizer(p, nil)
}
