package sim

import (
	"math/rand"
	"sync"
)

// SplitMix64 advances the SplitMix64 generator state once and returns the
// next output. It is used to derive statistically independent sub-seeds
// (per-node PRNGs, adversary PRNG, shared-randomness beacon) from a single
// run seed so that an entire execution is reproducible from one integer.
func SplitMix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically mixes a run seed with a stream label. Distinct
// labels yield independent-looking streams for the same run seed.
func DeriveSeed(seed int64, label uint64) int64 {
	mixed := SplitMix64(uint64(seed) ^ SplitMix64(label))
	return int64(mixed)
}

// NewRand returns a deterministic PRNG for the given run seed and stream
// label. Every stochastic component of an execution draws from its own
// labelled stream, so adding randomness to one component never perturbs
// another.
func NewRand(seed int64, label uint64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(seed, label)))
}

// lazySources pools the scratch math/rand sources LazyRand replays its
// stream on. One source serves any number of LazyRand values: every draw
// reseeds it from scratch, so no stream state survives between borrows.
var lazySources = sync.Pool{
	New: func() any { return rand.NewSource(0) },
}

// LazyRand is a memory-sparse stand-in for a per-node
// rand.New(rand.NewSource(DeriveSeed(seed, label))): it produces the
// bit-identical Float64 stream while holding only the derived seed and a
// draw counter (16 bytes) instead of the source's ~4.9 KiB
// lagged-Fibonacci table. At n = 2^20 nodes that retires ~5 GiB of
// resident generator state.
//
// The trade is recompute-on-draw: each Float64 borrows a pooled scratch
// source, reseeds it, and fast-forwards past the draws already consumed.
// That costs O(seed init + draws) per call, which is the right trade
// exactly when draws per node are rare — the crash algorithm draws once
// at activation and once per committee wipe or p-adoption, so a node
// makes O(log n) draws over a whole execution.
//
// The zero value is invalid; construct with NewLazyRand. Not safe for
// concurrent use (like rand.Rand), which matches the engine contract
// that a node's state is only touched by its own Step.
type LazyRand struct {
	seed  int64
	draws uint32
}

// NewLazyRand returns the lazy equivalent of NewRand(seed, label).
func NewLazyRand(seed int64, label uint64) LazyRand {
	return LazyRand{seed: DeriveSeed(seed, label)}
}

// Float64 returns the next value of the underlying stream, bit-identical
// to NewRand(seed, label).Float64() at the same draw position — including
// math/rand's resample-on-1.0 loop, which is why the draw counter tracks
// raw Int63 outputs rather than returned values.
func (r *LazyRand) Float64() float64 {
	src := lazySources.Get().(rand.Source)
	src.Seed(r.seed)
	for i := uint32(0); i < r.draws; i++ {
		src.Int63()
	}
	// Replicate rand.(*Rand).Float64 exactly: resample in the (1 in 2^53)
	// case where rounding lands on 1.0.
	var f float64
	for {
		f = float64(src.Int63()) / (1 << 63)
		r.draws++
		if f != 1 {
			break
		}
	}
	lazySources.Put(src)
	return f
}
