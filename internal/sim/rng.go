package sim

import "math/rand"

// SplitMix64 advances the SplitMix64 generator state once and returns the
// next output. It is used to derive statistically independent sub-seeds
// (per-node PRNGs, adversary PRNG, shared-randomness beacon) from a single
// run seed so that an entire execution is reproducible from one integer.
func SplitMix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically mixes a run seed with a stream label. Distinct
// labels yield independent-looking streams for the same run seed.
func DeriveSeed(seed int64, label uint64) int64 {
	mixed := SplitMix64(uint64(seed) ^ SplitMix64(label))
	return int64(mixed)
}

// NewRand returns a deterministic PRNG for the given run seed and stream
// label. Every stochastic component of an execution draws from its own
// labelled stream, so adding randomness to one component never perturbs
// another.
func NewRand(seed int64, label uint64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(seed, label)))
}
