package sim

import (
	"fmt"
	"strings"
	"testing"
)

// castNode is the ToSet property-test node: depending on its role it
// emits shared multicasts through the interned-set registry (falling
// back to explicit Multicast when the registry is nil — the
// eager-multicast ablation), shared broadcasts, explicit unicasts, or a
// mixed outbox of both shared kinds. Every node records what it
// receives, keyed by round, so runs can be fingerprinted and compared
// across representations and worker counts.
type castNode struct {
	idx, n  int
	sets    *Sets
	sendFor int
	round   int
	// log is node-owned (Step runs concurrently across workers); the
	// test concatenates the per-node logs in link order after the run.
	log strings.Builder

	setKey  uint64 // group id for InternPhase keying; 0 = not a set sender
	members []int  // ToSet target set (ascending)
	toAllOn func(round int) bool
	unicast []int // explicit unicast targets
}

func (c *castNode) UseSets(reg *Sets) { c.sets = reg }

func (c *castNode) Step(round int, inbox []Message) Outbox {
	for _, msg := range inbox {
		// Delivered To is unspecified (bound views keep the sender's
		// sentinel), so the fingerprint records only sender and content.
		fmt.Fprintf(&c.log, "r%d n%d<-%d:%s/%d;", round, c.idx, msg.From, msg.Payload.Kind(), msg.Payload.Bits())
	}
	c.round = round
	if round > c.sendFor {
		return nil
	}
	var out Outbox
	payload := pingPayload{size: 8 + c.idx}
	if c.setKey != 0 {
		out = append(out, c.castSet(round, payload)...)
	}
	if c.toAllOn != nil && c.toAllOn(round) {
		out = append(out, Message{From: c.idx, To: ToAll, Payload: payload})
	}
	for _, to := range c.unicast {
		out = append(out, Message{From: c.idx, To: to, Payload: payload})
	}
	return out
}

// castSet emits the node's multicast: one shared ToSet entry when the
// registry interned the set, the eagerly-expanded equivalent otherwise.
func (c *castNode) castSet(round int, payload Payload) Outbox {
	if c.sets != nil {
		if id, ok := c.sets.InternPhase(uint64(round)<<8|c.setKey, c.members); ok {
			return Outbox{{From: c.idx, To: ToSet(id), Payload: payload}}
		}
	}
	return Multicast(c.idx, c.members, payload)
}

func (c *castNode) Output() (int, bool) { return 0, false }
func (c *castNode) Halted() bool        { return c.round > c.sendFor+1 }

// runCastFleet executes the mixed-traffic scenario and returns its full
// delivery fingerprint plus billed totals. The scenario covers every
// shared-aggregate code path: zero-copy binds (recipients covered by one
// set and nothing else), k-way merges (recipients in overlapping sets,
// explicit unicasts on top, periodic ToAll rounds), mixed outbox
// pre-expansion, mid-send crash filtering of a ToSet sender, and a
// rushing Byzantine previewer inside a target set.
func runCastFleet(t *testing.T, workers int, eager bool) (string, int64, int64) {
	t.Helper()
	const n = 12
	nodes := make([]*castNode, n)
	simNodes := make([]Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = &castNode{idx: i, n: n, sendFor: 4}
		simNodes[i] = nodes[i]
	}
	// Group A (senders 0-3) multicasts to {4,5,6}; group B (senders 4-6)
	// to {5,8,9}. Node 5 sits in both sets (merge); nodes 4 and 6 are
	// covered by A alone (bind on ToAll-free rounds); node 7 unicasts
	// into the overlap; node 8 broadcasts every third round (classify
	// everyone); node 10 emits the mixed ToSet+ToAll outbox; node 9 is a
	// rushing Byzantine member of set B.
	for i := 0; i <= 3; i++ {
		nodes[i].setKey, nodes[i].members = 1, []int{4, 5, 6}
	}
	for i := 4; i <= 6; i++ {
		nodes[i].setKey, nodes[i].members = 2, []int{5, 8, 9}
	}
	nodes[7].unicast = []int{5, 6, 10}
	nodes[8].toAllOn = func(round int) bool { return round%3 == 0 }
	nodes[10].setKey, nodes[10].members = 3, []int{0, 1}
	nodes[10].toAllOn = func(round int) bool { return round%2 == 1 }

	adv := &Scheduled{orders: map[int][]CrashOrder{
		// Round 1: set-A sender 1 crashes mid-send, reaching only even
		// links — the ToSet entry must expand through the filter.
		1: {{Node: 1, Filter: func(to int) bool { return to%2 == 0 }}},
		// Round 2: set-B sender 4 crashes before sending.
		2: {{Node: 4}},
	}}
	opts := []Option{
		WithCrashAdversary(adv),
		WithByzantine([]int{9}),
		WithRushing([]int{9}),
		WithEngineWorkers(workers),
	}
	if eager {
		opts = append(opts, WithEagerMulticast())
	}
	nw := NewNetwork(simNodes, opts...)
	defer nw.Close()
	if err := nw.Run(8); err != nil {
		t.Fatalf("workers=%d eager=%v: %v", workers, eager, err)
	}
	m := nw.Metrics()
	var log strings.Builder
	for i := 0; i < n; i++ {
		log.WriteString(nodes[i].log.String())
	}
	fmt.Fprintf(&log, "msgs=%d bits=%d honest=%d/%d kinds=%v;", m.Messages, m.Bits, m.HonestMessages, m.HonestBits, m.PerKind)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&log, "load%d=%d/%d;", i, m.PerNodeSent[i], m.PerNodeReceived[i])
	}
	return log.String(), m.Messages, m.Bits
}

// TestToSetSharedVsEagerFingerprint pins that the shared ToSet
// representation is observationally invisible: the complete delivery
// fingerprint (every node's received senders/contents in order, billed
// totals, per-node load) matches the eagerly-expanded run byte for
// byte, at 1 worker (coordinator-only paths) and 4 workers (sharded
// count/scatter/merge with cross-worker segments), under mid-send
// filters and a rushing previewer.
func TestToSetSharedVsEagerFingerprint(t *testing.T) {
	base, msgs, bits := runCastFleet(t, 1, false)
	if msgs == 0 || bits == 0 {
		t.Fatal("scenario produced no traffic")
	}
	for _, workers := range []int{1, 4} {
		for _, eager := range []bool{false, true} {
			if workers == 1 && !eager {
				continue
			}
			got, gotMsgs, gotBits := runCastFleet(t, workers, eager)
			if gotMsgs != msgs || gotBits != bits {
				t.Errorf("workers=%d eager=%v: billed %d msgs/%d bits, want %d/%d",
					workers, eager, gotMsgs, gotBits, msgs, bits)
			}
			if got != base {
				t.Errorf("workers=%d eager=%v: delivery fingerprint diverges from shared 1-worker run", workers, eager)
			}
		}
	}
}
