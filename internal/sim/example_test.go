package sim_test

import (
	"fmt"

	"renaming/internal/sim"
)

// maxNode is a three-line protocol: broadcast your value once, then
// output the maximum value heard. It shows the substrate's shape — a
// Step function fed last round's inbox, a Halted predicate, and metrics
// for free.
type maxNode struct {
	idx, n, val int
	out         int
	done        bool
}

type valPayload struct{ v int }

func (valPayload) Kind() string { return "val" }
func (valPayload) Bits() int    { return 8 }

func (m *maxNode) Step(round int, inbox []sim.Message) sim.Outbox {
	if round == 0 {
		return sim.Broadcast(m.idx, m.n, valPayload{v: m.val})
	}
	for _, msg := range inbox {
		if p, ok := msg.Payload.(valPayload); ok && p.v > m.out {
			m.out = p.v
		}
	}
	m.done = true
	return nil
}
func (m *maxNode) Output() (int, bool) { return m.out, m.done }
func (m *maxNode) Halted() bool        { return m.done }

// Example runs the one-shot maximum protocol on the simulator.
func Example() {
	vals := []int{4, 17, 9}
	nodes := make([]sim.Node, len(vals))
	maxes := make([]*maxNode, len(vals))
	for i, v := range vals {
		maxes[i] = &maxNode{idx: i, n: len(vals), val: v}
		nodes[i] = maxes[i]
	}
	nw := sim.NewNetwork(nodes)
	if err := nw.Run(10); err != nil {
		fmt.Println("error:", err)
		return
	}
	out, _ := maxes[0].Output()
	fmt.Println("max:", out)
	fmt.Println("messages:", nw.Metrics().Messages)
	// Output:
	// max: 17
	// messages: 9
}
