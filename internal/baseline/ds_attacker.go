package baseline

import (
	"renaming/internal/auth"
	"renaming/internal/consensus"
	"renaming/internal/sim"
)

// DSEquivocator attacks the consensus-broadcast baseline: in round 0 it
// signs two different values for its own broadcast instance and sends one
// to each half of the network, then never relays anything. Dolev–Strong
// guarantees every correct node ends with *both* values accepted for its
// instance and outputs ⊥ consistently — the attacker merely removes
// itself from the renaming.
type DSEquivocator struct {
	idx, n int
	cfg    ConsensusRenameConfig
	signer auth.Signer
	sent   bool
}

var _ sim.Node = (*DSEquivocator)(nil)

// NewDSEquivocator constructs the attacker at link idx. It receives only
// its own signer, like every node.
func NewDSEquivocator(cfg ConsensusRenameConfig, idx int, authority *auth.Authority) *DSEquivocator {
	return &DSEquivocator{idx: idx, n: len(cfg.IDs), cfg: cfg, signer: authority.Signer(idx)}
}

// Step implements sim.Node.
func (a *DSEquivocator) Step(round int, inbox []sim.Message) sim.Outbox {
	if a.sent {
		return nil
	}
	a.sent = true
	valueBits := bitsFor(a.cfg.N)
	nodeBits := bitsFor(a.n)
	v1 := uint64(a.cfg.IDs[a.idx])
	v2 := uint64(a.cfg.IDs[a.idx]%a.cfg.N) + 1
	if v2 == v1 {
		v2++
	}
	// Two signed chains total — hoisted out of the fan-out loop; the
	// recipients in each half share one chain (receivers never mutate it).
	chain1 := []consensus.Endorsement{{Node: a.idx, Sig: a.signer.Sign(auth.Digest(uint64(a.idx), v1))}}
	chain2 := []consensus.Endorsement{{Node: a.idx, Sig: a.signer.Sign(auth.Digest(uint64(a.idx), v2))}}
	out := make(sim.Outbox, 0, a.n)
	for to := 0; to < a.n; to++ {
		value, chain := v1, chain1
		if to >= a.n/2 {
			value, chain = v2, chain2
		}
		msg := consensus.DSMsg{
			Instance: a.idx, From: a.idx, To: to, Value: value, Chain: chain,
		}
		out = append(out, sim.Message{From: a.idx, To: to, Payload: DSPayload{
			Msg: msg, ValueBits: valueBits, NodeBits: nodeBits,
		}})
	}
	return out
}

// Output implements sim.Node.
func (*DSEquivocator) Output() (int, bool) { return 0, false }

// Halted implements sim.Node.
func (*DSEquivocator) Halted() bool { return true }
