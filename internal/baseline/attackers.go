package baseline

import (
	"math/rand"

	"renaming/internal/interval"
	"renaming/internal/sim"
)

// SilentNode models a crash-from-start (or Byzantine playing dead)
// participant for the baselines.
type SilentNode struct{}

var _ sim.Node = SilentNode{}

// Step implements sim.Node.
func (SilentNode) Step(int, []sim.Message) sim.Outbox { return nil }

// Output implements sim.Node.
func (SilentNode) Output() (int, bool) { return 0, false }

// Halted implements sim.Node.
func (SilentNode) Halted() bool { return true }

// LiarNode is a consistent liar for the Byzantine all-to-all baseline: it
// walks its own adversarially chosen path down the halving tree (ignoring
// the rank rule), broadcasting each step identically to everyone and
// echoing honestly. Its claims pass every tree-consistency filter, so it
// occupies slots it is not entitled to — the strongest consistent
// behaviour the ⌈2n/3⌉-echo confirmation admits (see the package doc for
// the envelope).
type LiarNode struct {
	idx, id, n int
	cfg        AllToAllConfig
	rng        *rand.Rand
	lie        interval.Interval
	d          int
	echoBuf    []StatusPayload // echo scratch, reused (one-round slack)
}

var _ sim.Node = (*LiarNode)(nil)

// NewLiarNode constructs a consistent liar at link index idx.
func NewLiarNode(cfg AllToAllConfig, idx int, rng *rand.Rand) *LiarNode {
	n := len(cfg.IDs)
	return &LiarNode{
		idx: idx, id: cfg.IDs[idx], n: n, cfg: cfg, rng: rng,
		lie: interval.Full(n),
	}
}

// Step implements sim.Node.
func (node *LiarNode) Step(round int, inbox []sim.Message) sim.Outbox {
	phase, sub := round/2, round%2
	if phase >= node.cfg.Phases() {
		return nil
	}
	if sub == 0 {
		if phase > 0 && !node.lie.Unit() {
			if node.rng.Intn(2) == 0 {
				node.lie = node.lie.Bot()
			} else {
				node.lie = node.lie.Top()
			}
			node.d++
		}
		return sim.Broadcast(node.idx, node.n, StatusPayload{
			ID: node.id, I: node.lie, D: node.d, SizeN: node.cfg.N, Small: node.n,
		})
	}
	node.echoBuf = collectStatusesInto(node.echoBuf, inbox)
	return sim.Broadcast(node.idx, node.n, EchoPayload{Statuses: node.echoBuf})
}

// Output implements sim.Node.
func (*LiarNode) Output() (int, bool) { return 0, false }

// Halted implements sim.Node.
func (*LiarNode) Halted() bool { return true }
