package baseline

import (
	"sort"

	"renaming/internal/auth"
	"renaming/internal/consensus"
	"renaming/internal/sim"
)

// DSPayload wraps one Dolev–Strong relay message for the simulator.
type DSPayload struct {
	Msg       consensus.DSMsg
	ValueBits int
	NodeBits  int
}

var _ sim.Payload = DSPayload{}

// Kind implements sim.Payload.
func (DSPayload) Kind() string { return "ds" }

// Bits implements sim.Payload.
func (p DSPayload) Bits() int { return p.Msg.Bits(p.ValueBits, p.NodeBits) }

// ConsensusRenameConfig parameterizes the reliable-broadcast baseline.
type ConsensusRenameConfig struct {
	N   int
	IDs []int
	// Seed derives the signing keys.
	Seed int64
}

// FaultBound returns t = ⌊(n−1)/3⌋, the classical resilience the
// baseline is run at.
func (cfg ConsensusRenameConfig) FaultBound() int { return (len(cfg.IDs) - 1) / 3 }

// TotalRounds is the Dolev–Strong length plus the decision step.
func (cfg ConsensusRenameConfig) TotalRounds() int { return cfg.FaultBound() + 3 }

// ConsensusRenameNode is the classical renaming-from-reliable-broadcast
// baseline the paper's related work describes (round complexity growing
// linearly with the fault bound, following Dolev–Strong [20]-style
// protocols): every node authenticated-broadcasts its identity with n
// parallel Dolev–Strong instances; after t+1 relay rounds all correct
// nodes hold the identical identity vector and rank locally. Strong and
// order-preserving, but Θ(t) rounds and Θ(n³) messages with
// chain-carrying (Ω(t·log n)-bit) messages — the cost profile the paper's
// algorithms escape.
type ConsensusRenameNode struct {
	idx, id, n int
	cfg        ConsensusRenameConfig
	authority  *auth.Authority

	instances []*consensus.DSBroadcast
	byInst    [][]consensus.DSMsg // per-round routing scratch, reused
	out       sim.Outbox          // outbox scratch, reused across rounds
	newID     int
	decided   bool
	halted    bool
}

var _ sim.Node = (*ConsensusRenameNode)(nil)

// NewConsensusRenameNode constructs the node at link index idx.
// The authority must be shared across the whole network; verifier is the
// signature verifier handed to the Dolev–Strong instances — pass the
// authority itself, or a shared auth.Memo (reset each round via
// sim.WithRoundEnd) so each relayed chain is verified once network-wide
// instead of once per recipient. nil defaults to the authority.
func NewConsensusRenameNode(cfg ConsensusRenameConfig, idx int, authority *auth.Authority, verifier auth.Verifier) *ConsensusRenameNode {
	n := len(cfg.IDs)
	if verifier == nil {
		verifier = authority
	}
	participants := make([]int, n)
	for i := range participants {
		participants[i] = i
	}
	node := &ConsensusRenameNode{
		idx: idx, id: cfg.IDs[idx], n: n, cfg: cfg, authority: authority,
		instances: make([]*consensus.DSBroadcast, n),
		byInst:    make([][]consensus.DSMsg, n),
	}
	t := cfg.FaultBound()
	signer := authority.Signer(idx)
	for sender := 0; sender < n; sender++ {
		node.instances[sender] = consensus.NewDSBroadcast(
			sender, idx, participants, sender, t, verifier, signer, uint64(cfg.IDs[idx]))
	}
	return node
}

// Output implements sim.Node.
func (node *ConsensusRenameNode) Output() (int, bool) {
	if !node.decided {
		return 0, false
	}
	return node.newID, true
}

// Halted implements sim.Node.
func (node *ConsensusRenameNode) Halted() bool { return node.halted }

// Step implements sim.Node.
func (node *ConsensusRenameNode) Step(round int, inbox []sim.Message) sim.Outbox {
	if node.halted {
		return nil
	}
	for i := range node.byInst {
		node.byInst[i] = node.byInst[i][:0]
	}
	for _, msg := range inbox {
		p, ok := msg.Payload.(DSPayload)
		if !ok || p.Msg.Instance < 0 || p.Msg.Instance >= node.n {
			continue
		}
		m := p.Msg
		m.From = msg.From // trust the authenticated channel, not the claim
		node.byInst[m.Instance] = append(node.byInst[m.Instance], m)
	}

	valueBits := bitsFor(node.cfg.N)
	nodeBits := bitsFor(node.n)
	out := node.out[:0]
	allDone := true
	for sender, ds := range node.instances {
		if ds.Done() {
			continue
		}
		for _, r := range ds.Step(node.byInst[sender]) {
			// One shared broadcast per relay: every participant gets the
			// identical chain, fanned out at delivery by the engine.
			out = append(out, sim.Message{From: node.idx, To: sim.ToAll, Payload: DSPayload{
				Msg: consensus.DSMsg{
					Instance: sender, From: node.idx, To: sim.ToAll,
					Value: r.Value, Chain: r.Chain,
				},
				ValueBits: valueBits, NodeBits: nodeBits,
			}})
		}
		if !ds.Done() {
			allDone = false
		}
	}
	if allDone && !node.decided {
		node.decide()
		node.halted = true
	}
	node.out = out
	return out
}

// decide ranks the identity extracted from every successful broadcast.
// Every correct node holds the identical vector (Dolev–Strong agreement),
// so ranks are consistent; values failing the authentication binding
// (a sender claiming a foreign identity) are dropped.
func (node *ConsensusRenameNode) decide() {
	var ids []int
	for sender, ds := range node.instances {
		v, ok := ds.Output()
		if !ok {
			continue
		}
		id := int(v)
		if id < 1 || id > node.cfg.N || node.cfg.IDs[sender] != id {
			continue // forged claim: authentication binding fails
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	pos := sort.SearchInts(ids, node.id)
	if pos < len(ids) && ids[pos] == node.id {
		node.newID = pos + 1
		node.decided = true
	}
}
