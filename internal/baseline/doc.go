// Package baseline reimplements the prior algorithms the paper compares
// against in Table 1, to the extent needed to reproduce the table's
// message/round shape:
//
//   - AllToAllCrash: crash-resilient strong renaming by all-to-all
//     interval halving in the style of Okun–Barak–Gafni [34] (as adapted
//     to the crash setting): every phase, every active node broadcasts
//     its ⟨ID, I, d⟩ to everyone and locally applies the same halving
//     rank rule the committee would. O(log n) rounds, Θ(n² log n)
//     messages regardless of f — the Ω(n²) all-to-all cost the paper
//     eliminates.
//
//   - CollectSort: the classic crash-free strong order-preserving
//     renaming — one all-to-all identity exchange, then rank locally.
//     One round, exactly n² messages; correct only without failures
//     (listed as the communication floor for the comparison).
//
//   - AllToAllByzantine: Byzantine-resilient strong renaming by
//     all-to-all interval halving with authenticated channels, f < n/3.
//     Identical message shape to AllToAllCrash; equivocation is
//     structurally impossible because every node broadcasts one
//     (authenticated) status per phase and decisions are local and
//     deterministic in the received multiset.
package baseline
