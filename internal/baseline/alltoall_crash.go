package baseline

import (
	"renaming/internal/interval"
	"renaming/internal/sim"
)

// StatusPayload is the per-phase all-to-all broadcast ⟨ID, I, d⟩.
type StatusPayload struct {
	ID    int
	I     interval.Interval
	D     int
	SizeN int
	Small int
}

var _ sim.Payload = StatusPayload{}

// Kind implements sim.Payload.
func (StatusPayload) Kind() string { return "a2a-status" }

// Bits implements sim.Payload.
func (p StatusPayload) Bits() int {
	return bitsFor(p.SizeN) + 2*bitsFor(p.Small) + bitsFor(log2Ceil(p.Small)+1)
}

// AllToAllConfig parameterizes the all-to-all baselines.
type AllToAllConfig struct {
	N   int
	IDs []int
}

// Phases returns the phase budget: the decision frontier (minimum depth)
// rises every phase (with one possible stall when a unit interval reaches
// the frontier), so ceil(log2 n)+2 phases reach unit intervals.
func (cfg AllToAllConfig) Phases() int { return log2Ceil(len(cfg.IDs)) + 2 }

// TotalRounds is Phases broadcasts plus the final processing round.
func (cfg AllToAllConfig) TotalRounds() int { return cfg.Phases() + 1 }

// AllToAllCrashNode is one participant of the all-to-all interval-halving
// baseline: every phase it broadcasts its status to everyone and applies
// the halving rank rule locally to its own received multiset — the
// committee algorithm with "committee = everybody, every node adopts its
// own response". This is the Ω(n²)-message pattern the paper eliminates.
type AllToAllCrashNode struct {
	idx, id, n int
	cfg        AllToAllConfig

	iv     interval.Interval
	d      int
	halted bool

	statusBuf []StatusPayload // collection scratch, reused every phase
}

var _ sim.Node = (*AllToAllCrashNode)(nil)

// NewAllToAllCrashNode constructs the node at link index idx.
func NewAllToAllCrashNode(cfg AllToAllConfig, idx int) *AllToAllCrashNode {
	return &AllToAllCrashNode{
		idx: idx, id: cfg.IDs[idx], n: len(cfg.IDs), cfg: cfg,
		iv: interval.Full(len(cfg.IDs)),
	}
}

// Output implements sim.Node.
func (node *AllToAllCrashNode) Output() (int, bool) {
	if !node.halted {
		return 0, false
	}
	return node.iv.Value()
}

// Halted implements sim.Node.
func (node *AllToAllCrashNode) Halted() bool { return node.halted }

// State returns the node's interval for invariant checks.
func (node *AllToAllCrashNode) State() (interval.Interval, int) { return node.iv, node.d }

// Step implements sim.Node.
func (node *AllToAllCrashNode) Step(round int, inbox []sim.Message) sim.Outbox {
	if node.halted {
		return nil
	}
	if round > 0 {
		node.statusBuf = collectStatusesInto(node.statusBuf, inbox)
		node.applyHalving(node.statusBuf)
	}
	if round >= node.cfg.Phases() {
		node.halted = true
		return nil
	}
	return sim.Broadcast(node.idx, node.n, StatusPayload{
		ID: node.id, I: node.iv, D: node.d, SizeN: node.cfg.N, Small: node.n,
	})
}

// applyHalving runs the committee halving rule (Figure 2 lines 4–9) on
// the node's own received multiset, halving itself only when it sits on
// the minimum-depth frontier.
func (node *AllToAllCrashNode) applyHalving(statuses []StatusPayload) {
	if len(statuses) == 0 || node.iv.Unit() {
		return
	}
	minDepth := statuses[0].D
	for _, s := range statuses {
		if s.D < minDepth {
			minDepth = s.D
		}
	}
	if node.d != minDepth {
		return
	}
	// Identities are unique, so the node's rank among the (sorted)
	// identities that chose its interval is 1 + #{smaller ones} — one
	// counting pass, no identity list, no sort.
	rank := 1
	subBot := 0
	bot := node.iv.Bot()
	for _, s := range statuses {
		if s.I == node.iv && s.ID < node.id {
			rank++
		}
		if bot.Contains(s.I) {
			subBot++
		}
	}
	if subBot+rank <= bot.Size() {
		node.iv = bot
	} else {
		node.iv = node.iv.Top()
	}
	node.d++
}

// collectStatusesInto appends the inbox's status payloads to buf[:0] and
// returns it, so per-node scratch is reused across phases. Callers that
// ship the result inside an EchoPayload rely on the one-round slack before
// the buffer is rewritten: an echo built in round r is previewed by
// rushers in round r and read by recipients in round r+1, while its owner
// does not collect again until round r+2.
func collectStatusesInto(buf []StatusPayload, inbox []sim.Message) []StatusPayload {
	buf = buf[:0]
	for _, msg := range inbox {
		if s, ok := msg.Payload.(StatusPayload); ok {
			buf = append(buf, s)
		}
	}
	return buf
}

func bitsFor(maxValue int) int {
	if maxValue <= 0 {
		return 1
	}
	bits := 0
	for v := maxValue; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

func log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
