package baseline

import (
	"sort"

	"renaming/internal/interval"
	"renaming/internal/sim"
)

// EchoPayload is the per-phase view broadcast of the Byzantine all-to-all
// baseline: a node's entire received status multiset. Its Ω(n·log N) size
// is the point — Table 1's prior Byzantine algorithms send large messages,
// which is where their Õ(n³) bit complexity comes from.
type EchoPayload struct {
	Statuses []StatusPayload
}

var _ sim.Payload = EchoPayload{}

// Kind implements sim.Payload.
func (EchoPayload) Kind() string { return "a2a-echo" }

// Bits implements sim.Payload.
func (p EchoPayload) Bits() int {
	total := 1
	for _, s := range p.Statuses {
		total += s.Bits()
	}
	return total
}

// AllToAllByzNode is the Byzantine all-to-all interval-halving baseline
// (Okun–Barak–Gafni shape, f < n/3): each of the ceil(log2 n)+2 phases
// takes a status broadcast round and an echo round in which every node
// rebroadcasts its whole received view. An identity counts as present in
// a phase when it appears in at least ⌈2n/3⌉ echoed views — every correct
// node's status always qualifies, while an equivocated or partial one
// cannot reach the quorum at one node and miss it at another without
// being decided the same way everywhere.
//
// Because the ≥ ⌈2n/3⌉ confirmation gives all correct nodes an identical
// present-identity set each phase, the interval state of *every* identity
// is recomputed locally from the shared view (full-information style): a
// Byzantine node cannot deviate from the halving rank rule, only choose
// to be present or drop out (dropping out is permanent). Uniqueness among
// correct nodes follows from the same occupancy argument as the crash
// algorithm. The content of the status messages is carried — and billed —
// to match the baseline's Ω(n)-bit message shape.
type AllToAllByzNode struct {
	idx, id, n int
	cfg        AllToAllConfig

	view   map[int]interval.Interval // present identity → computed interval
	halted bool

	// Per-phase scratch, reused across phases so the steady state does not
	// re-allocate. echoBuf rides inside an EchoPayload; see
	// collectStatusesInto for why the one-round slack makes that safe.
	echoBuf     []StatusPayload
	counts      map[int]int // identity → echoed views this phase
	seen        map[int]int // identity → last echo that counted it
	echoEpoch   int
	present     map[int]bool
	spareView   map[int]interval.Interval // next view under construction
	ids         []int
	rankSoFar   map[interval.Interval]int
	subBotCache map[interval.Interval]int
}

var _ sim.Node = (*AllToAllByzNode)(nil)

// NewAllToAllByzNode constructs the node at link index idx.
func NewAllToAllByzNode(cfg AllToAllConfig, idx int) *AllToAllByzNode {
	return &AllToAllByzNode{
		idx: idx, id: cfg.IDs[idx], n: len(cfg.IDs), cfg: cfg,
		view: nil, // established from the first confirmed presence set
	}
}

// Output implements sim.Node.
func (node *AllToAllByzNode) Output() (int, bool) {
	if !node.halted {
		return 0, false
	}
	iv, ok := node.view[node.id]
	if !ok {
		return 0, false
	}
	return iv.Value()
}

// Halted implements sim.Node.
func (node *AllToAllByzNode) Halted() bool { return node.halted }

// State returns the node's computed interval for invariant checks.
func (node *AllToAllByzNode) State() (interval.Interval, bool) {
	iv, ok := node.view[node.id]
	return iv, ok
}

// TotalRoundsByz is the round budget: two rounds per phase plus the final
// processing round.
func TotalRoundsByz(cfg AllToAllConfig) int { return 2*cfg.Phases() + 1 }

// Step implements sim.Node.
func (node *AllToAllByzNode) Step(round int, inbox []sim.Message) sim.Outbox {
	if node.halted {
		return nil
	}
	phase, sub := round/2, round%2
	if sub == 0 {
		if round > 0 {
			node.applyPhase(node.confirmedPresent(inbox))
		}
		if phase >= node.cfg.Phases() {
			node.halted = true
			return nil
		}
		iv := interval.Full(node.n)
		d := 0
		if cur, ok := node.view[node.id]; ok {
			iv = cur
			d, _ = cur.Depth(interval.Full(node.n))
		}
		return sim.Broadcast(node.idx, node.n, StatusPayload{
			ID: node.id, I: iv, D: d, SizeN: node.cfg.N, Small: node.n,
		})
	}
	// Echo round: rebroadcast the received view.
	node.echoBuf = collectStatusesInto(node.echoBuf, inbox)
	return sim.Broadcast(node.idx, node.n, EchoPayload{Statuses: node.echoBuf})
}

// confirmedPresent returns the identities whose status this phase was
// echoed by at least ⌈2n/3⌉ views. Scratch maps are pooled: dedup within
// one echoed view uses an epoch stamp per identity instead of a fresh set
// per message.
func (node *AllToAllByzNode) confirmedPresent(inbox []sim.Message) map[int]bool {
	threshold := (2*node.n + 2) / 3
	if node.counts == nil {
		node.counts = make(map[int]int)
		node.seen = make(map[int]int)
		node.present = make(map[int]bool)
	}
	clear(node.counts)
	clear(node.present)
	for _, msg := range inbox {
		echo, ok := msg.Payload.(EchoPayload)
		if !ok {
			continue
		}
		node.echoEpoch++
		for _, s := range echo.Statuses {
			if s.ID < 1 || s.ID > node.cfg.N || node.seen[s.ID] == node.echoEpoch {
				continue
			}
			node.seen[s.ID] = node.echoEpoch
			node.counts[s.ID]++
		}
	}
	for id, c := range node.counts {
		if c >= threshold {
			node.present[id] = true
		}
	}
	return node.present
}

// applyPhase updates the shared view: first presence (initial adoption or
// permanent drop-out), then one synchronized halving step of every
// non-unit interval using the crash algorithm's rank rule.
func (node *AllToAllByzNode) applyPhase(present map[int]bool) {
	if node.view == nil {
		node.view = make(map[int]interval.Interval, len(present))
		full := interval.Full(node.n)
		for id := range present {
			node.view[id] = full
		}
		return
	}
	for id := range node.view {
		if !present[id] {
			delete(node.view, id) // dropped out: gone for good
		}
	}
	ids := node.ids[:0]
	for id := range node.view {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	node.ids = ids
	if node.spareView == nil {
		node.spareView = make(map[int]interval.Interval, len(node.view))
		node.rankSoFar = make(map[interval.Interval]int)
		node.subBotCache = make(map[interval.Interval]int)
	}
	next := node.spareView
	clear(next)
	clear(node.rankSoFar)
	clear(node.subBotCache)
	for _, id := range ids {
		iv := node.view[id]
		if iv.Unit() {
			next[id] = iv
			continue
		}
		// ids is sorted, so the running per-interval counter reproduces the
		// rank of id within the sorted list of identities sharing iv, and
		// subBot depends only on iv — computed once per distinct interval
		// instead of per identity (O(K·G) for G distinct intervals, not K²).
		rank := node.rankSoFar[iv] + 1
		node.rankSoFar[iv] = rank
		bot := iv.Bot()
		subBot, cached := node.subBotCache[iv]
		if !cached {
			for _, other := range ids {
				if bot.Contains(node.view[other]) {
					subBot++
				}
			}
			node.subBotCache[iv] = subBot
		}
		if subBot+rank <= bot.Size() {
			next[id] = bot
		} else {
			next[id] = iv.Top()
		}
	}
	node.spareView = node.view
	node.view = next
}
