package baseline

import (
	"renaming/internal/sim"
)

// IDPayload carries one original identity in the collect-and-sort
// baseline.
type IDPayload struct {
	ID    int
	SizeN int
}

var _ sim.Payload = IDPayload{}

// Kind implements sim.Payload.
func (IDPayload) Kind() string { return "collect-id" }

// Bits implements sim.Payload.
func (p IDPayload) Bits() int { return bitsFor(p.SizeN) }

// CollectSortNode is the crash-free strong order-preserving baseline: one
// all-to-all identity exchange, then rank locally. It is the classical
// communication floor of the comparison (2 rounds, exactly n² messages)
// and is correct only when no failures occur.
type CollectSortNode struct {
	idx, id, n int
	sizeN      int

	newID  int
	halted bool
}

var _ sim.Node = (*CollectSortNode)(nil)

// NewCollectSortNode constructs the node at link index idx.
func NewCollectSortNode(cfg AllToAllConfig, idx int) *CollectSortNode {
	return &CollectSortNode{idx: idx, id: cfg.IDs[idx], n: len(cfg.IDs), sizeN: cfg.N}
}

// Output implements sim.Node.
func (node *CollectSortNode) Output() (int, bool) {
	if !node.halted {
		return 0, false
	}
	return node.newID, true
}

// Halted implements sim.Node.
func (node *CollectSortNode) Halted() bool { return node.halted }

// Step implements sim.Node.
func (node *CollectSortNode) Step(round int, inbox []sim.Message) sim.Outbox {
	if node.halted {
		return nil
	}
	if round == 0 {
		return sim.Broadcast(node.idx, node.n, IDPayload{ID: node.id, SizeN: node.sizeN})
	}
	// Rank = 1 + #{received identities smaller than ours}. Identities
	// are unique, so this equals the old collect-sort-search rank without
	// materialising or sorting the identity list.
	rank := 1
	for _, msg := range inbox {
		if p, ok := msg.Payload.(IDPayload); ok && p.ID < node.id {
			rank++
		}
	}
	node.newID = rank
	node.halted = true
	return nil
}
