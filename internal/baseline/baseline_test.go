package baseline

import (
	"math/rand"
	"testing"

	"renaming/internal/adversary"
	"renaming/internal/auth"
	"renaming/internal/sim"
)

func cfgFor(n int) AllToAllConfig {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = 3*i + 2
	}
	return AllToAllConfig{N: 4 * n, IDs: ids}
}

func checkUniqueOutputs(t *testing.T, nw *sim.Network, outputs func(i int) (int, bool), n int, mustDecide func(i int) bool) {
	t.Helper()
	seen := make(map[int]int)
	for i := 0; i < n; i++ {
		if !mustDecide(i) {
			continue
		}
		id, ok := outputs(i)
		if !ok {
			t.Fatalf("node %d undecided", i)
		}
		if id < 1 || id > n {
			t.Fatalf("node %d new id %d outside [1,%d]", i, id, n)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("nodes %d and %d share new id %d", prev, i, id)
		}
		seen[id] = i
	}
	_ = nw
}

func TestAllToAllCrashNoFailures(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 31, 64} {
		cfg := cfgFor(n)
		nodes := make([]*AllToAllCrashNode, n)
		simNodes := make([]sim.Node, n)
		for i := range nodes {
			nodes[i] = NewAllToAllCrashNode(cfg, i)
			simNodes[i] = nodes[i]
		}
		nw := sim.NewNetwork(simNodes)
		if err := nw.Run(cfg.TotalRounds() + 1); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkUniqueOutputs(t, nw, func(i int) (int, bool) { return nodes[i].Output() }, n,
			func(int) bool { return true })
	}
}

func TestAllToAllCrashWithCrashes(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		n := 32
		cfg := cfgFor(n)
		nodes := make([]*AllToAllCrashNode, n)
		simNodes := make([]sim.Node, n)
		for i := range nodes {
			nodes[i] = NewAllToAllCrashNode(cfg, i)
			simNodes[i] = nodes[i]
		}
		adv := &adversary.RandomCrashes{
			Budget: n - 1, Prob: 0.15, MidSendProb: 0.5,
			Rand: rand.New(rand.NewSource(seed)),
		}
		nw := sim.NewNetwork(simNodes, sim.WithCrashAdversary(adv))
		if err := nw.Run(cfg.TotalRounds() + 1); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		checkUniqueOutputs(t, nw, func(i int) (int, bool) { return nodes[i].Output() }, n,
			func(i int) bool { return nw.Alive(i) })
	}
}

func TestAllToAllCrashMessageShape(t *testing.T) {
	n := 64
	cfg := cfgFor(n)
	simNodes := make([]sim.Node, n)
	for i := range simNodes {
		simNodes[i] = NewAllToAllCrashNode(cfg, i)
	}
	nw := sim.NewNetwork(simNodes)
	if err := nw.Run(cfg.TotalRounds() + 1); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * int64(n) * int64(cfg.Phases())
	if nw.Metrics().Messages != want {
		t.Fatalf("messages = %d, want all-to-all %d", nw.Metrics().Messages, want)
	}
}

func TestCollectSort(t *testing.T) {
	n := 20
	cfg := cfgFor(n)
	nodes := make([]*CollectSortNode, n)
	simNodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = NewCollectSortNode(cfg, i)
		simNodes[i] = nodes[i]
	}
	nw := sim.NewNetwork(simNodes)
	if err := nw.Run(3); err != nil {
		t.Fatal(err)
	}
	checkUniqueOutputs(t, nw, func(i int) (int, bool) { return nodes[i].Output() }, n,
		func(int) bool { return true })
	// Order preserving: IDs are increasing in link order, so new ids are 1..n.
	for i, node := range nodes {
		id, _ := node.Output()
		if id != i+1 {
			t.Fatalf("node %d got %d, want %d", i, id, i+1)
		}
	}
	if nw.Metrics().Messages != int64(n*n) {
		t.Fatalf("messages = %d, want %d", nw.Metrics().Messages, n*n)
	}
}

func TestAllToAllByzantine(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		n := 30
		cfg := cfgFor(n)
		byz := map[int]bool{3: true, 11: true, 22: true} // f = 3 < n/3
		nodes := make([]*AllToAllByzNode, n)
		simNodes := make([]sim.Node, n)
		var byzLinks []int
		for i := 0; i < n; i++ {
			if byz[i] {
				byzLinks = append(byzLinks, i)
				if i%2 == 0 {
					simNodes[i] = SilentNode{}
				} else {
					simNodes[i] = NewLiarNode(cfg, i, rand.New(rand.NewSource(seed*100+int64(i))))
				}
				continue
			}
			nodes[i] = NewAllToAllByzNode(cfg, i)
			simNodes[i] = nodes[i]
		}
		nw := sim.NewNetwork(simNodes, sim.WithByzantine(byzLinks))
		if err := nw.Run(TotalRoundsByz(cfg) + 1); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		checkUniqueOutputs(t, nw, func(i int) (int, bool) {
			if nodes[i] == nil {
				return 0, false
			}
			return nodes[i].Output()
		}, n, func(i int) bool { return !byz[i] })
	}
}

func TestConsensusRenameHonest(t *testing.T) {
	n := 16
	cfg := cfgFor(n)
	dsCfg := ConsensusRenameConfig{N: cfg.N, IDs: cfg.IDs, Seed: 4}
	authority := authAuthority(dsCfg, n)
	nodes := make([]*ConsensusRenameNode, n)
	simNodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = NewConsensusRenameNode(dsCfg, i, authority, nil)
		simNodes[i] = nodes[i]
	}
	nw := sim.NewNetwork(simNodes)
	if err := nw.Run(dsCfg.TotalRounds() + 1); err != nil {
		t.Fatal(err)
	}
	checkUniqueOutputs(t, nw, func(i int) (int, bool) { return nodes[i].Output() }, n,
		func(int) bool { return true })
	// IDs increase with link order, so order preservation means identity
	// ranks: node i gets i+1.
	for i, node := range nodes {
		if id, _ := node.Output(); id != i+1 {
			t.Fatalf("node %d got %d, want %d", i, id, i+1)
		}
	}
}

func TestConsensusRenameUnderAttack(t *testing.T) {
	n := 15
	cfg := cfgFor(n)
	dsCfg := ConsensusRenameConfig{N: cfg.N, IDs: cfg.IDs, Seed: 9}
	authority := authAuthority(dsCfg, n)
	byz := map[int]bool{2: true, 7: true, 11: true} // f = 3 < n/3? t = 4 ✓
	nodes := make([]*ConsensusRenameNode, n)
	simNodes := make([]sim.Node, n)
	var byzLinks []int
	for i := 0; i < n; i++ {
		if byz[i] {
			byzLinks = append(byzLinks, i)
			if i%2 == 0 {
				simNodes[i] = SilentNode{}
			} else {
				simNodes[i] = NewDSEquivocator(dsCfg, i, authority)
			}
			continue
		}
		nodes[i] = NewConsensusRenameNode(dsCfg, i, authority, nil)
		simNodes[i] = nodes[i]
	}
	nw := sim.NewNetwork(simNodes, sim.WithByzantine(byzLinks))
	if err := nw.Run(dsCfg.TotalRounds() + 1); err != nil {
		t.Fatal(err)
	}
	checkUniqueOutputs(t, nw, func(i int) (int, bool) {
		if nodes[i] == nil {
			return 0, false
		}
		return nodes[i].Output()
	}, n, func(i int) bool { return !byz[i] })
	// Order preservation among correct nodes.
	prev := 0
	for i, node := range nodes {
		if byz[i] {
			continue
		}
		id, _ := node.Output()
		if id <= prev {
			t.Fatalf("order violated at node %d: %d after %d", i, id, prev)
		}
		prev = id
	}
}

func authAuthority(cfg ConsensusRenameConfig, n int) *auth.Authority {
	return auth.NewAuthority(cfg.Seed, n)
}
