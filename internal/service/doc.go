// Package service is the long-lived renaming service: an epoch-batched
// join/leave layer over the paper's one-shot algorithms that allocates
// names from — and releases them back into — a fixed recyclable
// namespace [1, Capacity].
//
// The paper solves one-shot renaming: n participants show up once, run
// the protocol, and keep their names forever. A production name service
// faces churn — clients join and leave continuously — so the one-shot
// protocol becomes the inner loop of an epoch loop:
//
//   - clients join and leave in per-epoch batches;
//   - each epoch first releases the leavers' names into a ring-buffer
//     FreeList (head/tail indices with phase bits, the register-renaming
//     free-list structure), then runs the one-shot crash or Byzantine
//     protocol over the join batch alone, giving every surviving joiner
//     a rank in [1, batch];
//   - ranks are mapped in order onto names popped from the FreeList and
//     committed into the rename-map table (client → name, name → client);
//   - a checkpoint taken at epoch start makes the epoch atomic: when the
//     one-shot run leaves the guarantee envelope (a non-unique outcome,
//     a broken committee assumption, a drained free list) the whole
//     epoch — leaves included — rolls back to the exact pre-epoch
//     mapping.
//
// The service inherits the repo's determinism contract: a Config seed
// fixes every epoch's one-shot execution, and results are bit-identical
// at any EngineWorkers setting, which is what the churn harness's
// golden-fingerprint test (service_determinism_test.go) and the
// byte-identical JSONL acceptance of cmd/renamed pin.
//
// Invariants (re-checked per epoch by the campaign oracle,
// internal/campaign.ServiceOracle; see docs/SERVICE.md):
//
//   - recycle safety: a name is never handed out while live;
//   - tightness: every live name lies in [1, Capacity] — the namespace
//     never grows past the configured peak population, no matter how
//     many clients the trace serves in total;
//   - conservation: live names + free names = Capacity every epoch;
//   - rollback: an aborted epoch leaves no visible state change;
//   - per-epoch order (Byzantine core): within a join batch, ranks —
//     and therefore free-list pop positions — preserve the order of the
//     joiners' original identities. Global order across epochs is
//     deliberately out of scope: with recycling, released low names are
//     re-granted to later (arbitrarily ordered) clients.
package service
