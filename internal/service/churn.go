package service

import (
	"fmt"
	"math/rand"

	"renaming/internal/sim"
)

// churnLabel is the DeriveSeed stream label for trace generation
// ("chrn").
const churnLabel uint64 = 0x6368726e

// TraceSpec parameterizes a seeded join/leave trace.
type TraceSpec struct {
	// Capacity is the service namespace size the trace targets; join
	// batches never exceed the free capacity.
	Capacity int
	// BigN is the original namespace joiner identities are drawn from;
	// defaults to 16·Capacity. A trace errors out when its cumulative
	// joins exhaust BigN (original identities are never reused, so every
	// recycled *name* provably served distinct clients).
	BigN int
	// JoinMax caps the joins drawn per epoch; defaults to
	// max(1, Capacity/8).
	JoinMax int
	// LeaveMax caps the leaves drawn per epoch; defaults to JoinMax.
	LeaveMax int
	// Seed drives all draws.
	Seed int64
}

func (spec TraceSpec) withDefaults() (TraceSpec, error) {
	if spec.Capacity <= 0 {
		return spec, fmt.Errorf("service: trace capacity must be positive, got %d", spec.Capacity)
	}
	if spec.BigN == 0 {
		spec.BigN = 16 * spec.Capacity
	}
	if spec.BigN < spec.Capacity {
		return spec, fmt.Errorf("service: trace namespace N=%d smaller than capacity %d", spec.BigN, spec.Capacity)
	}
	if spec.JoinMax == 0 {
		spec.JoinMax = max(1, spec.Capacity/8)
	}
	if spec.JoinMax < 1 || spec.JoinMax > spec.Capacity {
		return spec, fmt.Errorf("service: join-max %d outside [1, capacity=%d]", spec.JoinMax, spec.Capacity)
	}
	if spec.LeaveMax == 0 {
		spec.LeaveMax = spec.JoinMax
	}
	if spec.LeaveMax < 0 {
		return spec, fmt.Errorf("service: leave-max %d negative", spec.LeaveMax)
	}
	return spec, nil
}

// TraceDriver draws one epoch's join and leave batches at a time. The
// draws depend on the observed live population (leavers are sampled
// from it, joins are capped by the free capacity), so the trace reacts
// to crashes the way real churn reacts to failed joins — while staying
// fully deterministic in (seed, service execution).
type TraceDriver struct {
	spec TraceSpec
	rng  *rand.Rand
	// ids is a seeded permutation of [1, BigN], consumed left to right:
	// fresh joiner identities, globally distinct across the whole trace.
	ids  []int32
	next int
}

// NewTraceDriver builds a driver; the identity permutation is drawn up
// front so epoch draws stay O(batch).
func NewTraceDriver(spec TraceSpec) (*TraceDriver, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := sim.NewRand(spec.Seed, churnLabel)
	ids := make([]int32, spec.BigN)
	for i := range ids {
		ids[i] = int32(i + 1)
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return &TraceDriver{spec: spec, rng: rng, ids: ids}, nil
}

// JoinMax returns the resolved per-epoch join cap (after defaults).
func (d *TraceDriver) JoinMax() int { return d.spec.JoinMax }

// NextEpoch draws the next epoch's batches against the live population
// (ascending client IDs, as Service.LiveClients returns). Leaves are
// sampled without replacement from live; the join count is capped so
// the post-epoch population fits the capacity.
func (d *TraceDriver) NextEpoch(live []int) (joins []Client, leaves []int, err error) {
	if len(live) > 0 && d.spec.LeaveMax > 0 {
		leaveCount := d.rng.Intn(min(d.spec.LeaveMax, len(live)) + 1)
		if leaveCount > 0 {
			for _, idx := range d.rng.Perm(len(live))[:leaveCount] {
				leaves = append(leaves, live[idx])
			}
		}
	}
	room := d.spec.Capacity - (len(live) - len(leaves))
	joinCount := min(1+d.rng.Intn(d.spec.JoinMax), room)
	for i := 0; i < joinCount; i++ {
		if d.next >= len(d.ids) {
			return nil, nil, fmt.Errorf("service: trace exhausted the original namespace after %d joins; raise BigN (=%d)", d.next, d.spec.BigN)
		}
		joins = append(joins, Client{ID: int(d.ids[d.next])})
		d.next++
	}
	return joins, leaves, nil
}
