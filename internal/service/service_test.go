package service

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func ids(clients []Client) []int {
	out := make([]int, len(clients))
	for i, c := range clients {
		out[i] = c.ID
	}
	return out
}

func TestServiceJoinLeaveRecycles(t *testing.T) {
	svc := newTestService(t, Config{Capacity: 8, Seed: 3})
	first, err := svc.RunEpoch([]Client{{ID: 10}, {ID: 20}, {ID: 30}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Joined != 3 || first.Recycled != 0 || first.Live != 3 || first.FreeNames != 5 {
		t.Fatalf("epoch 0: %+v", first)
	}
	for _, a := range first.Assignments {
		if a.Name < 1 || a.Name > 8 {
			t.Fatalf("granted name %d outside [1, 8]", a.Name)
		}
	}

	// Leave everyone, then join enough fresh clients to reach the
	// released names: a capacity-8 list holds 5 fresh names, so an
	// 8-strong batch must recycle 3.
	if _, err := svc.RunEpoch(nil, svc.LiveClients()); err != nil {
		t.Fatal(err)
	}
	batch := []Client{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}, {ID: 5}, {ID: 6}, {ID: 7}, {ID: 8}}
	third, err := svc.RunEpoch(batch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if third.Aborted {
		t.Fatalf("epoch 2 aborted: %s", third.AbortReason)
	}
	if third.Recycled != 3 {
		t.Fatalf("epoch 2 recycled %d names, want 3", third.Recycled)
	}
	if svc.Recycled() != 3 {
		t.Fatalf("cumulative recycled %d, want 3", svc.Recycled())
	}
	if third.Live+third.FreeNames != svc.Capacity() {
		t.Fatalf("conservation: live %d + free %d ≠ %d", third.Live, third.FreeNames, svc.Capacity())
	}
}

func TestServiceValidationLeavesStateUntouched(t *testing.T) {
	svc := newTestService(t, Config{Capacity: 4, Seed: 1})
	if _, err := svc.RunEpoch([]Client{{ID: 5}}, nil); err != nil {
		t.Fatal(err)
	}
	before := svc.Snapshot()
	epoch := svc.Epoch()

	cases := []struct {
		name   string
		joins  []Client
		leaves []int
	}{
		{"joiner out of range", []Client{{ID: 0}}, nil},
		{"joiner beyond N", []Client{{ID: 65}}, nil},
		{"duplicate joiner", []Client{{ID: 7}, {ID: 7}}, nil},
		{"already-live joiner", []Client{{ID: 5}}, nil},
		{"unknown leaver", nil, []int{99}},
		{"duplicate leaver", nil, []int{5, 5}},
	}
	for _, tc := range cases {
		if _, err := svc.RunEpoch(tc.joins, tc.leaves); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if svc.Epoch() != epoch {
		t.Errorf("validation errors advanced the epoch counter to %d", svc.Epoch())
	}
	if got := svc.Snapshot(); !reflect.DeepEqual(got, before) {
		t.Errorf("validation errors mutated the mapping: %v → %v", before, got)
	}
}

func TestServiceEmptyAndSingletonEpochs(t *testing.T) {
	svc := newTestService(t, Config{Capacity: 4, Seed: 9})
	empty, err := svc.RunEpoch(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Rounds != 0 || empty.Joined != 0 || empty.Live != 0 {
		t.Fatalf("empty epoch: %+v", empty)
	}
	single, err := svc.RunEpoch([]Client{{ID: 7}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if single.Joined != 1 || len(single.Assignments) != 1 {
		t.Fatalf("singleton epoch: %+v", single)
	}
	if a := single.Assignments[0]; a.Client != 7 || a.Rank != 1 || a.Name != 1 {
		t.Fatalf("singleton assignment: %+v", a)
	}
}

// TestServiceRollbackExact forces an abort mid-trace (after leaves and
// the one-shot run have mutated state) and requires the rollback to
// restore every observable: the mapping, the live view, and the free
// list's exact FIFO order.
func TestServiceRollbackExact(t *testing.T) {
	fail := false
	svc := newTestService(t, Config{
		Capacity: 8, Seed: 11,
		FailEpoch: func(epoch int) bool { return fail },
	})
	if _, err := svc.RunEpoch([]Client{{ID: 3}, {ID: 9}, {ID: 12}, {ID: 40}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RunEpoch([]Client{{ID: 77}}, []int{9, 40}); err != nil {
		t.Fatal(err)
	}

	wantMap := svc.Snapshot()
	wantLive := append([]int(nil), svc.LiveClients()...)
	wantFree := append([]int32(nil), svc.free.slots...)
	wantHead, wantTail := svc.free.head, svc.free.tail
	wantHP, wantTP := svc.free.headPhase, svc.free.tailPhase
	aborts := svc.Aborts()

	fail = true
	res, err := svc.RunEpoch([]Client{{ID: 100}, {ID: 101}}, []int{3, 77})
	if err != nil {
		t.Fatal(err)
	}
	fail = false
	if !res.Aborted || res.AbortReason != "fault injection" {
		t.Fatalf("epoch did not abort: %+v", res)
	}
	if len(res.Assignments) != 0 || len(res.Released) != 0 || res.Joined != 0 {
		t.Fatalf("aborted epoch reports deltas: %+v", res)
	}
	if svc.Aborts() != aborts+1 {
		t.Fatalf("abort counter %d, want %d", svc.Aborts(), aborts+1)
	}

	if got := svc.Snapshot(); !reflect.DeepEqual(got, wantMap) {
		t.Errorf("mapping after rollback: %v, want %v", got, wantMap)
	}
	if gotLive := append([]int(nil), svc.LiveClients()...); !reflect.DeepEqual(gotLive, wantLive) {
		t.Errorf("live view after rollback: %v, want %v", gotLive, wantLive)
	}
	if !reflect.DeepEqual(svc.free.slots, wantFree) ||
		svc.free.head != wantHead || svc.free.tail != wantTail ||
		svc.free.headPhase != wantHP || svc.free.tailPhase != wantTP {
		t.Error("free list after rollback differs from the pre-epoch checkpoint")
	}

	// The service keeps working after a rollback; the aborted epoch's
	// number is consumed (epoch indices stay aligned with the trace).
	if svc.Epoch() != 3 {
		t.Fatalf("epoch counter %d after abort, want 3", svc.Epoch())
	}
	next, err := svc.RunEpoch([]Client{{ID: 55}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if next.Aborted || next.Joined != 1 {
		t.Fatalf("post-abort epoch: %+v", next)
	}
}

// TestServiceAbortsWhenFreeListDrained joins past the capacity in one
// batch and requires the drained-free-list abort plus full rollback.
func TestServiceAbortsWhenFreeListDrained(t *testing.T) {
	svc := newTestService(t, Config{Capacity: 2, Seed: 5})
	if _, err := svc.RunEpoch([]Client{{ID: 1}, {ID: 2}}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := svc.RunEpoch([]Client{{ID: 3}, {ID: 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || !strings.Contains(res.AbortReason, "free list drained") {
		t.Fatalf("overfull epoch: %+v", res)
	}
	if svc.Live() != 2 || svc.FreeNames() != 0 {
		t.Fatalf("population after rollback: live=%d free=%d", svc.Live(), svc.FreeNames())
	}
}

func TestServiceByzantineCore(t *testing.T) {
	svc := newTestService(t, Config{Capacity: 16, Seed: 21, Core: CoreByzantine})
	res, err := svc.RunEpoch([]Client{{ID: 40}, {ID: 8}, {ID: 99}, {ID: 23}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted || res.Joined != 4 {
		t.Fatalf("byzantine epoch: %+v", res)
	}
	// Theorem 1.3 order preservation surfaces as per-epoch rank order:
	// sort assignments by client ID and ranks must strictly increase.
	byClient := append([]Assignment(nil), res.Assignments...)
	for i := range byClient {
		for j := i + 1; j < len(byClient); j++ {
			a, b := byClient[i], byClient[j]
			if (a.Client < b.Client) != (a.Rank < b.Rank) {
				t.Fatalf("ranks not order-preserving: %+v vs %+v", a, b)
			}
		}
	}
}

func TestEpochSeedDistinctPerEpoch(t *testing.T) {
	seen := make(map[int64]int)
	for epoch := 0; epoch < 100; epoch++ {
		s := EpochSeed(123, epoch)
		if prev, dup := seen[s]; dup {
			t.Fatalf("epochs %d and %d share seed %d", prev, epoch, s)
		}
		seen[s] = epoch
	}
	if EpochSeed(123, 7) != EpochSeed(123, 7) {
		t.Fatal("EpochSeed not deterministic")
	}
	if EpochSeed(123, 7) == EpochSeed(124, 7) {
		t.Fatal("EpochSeed ignores the service seed")
	}
}

func TestTraceDriverDeterministicAndBounded(t *testing.T) {
	mk := func() *TraceDriver {
		d, err := NewTraceDriver(TraceSpec{Capacity: 32, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := mk(), mk()
	var live []int
	next := 1000
	for epoch := 0; epoch < 40; epoch++ {
		ja, la, errA := a.NextEpoch(live)
		jb, lb, errB := b.NextEpoch(live)
		if errA != nil || errB != nil {
			t.Fatalf("epoch %d: %v / %v", epoch, errA, errB)
		}
		if !reflect.DeepEqual(ids(ja), ids(jb)) || !reflect.DeepEqual(la, lb) {
			t.Fatalf("epoch %d: drivers diverged", epoch)
		}
		if len(live)-len(la)+len(ja) > 32 {
			t.Fatalf("epoch %d: batch overflows capacity", epoch)
		}
		// Maintain a fake live population (joins all succeed).
		drop := make(map[int]bool, len(la))
		for _, c := range la {
			drop[c] = true
		}
		var kept []int
		for _, c := range live {
			if !drop[c] {
				kept = append(kept, c)
			}
		}
		for range ja {
			kept = append(kept, next)
			next++
		}
		live = kept
	}
}

// TestLiveViewLazyMaterialization runs several epochs of joins and
// leaves without ever reading the live view in between, then requires
// one LiveClients call to fold every pending delta into the exact
// sorted membership (the names map's key set). Also checks repeated
// calls are stable and that Live() never depends on materialization.
func TestLiveViewLazyMaterialization(t *testing.T) {
	svc := newTestService(t, Config{Capacity: 16, Seed: 21})
	if _, err := svc.RunEpoch([]Client{{ID: 9}, {ID: 4}, {ID: 30}, {ID: 12}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RunEpoch([]Client{{ID: 2}, {ID: 50}}, []int{4, 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RunEpoch([]Client{{ID: 4}}, []int{2}); err != nil {
		t.Fatal(err)
	}
	if got, want := svc.Live(), len(svc.Snapshot()); got != want {
		t.Fatalf("Live() = %d before materialization, want %d", got, want)
	}
	want := make([]int, 0, svc.Live())
	for c := range svc.Snapshot() {
		want = append(want, c)
	}
	sort.Ints(want)
	got := append([]int(nil), svc.LiveClients()...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LiveClients = %v, want %v", got, want)
	}
	if again := svc.LiveClients(); !reflect.DeepEqual(append([]int(nil), again...), want) {
		t.Fatalf("second LiveClients call diverged: %v", again)
	}
}
