package service

import "fmt"

// FreeList is a fixed-capacity FIFO ring buffer of free names, the
// register-renaming free-list structure: head and tail indices each
// carry a phase bit that flips on wrap-around, so full (head == tail,
// phases differ) and empty (head == tail, phases equal) are
// distinguishable without a separate counter. Names pop from the head
// in release order (oldest released first) and released names push at
// the tail, which is what spreads recycling evenly over the namespace
// instead of hammering the lowest names.
type FreeList struct {
	slots     []int32
	head      int
	tail      int
	headPhase uint8
	tailPhase uint8
}

// NewFreeList returns a full free list holding names 1..capacity in
// ascending order (name 1 pops first).
func NewFreeList(capacity int) (*FreeList, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("service: free list capacity must be positive, got %d", capacity)
	}
	fl := &FreeList{slots: make([]int32, capacity), tailPhase: 1}
	for i := range fl.slots {
		fl.slots[i] = int32(i + 1)
	}
	return fl, nil
}

// Capacity returns the fixed slot count.
func (fl *FreeList) Capacity() int { return len(fl.slots) }

// Empty reports whether no names are free.
func (fl *FreeList) Empty() bool { return fl.head == fl.tail && fl.headPhase == fl.tailPhase }

// Full reports whether every name is free.
func (fl *FreeList) Full() bool { return fl.head == fl.tail && fl.headPhase != fl.tailPhase }

// Len returns the number of free names.
func (fl *FreeList) Len() int {
	switch {
	case fl.Full():
		return len(fl.slots)
	case fl.Empty():
		return 0
	case fl.head < fl.tail:
		return fl.tail - fl.head
	default:
		return len(fl.slots) - (fl.head - fl.tail)
	}
}

// Pop removes and returns the oldest free name; ok is false when the
// list is empty.
func (fl *FreeList) Pop() (name int, ok bool) {
	if fl.Empty() {
		return 0, false
	}
	name = int(fl.slots[fl.head])
	fl.head++
	if fl.head == len(fl.slots) {
		fl.head = 0
		fl.headPhase ^= 1
	}
	return name, true
}

// Push appends a released name at the tail. Pushing into a full list is
// a service-level accounting bug (more names released than exist) and
// returns an error instead of silently overwriting live entries.
func (fl *FreeList) Push(name int) error {
	if fl.Full() {
		return fmt.Errorf("service: free list full, cannot release name %d", name)
	}
	if name < 1 || name > len(fl.slots) {
		return fmt.Errorf("service: released name %d outside [1, %d]", name, len(fl.slots))
	}
	fl.slots[fl.tail] = int32(name)
	fl.tail++
	if fl.tail == len(fl.slots) {
		fl.tail = 0
		fl.tailPhase ^= 1
	}
	return nil
}

// TailSlot returns the value currently stored in the slot the next Push
// will overwrite — the before-image an undo journal must capture for
// UndoPush to be exact. (Pop never clears its slot, so the cell behind
// the tail still holds whatever an earlier cycle left there.)
func (fl *FreeList) TailSlot() int32 { return fl.slots[fl.tail] }

// UndoPop rewinds the most recent Pop: the head cursor steps back, and
// the popped name — still in its slot, Pop never clears — is free again.
// Undo calls must replay the push/pop history exactly in reverse (the
// journal's rollback order); out-of-order undo corrupts the phase bits.
func (fl *FreeList) UndoPop() {
	if fl.head == 0 {
		fl.head = len(fl.slots)
		fl.headPhase ^= 1
	}
	fl.head--
}

// UndoPush rewinds the most recent Push, restoring the overwritten
// slot's previous contents (prev, captured via TailSlot before the
// push). Same reverse-order contract as UndoPop.
func (fl *FreeList) UndoPush(prev int32) {
	if fl.tail == 0 {
		fl.tail = len(fl.slots)
		fl.tailPhase ^= 1
	}
	fl.tail--
	fl.slots[fl.tail] = prev
}

// FreeListCheckpoint is a full snapshot of a FreeList, sufficient to
// restore the exact pre-epoch state (slot contents included — an epoch
// overwrites slots behind the tail as leavers release names).
type FreeListCheckpoint struct {
	slots     []int32
	head      int
	tail      int
	headPhase uint8
	tailPhase uint8
}

// Checkpoint snapshots the list.
func (fl *FreeList) Checkpoint() FreeListCheckpoint {
	return FreeListCheckpoint{
		slots:     append([]int32(nil), fl.slots...),
		head:      fl.head,
		tail:      fl.tail,
		headPhase: fl.headPhase,
		tailPhase: fl.tailPhase,
	}
}

// Restore rewinds the list to a checkpoint taken on the same list.
func (fl *FreeList) Restore(cp FreeListCheckpoint) {
	copy(fl.slots, cp.slots)
	fl.head = cp.head
	fl.tail = cp.tail
	fl.headPhase = cp.headPhase
	fl.tailPhase = cp.tailPhase
}
