package service

import (
	"fmt"
	"sort"

	"renaming"
	"renaming/internal/sim"
)

// epochLabel is the DeriveSeed stream label for per-epoch one-shot
// seeds ("epch"), mixed with the epoch index.
const epochLabel uint64 = 0x65706368

// EpochSeed derives the one-shot seed an epoch runs under from the
// service seed — exported so telemetry records can carry the exact seed
// that reproduces the epoch's inner run.
func EpochSeed(seed int64, epoch int) int64 {
	return sim.DeriveSeed(seed, epochLabel^uint64(epoch)<<8)
}

// Core selects which one-shot algorithm runs inside each epoch.
type Core string

const (
	// CoreCrash runs the crash-resilient algorithm (Section 2) per epoch.
	CoreCrash Core = "crash"
	// CoreByzantine runs the Byzantine-resilient, order-preserving
	// algorithm (Section 3) per epoch; it additionally gives every join
	// batch the per-epoch order guarantee.
	CoreByzantine Core = "byzantine"
)

// Config configures a Service.
type Config struct {
	// Capacity is the size of the recyclable namespace [1, Capacity]; it
	// bounds the live population. Tightness means live names never leave
	// this window no matter how many clients the trace serves in total.
	Capacity int
	// BigN is the original namespace clients draw identities from;
	// defaults to 16·Capacity. Every epoch's one-shot run works over
	// [BigN], so it also bounds the inner protocol's log N factors.
	BigN int
	// Seed fixes every epoch's one-shot execution; equal configs and
	// request streams produce bit-identical epoch results at any
	// EngineWorkers setting.
	Seed int64
	// Core selects the inner one-shot algorithm; defaults to CoreCrash.
	Core Core
	// CommitteeScale is passed to the crash core; defaults to 0.02 (the
	// experiment suite's scaled committee).
	CommitteeScale float64
	// PoolProb is passed to the Byzantine core; 0 selects 20/batch per
	// epoch (the E5 pool, resized to the join batch).
	PoolProb float64
	// EngineWorkers pins the round engine's worker count inside every
	// epoch (sim.WithEngineWorkers); results are bit-identical at any
	// setting.
	EngineWorkers int
	// Profile records each epoch's per-round traffic profile into
	// EpochResult.RoundStats through the streaming digest path (8 bytes
	// per round, no materialized timeline).
	Profile bool
	// FaultForEpoch, when non-nil, supplies the crash adversary for the
	// epoch's one-shot run over a join batch of the given size — the
	// hook the campaign engine's churn strategies plug into. Node
	// indices in the returned spec address links of the epoch's network
	// (0..batch-1); out-of-range events are skipped by the schedule.
	FaultForEpoch func(epoch, batch int) renaming.FaultSpec
	// ByzantineForEpoch, when non-nil and Core is CoreByzantine,
	// supplies the corruption map for the epoch's one-shot run (link
	// index within the batch → behaviour).
	ByzantineForEpoch func(epoch, batch int) map[int]renaming.Behavior
	// FailEpoch, when non-nil, forces an abort of epochs it returns true
	// for — after the leaves and the one-shot run have mutated state, so
	// the rollback path is exercised end-to-end. Test hook.
	FailEpoch func(epoch int) bool
}

func (cfg Config) withDefaults() (Config, error) {
	if cfg.Capacity <= 0 {
		return cfg, fmt.Errorf("service: capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.BigN == 0 {
		cfg.BigN = 16 * cfg.Capacity
	}
	if cfg.BigN < cfg.Capacity {
		return cfg, fmt.Errorf("service: original namespace N=%d smaller than capacity %d", cfg.BigN, cfg.Capacity)
	}
	if cfg.Core == "" {
		cfg.Core = CoreCrash
	}
	if cfg.Core != CoreCrash && cfg.Core != CoreByzantine {
		return cfg, fmt.Errorf("service: unknown core %q", cfg.Core)
	}
	if cfg.CommitteeScale == 0 {
		cfg.CommitteeScale = 0.02
	}
	return cfg, nil
}

// Client is one external principal requesting a name. ID is its
// original identity in [1, BigN]; live clients have distinct IDs.
type Client struct {
	ID int `json:"id"`
}

// Assignment is one committed name grant: the joiner's one-shot rank in
// [1, batch] and the free-list name it mapped to. Assignments of an
// epoch are listed in rank order, which is also free-list pop order.
type Assignment struct {
	Client int `json:"client"`
	Name   int `json:"name"`
	Rank   int `json:"rank"`
}

// Release is one committed name release.
type Release struct {
	Client int `json:"client"`
	Name   int `json:"name"`
}

// EpochResult is the telemetry of one epoch: the committed state deltas
// (empty when the epoch aborted), the post-epoch population, and the
// inner one-shot run's communication metrics. It is plain marshalable
// data — the churn harness's JSONL records and the determinism
// fingerprint both derive from it.
type EpochResult struct {
	Epoch int `json:"epoch"`
	// JoinsRequested and LeavesRequested are the epoch's batch sizes.
	JoinsRequested  int `json:"joinsRequested"`
	LeavesRequested int `json:"leavesRequested"`
	// Joined counts committed joins; FailedJoins counts joiners that
	// crashed (or were corrupted) out of the one-shot run and got no
	// name. Joined + FailedJoins = JoinsRequested on a committed epoch.
	Joined      int `json:"joined"`
	FailedJoins int `json:"failedJoins"`
	// Aborted marks a rolled-back epoch: no state change committed,
	// AbortReason says why. The communication metrics still reflect the
	// traffic the failed attempt cost.
	Aborted     bool   `json:"aborted,omitempty"`
	AbortReason string `json:"abortReason,omitempty"`
	// Assignments and Released are the committed deltas, in rank order
	// and release order respectively.
	Assignments []Assignment `json:"assignments,omitempty"`
	Released    []Release    `json:"released,omitempty"`
	// Live, FreeNames, PeakLive describe the post-epoch population;
	// Live + FreeNames = Capacity (the conservation invariant).
	Live      int `json:"live"`
	FreeNames int `json:"freeNames"`
	PeakLive  int `json:"peakLive"`
	// Recycled counts this epoch's grants of names that had previous
	// owners — the evidence names actually return to service.
	Recycled int `json:"recycled"`

	// One-shot run metrics (zero when the epoch had no joiners).
	Rounds          int   `json:"rounds"`
	Messages        int64 `json:"messages"`
	Bits            int64 `json:"bits"`
	HonestMessages  int64 `json:"honestMessages"`
	HonestBits      int64 `json:"honestBits"`
	Crashes         int   `json:"crashes"`
	Byzantine       int   `json:"byzantine,omitempty"`
	CommitteeSize   int   `json:"committeeSize,omitempty"`
	Unique          bool  `json:"unique"`
	AssumptionHolds bool  `json:"assumptionHolds"`
	// RoundStats is the epoch's per-round traffic profile (Config.Profile).
	RoundStats *renaming.RoundStats `json:"trace,omitempty"`
}

// rankedJoin pairs a surviving joiner's link with its one-shot rank.
type rankedJoin struct{ link, rank int }

// Service is the long-lived renaming service. It is single-threaded by
// design: epochs are stateful and strictly ordered (parallelism lives
// inside each epoch's round engine, behind EngineWorkers).
//
// Per-epoch overhead is O(batch), independent of Capacity: rollback
// records an undo journal of only the entries the epoch touches (see
// journal.go), the sorted live view is materialized lazily from O(batch)
// membership deltas, and the inner one-shot runs share a pooled round
// engine through a renaming.Session.
type Service struct {
	cfg  Config
	free *FreeList
	// owner is the committed name table (AMT analog): name → client ID,
	// 0 when free. names is the committed rename-map (RMT analog):
	// client ID → name; its key set is the authoritative live
	// membership.
	owner []int32
	names map[int]int
	// uses counts grants per name; a grant of a name with uses > 0 is a
	// recycle.
	uses []uint32

	// Incremental live view. live is the cached ascending materialization
	// of the membership; deltaAdd/deltaDel hold the joins and leaves
	// committed since it was last current. LiveClients folds the deltas
	// in with one merge (O(live + batch·log batch)) instead of paying an
	// O(live) memmove per join/leave. liveSpare double-buffers the merge
	// and addSort is the sort scratch, so steady-state materialization
	// allocates nothing.
	live      []int
	liveSpare []int
	deltaAdd  map[int]struct{}
	deltaDel  map[int]struct{}
	addSort   []int

	// jnl is the current epoch's undo journal (journal.go).
	// snapshotRollback switches RunEpoch's abort path to the retained
	// full-snapshot implementation — the model the differential property
	// tests drive in lockstep with the journal. Production epochs always
	// run journaled.
	jnl              journal
	snapshotRollback bool

	// Epoch-stamped validation scratch: a map entry is "seen this epoch"
	// iff it holds the current stamp, so the maps are never cleared —
	// reused across epochs with zero per-epoch allocation.
	valStamp  uint64
	seenJoin  map[int]uint64
	seenLeave map[int]uint64

	// Reused per-epoch scratch.
	leavesBuf []int // epoch-local copy of the leave batch
	idsBuf    []int // joiner identities handed to the one-shot core
	rankedBuf []rankedJoin

	// session pools the one-shot round engine across epochs (worker
	// goroutines, inbox slabs, counters); Close releases it.
	session *renaming.Session

	epoch    int
	peakLive int

	// Cumulative counters over the service lifetime.
	totalJoined   int64
	totalFailed   int64
	totalReleased int64
	totalRecycled int64
	totalAborts   int64
}

// New builds a service with an all-free namespace.
func New(cfg Config) (*Service, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	free, err := NewFreeList(cfg.Capacity)
	if err != nil {
		return nil, err
	}
	return &Service{
		cfg:       cfg,
		free:      free,
		owner:     make([]int32, cfg.Capacity+1),
		names:     make(map[int]int),
		uses:      make([]uint32, cfg.Capacity+1),
		deltaAdd:  make(map[int]struct{}),
		deltaDel:  make(map[int]struct{}),
		seenJoin:  make(map[int]uint64),
		seenLeave: make(map[int]uint64),
		session:   renaming.NewSession(),
	}, nil
}

// Close releases the pooled one-shot engine (parked worker goroutines
// and slab arenas). Optional — a finalizer covers dropped services —
// but deterministic callers that build many services (the campaign
// engine builds one per execution) should Close each. Nil-safe and
// idempotent.
func (s *Service) Close() {
	if s != nil {
		s.session.Close()
	}
}

// Capacity returns the namespace size.
func (s *Service) Capacity() int { return s.cfg.Capacity }

// Epoch returns the next epoch index RunEpoch will execute.
func (s *Service) Epoch() int { return s.epoch }

// Live returns the live population.
func (s *Service) Live() int { return len(s.names) }

// FreeNames returns the free-list length.
func (s *Service) FreeNames() int { return s.free.Len() }

// LiveClients returns the live client IDs in ascending order,
// materializing any membership deltas committed since the last call.
// The returned slice is owned by the service and valid until the next
// mutating call (RunEpoch); callers must not mutate it.
func (s *Service) LiveClients() []int {
	s.materializeLive()
	return s.live
}

// NameOf returns the committed name of a client.
func (s *Service) NameOf(client int) (int, bool) {
	name, ok := s.names[client]
	return name, ok
}

// Snapshot returns a copy of the committed client → name mapping. It is
// O(live) — a caller/oracle convenience for state comparison, not a
// hot-path helper: the service itself never snapshots (rollback is the
// O(touched) undo journal, see journal.go).
func (s *Service) Snapshot() map[int]int {
	out := make(map[int]int, len(s.names))
	for c, n := range s.names {
		out[c] = n
	}
	return out
}

// Recycled returns the cumulative count of recycled grants.
func (s *Service) Recycled() int64 { return s.totalRecycled }

// Aborts returns the cumulative count of rolled-back epochs.
func (s *Service) Aborts() int64 { return s.totalAborts }

// liveJoin and liveLeave apply one committed membership edit to the
// pending delta sets in O(1). A client never joins and leaves within
// one epoch (validation rejects joiners that are live and leavers that
// are not), but across epochs without a materialization the pairs
// cancel: a leave of a pending add simply removes the add, and vice
// versa, so deltaAdd ∩ live = ∅ and deltaDel ⊆ live always hold.
func (s *Service) liveJoin(client int) {
	if _, ok := s.deltaDel[client]; ok {
		delete(s.deltaDel, client)
	} else {
		s.deltaAdd[client] = struct{}{}
	}
}

func (s *Service) liveLeave(client int) {
	if _, ok := s.deltaAdd[client]; ok {
		delete(s.deltaAdd, client)
	} else {
		s.deltaDel[client] = struct{}{}
	}
}

// materializeLive folds the pending membership deltas into the cached
// sorted view with a single merge: the adds are sorted (O(batch·log
// batch)), then merged with the previous view while entries in deltaDel
// are dropped (O(live)). The merge writes into the spare buffer, so
// steady state allocates nothing.
func (s *Service) materializeLive() {
	if len(s.deltaAdd) == 0 && len(s.deltaDel) == 0 {
		return
	}
	adds := s.addSort[:0]
	for c := range s.deltaAdd {
		adds = append(adds, c)
	}
	sort.Ints(adds)
	out := s.liveSpare[:0]
	i := 0
	for _, c := range adds {
		for i < len(s.live) && s.live[i] < c {
			if _, dead := s.deltaDel[s.live[i]]; !dead {
				out = append(out, s.live[i])
			}
			i++
		}
		out = append(out, c)
	}
	for ; i < len(s.live); i++ {
		if _, dead := s.deltaDel[s.live[i]]; !dead {
			out = append(out, s.live[i])
		}
	}
	s.addSort = adds
	s.liveSpare = s.live
	s.live = out
	clear(s.deltaAdd)
	clear(s.deltaDel)
}

// checkpoint is the full pre-epoch snapshot: free list, both mapping
// directions, and the sorted live view. Retained as the rollback
// *model*: production epochs roll back via the undo journal
// (journal.go, O(touched)), and the differential property tests drive
// both implementations in lockstep to prove them equivalent — this copy
// is O(Capacity) (~12 MB per epoch at Capacity 2^20), which is exactly
// what the journal removed from the hot path.
type checkpoint struct {
	free  FreeListCheckpoint
	owner []int32
	names map[int]int
	live  []int
}

func (s *Service) takeCheckpoint() checkpoint {
	s.materializeLive()
	return checkpoint{
		free:  s.free.Checkpoint(),
		owner: append([]int32(nil), s.owner...),
		names: s.Snapshot(),
		live:  append([]int(nil), s.live...),
	}
}

func (s *Service) restore(cp checkpoint) {
	s.free.Restore(cp.free)
	copy(s.owner, cp.owner)
	s.names = cp.names
	s.live = cp.live
	// The checkpoint's live view predates the epoch's edits; drop them.
	clear(s.deltaAdd)
	clear(s.deltaDel)
}

// RunEpoch executes one epoch: release the leavers' names, run the
// one-shot protocol over the join batch, map surviving ranks onto
// free-list pops, and commit — or roll the whole epoch back when the
// one-shot run leaves the guarantee envelope. Request-stream errors
// (an unknown leaver, a duplicate or out-of-range joiner) are caller
// bugs and return an error with no state change; protocol-level
// failures abort and roll back instead.
func (s *Service) RunEpoch(joins []Client, leaves []int) (*EpochResult, error) {
	epoch := s.epoch
	res := &EpochResult{
		Epoch:           epoch,
		JoinsRequested:  len(joins),
		LeavesRequested: len(leaves),
		Unique:          true,
		AssumptionHolds: true,
	}
	if err := s.validateRequests(joins, leaves); err != nil {
		return nil, fmt.Errorf("service: epoch %d: %w", epoch, err)
	}
	// Copy the leave batch: the caller may have passed (a slice of) the
	// live view, whose backing array the next materialization reuses.
	s.leavesBuf = append(s.leavesBuf[:0], leaves...)
	leaves = s.leavesBuf
	s.epoch++

	var cp checkpoint
	if s.snapshotRollback {
		cp = s.takeCheckpoint()
	}
	s.jnl.reset()
	rollback := func() {
		if s.snapshotRollback {
			s.restore(cp)
		} else {
			s.rollbackJournal()
		}
	}
	abort := func(reason string) *EpochResult {
		rollback()
		s.totalAborts++
		res.Aborted = true
		res.AbortReason = reason
		res.Assignments = nil
		res.Released = nil
		res.Joined = 0
		res.FailedJoins = 0
		res.Recycled = 0
		s.fillPopulation(res)
		return res
	}

	// Leaves first: an epoch may recycle the names it just released.
	if len(leaves) > 0 {
		res.Released = make([]Release, 0, len(leaves))
	}
	for _, client := range leaves {
		name := s.names[client]
		s.jnl.record(opNamesSet, client, name)
		delete(s.names, client)
		s.jnl.record(opOwner, name, int(s.owner[name]))
		s.owner[name] = 0
		s.jnl.record(opLiveLeave, client, 0)
		s.liveLeave(client)
		prevSlot := s.free.TailSlot()
		if err := s.free.Push(name); err != nil {
			// Unreachable when the tables are consistent; surface loudly.
			rollback()
			return nil, fmt.Errorf("service: epoch %d: %w", epoch, err)
		}
		s.jnl.record(opFreePush, int(prevSlot), 0)
		res.Released = append(res.Released, Release{Client: client, Name: name})
	}

	if len(joins) > 0 {
		oneShot, err := s.runOneShot(epoch, joins)
		if err != nil {
			rollback()
			return nil, fmt.Errorf("service: epoch %d: %w", epoch, err)
		}
		res.Rounds = oneShot.Rounds
		res.Messages = oneShot.Messages
		res.Bits = oneShot.Bits
		res.HonestMessages = oneShot.HonestMessages
		res.HonestBits = oneShot.HonestBits
		res.Crashes = oneShot.Crashes
		res.Byzantine = oneShot.Byzantine
		res.CommitteeSize = oneShot.CommitteeSize
		res.Unique = oneShot.Unique
		res.AssumptionHolds = oneShot.AssumptionHolds
		res.RoundStats = oneShot.RoundStats
		if !oneShot.Unique {
			return abort("one-shot run violated strong renaming"), nil
		}
		if s.cfg.Core == CoreByzantine && !oneShot.AssumptionHolds {
			return abort("committee assumption broken"), nil
		}

		// Survivors in rank order; rank order is pop order, so the i-th
		// ranked joiner receives the i-th oldest free name.
		survivors := s.rankedBuf[:0]
		for link, rank := range oneShot.NewIDByLink {
			if rank >= 1 {
				survivors = append(survivors, rankedJoin{link: link, rank: rank})
			}
		}
		s.rankedBuf = survivors
		sort.Slice(survivors, func(a, b int) bool { return survivors[a].rank < survivors[b].rank })
		if len(survivors) > s.free.Len() {
			return abort(fmt.Sprintf("free list drained: %d survivors, %d free names", len(survivors), s.free.Len())), nil
		}
		if len(survivors) > 0 {
			res.Assignments = make([]Assignment, 0, len(survivors))
		}
		for _, sv := range survivors {
			name, ok := s.free.Pop()
			if !ok {
				return abort("free list drained mid-commit"), nil
			}
			s.jnl.record(opFreePop, 0, 0)
			client := joins[sv.link].ID
			if s.uses[name] > 0 {
				res.Recycled++
				s.totalRecycled++
			}
			// uses is deliberately not journaled: an abort keeps the grant
			// count (see journal.go).
			s.uses[name]++
			s.jnl.record(opOwner, name, int(s.owner[name]))
			s.owner[name] = int32(client)
			s.jnl.record(opNamesDel, client, 0)
			s.names[client] = name
			s.jnl.record(opLiveJoin, client, 0)
			s.liveJoin(client)
			res.Assignments = append(res.Assignments, Assignment{Client: client, Name: name, Rank: sv.rank})
		}
		res.Joined = len(survivors)
		res.FailedJoins = len(joins) - len(survivors)
	}

	if s.cfg.FailEpoch != nil && s.cfg.FailEpoch(epoch) {
		return abort("fault injection"), nil
	}

	// Commit: the journal's before-images are dead weight now.
	s.jnl.reset()
	s.totalJoined += int64(res.Joined)
	s.totalFailed += int64(res.FailedJoins)
	s.totalReleased += int64(len(res.Released))
	if len(s.names) > s.peakLive {
		s.peakLive = len(s.names)
	}
	s.fillPopulation(res)
	return res, nil
}

func (s *Service) fillPopulation(res *EpochResult) {
	res.Live = len(s.names)
	res.FreeNames = s.free.Len()
	res.PeakLive = s.peakLive
}

// validateRequests checks the epoch's request stream. The seen maps are
// epoch-stamped scratch: an entry marks its key as seen only while it
// holds the current stamp, so the maps are reused across epochs without
// clearing — zero allocation per epoch in steady state.
func (s *Service) validateRequests(joins []Client, leaves []int) error {
	s.valStamp++
	stamp := s.valStamp
	for _, c := range joins {
		if c.ID < 1 || c.ID > s.cfg.BigN {
			return fmt.Errorf("joiner %d outside [1, %d]", c.ID, s.cfg.BigN)
		}
		if s.seenJoin[c.ID] == stamp {
			return fmt.Errorf("duplicate joiner %d", c.ID)
		}
		s.seenJoin[c.ID] = stamp
		if _, live := s.names[c.ID]; live {
			return fmt.Errorf("joiner %d is already live", c.ID)
		}
	}
	for _, client := range leaves {
		if s.seenLeave[client] == stamp {
			return fmt.Errorf("duplicate leaver %d", client)
		}
		s.seenLeave[client] = stamp
		if _, live := s.names[client]; !live {
			return fmt.Errorf("leaver %d is not live", client)
		}
	}
	return nil
}

// runOneShot executes the configured core over the join batch on the
// service's pooled engine (worker goroutines and slab arenas persist
// across epochs). The joiners' original identities are the protocol's
// input identities, so the epoch's rank assignment inherits the core's
// guarantees verbatim.
func (s *Service) runOneShot(epoch int, joins []Client) (*renaming.Result, error) {
	k := len(joins)
	ids := s.idsBuf[:0]
	for _, c := range joins {
		ids = append(ids, c.ID)
	}
	s.idsBuf = ids
	seed := EpochSeed(s.cfg.Seed, epoch)
	var fault renaming.FaultSpec
	if s.cfg.FaultForEpoch != nil {
		fault = s.cfg.FaultForEpoch(epoch, k)
	}
	if s.cfg.Core == CoreByzantine {
		spec := renaming.ByzSpec{
			N: s.cfg.BigN, IDs: ids, Seed: seed,
			PoolProb:      s.cfg.PoolProb,
			Fault:         fault,
			Profile:       s.cfg.Profile,
			EngineWorkers: s.cfg.EngineWorkers,
		}
		if spec.PoolProb == 0 {
			spec.PoolProb = 20.0 / float64(k)
		}
		if s.cfg.ByzantineForEpoch != nil {
			spec.Byzantine = s.cfg.ByzantineForEpoch(epoch, k)
		}
		return s.session.RunByzantine(k, spec)
	}
	return s.session.RunCrash(k, renaming.CrashSpec{
		N: s.cfg.BigN, IDs: ids, Seed: seed,
		CommitteeScale: s.cfg.CommitteeScale,
		Fault:          fault,
		Profile:        s.cfg.Profile,
		EngineWorkers:  s.cfg.EngineWorkers,
	})
}
