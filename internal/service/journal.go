package service

// The undo journal is the service's O(touched) rollback mechanism. An
// epoch that edits k entries appends k before-image records; commit is
// truncation, abort replays the records in reverse. It replaces the
// full-snapshot checkpoint that copied the owner array, the names map,
// the live view, and the free-list slots every epoch — O(Capacity) work
// that dominated per-epoch cost at large namespaces (at Capacity 2^20
// the copies alone were ~12 MB/epoch). The snapshot implementation is
// retained (takeCheckpoint/restore) as the model the differential
// property tests run in lockstep with the journal.
//
// Deliberately NOT journaled, mirroring what the snapshot rollback
// restored: the uses[] grant counters and totalRecycled keep their
// increments across an abort (a name handed out by a run that was later
// rolled back has still been observed by clients, so its next grant is
// still a recycle), and the epoch counter stays advanced.

// opKind tags one journal record with the mutation it undoes.
type opKind uint8

const (
	// opFreePush: a Push overwrote the slot behind the tail; a holds the
	// slot's previous contents.
	opFreePush opKind = iota + 1
	// opFreePop: a Pop advanced the head; cursor rewind only.
	opFreePop
	// opOwner: owner[a] previously held b.
	opOwner
	// opNamesSet: names[a] existed and mapped to b.
	opNamesSet
	// opNamesDel: names[a] did not exist.
	opNamesDel
	// opLiveJoin: client a entered the live membership.
	opLiveJoin
	// opLiveLeave: client a left the live membership.
	opLiveLeave
)

// undoOp is one before-image record; a and b are kind-dependent (see the
// opKind constants).
type undoOp struct {
	kind opKind
	a, b int
}

// journal is an epoch's append-only before-image log. The backing array
// is reused across epochs, so steady-state epochs allocate nothing here.
type journal struct {
	ops []undoOp
}

func (j *journal) reset() { j.ops = j.ops[:0] }

func (j *journal) record(kind opKind, a, b int) {
	j.ops = append(j.ops, undoOp{kind: kind, a: a, b: b})
}

// rollbackJournal replays the epoch's journal in reverse, applying the
// inverse of each recorded mutation. Afterwards the service state is
// bit-exactly the pre-epoch state (the differential tests compare every
// field against the full-snapshot model, aborted epochs included).
func (s *Service) rollbackJournal() {
	for i := len(s.jnl.ops) - 1; i >= 0; i-- {
		op := s.jnl.ops[i]
		switch op.kind {
		case opFreePush:
			s.free.UndoPush(int32(op.a))
		case opFreePop:
			s.free.UndoPop()
		case opOwner:
			s.owner[op.a] = int32(op.b)
		case opNamesSet:
			s.names[op.a] = op.b
		case opNamesDel:
			delete(s.names, op.a)
		case opLiveJoin:
			// Inverse of the join's membership edit.
			s.liveLeave(op.a)
		case opLiveLeave:
			s.liveJoin(op.a)
		}
	}
	s.jnl.reset()
}
