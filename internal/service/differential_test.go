package service

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"renaming"
)

// The differential suite pins the undo journal's exactness: a journaled
// service and a full-snapshot-rollback service (the retained model
// implementation, snapshotRollback=true) are driven in lockstep through
// random join/leave/abort traces, and after every epoch the complete
// state — owner table, rename map, materialized live view, uses
// counters, free-list slots and cursors, epoch and lifetime counters —
// must be identical, aborted and drained-free-list epochs included.

// svcState is a deep copy of everything a Service owns, for lockstep
// comparison. Slice copies via append([]T(nil), ...) normalize empty to
// nil, so laziness differences in when buffers materialize can't cause
// spurious nil-vs-empty mismatches.
type svcState struct {
	Owner    []int32
	Names    map[int]int
	Live     []int
	Uses     []uint32
	Slots    []int32
	Head     int
	Tail     int
	HeadPh   uint8
	TailPh   uint8
	Epoch    int
	Peak     int
	Joined   int64
	Failed   int64
	Released int64
	Recycled int64
	Aborts   int64
}

func captureState(s *Service) svcState {
	return svcState{
		Owner:    append([]int32(nil), s.owner...),
		Names:    s.Snapshot(),
		Live:     append([]int(nil), s.LiveClients()...),
		Uses:     append([]uint32(nil), s.uses...),
		Slots:    append([]int32(nil), s.free.slots...),
		Head:     s.free.head,
		Tail:     s.free.tail,
		HeadPh:   s.free.headPhase,
		TailPh:   s.free.tailPhase,
		Epoch:    s.epoch,
		Peak:     s.peakLive,
		Joined:   s.totalJoined,
		Failed:   s.totalFailed,
		Released: s.totalReleased,
		Recycled: s.totalRecycled,
		Aborts:   s.totalAborts,
	}
}

// runDifferentialTrace drives both services through one random trace.
// The trace mixes committed epochs, forced aborts (FailEpoch fires after
// leaves and the one-shot run mutated state), oversubscribed join
// batches that drain the free list, crash faults that fail a subset of
// joiners, leave-only epochs, and empty epochs.
func runDifferentialTrace(t *testing.T, seed int64, epochs int) {
	t.Helper()
	const capacity = 6
	failFlag := false
	var fault renaming.FaultSpec
	mk := func(model bool) *Service {
		svc, err := New(Config{
			Capacity: capacity,
			BigN:     1 << 20,
			Seed:     seed,
			FaultForEpoch: func(epoch, batch int) renaming.FaultSpec {
				return fault
			},
			FailEpoch: func(epoch int) bool { return failFlag },
		})
		if err != nil {
			t.Fatal(err)
		}
		svc.snapshotRollback = model
		return svc
	}
	journaled := mk(false)
	defer journaled.Close()
	model := mk(true)
	defer model.Close()

	rng := rand.New(rand.NewSource(seed))
	nextID := 1
	for epoch := 0; epoch < epochs; epoch++ {
		liveJ := append([]int(nil), journaled.LiveClients()...)
		liveM := append([]int(nil), model.LiveClients()...)
		if !reflect.DeepEqual(liveJ, liveM) {
			t.Fatalf("seed %d epoch %d: live views diverged before the epoch: %v vs %v", seed, epoch, liveJ, liveM)
		}

		// Leaves: a random subset of the live population.
		perm := rng.Perm(len(liveJ))
		leaves := make([]int, 0, len(liveJ))
		for _, idx := range perm[:rng.Intn(len(liveJ)+1)] {
			leaves = append(leaves, liveJ[idx])
		}

		// Joins: usually within the post-leave free budget, sometimes
		// deliberately past it to force the drained-free-list abort.
		room := journaled.FreeNames() + len(leaves)
		var joinCount int
		if rng.Intn(5) == 0 {
			joinCount = room + 1 + rng.Intn(2)
		} else {
			joinCount = rng.Intn(room + 1)
		}
		joins := make([]Client, joinCount)
		for i := range joins {
			joins[i] = Client{ID: nextID}
			nextID++
		}

		// Shared per-epoch knobs: forced aborts and crash faults. Both
		// services read the same values through their hooks.
		failFlag = rng.Intn(4) == 0
		fault = renaming.FaultSpec{}
		if rng.Intn(3) == 0 {
			fault = renaming.FaultSpec{
				Kind:    renaming.FaultRandom,
				Budget:  1 + rng.Intn(2),
				Prob:    0.3,
				MidSend: rng.Intn(2) == 0,
			}
		}

		resJ, errJ := journaled.RunEpoch(joins, leaves)
		resM, errM := model.RunEpoch(joins, leaves)
		if (errJ == nil) != (errM == nil) || (errJ != nil && errJ.Error() != errM.Error()) {
			t.Fatalf("seed %d epoch %d: errors diverged: %v vs %v", seed, epoch, errJ, errM)
		}
		if errJ == nil {
			blobJ, err := json.Marshal(resJ)
			if err != nil {
				t.Fatal(err)
			}
			blobM, err := json.Marshal(resM)
			if err != nil {
				t.Fatal(err)
			}
			if string(blobJ) != string(blobM) {
				t.Fatalf("seed %d epoch %d: epoch results diverged:\njournal: %s\nmodel:   %s", seed, epoch, blobJ, blobM)
			}
		}
		stateJ, stateM := captureState(journaled), captureState(model)
		if !reflect.DeepEqual(stateJ, stateM) {
			t.Fatalf("seed %d epoch %d (aborted=%v): states diverged:\njournal: %+v\nmodel:   %+v",
				seed, epoch, resJ != nil && resJ.Aborted, stateJ, stateM)
		}
	}
	if journaled.Aborts() == 0 {
		t.Logf("seed %d: trace committed every epoch (no rollback exercised)", seed)
	}
}

// TestJournalMatchesSnapshotModel is the deterministic property test:
// many seeds, each a full random trace in lockstep.
func TestJournalMatchesSnapshotModel(t *testing.T) {
	epochs := 30
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 42, 1234}
	if testing.Short() {
		epochs = 15
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		runDifferentialTrace(t, seed, epochs)
	}
}

// FuzzJournalVsSnapshot lets the fuzzer hunt for trace shapes where the
// journal's reverse replay diverges from the full-snapshot restore.
func FuzzJournalVsSnapshot(f *testing.F) {
	for _, seed := range []int64{1, 77, 4096, -13} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runDifferentialTrace(t, seed, 12)
	})
}
