package service

import (
	"math/rand"
	"reflect"
	"testing"
)

// drain pops every free name, returning them in pop order (mutates fl).
func drain(fl *FreeList) []int {
	var out []int
	for {
		name, ok := fl.Pop()
		if !ok {
			return out
		}
		out = append(out, name)
	}
}

func TestFreeListNewPopsAscending(t *testing.T) {
	fl, err := NewFreeList(8)
	if err != nil {
		t.Fatal(err)
	}
	if !fl.Full() || fl.Empty() || fl.Len() != 8 {
		t.Fatalf("new list: Full=%v Empty=%v Len=%d, want full", fl.Full(), fl.Empty(), fl.Len())
	}
	for want := 1; want <= 8; want++ {
		name, ok := fl.Pop()
		if !ok || name != want {
			t.Fatalf("pop %d: got (%d, %v)", want, name, ok)
		}
	}
	if !fl.Empty() || fl.Len() != 0 {
		t.Fatalf("drained list: Empty=%v Len=%d", fl.Empty(), fl.Len())
	}
	if _, ok := fl.Pop(); ok {
		t.Fatal("pop from empty list succeeded")
	}
}

func TestFreeListRejectsBadCapacityAndNames(t *testing.T) {
	if _, err := NewFreeList(0); err == nil {
		t.Error("NewFreeList(0) succeeded")
	}
	fl, err := NewFreeList(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.Push(1); err == nil {
		t.Error("push into a full list succeeded")
	}
	fl.Pop()
	if err := fl.Push(0); err == nil {
		t.Error("push of name 0 succeeded")
	}
	if err := fl.Push(5); err == nil {
		t.Error("push of out-of-range name succeeded")
	}
}

// TestFreeListPhaseBitsAcrossWraps drives the ring through many full
// wrap-arounds and checks the phase bits keep full and empty
// distinguishable the whole way (head == tail in both states).
func TestFreeListPhaseBitsAcrossWraps(t *testing.T) {
	const capacity = 5
	fl, err := NewFreeList(capacity)
	if err != nil {
		t.Fatal(err)
	}
	for wrap := 0; wrap < 7; wrap++ {
		if !fl.Full() {
			t.Fatalf("wrap %d: list not full before drain (len %d)", wrap, fl.Len())
		}
		names := drain(fl)
		if len(names) != capacity {
			t.Fatalf("wrap %d: drained %d names, want %d", wrap, len(names), capacity)
		}
		if !fl.Empty() || fl.Full() {
			t.Fatalf("wrap %d: after drain Empty=%v Full=%v", wrap, fl.Empty(), fl.Full())
		}
		for i, name := range names {
			if err := fl.Push(name); err != nil {
				t.Fatalf("wrap %d: push %d: %v", wrap, name, err)
			}
			if fl.Len() != i+1 {
				t.Fatalf("wrap %d: Len=%d after %d pushes", wrap, fl.Len(), i+1)
			}
		}
		if fl.Empty() || !fl.Full() {
			t.Fatalf("wrap %d: after refill Empty=%v Full=%v", wrap, fl.Empty(), fl.Full())
		}
	}
}

// TestFreeListNoDoubleHandOut runs a seeded random push/pop workload
// against a set model: a popped name is live until pushed back, and the
// list must never hand out a name that is currently live.
func TestFreeListNoDoubleHandOut(t *testing.T) {
	const capacity = 17
	fl, err := NewFreeList(capacity)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	live := make(map[int]bool)
	var held []int
	for op := 0; op < 20000; op++ {
		if rng.Intn(2) == 0 {
			name, ok := fl.Pop()
			if !ok {
				if len(live) != capacity {
					t.Fatalf("op %d: pop failed with only %d/%d names live", op, len(live), capacity)
				}
				continue
			}
			if live[name] {
				t.Fatalf("op %d: name %d handed out while live", op, name)
			}
			live[name] = true
			held = append(held, name)
		} else if len(held) > 0 {
			i := rng.Intn(len(held))
			name := held[i]
			held = append(held[:i], held[i+1:]...)
			if err := fl.Push(name); err != nil {
				t.Fatalf("op %d: push %d: %v", op, name, err)
			}
			delete(live, name)
		}
		if fl.Len() != capacity-len(live) {
			t.Fatalf("op %d: Len=%d, model says %d free", op, fl.Len(), capacity-len(live))
		}
	}
}

// TestFreeListCheckpointRestore checks Restore rewinds to the exact
// pre-checkpoint state: the post-restore pop sequence matches the one
// observed right after the checkpoint, no matter what ran in between.
func TestFreeListCheckpointRestore(t *testing.T) {
	const capacity = 9
	fl, err := NewFreeList(capacity)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var held []int
	scramble := func(ops int) {
		for op := 0; op < ops; op++ {
			if rng.Intn(2) == 0 {
				if name, ok := fl.Pop(); ok {
					held = append(held, name)
				}
			} else if len(held) > 0 {
				name := held[len(held)-1]
				held = held[:len(held)-1]
				if err := fl.Push(name); err != nil {
					t.Fatalf("push %d: %v", name, err)
				}
			}
		}
	}
	scramble(100)

	cp := fl.Checkpoint()
	want := drain(fl)
	fl.Restore(cp)

	// Mutate aggressively past a wrap, then rewind.
	heldMark := len(held)
	scramble(300)
	held = held[:heldMark]
	fl.Restore(cp)

	if got := drain(fl); len(got) != len(want) {
		t.Fatalf("post-restore drain has %d names, want %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("post-restore drain[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
}

// FuzzFreeList drives the ring with a fuzzed op sequence against a
// plain slice FIFO model: every observable (pop results, Len, Empty,
// Full) must match the model at every step.
func FuzzFreeList(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 0, 0, 1, 1, 0})
	f.Add(uint8(1), []byte{0, 0, 1, 0})
	f.Add(uint8(13), []byte{1, 1, 1, 0, 1, 0, 0, 0, 0, 1, 1, 1, 1, 1, 0})
	f.Fuzz(func(t *testing.T, capByte uint8, ops []byte) {
		capacity := int(capByte)%32 + 1
		fl, err := NewFreeList(capacity)
		if err != nil {
			t.Fatal(err)
		}
		var model []int // free names in FIFO order
		for i := 1; i <= capacity; i++ {
			model = append(model, i)
		}
		var held []int
		for op, b := range ops {
			if b%2 == 0 {
				name, ok := fl.Pop()
				if ok != (len(model) > 0) {
					t.Fatalf("op %d: pop ok=%v with %d free in model", op, ok, len(model))
				}
				if ok {
					if name != model[0] {
						t.Fatalf("op %d: popped %d, model head %d", op, name, model[0])
					}
					model = model[1:]
					held = append(held, name)
				}
			} else if len(held) > 0 {
				name := held[int(b/2)%len(held)]
				for i, h := range held {
					if h == name {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
				if err := fl.Push(name); err != nil {
					t.Fatalf("op %d: push %d: %v", op, name, err)
				}
				model = append(model, name)
			}
			if fl.Len() != len(model) {
				t.Fatalf("op %d: Len=%d, model %d", op, fl.Len(), len(model))
			}
			if fl.Empty() != (len(model) == 0) || fl.Full() != (len(model) == capacity) {
				t.Fatalf("op %d: Empty=%v Full=%v with %d/%d free", op, fl.Empty(), fl.Full(), len(model), capacity)
			}
		}
	})
}

// TestFreeListUndoExact drives random push/pop bursts across multiple
// wrap-arounds, journaling each op's before-image, then undoes every
// burst in reverse and requires the full list state — slots, cursors,
// phase bits — to match a checkpoint taken before the burst. This is the
// free-list half of the undo journal's exactness contract.
func TestFreeListUndoExact(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 7, 16} {
		fl, err := NewFreeList(capacity)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(100 + capacity)))
		type undo struct {
			pop  bool
			prev int32
		}
		for burst := 0; burst < 50; burst++ {
			before := fl.Checkpoint()
			var ops []undo
			for step := 0; step < rng.Intn(2*capacity+2); step++ {
				if rng.Intn(2) == 0 {
					if name, ok := fl.Pop(); ok {
						ops = append(ops, undo{pop: true})
						// Keep popped names around implicitly; pushes below
						// may recycle arbitrary valid names.
						_ = name
					}
				} else if !fl.Full() {
					prev := fl.TailSlot()
					if err := fl.Push(1 + rng.Intn(capacity)); err != nil {
						t.Fatal(err)
					}
					ops = append(ops, undo{prev: prev})
				}
			}
			for i := len(ops) - 1; i >= 0; i-- {
				if ops[i].pop {
					fl.UndoPop()
				} else {
					fl.UndoPush(ops[i].prev)
				}
			}
			after := fl.Checkpoint()
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("capacity %d burst %d: undo did not restore the list: %+v -> %+v", capacity, burst, before, after)
			}
		}
	}
}
