// Package experiments regenerates every quantitative artifact of the
// paper: the Table 1 comparison, the scaling claims of Theorems 1.2 and
// 1.3, the Ω(n) lower bound of Theorem 1.4, the O(log N) message-size
// bound, and two ablations of the paper's design choices. Each experiment
// is indexed in DESIGN.md §4 and its measured output is recorded in
// EXPERIMENTS.md. The same entry points back cmd/benchtables and the
// bench_test.go benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"renaming/internal/plot"
)

// Table is one experiment's formatted output. Charts carries the sweep's
// figure renderings (written as SVG by cmd/benchtables -svgdir).
// Elapsed and SweepSeed are provenance for the run that produced the
// table (printed by cmd/benchtables, never rendered into the table text,
// so table output stays deterministic).
type Table struct {
	ID     string
	Title  string
	Notes  []string
	Header []string
	Rows   [][]string
	Charts []plot.Chart

	Elapsed   time.Duration
	SweepSeed int64
}

// NewTable creates a table with the given id, title, and column header.
func NewTable(id, title string, header ...string) *Table {
	return &Table{ID: id, Title: title, Header: header}
}

// AddRow appends one formatted row; cell count must match the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("experiments: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-form footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// fmtCount renders large counts with thousands separators for the tables.
func fmtCount(v int64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return strings.Join(parts, ",")
}

func fmtBool(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func fmtRatio(r float64) string { return fmt.Sprintf("%.2f", r) }

// Markdown renders the table as GitHub-flavoured Markdown, for embedding
// into EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", note)
	}
	return b.String()
}
