package experiments

import (
	"bytes"
	"strings"
	"testing"

	"renaming/internal/runner"
)

// runE4 runs the (cheap) E4 quick sweep with the given worker count,
// returning the rendered table and the deterministic JSONL artifact.
func runE4(t *testing.T, workers int, resume *runner.Artifact) (string, string) {
	t.Helper()
	var buf bytes.Buffer
	cfg := Config{
		Quick:   true,
		Workers: workers,
		Sinks:   []runner.Sink{&runner.JSONLSink{W: &buf, OmitVolatile: true}},
		Resume:  resume,
	}
	table, err := E4CrashWorstCase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return table.String(), buf.String()
}

// TestSweepWorkersDeterminism: a real experiment sweep produces a
// byte-identical table and JSONL artifact at -workers=1 and -workers=8.
func TestSweepWorkersDeterminism(t *testing.T) {
	serialTable, serialJSONL := runE4(t, 1, nil)
	pooledTable, pooledJSONL := runE4(t, 8, nil)
	if serialTable != pooledTable {
		t.Errorf("table differs between workers=1 and workers=8:\n%s\nvs\n%s", serialTable, pooledTable)
	}
	if serialJSONL != pooledJSONL {
		t.Errorf("JSONL artifact differs between workers=1 and workers=8:\n%s\nvs\n%s", serialJSONL, pooledJSONL)
	}
	if strings.Count(serialJSONL, "\n") == 0 {
		t.Error("sweep emitted no telemetry records")
	}
}

// TestSweepResume: resuming an experiment from its own artifact replays
// every point (no re-execution) and reproduces the identical table.
func TestSweepResume(t *testing.T) {
	origTable, origJSONL := runE4(t, 2, nil)
	art, err := runner.LoadArtifact(strings.NewReader(origJSONL))
	if err != nil {
		t.Fatal(err)
	}
	resumedTable, resumedJSONL := runE4(t, 2, art)
	if resumedTable != origTable {
		t.Errorf("resumed table differs:\n%s\nvs\n%s", resumedTable, origTable)
	}
	// The replayed artifact matches except for the resumed marker.
	if strings.ReplaceAll(resumedJSONL, ",\"resumed\":true", "") != origJSONL {
		t.Errorf("resumed artifact differs beyond the resumed flag:\n%s\nvs\n%s", resumedJSONL, origJSONL)
	}
	if !strings.Contains(resumedJSONL, "\"resumed\":true") {
		t.Error("resumed records not marked")
	}
}

// TestRunSeedCanonical: SweepSeed 0 preserves canonical point seeds;
// non-zero remixes them deterministically.
func TestRunSeedCanonical(t *testing.T) {
	base := Config{}
	if got := base.runSeed(42); got != 42 {
		t.Fatalf("canonical seed changed: %d", got)
	}
	remix := Config{SweepSeed: 9}
	a, b := remix.runSeed(42), remix.runSeed(42)
	if a == 42 || a != b {
		t.Fatalf("remixed seed wrong: %d, %d", a, b)
	}
	if remix.runSeed(43) == a {
		t.Fatal("distinct canonical seeds remixed to the same value")
	}
}
