package experiments

import (
	"fmt"
	"math"
	"time"

	"renaming"
	"renaming/internal/lowerbound"
	"renaming/internal/plot"
	"renaming/internal/runner"
	"renaming/internal/stats"
)

// IDs lists every experiment id in canonical order.
func IDs() []string {
	return []string{"e1", "e2", "e3", "e3n", "e4", "e5", "e5n", "e6",
		"e7", "e8", "e8c", "a1", "a2", "a3"}
}

// All runs every experiment in order.
func All(cfg Config) ([]*Table, error) {
	tables := make([]*Table, 0, len(IDs()))
	for _, id := range IDs() {
		table, err := ByID(id, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		tables = append(tables, table)
	}
	return tables, nil
}

// ByID runs one experiment by its id. The returned table carries the
// sweep's wall-clock and seed for provenance printing (cmd/benchtables).
func ByID(id string, cfg Config) (*Table, error) {
	start := time.Now()
	var (
		table *Table
		err   error
	)
	switch id {
	case "e1":
		table, err = E1Table1(cfg)
	case "e2":
		table, err = E2CrashRounds(cfg)
	case "e3":
		table, err = E3CrashMessagesVsF(cfg)
	case "e3n":
		table, err = E3nCrashMessagesVsN(cfg)
	case "e4":
		table, err = E4CrashWorstCase(cfg)
	case "e5":
		table, err = E5ByzantineVsF(cfg)
	case "e5n":
		table, err = E5nByzantineVsN(cfg)
	case "e6":
		table, err = E6OrderPreservation(cfg)
	case "e7":
		table, err = E7LowerBound(cfg)
	case "e8":
		table, err = E8MessageSize(cfg)
	case "e8c":
		table, err = E8cCongest(cfg)
	case "a1":
		table, err = A1ReelectionDoubling(cfg)
	case "a2":
		table, err = A2DivideAndConquer(cfg)
	case "a3":
		table, err = A3ElectionConstant(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown id %q", id)
	}
	if table != nil {
		table.Elapsed = time.Since(start)
		table.SweepSeed = cfg.SweepSeed
	}
	return table, err
}

func log2(n int) float64 { return math.Log2(math.Max(2, float64(n))) }

func log2Ceil(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// E1Table1 reproduces the paper's Table 1 empirically: each implemented
// algorithm at one network size, with the per-fault-model failure loads
// the table's asymptotics are about.
func E1Table1(cfg Config) (*Table, error) {
	n := cfg.pick(64, 192)
	byzF := n / 12
	crashF := n / 4
	var byzLinks []int
	for link := range splitWorldSet(n, byzF) {
		byzLinks = append(byzLinks, link)
	}
	points := []runner.Point{
		crashPoint("e1", "crash/f=0", n,
			renaming.CrashSpec{Seed: cfg.runSeed(1), CommitteeScale: 0.02},
			intParams("n", n, "algo", "crash")),
		crashPoint("e1", "crash/killer", n,
			renaming.CrashSpec{Seed: cfg.runSeed(2), CommitteeScale: 0.02,
				Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: crashF, MidSend: true}},
			intParams("n", n, "algo", "crash", "budget", crashF)),
		baselinePoint("e1", "baseline-a2a/random", n,
			renaming.BaselineSpec{Kind: renaming.BaselineAllToAllCrash, Seed: cfg.runSeed(3),
				Fault: renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: crashF, Prob: 0.05}},
			intParams("n", n, "algo", "baseline-a2a")),
		baselinePoint("e1", "baseline-collectsort", n,
			renaming.BaselineSpec{Kind: renaming.BaselineCollectSort, Seed: cfg.runSeed(4)},
			intParams("n", n, "algo", "baseline-sort")),
		byzPoint("e1", "byzantine/f=0", n, 1,
			renaming.ByzSpec{Seed: cfg.runSeed(5), PoolProb: 24.0 / float64(n)},
			intParams("n", n, "algo", "byzantine")),
		byzPoint("e1", "byzantine/split-world", n, 1,
			renaming.ByzSpec{Seed: cfg.runSeed(6), PoolProb: 24.0 / float64(n),
				Byzantine: splitWorldSet(n, byzF)},
			intParams("n", n, "algo", "byzantine", "f", byzF)),
		baselinePoint("e1", "baseline-byz-a2a", n,
			renaming.BaselineSpec{Kind: renaming.BaselineAllToAllByzantine, Seed: cfg.runSeed(7), Byzantine: byzLinks},
			intParams("n", n, "algo", "baseline-byz", "f", byzF)),
		baselinePoint("e1", "baseline-reliable-broadcast", n,
			renaming.BaselineSpec{Kind: renaming.BaselineConsensusBroadcast, Seed: cfg.runSeed(8), Byzantine: byzLinks},
			intParams("n", n, "algo", "baseline-rb", "f", byzF)),
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("E1", fmt.Sprintf("Table 1 comparison at n=%d", n),
		"algorithm", "faults", "rounds", "messages", "bits", "maxMsgBits", "strong", "order")
	add := func(name, faults string, m runner.Metrics) {
		t.AddRow(name, faults,
			fmt.Sprintf("%d", m.Rounds), fmtCount(m.HonestMessages),
			fmtCount(m.HonestBits), fmt.Sprintf("%d", m.MaxMessageBits),
			fmtBool(m.Unique), fmtBool(m.OrderPreserving))
	}
	add("this work (crash)", "f=0", recs[0].Metrics)
	add("this work (crash)", fmt.Sprintf("killer f≤%d (hit %d)", crashF, recs[1].Metrics.Crashes), recs[1].Metrics)
	add("all-to-all halving [34-style]", fmt.Sprintf("random f=%d", recs[2].Metrics.Crashes), recs[2].Metrics)
	add("collect+sort (crash-free)", "f=0", recs[3].Metrics)
	add("this work (Byzantine)", "f=0", recs[4].Metrics)
	add("this work (Byzantine)", fmt.Sprintf("split-world f=%d", byzF), recs[5].Metrics)
	if !recs[5].Metrics.AssumptionHolds {
		t.Note("Byzantine run at f=%d fell outside the committee assumption; rerun with another seed", byzF)
	}
	add("all-to-all Byz halving [33/34-style]", fmt.Sprintf("f=%d", byzF), recs[6].Metrics)
	add("reliable-broadcast ranking [20-style]", fmt.Sprintf("f=%d", byzF), recs[7].Metrics)

	t.Note("committee algorithms use scaled election constants (DESIGN.md §2) so committees are genuinely small at this n")
	return t, nil
}

// splitWorldSet corrupts f of n links with the split-world behavior,
// placed by renaming.AdversaryLinks (deduplicated stride). Experiment
// parameters are static, so a placement error is a programming bug.
func splitWorldSet(n, f int) map[int]renaming.Behavior {
	links, err := renaming.AdversaryLinks(n, f)
	if err != nil {
		panic(err)
	}
	set := make(map[int]renaming.Behavior, f)
	for _, link := range links {
		set[link] = renaming.BehaviorSplitWorld
	}
	return set
}

// E2CrashRounds verifies Theorem 1.2's time bound: the crash algorithm
// always finishes within 3·ceil(log2 n) phases (9·ceil(log2 n)+1 rounds
// in this simulator's 3-rounds-per-phase schedule), even against the
// committee killer.
func E2CrashRounds(cfg Config) (*Table, error) {
	sizes := []int{16, 64, 256, 1024}
	if !cfg.Quick {
		sizes = append(sizes, 4096)
		if cfg.Full {
			sizes = append(sizes, 16384, 32768, 65536)
		}
		if cfg.Huge {
			sizes = append(sizes, 262144, 1048576)
		}
	}
	var points []runner.Point
	for _, n := range sizes {
		// Above 4096 the killer budget is capped: the round bound under
		// test is independent of f, and an uncapped n/4 budget would make
		// the sweep about adversary bookkeeping rather than scaling. The
		// huge tier caps harder still — every committee wipe doubles the
		// re-election probability, so a 1024-crash budget inflates the
		// committee until one status round carries ~10⁹ messages (a
		// ~60 GB slab high-water at n = 2¹⁸, an OOM at 2²⁰); 64 crashes
		// exercise the same wipe/recovery path at feasible traffic.
		budget := n / 4
		if n > 4096 {
			budget = 1024
		}
		if n > 65536 {
			budget = 64
		}
		points = append(points,
			crashPoint("e2", fmt.Sprintf("killer/n=%d", n), n,
				renaming.CrashSpec{Seed: cfg.runSeed(int64(n)), CommitteeScale: 0.02,
					Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: budget, MidSend: true}},
				intParams("n", n, "fault", "killer")),
			crashPoint("e2", fmt.Sprintf("early-stop/n=%d", n), n,
				renaming.CrashSpec{Seed: cfg.runSeed(int64(n)), CommitteeScale: 0.02, EarlyStop: true},
				intParams("n", n, "fault", "none")),
		)
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("E2", "crash algorithm rounds vs n (worst-case adversary)",
		"n", "rounds", "bound 9·ceil(log2 n)+1", "rounds/log2(n)", "early-stop rounds (f=0)", "unique")
	chart := plot.Chart{Title: "E2: crash rounds vs n", XLabel: "n (log)", YLabel: "rounds",
		LogX: true, Series: make([]plot.Series, 2)}
	chart.Series[0].Name = "worst case (= bound 9·log2 n + 1)"
	chart.Series[1].Name = "early stop, f=0"
	for i, n := range sizes {
		worst, early := recs[2*i].Metrics, recs[2*i+1].Metrics
		bound := 9*int(math.Ceil(log2(n))) + 1
		for si, y := range []float64{float64(worst.Rounds), float64(early.Rounds)} {
			chart.Series[si].Xs = append(chart.Series[si].Xs, float64(n))
			chart.Series[si].Ys = append(chart.Series[si].Ys, y)
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", worst.Rounds),
			fmt.Sprintf("%d", bound), fmtRatio(float64(worst.Rounds)/log2(n)),
			fmt.Sprintf("%d", early.Rounds), fmtBool(worst.Unique && early.Unique))
		if worst.Rounds > bound {
			t.Note("BOUND VIOLATED at n=%d: %d > %d", n, worst.Rounds, bound)
		}
	}
	t.Note("rounds/log2(n) should be ~constant: the paper's O(log n) deterministic bound")
	t.Note("the early-stopping extension (EarlyStop option) halts after ~3·(log2 n + 2) rounds when nothing fails")
	t.Charts = append(t.Charts, chart)
	return t, nil
}

// E3CrashMessagesVsF verifies Theorem 1.2's message bound: at fixed n,
// messages grow like O((f+log n)·n·log n) in the actual number of crashes
// f, staying subquadratic while f = o(n/log n); the all-to-all baseline
// sits at Θ(n²·log n) regardless.
func E3CrashMessagesVsF(cfg Config) (*Table, error) {
	n := cfg.pick(256, 1024)
	budgets := []int{0, 1, 4, 16, 64}
	if !cfg.Quick {
		budgets = append(budgets, 256, n/2, n-1)
	}
	points := []runner.Point{
		baselinePoint("e3", "baseline-a2a", n,
			renaming.BaselineSpec{Kind: renaming.BaselineAllToAllCrash, Seed: cfg.runSeed(1)},
			intParams("n", n, "algo", "baseline-a2a")),
	}
	for _, budget := range budgets {
		points = append(points, crashPoint("e3", fmt.Sprintf("killer/budget=%d", budget), n,
			renaming.CrashSpec{Seed: cfg.runSeed(int64(1000 + budget)), CommitteeScale: 0.01,
				Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: budget, MidSend: true}},
			intParams("n", n, "budget", budget)))
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("E3", fmt.Sprintf("crash messages vs f at n=%d (committee killer)", n),
		"f (actual)", "messages", "model (f+log n)·n·log n", "msgs/model", "msgs/n²log n", "unique")
	n2logn := float64(n) * float64(n) * log2(n)
	for _, rec := range recs[1:] {
		m := rec.Metrics
		model := (float64(m.Crashes) + log2(n)) * float64(n) * log2(n)
		t.AddRow(fmt.Sprintf("%d", m.Crashes), fmtCount(m.Messages),
			fmtCount(int64(model)), fmtRatio(float64(m.Messages)/model),
			fmt.Sprintf("%.3f", float64(m.Messages)/n2logn), fmtBool(m.Unique))
	}
	base := recs[0].Metrics
	t.Note("all-to-all baseline at the same n: %s messages (%.2f of n²·log n) regardless of f",
		fmtCount(base.Messages), float64(base.Messages)/n2logn)
	t.Note("msgs/model stays bounded ⇒ the O((f+log n)·n·log n) bound of Theorem 1.2 holds; msgs/n²log n below the baseline at small f ⇒ adaptivity")
	return t, nil
}

// E4CrashWorstCase verifies the deterministic ceiling of Theorem 1.2: no
// adversary schedule pushes the crash algorithm past Θ(n²·log n)
// messages.
func E4CrashWorstCase(cfg Config) (*Table, error) {
	n := cfg.pick(128, 256)
	specs := []struct {
		name  string
		fault renaming.FaultSpec
		scale float64
	}{
		{"none", renaming.FaultSpec{Kind: renaming.FaultNone}, 0.02},
		{"none, paper constants (committee=all)", renaming.FaultSpec{Kind: renaming.FaultNone}, 1},
		{"random 25%", renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: n / 4, Prob: 0.1, MidSend: true}, 0.02},
		{"burst n/2 @ round 3", renaming.FaultSpec{Kind: renaming.FaultBurst, Round: 3, Nodes: firstK(n / 2)}, 0.02},
		{"committee killer n−1", renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: n - 1, MidSend: true}, 0.02},
	}
	var points []runner.Point
	for i, s := range specs {
		points = append(points, crashPoint("e4", s.name, n,
			renaming.CrashSpec{Seed: cfg.runSeed(int64(i + 1)), CommitteeScale: s.scale, Fault: s.fault},
			intParams("n", n, "adversary", s.name)))
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("E4", fmt.Sprintf("crash worst-case message ceiling at n=%d", n),
		"adversary", "f (actual)", "messages", "msgs/n²log n", "unique")
	n2logn := float64(n) * float64(n) * log2(n)
	worst := 0.0
	for i, s := range specs {
		m := recs[i].Metrics
		ratio := float64(m.Messages) / n2logn
		if ratio > worst {
			worst = ratio
		}
		t.AddRow(s.name, fmt.Sprintf("%d", m.Crashes), fmtCount(m.Messages),
			fmt.Sprintf("%.3f", ratio), fmtBool(m.Unique))
	}
	t.Note("worst observed ratio %.3f — the deterministic Θ(n² log n) ceiling holds with a small constant", worst)
	return t, nil
}

// E5ByzantineVsF verifies Theorem 1.3's scaling: rounds grow roughly
// linearly and messages like O~(f + n) in the actual number of Byzantine
// nodes, with the divide-and-conquer iteration count within Lemma 3.10's
// 4·f·log N.
func E5ByzantineVsF(cfg Config) (*Table, error) {
	n := cfg.pick(60, 120)
	bigN := 8 * n
	poolProb := 20.0 / float64(n)
	fs := []int{0, 1, 2, 4}
	if !cfg.Quick {
		fs = append(fs, 8, 16)
	}
	var points []runner.Point
	for _, f := range fs {
		points = append(points, byzPoint("e5", fmt.Sprintf("split-world/f=%d", f), n, 8,
			renaming.ByzSpec{N: bigN, Seed: cfg.runSeed(42), PoolProb: poolProb,
				Byzantine: splitWorldSet(n, f)},
			intParams("n", n, "N", bigN, "f", f)))
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("E5", fmt.Sprintf("Byzantine algorithm vs f at n=%d, N=%d (split-world)", n, bigN),
		"f", "committee", "iterations", "4·f·logN", "rounds", "messages", "model f·logN·log³n + n·logn", "msgs/model", "unique", "order")
	logN, logn := log2(bigN), log2(n)
	var fx, msgsY, itersY []float64
	for i, f := range fs {
		m := recs[i].Metrics
		model := float64(f)*logN*logn*logn*logn + float64(n)*logn
		iterBound := 4 * f * int(logN)
		if f == 0 {
			iterBound = 1
		}
		fx = append(fx, float64(f))
		msgsY = append(msgsY, float64(m.HonestMessages))
		itersY = append(itersY, float64(m.Iterations))
		t.AddRow(fmt.Sprintf("%d", f), fmt.Sprintf("%d", m.CommitteeSize),
			fmt.Sprintf("%d", m.Iterations), fmt.Sprintf("%d", iterBound),
			fmt.Sprintf("%d", m.Rounds), fmtCount(m.HonestMessages),
			fmtCount(int64(model)), fmtRatio(float64(m.HonestMessages)/model),
			fmtBool(m.Unique), fmtBool(m.OrderPreserving))
	}
	t.Note("iterations ≤ 4·f·logN (Lemma 3.10); msgs/model bounded ⇒ the O~(f+n) message claim of Theorem 1.3")
	t.Note("absolute counts carry a |committee|² ≈ log²n constant, so the crossover against Θ(n²) baselines lies beyond laptop n — see E5n for the growth rates")
	t.Charts = append(t.Charts,
		plot.Chart{Title: "E5: Byzantine messages vs f", XLabel: "f (actual Byzantine)", YLabel: "messages",
			Series: []plot.Series{{Name: "this work", Xs: fx, Ys: msgsY}}},
		plot.Chart{Title: "E5: divide-and-conquer iterations vs f", XLabel: "f (actual Byzantine)", YLabel: "iterations",
			Series: []plot.Series{{Name: "iterations", Xs: fx, Ys: itersY}}},
	)
	return t, nil
}

// runByzWithAssumption retries over seeds until the committee composition
// satisfies the paper's assumption (or attempts run out).
func runByzWithAssumption(n int, spec renaming.ByzSpec, attempts int) (*renaming.Result, error) {
	var last *renaming.Result
	for i := 0; i < attempts; i++ {
		res, err := renaming.RunByzantine(n, spec)
		if err != nil {
			return nil, err
		}
		last = res
		if res.AssumptionHolds {
			return res, nil
		}
		spec.Seed += 1000
	}
	return last, nil
}

// E6OrderPreservation verifies the order claims of Table 1: the
// Byzantine algorithm is order-preserving by construction; the crash
// algorithm (interval halving by rank of identity within an interval) is
// not, matching the "-" entry in the paper's table.
func E6OrderPreservation(cfg Config) (*Table, error) {
	n := cfg.pick(48, 96)
	patterns := []renaming.IDPattern{renaming.IDsEven, renaming.IDsRandom, renaming.IDsClustered}
	var points []runner.Point
	for _, pattern := range patterns {
		ids, err := renaming.GenerateIDs(n, 8*n, pattern, 11)
		if err != nil {
			return nil, err
		}
		points = append(points,
			crashPoint("e6", "crash/"+patternName(pattern), n,
				renaming.CrashSpec{N: 8 * n, IDs: ids, Seed: cfg.runSeed(13),
					Fault: renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: n / 6, Prob: 0.05}},
				intParams("n", n, "pattern", patternName(pattern), "algo", "crash")),
			byzPoint("e6", "byzantine/"+patternName(pattern), n, 8,
				renaming.ByzSpec{N: 8 * n, IDs: ids, Seed: cfg.runSeed(17),
					Byzantine: splitWorldSet(n, n/16)},
				intParams("n", n, "pattern", patternName(pattern), "algo", "byzantine")),
		)
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("E6", "order preservation across algorithms",
		"algorithm", "pattern", "unique", "order-preserving")
	for i, pattern := range patterns {
		crash, byz := recs[2*i].Metrics, recs[2*i+1].Metrics
		t.AddRow("this work (crash)", patternName(pattern), fmtBool(crash.Unique), fmtBool(crash.OrderPreserving))
		t.AddRow("this work (Byzantine)", patternName(pattern), fmtBool(byz.Unique), fmtBool(byz.OrderPreserving))
	}
	t.Note("the Byzantine algorithm must always be order-preserving (Theorem 1.3)")
	t.Note("the crash algorithm carries no order guarantee (Table 1 '-'), though its rank rule preserves order when views stay consistent")
	return t, nil
}

func patternName(p renaming.IDPattern) string {
	switch p {
	case renaming.IDsEven:
		return "even"
	case renaming.IDsRandom:
		return "random"
	default:
		return "clustered"
	}
}

// E7LowerBound reproduces Theorem 1.4's shape: the best budgeted
// anonymous-renaming strategy needs a message budget linear in n to reach
// success probability 3/4.
func E7LowerBound(cfg Config) (*Table, error) {
	trials := cfg.pick(400, 2000)
	sizes := []int{64, 256}
	if !cfg.Quick {
		sizes = append(sizes, 1024)
	}
	fracs := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.97, 1}
	var points []runner.Point
	for _, n := range sizes {
		n := n
		for _, frac := range fracs {
			frac := frac
			budget := int(frac * float64(n))
			points = append(points, funcPoint("e7", fmt.Sprintf("rate/n=%d/frac=%.2f", n, frac),
				cfg.runSeed(int64(n)), intParams("n", n, "budget", budget),
				func(seed int64) (runner.Metrics, error) {
					rate := lowerbound.SuccessRate(n, budget, trials, seed)
					return runner.Metrics{Extra: map[string]float64{"successRate": rate}}, nil
				}))
		}
		points = append(points, funcPoint("e7", fmt.Sprintf("min-budget/n=%d", n),
			cfg.runSeed(int64(n)), intParams("n", n, "target", "0.75"),
			func(seed int64) (runner.Metrics, error) {
				min := lowerbound.MinBudgetFor(n, 0.75, trials, seed)
				return runner.Metrics{Extra: map[string]float64{"minBudget": float64(min)}}, nil
			}))
	}
	// Cross-check with the on-the-wire protocol (real messages on the
	// simulator, not an analytical budget).
	wireN := 64
	wireTrials := cfg.pick(200, 1000)
	wireProbs := []float64{0.5, 0.9, 1}
	for _, prob := range wireProbs {
		prob := prob
		points = append(points, funcPoint("e7", fmt.Sprintf("wire/prob=%.2f", prob),
			cfg.runSeed(9), intParams("n", wireN, "requestProb", prob),
			func(seed int64) (runner.Metrics, error) {
				rate, msgs, err := lowerbound.ProtocolSuccessRate(wireN, prob, wireTrials, seed)
				if err != nil {
					return runner.Metrics{}, err
				}
				return runner.Metrics{Extra: map[string]float64{"successRate": rate, "messagesPerRun": msgs}}, nil
			}))
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("E7", "Theorem 1.4 lower bound: anonymous renaming success vs message budget",
		"n", "budget", "budget/n", "success rate")
	var chartSeries []plot.Series
	idx := 0
	for _, n := range sizes {
		series := plot.Series{Name: fmt.Sprintf("n=%d", n)}
		for _, frac := range fracs {
			budget := int(frac * float64(n))
			rate := recs[idx].Metrics.Extra["successRate"]
			idx++
			series.Xs = append(series.Xs, frac)
			series.Ys = append(series.Ys, rate)
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", budget),
				fmt.Sprintf("%.2f", frac), fmt.Sprintf("%.3f", rate))
		}
		chartSeries = append(chartSeries, series)
		min := int(recs[idx].Metrics.Extra["minBudget"])
		idx++
		t.Note("n=%d: smallest budget reaching success ≥ 3/4 is %d (%.2f·n) — Ω(n) messages are necessary",
			n, min, float64(min)/float64(n))
	}
	for _, prob := range wireProbs {
		m := recs[idx].Metrics
		idx++
		t.Note("on-the-wire protocol at n=%d, request prob %.2f: success %.3f with %.0f real messages/run",
			wireN, prob, m.Extra["successRate"], m.Extra["messagesPerRun"])
	}
	t.Charts = append(t.Charts, plot.Chart{
		Title: "E7: anonymous renaming success vs message budget", XLabel: "budget / n", YLabel: "success probability",
		Series: chartSeries,
	})
	return t, nil
}

// E8MessageSize verifies the O(log N) message-size claim of both
// theorems: the largest message grows logarithmically in the namespace
// size N and never faster.
func E8MessageSize(cfg Config) (*Table, error) {
	n := cfg.pick(64, 128)
	exps := []int{12, 20, 30, 44}
	if !cfg.Quick {
		exps = append(exps, 56)
	}
	byzExps := []int{10, 13, 16}
	var points []runner.Point
	for _, e := range exps {
		bigN := 1 << e
		ids, err := renaming.GenerateIDs(n, bigN, renaming.IDsRandom, int64(e))
		if err != nil {
			return nil, err
		}
		points = append(points, crashPoint("e8", fmt.Sprintf("crash/N=2^%d", e), n,
			renaming.CrashSpec{N: bigN, IDs: ids, Seed: cfg.runSeed(int64(e)), CommitteeScale: 0.05,
				Fault: renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: n / 8, Prob: 0.05}},
			intParams("n", n, "logN", e, "algo", "crash")))
	}
	for _, e := range byzExps {
		points = append(points, byzPoint("e8", fmt.Sprintf("byzantine/N=2^%d", e), n, 8,
			renaming.ByzSpec{N: 1 << e, Seed: cfg.runSeed(int64(e)),
				PoolProb: 18.0 / float64(n), Byzantine: splitWorldSet(n, 2)},
			intParams("n", n, "logN", e, "algo", "byzantine")))
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("E8", fmt.Sprintf("max message size vs namespace N at n=%d", n),
		"algorithm", "N", "maxMsgBits", "maxMsgBits/log2 N")
	for i, e := range exps {
		m := recs[i].Metrics
		t.AddRow("crash", fmt.Sprintf("2^%d", e), fmt.Sprintf("%d", m.MaxMessageBits),
			fmtRatio(float64(m.MaxMessageBits)/float64(e)))
	}
	for i, e := range byzExps {
		m := recs[len(exps)+i].Metrics
		t.AddRow("byzantine", fmt.Sprintf("2^%d", e), fmt.Sprintf("%d", m.MaxMessageBits),
			fmtRatio(float64(m.MaxMessageBits)/float64(e)))
	}
	t.Note("maxMsgBits/log2 N bounded ⇒ messages are O(log N) bits; both algorithms fit CONGEST for N=poly(n)")
	return t, nil
}

// A1ReelectionDoubling ablates the committee re-election probability
// doubling of Section 2: without it the adversary wipes committees at
// constant per-phase cost and the algorithm runs out of phases.
func A1ReelectionDoubling(cfg Config) (*Table, error) {
	n := cfg.pick(128, 256)
	seeds := cfg.pick(5, 10)
	variants := []bool{false, true}
	var points []runner.Point
	for _, disable := range variants {
		for seed := 0; seed < seeds; seed++ {
			name := "doubling-on"
			if disable {
				name = "doubling-off"
			}
			points = append(points, crashPoint("a1", fmt.Sprintf("%s/seed=%d", name, seed), n,
				renaming.CrashSpec{Seed: cfg.runSeed(int64(seed)), CommitteeScale: 0.02,
					DisableReelectionDoubling: disable,
					Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller,
						Budget: n - 1, MidSend: true}},
				intParams("n", n, "disableDoubling", disable)))
		}
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("A1", fmt.Sprintf("ablation: re-election probability doubling at n=%d (killer adversary)", n),
		"variant", "success rate", "avg crashes used", "avg messages")
	for vi, disable := range variants {
		successes, crashes, msgs := 0, int64(0), int64(0)
		for seed := 0; seed < seeds; seed++ {
			m := recs[vi*seeds+seed].Metrics
			if m.Unique {
				successes++
			}
			crashes += int64(m.Crashes)
			msgs += m.Messages
		}
		name := "doubling on (paper)"
		if disable {
			name = "doubling off (ablation)"
		}
		t.AddRow(name, fmt.Sprintf("%d/%d", successes, seeds),
			fmtCount(crashes/int64(seeds)), fmtCount(msgs/int64(seeds)))
	}
	t.Note("doubling forces the adversary to spend exponentially more crashes per wipe; without it the killer starves the run")
	return t, nil
}

// A2DivideAndConquer ablates the fingerprint divide-and-conquer of
// Section 3 against the naive per-bit consensus over the whole [N]
// vector.
func A2DivideAndConquer(cfg Config) (*Table, error) {
	n := cfg.pick(36, 48)
	bigN := 4 * n
	poolProb := 12.0 / float64(n)
	fs := []int{0, 2}
	splits := []bool{false, true}
	var points []runner.Point
	for _, f := range fs {
		for _, split := range splits {
			name := "fingerprint"
			if split {
				name = "per-bit"
			}
			points = append(points, byzPoint("a2", fmt.Sprintf("%s/f=%d", name, f), n, 8,
				renaming.ByzSpec{N: bigN, Seed: cfg.runSeed(int64(7 + f)), PoolProb: poolProb,
					SplitAlways: split, Byzantine: splitWorldSet(n, f)},
				intParams("n", n, "N", bigN, "f", f, "splitAlways", split)))
		}
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("A2", fmt.Sprintf("ablation: fingerprint divide-and-conquer vs per-bit consensus (n=%d, N=%d)", n, bigN),
		"variant", "f", "iterations", "rounds", "messages", "unique")
	idx := 0
	for _, f := range fs {
		for _, split := range splits {
			m := recs[idx].Metrics
			idx++
			name := "fingerprint D&C (paper)"
			if split {
				name = "per-bit consensus (ablation)"
			}
			t.AddRow(name, fmt.Sprintf("%d", f), fmt.Sprintf("%d", m.Iterations),
				fmt.Sprintf("%d", m.Rounds), fmtCount(m.HonestMessages), fmtBool(m.Unique))
		}
	}
	t.Note("the ablation pays Θ(N) consensus instances; fingerprinting pays O(f·log N) — the paper's core communication win")
	return t, nil
}

func firstK(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// E3nCrashMessagesVsN contrasts growth rates in n at a fixed failure
// load: the committee algorithm's messages grow ~n·log²n while the
// all-to-all baseline grows ~n²·log n — the asymptotic separation behind
// Theorem 1.2's subquadratic claim.
func E3nCrashMessagesVsN(cfg Config) (*Table, error) {
	sizes := []int{128, 256, 512}
	if !cfg.Quick {
		sizes = append(sizes, 1024, 2048)
	}
	// Beyond 2048 only the committee algorithm runs: the all-to-all
	// baseline would send Θ(n²·log n) messages (≈ 3.7G at n=16384) —
	// exactly the wall Theorem 1.2 escapes, so its column is left blank.
	var oursOnly []int
	if !cfg.Quick && cfg.Full {
		oursOnly = []int{4096, 8192, 16384, 32768, 65536}
	}
	if !cfg.Quick && cfg.Huge {
		oursOnly = append(oursOnly, 262144, 1048576)
	}
	const f = 8
	var points []runner.Point
	for _, n := range sizes {
		points = append(points,
			crashPoint("e3n", fmt.Sprintf("ours/n=%d", n), n,
				renaming.CrashSpec{Seed: cfg.runSeed(int64(n)), CommitteeScale: 0.01,
					Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: f, MidSend: true}},
				intParams("n", n, "budget", f)),
			baselinePoint("e3n", fmt.Sprintf("baseline/n=%d", n), n,
				renaming.BaselineSpec{Kind: renaming.BaselineAllToAllCrash, Seed: cfg.runSeed(int64(n)),
					Fault: renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: f, Prob: 0.05}},
				intParams("n", n, "budget", f)),
		)
	}
	for _, n := range oursOnly {
		points = append(points,
			crashPoint("e3n", fmt.Sprintf("ours/n=%d", n), n,
				renaming.CrashSpec{Seed: cfg.runSeed(int64(n)), CommitteeScale: 0.01,
					Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: f, MidSend: true}},
				intParams("n", n, "budget", f)),
		)
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("E3n", "crash messages vs n at fixed f (ours vs all-to-all baseline)",
		"n", "f", "ours msgs", "ours/(n·log²n)", "baseline msgs", "baseline/(n²·log n)")
	var ns, ourMsgs, baseNs, baseMsgs []float64
	for i, n := range sizes {
		ours, base := recs[2*i].Metrics, recs[2*i+1].Metrics
		nf := float64(n)
		ns = append(ns, nf)
		ourMsgs = append(ourMsgs, float64(ours.Messages))
		baseNs = append(baseNs, nf)
		baseMsgs = append(baseMsgs, float64(base.Messages))
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", ours.Crashes),
			fmtCount(ours.Messages), fmtRatio(float64(ours.Messages)/(nf*log2(n)*log2(n))),
			fmtCount(base.Messages), fmtRatio(float64(base.Messages)/(nf*nf*log2(n))))
	}
	for i, n := range oursOnly {
		ours := recs[2*len(sizes)+i].Metrics
		nf := float64(n)
		ns = append(ns, nf)
		ourMsgs = append(ourMsgs, float64(ours.Messages))
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", ours.Crashes),
			fmtCount(ours.Messages), fmtRatio(float64(ours.Messages)/(nf*log2(n)*log2(n))),
			"—", "—")
	}
	if ourFit, err := stats.PowerLawExponent(ns, ourMsgs); err == nil {
		baseFit, _ := stats.PowerLawExponent(baseNs, baseMsgs)
		t.Note("fitted growth exponents: ours messages ~ n^%.2f (R²=%.3f), baseline ~ n^%.2f (R²=%.3f)",
			ourFit.Slope, ourFit.R2, baseFit.Slope, baseFit.R2)
	}
	t.Note("ours/(n·log²n) and baseline/(n²·log n) both ~constant ⇒ quasi-linear vs quadratic growth; the gap widens with n")
	if len(oursOnly) > 0 {
		t.Note("baseline omitted for n ≥ %d: its Θ(n²·log n) messages are infeasible at these sizes — the point of the comparison", oursOnly[0])
	}
	t.Charts = append(t.Charts, plot.Chart{
		Title: "E3n: crash messages vs n (log-log)", XLabel: "n", YLabel: "messages",
		LogX: true, LogY: true,
		Series: []plot.Series{
			{Name: "this work", Xs: ns, Ys: ourMsgs},
			{Name: "all-to-all baseline", Xs: baseNs, Ys: baseMsgs},
		},
	})
	return t, nil
}

// E5nByzantineVsN contrasts growth rates in n for the Byzantine setting
// at fixed f: the committee algorithm grows quasi-linearly in n while the
// all-to-all baseline grows quadratically (and cubically in bits).
func E5nByzantineVsN(cfg Config) (*Table, error) {
	sizes := []int{48, 96, 192}
	if !cfg.Quick {
		sizes = append(sizes, 384)
	}
	// Beyond 384 only the committee algorithm runs: the all-to-all
	// baseline's Θ(n²) messages of Θ(n·log N) bits each put n = 4096 at
	// ~10¹² bits per execution — the wall Theorem 1.3 escapes. One seed
	// per point keeps the -full tier in minutes; the shared-broadcast
	// engine makes these sizes routine (see docs/OBSERVABILITY.md).
	var oursOnly []int
	if !cfg.Quick && cfg.Full {
		oursOnly = []int{1024, 2048, 4096}
	}
	if !cfg.Quick && cfg.Huge {
		oursOnly = append(oursOnly, 16384, 65536)
	}
	f := 2
	seeds := cfg.pick(1, 3)
	var points []runner.Point
	for _, n := range sizes {
		for s := 0; s < seeds; s++ {
			points = append(points, byzPoint("e5n", fmt.Sprintf("ours/n=%d/seed=%d", n, s), n, 8,
				renaming.ByzSpec{N: 8 * n, Seed: cfg.runSeed(int64(n + 101*s)), PoolProb: 16.0 / float64(n),
					Byzantine: splitWorldSet(n, f)},
				intParams("n", n, "f", f, "rep", s)))
		}
		var byzLinks []int
		for link := range splitWorldSet(n, f) {
			byzLinks = append(byzLinks, link)
		}
		points = append(points, baselinePoint("e5n", fmt.Sprintf("baseline/n=%d", n), n,
			renaming.BaselineSpec{Kind: renaming.BaselineAllToAllByzantine, Seed: cfg.runSeed(int64(n)),
				Byzantine: byzLinks},
			intParams("n", n, "f", f)))
	}
	for _, n := range oursOnly {
		points = append(points, byzPoint("e5n", fmt.Sprintf("ours/n=%d/seed=0", n), n, 8,
			renaming.ByzSpec{N: 8 * n, Seed: cfg.runSeed(int64(n)), PoolProb: 16.0 / float64(n),
				Byzantine: splitWorldSet(n, f)},
			intParams("n", n, "f", f, "rep", 0)))
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("E5n", fmt.Sprintf("Byzantine messages/bits vs n at fixed f=%d (ours vs all-to-all baseline)", f),
		"n", "ours msgs", "ours/(n·log n)", "ours bits", "baseline msgs", "baseline/(n²·log n)", "baseline bits")
	var ns, ourMsgs, baseNs, baseMsgs []float64
	idx := 0
	for _, n := range sizes {
		var msgSum, bitSum int64
		for s := 0; s < seeds; s++ {
			m := recs[idx].Metrics
			idx++
			msgSum += m.HonestMessages
			bitSum += m.HonestBits
		}
		base := recs[idx].Metrics
		idx++
		avgMsgs := msgSum / int64(seeds)
		avgBits := bitSum / int64(seeds)
		nf := float64(n)
		ns = append(ns, nf)
		ourMsgs = append(ourMsgs, float64(avgMsgs))
		baseNs = append(baseNs, nf)
		baseMsgs = append(baseMsgs, float64(base.Messages))
		t.AddRow(fmt.Sprintf("%d", n),
			fmtCount(avgMsgs), fmtRatio(float64(avgMsgs)/(nf*log2(n))),
			fmtCount(avgBits),
			fmtCount(base.Messages), fmtRatio(float64(base.Messages)/(nf*nf*log2(n))),
			fmtCount(base.Bits))
	}
	for _, n := range oursOnly {
		m := recs[idx].Metrics
		idx++
		nf := float64(n)
		ns = append(ns, nf)
		ourMsgs = append(ourMsgs, float64(m.HonestMessages))
		t.AddRow(fmt.Sprintf("%d", n),
			fmtCount(m.HonestMessages), fmtRatio(float64(m.HonestMessages)/(nf*log2(n))),
			fmtCount(m.HonestBits),
			"—", "—", "—")
	}
	if ourFit, err := stats.PowerLawExponent(ns, ourMsgs); err == nil {
		baseFit, _ := stats.PowerLawExponent(baseNs, baseMsgs)
		t.Note("fitted growth exponents: ours messages ~ n^%.2f (R²=%.3f), baseline ~ n^%.2f (R²=%.3f)",
			ourFit.Slope, ourFit.R2, baseFit.Slope, baseFit.R2)
	}
	t.Note("at these sizes the f·logN·log³n term dominates ours, so growth in n is slow and seed-noisy (hence the low R²); the baseline's quadratic messages and cubic bits are exact — the separation is what Theorem 1.3 predicts")
	if len(oursOnly) > 0 {
		t.Note("baseline omitted for n ≥ %d: its Θ(n²) messages of Θ(n·log N) bits are infeasible at these sizes — the point of the comparison", oursOnly[0])
	}
	t.Charts = append(t.Charts, plot.Chart{
		Title: "E5n: Byzantine messages vs n (log-log)", XLabel: "n", YLabel: "messages",
		LogX: true, LogY: true,
		Series: []plot.Series{
			{Name: "this work", Xs: ns, Ys: ourMsgs},
			{Name: "all-to-all baseline", Xs: baseNs, Ys: baseMsgs},
		},
	})
	return t, nil
}

// E8cCongest checks CONGEST-model compliance directly: with a per-message
// budget of 4·log2(N) bits, the paper's algorithms send zero oversize
// messages while the prior-work baselines (Ω(n)-bit echoes, signature
// chains) blow through it.
func E8cCongest(cfg Config) (*Table, error) {
	n := cfg.pick(48, 96)
	bigN := 16 * n
	// The implementation's fingerprints live in GF(2^61−1), i.e. 61 bits
	// for every N up to 2^61, so the concrete O(log N) per-message budget
	// is 61 + O(log n) bits ≈ one 128-bit CONGEST word. What separates
	// the algorithms is growth: the baselines' messages grow with n, so
	// they blow any fixed O(log N) budget.
	limit := 128
	byzLinks := []int{1, 7}
	points := []runner.Point{
		crashPoint("e8c", "crash", n,
			renaming.CrashSpec{N: bigN, Seed: cfg.runSeed(1), CommitteeScale: 0.05, CongestLimit: limit,
				Fault: renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: n / 8, Prob: 0.05}},
			intParams("n", n, "N", bigN, "limit", limit)),
		byzPoint("e8c", "byzantine", n, 8,
			renaming.ByzSpec{N: bigN, Seed: cfg.runSeed(2), PoolProb: 16.0 / float64(n), CongestLimit: limit,
				Byzantine: map[int]renaming.Behavior{1: renaming.BehaviorSplitWorld, 7: renaming.BehaviorSplitWorld}},
			intParams("n", n, "N", bigN, "limit", limit)),
		baselinePoint("e8c", "baseline-byz-a2a", n,
			renaming.BaselineSpec{Kind: renaming.BaselineAllToAllByzantine, N: bigN, Seed: cfg.runSeed(3),
				Byzantine: byzLinks, CongestLimit: limit},
			intParams("n", n, "N", bigN, "limit", limit)),
		baselinePoint("e8c", "baseline-reliable-broadcast", n,
			renaming.BaselineSpec{Kind: renaming.BaselineConsensusBroadcast, N: bigN, Seed: cfg.runSeed(4),
				Byzantine: byzLinks, CongestLimit: limit},
			intParams("n", n, "N", bigN, "limit", limit)),
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("E8c", fmt.Sprintf("CONGEST compliance at budget %d bits/message (n=%d, N=%d)", limit, n, bigN),
		"algorithm", "honest msgs", "oversize msgs", "maxMsgBits")
	names := []string{"this work (crash)", "this work (Byzantine)", "all-to-all Byz halving", "reliable-broadcast ranking"}
	for i, name := range names {
		m := recs[i].Metrics
		t.AddRow(name, fmtCount(m.HonestMessages), fmtCount(m.OversizeMessages),
			fmt.Sprintf("%d", m.MaxMessageBits))
	}
	t.Note("zero oversize messages for both of the paper's algorithms: every message fits O(log N) bits (CONGEST for N=poly(n)); the baselines' Ω(n)- and Ω(t·λ)-bit messages cannot")
	return t, nil
}

// A3ElectionConstant explores the paper's election constant: scaling
// 256·log n/n down shrinks the committee (and the message bill) but
// erodes the with-high-probability success guarantee under the committee
// killer — the reliability/cost trade-off the constant encodes.
func A3ElectionConstant(cfg Config) (*Table, error) {
	n := cfg.pick(96, 192)
	seeds := cfg.pick(6, 15)
	scales := []float64{0.002, 0.005, 0.01, 0.05, 0.2, 1}
	var points []runner.Point
	for _, scale := range scales {
		for seed := 0; seed < seeds; seed++ {
			points = append(points, crashPoint("a3", fmt.Sprintf("scale=%.3f/seed=%d", scale, seed), n,
				renaming.CrashSpec{Seed: cfg.runSeed(int64(seed)), CommitteeScale: scale,
					Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller,
						Budget: n / 2, MidSend: true}},
				intParams("n", n, "scale", scale)))
		}
	}
	recs, err := cfg.sweep(points)
	if err != nil {
		return nil, err
	}

	t := NewTable("A3", fmt.Sprintf("ablation: election constant vs reliability at n=%d (killer adversary)", n),
		"scale (×256)", "expected committee", "success rate", "avg messages")
	for si, scale := range scales {
		successes := 0
		var msgs int64
		for seed := 0; seed < seeds; seed++ {
			m := recs[si*seeds+seed].Metrics
			if m.Unique {
				successes++
			}
			msgs += m.Messages
		}
		expected := 256 * scale * log2(n)
		if expected > float64(n) {
			expected = float64(n)
		}
		t.AddRow(fmt.Sprintf("%.3f", scale), fmt.Sprintf("%.1f", expected),
			fmt.Sprintf("%d/%d", successes, seeds), fmtCount(msgs/int64(seeds)))
	}
	t.Note("messages grow ~6× from the smallest committee to the paper's constant (which clamps to committee = everyone at this n)")
	t.Note("reliability stays high even at tiny constants *because* the re-election doubling recovers from wipes (A1); the paper's 256 guards the 1−n⁻³ tail that Monte-Carlo at this scale cannot resolve")
	return t, nil
}
