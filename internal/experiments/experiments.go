package experiments

import (
	"fmt"
	"math"

	"renaming"
	"renaming/internal/lowerbound"
	"renaming/internal/plot"
	"renaming/internal/stats"
)

// Config selects experiment scale. Quick shrinks sweeps so the whole
// suite runs in seconds (used by `go test`); the full scale backs the
// numbers in EXPERIMENTS.md.
type Config struct {
	Quick bool
}

func (c Config) pick(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// IDs lists every experiment id in canonical order.
func IDs() []string {
	return []string{"e1", "e2", "e3", "e3n", "e4", "e5", "e5n", "e6",
		"e7", "e8", "e8c", "a1", "a2", "a3"}
}

// All runs every experiment in order.
func All(cfg Config) ([]*Table, error) {
	tables := make([]*Table, 0, len(IDs()))
	for _, id := range IDs() {
		table, err := ByID(id, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		tables = append(tables, table)
	}
	return tables, nil
}

// ByID runs one experiment by its id.
func ByID(id string, cfg Config) (*Table, error) {
	switch id {
	case "e1":
		return E1Table1(cfg)
	case "e2":
		return E2CrashRounds(cfg)
	case "e3":
		return E3CrashMessagesVsF(cfg)
	case "e3n":
		return E3nCrashMessagesVsN(cfg)
	case "e4":
		return E4CrashWorstCase(cfg)
	case "e5":
		return E5ByzantineVsF(cfg)
	case "e5n":
		return E5nByzantineVsN(cfg)
	case "e6":
		return E6OrderPreservation(cfg)
	case "e7":
		return E7LowerBound(cfg)
	case "e8":
		return E8MessageSize(cfg)
	case "e8c":
		return E8cCongest(cfg)
	case "a1":
		return A1ReelectionDoubling(cfg)
	case "a2":
		return A2DivideAndConquer(cfg)
	case "a3":
		return A3ElectionConstant(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown id %q", id)
	}
}

func log2(n int) float64 { return math.Log2(math.Max(2, float64(n))) }

func log2Ceil(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// E1Table1 reproduces the paper's Table 1 empirically: each implemented
// algorithm at one network size, with the per-fault-model failure loads
// the table's asymptotics are about.
func E1Table1(cfg Config) (*Table, error) {
	n := cfg.pick(64, 192)
	byzF := n / 12
	crashF := n / 4
	t := NewTable("E1", fmt.Sprintf("Table 1 comparison at n=%d", n),
		"algorithm", "faults", "rounds", "messages", "bits", "maxMsgBits", "strong", "order")

	add := func(name, faults string, res *renaming.Result) {
		t.AddRow(name, faults,
			fmt.Sprintf("%d", res.Rounds), fmtCount(res.HonestMessages),
			fmtCount(res.HonestBits), fmt.Sprintf("%d", res.MaxMessageBits),
			fmtBool(res.Unique), fmtBool(res.OrderPreserving))
	}

	res, err := renaming.RunCrash(n, renaming.CrashSpec{Seed: 1, CommitteeScale: 0.02})
	if err != nil {
		return nil, err
	}
	add("this work (crash)", "f=0", res)

	res, err = renaming.RunCrash(n, renaming.CrashSpec{
		Seed: 2, CommitteeScale: 0.02,
		Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: crashF, MidSend: true},
	})
	if err != nil {
		return nil, err
	}
	add("this work (crash)", fmt.Sprintf("killer f≤%d (hit %d)", crashF, res.Crashes), res)

	res, err = renaming.RunBaseline(n, renaming.BaselineSpec{Kind: renaming.BaselineAllToAllCrash, Seed: 3,
		Fault: renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: crashF, Prob: 0.05}})
	if err != nil {
		return nil, err
	}
	add("all-to-all halving [34-style]", fmt.Sprintf("random f=%d", res.Crashes), res)

	res, err = renaming.RunBaseline(n, renaming.BaselineSpec{Kind: renaming.BaselineCollectSort, Seed: 4})
	if err != nil {
		return nil, err
	}
	add("collect+sort (crash-free)", "f=0", res)

	byzSpec := renaming.ByzSpec{Seed: 5, PoolProb: 24.0 / float64(n)}
	res, err = renaming.RunByzantine(n, byzSpec)
	if err != nil {
		return nil, err
	}
	add("this work (Byzantine)", "f=0", res)

	byzSpec.Seed = 6
	byzSpec.Byzantine = splitWorldSet(byzF)
	res, err = renaming.RunByzantine(n, byzSpec)
	if err != nil {
		return nil, err
	}
	add("this work (Byzantine)", fmt.Sprintf("split-world f=%d", byzF), res)
	if !res.AssumptionHolds {
		t.Note("Byzantine run at f=%d fell outside the committee assumption; rerun with another seed", byzF)
	}

	var byzLinks []int
	for link := range splitWorldSet(byzF) {
		byzLinks = append(byzLinks, link)
	}
	bres, err := renaming.RunBaseline(n, renaming.BaselineSpec{
		Kind: renaming.BaselineAllToAllByzantine, Seed: 7, Byzantine: byzLinks,
	})
	if err != nil {
		return nil, err
	}
	add("all-to-all Byz halving [33/34-style]", fmt.Sprintf("f=%d", byzF), bres)

	dres, err := renaming.RunBaseline(n, renaming.BaselineSpec{
		Kind: renaming.BaselineConsensusBroadcast, Seed: 8, Byzantine: byzLinks,
	})
	if err != nil {
		return nil, err
	}
	add("reliable-broadcast ranking [20-style]", fmt.Sprintf("f=%d", byzF), dres)

	t.Note("committee algorithms use scaled election constants (DESIGN.md §2) so committees are genuinely small at this n")
	return t, nil
}

func splitWorldSet(f int) map[int]renaming.Behavior {
	set := make(map[int]renaming.Behavior, f)
	for i := 0; i < f; i++ {
		set[3*i+1] = renaming.BehaviorSplitWorld
	}
	return set
}

// E2CrashRounds verifies Theorem 1.2's time bound: the crash algorithm
// always finishes within 3·ceil(log2 n) phases (9·ceil(log2 n)+1 rounds
// in this simulator's 3-rounds-per-phase schedule), even against the
// committee killer.
func E2CrashRounds(cfg Config) (*Table, error) {
	sizes := []int{16, 64, 256, 1024}
	if !cfg.Quick {
		sizes = append(sizes, 4096)
	}
	t := NewTable("E2", "crash algorithm rounds vs n (worst-case adversary)",
		"n", "rounds", "bound 9·ceil(log2 n)+1", "rounds/log2(n)", "early-stop rounds (f=0)", "unique")
	chart := plot.Chart{Title: "E2: crash rounds vs n", XLabel: "n (log)", YLabel: "rounds",
		LogX: true, Series: make([]plot.Series, 2)}
	chart.Series[0].Name = "worst case (= bound 9·log2 n + 1)"
	chart.Series[1].Name = "early stop, f=0"
	for _, n := range sizes {
		res, err := renaming.RunCrash(n, renaming.CrashSpec{
			Seed: int64(n), CommitteeScale: 0.02,
			Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: n / 4, MidSend: true},
		})
		if err != nil {
			return nil, err
		}
		early, err := renaming.RunCrash(n, renaming.CrashSpec{
			Seed: int64(n), CommitteeScale: 0.02, EarlyStop: true,
		})
		if err != nil {
			return nil, err
		}
		bound := 9*int(math.Ceil(log2(n))) + 1
		for si, y := range []float64{float64(res.Rounds), float64(early.Rounds)} {
			chart.Series[si].Xs = append(chart.Series[si].Xs, float64(n))
			chart.Series[si].Ys = append(chart.Series[si].Ys, y)
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", res.Rounds),
			fmt.Sprintf("%d", bound), fmtRatio(float64(res.Rounds)/log2(n)),
			fmt.Sprintf("%d", early.Rounds), fmtBool(res.Unique && early.Unique))
		if res.Rounds > bound {
			t.Note("BOUND VIOLATED at n=%d: %d > %d", n, res.Rounds, bound)
		}
	}
	t.Note("rounds/log2(n) should be ~constant: the paper's O(log n) deterministic bound")
	t.Note("the early-stopping extension (EarlyStop option) halts after ~3·(log2 n + 2) rounds when nothing fails")
	t.Charts = append(t.Charts, chart)
	return t, nil
}

// E3CrashMessagesVsF verifies Theorem 1.2's message bound: at fixed n,
// messages grow like O((f+log n)·n·log n) in the actual number of crashes
// f, staying subquadratic while f = o(n/log n); the all-to-all baseline
// sits at Θ(n²·log n) regardless.
func E3CrashMessagesVsF(cfg Config) (*Table, error) {
	n := cfg.pick(256, 1024)
	t := NewTable("E3", fmt.Sprintf("crash messages vs f at n=%d (committee killer)", n),
		"f (actual)", "messages", "model (f+log n)·n·log n", "msgs/model", "msgs/n²log n", "unique")
	baseRes, err := renaming.RunBaseline(n, renaming.BaselineSpec{Kind: renaming.BaselineAllToAllCrash, Seed: 1})
	if err != nil {
		return nil, err
	}
	n2logn := float64(n) * float64(n) * log2(n)
	budgets := []int{0, 1, 4, 16, 64}
	if !cfg.Quick {
		budgets = append(budgets, 256, n/2, n-1)
	}
	for _, budget := range budgets {
		res, err := renaming.RunCrash(n, renaming.CrashSpec{
			Seed: int64(1000 + budget), CommitteeScale: 0.01,
			Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: budget, MidSend: true},
		})
		if err != nil {
			return nil, err
		}
		model := (float64(res.Crashes) + log2(n)) * float64(n) * log2(n)
		t.AddRow(fmt.Sprintf("%d", res.Crashes), fmtCount(res.Messages),
			fmtCount(int64(model)), fmtRatio(float64(res.Messages)/model),
			fmt.Sprintf("%.3f", float64(res.Messages)/n2logn), fmtBool(res.Unique))
	}
	t.Note("all-to-all baseline at the same n: %s messages (%.2f of n²·log n) regardless of f",
		fmtCount(baseRes.Messages), float64(baseRes.Messages)/n2logn)
	t.Note("msgs/model stays bounded ⇒ the O((f+log n)·n·log n) bound of Theorem 1.2 holds; msgs/n²log n below the baseline at small f ⇒ adaptivity")
	return t, nil
}

// E4CrashWorstCase verifies the deterministic ceiling of Theorem 1.2: no
// adversary schedule pushes the crash algorithm past Θ(n²·log n)
// messages.
func E4CrashWorstCase(cfg Config) (*Table, error) {
	n := cfg.pick(128, 256)
	t := NewTable("E4", fmt.Sprintf("crash worst-case message ceiling at n=%d", n),
		"adversary", "f (actual)", "messages", "msgs/n²log n", "unique")
	n2logn := float64(n) * float64(n) * log2(n)
	specs := []struct {
		name  string
		fault renaming.FaultSpec
		scale float64
	}{
		{"none", renaming.FaultSpec{Kind: renaming.FaultNone}, 0.02},
		{"none, paper constants (committee=all)", renaming.FaultSpec{Kind: renaming.FaultNone}, 1},
		{"random 25%", renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: n / 4, Prob: 0.1, MidSend: true}, 0.02},
		{"burst n/2 @ round 3", renaming.FaultSpec{Kind: renaming.FaultBurst, Round: 3, Nodes: firstK(n / 2)}, 0.02},
		{"committee killer n−1", renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: n - 1, MidSend: true}, 0.02},
	}
	worst := 0.0
	for i, s := range specs {
		res, err := renaming.RunCrash(n, renaming.CrashSpec{
			Seed: int64(i + 1), CommitteeScale: s.scale, Fault: s.fault,
		})
		if err != nil {
			return nil, err
		}
		ratio := float64(res.Messages) / n2logn
		if ratio > worst {
			worst = ratio
		}
		t.AddRow(s.name, fmt.Sprintf("%d", res.Crashes), fmtCount(res.Messages),
			fmt.Sprintf("%.3f", ratio), fmtBool(res.Unique))
	}
	t.Note("worst observed ratio %.3f — the deterministic Θ(n² log n) ceiling holds with a small constant", worst)
	return t, nil
}

// E5ByzantineVsF verifies Theorem 1.3's scaling: rounds grow roughly
// linearly and messages like O~(f + n) in the actual number of Byzantine
// nodes, with the divide-and-conquer iteration count within Lemma 3.10's
// 4·f·log N.
func E5ByzantineVsF(cfg Config) (*Table, error) {
	n := cfg.pick(60, 120)
	bigN := 8 * n
	poolProb := 20.0 / float64(n)
	t := NewTable("E5", fmt.Sprintf("Byzantine algorithm vs f at n=%d, N=%d (split-world)", n, bigN),
		"f", "committee", "iterations", "4·f·logN", "rounds", "messages", "model f·logN·log³n + n·logn", "msgs/model", "unique", "order")
	fs := []int{0, 1, 2, 4}
	if !cfg.Quick {
		fs = append(fs, 8, 16)
	}
	logN, logn := log2(bigN), log2(n)
	var fx, msgsY, itersY []float64
	for _, f := range fs {
		res, err := runByzWithAssumption(n, renaming.ByzSpec{
			N: bigN, Seed: 42, PoolProb: poolProb,
			Byzantine: splitWorldSet(f),
		}, 8)
		if err != nil {
			return nil, err
		}
		model := float64(f)*logN*logn*logn*logn + float64(n)*logn
		iterBound := 4 * f * int(logN)
		if f == 0 {
			iterBound = 1
		}
		fx = append(fx, float64(f))
		msgsY = append(msgsY, float64(res.HonestMessages))
		itersY = append(itersY, float64(res.Iterations))
		t.AddRow(fmt.Sprintf("%d", f), fmt.Sprintf("%d", res.CommitteeSize),
			fmt.Sprintf("%d", res.Iterations), fmt.Sprintf("%d", iterBound),
			fmt.Sprintf("%d", res.Rounds), fmtCount(res.HonestMessages),
			fmtCount(int64(model)), fmtRatio(float64(res.HonestMessages)/model),
			fmtBool(res.Unique), fmtBool(res.OrderPreserving))
	}
	t.Note("iterations ≤ 4·f·logN (Lemma 3.10); msgs/model bounded ⇒ the O~(f+n) message claim of Theorem 1.3")
	t.Note("absolute counts carry a |committee|² ≈ log²n constant, so the crossover against Θ(n²) baselines lies beyond laptop n — see E5n for the growth rates")
	t.Charts = append(t.Charts,
		plot.Chart{Title: "E5: Byzantine messages vs f", XLabel: "f (actual Byzantine)", YLabel: "messages",
			Series: []plot.Series{{Name: "this work", Xs: fx, Ys: msgsY}}},
		plot.Chart{Title: "E5: divide-and-conquer iterations vs f", XLabel: "f (actual Byzantine)", YLabel: "iterations",
			Series: []plot.Series{{Name: "iterations", Xs: fx, Ys: itersY}}},
	)
	return t, nil
}

// runByzWithAssumption retries over seeds until the committee composition
// satisfies the paper's assumption (or attempts run out).
func runByzWithAssumption(n int, spec renaming.ByzSpec, attempts int) (*renaming.Result, error) {
	var last *renaming.Result
	for i := 0; i < attempts; i++ {
		res, err := renaming.RunByzantine(n, spec)
		if err != nil {
			return nil, err
		}
		last = res
		if res.AssumptionHolds {
			return res, nil
		}
		spec.Seed += 1000
	}
	return last, nil
}

// E6OrderPreservation verifies the order claims of Table 1: the
// Byzantine algorithm is order-preserving by construction; the crash
// algorithm (interval halving by rank of identity within an interval) is
// not, matching the "-" entry in the paper's table.
func E6OrderPreservation(cfg Config) (*Table, error) {
	n := cfg.pick(48, 96)
	t := NewTable("E6", "order preservation across algorithms",
		"algorithm", "pattern", "unique", "order-preserving")
	for _, pattern := range []renaming.IDPattern{renaming.IDsEven, renaming.IDsRandom, renaming.IDsClustered} {
		ids, err := renaming.GenerateIDs(n, 8*n, pattern, 11)
		if err != nil {
			return nil, err
		}
		cres, err := renaming.RunCrash(n, renaming.CrashSpec{N: 8 * n, IDs: ids, Seed: 13,
			Fault: renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: n / 6, Prob: 0.05}})
		if err != nil {
			return nil, err
		}
		t.AddRow("this work (crash)", patternName(pattern), fmtBool(cres.Unique), fmtBool(cres.OrderPreserving))
		bres, err := runByzWithAssumption(n, renaming.ByzSpec{N: 8 * n, IDs: ids, Seed: 17,
			Byzantine: splitWorldSet(n / 16)}, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow("this work (Byzantine)", patternName(pattern), fmtBool(bres.Unique), fmtBool(bres.OrderPreserving))
	}
	t.Note("the Byzantine algorithm must always be order-preserving (Theorem 1.3)")
	t.Note("the crash algorithm carries no order guarantee (Table 1 '-'), though its rank rule preserves order when views stay consistent")
	return t, nil
}

func patternName(p renaming.IDPattern) string {
	switch p {
	case renaming.IDsEven:
		return "even"
	case renaming.IDsRandom:
		return "random"
	default:
		return "clustered"
	}
}

// E7LowerBound reproduces Theorem 1.4's shape: the best budgeted
// anonymous-renaming strategy needs a message budget linear in n to reach
// success probability 3/4.
func E7LowerBound(cfg Config) (*Table, error) {
	trials := cfg.pick(400, 2000)
	t := NewTable("E7", "Theorem 1.4 lower bound: anonymous renaming success vs message budget",
		"n", "budget", "budget/n", "success rate")
	sizes := []int{64, 256}
	if !cfg.Quick {
		sizes = append(sizes, 1024)
	}
	var chartSeries []plot.Series
	for _, n := range sizes {
		series := plot.Series{Name: fmt.Sprintf("n=%d", n)}
		for _, frac := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.97, 1} {
			budget := int(frac * float64(n))
			rate := lowerbound.SuccessRate(n, budget, trials, int64(n))
			series.Xs = append(series.Xs, frac)
			series.Ys = append(series.Ys, rate)
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", budget),
				fmt.Sprintf("%.2f", frac), fmt.Sprintf("%.3f", rate))
		}
		chartSeries = append(chartSeries, series)
		min := lowerbound.MinBudgetFor(n, 0.75, trials, int64(n))
		t.Note("n=%d: smallest budget reaching success ≥ 3/4 is %d (%.2f·n) — Ω(n) messages are necessary",
			n, min, float64(min)/float64(n))
	}
	// Cross-check with the on-the-wire protocol (real messages on the
	// simulator, not an analytical budget).
	wireN := 64
	for _, prob := range []float64{0.5, 0.9, 1} {
		rate, msgs, err := lowerbound.ProtocolSuccessRate(wireN, prob, cfg.pick(200, 1000), 9)
		if err != nil {
			return nil, err
		}
		t.Note("on-the-wire protocol at n=%d, request prob %.2f: success %.3f with %.0f real messages/run",
			wireN, prob, rate, msgs)
	}
	t.Charts = append(t.Charts, plot.Chart{
		Title: "E7: anonymous renaming success vs message budget", XLabel: "budget / n", YLabel: "success probability",
		Series: chartSeries,
	})
	return t, nil
}

// E8MessageSize verifies the O(log N) message-size claim of both
// theorems: the largest message grows logarithmically in the namespace
// size N and never faster.
func E8MessageSize(cfg Config) (*Table, error) {
	n := cfg.pick(64, 128)
	t := NewTable("E8", fmt.Sprintf("max message size vs namespace N at n=%d", n),
		"algorithm", "N", "maxMsgBits", "maxMsgBits/log2 N")
	exps := []int{12, 20, 30, 44}
	if !cfg.Quick {
		exps = append(exps, 56)
	}
	for _, e := range exps {
		bigN := 1 << e
		ids, err := renaming.GenerateIDs(n, bigN, renaming.IDsRandom, int64(e))
		if err != nil {
			return nil, err
		}
		res, err := renaming.RunCrash(n, renaming.CrashSpec{N: bigN, IDs: ids, Seed: int64(e),
			CommitteeScale: 0.05,
			Fault:          renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: n / 8, Prob: 0.05}})
		if err != nil {
			return nil, err
		}
		t.AddRow("crash", fmt.Sprintf("2^%d", e), fmt.Sprintf("%d", res.MaxMessageBits),
			fmtRatio(float64(res.MaxMessageBits)/float64(e)))
	}
	for _, e := range []int{10, 13, 16} {
		bigN := 1 << e
		res, err := runByzWithAssumption(n, renaming.ByzSpec{N: bigN, Seed: int64(e),
			PoolProb: 18.0 / float64(n), Byzantine: splitWorldSet(2)}, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow("byzantine", fmt.Sprintf("2^%d", e), fmt.Sprintf("%d", res.MaxMessageBits),
			fmtRatio(float64(res.MaxMessageBits)/float64(e)))
	}
	t.Note("maxMsgBits/log2 N bounded ⇒ messages are O(log N) bits; both algorithms fit CONGEST for N=poly(n)")
	return t, nil
}

// A1ReelectionDoubling ablates the committee re-election probability
// doubling of Section 2: without it the adversary wipes committees at
// constant per-phase cost and the algorithm runs out of phases.
func A1ReelectionDoubling(cfg Config) (*Table, error) {
	n := cfg.pick(128, 256)
	seeds := cfg.pick(5, 10)
	t := NewTable("A1", fmt.Sprintf("ablation: re-election probability doubling at n=%d (killer adversary)", n),
		"variant", "success rate", "avg crashes used", "avg messages")
	for _, disable := range []bool{false, true} {
		successes, crashes, msgs := 0, int64(0), int64(0)
		for seed := 0; seed < seeds; seed++ {
			res, err := renaming.RunCrash(n, renaming.CrashSpec{
				Seed: int64(seed), CommitteeScale: 0.02,
				DisableReelectionDoubling: disable,
				Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller,
					Budget: n - 1, MidSend: true},
			})
			if err != nil {
				return nil, err
			}
			if res.Unique {
				successes++
			}
			crashes += int64(res.Crashes)
			msgs += res.Messages
		}
		name := "doubling on (paper)"
		if disable {
			name = "doubling off (ablation)"
		}
		t.AddRow(name, fmt.Sprintf("%d/%d", successes, seeds),
			fmtCount(crashes/int64(seeds)), fmtCount(msgs/int64(seeds)))
	}
	t.Note("doubling forces the adversary to spend exponentially more crashes per wipe; without it the killer starves the run")
	return t, nil
}

// A2DivideAndConquer ablates the fingerprint divide-and-conquer of
// Section 3 against the naive per-bit consensus over the whole [N]
// vector.
func A2DivideAndConquer(cfg Config) (*Table, error) {
	n := cfg.pick(36, 48)
	bigN := 4 * n
	poolProb := 12.0 / float64(n)
	t := NewTable("A2", fmt.Sprintf("ablation: fingerprint divide-and-conquer vs per-bit consensus (n=%d, N=%d)", n, bigN),
		"variant", "f", "iterations", "rounds", "messages", "unique")
	for _, f := range []int{0, 2} {
		for _, split := range []bool{false, true} {
			res, err := runByzWithAssumption(n, renaming.ByzSpec{
				N: bigN, Seed: int64(7 + f), PoolProb: poolProb, SplitAlways: split,
				Byzantine: splitWorldSet(f),
			}, 8)
			if err != nil {
				return nil, err
			}
			name := "fingerprint D&C (paper)"
			if split {
				name = "per-bit consensus (ablation)"
			}
			t.AddRow(name, fmt.Sprintf("%d", f), fmt.Sprintf("%d", res.Iterations),
				fmt.Sprintf("%d", res.Rounds), fmtCount(res.HonestMessages), fmtBool(res.Unique))
		}
	}
	t.Note("the ablation pays Θ(N) consensus instances; fingerprinting pays O(f·log N) — the paper's core communication win")
	return t, nil
}

func firstK(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// E3nCrashMessagesVsN contrasts growth rates in n at a fixed failure
// load: the committee algorithm's messages grow ~n·log²n while the
// all-to-all baseline grows ~n²·log n — the asymptotic separation behind
// Theorem 1.2's subquadratic claim.
func E3nCrashMessagesVsN(cfg Config) (*Table, error) {
	sizes := []int{128, 256, 512}
	if !cfg.Quick {
		sizes = append(sizes, 1024, 2048)
	}
	t := NewTable("E3n", "crash messages vs n at fixed f (ours vs all-to-all baseline)",
		"n", "f", "ours msgs", "ours/(n·log²n)", "baseline msgs", "baseline/(n²·log n)")
	var ns, ourMsgs, baseMsgs []float64
	for _, n := range sizes {
		f := 8
		res, err := renaming.RunCrash(n, renaming.CrashSpec{
			Seed: int64(n), CommitteeScale: 0.01,
			Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: f, MidSend: true},
		})
		if err != nil {
			return nil, err
		}
		base, err := renaming.RunBaseline(n, renaming.BaselineSpec{
			Kind: renaming.BaselineAllToAllCrash, Seed: int64(n),
			Fault: renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: f, Prob: 0.05},
		})
		if err != nil {
			return nil, err
		}
		nf := float64(n)
		ns = append(ns, nf)
		ourMsgs = append(ourMsgs, float64(res.Messages))
		baseMsgs = append(baseMsgs, float64(base.Messages))
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", res.Crashes),
			fmtCount(res.Messages), fmtRatio(float64(res.Messages)/(nf*log2(n)*log2(n))),
			fmtCount(base.Messages), fmtRatio(float64(base.Messages)/(nf*nf*log2(n))))
	}
	if ourFit, err := stats.PowerLawExponent(ns, ourMsgs); err == nil {
		baseFit, _ := stats.PowerLawExponent(ns, baseMsgs)
		t.Note("fitted growth exponents: ours messages ~ n^%.2f (R²=%.3f), baseline ~ n^%.2f (R²=%.3f)",
			ourFit.Slope, ourFit.R2, baseFit.Slope, baseFit.R2)
	}
	t.Note("ours/(n·log²n) and baseline/(n²·log n) both ~constant ⇒ quasi-linear vs quadratic growth; the gap widens with n")
	t.Charts = append(t.Charts, plot.Chart{
		Title: "E3n: crash messages vs n (log-log)", XLabel: "n", YLabel: "messages",
		LogX: true, LogY: true,
		Series: []plot.Series{
			{Name: "this work", Xs: ns, Ys: ourMsgs},
			{Name: "all-to-all baseline", Xs: ns, Ys: baseMsgs},
		},
	})
	return t, nil
}

// E5nByzantineVsN contrasts growth rates in n for the Byzantine setting
// at fixed f: the committee algorithm grows quasi-linearly in n while the
// all-to-all baseline grows quadratically (and cubically in bits).
func E5nByzantineVsN(cfg Config) (*Table, error) {
	sizes := []int{48, 96, 192}
	if !cfg.Quick {
		sizes = append(sizes, 384)
	}
	f := 2
	t := NewTable("E5n", fmt.Sprintf("Byzantine messages/bits vs n at fixed f=%d (ours vs all-to-all baseline)", f),
		"n", "ours msgs", "ours/(n·log n)", "ours bits", "baseline msgs", "baseline/(n²·log n)", "baseline bits")
	seeds := cfg.pick(1, 3)
	var ns, ourMsgs, baseMsgs []float64
	for _, n := range sizes {
		var msgSum, bitSum int64
		runs := 0
		for s := 0; s < seeds; s++ {
			res, err := runByzWithAssumption(n, renaming.ByzSpec{
				N: 8 * n, Seed: int64(n + 101*s), PoolProb: 16.0 / float64(n),
				Byzantine: splitWorldSet(f),
			}, 8)
			if err != nil {
				return nil, err
			}
			msgSum += res.HonestMessages
			bitSum += res.HonestBits
			runs++
		}
		avgMsgs := msgSum / int64(runs)
		avgBits := bitSum / int64(runs)
		var byzLinks []int
		for link := range splitWorldSet(f) {
			byzLinks = append(byzLinks, link)
		}
		base, err := renaming.RunBaseline(n, renaming.BaselineSpec{
			Kind: renaming.BaselineAllToAllByzantine, Seed: int64(n), Byzantine: byzLinks,
		})
		if err != nil {
			return nil, err
		}
		nf := float64(n)
		ns = append(ns, nf)
		ourMsgs = append(ourMsgs, float64(avgMsgs))
		baseMsgs = append(baseMsgs, float64(base.Messages))
		t.AddRow(fmt.Sprintf("%d", n),
			fmtCount(avgMsgs), fmtRatio(float64(avgMsgs)/(nf*log2(n))),
			fmtCount(avgBits),
			fmtCount(base.Messages), fmtRatio(float64(base.Messages)/(nf*nf*log2(n))),
			fmtCount(base.Bits))
	}
	if ourFit, err := stats.PowerLawExponent(ns, ourMsgs); err == nil {
		baseFit, _ := stats.PowerLawExponent(ns, baseMsgs)
		t.Note("fitted growth exponents: ours messages ~ n^%.2f (R²=%.3f), baseline ~ n^%.2f (R²=%.3f)",
			ourFit.Slope, ourFit.R2, baseFit.Slope, baseFit.R2)
	}
	t.Note("at these sizes the f·logN·log³n term dominates ours, so growth in n is slow and seed-noisy (hence the low R²); the baseline's quadratic messages and cubic bits are exact — the separation is what Theorem 1.3 predicts")
	t.Charts = append(t.Charts, plot.Chart{
		Title: "E5n: Byzantine messages vs n (log-log)", XLabel: "n", YLabel: "messages",
		LogX: true, LogY: true,
		Series: []plot.Series{
			{Name: "this work", Xs: ns, Ys: ourMsgs},
			{Name: "all-to-all baseline", Xs: ns, Ys: baseMsgs},
		},
	})
	return t, nil
}

// E8cCongest checks CONGEST-model compliance directly: with a per-message
// budget of 4·log2(N) bits, the paper's algorithms send zero oversize
// messages while the prior-work baselines (Ω(n)-bit echoes, signature
// chains) blow through it.
func E8cCongest(cfg Config) (*Table, error) {
	n := cfg.pick(48, 96)
	bigN := 16 * n
	// The implementation's fingerprints live in GF(2^61−1), i.e. 61 bits
	// for every N up to 2^61, so the concrete O(log N) per-message budget
	// is 61 + O(log n) bits ≈ one 128-bit CONGEST word. What separates
	// the algorithms is growth: the baselines' messages grow with n, so
	// they blow any fixed O(log N) budget.
	limit := 128
	t := NewTable("E8c", fmt.Sprintf("CONGEST compliance at budget %d bits/message (n=%d, N=%d)", limit, n, bigN),
		"algorithm", "honest msgs", "oversize msgs", "maxMsgBits")
	byzLinks := []int{1, 7}

	res, err := renaming.RunCrash(n, renaming.CrashSpec{N: bigN, Seed: 1, CommitteeScale: 0.05,
		CongestLimit: limit,
		Fault:        renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: n / 8, Prob: 0.05}})
	if err != nil {
		return nil, err
	}
	t.AddRow("this work (crash)", fmtCount(res.HonestMessages), fmtCount(res.OversizeMessages),
		fmt.Sprintf("%d", res.MaxMessageBits))

	res, err = runByzWithAssumption(n, renaming.ByzSpec{N: bigN, Seed: 2, PoolProb: 16.0 / float64(n),
		CongestLimit: limit,
		Byzantine:    map[int]renaming.Behavior{1: renaming.BehaviorSplitWorld, 7: renaming.BehaviorSplitWorld}}, 8)
	if err != nil {
		return nil, err
	}
	t.AddRow("this work (Byzantine)", fmtCount(res.HonestMessages), fmtCount(res.OversizeMessages),
		fmt.Sprintf("%d", res.MaxMessageBits))

	res, err = renaming.RunBaseline(n, renaming.BaselineSpec{Kind: renaming.BaselineAllToAllByzantine,
		N: bigN, Seed: 3, Byzantine: byzLinks, CongestLimit: limit})
	if err != nil {
		return nil, err
	}
	t.AddRow("all-to-all Byz halving", fmtCount(res.HonestMessages), fmtCount(res.OversizeMessages),
		fmt.Sprintf("%d", res.MaxMessageBits))

	res, err = renaming.RunBaseline(n, renaming.BaselineSpec{Kind: renaming.BaselineConsensusBroadcast,
		N: bigN, Seed: 4, Byzantine: byzLinks, CongestLimit: limit})
	if err != nil {
		return nil, err
	}
	t.AddRow("reliable-broadcast ranking", fmtCount(res.HonestMessages), fmtCount(res.OversizeMessages),
		fmt.Sprintf("%d", res.MaxMessageBits))

	t.Note("zero oversize messages for both of the paper's algorithms: every message fits O(log N) bits (CONGEST for N=poly(n)); the baselines' Ω(n)- and Ω(t·λ)-bit messages cannot")
	return t, nil
}

// A3ElectionConstant explores the paper's election constant: scaling
// 256·log n/n down shrinks the committee (and the message bill) but
// erodes the with-high-probability success guarantee under the committee
// killer — the reliability/cost trade-off the constant encodes.
func A3ElectionConstant(cfg Config) (*Table, error) {
	n := cfg.pick(96, 192)
	seeds := cfg.pick(6, 15)
	t := NewTable("A3", fmt.Sprintf("ablation: election constant vs reliability at n=%d (killer adversary)", n),
		"scale (×256)", "expected committee", "success rate", "avg messages")
	for _, scale := range []float64{0.002, 0.005, 0.01, 0.05, 0.2, 1} {
		successes := 0
		var msgs int64
		for seed := 0; seed < seeds; seed++ {
			res, err := renaming.RunCrash(n, renaming.CrashSpec{
				Seed: int64(seed), CommitteeScale: scale,
				Fault: renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller,
					Budget: n / 2, MidSend: true},
			})
			if err != nil {
				return nil, err
			}
			if res.Unique {
				successes++
			}
			msgs += res.Messages
		}
		expected := 256 * scale * log2(n)
		if expected > float64(n) {
			expected = float64(n)
		}
		t.AddRow(fmt.Sprintf("%.3f", scale), fmt.Sprintf("%.1f", expected),
			fmt.Sprintf("%d/%d", successes, seeds), fmtCount(msgs/int64(seeds)))
	}
	t.Note("messages grow ~6× from the smallest committee to the paper's constant (which clamps to committee = everyone at this n)")
	t.Note("reliability stays high even at tiny constants *because* the re-election doubling recovers from wipes (A1); the paper's 256 guards the 1−n⁻³ tail that Monte-Carlo at this scale cannot resolve")
	return t, nil
}
