package experiments

import (
	"fmt"

	"renaming"
	"renaming/internal/runner"
	"renaming/internal/sim"
)

// Config selects experiment scale and how each sweep executes. Quick
// shrinks sweeps so the whole suite runs in seconds (used by `go
// test`); the full scale backs the numbers in EXPERIMENTS.md. The
// remaining fields configure the worker-pool runner every experiment's
// points fan out on (see internal/runner and docs/OBSERVABILITY.md).
type Config struct {
	Quick bool
	// Full unlocks the 16384/32768-node scaling points of the E-series
	// (minutes of wall-clock; the sharded round engine makes them
	// feasible at all). Ignored when Quick is set.
	Full bool
	// Huge unlocks the million-node tier on top of Full (implies Full;
	// ~2 h single-core and a ~40 GB working set at n=2^20): E2 and E3n
	// up to n=1048576 and E5n up to n=65536. The committed -full tables
	// are unchanged by this flag — huge rows only ever append. The slab
	// inbox engine and bit-packed payloads make the tier feasible (see
	// docs/MEMORY.md).
	Huge bool
	// Workers caps concurrent sweep points; <=0 means GOMAXPROCS.
	// Tables are byte-identical at any worker count: every point's seed
	// is fixed before execution and records flush in point order.
	Workers int
	// SweepSeed, when non-zero, remixes every point's canonical seed,
	// rerunning the whole suite in a fresh seed universe. Zero keeps
	// the canonical per-point seeds recorded in EXPERIMENTS.md.
	SweepSeed int64
	// Sinks receive one telemetry record per sweep point (JSONL, CSV,
	// progress line, …).
	Sinks []runner.Sink
	// Resume replays points already present in a previously-recorded
	// artifact instead of executing them.
	Resume *runner.Artifact
}

func (c Config) pick(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// runSeed maps an experiment's canonical point seed into the configured
// sweep-seed universe. With SweepSeed == 0 the canonical seed is used
// as-is, reproducing the recorded tables bit-for-bit.
func (c Config) runSeed(canonical int64) int64 {
	if c.SweepSeed == 0 {
		return canonical
	}
	return sim.DeriveSeed(c.SweepSeed, uint64(canonical))
}

// sweep fans the points across the worker pool and returns their
// records in point order, surfacing the first point failure as an
// error.
func (c Config) sweep(points []runner.Point) ([]runner.Record, error) {
	records, err := runner.Run(points, runner.Options{
		Workers:   c.Workers,
		SweepSeed: c.SweepSeed,
		Sinks:     c.Sinks,
		Resume:    c.Resume,
	})
	if err != nil {
		return nil, err
	}
	for _, rec := range records {
		if rec.Err != "" {
			return nil, fmt.Errorf("%s point %d (%s): %s",
				rec.Experiment, rec.Index, rec.Name, rec.Err)
		}
	}
	return records, nil
}

// crashPoint wraps one RunCrash execution as a sweep point. The spec's
// Seed is the canonical seed; the runner passes the resolved seed back
// into the closure so -seed remixes reach the simulator.
func crashPoint(exp, name string, n int, spec renaming.CrashSpec, params map[string]string) runner.Point {
	return runner.Point{
		Experiment: exp, Name: name, Seed: spec.Seed, FixedSeed: true, Params: params,
		Run: func(seed int64) (runner.Metrics, error) {
			s := spec
			s.Seed = seed
			s.Profile = true
			res, err := renaming.RunCrash(n, s)
			if err != nil {
				return runner.Metrics{}, err
			}
			return runner.FromResult(res, n), nil
		},
	}
}

// byzPoint wraps a RunByzantine execution (retrying over derived seeds
// until the committee assumption holds, when attempts > 1).
func byzPoint(exp, name string, n, attempts int, spec renaming.ByzSpec, params map[string]string) runner.Point {
	return runner.Point{
		Experiment: exp, Name: name, Seed: spec.Seed, FixedSeed: true, Params: params,
		Run: func(seed int64) (runner.Metrics, error) {
			s := spec
			s.Seed = seed
			s.Profile = true
			res, err := runByzWithAssumption(n, s, attempts)
			if err != nil {
				return runner.Metrics{}, err
			}
			return runner.FromResult(res, n), nil
		},
	}
}

// baselinePoint wraps one RunBaseline execution as a sweep point.
func baselinePoint(exp, name string, n int, spec renaming.BaselineSpec, params map[string]string) runner.Point {
	return runner.Point{
		Experiment: exp, Name: name, Seed: spec.Seed, FixedSeed: true, Params: params,
		Run: func(seed int64) (runner.Metrics, error) {
			s := spec
			s.Seed = seed
			res, err := renaming.RunBaseline(n, s)
			if err != nil {
				return runner.Metrics{}, err
			}
			return runner.FromResult(res, n), nil
		},
	}
}

// funcPoint wraps an arbitrary seed-deterministic measurement (the
// lower-bound Monte-Carlos) as a sweep point; fn reports its scalars
// through Metrics.Extra.
func funcPoint(exp, name string, seed int64, params map[string]string,
	fn func(seed int64) (runner.Metrics, error)) runner.Point {
	return runner.Point{
		Experiment: exp, Name: name, Seed: seed, FixedSeed: true, Params: params,
		Run: fn,
	}
}

func intParams(pairs ...any) map[string]string {
	params := make(map[string]string, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		params[fmt.Sprint(pairs[i])] = fmt.Sprint(pairs[i+1])
	}
	return params
}
