package experiments

import (
	"strings"
	"testing"
)

// TestAllQuick runs the full experiment suite at quick scale and checks
// each table is well-formed and contains no bound violations.
func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	tables, err := All(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 14 {
		t.Fatalf("got %d tables, want 14", len(tables))
	}
	for _, table := range tables {
		if len(table.Rows) == 0 {
			t.Errorf("%s: empty table", table.ID)
		}
		out := table.String()
		if !strings.Contains(out, table.ID) {
			t.Errorf("%s: render missing id", table.ID)
		}
		for _, note := range table.Notes {
			if strings.Contains(note, "VIOLATED") {
				t.Errorf("%s: %s", table.ID, note)
			}
		}
		t.Logf("\n%s", out)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("nope", Config{Quick: true}); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

func TestTablePanicsOnBadRow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched row")
		}
	}()
	tab := NewTable("x", "t", "a", "b")
	tab.AddRow("only-one")
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("X1", "demo", "a", "b")
	tab.AddRow("1", "2")
	tab.Note("hello")
	md := tab.Markdown()
	for _, want := range []string{"### X1 — demo", "| a | b |", "| 1 | 2 |", "*hello*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestHelpers(t *testing.T) {
	if got := splitWorldSet(64, 3); len(got) != 3 {
		t.Fatalf("splitWorldSet(64, 3) = %v", got)
	}
	for link := range splitWorldSet(64, 3) {
		if link%3 != 1 {
			t.Fatalf("unexpected link %d", link)
		}
	}
	if got := firstK(4); len(got) != 4 || got[3] != 3 {
		t.Fatalf("firstK = %v", got)
	}
	if log2Ceil(1) != 0 || log2Ceil(2) != 1 || log2Ceil(1000) != 10 {
		t.Fatal("log2Ceil wrong")
	}
	if fmtCount(1234567) != "1,234,567" || fmtCount(42) != "42" {
		t.Fatal("fmtCount wrong")
	}
	if fmtBool(true) != "yes" || fmtBool(false) != "no" {
		t.Fatal("fmtBool wrong")
	}
	cfg := Config{Quick: true}
	if cfg.pick(1, 2) != 1 || (Config{}).pick(1, 2) != 2 {
		t.Fatal("pick wrong")
	}
}
