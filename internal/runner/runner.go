package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"renaming"
	"renaming/internal/sim"
)

// pointLabel is the DeriveSeed stream label for runner-derived point
// seeds ("runr"), mixed with the point index.
const pointLabel uint64 = 0x72756e72

// Point is one independent unit of work in a sweep: typically a single
// simulator execution, sometimes a small aggregate (a seed-averaged
// cell, a Monte-Carlo estimate). Run receives the point's resolved seed
// and returns the measured metrics.
type Point struct {
	// Experiment is the sweep id the point belongs to (e.g. "e3").
	Experiment string
	// Name labels the point within the sweep (e.g. "killer/f=64").
	Name string
	// Seed, when non-zero or when FixedSeed is set, is used verbatim;
	// otherwise the runner derives a seed from Options.SweepSeed and
	// the point index.
	Seed int64
	// FixedSeed forces Seed to be used verbatim even when it is zero.
	FixedSeed bool
	// Params records the swept parameters for the telemetry record.
	Params map[string]string
	// Epoch keys the point to a service epoch for long-lived (churn)
	// sweeps; 0 outside epoch-structured experiments.
	Epoch int
	// Run executes the point. It must be deterministic in seed.
	Run func(seed int64) (Metrics, error)
}

// Metrics is the domain measurement of one point — the quantities the
// paper's complexity claims are about, mirroring renaming.Result.
// Extra carries experiment-specific scalars (success rates, fitted
// budgets) for points that are not a single simulator run.
type Metrics struct {
	Rounds           int   `json:"rounds,omitempty"`
	Messages         int64 `json:"messages,omitempty"`
	Bits             int64 `json:"bits,omitempty"`
	HonestMessages   int64 `json:"honestMessages,omitempty"`
	HonestBits       int64 `json:"honestBits,omitempty"`
	MaxMessageBits   int   `json:"maxMessageBits,omitempty"`
	MaxNodeSent      int64 `json:"maxNodeSent,omitempty"`
	MaxNodeReceived  int64 `json:"maxNodeReceived,omitempty"`
	OversizeMessages int64 `json:"oversizeMessages,omitempty"`
	Crashes          int   `json:"crashes,omitempty"`
	Byzantine        int   `json:"byzantine,omitempty"`
	CommitteeSize    int   `json:"committeeSize,omitempty"`
	Iterations       int   `json:"iterations,omitempty"`
	// The three guarantee booleans are never omitted: a run that violates
	// a guarantee (e.g. unique=false) is precisely the record an artifact
	// reader must be able to distinguish from "not measured".
	Unique          bool `json:"unique"`
	OrderPreserving bool `json:"orderPreserving"`
	AssumptionHolds bool `json:"assumptionHolds"`
	// LoadSkew is MaxNodeSent divided by the mean per-node send count —
	// the committee-vs-plain-node asymmetry of both algorithms.
	LoadSkew float64 `json:"loadSkew,omitempty"`
	// PerKind breaks the message count down by payload kind.
	PerKind map[string]int64 `json:"perKind,omitempty"`
	// Trace is the per-round traffic profile (renaming spec Profile).
	Trace *renaming.RoundStats `json:"trace,omitempty"`
	// Extra carries experiment-specific scalars.
	Extra map[string]float64 `json:"extra,omitempty"`
	// Violations lists invariant-oracle verdicts for points checked by a
	// campaign oracle (internal/campaign): one short code per violated
	// invariant, e.g. "uniqueness" or "round-ceiling". Empty/absent means
	// the execution passed every enabled check. JSONL-only (the CSV
	// column set is fixed); full structured violation records, including
	// the replayable strategy, live in the campaign outcome.
	Violations []string `json:"violations,omitempty"`
}

// FromResult converts a renaming execution result into runner metrics.
// n is the network size, used for the per-node load skew.
func FromResult(res *renaming.Result, n int) Metrics {
	m := Metrics{
		Rounds:           res.Rounds,
		Messages:         res.Messages,
		Bits:             res.Bits,
		HonestMessages:   res.HonestMessages,
		HonestBits:       res.HonestBits,
		MaxMessageBits:   res.MaxMessageBits,
		MaxNodeSent:      res.MaxNodeSent,
		MaxNodeReceived:  res.MaxNodeReceived,
		OversizeMessages: res.OversizeMessages,
		Crashes:          res.Crashes,
		Byzantine:        res.Byzantine,
		CommitteeSize:    res.CommitteeSize,
		Iterations:       res.Iterations,
		Unique:           res.Unique,
		OrderPreserving:  res.OrderPreserving,
		AssumptionHolds:  res.AssumptionHolds,
		Trace:            res.RoundStats,
	}
	if len(res.PerKind) > 0 {
		m.PerKind = make(map[string]int64, len(res.PerKind))
		for k, v := range res.PerKind {
			m.PerKind[k] = v
		}
	}
	if n > 0 && res.Messages > 0 {
		m.LoadSkew = float64(res.MaxNodeSent) * float64(n) / float64(res.Messages)
	}
	return m
}

// Record is the structured telemetry emitted for one completed point.
// WallClockMS and AllocBytes are the only scheduling-dependent fields;
// everything else is deterministic in the point and its seed.
type Record struct {
	Experiment string `json:"experiment"`
	Index      int    `json:"index"`
	// Epoch is the service epoch the record belongs to in epoch-
	// structured (churn) sweeps; omitted elsewhere.
	Epoch   int               `json:"epoch,omitempty"`
	Name    string            `json:"name"`
	Seed    int64             `json:"seed"`
	Params  map[string]string `json:"params,omitempty"`
	Metrics Metrics           `json:"metrics"`
	// WallClockMS is the point's execution wall-clock in milliseconds.
	WallClockMS float64 `json:"wallClockMs"`
	// AllocBytes is the heap-allocation delta over the run (global
	// counters: exact at Workers=1, an overestimate otherwise).
	AllocBytes uint64 `json:"allocBytes"`
	// Resumed marks a record replayed from a resume artifact rather
	// than executed.
	Resumed bool `json:"resumed,omitempty"`
	// Err is the point's failure, empty on success.
	Err string `json:"err,omitempty"`
}

// Options configures a sweep execution.
type Options struct {
	// Workers caps concurrent points; <=0 means GOMAXPROCS.
	Workers int
	// SweepSeed seeds the derived-seed stream for points whose Seed is
	// zero.
	SweepSeed int64
	// Sinks receive every record, in point order.
	Sinks []Sink
	// Resume, when non-nil, replays matching previously-recorded points
	// instead of executing them.
	Resume *Artifact
}

// Run executes the points on the worker pool and returns their records
// in point order. Point failures are reported inside the records (Err),
// not as a Run error; the returned error covers infrastructure failures
// (a sink write going bad).
func Run(points []Point, opts Options) ([]Record, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	for _, sink := range opts.Sinks {
		if s, ok := sink.(sweepStarter); ok && len(points) > 0 {
			s.StartSweep(points[0].Experiment, len(points))
		}
	}
	records := make([]Record, len(points))
	if len(points) == 0 {
		return records, nil
	}

	jobs := make(chan int)
	stop := make(chan struct{})
	done := make(chan int, len(points))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				records[idx] = execute(points[idx], idx, opts)
				done <- idx
			}
		}()
	}
	go func() {
		defer func() {
			close(jobs)
			wg.Wait()
			close(done)
		}()
		for i := range points {
			select {
			case jobs <- i:
			case <-stop:
				// A sink failed: the artifact is already broken, so
				// executing the remaining points would only burn time to
				// produce records nobody can persist. Stop scheduling;
				// in-flight points drain normally.
				return
			}
		}
	}()

	// Flush completed records to the sinks in point order, so the
	// artifact layout never depends on scheduling. The first sink failure
	// stops both flushing and scheduling, and the returned error names
	// how many records made it out intact.
	var sinkErr error
	ready := make([]bool, len(points))
	flushed := 0
	for idx := range done {
		ready[idx] = true
		for flushed < len(points) && ready[flushed] {
			if sinkErr == nil {
				if err := writeSinks(opts.Sinks, records[flushed]); err != nil {
					sinkErr = fmt.Errorf("runner: sink failed after %d records flushed: %w", flushed, err)
					close(stop)
				}
			}
			flushed++
		}
	}
	return records, sinkErr
}

func writeSinks(sinks []Sink, rec Record) error {
	for _, sink := range sinks {
		if err := sink.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func execute(p Point, idx int, opts Options) Record {
	seed := p.Seed
	if seed == 0 && !p.FixedSeed {
		seed = sim.DeriveSeed(opts.SweepSeed, pointLabel^uint64(idx)<<8)
	}
	rec := Record{
		Experiment: p.Experiment,
		Index:      idx,
		Epoch:      p.Epoch,
		Name:       p.Name,
		Seed:       seed,
		Params:     p.Params,
	}
	if opts.Resume != nil {
		if prev, ok := opts.Resume.Lookup(rec); ok {
			prev.Resumed = true
			return prev
		}
	}
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	metrics, err := p.Run(seed)
	rec.WallClockMS = float64(time.Since(start)) / float64(time.Millisecond)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.TotalAlloc > before.TotalAlloc {
		rec.AllocBytes = after.TotalAlloc - before.TotalAlloc
	}
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	rec.Metrics = metrics
	return rec
}
