package runner

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Sink receives one record per completed point, in point order.
type Sink interface {
	Write(rec Record) error
}

// sweepStarter is an optional Sink extension notified when a sweep
// starts, with the experiment id and the total point count.
type sweepStarter interface {
	StartSweep(experiment string, points int)
}

// JSONLSink writes one JSON object per line — the sweep artifact format
// documented in docs/OBSERVABILITY.md and consumed by LoadArtifact.
type JSONLSink struct {
	W io.Writer
	// OmitVolatile zeroes the wall-clock and allocation fields before
	// encoding, making artifacts byte-comparable across runs and worker
	// counts (used by the determinism tests).
	OmitVolatile bool
}

// Write encodes rec as one JSON line.
func (s *JSONLSink) Write(rec Record) error {
	if s.OmitVolatile {
		rec.WallClockMS = 0
		rec.AllocBytes = 0
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = s.W.Write(data)
	return err
}

// csvHeader is the fixed CSV column set. Per-kind breakdowns, trace
// profiles, and extra scalars live only in the JSONL artifact.
var csvHeader = []string{
	"experiment", "index", "epoch", "name", "seed", "params",
	"rounds", "messages", "bits", "honestMessages", "honestBits",
	"maxMessageBits", "maxNodeSent", "maxNodeReceived", "oversizeMessages",
	"crashes", "byzantine", "committeeSize", "iterations",
	"unique", "orderPreserving", "assumptionHolds", "loadSkew",
	"wallClockMs", "allocBytes", "resumed", "err",
}

// CSVSink writes records as CSV rows with a fixed column set.
type CSVSink struct {
	w      *csv.Writer
	header bool
}

// NewCSVSink returns a CSV sink over w; the header row is written with
// the first record.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w)}
}

// Write appends one CSV row (plus the header on first use).
func (s *CSVSink) Write(rec Record) error {
	if !s.header {
		if err := s.w.Write(csvHeader); err != nil {
			return err
		}
		s.header = true
	}
	m := rec.Metrics
	row := []string{
		rec.Experiment, strconv.Itoa(rec.Index), strconv.Itoa(rec.Epoch),
		rec.Name, strconv.FormatInt(rec.Seed, 10), canonicalParams(rec.Params),
		strconv.Itoa(m.Rounds), strconv.FormatInt(m.Messages, 10),
		strconv.FormatInt(m.Bits, 10), strconv.FormatInt(m.HonestMessages, 10),
		strconv.FormatInt(m.HonestBits, 10), strconv.Itoa(m.MaxMessageBits),
		strconv.FormatInt(m.MaxNodeSent, 10), strconv.FormatInt(m.MaxNodeReceived, 10),
		strconv.FormatInt(m.OversizeMessages, 10),
		strconv.Itoa(m.Crashes), strconv.Itoa(m.Byzantine),
		strconv.Itoa(m.CommitteeSize), strconv.Itoa(m.Iterations),
		strconv.FormatBool(m.Unique), strconv.FormatBool(m.OrderPreserving),
		strconv.FormatBool(m.AssumptionHolds),
		strconv.FormatFloat(m.LoadSkew, 'g', -1, 64),
		strconv.FormatFloat(rec.WallClockMS, 'g', -1, 64),
		strconv.FormatUint(rec.AllocBytes, 10),
		strconv.FormatBool(rec.Resumed), rec.Err,
	}
	if err := s.w.Write(row); err != nil {
		return err
	}
	s.w.Flush()
	return s.w.Error()
}

// ProgressSink renders a live one-line progress display (carriage-
// return overwrite) as points complete, finishing with a summary line.
type ProgressSink struct {
	W          io.Writer
	experiment string
	total      int
	done       int
	start      time.Time
}

// StartSweep resets the counter for a new sweep.
func (p *ProgressSink) StartSweep(experiment string, points int) {
	p.experiment, p.total, p.done = experiment, points, 0
	p.start = time.Now()
}

// Write advances the progress line.
func (p *ProgressSink) Write(rec Record) error {
	p.done++
	elapsed := time.Since(p.start).Round(time.Millisecond)
	if p.done >= p.total {
		_, err := fmt.Fprintf(p.W, "\r[%s] %d/%d points in %s\n",
			p.experiment, p.done, p.total, elapsed)
		return err
	}
	_, err := fmt.Fprintf(p.W, "\r[%s] %d/%d points (%s, last: %s)…",
		p.experiment, p.done, p.total, elapsed, rec.Name)
	return err
}

// Artifact is a previously-recorded sweep loaded for -resume: points
// whose identity (experiment, index, name, seed, params) matches a
// successful record are replayed instead of executed.
type Artifact struct {
	records map[string]Record
}

// LoadArtifact parses a JSONL artifact written by JSONLSink. Lines that
// fail to parse are an error; records carrying a point failure are kept
// out of the resume set so failed points re-execute.
func LoadArtifact(r io.Reader) (*Artifact, error) {
	art := &Artifact{records: make(map[string]Record)}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("runner: artifact line %d: %w", line, err)
		}
		if rec.Err != "" {
			continue
		}
		art.records[recordKey(rec)] = rec
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return art, nil
}

// Len reports how many completed points the artifact holds.
func (a *Artifact) Len() int { return len(a.records) }

// Lookup returns the stored record matching the (not yet executed)
// record's identity.
func (a *Artifact) Lookup(rec Record) (Record, bool) {
	prev, ok := a.records[recordKey(rec)]
	return prev, ok
}

func recordKey(rec Record) string {
	return strings.Join([]string{
		rec.Experiment, strconv.Itoa(rec.Index), rec.Name,
		strconv.FormatInt(rec.Seed, 10), canonicalParams(rec.Params),
	}, "\x00")
}

func canonicalParams(params map[string]string) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+params[k])
	}
	return strings.Join(parts, ";")
}
