// Package runner fans independent, seed-deterministic experiment runs
// across a worker pool and emits one structured telemetry record per
// completed point to pluggable sinks (JSONL, CSV, live progress).
//
// # Determinism contract
//
// The pool preserves bit-reproducibility: every point's seed is fixed
// before any worker starts (explicit per-point seeds, or derived from
// the sweep seed and the point index), never influenced by scheduling
// order. Records are delivered to sinks in point order regardless of
// the worker count, so a sweep artifact is byte-identical at -workers=1
// and -workers=8 (modulo the wall-clock and allocation fields, which
// the deterministic sink mode zeroes).
//
// # Memory contract
//
// Records are rolled up, never per-node: a point's Metrics carries
// whole-run totals, per-kind counts, and — when profiling is on — the
// condensed per-round traffic profile from trace.Recorder.Summary. At
// profile-only scale the harnesses feed a streaming recorder through
// sim.WithRoundDigest, so nothing the runner retains grows with n; a
// million-node point's record is the same few hundred bytes as a
// 64-node one (docs/OBSERVABILITY.md documents the schema,
// docs/MEMORY.md the scaling model).
//
// Artifacts are the system of record for a sweep: -resume replays
// completed points from a previous artifact instead of re-running them,
// and a table can be regenerated offline from JSONL alone.
package runner
