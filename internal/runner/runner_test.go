package runner

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// syntheticPoints builds n cheap deterministic points; calls counts
// actual executions (not resumed replays).
func syntheticPoints(n int, calls *atomic.Int64) []Point {
	points := make([]Point, n)
	for i := range points {
		i := i
		points[i] = Point{
			Experiment: "synthetic",
			Name:       fmt.Sprintf("p%d", i),
			Seed:       int64(100 + i),
			FixedSeed:  true,
			Params:     map[string]string{"i": fmt.Sprint(i)},
			Run: func(seed int64) (Metrics, error) {
				if calls != nil {
					calls.Add(1)
				}
				return Metrics{
					Rounds:   int(seed % 7),
					Messages: seed * 3,
					Unique:   true,
					Extra:    map[string]float64{"seed": float64(seed)},
				}, nil
			},
		}
	}
	return points
}

func runToJSONL(t *testing.T, points []Point, workers int) ([]Record, string) {
	t.Helper()
	var buf bytes.Buffer
	recs, err := Run(points, Options{
		Workers: workers,
		Sinks:   []Sink{&JSONLSink{W: &buf, OmitVolatile: true}},
	})
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return recs, buf.String()
}

// TestDeterministicAcrossWorkers is the tentpole guarantee: the JSONL
// artifact (minus the volatile wall-clock/alloc fields) is byte-identical
// at -workers=1 and -workers=8.
func TestDeterministicAcrossWorkers(t *testing.T) {
	points := syntheticPoints(37, nil)
	_, serial := runToJSONL(t, points, 1)
	_, pooled := runToJSONL(t, points, 8)
	if serial != pooled {
		t.Fatalf("JSONL artifact differs between workers=1 and workers=8:\n-- serial --\n%s\n-- pooled --\n%s", serial, pooled)
	}
	if got := strings.Count(serial, "\n"); got != len(points) {
		t.Fatalf("artifact has %d lines, want %d", got, len(points))
	}
}

// TestDerivedSeeds: points without an explicit seed get one derived from
// the sweep seed and point index — stable across worker counts, distinct
// per point, and different under a different sweep seed.
func TestDerivedSeeds(t *testing.T) {
	mk := func() []Point {
		points := make([]Point, 9)
		for i := range points {
			points[i] = Point{
				Experiment: "derived", Name: fmt.Sprintf("p%d", i),
				Run: func(seed int64) (Metrics, error) {
					return Metrics{Messages: seed}, nil
				},
			}
		}
		return points
	}
	recs1, err := Run(mk(), Options{Workers: 1, SweepSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	recs8, err := Run(mk(), Options{Workers: 8, SweepSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	other, err := Run(mk(), Options{Workers: 1, SweepSeed: 8})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for i := range recs1 {
		if recs1[i].Seed == 0 {
			t.Errorf("point %d: derived seed is zero", i)
		}
		if recs1[i].Seed != recs8[i].Seed {
			t.Errorf("point %d: seed %d at workers=1 vs %d at workers=8", i, recs1[i].Seed, recs8[i].Seed)
		}
		if recs1[i].Seed != recs1[i].Metrics.Messages {
			t.Errorf("point %d: Run saw seed %d, record says %d", i, recs1[i].Metrics.Messages, recs1[i].Seed)
		}
		if seen[recs1[i].Seed] {
			t.Errorf("point %d: duplicate derived seed %d", i, recs1[i].Seed)
		}
		seen[recs1[i].Seed] = true
		if recs1[i].Seed == other[i].Seed {
			t.Errorf("point %d: same seed under different sweep seeds", i)
		}
	}
}

// TestFixedSeedZero: FixedSeed passes an explicit zero seed through
// verbatim (experiments A1/A3 use canonical seed 0).
func TestFixedSeedZero(t *testing.T) {
	var got int64 = -1
	recs, err := Run([]Point{{
		Experiment: "fixed", Name: "zero", Seed: 0, FixedSeed: true,
		Run: func(seed int64) (Metrics, error) { got = seed; return Metrics{}, nil },
	}}, Options{Workers: 1, SweepSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 || recs[0].Seed != 0 {
		t.Fatalf("fixed zero seed not preserved: Run saw %d, record %d", got, recs[0].Seed)
	}
}

// TestResumeSkipsExactly: resuming from a partial artifact re-executes
// exactly the missing points and replays the rest with Resumed set.
func TestResumeSkipsExactly(t *testing.T) {
	var first atomic.Int64
	points := syntheticPoints(10, &first)
	var buf bytes.Buffer
	if _, err := Run(points, Options{Workers: 2, Sinks: []Sink{&JSONLSink{W: &buf}}}); err != nil {
		t.Fatal(err)
	}
	if first.Load() != 10 {
		t.Fatalf("first sweep executed %d points, want 10", first.Load())
	}

	// Keep an artifact holding only the even-index points.
	var partial bytes.Buffer
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if i%2 == 0 {
			partial.WriteString(line + "\n")
		}
	}
	art, err := LoadArtifact(&partial)
	if err != nil {
		t.Fatal(err)
	}
	if art.Len() != 5 {
		t.Fatalf("partial artifact holds %d points, want 5", art.Len())
	}

	var second atomic.Int64
	recs, err := Run(syntheticPoints(10, &second), Options{Workers: 2, Resume: art})
	if err != nil {
		t.Fatal(err)
	}
	if second.Load() != 5 {
		t.Fatalf("resume executed %d points, want exactly the 5 missing ones", second.Load())
	}
	for i, rec := range recs {
		wantResumed := i%2 == 0
		if rec.Resumed != wantResumed {
			t.Errorf("point %d: Resumed=%v, want %v", i, rec.Resumed, wantResumed)
		}
		if rec.Metrics.Messages != int64(100+i)*3 {
			t.Errorf("point %d: metrics not preserved across resume: %+v", i, rec.Metrics)
		}
	}
}

// TestResumeIgnoresMismatch: a changed seed or params invalidates the
// stored record, forcing re-execution.
func TestResumeIgnoresMismatch(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Run(syntheticPoints(3, nil), Options{Workers: 1, Sinks: []Sink{&JSONLSink{W: &buf}}}); err != nil {
		t.Fatal(err)
	}
	art, err := LoadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	changed := syntheticPoints(3, &calls)
	changed[1].Seed = 999 // different seed → not the same point any more
	recs, err := Run(changed, Options{Workers: 1, Resume: art})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("resume after seed change executed %d points, want 1", calls.Load())
	}
	if recs[1].Resumed || !recs[0].Resumed || !recs[2].Resumed {
		t.Fatalf("wrong points resumed: %v %v %v", recs[0].Resumed, recs[1].Resumed, recs[2].Resumed)
	}
}

// TestErrorRecords: a failing point lands in its record's Err field (and
// Run still succeeds); LoadArtifact keeps errored records out of the
// resume set so they re-execute.
func TestErrorRecords(t *testing.T) {
	points := syntheticPoints(3, nil)
	points[1].Run = func(seed int64) (Metrics, error) {
		return Metrics{}, fmt.Errorf("boom")
	}
	var buf bytes.Buffer
	recs, err := Run(points, Options{Workers: 2, Sinks: []Sink{&JSONLSink{W: &buf}}})
	if err != nil {
		t.Fatalf("Run returned %v; point failures belong in records", err)
	}
	if recs[1].Err != "boom" || recs[0].Err != "" || recs[2].Err != "" {
		t.Fatalf("wrong Err placement: %+v", recs)
	}
	art, err := LoadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if art.Len() != 2 {
		t.Fatalf("artifact resume set holds %d records, want 2 (errored excluded)", art.Len())
	}
}

// TestLoadArtifactMalformed: garbage lines are an error, blank lines are
// not.
func TestLoadArtifactMalformed(t *testing.T) {
	if _, err := LoadArtifact(strings.NewReader("{\"experiment\":\"x\"}\n\nnot json\n")); err == nil {
		t.Fatal("malformed line did not error")
	}
	art, err := LoadArtifact(strings.NewReader("{\"experiment\":\"x\"}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if art.Len() != 1 {
		t.Fatalf("got %d records, want 1", art.Len())
	}
}

// TestCSVSink: fixed header, one row per record, volatile columns
// positioned at the end.
func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSVSink(&buf)
	recs, err := Run(syntheticPoints(3, nil), Options{Workers: 1, Sinks: []Sink{sink}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "experiment,index,epoch,name,seed,params") {
		t.Fatalf("unexpected CSV header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "synthetic,0,0,p0,100,i=0") {
		t.Fatalf("unexpected first row: %s", lines[1])
	}
	_ = recs
}

// TestProgressSink: emits one final summary line per sweep.
func TestProgressSink(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Run(syntheticPoints(4, nil), Options{Workers: 2, Sinks: []Sink{&ProgressSink{W: &buf}}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[synthetic] 4/4 points in ") {
		t.Fatalf("missing final progress line: %q", out)
	}
}

// TestGuaranteeBooleansAlwaysPresent: the guarantee booleans serialize
// even when false — a run that *violates* strong renaming must be
// distinguishable in the artifact from a run that never measured it.
func TestGuaranteeBooleansAlwaysPresent(t *testing.T) {
	points := []Point{{
		Experiment: "g", Name: "violating", Seed: 5, FixedSeed: true,
		Run: func(int64) (Metrics, error) { return Metrics{Rounds: 1}, nil },
	}}
	var buf bytes.Buffer
	if _, err := Run(points, Options{Workers: 1, Sinks: []Sink{&JSONLSink{W: &buf}}}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"unique":false`, `"orderPreserving":false`, `"assumptionHolds":false`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSONL record missing %s:\n%s", want, buf.String())
		}
	}
}

// failingSink accepts failAt writes, then fails every one after,
// signalling the first failure on onFail.
type failingSink struct {
	writes, failAt int
	onFail         chan struct{}
}

func (s *failingSink) Write(Record) error {
	s.writes++
	if s.writes > s.failAt {
		if s.onFail != nil {
			close(s.onFail)
			s.onFail = nil
		}
		return fmt.Errorf("disk full")
	}
	return nil
}

// TestSinkFailureStopsScheduling pins the sink-failure contract: once a
// sink write fails the artifact is broken, so the runner must stop
// scheduling new points (instead of silently burning through the rest of
// the sweep producing records nobody can persist) and the returned error
// must name how many records were flushed intact.
func TestSinkFailureStopsScheduling(t *testing.T) {
	const total, failAt = 30, 3
	sinkFailed := make(chan struct{})
	var calls atomic.Int64
	points := syntheticPoints(total, &calls)
	for i := failAt + 1; i < total; i++ {
		// Later points park until the sink has actually failed, so the
		// runner's reaction — not scheduling luck — decides how many run.
		inner := points[i].Run
		points[i].Run = func(seed int64) (Metrics, error) {
			<-sinkFailed
			return inner(seed)
		}
	}
	_, err := Run(points, Options{
		Workers: 1,
		Sinks:   []Sink{&failingSink{failAt: failAt, onFail: sinkFailed}},
	})
	if err == nil {
		t.Fatal("Run succeeded despite a failing sink")
	}
	if !strings.Contains(err.Error(), "sink failed after 3 records flushed") {
		t.Fatalf("error does not name the flushed-record count: %v", err)
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("error does not wrap the sink failure: %v", err)
	}
	// Writes fail from record 3 on. By then the single worker has at most
	// one further point in flight; everything beyond must never start.
	if got := calls.Load(); got > failAt+2 {
		t.Fatalf("executed %d of %d points after the sink failure, want scheduling stopped", got, total)
	}
}

// TestWorkersCapped: worker count never exceeds the point count, and
// Workers<=0 still executes everything.
func TestWorkersCapped(t *testing.T) {
	for _, workers := range []int{0, 1, 64} {
		var calls atomic.Int64
		recs, err := Run(syntheticPoints(5, &calls), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 5 || len(recs) != 5 {
			t.Fatalf("workers=%d: %d calls, %d records", workers, calls.Load(), len(recs))
		}
	}
	if recs, err := Run(nil, Options{}); err != nil || len(recs) != 0 {
		t.Fatalf("empty sweep: %v, %d records", err, len(recs))
	}
}
