package renaming

import (
	"strings"
	"testing"
)

func TestRunCrashBasic(t *testing.T) {
	res, err := RunCrash(64, CrashSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Fatal("expected unique strong renaming")
	}
	if res.Crashes != 0 {
		t.Fatalf("crashes = %d, want 0", res.Crashes)
	}
	if res.Rounds == 0 || res.Messages == 0 {
		t.Fatalf("suspicious metrics: %+v", res)
	}
}

func TestRunCrashWithKiller(t *testing.T) {
	res, err := RunCrash(128, CrashSpec{
		Seed:           7,
		CommitteeScale: 0.05,
		Fault:          FaultSpec{Kind: FaultCommitteeKiller, Budget: 60, MidSend: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Fatal("expected unique renaming despite committee killer")
	}
	if res.Crashes == 0 {
		t.Fatal("killer crashed nobody — adversary wiring broken")
	}
}

func TestRunByzantineBasic(t *testing.T) {
	res, err := RunByzantine(24, ByzSpec{
		Seed: 3,
		Byzantine: map[int]Behavior{
			2: BehaviorSplitWorld, 9: BehaviorEquivocate, 17: BehaviorSilent,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AssumptionHolds {
		t.Skip("committee composition outside guarantee envelope for this seed")
	}
	if !res.Unique {
		t.Fatal("expected unique renaming")
	}
	if !res.OrderPreserving {
		t.Fatal("expected order-preserving renaming")
	}
	if res.Byzantine != 3 {
		t.Fatalf("byzantine = %d", res.Byzantine)
	}
}

func TestRunByzantineRejectsTooManyFaults(t *testing.T) {
	byz := make(map[int]Behavior)
	for i := 0; i < 10; i++ {
		byz[i] = BehaviorSilent
	}
	if _, err := RunByzantine(12, ByzSpec{Seed: 1, Byzantine: byz}); err == nil {
		t.Fatal("expected error for f ≥ (1/3−ε₀)n")
	}
}

func TestRunBaselines(t *testing.T) {
	for _, kind := range []BaselineKind{BaselineAllToAllCrash, BaselineCollectSort,
		BaselineAllToAllByzantine, BaselineConsensusBroadcast} {
		spec := BaselineSpec{Kind: kind, Seed: 2}
		if kind == BaselineAllToAllByzantine || kind == BaselineConsensusBroadcast {
			spec.Byzantine = []int{4, 13}
		}
		res, err := RunBaseline(48, spec)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if !res.Unique {
			t.Fatalf("kind %d: expected unique renaming", kind)
		}
	}
}

func TestGenerateIDs(t *testing.T) {
	for _, pattern := range []IDPattern{IDsRandom, IDsEven, IDsClustered} {
		ids, err := GenerateIDs(100, 5000, pattern, 9)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for _, id := range ids {
			if id < 1 || id > 5000 {
				t.Fatalf("pattern %d: id %d out of range", pattern, id)
			}
			if seen[id] {
				t.Fatalf("pattern %d: duplicate id %d", pattern, id)
			}
			seen[id] = true
		}
	}
	if _, err := GenerateIDs(10, 5, IDsRandom, 1); err == nil {
		t.Fatal("expected error for N < n")
	}
}

func TestRunCrashDeterministic(t *testing.T) {
	spec := CrashSpec{Seed: 11, CommitteeScale: 0.1,
		Fault: FaultSpec{Kind: FaultRandom, Budget: 20, Prob: 0.05, MidSend: true}}
	a, err := RunCrash(96, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrash(96, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || a.Bits != b.Bits || a.Crashes != b.Crashes {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a, b)
	}
	for i := range a.NewIDByLink {
		if a.NewIDByLink[i] != b.NewIDByLink[i] {
			t.Fatalf("new id differs at %d", i)
		}
	}
}

func TestRunCrashTrace(t *testing.T) {
	var buf strings.Builder
	res, err := RunCrash(16, CrashSpec{Seed: 1, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Fatal("renaming failed")
	}
	out := buf.String()
	if !strings.Contains(out, "notify") || !strings.Contains(out, "status") {
		t.Fatalf("trace missing payload kinds:\n%s", out)
	}
	if res.MaxNodeSent == 0 || res.MaxNodeReceived == 0 {
		t.Fatalf("per-node load not recorded: %+v", res)
	}
}

func TestRunCrashEarlyStopPublic(t *testing.T) {
	slow, err := RunCrash(128, CrashSpec{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunCrash(128, CrashSpec{Seed: 2, EarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	if !slow.Unique || !fast.Unique {
		t.Fatal("renaming failed")
	}
	if fast.Rounds >= slow.Rounds {
		t.Fatalf("early stop did not reduce rounds: %d vs %d", fast.Rounds, slow.Rounds)
	}
}

func TestRunByzantineMinoritySplit(t *testing.T) {
	res, err := RunByzantine(24, ByzSpec{
		Seed:      5,
		Byzantine: map[int]Behavior{3: BehaviorMinoritySplit},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AssumptionHolds && (!res.Unique || !res.OrderPreserving) {
		t.Fatalf("minority split broke renaming: %+v", res)
	}
}

// TestCrashTrafficShape pins the failure-free per-kind message counts to
// the protocol's arithmetic: a fixed committee of size c produces
// c·n notifications, n·c statuses, and c·n responses per phase.
func TestCrashTrafficShape(t *testing.T) {
	n := 64
	res, err := RunCrash(n, CrashSpec{Seed: 6, CommitteeScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Fatal("renaming failed")
	}
	phases := int64(res.Rounds / 3)
	c := int64(res.CommitteeSize)
	if res.PerKind["notify"] != c*int64(n)*phases {
		t.Fatalf("notify = %d, want c·n·phases = %d", res.PerKind["notify"], c*int64(n)*phases)
	}
	if res.PerKind["status"] != res.PerKind["response"] {
		t.Fatalf("status %d ≠ response %d in a failure-free run",
			res.PerKind["status"], res.PerKind["response"])
	}
	if res.PerKind["status"] != int64(n)*c*phases {
		t.Fatalf("status = %d, want n·c·phases = %d", res.PerKind["status"], int64(n)*c*phases)
	}
}

// TestRunByzantineRushing subjects the algorithm to rushing equivocators
// — Byzantine committee members that see each round's honest votes before
// splitting theirs — and requires the guarantees to survive.
func TestRunByzantineRushing(t *testing.T) {
	ran := false
	for seed := int64(0); seed < 8 && !ran; seed++ {
		res, err := RunByzantine(27, ByzSpec{
			Seed: seed,
			Byzantine: map[int]Behavior{
				4:  BehaviorRushingEquivocate,
				13: BehaviorRushingEquivocate,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AssumptionHolds {
			continue
		}
		ran = true
		if !res.Unique || !res.OrderPreserving {
			t.Fatalf("rushing equivocators broke renaming: %+v", res)
		}
	}
	if !ran {
		t.Fatal("no seed satisfied the committee assumption")
	}
}

// TestCrashTightBijection: with zero failures, strong (tight) renaming
// means the new identities are exactly a permutation of [1, n].
func TestCrashTightBijection(t *testing.T) {
	for _, n := range []int{7, 32, 129} {
		res, err := RunCrash(n, CrashSpec{Seed: int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]bool, n+1)
		for link, id := range res.NewIDByLink {
			if id < 1 || id > n || got[id] {
				t.Fatalf("n=%d link=%d id=%d not a bijection", n, link, id)
			}
			got[id] = true
		}
	}
}

// TestByzantineTightBijection: with zero Byzantine nodes the new
// identities are exactly [1, n].
func TestByzantineTightBijection(t *testing.T) {
	n := 30
	res, err := RunByzantine(n, ByzSpec{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]bool, n+1)
	for link, id := range res.NewIDByLink {
		if id < 1 || id > n || got[id] {
			t.Fatalf("link=%d id=%d not a bijection", link, id)
		}
		got[id] = true
	}
}

func TestRunCrashValidation(t *testing.T) {
	if _, err := RunCrash(4, CrashSpec{IDs: []int{1, 2}}); err == nil {
		t.Fatal("ids/n mismatch accepted")
	}
	if _, err := RunCrash(4, CrashSpec{N: 2}); err == nil {
		t.Fatal("N < n accepted")
	}
	if _, err := RunCrash(3, CrashSpec{N: 10, IDs: []int{1, 1, 2}}); err == nil {
		t.Fatal("duplicate ids accepted")
	}
}

func TestRunByzantineValidation(t *testing.T) {
	if _, err := RunByzantine(4, ByzSpec{IDs: []int{9}}); err == nil {
		t.Fatal("ids/n mismatch accepted")
	}
	if _, err := RunByzantine(3, ByzSpec{N: 12, IDs: []int{0, 1, 2}}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

func TestAdversaryLinks(t *testing.T) {
	// n ≡ 0 (mod 3) with f > n/3: the naive (3i+1) mod n stride only
	// visits n/3 residues, so the old placement silently under-provisioned
	// the adversary. The fixed placement must produce f distinct links.
	links, err := AdversaryLinks(96, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 33 {
		t.Fatalf("placed %d links, want 33", len(links))
	}
	seen := make(map[int]bool)
	for _, link := range links {
		if link < 0 || link >= 96 {
			t.Fatalf("link %d out of range", link)
		}
		if seen[link] {
			t.Fatalf("duplicate link %d", link)
		}
		seen[link] = true
	}

	// Whenever the naive enumeration is collision-free (every experiment
	// call site, which keeps historical sweeps byte-identical), the fixed
	// placement matches it exactly.
	links, err = AdversaryLinks(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, link := range links {
		if link != (3*i+1)%64 {
			t.Fatalf("collision-free placement diverged at %d: got %d, want %d", i, link, (3*i+1)%64)
		}
	}

	// Invalid shapes error loudly instead of dividing by zero or looping.
	for _, bad := range []struct{ n, f int }{{0, 0}, {0, 3}, {-1, 1}, {8, -1}, {8, 8}, {8, 9}} {
		if _, err := AdversaryLinks(bad.n, bad.f); err == nil {
			t.Errorf("AdversaryLinks(%d, %d) accepted", bad.n, bad.f)
		}
	}
	if links, err := AdversaryLinks(5, 0); err != nil || len(links) != 0 {
		t.Fatalf("f=0 should place nothing: %v, %v", links, err)
	}
}
