package renaming_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"renaming"
)

// crashGoldenFingerprint pins the complete telemetry (JSON-marshalled
// Result, including per-round traffic profile) of one adversarial crash
// execution at n = 256 under the committee killer with mid-send crashes.
// Update it only for a deliberate behaviour change, never for a
// performance change: every engine or algorithm optimisation — schedule
// quiescence, shared broadcasts, pooled scratch, interval-grouped
// committee ranking — must reproduce this byte-for-byte.
const crashGoldenFingerprint = "a00ef320ae43a698bfb7898386d246e5ee40f79fc62a939279d4b087b60bdc71"

// TestCrashDeterminism runs the same adversarial crash execution with
// the round engine pinned to 1 worker and to 8 workers and requires
// both to match the golden fingerprint. The 1-worker run exercises the
// coordinator-only fast paths, the 8-worker run the sharded phases,
// barriers, and counting-sort delivery; the committee killer with
// mid-send crashes exercises the crash-filter expansion of shared
// broadcasts. Identical hashes prove the crash path's fast paths are
// observationally invisible — the regression oracle the perf work is
// measured against (mirrors TestByzantineDeterminism).
func TestCrashDeterminism(t *testing.T) {
	for _, workers := range []int{1, 8} {
		res, err := renaming.RunCrash(256, renaming.CrashSpec{
			Seed:           77,
			CommitteeScale: 0.02,
			Fault: renaming.FaultSpec{
				Kind:    renaming.FaultCommitteeKiller,
				Budget:  64,
				MidSend: true,
			},
			Profile:       true,
			EngineWorkers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Unique {
			t.Fatalf("workers=%d: surviving nodes did not rename uniquely", workers)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("workers=%d: marshal: %v", workers, err)
		}
		sum := sha256.Sum256(blob)
		if got := hex.EncodeToString(sum[:]); got != crashGoldenFingerprint {
			t.Errorf("workers=%d: telemetry fingerprint %s, want %s", workers, got, crashGoldenFingerprint)
		}
	}
}
