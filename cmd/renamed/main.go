// Command renamed drives the long-lived renaming service
// (internal/service) through a seeded churn trace: every epoch batches
// the joins and leaves the trace draws, runs the one-shot protocol over
// the join batch, recycles released names through the free list, and
// re-checks the service invariants with the campaign oracle. One JSONL
// telemetry record per epoch goes to -out (docs/OBSERVABILITY.md, with
// the epoch field keying records to epochs).
//
// Examples:
//
//	renamed -n 1024 -epochs 100
//	renamed -n 4096 -epochs 200 -faults 32 -out churn.jsonl
//	renamed -n 256 -core byzantine -epochs 50 -workers 8
//
// Determinism: the stdout summary and the -out artifact are
// byte-identical at any -workers count (the flag sets the round
// engine's worker pool inside each epoch; epochs themselves are
// stateful and strictly sequential). The process exits 1 when the
// oracle flags any invariant violation, 2 on errors, so a churn run
// doubles as a CI gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"renaming/internal/campaign"
	"renaming/internal/profiling"
	"renaming/internal/runner"
	"renaming/internal/service"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "renamed:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		capacity   = flag.Int("n", 1024, "service namespace capacity (bounds the live population)")
		bigN       = flag.Int("N", 0, "original namespace joiner identities are drawn from (default 16·n)")
		epochs     = flag.Int("epochs", 100, "number of join/leave epochs to run")
		seed       = flag.Int64("seed", 1, "master seed: trace, per-epoch one-shot runs, and fault schedule all derive from it")
		core       = flag.String("core", "crash", "one-shot core per epoch: crash | byzantine")
		joinMax    = flag.Int("join-max", 0, "max joins per epoch (default max(1, n/8))")
		leaveMax   = flag.Int("leave-max", 0, "max leaves per epoch (default join-max)")
		faults     = flag.Int("faults", 0, "churn-adversary crash budget across the whole trace (0 = fault-free)")
		workers    = flag.Int("workers", 0, "round-engine workers inside each epoch (default GOMAXPROCS); output is byte-identical at any count")
		outPath    = flag.String("out", "", "append one JSONL record per epoch")
		csvPath    = flag.String("csv", "", "write per-epoch records as CSV")
		volatile   = flag.Bool("volatile", false, "keep wall-clock and allocation fields in -out records (off: byte-comparable artifacts)")
		profile    = flag.Bool("profile", false, "record per-epoch round traffic profiles into the JSONL records")
		progress   = flag.Bool("progress", false, "live progress line on stderr")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this path (go tool pprof)")
	)
	flag.Parse()

	if *epochs <= 0 {
		return 0, fmt.Errorf("-epochs must be positive, got %d", *epochs)
	}
	svcCore := service.Core(*core)
	if svcCore != service.CoreCrash && svcCore != service.CoreByzantine {
		return 0, fmt.Errorf("unknown core %q", *core)
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return 0, err
	}

	driver, err := service.NewTraceDriver(service.TraceSpec{
		Capacity: *capacity, BigN: *bigN,
		JoinMax: *joinMax, LeaveMax: *leaveMax,
		Seed: *seed,
	})
	if err != nil {
		return 0, err
	}
	if *bigN == 0 {
		*bigN = 16 * *capacity
	}
	cfg := service.Config{
		Capacity: *capacity, BigN: *bigN, Seed: *seed, Core: svcCore,
		EngineWorkers: *workers, Profile: *profile,
	}
	if *faults > 0 {
		// The fault schedule is a campaign churn strategy pinned to the
		// master seed: crashes land inside epoch one-shot runs across the
		// whole trace, exactly as campaign executions replay them.
		strat, err := campaign.Generate(campaign.GenSpec{
			Kind: campaign.GenChurn, N: *capacity, Budget: *faults,
			Rounds:   campaign.CrashRoundCeiling(driver.JoinMax()),
			Epochs:   *epochs,
			BatchMax: driver.JoinMax(),
		}, *seed)
		if err != nil {
			return 0, err
		}
		cfg.FaultForEpoch = strat.ChurnFault()
	}
	svc, err := service.New(cfg)
	if err != nil {
		return 0, err
	}
	defer svc.Close()
	oracle := campaign.NewServiceOracle(*capacity, svcCore)

	var sinks []runner.Sink
	if *outPath != "" {
		out, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return 0, err
		}
		defer out.Close()
		sinks = append(sinks, &runner.JSONLSink{W: out, OmitVolatile: !*volatile})
	}
	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			return 0, err
		}
		defer out.Close()
		sinks = append(sinks, runner.NewCSVSink(out))
	}
	var prog *runner.ProgressSink
	if *progress {
		prog = &runner.ProgressSink{W: os.Stderr}
		prog.StartSweep("churn", *epochs)
	}

	var (
		violations []campaign.Violation
		totals     struct {
			joined, failed, released, recycled, aborted int
			rounds                                      int
			messages, bits                              int64
			crashes                                     int
		}
	)
	start := time.Now()
	for epoch := 0; epoch < *epochs; epoch++ {
		joins, leaves, err := driver.NextEpoch(svc.LiveClients())
		if err != nil {
			return 0, err
		}
		er, err := svc.RunEpoch(joins, leaves)
		if err != nil {
			return 0, err
		}
		viols := oracle.CheckEpoch(er)
		violations = append(violations, viols...)

		totals.joined += er.Joined
		totals.failed += er.FailedJoins
		totals.released += len(er.Released)
		totals.recycled += er.Recycled
		totals.rounds += er.Rounds
		totals.messages += er.Messages
		totals.bits += er.Bits
		totals.crashes += er.Crashes
		if er.Aborted {
			totals.aborted++
		}

		rec := epochRecord(er, *seed, *capacity)
		for _, v := range viols {
			rec.Metrics.Violations = append(rec.Metrics.Violations, v.Invariant)
		}
		for _, sink := range sinks {
			if err := sink.Write(rec); err != nil {
				return 0, err
			}
		}
		if prog != nil {
			if err := prog.Write(rec); err != nil {
				return 0, err
			}
		}
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	// The summary is deterministic in (flags, seed): volatile provenance
	// goes to stderr so stdout diffs cleanly across runs and -workers.
	fmt.Printf("churn     core=%s n=%d N=%d epochs=%d join-max=%d faults=%d seed=%d\n",
		svcCore, svc.Capacity(), cfg.BigN, *epochs, driver.JoinMax(), *faults, *seed)
	fmt.Printf("service   joined=%d failed=%d released=%d recycled=%d aborted=%d live=%d free=%d\n",
		totals.joined, totals.failed, totals.released, totals.recycled,
		totals.aborted, svc.Live(), svc.FreeNames())
	fmt.Printf("one-shot  rounds=%d messages=%d bits=%d crashes=%d\n",
		totals.rounds, totals.messages, totals.bits, totals.crashes)
	if len(violations) == 0 {
		fmt.Printf("violations: 0 across %d epochs\n", *epochs)
	} else {
		fmt.Printf("violations: %d\n", len(violations))
		for i, v := range violations {
			if i >= 10 {
				fmt.Printf("  … and %d more\n", len(violations)-i)
				break
			}
			fmt.Printf("  epoch %d [%s] %s\n", v.Epoch, v.Invariant, v.Detail)
		}
	}
	fmt.Fprintf(os.Stderr, "renamed: %d epochs in %s\n", *epochs, elapsed)
	if err := stopProfiles(); err != nil {
		return 0, err
	}
	if len(violations) > 0 {
		return 1, nil
	}
	return 0, nil
}

// epochRecord shapes one epoch result as a runner telemetry record; the
// record seed is the epoch's own one-shot seed, so any epoch can be
// reproduced in isolation.
func epochRecord(er *service.EpochResult, seed int64, capacity int) runner.Record {
	m := runner.Metrics{
		Rounds:          er.Rounds,
		Messages:        er.Messages,
		Bits:            er.Bits,
		HonestMessages:  er.HonestMessages,
		HonestBits:      er.HonestBits,
		Crashes:         er.Crashes,
		Byzantine:       er.Byzantine,
		CommitteeSize:   er.CommitteeSize,
		Unique:          er.Unique,
		OrderPreserving: true,
		AssumptionHolds: er.AssumptionHolds,
		Trace:           er.RoundStats,
		Extra: map[string]float64{
			"joinsRequested":  float64(er.JoinsRequested),
			"leavesRequested": float64(er.LeavesRequested),
			"joined":          float64(er.Joined),
			"failedJoins":     float64(er.FailedJoins),
			"released":        float64(len(er.Released)),
			"recycled":        float64(er.Recycled),
			"live":            float64(er.Live),
			"freeNames":       float64(er.FreeNames),
			"peakLive":        float64(er.PeakLive),
		},
	}
	if er.Aborted {
		m.Extra["aborted"] = 1
	}
	name := fmt.Sprintf("epoch=%d/join=%d/leave=%d", er.Epoch, er.JoinsRequested, er.LeavesRequested)
	return runner.Record{
		Experiment: "churn",
		Index:      er.Epoch,
		Epoch:      er.Epoch,
		Name:       name,
		Seed:       service.EpochSeed(seed, er.Epoch),
		Params:     map[string]string{"n": fmt.Sprint(capacity)},
		Metrics:    m,
	}
}
