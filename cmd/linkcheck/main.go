// Command linkcheck validates the repository's markdown cross-links
// offline: every relative link and image reference in the given files
// (or the default doc set) must point at a file that exists, and every
// intra-document anchor must match a heading in the target file.
// External http(s) links are recognized but not fetched — CI stays
// hermetic — and unresolvable links exit nonzero with a file:line
// listing.
//
// Usage:
//
//	go run ./cmd/linkcheck [files...]
//	go run ./cmd/linkcheck            # README.md docs/*.md *.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style links are rare in this repo and out
// of scope.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

var headingRe = regexp.MustCompile("(?m)^#{1,6}\\s+(.+?)\\s*#*\\s*$")

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		var err error
		files, err = defaultFiles()
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
	}

	broken := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		for _, problem := range checkFile(file, string(data)) {
			fmt.Println(problem)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) clean\n", len(files))
}

func defaultFiles() ([]string, error) {
	seen := map[string]bool{}
	var out []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			return nil, err
		}
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

func checkFile(file, content string) []string {
	var problems []string
	lines := strings.Split(content, "\n")
	inFence := false
	for lineNo, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if problem := checkTarget(file, target); problem != "" {
				problems = append(problems, fmt.Sprintf("%s:%d: %s", file, lineNo+1, problem))
			}
		}
	}
	return problems
}

func checkTarget(file, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external; not fetched
	case strings.HasPrefix(target, "#"):
		return checkAnchor(file, target[1:])
	}
	path := target
	anchor := ""
	if i := strings.IndexByte(target, '#'); i >= 0 {
		path, anchor = target[:i], target[i+1:]
	}
	resolved := filepath.Join(filepath.Dir(file), path)
	if _, err := os.Stat(resolved); err != nil {
		return fmt.Sprintf("broken link %q (%s does not exist)", target, resolved)
	}
	if anchor != "" && strings.HasSuffix(path, ".md") {
		if problem := checkAnchorIn(resolved, anchor); problem != "" {
			return fmt.Sprintf("broken link %q: %s", target, problem)
		}
	}
	return ""
}

func checkAnchor(file, anchor string) string {
	if problem := checkAnchorIn(file, anchor); problem != "" {
		return fmt.Sprintf("broken anchor %q: %s", "#"+anchor, problem)
	}
	return ""
}

func checkAnchorIn(file, anchor string) string {
	data, err := os.ReadFile(file)
	if err != nil {
		return err.Error()
	}
	for _, m := range headingRe.FindAllStringSubmatch(string(data), -1) {
		if slugify(m[1]) == anchor {
			return ""
		}
	}
	return fmt.Sprintf("no heading slug %q in %s", anchor, file)
}

// slugify approximates GitHub's heading-anchor algorithm: lowercase,
// drop everything but letters/digits/spaces/hyphens, spaces to hyphens.
func slugify(heading string) string {
	// Strip inline code/emphasis markers before slugging (GitHub keeps
	// underscores in slugs).
	heading = strings.NewReplacer("`", "", "*", "").Replace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
