// Command renamesim runs a single renaming execution and prints its
// outcome and communication metrics.
//
// Examples:
//
//	renamesim -n 256                              # crash algorithm, no failures
//	renamesim -n 256 -fault killer -f 64          # adaptive committee killer
//	renamesim -n 96 -algo byzantine -f 8          # split-world Byzantine nodes
//	renamesim -n 128 -algo baseline-a2a -fault random -f 32
//	renamesim -n 128 -strategy mixed -f 32        # campaign strategy generator
//	renamesim -strategy replay:repro.json         # replay a shrunk campaign artifact
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"renaming"
	"renaming/internal/campaign"
	"renaming/internal/profiling"
	"renaming/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "renamesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 64, "number of nodes")
		bigN     = flag.Int("N", 0, "original namespace size (default 16·n)")
		seed     = flag.Int64("seed", 1, "run seed (all randomness derives from it)")
		algo     = flag.String("algo", "crash", "crash | byzantine | baseline-a2a | baseline-sort | baseline-byz")
		fault    = flag.String("fault", "none", "none | random | killer | burst (crash algorithms)")
		f        = flag.Int("f", 0, "failure budget / number of Byzantine nodes")
		scale    = flag.Float64("committee-scale", 0.02, "crash election-constant scale (1 = paper constant)")
		poolProb = flag.Float64("pool-prob", 0, "Byzantine candidate-pool probability override (0 = paper formula)")
		behavior = flag.String("behavior", "splitworld", "silent | splitworld | minoritysplit | equivocate | rushing | spam")
		doTrace  = flag.Bool("trace", false, "print a per-round traffic timeline")
		asJSON   = flag.Bool("json", false, "emit the result as JSON (for scripting)")
		early    = flag.Bool("early-stop", false, "enable the crash algorithm's early-stopping extension")
		verbose  = flag.Bool("v", false, "print the per-link renaming")
		outPath  = flag.String("out", "", "append the run as one JSONL telemetry record (docs/OBSERVABILITY.md)")
		strategy = flag.String("strategy", "", "campaign strategy generator (early-burst | trickle | targeted | mixed | byz-uniform | byz-skew | byz-silent | mixed-fault), or replay:<artifact.json>; empty keeps -fault/-behavior semantics")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this path (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this path (docs/MEMORY.md walks through one)")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "renamesim: profiling:", err)
		}
	}()

	if path, ok := strings.CutPrefix(*strategy, "replay:"); ok {
		return replayArtifact(path, *asJSON)
	}

	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	if *f < 0 || *f >= *n {
		return fmt.Errorf("-f must satisfy 0 <= f < n, got f=%d n=%d", *f, *n)
	}

	faultSpec := renaming.FaultSpec{Kind: renaming.FaultNone}
	switch *fault {
	case "none":
	case "random":
		faultSpec = renaming.FaultSpec{Kind: renaming.FaultRandom, Budget: *f, Prob: 0.05, MidSend: true}
	case "killer":
		faultSpec = renaming.FaultSpec{Kind: renaming.FaultCommitteeKiller, Budget: *f, MidSend: true}
	case "burst":
		nodes := make([]int, *f)
		for i := range nodes {
			nodes[i] = i
		}
		faultSpec = renaming.FaultSpec{Kind: renaming.FaultBurst, Round: 3, Nodes: nodes}
	default:
		return fmt.Errorf("unknown fault %q", *fault)
	}

	// A campaign strategy generator overrides -fault (crash kinds) or the
	// -behavior corruption set (byz-* kinds). With -strategy unset,
	// behaviour is unchanged.
	var stratByz map[int]renaming.Behavior
	var stratByzFault renaming.FaultSpec
	if *strategy != "" {
		kind := campaign.GeneratorKind(*strategy)
		if kind.IsByz() != (*algo == "byzantine") {
			return fmt.Errorf("-strategy %q does not match -algo %q", *strategy, *algo)
		}
		strat, serr := campaign.Generate(campaign.GenSpec{
			Kind: kind, N: *n, Budget: *f, Rounds: campaign.CrashRoundCeiling(*n),
		}, *seed)
		if serr != nil {
			return serr
		}
		if kind.IsByz() {
			var merr error
			if stratByz, merr = strat.ByzMap(); merr != nil {
				return merr
			}
			if len(strat.Schedule) > 0 {
				// mixed-fault strategies crash honest nodes too.
				stratByzFault = strat.Fault()
			}
		} else {
			if *algo != "crash" && *algo != "baseline-a2a" {
				return fmt.Errorf("-strategy %q needs -algo crash or baseline-a2a", *strategy)
			}
			faultSpec = strat.Fault()
		}
	}

	var traceOut *os.File
	if *doTrace {
		traceOut = os.Stdout
	}
	var exec func(seed int64) (*renaming.Result, error)
	switch *algo {
	case "crash":
		exec = func(seed int64) (*renaming.Result, error) {
			spec := renaming.CrashSpec{
				N: *bigN, Seed: seed, CommitteeScale: *scale, Fault: faultSpec,
				EarlyStop: *early, Profile: *outPath != "",
			}
			if traceOut != nil {
				spec.Trace = traceOut
			}
			return renaming.RunCrash(*n, spec)
		}
	case "byzantine":
		byz := stratByz
		if byz == nil {
			b, berr := parseBehavior(*behavior)
			if berr != nil {
				return berr
			}
			links, lerr := renaming.AdversaryLinks(*n, *f)
			if lerr != nil {
				return lerr
			}
			byz = make(map[int]renaming.Behavior, *f)
			for _, link := range links {
				byz[link] = b
			}
		}
		exec = func(seed int64) (*renaming.Result, error) {
			spec := renaming.ByzSpec{
				N: *bigN, Seed: seed, PoolProb: *poolProb, Byzantine: byz,
				Fault:   stratByzFault,
				Profile: *outPath != "",
			}
			if traceOut != nil {
				spec.Trace = traceOut
			}
			return renaming.RunByzantine(*n, spec)
		}
	case "baseline-a2a":
		exec = func(seed int64) (*renaming.Result, error) {
			return renaming.RunBaseline(*n, renaming.BaselineSpec{
				Kind: renaming.BaselineAllToAllCrash, N: *bigN, Seed: seed, Fault: faultSpec,
			})
		}
	case "baseline-sort":
		exec = func(seed int64) (*renaming.Result, error) {
			return renaming.RunBaseline(*n, renaming.BaselineSpec{
				Kind: renaming.BaselineCollectSort, N: *bigN, Seed: seed,
			})
		}
	case "baseline-byz":
		links, lerr := renaming.AdversaryLinks(*n, *f)
		if lerr != nil {
			return lerr
		}
		exec = func(seed int64) (*renaming.Result, error) {
			return renaming.RunBaseline(*n, renaming.BaselineSpec{
				Kind: renaming.BaselineAllToAllByzantine, N: *bigN, Seed: seed, Byzantine: links,
			})
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	var res *renaming.Result
	if *outPath == "" {
		var err error
		if res, err = exec(*seed); err != nil {
			return err
		}
	} else {
		// Route the run through the experiment runner so the telemetry
		// record matches what benchtables sweeps emit.
		out, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer out.Close()
		point := runner.Point{
			Experiment: "renamesim", Name: *algo, Seed: *seed, FixedSeed: true,
			Params: map[string]string{
				"n": fmt.Sprint(*n), "algo": *algo, "fault": *fault, "f": fmt.Sprint(*f),
			},
			Run: func(seed int64) (runner.Metrics, error) {
				r, err := exec(seed)
				if err != nil {
					return runner.Metrics{}, err
				}
				res = r
				return runner.FromResult(r, *n), nil
			},
		}
		recs, err := runner.Run([]runner.Point{point}, runner.Options{
			Workers: 1, Sinks: []runner.Sink{&runner.JSONLSink{W: out}},
		})
		if err != nil {
			return err
		}
		if recs[0].Err != "" {
			return fmt.Errorf("%s", recs[0].Err)
		}
		fmt.Fprintf(os.Stderr, "telemetry record appended to %s\n", *outPath)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Algorithm string
			N         int
			*renaming.Result
		}{Algorithm: *algo, N: *n, Result: res})
	}

	fmt.Printf("algorithm       %s\n", *algo)
	fmt.Printf("n               %d\n", *n)
	fmt.Printf("unique/strong   %v\n", res.Unique)
	fmt.Printf("order-preserving %v\n", res.OrderPreserving)
	fmt.Printf("crashes (f)     %d\n", res.Crashes)
	fmt.Printf("byzantine (f)   %d\n", res.Byzantine)
	fmt.Printf("rounds          %d\n", res.Rounds)
	fmt.Printf("messages        %d (honest %d)\n", res.Messages, res.HonestMessages)
	fmt.Printf("bits            %d (honest %d)\n", res.Bits, res.HonestBits)
	fmt.Printf("max message     %d bits\n", res.MaxMessageBits)
	fmt.Printf("max node load   %d sent / %d received\n", res.MaxNodeSent, res.MaxNodeReceived)
	if res.CommitteeSize > 0 {
		fmt.Printf("committee       %d (assumption holds: %v)\n", res.CommitteeSize, res.AssumptionHolds)
	}
	if res.Iterations > 0 {
		fmt.Printf("iterations      %d\n", res.Iterations)
	}
	kinds := make([]string, 0, len(res.PerKind))
	for k := range res.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-10s %d\n", k, res.PerKind[k])
	}
	if *verbose {
		for link, id := range res.NewIDByLink {
			fmt.Printf("link %4d -> %d\n", link, id)
		}
	}
	return nil
}

// replayArtifact re-executes a shrunk campaign reproducer
// (docs/CAMPAIGNS.md) and reports the result plus any violation the
// default theorem oracle still finds.
func replayArtifact(path string, asJSON bool) error {
	artifact, err := campaign.LoadArtifact(path)
	if err != nil {
		return err
	}
	res, viols, err := artifact.Replay()
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Artifact   *campaign.ReproArtifact
			Violations []campaign.Violation
			*renaming.Result
		}{Artifact: artifact, Violations: viols, Result: res})
	}
	fmt.Printf("artifact        %s\n", path)
	fmt.Printf("algorithm       %s (n=%d, N=%d, seed=%d)\n", artifact.Algo, artifact.N, artifact.BigN, artifact.Seed)
	fmt.Printf("recorded        [%s] %s\n", artifact.Invariant, artifact.Detail)
	fmt.Printf("schedule        %d events, %d corruptions\n", len(artifact.Strategy.Schedule), len(artifact.Strategy.Byzantine))
	fmt.Printf("unique/strong   %v\n", res.Unique)
	fmt.Printf("rounds          %d\n", res.Rounds)
	fmt.Printf("messages        %d (honest %d)\n", res.Messages, res.HonestMessages)
	fmt.Printf("crashes/byz     %d/%d\n", res.Crashes, res.Byzantine)
	if len(viols) == 0 {
		fmt.Println("oracle          clean on replay")
		return nil
	}
	for _, v := range viols {
		fmt.Printf("oracle          [%s] %s\n", v.Invariant, v.Detail)
	}
	return fmt.Errorf("replay reproduced %d violation(s)", len(viols))
}

func parseBehavior(s string) (renaming.Behavior, error) {
	switch s {
	case "silent":
		return renaming.BehaviorSilent, nil
	case "splitworld":
		return renaming.BehaviorSplitWorld, nil
	case "minoritysplit":
		return renaming.BehaviorMinoritySplit, nil
	case "rushing":
		return renaming.BehaviorRushingEquivocate, nil
	case "equivocate":
		return renaming.BehaviorEquivocate, nil
	case "spam":
		return renaming.BehaviorSpam, nil
	default:
		return 0, fmt.Errorf("unknown behavior %q", s)
	}
}
