// Command benchjson converts `go test -bench` output into a structured
// JSON artifact while passing the text through unchanged, so it drops
// into a pipe:
//
//	go test -run '^$' -bench Byz -benchmem . | benchjson -out BENCH_byz.json
//
// Each Benchmark line becomes one record with the benchmark name (the
// -P GOMAXPROCS suffix stripped), the iteration count, and every
// value/unit metric pair (ns/op, B/op, allocs/op, and custom
// b.ReportMetric units such as msgs/round). `make bench` uses it to
// refresh BENCH_byz.json, the before/after ledger of the Byzantine-path
// performance work.
//
// With -compare the command instead diffs two ledgers and exits
// non-zero on regressions, turning the BENCH_*.json artifacts into an
// enforceable gate (`make bench-check`):
//
//	benchjson -tol 0.25 -compare BENCH_crash.json new_crash.json
//
// A regression is a gated metric (ns/op, peakHeap-MB — where higher is
// worse) exceeding the old value by more than the tolerance, or a
// benchmark present in the old ledger but missing from the new one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is one parsed Benchmark line.
type Record struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "", "write the JSON artifact to this path (stdout keeps the raw text)")
	match := flag.String("match", "", "only record benchmarks whose name contains this substring")
	compare := flag.String("compare", "", "compare this old ledger against the new ledger given as the positional argument; exit non-zero on regressions")
	tol := flag.Float64("tol", 0.25, "relative tolerance for -compare: new > old*(1+tol) on a gated metric is a regression")
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			return fmt.Errorf("-compare needs exactly one positional argument (the new ledger), got %d", flag.NArg())
		}
		return compareLedgers(*compare, flag.Arg(0), *tol)
	}

	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		rec, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if *match != "" && !strings.Contains(rec.Name, *match) {
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if *out == "" {
		return nil
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Benchmarks []Record `json:"benchmarks"`
	}{records}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(records), *out)
	return nil
}

// gatedMetrics are the metrics -compare treats as regression gates:
// higher is strictly worse. Throughput-style metrics (msgs/round) and
// noisy allocation counters stay informational.
var gatedMetrics = []string{"ns/op", "peakHeap-MB"}

// ledger mirrors the -out artifact shape.
type ledger struct {
	Benchmarks []Record `json:"benchmarks"`
}

func readLedger(path string) (*ledger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var l ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &l, nil
}

// compareLedgers diffs newPath against oldPath and returns an error —
// hence a non-zero exit — when a gated metric regressed beyond tol or a
// previously-recorded benchmark disappeared. Improvements and new
// benchmarks are reported but never fail the gate.
func compareLedgers(oldPath, newPath string, tol float64) error {
	oldL, err := readLedger(oldPath)
	if err != nil {
		return err
	}
	newL, err := readLedger(newPath)
	if err != nil {
		return err
	}
	byName := make(map[string]Record, len(newL.Benchmarks))
	for _, rec := range newL.Benchmarks {
		byName[rec.Name] = rec
	}
	var regressions []string
	for _, old := range oldL.Benchmarks {
		cur, ok := byName[old.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: present in %s but missing from %s", old.Name, oldPath, newPath))
			continue
		}
		delete(byName, old.Name)
		for _, metric := range gatedMetrics {
			was, hasOld := old.Metrics[metric]
			now, hasNew := cur.Metrics[metric]
			if !hasOld {
				continue
			}
			if !hasNew {
				regressions = append(regressions, fmt.Sprintf("%s: metric %s missing from %s", old.Name, metric, newPath))
				continue
			}
			delta := 0.0
			if was != 0 {
				delta = (now - was) / was
			}
			status := "ok"
			if now > was*(1+tol) {
				status = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)", old.Name, metric, was, now, delta*100, tol*100))
			}
			fmt.Printf("%-60s %-12s %12.4g %12.4g %+8.1f%%  %s\n", old.Name, metric, was, now, delta*100, status)
		}
	}
	fresh := make([]string, 0, len(byName))
	for name := range byName {
		fresh = append(fresh, name)
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Printf("%-60s (new benchmark, no baseline)\n", name)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s) vs %s:\n  %s", len(regressions), oldPath, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("benchjson: %s within %.0f%% of %s\n", newPath, tol*100, oldPath)
	return nil
}

// parseBenchLine parses the standard bench output shape
//
//	BenchmarkName/sub-8   1234   5678 ns/op   90 B/op   1 allocs/op
//
// returning ok=false for any other line (headers, PASS/ok, failures).
func parseBenchLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	rec := Record{Name: fields[0], Metrics: make(map[string]float64)}
	if i := strings.LastIndex(rec.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(rec.Name[i+1:]); err == nil {
			rec.Name, rec.Procs = rec.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		rec.Metrics[fields[i+1]] = value
	}
	return rec, true
}
