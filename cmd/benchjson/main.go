// Command benchjson converts `go test -bench` output into a structured
// JSON artifact while passing the text through unchanged, so it drops
// into a pipe:
//
//	go test -run '^$' -bench Byz -benchmem . | benchjson -out BENCH_byz.json
//
// Each Benchmark line becomes one record with the benchmark name (the
// -P GOMAXPROCS suffix stripped), the iteration count, and every
// value/unit metric pair (ns/op, B/op, allocs/op, and custom
// b.ReportMetric units such as msgs/round). `make bench` uses it to
// refresh BENCH_byz.json, the before/after ledger of the Byzantine-path
// performance work.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed Benchmark line.
type Record struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "", "write the JSON artifact to this path (stdout keeps the raw text)")
	match := flag.String("match", "", "only record benchmarks whose name contains this substring")
	flag.Parse()

	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		rec, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if *match != "" && !strings.Contains(rec.Name, *match) {
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if *out == "" {
		return nil
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Benchmarks []Record `json:"benchmarks"`
	}{records}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(records), *out)
	return nil
}

// parseBenchLine parses the standard bench output shape
//
//	BenchmarkName/sub-8   1234   5678 ns/op   90 B/op   1 allocs/op
//
// returning ok=false for any other line (headers, PASS/ok, failures).
func parseBenchLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	rec := Record{Name: fields[0], Metrics: make(map[string]float64)}
	if i := strings.LastIndex(rec.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(rec.Name[i+1:]); err == nil {
			rec.Name, rec.Procs = rec.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		rec.Metrics[fields[i+1]] = value
	}
	return rec, true
}
