// Command campaign runs a randomized adversary campaign: many
// executions of one algorithm, each against a freshly generated
// adversary strategy, every execution checked by the invariant oracle,
// the whole campaign reduced to tail statistics against the theorem
// envelopes. Violating strategies are shrunk to minimal replayable
// artifacts. See docs/CAMPAIGNS.md.
//
// Examples:
//
//	campaign -algo crash -n 256 -execs 500 -gen mixed
//	campaign -algo byzantine -n 48 -execs 40 -gen byz-skew
//	campaign -algo crash -n 64 -execs 200 -out camp.jsonl -shrink-dir .
//	campaign -algo crash -n 64 -execs 50 -round-ceiling 1   # broken-oracle demo
//
// The process exits 1 when any invariant violation was detected, so a
// campaign run doubles as a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"renaming/internal/campaign"
	"renaming/internal/profiling"
	"renaming/internal/runner"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		algo       = flag.String("algo", "crash", "crash | byzantine | baseline-a2a | service")
		n          = flag.Int("n", 256, "number of nodes")
		bigN       = flag.Int("N", 0, "original namespace size (default 16·n, byzantine 8·n)")
		execs      = flag.Int("execs", 500, "number of randomized executions")
		seed       = flag.Int64("seed", 1, "campaign master seed (all strategies and executions derive from it)")
		gen        = flag.String("gen", "", "strategy generator: early-burst | trickle | targeted | mixed | byz-uniform | byz-skew | byz-silent | mixed-fault | churn (default mixed / byz-uniform / churn)")
		epochs     = flag.Int("epochs", 0, "epochs per service execution (-algo service; default 24)")
		budget     = flag.Int("budget", campaign.BudgetDefault, "max crashes / Byzantine nodes per execution (-1 = default n/4 or byzantine assumption bound; 0 = zero-fault campaign)")
		scale      = flag.Float64("committee-scale", 0, "crash election-constant scale (default 0.02)")
		poolProb   = flag.Float64("pool-prob", 0, "Byzantine candidate-pool probability (default 20/n)")
		workers    = flag.Int("workers", 0, "concurrent executions (default GOMAXPROCS); artifacts are byte-identical at any count")
		outPath    = flag.String("out", "", "append one JSONL telemetry record per execution (docs/OBSERVABILITY.md)")
		shrinkDir  = flag.String("shrink-dir", "", "shrink the first violation of each invariant to a replayable artifact in this directory")
		replay     = flag.String("replay", "", "replay a shrunk artifact instead of running a campaign")
		roundCeil  = flag.Int("round-ceiling", 0, "override the oracle's round ceiling (demo/debug; 0 = theorem bound)")
		search     = flag.Bool("search", false, "fitness-guided adversary search instead of uniform sampling (docs/CAMPAIGNS.md, Search mode)")
		budgetEx   = flag.Int("budget-execs", 0, "total executions the search may spend (default -execs)")
		objective  = flag.String("objective", "rounds", "search fitness: rounds | envelope")
		asJSON     = flag.Bool("json", false, "emit the outcome summary (tails + violations) as JSON")
		progress   = flag.Bool("progress", false, "live progress line on stderr")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this path (go tool pprof)")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return 0, err
	}

	if *replay != "" {
		code, err := replayArtifact(*replay, *asJSON)
		if err == nil {
			if perr := stopProfiles(); perr != nil {
				return 0, perr
			}
		}
		return code, err
	}

	spec := campaign.Spec{
		Algo:           campaign.Algo(*algo),
		N:              *n,
		BigN:           *bigN,
		Executions:     *execs,
		Epochs:         *epochs,
		Seed:           *seed,
		Generator:      campaign.GeneratorKind(*gen),
		Budget:         *budget,
		CommitteeScale: *scale,
		PoolProb:       *poolProb,
		Workers:        *workers,
	}
	switch spec.Algo {
	case campaign.AlgoCrash, campaign.AlgoByzantine, campaign.AlgoBaselineA2A, campaign.AlgoService:
	default:
		return 0, fmt.Errorf("unknown algo %q", *algo)
	}
	if *roundCeil > 0 {
		// An explicit ceiling replaces the default oracle with a
		// crash-style expectation pinned to it — the "deliberately broken
		// oracle" path used to demonstrate violation detection end-to-end.
		// Normalize first so the BudgetDefault sentinel and BigN default
		// resolve before they parameterize the expectation.
		norm, err := spec.Normalized()
		if err != nil {
			return 0, err
		}
		expect := campaign.CrashExpectation(norm.N)
		if norm.Algo == campaign.AlgoByzantine {
			expect = campaign.ByzantineExpectation(norm.BigN, norm.Budget)
		}
		expect.RoundCeiling = *roundCeil
		spec.Oracle = &campaign.Oracle{Expect: expect}
	}
	if *outPath != "" {
		out, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return 0, err
		}
		defer out.Close()
		spec.Sinks = append(spec.Sinks, &runner.JSONLSink{W: out})
	}
	if *progress {
		spec.Sinks = append(spec.Sinks, &runner.ProgressSink{W: os.Stderr})
	}

	if *search {
		budget := *budgetEx
		if budget <= 0 {
			budget = *execs
		}
		return runSearch(campaign.SearchSpec{
			Base:        spec,
			Objective:   campaign.Objective(*objective),
			BudgetExecs: budget,
		}, *asJSON, *shrinkDir, stopProfiles)
	}

	start := time.Now()
	outcome, err := campaign.Run(spec)
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	var artifacts []string
	if *shrinkDir != "" && len(outcome.Violations) > 0 {
		artifacts, err = shrinkFirstPerInvariant(outcome, *shrinkDir)
		if err != nil {
			return 0, err
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Algo       campaign.Algo          `json:"algo"`
			Generator  campaign.GeneratorKind `json:"generator"`
			N          int                    `json:"n"`
			Executions int                    `json:"executions"`
			Seed       int64                  `json:"seed"`
			Tails      []campaign.Tail        `json:"tails"`
			Violations []campaign.Violation   `json:"violations"`
			Artifacts  []string               `json:"artifacts,omitempty"`
		}{outcome.Spec.Algo, outcome.Spec.Generator, outcome.Spec.N,
			outcome.Spec.Executions, outcome.Spec.Seed,
			outcome.Tails, outcome.Violations, artifacts}); err != nil {
			return 0, err
		}
	} else {
		printOutcome(outcome, artifacts)
	}
	// Volatile provenance goes to stderr so stdout diffs cleanly across
	// runs and worker counts (same convention as cmd/benchtables).
	fmt.Fprintf(os.Stderr, "campaign: %d executions in %s\n", outcome.Spec.Executions, elapsed)
	if err := stopProfiles(); err != nil {
		return 0, err
	}
	if len(outcome.Violations) > 0 {
		return 1, nil
	}
	return 0, nil
}

// runSearch executes the fitness-guided search path of -search.
func runSearch(spec campaign.SearchSpec, asJSON bool, shrinkDir string, stopProfiles func() error) (int, error) {
	start := time.Now()
	out, err := campaign.Search(spec)
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	var artifacts []string
	if shrinkDir != "" && len(out.Violations) > 0 {
		// The search's violations ride the same shrink path as a
		// campaign's: single-execution spec + recorded strategy.
		artifacts, err = shrinkFirstPerInvariant(&campaign.Outcome{
			Spec: out.Base, Violations: out.Violations,
		}, shrinkDir)
		if err != nil {
			return 0, err
		}
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Algo        campaign.Algo             `json:"algo"`
			Objective   campaign.Objective        `json:"objective"`
			N           int                       `json:"n"`
			Seed        int64                     `json:"seed"`
			BudgetExecs int                       `json:"budgetExecs"`
			ExecsUsed   int                       `json:"execsUsed"`
			Best        campaign.Candidate        `json:"best"`
			Arms        []campaign.ArmStat        `json:"arms"`
			Generations []campaign.GenerationStat `json:"generations"`
			Violations  []campaign.Violation      `json:"violations"`
			Artifacts   []string                  `json:"artifacts,omitempty"`
		}{out.Base.Algo, out.Objective, out.Base.N, out.Base.Seed,
			spec.BudgetExecs, out.ExecsUsed, out.Best, out.Arms,
			out.Generations, out.Violations, artifacts}); err != nil {
			return 0, err
		}
	} else {
		printSearchOutcome(out, artifacts)
	}
	fmt.Fprintf(os.Stderr, "campaign: search spent %d executions in %s\n", out.ExecsUsed, elapsed)
	if err := stopProfiles(); err != nil {
		return 0, err
	}
	if len(out.Violations) > 0 {
		return 1, nil
	}
	return 0, nil
}

func printSearchOutcome(out *campaign.SearchOutcome, artifacts []string) {
	b := out.Base
	fmt.Printf("search    algo=%s objective=%s n=%d N=%d budget=%d execs=%d seed=%d\n",
		b.Algo, out.Objective, b.N, b.BigN, b.Budget, out.ExecsUsed, b.Seed)
	fmt.Printf("best      fitness=%s generator=%s op=%s gen=%d exec=%d events=%d byz=%d\n",
		fmtF(out.Best.Fitness), out.Best.Strategy.Generator, out.Best.Op,
		out.Best.Gen, out.Best.Exec,
		len(out.Best.Strategy.Schedule), len(out.Best.Strategy.Byzantine))
	fmt.Printf("%-16s %8s %10s\n", "family", "pulls", "mean")
	for _, arm := range out.Arms {
		fmt.Printf("%-16s %8d %10.3f\n", arm.Kind, arm.Pulls, arm.Mean)
	}
	fmt.Printf("%-6s %-8s %8s %10s %10s\n", "gen", "kind", "execs", "best", "mean")
	for _, g := range out.Generations {
		fmt.Printf("%-6d %-8s %8d %10s %10.3f\n", g.Gen, g.Kind, g.Execs, fmtF(g.Best), g.Mean)
	}
	if len(out.Violations) == 0 {
		fmt.Printf("violations: 0 across %d executions\n", out.ExecsUsed)
	} else {
		fmt.Printf("violations: %d\n", len(out.Violations))
		for i, v := range out.Violations {
			if i >= 10 {
				fmt.Printf("  … and %d more\n", len(out.Violations)-i)
				break
			}
			fmt.Printf("  exec %d seed %d [%s] %s\n", v.Exec, v.Seed, v.Invariant, v.Detail)
		}
	}
	for _, path := range artifacts {
		fmt.Printf("shrunk reproducer: %s (replay with -replay %s)\n", path, path)
	}
}

func printOutcome(outcome *campaign.Outcome, artifacts []string) {
	s := outcome.Spec
	fmt.Printf("campaign  algo=%s gen=%s n=%d N=%d budget=%d execs=%d seed=%d\n",
		s.Algo, s.Generator, s.N, s.BigN, s.Budget, s.Executions, s.Seed)
	fmt.Printf("%-16s %12s %12s %12s %12s %14s %8s\n",
		"metric", "p50", "p95", "p99", "max", "envelope", "ok")
	for _, tail := range outcome.Tails {
		envelope := "—"
		ok := "—"
		if tail.Envelope > 0 {
			envelope = fmtF(tail.Envelope)
			if tail.WithinEnvelope {
				ok = "yes"
			} else {
				ok = "NO"
			}
		}
		fmt.Printf("%-16s %12s %12s %12s %12s %14s %8s\n",
			tail.Metric, fmtF(tail.P50), fmtF(tail.P95), fmtF(tail.P99), fmtF(tail.Max), envelope, ok)
	}
	if len(outcome.Violations) == 0 {
		fmt.Printf("violations: 0 across %d executions\n", s.Executions)
		return
	}
	fmt.Printf("violations: %d\n", len(outcome.Violations))
	shown := 0
	for _, v := range outcome.Violations {
		if shown >= 10 {
			fmt.Printf("  … and %d more\n", len(outcome.Violations)-shown)
			break
		}
		fmt.Printf("  exec %d seed %d [%s] %s\n", v.Exec, v.Seed, v.Invariant, v.Detail)
		shown++
	}
	for _, path := range artifacts {
		fmt.Printf("shrunk reproducer: %s (replay with -replay %s)\n", path, path)
	}
}

// shrinkFirstPerInvariant shrinks the first violation of each distinct
// invariant and writes one artifact per invariant into dir.
func shrinkFirstPerInvariant(outcome *campaign.Outcome, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	done := make(map[string]bool)
	for _, v := range outcome.Violations {
		if done[v.Invariant] {
			continue
		}
		done[v.Invariant] = true
		artifact, err := campaign.Shrink(outcome.Spec, v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: shrink %s: %v\n", v.Invariant, err)
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("repro-%s-exec%d.json", v.Invariant, v.Exec))
		if err := campaign.SaveArtifact(artifact, path); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

func replayArtifact(path string, asJSON bool) (int, error) {
	artifact, err := campaign.LoadArtifact(path)
	if err != nil {
		return 0, err
	}
	res, viols, err := artifact.Replay()
	if err != nil {
		return 0, err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Artifact   *campaign.ReproArtifact `json:"artifact"`
			Unique     bool                    `json:"unique"`
			Rounds     int                     `json:"rounds"`
			Messages   int64                   `json:"messages"`
			Violations []campaign.Violation    `json:"violations"`
		}{artifact, res.Unique, res.Rounds, res.Messages, viols}); err != nil {
			return 0, err
		}
	} else {
		fmt.Printf("replay    algo=%s n=%d N=%d seed=%d events=%d byz=%d\n",
			artifact.Algo, artifact.N, artifact.BigN, artifact.Seed,
			len(artifact.Strategy.Schedule), len(artifact.Strategy.Byzantine))
		fmt.Printf("recorded  [%s] %s\n", artifact.Invariant, artifact.Detail)
		fmt.Printf("unique=%v order=%v rounds=%d messages=%d crashes=%d byzantine=%d\n",
			res.Unique, res.OrderPreserving, res.Rounds, res.Messages, res.Crashes, res.Byzantine)
		if len(viols) == 0 {
			fmt.Println("oracle: no violation on replay (fixed, or the artifact's oracle differed from the default)")
		}
		for _, v := range viols {
			fmt.Printf("oracle: [%s] %s\n", v.Invariant, v.Detail)
		}
	}
	if len(viols) > 0 {
		return 1, nil
	}
	return 0, nil
}

func fmtF(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}
