// Command benchtables regenerates every table and figure of the
// reproduction (DESIGN.md §4): the Table 1 comparison, the scaling
// claims of Theorems 1.2/1.3, the Theorem 1.4 lower bound, the O(log N)
// message-size bound, and the A1/A2 design ablations.
//
// Sweeps fan out across a worker pool (internal/runner); tables are
// byte-identical at any -workers count. Every run also emits a JSONL
// telemetry artifact (one record per sweep point — see
// docs/OBSERVABILITY.md), which -resume replays to skip
// already-completed points.
//
// Usage:
//
//	benchtables                 # run everything at full scale
//	benchtables -quick          # run everything at reduced scale
//	benchtables -full           # also run the 16384/32768-node points
//	benchtables -huge           # also run the million-node tier (implies -full)
//	benchtables -experiment e3  # run a single experiment by id
//	benchtables -workers 8      # fan sweep points across 8 workers
//	benchtables -out run.jsonl  # telemetry artifact path ("" disables)
//	benchtables -resume         # skip points already in -out
//	benchtables -csv run.csv    # also emit a flat CSV of the records
//	benchtables -seed 7         # remix all canonical seeds (fresh universe)
//
// Tables go to stdout; progress and per-table provenance (wall-clock,
// seed) go to stderr, so stdout can be diffed across runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"renaming/internal/experiments"
	"renaming/internal/profiling"
	"renaming/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "reduced sweep sizes (seconds instead of minutes)")
	full := flag.Bool("full", false, "unlock the 16384/32768-node scaling points (minutes; ignored with -quick)")
	huge := flag.Bool("huge", false, "unlock the million-node tier on top of -full (implies -full; tens of minutes, ~12 GB peak heap; see docs/MEMORY.md)")
	experiment := flag.String("experiment", "", "run a single experiment id (e1 e2 e3 e3n e4 e5 e5n e6 e7 e8 e8c a1 a2 a3)")
	markdown := flag.Bool("markdown", false, "render tables as Markdown (for EXPERIMENTS.md)")
	svgDir := flag.String("svgdir", "", "also write each experiment's figures as SVG into this directory")
	workers := flag.Int("workers", 0, "concurrent sweep points (0 = GOMAXPROCS); tables are identical at any setting")
	out := flag.String("out", "run.jsonl", "JSONL telemetry artifact path (empty disables)")
	csvPath := flag.String("csv", "", "also write records as CSV to this path")
	resume := flag.Bool("resume", false, "replay points already recorded in -out instead of re-running them")
	seed := flag.Int64("seed", 0, "sweep seed remixing every canonical point seed (0 keeps the canonical seeds of EXPERIMENTS.md)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this path (go tool pprof)")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}

	cfg := experiments.Config{
		Quick:     *quick,
		Full:      *full || *huge,
		Huge:      *huge,
		Workers:   *workers,
		SweepSeed: *seed,
	}

	// -resume loads the previous artifact before -out truncates it.
	if *resume {
		if *out == "" {
			return fmt.Errorf("-resume needs -out")
		}
		f, err := os.Open(*out)
		switch {
		case os.IsNotExist(err):
			fmt.Fprintf(os.Stderr, "resume: no artifact at %s, running everything\n", *out)
		case err != nil:
			return err
		default:
			art, err := runner.LoadArtifact(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("resume %s: %w", *out, err)
			}
			cfg.Resume = art
			fmt.Fprintf(os.Stderr, "resume: %d completed points loaded from %s\n", art.Len(), *out)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Sinks = append(cfg.Sinks, &runner.JSONLSink{W: f})
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Sinks = append(cfg.Sinks, runner.NewCSVSink(f))
	}
	cfg.Sinks = append(cfg.Sinks, &runner.ProgressSink{W: os.Stderr})

	render := func(table *experiments.Table) error {
		if *markdown {
			fmt.Println(table.Markdown())
		} else {
			fmt.Println(table)
		}
		seedNote := "canonical"
		if table.SweepSeed != 0 {
			seedNote = fmt.Sprintf("%d", table.SweepSeed)
		}
		fmt.Fprintf(os.Stderr, "[%s] wall-clock %s, seed %s\n",
			table.ID, table.Elapsed.Round(time.Millisecond), seedNote)
		if *svgDir == "" {
			return nil
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		for i, chart := range table.Charts {
			name := fmt.Sprintf("%s.svg", table.ID)
			if i > 0 {
				name = fmt.Sprintf("%s-%d.svg", table.ID, i+1)
			}
			f, err := os.Create(filepath.Join(*svgDir, name))
			if err != nil {
				return err
			}
			if err := chart.WriteSVG(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", filepath.Join(*svgDir, name))
		}
		return nil
	}
	ids := experiments.IDs()
	if *experiment != "" {
		ids = []string{*experiment}
	}
	start := time.Now()
	for _, id := range ids {
		table, err := experiments.ByID(id, cfg)
		if err != nil {
			return err
		}
		if err := render(table); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "elapsed: %s\n", time.Since(start).Round(time.Millisecond))
	if *out != "" {
		fmt.Fprintf(os.Stderr, "telemetry artifact: %s\n", *out)
	}
	return stopProfiles()
}
