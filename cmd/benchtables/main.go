// Command benchtables regenerates every table and figure of the
// reproduction (DESIGN.md §4): the Table 1 comparison, the scaling
// claims of Theorems 1.2/1.3, the Theorem 1.4 lower bound, the O(log N)
// message-size bound, and the A1/A2 design ablations.
//
// Usage:
//
//	benchtables                 # run everything at full scale
//	benchtables -quick          # run everything at reduced scale
//	benchtables -experiment e3  # run a single experiment by id
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"renaming/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "reduced sweep sizes (seconds instead of minutes)")
	experiment := flag.String("experiment", "", "run a single experiment id (e1 e2 e3 e3n e4 e5 e5n e6 e7 e8 e8c a1 a2 a3)")
	markdown := flag.Bool("markdown", false, "render tables as Markdown (for EXPERIMENTS.md)")
	svgDir := flag.String("svgdir", "", "also write each experiment's figures as SVG into this directory")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick}
	render := func(table *experiments.Table) error {
		if *markdown {
			fmt.Println(table.Markdown())
		} else {
			fmt.Println(table)
		}
		if *svgDir == "" {
			return nil
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		for i, chart := range table.Charts {
			name := fmt.Sprintf("%s.svg", table.ID)
			if i > 0 {
				name = fmt.Sprintf("%s-%d.svg", table.ID, i+1)
			}
			f, err := os.Create(filepath.Join(*svgDir, name))
			if err != nil {
				return err
			}
			if err := chart.WriteSVG(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", filepath.Join(*svgDir, name))
		}
		return nil
	}
	start := time.Now()
	if *experiment != "" {
		table, err := experiments.ByID(*experiment, cfg)
		if err != nil {
			return err
		}
		if err := render(table); err != nil {
			return err
		}
		fmt.Printf("elapsed: %s\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	for _, id := range experiments.IDs() {
		table, err := experiments.ByID(id, cfg)
		if err != nil {
			return err
		}
		if err := render(table); err != nil {
			return err
		}
	}
	fmt.Printf("elapsed: %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}
