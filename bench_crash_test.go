package renaming_test

import (
	"fmt"
	"testing"

	"renaming"
	"renaming/internal/core"
	"renaming/internal/sim"
)

// BenchmarkCrashStepRound measures the steady-state per-round cost of
// the crash-resilient algorithm's hot path — the three-round committee
// schedule (notify broadcast, status fan-in, committee halving) with a
// Θ(log n) committee serving all n nodes — at the scales the
// Theorem 1.2 sweeps run at. Allocations should stay O(committee): the
// idle majority is elided by schedule quiescence, statuses and
// responses travel in reused payload boxes, and the committee's rank
// computation reuses grouped scratch. The CI bench-smoke job runs this
// at -benchtime 1x to catch crash-path performance regressions.
func BenchmarkCrashStepRound(b *testing.B) {
	for _, n := range []int{256, 1024, 4096, 16384} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ids, err := renaming.GenerateIDs(n, 16*n, renaming.IDsEven, int64(n))
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.CrashConfig{N: 16 * n, IDs: ids, Seed: int64(n), CommitteeScale: 0.02}
			if err := cfg.Validate(); err != nil {
				b.Fatal(err)
			}
			build := func() *sim.Network {
				nodes := make([]sim.Node, n)
				for i := 0; i < n; i++ {
					nodes[i] = core.NewCrashNode(cfg, i)
				}
				return sim.NewNetwork(nodes)
			}
			// Discover the run length once, so the measured loop can swap in
			// a fresh network before the protocol terminates (a halted
			// network would make StepRound trivially cheap).
			probe := build()
			if err := probe.Run(cfg.TotalRounds() + 1); err != nil {
				b.Fatal(err)
			}
			total := probe.Round()
			probe.Close()
			if total < 16 {
				b.Fatalf("run too short to benchmark: %d rounds", total)
			}
			const warm = 6 // two full phases in: committees formed, halving under way
			nw := build()
			for r := 0; r < warm; r++ {
				nw.StepRound()
			}
			msgs0, rounds0 := nw.Metrics().Messages, nw.Round()
			var timedMsgs int64 // billed messages across all timed rounds
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if nw.Round() >= total-1 {
					b.StopTimer()
					timedMsgs += nw.Metrics().Messages - msgs0
					nw.Close()
					nw = build()
					for r := 0; r < warm; r++ {
						nw.StepRound()
					}
					msgs0, rounds0 = nw.Metrics().Messages, nw.Round()
					b.StartTimer()
				}
				nw.StepRound()
			}
			b.StopTimer()
			timedMsgs += nw.Metrics().Messages - msgs0
			if rounds := nw.Round() - rounds0; rounds > 0 {
				b.ReportMetric(float64(nw.Metrics().Messages-msgs0)/float64(rounds), "msgs/round")
			}
			if timedMsgs > 0 {
				// Per-billed-message engine cost: the figure the shared
				// ToSet/aggregation path drives below the per-message
				// store-and-copy floor (billing is decoupled from packing).
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(timedMsgs), "ns/msg")
			}
			nw.Close()
		})
	}
}
