module renaming

go 1.22
