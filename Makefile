# Convenience targets for the renaming reproduction.

GO ?= go

.PHONY: all build test test-short race cover bench bench-check ci mem-smoke linkcheck experiments experiments-quick figures examples clean

all: build test

# What .github/workflows/ci.yml runs on every push/PR (staticcheck runs
# there too, when installed locally: go install honnef.co/go/tools/cmd/staticcheck@latest).
ci:
	$(GO) vet ./...
	if command -v staticcheck >/dev/null; then staticcheck ./...; else echo "staticcheck not installed, skipping"; fi
	$(GO) build ./...
	$(GO) test ./... -short -race
	$(GO) test -run '^$$' -bench StepRound -benchtime 1x ./internal/sim
	$(GO) test -run '^$$' -bench ByzStepRound -benchtime 1x .
	$(GO) test -run '^$$' -bench CrashStepRound -benchtime 1x .
	$(GO) test -run '^$$' -bench ChurnEpoch -benchtime 1x .
	$(GO) run ./cmd/campaign -algo crash -n 64 -execs 50 -seed 1
	$(GO) run ./cmd/campaign -search -algo crash -n 64 -budget-execs 48 -seed 1 -objective envelope
	$(GO) run ./cmd/renamed -n 256 -epochs 40 -faults 16 -seed 2
	$(GO) run ./cmd/linkcheck

# The CI mem-smoke job: whole-run crash at n=2^16 under GOMEMLIMIT with
# a live-heap ceiling assert, plus the per-epoch allocation gate for the
# churn service at Capacity=2^20 (see docs/MEMORY.md).
mem-smoke:
	RENAMING_MEMSMOKE=1 GOMEMLIMIT=6GiB $(GO) test -run MemorySmoke -v -timeout 20m .

linkcheck:
	$(GO) run ./cmd/linkcheck

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# -short everywhere, plus the full (non-short) suites for the engine
# and the service — the shared-aggregate delivery path and the epoch
# machinery are exactly where a data race would hide.
race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/sim ./internal/service

cover:
	$(GO) test -short -cover ./...

# Full benchmark sweep. The raw text passes through unchanged; every
# Byzantine-path benchmark additionally lands in BENCH_byz.json, every
# crash-path benchmark in BENCH_crash.json, and the churn-service
# benchmarks in BENCH_churn.json, the structured before/after ledgers
# (cmd/benchjson chains: each stage records its matches and passes the
# text through).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./... \
		| $(GO) run ./cmd/benchjson -match Byz -out BENCH_byz.json \
		| $(GO) run ./cmd/benchjson -match Crash -out BENCH_crash.json \
		| $(GO) run ./cmd/benchjson -match Churn -out BENCH_churn.json

# Re-run the sweep into throwaway ledgers and gate them against the
# committed BENCH_*.json baselines: ns/op and peakHeap-MB may not
# regress beyond 25% (benchjson -compare exits non-zero), so the
# ledgers are an enforceable contract rather than write-only artifacts.
bench-check:
	$(GO) test -run '^$$' -bench=. -benchmem ./... \
		| $(GO) run ./cmd/benchjson -match Byz -out .bench_check_byz.json \
		| $(GO) run ./cmd/benchjson -match Crash -out .bench_check_crash.json \
		| $(GO) run ./cmd/benchjson -match Churn -out .bench_check_churn.json \
		> /dev/null
	$(GO) run ./cmd/benchjson -tol 0.25 -compare BENCH_byz.json .bench_check_byz.json
	$(GO) run ./cmd/benchjson -tol 0.25 -compare BENCH_crash.json .bench_check_crash.json
	$(GO) run ./cmd/benchjson -tol 0.25 -compare BENCH_churn.json .bench_check_churn.json
	rm -f .bench_check_byz.json .bench_check_crash.json .bench_check_churn.json

# Regenerate every table/figure of the reproduction (minutes).
experiments:
	$(GO) run ./cmd/benchtables -svgdir docs/figures | tee bench_tables_full.txt

experiments-quick:
	$(GO) run ./cmd/benchtables -quick

figures:
	$(GO) run ./cmd/benchtables -svgdir docs/figures > /dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cryptonet
	$(GO) run ./examples/faultsweep
	$(GO) run ./examples/byzantine
	$(GO) run ./examples/adaptive

clean:
	$(GO) clean ./...
