package renaming

import (
	"fmt"
	"io"
	"math/rand"

	"renaming/internal/adversary"
	"renaming/internal/core"
	"renaming/internal/sim"
	"renaming/internal/trace"
)

// FaultKind selects the crash adversary strategy ("Eve").
type FaultKind int

const (
	// FaultNone runs failure-free.
	FaultNone FaultKind = iota + 1
	// FaultRandom crashes up to Budget nodes, each alive node failing
	// with probability Prob per round; MidSend adds partial sends.
	FaultRandom
	// FaultCommitteeKiller adaptively crashes every current committee
	// member (up to Budget) — the paper's worst-case strategy, which the
	// re-election probability doubling is designed to defeat.
	FaultCommitteeKiller
	// FaultBurst crashes the listed Nodes at the given Round.
	FaultBurst
)

// FaultSpec configures the crash adversary.
type FaultSpec struct {
	Kind     FaultKind
	Budget   int
	Prob     float64
	MidSend  bool
	Round    int
	Nodes    []int
	Interval int // committee-killer cadence; 0 = every round
	// Custom, when non-nil, is used verbatim and takes precedence over
	// Kind. Stateful adversaries are good for one execution, so callers
	// running sweeps must construct a fresh value per run (the campaign
	// engine does this inside each point closure).
	Custom sim.CrashAdversary
}

func (spec FaultSpec) build(seed int64) sim.CrashAdversary {
	if spec.Custom != nil {
		return spec.Custom
	}
	switch spec.Kind {
	case FaultRandom:
		return &adversary.RandomCrashes{
			Budget: spec.Budget, Prob: spec.Prob,
			MidSendProb: midSendProb(spec.MidSend),
			Rand:        rand.New(rand.NewSource(sim.DeriveSeed(seed, 0x657665))), // "eve"
		}
	case FaultCommitteeKiller:
		return &adversary.CommitteeKiller{
			Budget: spec.Budget, Interval: spec.Interval, MidSend: spec.MidSend,
			Rand: rand.New(rand.NewSource(sim.DeriveSeed(seed, 0x657665))),
		}
	case FaultBurst:
		return &adversary.BurstCrash{Round: spec.Round, Nodes: spec.Nodes}
	default:
		return sim.NoCrashes{}
	}
}

func midSendProb(midSend bool) float64 {
	if midSend {
		return 0.5
	}
	return 0
}

// CrashSpec configures one execution of the crash-resilient algorithm.
type CrashSpec struct {
	// N is the original namespace size; defaults to 16·n.
	N int
	// IDs are the original identities per link; generated with IDsEven
	// when nil.
	IDs []int
	// Seed drives all randomness; executions with equal specs are
	// bit-identical.
	Seed int64
	// CommitteeScale scales the paper's election constant 256 (see
	// core.CrashConfig).
	CommitteeScale float64
	// DisableReelectionDoubling is the A1 ablation (see core.CrashConfig).
	DisableReelectionDoubling bool
	// EarlyStop enables the adaptive-round early-stopping extension
	// (see core.CrashConfig).
	EarlyStop bool
	// Fault selects the adversary.
	Fault FaultSpec
	// Trace, when non-nil, receives a per-round traffic timeline after
	// the run.
	Trace io.Writer
	// Profile records the per-round traffic profile into
	// Result.RoundStats without a timeline writer (used by the
	// experiment runner's telemetry records).
	Profile bool
	// CongestLimit, when positive, flags honest messages above this many
	// bits in Result.OversizeMessages (CONGEST-model check).
	CongestLimit int
	// EngineWorkers, when positive, pins the round engine's worker count
	// (sim.WithEngineWorkers). Results are bit-identical at any setting;
	// the determinism test locks a golden fingerprint at 1 and 8.
	EngineWorkers int
	// EagerMulticast disables the shared ToSet status multicast
	// (sim.WithEagerMulticast), forcing explicit per-recipient messages.
	// Results are bit-identical either way — the representation property
	// test pins exactly that — so this is an ablation/testing knob.
	EagerMulticast bool
}

// RunCrash executes the crash-resilient renaming algorithm of Section 2
// over n nodes and returns the outcome with full communication metrics.
func RunCrash(n int, spec CrashSpec) (*Result, error) {
	return runCrash(n, spec, nil)
}

// runCrash is RunCrash over an optional engine pool: a nil pool builds a
// fresh network (the one-shot entry point above), a non-nil pool leases
// its persistent engine (Session callers). Results are bit-identical
// either way.
func runCrash(n int, spec CrashSpec, pool *sim.Pool) (*Result, error) {
	if spec.N == 0 {
		spec.N = 16 * n
	}
	if spec.IDs == nil {
		ids, err := GenerateIDs(n, spec.N, IDsEven, spec.Seed)
		if err != nil {
			return nil, err
		}
		spec.IDs = ids
	}
	if len(spec.IDs) != n {
		return nil, fmt.Errorf("renaming: %d ids for %d nodes", len(spec.IDs), n)
	}
	cfg := core.CrashConfig{
		N: spec.N, IDs: spec.IDs, Seed: spec.Seed,
		CommitteeScale:            spec.CommitteeScale,
		DisableReelectionDoubling: spec.DisableReelectionDoubling,
		EarlyStop:                 spec.EarlyStop,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	nodes := make([]*core.CrashNode, n)
	simNodes := make([]sim.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = core.NewCrashNode(cfg, i)
		simNodes[i] = nodes[i]
	}
	opts := []sim.Option{
		sim.WithCrashAdversary(spec.Fault.build(spec.Seed)),
		sim.WithPeek(func(i int) any { return nodes[i].Peek() }),
	}
	var recorder *trace.Recorder
	if spec.Trace != nil {
		recorder = trace.NewRecorder()
		opts = append(opts, sim.WithObserver(recorder.Observe))
	} else if spec.Profile {
		// Profile-only runs need Summary, not the per-round timeline, so
		// the streaming recorder's digest feed avoids materializing the
		// round's delivered-message slice for the observer.
		recorder = trace.NewStreamingRecorder()
		opts = append(opts, sim.WithRoundDigest(recorder.ObserveDigest))
	}
	if spec.CongestLimit > 0 {
		opts = append(opts, sim.WithCongestLimit(spec.CongestLimit))
	}
	if spec.EngineWorkers > 0 {
		opts = append(opts, sim.WithEngineWorkers(spec.EngineWorkers))
	}
	if spec.EagerMulticast {
		opts = append(opts, sim.WithEagerMulticast())
	}
	nw := pool.Acquire(simNodes, opts...)
	defer nw.Close()
	if err := nw.Run(cfg.TotalRounds() + 1); err != nil {
		return nil, fmt.Errorf("crash renaming: %w", err)
	}
	if recorder != nil && spec.Trace != nil {
		if err := recorder.WriteTimeline(spec.Trace); err != nil {
			return nil, fmt.Errorf("write trace: %w", err)
		}
	}

	res := &Result{
		NewIDByLink: make([]int, n),
		Crashes:     nw.Crashes(),
	}
	for i := 0; i < n; i++ {
		res.NewIDByLink[i] = -1
		if nodes[i].EverElected() {
			res.CommitteeSize++
		}
		if !nw.Alive(i) {
			continue
		}
		if id, ok := nodes[i].Output(); ok {
			res.NewIDByLink[i] = id
		}
	}
	fillMetrics(res, nw)
	if recorder != nil {
		res.RoundStats = roundStatsFrom(recorder)
	}
	res.fill(spec.IDs)
	res.AssumptionHolds = nw.AliveCount() > 0
	// A surviving undecided node is a correctness failure.
	for i := 0; i < n; i++ {
		if nw.Alive(i) && res.NewIDByLink[i] < 0 {
			res.Unique = false
		}
	}
	return res, nil
}

func fillMetrics(res *Result, nw *sim.Network) {
	m := nw.Metrics()
	res.Rounds = m.Rounds
	res.Messages = m.Messages
	res.Bits = m.Bits
	res.HonestMessages = m.HonestMessages
	res.HonestBits = m.HonestBits
	res.MaxMessageBits = m.MaxMessageBits
	res.MaxNodeSent = m.MaxNodeSent()
	res.MaxNodeReceived = m.MaxNodeReceived()
	res.OversizeMessages = m.OversizeMessages
	res.PerKind = make(map[string]int64, len(m.PerKind))
	for k, v := range m.PerKind {
		res.PerKind[k] = v
	}
}
